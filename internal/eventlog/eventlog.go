// Package eventlog models the complementary, non-packet data sources the
// paper's data store ingests alongside capture (§5: "server logs, firewall
// rules, configuration files, events"), including the per-sensor clock
// skew that makes time synchronization a real problem, and the
// synchronizer that corrects it.
package eventlog

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Source identifies the sensor class an event came from.
type Source uint8

// Sensor classes feeding the data store.
const (
	SourceSyslog Source = iota
	SourceFirewall
	SourceConfig
	SourceIDS
	numSources
)

var sourceNames = [numSources]string{"syslog", "firewall", "config", "ids"}

// String returns the source name.
func (s Source) String() string {
	if int(s) < len(sourceNames) {
		return sourceNames[s]
	}
	return fmt.Sprintf("source-%d", uint8(s))
}

// Severity grades an event.
type Severity uint8

// Event severities, syslog-style.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
	SevCritical
)

// String returns the severity name.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return "critical"
	}
}

// Event is one sensor record. TS is scenario-relative, in the *sensor's*
// clock; Synchronizer maps it to the capture clock.
type Event struct {
	TS       time.Duration
	Source   Source
	Severity Severity
	Host     string // reporting host
	Message  string
	Attrs    map[string]string
}

// Generator produces a skewed, realistic event stream for one sensor.
type Generator struct {
	rng    *rand.Rand
	source Source
	hosts  []string
	// skew is this sensor's constant clock offset from the capture clock
	// (positive = sensor clock runs ahead).
	skew time.Duration
	// drift is the sensor's clock drift in ns per second of scenario time.
	drift float64
	rate  float64 // events per second
}

// GeneratorConfig configures an event generator.
type GeneratorConfig struct {
	Source Source
	Hosts  []string
	Skew   time.Duration
	Drift  float64 // ns of drift per second
	Rate   float64 // mean events/second
	Seed   int64
}

// NewGenerator builds a generator; Rate defaults to 2/s.
func NewGenerator(cfg GeneratorConfig) *Generator {
	if cfg.Rate <= 0 {
		cfg.Rate = 2
	}
	if len(cfg.Hosts) == 0 {
		cfg.Hosts = []string{"srv-auth-1", "srv-web-1", "fw-border", "sw-core-1"}
	}
	return &Generator{
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		source: cfg.Source,
		hosts:  cfg.Hosts,
		skew:   cfg.Skew,
		drift:  cfg.Drift,
		rate:   cfg.Rate,
	}
}

var syslogTemplates = []struct {
	sev Severity
	msg string
}{
	{SevInfo, "sshd: accepted publickey for %s"},
	{SevWarning, "sshd: failed password for invalid user %s"},
	{SevInfo, "systemd: started nightly backup job"},
	{SevError, "nginx: upstream timed out while reading response"},
	{SevWarning, "kernel: nf_conntrack table 90%% full"},
	{SevInfo, "dhcpd: DHCPACK on 10.4.12.%s"},
	{SevCritical, "raid: degraded array md0, disk %s failed"},
}

var firewallTemplates = []struct {
	sev Severity
	msg string
}{
	{SevInfo, "allow tcp %s:443"},
	{SevWarning, "deny tcp %s:23 (policy: no-telnet)"},
	{SevWarning, "deny udp %s:161 external snmp probe"},
	{SevError, "rate-limit triggered for %s"},
}

var users = []string{"alice", "bob", "carol", "dave", "svc-ci", "guest"}

// Generate emits events over [0, dur) in sensor-clock order.
func (g *Generator) Generate(dur time.Duration) []Event {
	var out []Event
	trueT := time.Duration(0)
	for {
		gap := time.Duration(g.rng.ExpFloat64() / g.rate * float64(time.Second))
		trueT += gap
		if trueT >= dur {
			break
		}
		// Sensor clock = true time + skew + drift*elapsed.
		sensorT := trueT + g.skew + time.Duration(g.drift*trueT.Seconds())
		ev := Event{
			TS:     sensorT,
			Source: g.source,
			Host:   g.hosts[g.rng.Intn(len(g.hosts))],
			Attrs:  map[string]string{"true_ts": trueT.String()},
		}
		switch g.source {
		case SourceFirewall:
			tpl := firewallTemplates[g.rng.Intn(len(firewallTemplates))]
			ev.Severity = tpl.sev
			ev.Message = fmt.Sprintf(tpl.msg, fmt.Sprintf("198.51.100.%d", g.rng.Intn(255)))
		case SourceConfig:
			ev.Severity = SevInfo
			ev.Message = fmt.Sprintf("config commit %08x by netops", g.rng.Uint32())
		case SourceIDS:
			ev.Severity = SevWarning
			ev.Message = fmt.Sprintf("signature %d matched on sensor %s", 2000000+g.rng.Intn(5000), ev.Host)
		default:
			tpl := syslogTemplates[g.rng.Intn(len(syslogTemplates))]
			ev.Severity = tpl.sev
			ev.Message = fmt.Sprintf(tpl.msg, users[g.rng.Intn(len(users))])
		}
		out = append(out, ev)
	}
	return out
}

// Synchronizer corrects sensor timestamps onto the capture clock using
// reference pairs (events whose true capture time is known, e.g. a config
// commit observed both in the log and on the wire). It fits offset+drift
// by least squares — the "time-synchronized" property the paper's data
// store promises.
type Synchronizer struct {
	offset time.Duration
	drift  float64 // ns per second
	fitted bool
}

// Fit estimates the clock model from (sensorTS, captureTS) pairs. At least
// two pairs are required to fit drift; one pair fits offset only.
func (s *Synchronizer) Fit(sensorTS, captureTS []time.Duration) error {
	n := len(sensorTS)
	if n == 0 || n != len(captureTS) {
		return fmt.Errorf("eventlog: need equal, non-empty reference slices (got %d/%d)", len(sensorTS), len(captureTS))
	}
	if n == 1 {
		s.offset = sensorTS[0] - captureTS[0]
		s.drift = 0
		s.fitted = true
		return nil
	}
	// Least squares of sensor = capture*(1+drift/1e9) + offset, solved in
	// float seconds for conditioning.
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		x := captureTS[i].Seconds()
		y := sensorTS[i].Seconds()
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return fmt.Errorf("eventlog: degenerate reference points")
	}
	slope := (fn*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / fn
	s.drift = (slope - 1) * 1e9
	s.offset = time.Duration(intercept * float64(time.Second))
	s.fitted = true
	return nil
}

// Correct maps a sensor timestamp to the capture clock.
func (s *Synchronizer) Correct(sensorTS time.Duration) time.Duration {
	if !s.fitted {
		return sensorTS
	}
	slope := 1 + s.drift/1e9
	return time.Duration((sensorTS.Seconds() - s.offset.Seconds()) / slope * float64(time.Second))
}

// Model returns the fitted offset and drift (ns/s).
func (s *Synchronizer) Model() (offset time.Duration, drift float64) { return s.offset, s.drift }

// MergeSorted merges multiple event slices into one stream ordered by TS.
func MergeSorted(streams ...[]Event) []Event {
	var out []Event
	for _, s := range streams {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Grep returns events whose message contains the substring, a primitive
// the data store's query layer builds on.
func Grep(events []Event, substr string) []Event {
	var out []Event
	for _, e := range events {
		if strings.Contains(e.Message, substr) {
			out = append(out, e)
		}
	}
	return out
}
