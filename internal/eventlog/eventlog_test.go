package eventlog

import (
	"testing"
	"time"
)

func TestGeneratorProducesOrderedEvents(t *testing.T) {
	g := NewGenerator(GeneratorConfig{Source: SourceSyslog, Rate: 10, Seed: 1})
	evs := g.Generate(time.Minute)
	if len(evs) < 300 {
		t.Fatalf("only %d events in a minute at 10/s", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatal("events out of order")
		}
	}
	for _, e := range evs {
		if e.Source != SourceSyslog || e.Host == "" || e.Message == "" {
			t.Fatalf("bad event: %+v", e)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := GeneratorConfig{Source: SourceFirewall, Rate: 5, Seed: 9}
	a := NewGenerator(cfg).Generate(time.Minute)
	b := NewGenerator(cfg).Generate(time.Minute)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].TS != b[i].TS || a[i].Message != b[i].Message {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestGeneratorSkewShiftsTimestamps(t *testing.T) {
	base := NewGenerator(GeneratorConfig{Rate: 20, Seed: 4}).Generate(time.Minute)
	skewed := NewGenerator(GeneratorConfig{Rate: 20, Seed: 4, Skew: 5 * time.Second}).Generate(time.Minute)
	if len(base) != len(skewed) {
		t.Fatal("skew changed event count")
	}
	for i := range base {
		if skewed[i].TS-base[i].TS != 5*time.Second {
			t.Fatalf("event %d skew = %v, want 5s", i, skewed[i].TS-base[i].TS)
		}
	}
}

func TestSynchronizerFitsOffsetAndDrift(t *testing.T) {
	// Sensor clock: capture*1.0001 + 3s (100000 ns/s drift, 3s offset).
	var sensor, capture []time.Duration
	for _, sec := range []float64{10, 100, 500, 1000, 3000} {
		c := time.Duration(sec * float64(time.Second))
		s := time.Duration(sec*1.0001*float64(time.Second)) + 3*time.Second
		capture = append(capture, c)
		sensor = append(sensor, s)
	}
	var sync Synchronizer
	if err := sync.Fit(sensor, capture); err != nil {
		t.Fatal(err)
	}
	offset, drift := sync.Model()
	if offset < 2900*time.Millisecond || offset > 3100*time.Millisecond {
		t.Errorf("offset = %v, want ~3s", offset)
	}
	if drift < 90_000 || drift > 110_000 {
		t.Errorf("drift = %v ns/s, want ~100000", drift)
	}
	// Correction should invert the model to within a millisecond.
	for i := range sensor {
		got := sync.Correct(sensor[i])
		if diff := got - capture[i]; diff < -time.Millisecond || diff > time.Millisecond {
			t.Errorf("Correct(%v) = %v, want %v", sensor[i], got, capture[i])
		}
	}
}

func TestSynchronizerSinglePoint(t *testing.T) {
	var sync Synchronizer
	if err := sync.Fit([]time.Duration{10 * time.Second}, []time.Duration{7 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if got := sync.Correct(20 * time.Second); got != 17*time.Second {
		t.Errorf("Correct = %v, want 17s", got)
	}
}

func TestSynchronizerErrors(t *testing.T) {
	var sync Synchronizer
	if err := sync.Fit(nil, nil); err == nil {
		t.Error("accepted empty references")
	}
	if err := sync.Fit([]time.Duration{1}, []time.Duration{1, 2}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	// Identical capture points: drift unfittable.
	if err := sync.Fit(
		[]time.Duration{time.Second, 2 * time.Second},
		[]time.Duration{time.Second, time.Second},
	); err == nil {
		t.Error("accepted degenerate points")
	}
	// Unfitted synchronizer is identity.
	var id Synchronizer
	if id.Correct(5*time.Second) != 5*time.Second {
		t.Error("unfitted synchronizer should be identity")
	}
}

func TestMergeSortedAndGrep(t *testing.T) {
	a := NewGenerator(GeneratorConfig{Source: SourceSyslog, Rate: 5, Seed: 1}).Generate(30 * time.Second)
	b := NewGenerator(GeneratorConfig{Source: SourceFirewall, Rate: 5, Seed: 2}).Generate(30 * time.Second)
	merged := MergeSorted(a, b)
	if len(merged) != len(a)+len(b) {
		t.Fatal("merge lost events")
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].TS < merged[i-1].TS {
			t.Fatal("merged stream out of order")
		}
	}
	denies := Grep(merged, "deny")
	if len(denies) == 0 {
		t.Error("no deny events found in firewall stream")
	}
	for _, e := range denies {
		if e.Source != SourceFirewall {
			t.Errorf("deny event from %v", e.Source)
		}
	}
}

func TestSourceSeverityStrings(t *testing.T) {
	if SourceFirewall.String() != "firewall" || SevCritical.String() != "critical" {
		t.Error("names wrong")
	}
}
