package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total"); again != c {
		t.Fatal("same name+labels must return the same counter handle")
	}
	g := r.Gauge("queue_depth")
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("verdicts_total", "action", "drop")
	b := r.Counter("verdicts_total", "action", "permit")
	if a == b {
		t.Fatal("different label values must be distinct series")
	}
	// Label order must not matter.
	x := r.Counter("multi", "b", "2", "a", "1")
	y := r.Counter("multi", "a", "1", "b", "2")
	if x != y {
		t.Fatal("label order changed series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("thing")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("thing")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("batch_size", []float64{1, 4, 16})
	for _, v := range []float64{0.5, 1, 2, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 108.5 {
		t.Fatalf("sum = %v, want 108.5", h.Sum())
	}
	snap := r.SeriesByName("batch_size")
	if len(snap) != 1 {
		t.Fatalf("series = %d, want 1", len(snap))
	}
	want := []Bucket{{1, 2}, {4, 3}, {16, 4}, {math.Inf(1), 5}}
	if !reflect.DeepEqual(snap[0].Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", snap[0].Buckets, want)
	}
}

func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits_total")
			g := r.Gauge("level")
			h := r.Histogram("sizes", []float64{10, 100})
			for j := 0; j < per; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 200))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total").Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	if got := r.Gauge("level").Value(); got != goroutines*per {
		t.Fatalf("gauge = %v, want %d", got, goroutines*per)
	}
	if got := r.Histogram("sizes", nil).Count(); got != goroutines*per {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*per)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total").Add(1)
	r.Counter("a_total", "k", "v2").Add(2)
	r.Counter("a_total", "k", "v1").Add(3)
	r.Gauge("m_gauge").Set(7)
	s1, s2 := r.Snapshot(), r.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("back-to-back snapshots differ")
	}
	names := make([]string, 0, len(s1))
	for _, s := range s1 {
		key := s.Name
		for _, l := range s.Labels {
			key += "/" + l.Key + "=" + l.Value
		}
		names = append(names, key)
	}
	want := []string{"a_total/k=v1", "a_total/k=v2", "m_gauge", "z_total"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("snapshot order = %v, want %v", names, want)
	}
}

func TestCollectorSumsDuplicateSeries(t *testing.T) {
	r := NewRegistry()
	// Two "instance blocks" emitting the same series must aggregate.
	blocks := []uint64{3, 4}
	r.RegisterCollector(func(e *Emitter) {
		for _, v := range blocks {
			e.Counter("block_events_total", v, "kind", "x")
		}
		e.Gauge("block_live", 1)
		e.Gauge("block_live", 1)
	})
	// Collector output also merges into owned series of the same key.
	r.Counter("block_events_total", "kind", "x").Add(10)
	snap := r.SeriesByName("block_events_total")
	if len(snap) != 1 || snap[0].Value != 17 {
		t.Fatalf("summed series = %+v, want single value 17", snap)
	}
	if live := r.SeriesByName("block_live"); len(live) != 1 || live[0].Value != 2 {
		t.Fatalf("gauge sum = %+v, want 2", live)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Help("up_total", "things that went up")
	r.Counter("up_total", "stage", "in\"gest\n").Add(3)
	r.Gauge("temp").Set(1.5)
	r.Histogram("sz", []float64{2}).Observe(1)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE sz histogram\n",
		"sz_bucket{le=\"2\"} 1\n",
		"sz_bucket{le=\"+Inf\"} 1\n",
		"sz_sum 1\n",
		"sz_count 1\n",
		"# TYPE temp gauge\n",
		"temp 1.5\n",
		"# HELP up_total things that went up\n",
		"# TYPE up_total counter\n",
		`up_total{stage="in\"gest\n"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE up_total") != 1 {
		t.Fatalf("TYPE line must appear once per family:\n%s", out)
	}
}

func TestResetNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(5)
	r.Counter("b_total").Add(7)
	r.Histogram("h", []float64{1}).Observe(3)
	r.ResetNames("a_total", "h")
	if got := r.Counter("a_total").Value(); got != 0 {
		t.Fatalf("a_total = %d after reset", got)
	}
	if got := r.Counter("b_total").Value(); got != 7 {
		t.Fatalf("b_total = %d, reset must be targeted", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 0 {
		t.Fatalf("histogram count = %d after reset", got)
	}
}

func TestRecordStageAndTracer(t *testing.T) {
	r := NewRegistry()
	r.RecordStage("ingest", 5*time.Millisecond)
	r.RecordStage("ingest", 5*time.Millisecond)
	done := r.StartSpan("train")
	done()
	nanos := r.SeriesByName(StageNanosName)
	calls := r.SeriesByName(StageCallsName)
	if len(nanos) != 2 || len(calls) != 2 {
		t.Fatalf("stage series = %d/%d, want 2/2", len(nanos), len(calls))
	}
	if v := r.Counter(StageNanosName, "stage", "ingest").Value(); v != uint64(10*time.Millisecond) {
		t.Fatalf("ingest nanos = %d, want 10ms", v)
	}
	spans := r.Tracer().Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[2].Name != "train" {
		t.Fatalf("last span = %q, want train", spans[2].Name)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	base := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		tr.Record("s", base.Add(time.Duration(i)), time.Duration(i))
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained = %d, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := time.Duration(6 + i); sp.Dur != want {
			t.Fatalf("span %d dur = %v, want %v (oldest-first order)", i, sp.Dur, want)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Total uint64 `json:"total_spans"`
		Spans []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("trace dump is not valid JSON: %v", err)
	}
	if dump.Total != 10 || len(dump.Spans) != 4 {
		t.Fatalf("dump = %+v", dump)
	}
}
