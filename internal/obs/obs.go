// Package obs is campuslab's operational observability layer: a metrics
// registry of atomic counters, gauges, and fixed-bucket histograms with
// labeled families, collector callbacks for aggregating per-instance
// counter blocks at scrape time, a deterministic snapshot API, Prometheus
// text exposition, and span-based stage tracing for the slow loop.
//
// Design constraints, in order:
//
//  1. The dataplane fast path is allocation-free at ~tens of ns/packet
//     and must stay that way. Hot components therefore keep writing the
//     same per-instance atomics they always did (padded to a cache line
//     so unrelated counters never false-share) and register a collector
//     that sums those blocks into registry series only when a snapshot
//     is taken. A scrape costs the scraper, never the packet path.
//  2. Snapshots are deterministic: series are sorted by (name, labels),
//     values format identically across runs, and nothing reads the wall
//     clock, so two runs of the same deterministic workload produce
//     byte-identical snapshots for the deterministic series.
//  3. The registry is safe for concurrent writers — instruments are
//     plain atomics, registration takes a mutex once per handle.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter, padded so that
// adjacent counters in one block never share a cache line (the same
// padded-atomic style as the dataplane's pipelineState counters).
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an atomic float64 gauge (stored as bits, CAS-free loads and
// stores), padded like Counter.
type Gauge struct {
	bits atomic.Uint64
	_    [56]byte
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) reset() { g.bits.Store(0) }

// Histogram is a fixed-bucket histogram: upper bounds are set at
// construction, observation is a bounded scan plus two atomic adds —
// allocation-free and safe for concurrent observers.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	n       atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sumBits.Store(0)
	h.n.Store(0)
}

// Kind classifies a series.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Label is one key=value pair on a series.
type Label struct{ Key, Value string }

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	LE    float64 // upper bound; +Inf for the last
	Count uint64  // cumulative count of observations <= LE
}

// Series is one metric series in a snapshot.
type Series struct {
	Name   string
	Labels []Label
	Kind   Kind
	// Value holds the counter or gauge value.
	Value float64
	// Buckets/Sum/Count are set for histograms.
	Buckets []Bucket
	Sum     float64
	Count   uint64
}

// entry is one registered instrument.
type entry struct {
	name   string
	labels []Label
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry binds named, labeled series to instruments and collectors.
type Registry struct {
	mu         sync.Mutex
	entries    map[string]*entry
	help       map[string]string
	collectors []func(*Emitter)
	tracer     *Tracer
}

// NewRegistry returns an empty registry with its own span tracer.
func NewRegistry() *Registry {
	return &Registry{
		entries: make(map[string]*entry),
		help:    make(map[string]string),
		tracer:  NewTracer(DefaultTraceCap),
	}
}

// Default is the process-wide registry every component records into.
var Default = NewRegistry()

// labelsOf turns alternating key/value strings into sorted labels.
func labelsOf(kv []string) []Label {
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	ls := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// seriesKey is the canonical map key for (name, labels).
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte(0xff)
		sb.WriteString(l.Key)
		sb.WriteByte(0xfe)
		sb.WriteString(l.Value)
	}
	return sb.String()
}

func (r *Registry) instrument(name string, kind Kind, kv []string, bounds []float64) *entry {
	labels := labelsOf(kv)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: %s registered as %v, requested as %v", name, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, labels: labels, kind: kind}
	switch kind {
	case KindCounter:
		e.c = &Counter{}
	case KindGauge:
		e.g = &Gauge{}
	case KindHistogram:
		e.h = newHistogram(bounds)
	}
	r.entries[key] = e
	return e
}

// Counter returns the counter for name with the given label pairs,
// registering it on first use. Repeated calls return the same instrument.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	return r.instrument(name, KindCounter, kv, nil).c
}

// Gauge returns the gauge for name with the given label pairs.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	return r.instrument(name, KindGauge, kv, nil).g
}

// Histogram returns the histogram for name with the given bucket upper
// bounds and label pairs. Bounds are fixed at first registration.
func (r *Registry) Histogram(name string, bounds []float64, kv ...string) *Histogram {
	return r.instrument(name, KindHistogram, kv, bounds).h
}

// Help records the help text rendered for a family in text exposition.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// RegisterCollector adds a callback run on every snapshot. Collectors
// emit samples for state the registry does not own (per-instance counter
// blocks, live store statistics). A collector must not call back into
// the registry — it runs with the registry lock held.
func (r *Registry) RegisterCollector(fn func(*Emitter)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Emitter accumulates collector samples during a snapshot. Samples with
// the same (name, labels) are summed, which is how per-instance counter
// blocks aggregate into one process-wide series.
type Emitter struct {
	m map[string]*Series
}

func (e *Emitter) add(name string, kind Kind, v float64, kv []string) {
	labels := labelsOf(kv)
	key := seriesKey(name, labels)
	if s, ok := e.m[key]; ok {
		s.Value += v
		return
	}
	e.m[key] = &Series{Name: name, Labels: labels, Kind: kind, Value: v}
}

// Counter emits one counter sample.
func (e *Emitter) Counter(name string, v uint64, kv ...string) {
	e.add(name, KindCounter, float64(v), kv)
}

// Gauge emits one gauge sample.
func (e *Emitter) Gauge(name string, v float64, kv ...string) {
	e.add(name, KindGauge, v, kv)
}

// Snapshot returns every series — owned instruments plus collector
// output — deterministically sorted by name, then labels.
func (r *Registry) Snapshot() []Series {
	r.mu.Lock()
	em := &Emitter{m: make(map[string]*Series, len(r.entries))}
	for key, e := range r.entries {
		s := Series{Name: e.name, Labels: e.labels, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			s.Value = float64(e.c.Value())
		case KindGauge:
			s.Value = e.g.Value()
		case KindHistogram:
			s.Buckets = make([]Bucket, len(e.h.counts))
			cum := uint64(0)
			for i := range e.h.counts {
				cum += e.h.counts[i].Load()
				le := math.Inf(1)
				if i < len(e.h.bounds) {
					le = e.h.bounds[i]
				}
				s.Buckets[i] = Bucket{LE: le, Count: cum}
			}
			s.Sum = e.h.Sum()
			s.Count = e.h.Count()
		}
		em.m[key] = &s
	}
	for _, fn := range r.collectors {
		fn(em)
	}
	r.mu.Unlock()

	out := make([]Series, 0, len(em.m))
	keys := make([]string, 0, len(em.m))
	for k := range em.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, *em.m[k])
	}
	return out
}

// SeriesByName returns the snapshot series of one family, sorted.
func (r *Registry) SeriesByName(name string) []Series {
	var out []Series
	for _, s := range r.Snapshot() {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// ResetNames zeroes the owned instruments of the given families (test
// and view support; collector-backed series are not affected).
func (r *Registry) ResetNames(names ...string) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if !want[e.name] {
			continue
		}
		switch e.kind {
		case KindCounter:
			e.c.reset()
		case KindGauge:
			e.g.reset()
		case KindHistogram:
			e.h.reset()
		}
	}
}

// fmtVal formats values deterministically for text exposition.
func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func fmtLE(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value for the text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func writeLabels(sb *strings.Builder, labels []Label, extra ...Label) {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return
	}
	sb.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
}

// WriteText renders the snapshot in Prometheus text exposition format
// (version 0.0.4): deterministic ordering, one TYPE line per family.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	var sb strings.Builder
	lastFamily := ""
	for _, s := range r.Snapshot() {
		if s.Name != lastFamily {
			lastFamily = s.Name
			if h, ok := help[s.Name]; ok {
				fmt.Fprintf(&sb, "# HELP %s %s\n", s.Name, h)
			}
			fmt.Fprintf(&sb, "# TYPE %s %s\n", s.Name, s.Kind)
		}
		switch s.Kind {
		case KindHistogram:
			for _, b := range s.Buckets {
				sb.WriteString(s.Name)
				sb.WriteString("_bucket")
				writeLabels(&sb, s.Labels, Label{Key: "le", Value: fmtLE(b.LE)})
				sb.WriteByte(' ')
				sb.WriteString(strconv.FormatUint(b.Count, 10))
				sb.WriteByte('\n')
			}
			sb.WriteString(s.Name)
			sb.WriteString("_sum")
			writeLabels(&sb, s.Labels)
			sb.WriteByte(' ')
			sb.WriteString(fmtVal(s.Sum))
			sb.WriteByte('\n')
			sb.WriteString(s.Name)
			sb.WriteString("_count")
			writeLabels(&sb, s.Labels)
			sb.WriteByte(' ')
			sb.WriteString(strconv.FormatUint(s.Count, 10))
			sb.WriteByte('\n')
		default:
			sb.WriteString(s.Name)
			writeLabels(&sb, s.Labels)
			sb.WriteByte(' ')
			sb.WriteString(fmtVal(s.Value))
			sb.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Stage family names: every slow-loop stage (ingest → featurize → train →
// extract → compile → install) and fast-loop tick records one call count
// and one cumulative wall-time counter under its stage label.
const (
	StageNanosName = "campuslab_stage_nanos_total"
	StageCallsName = "campuslab_stage_calls_total"

	// ShardContentionName counts contended datastore shard-lock
	// acquisitions; defined here so the telemetry compatibility view and
	// the datastore write the same series.
	ShardContentionName = "campuslab_store_shard_contention_total"

	// Fleet ingest counter names (registered by internal/fleet); defined
	// here so determinism tests can whitelist the scenario-determined
	// fleet series without importing the fleet package.
	FleetBatchesName = "campuslab_fleet_server_batches_total"
	FleetFramesName  = "campuslab_fleet_server_frames_total"
)

// RecordStage adds one invocation of stage taking d of wall time, and
// appends a span to the registry's tracer.
func (r *Registry) RecordStage(stage string, d time.Duration) {
	r.Counter(StageNanosName, "stage", stage).Add(uint64(d))
	r.Counter(StageCallsName, "stage", stage).Inc()
	r.tracer.Record(stage, time.Now().Add(-d), d)
}

// StartSpan begins a stage span; the returned func ends it, recording
// both the stage counters and the trace entry. Usage:
//
//	defer obs.Default.StartSpan("ingest")()
func (r *Registry) StartSpan(stage string) func() {
	start := time.Now()
	return func() {
		d := time.Since(start)
		r.Counter(StageNanosName, "stage", stage).Add(uint64(d))
		r.Counter(StageCallsName, "stage", stage).Inc()
		r.tracer.Record(stage, start, d)
	}
}

// Tracer returns the registry's span tracer.
func (r *Registry) Tracer() *Tracer { return r.tracer }
