package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultTraceCap is the span ring capacity of a new registry's tracer.
const DefaultTraceCap = 512

// Span is one timed stage execution.
type Span struct {
	Name  string        `json:"name"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
}

// Tracer keeps the most recent spans in a bounded ring. Recording is a
// mutex-protected slot write (no allocation after the ring fills); the
// slow loop records a handful of spans per pipeline pass, so this is
// nowhere near any hot path.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span
	cap   int
	next  int
	total uint64
}

// NewTracer returns a tracer holding the last capacity spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{cap: capacity}
}

// Record appends one span, evicting the oldest when full.
func (t *Tracer) Record(name string, start time.Time, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := Span{Name: name, Start: start, Dur: d}
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.next] = sp
		t.next = (t.next + 1) % t.cap
	}
	t.total++
}

// Total returns the number of spans ever recorded (including evicted).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// traceDump is the JSON shape served at /debug/trace.
type traceDump struct {
	Total uint64 `json:"total_spans"`
	Spans []Span `json:"spans"`
}

// WriteJSON dumps the retained spans as JSON, oldest first.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	dump := traceDump{Total: t.total}
	dump.Spans = append(dump.Spans, t.ring[t.next:]...)
	dump.Spans = append(dump.Spans, t.ring[:t.next]...)
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}
