package traffic

import (
	"container/heap"
	"fmt"
	"net/netip"
	"time"

	"campuslab/internal/packet"
)

// AppClass is one application in the campus mix.
type AppClass uint8

// Application classes in the benign campus mix.
const (
	AppWeb AppClass = iota
	AppVideo
	AppDNS
	AppMail
	AppSSH
	AppNTP
	AppBackup
	numAppClasses
)

var appNames = [numAppClasses]string{"web", "video", "dns", "mail", "ssh", "ntp", "backup"}

// String returns the application name.
func (a AppClass) String() string {
	if int(a) < len(appNames) {
		return appNames[a]
	}
	return fmt.Sprintf("app-%d", uint8(a))
}

// Profile parameterizes the benign campus workload.
type Profile struct {
	// Plan is the campus address layout; nil means DefaultPlan(200).
	Plan *AddressPlan
	// FlowsPerSecond is the mean flow arrival rate at peak hours.
	FlowsPerSecond float64
	// Mix gives per-app arrival weights; zero value uses a realistic
	// campus mix (web+video dominant, DNS chatty, nightly backup).
	Mix [numAppClasses]float64
	// Duration of the generated scenario.
	Duration time.Duration
	// StartHour is the local wall-clock hour at scenario start, feeding
	// the diurnal load curve (0-23).
	StartHour int
	// Diurnal enables the day/night load modulation.
	Diurnal bool
	// Seed makes the workload reproducible.
	Seed int64
}

// withDefaults returns p with zero fields replaced by campus defaults.
func (p Profile) withDefaults() Profile {
	if p.Plan == nil {
		p.Plan = DefaultPlan(200)
	}
	if p.FlowsPerSecond <= 0 {
		p.FlowsPerSecond = 100
	}
	if p.Duration <= 0 {
		p.Duration = time.Minute
	}
	var zero [numAppClasses]float64
	if p.Mix == zero {
		p.Mix = [numAppClasses]float64{
			AppWeb: 0.42, AppVideo: 0.14, AppDNS: 0.25,
			AppMail: 0.07, AppSSH: 0.05, AppNTP: 0.04, AppBackup: 0.03,
		}
	}
	return p
}

// diurnalFactor returns the load multiplier for the wall-clock hour: the
// classic campus curve — quiet pre-dawn, ramp through the morning, peak
// mid-afternoon, evening dorm traffic, backup spike at night.
func diurnalFactor(hour float64) float64 {
	h := int(hour) % 24
	curve := [24]float64{
		0.25, 0.2, 0.15, 0.15, 0.2, 0.3, // 0-5
		0.45, 0.6, 0.8, 0.95, 1.0, 1.0, // 6-11
		0.95, 1.0, 1.0, 0.95, 0.9, 0.8, // 12-17
		0.75, 0.7, 0.65, 0.55, 0.45, 0.35, // 18-23
	}
	next := curve[(h+1)%24]
	frac := hour - float64(int(hour))
	return curve[h]*(1-frac) + next*frac
}

// CampusGenerator emits the benign campus mix in timestamp order.
type CampusGenerator struct {
	prof    Profile
	rng     *RNG
	fb      *frameBuilder
	heap    emitterHeap
	nextFID uint64
	pending []Frame // frames ready to hand out (a flow step can make >1)
}

// NewCampus returns a generator for the given profile.
func NewCampus(p Profile) *CampusGenerator {
	p = p.withDefaults()
	g := &CampusGenerator{
		prof: p,
		rng:  NewRNG(p.Seed),
		fb:   newFrameBuilder(),
	}
	arr := &arrivalProcess{gen: g}
	arr.schedule(0)
	heap.Init(&g.heap)
	heap.Push(&g.heap, arr)
	return g
}

// Plan exposes the address plan in use (useful to attack generators and
// tests that must agree on the victim population).
func (g *CampusGenerator) Plan() *AddressPlan { return g.prof.Plan }

// Next implements Generator.
func (g *CampusGenerator) Next(f *Frame) bool {
	for {
		if len(g.pending) > 0 {
			*f = g.pending[0]
			g.pending = g.pending[1:]
			return true
		}
		if g.heap.Len() == 0 {
			return false
		}
		e := g.heap[0]
		var out Frame
		alive := e.emit(&out)
		if alive {
			heap.Fix(&g.heap, 0)
		} else {
			heap.Pop(&g.heap)
		}
		if out.Data != nil {
			*f = out
			return true
		}
	}
}

// arrivalProcess spawns flow emitters following a (possibly diurnal)
// Poisson process. It emits no frames itself.
type arrivalProcess struct {
	gen *CampusGenerator
	at  time.Duration
}

func (a *arrivalProcess) nextTS() time.Duration { return a.at }

func (a *arrivalProcess) schedule(now time.Duration) {
	rate := a.gen.prof.FlowsPerSecond
	if a.gen.prof.Diurnal {
		hour := float64(a.gen.prof.StartHour) + now.Hours()
		rate *= diurnalFactor(hour)
	}
	if rate < 0.001 {
		rate = 0.001
	}
	a.at = now + time.Duration(a.gen.rng.Exp(1/rate)*float64(time.Second))
}

func (a *arrivalProcess) emit(f *Frame) bool {
	now := a.at
	if now > a.gen.prof.Duration {
		return false
	}
	a.gen.spawnFlow(now)
	a.schedule(now)
	return true
}

// pickApp draws an application class from the mix.
func (g *CampusGenerator) pickApp() AppClass {
	var total float64
	for _, w := range g.prof.Mix {
		total += w
	}
	u := g.rng.Float64() * total
	var acc float64
	for i, w := range g.prof.Mix {
		acc += w
		if u <= acc {
			return AppClass(i)
		}
	}
	return AppWeb
}

// spawnFlow creates a new benign flow emitter starting at now.
func (g *CampusGenerator) spawnFlow(now time.Duration) {
	app := g.pickApp()
	plan := g.prof.Plan
	client := plan.Host(g.rng.Intn(plan.TotalHosts()))
	cport := uint16(32768 + g.rng.Intn(28000))
	g.nextFID++
	fid := g.nextFID

	var em emitter
	switch app {
	case AppDNS:
		server := plan.Resolvers[g.rng.Zipf(len(plan.Resolvers))]
		em = newDNSExchange(g, now, fid, client, server, cport)
	case AppNTP:
		em = &udpExchange{
			gen: g, at: now, fid: fid,
			client: client, server: netip.AddrFrom4([4]byte{129, 6, 15, 28}),
			cport: cport, sport: packet.PortNTP,
			reqLen: 48, respLen: 48,
			rtt: g.rttTo(false),
		}
	default:
		em = newTCPFlow(g, now, fid, app, client, cport)
	}
	heap.Push(&g.heap, em)
}

// rttTo draws a round-trip time; internal targets are LAN-fast.
func (g *CampusGenerator) rttTo(internal bool) time.Duration {
	if internal {
		return time.Duration(g.rng.LogNormal(-1.0, 0.4) * float64(time.Millisecond))
	}
	return time.Duration(g.rng.LogNormal(2.8, 0.6) * float64(time.Millisecond))
}

// tcpFlow is a scripted TCP connection: handshake, request, response
// packets, teardown. Sizes follow per-app distributions.
type tcpFlow struct {
	gen    *CampusGenerator
	at     time.Duration
	fid    uint64
	app    AppClass
	client netip.Addr
	server netip.Addr
	cport  uint16
	sport  uint16
	rtt    time.Duration

	phase      int
	respLeft   int // response bytes still to send
	reqLeft    int
	seqC, seqS uint32
	dir        Direction
}

const tcpMSS = 1448

func newTCPFlow(g *CampusGenerator, now time.Duration, fid uint64, app AppClass, client netip.Addr, cport uint16) *tcpFlow {
	f := &tcpFlow{
		gen: g, at: now, fid: fid, app: app,
		client: client, cport: cport,
		seqC: uint32(g.rng.Uint64()), seqS: uint32(g.rng.Uint64()),
	}
	plan := g.prof.Plan
	switch app {
	case AppWeb:
		f.server, f.sport = plan.WebServers[g.rng.Zipf(len(plan.WebServers))], packet.PortHTTPS
		f.reqLeft = int(g.rng.LogNormal(6.0, 0.8)) // ~400B request
		f.respLeft = int(g.rng.Pareto(4000, 1.2))  // heavy-tailed response
	case AppVideo:
		f.server, f.sport = plan.VideoCDNs[g.rng.Zipf(len(plan.VideoCDNs))], packet.PortHTTPS
		f.reqLeft = 500
		f.respLeft = int(g.rng.Pareto(200_000, 1.1)) // video segments, very heavy tail
	case AppMail:
		f.server, f.sport = plan.MailServers[g.rng.Zipf(len(plan.MailServers))], packet.PortIMAPS
		f.reqLeft = int(g.rng.LogNormal(5.5, 0.7))
		f.respLeft = int(g.rng.LogNormal(8.5, 1.2))
	case AppSSH:
		// internal host-to-host administration
		f.server, f.sport = plan.Host(g.rng.Intn(plan.TotalHosts())), packet.PortSSH
		f.reqLeft = int(g.rng.LogNormal(7.0, 1.0))
		f.respLeft = int(g.rng.LogNormal(7.5, 1.0))
	case AppBackup:
		f.server, f.sport = netip.AddrFrom4([4]byte{10, 7, 1, 10}), 873 // rsync to admin net
		f.reqLeft = 1000
		f.respLeft = 200
		f.reqLeft = int(g.rng.Pareto(500_000, 1.3)) // uploads, not downloads
	default:
		f.server, f.sport = plan.WebServers[0], packet.PortHTTPS
		f.reqLeft, f.respLeft = 400, 4000
	}
	if f.respLeft > 30_000_000 {
		f.respLeft = 30_000_000 // cap the tail so one flow can't run forever
	}
	if f.reqLeft > 10_000_000 {
		f.reqLeft = 10_000_000
	}
	f.rtt = g.rttTo(plan.Contains(f.server))
	return f
}

func (f *tcpFlow) nextTS() time.Duration { return f.at }

func (f *tcpFlow) frame(out *Frame, src, dst netip.Addr, sport, dport uint16, flags packet.TCPFlags, payload int) {
	out.TS = f.at
	out.Data = f.gen.fb.tcpFrame(src, dst, sport, dport, flags, f.seqC, f.seqS, payload)
	out.Dir = directionOf(f.gen.prof.Plan, src, dst)
	out.Label = LabelBenign
	out.FlowID = f.fid
}

func (f *tcpFlow) emit(out *Frame) bool {
	g := f.gen
	c2s := func(fl packet.TCPFlags, n int) {
		f.frame(out, f.client, f.server, f.cport, f.sport, fl, n)
		f.seqC += uint32(n)
	}
	s2c := func(fl packet.TCPFlags, n int) {
		f.frame(out, f.server, f.client, f.sport, f.cport, fl, n)
		f.seqS += uint32(n)
	}
	switch f.phase {
	case 0: // SYN
		c2s(packet.TCPSyn, 0)
		f.phase, f.at = 1, f.at+f.rtt/2
	case 1: // SYN|ACK
		s2c(packet.TCPSyn|packet.TCPAck, 0)
		f.phase, f.at = 2, f.at+f.rtt/2
	case 2: // ACK
		c2s(packet.TCPAck, 0)
		f.phase = 3
		f.at += time.Duration(g.rng.Exp(float64(2 * time.Millisecond)))
	case 3: // request data
		n := min(f.reqLeft, tcpMSS)
		c2s(packet.TCPAck|packet.TCPPsh, n)
		f.reqLeft -= n
		if f.reqLeft <= 0 {
			f.phase = 4
			f.at += f.rtt / 2
		} else {
			f.at += time.Duration(g.rng.Exp(float64(300 * time.Microsecond)))
		}
	case 4: // response data
		n := min(f.respLeft, tcpMSS)
		s2c(packet.TCPAck|packet.TCPPsh, n)
		f.respLeft -= n
		if f.respLeft <= 0 {
			f.phase = 5
			f.at += f.rtt / 2
		} else {
			// pacing approximates cwnd growth: fast once warmed up
			f.at += time.Duration(g.rng.Exp(float64(120 * time.Microsecond)))
		}
	case 5: // FIN from client
		c2s(packet.TCPFin|packet.TCPAck, 0)
		f.phase, f.at = 6, f.at+f.rtt/2
	case 6: // FIN|ACK from server
		s2c(packet.TCPFin|packet.TCPAck, 0)
		f.phase, f.at = 7, f.at+f.rtt/2
	case 7: // final ACK
		c2s(packet.TCPAck, 0)
		return false
	}
	return true
}

// udpExchange is a single request/response datagram pair (NTP etc.).
type udpExchange struct {
	gen             *CampusGenerator
	at              time.Duration
	fid             uint64
	client, server  netip.Addr
	cport, sport    uint16
	reqLen, respLen int
	rtt             time.Duration
	phase           int
}

func (u *udpExchange) nextTS() time.Duration { return u.at }

func (u *udpExchange) emit(out *Frame) bool {
	out.TS = u.at
	out.Label = LabelBenign
	out.FlowID = u.fid
	if u.phase == 0 {
		out.Data = u.gen.fb.udpFrame(u.client, u.server, u.cport, u.sport, u.reqLen)
		out.Dir = directionOf(u.gen.prof.Plan, u.client, u.server)
		u.phase, u.at = 1, u.at+u.rtt
		return true
	}
	out.Data = u.gen.fb.udpFrame(u.server, u.client, u.sport, u.cport, u.respLen)
	out.Dir = directionOf(u.gen.prof.Plan, u.server, u.client)
	return false
}

// dnsExchange is a benign DNS query/response pair with a realistic domain
// catalog and response sizing.
type dnsExchange struct {
	gen            *CampusGenerator
	at             time.Duration
	fid            uint64
	client, server netip.Addr
	cport          uint16
	rtt            time.Duration
	phase          int
	q              packet.DNS
	r              packet.DNS
}

// benignDomains is the campus domain popularity catalog.
var benignDomains = []string{
	"www.google.com", "www.ucsb.edu", "canvas.ucsb.edu", "github.com",
	"www.youtube.com", "api.weather.gov", "pool.ntp.org", "updates.ubuntu.com",
	"mail.ucsb.edu", "scholar.google.com", "www.wikipedia.org", "cdn.jsdelivr.net",
	"registrar.ucsb.edu", "library.ucsb.edu", "zoom.us", "slack.com",
}

func newDNSExchange(g *CampusGenerator, now time.Duration, fid uint64, client, server netip.Addr, cport uint16) *dnsExchange {
	d := &dnsExchange{
		gen: g, at: now, fid: fid,
		client: client, server: server, cport: cport,
		rtt: g.rttTo(g.prof.Plan.Contains(server)),
	}
	name := benignDomains[g.rng.Zipf(len(benignDomains))]
	qt := packet.DNSTypeA
	switch {
	case g.rng.Bool(0.25):
		qt = packet.DNSTypeAAAA
	case g.rng.Bool(0.04):
		// Legacy resolvers and debugging tools still issue ANY queries;
		// benign ANY must not be sufficient evidence of amplification.
		qt = packet.DNSTypeANY
	case g.rng.Bool(0.03):
		qt = packet.DNSTypeTXT
	}
	id := uint16(g.rng.Uint64())
	d.q = packet.DNS{
		ID: id, RD: true,
		Questions: []packet.DNSQuestion{{Name: name, Type: qt, Class: 1}},
	}
	var ans []packet.DNSResourceRecord
	switch qt {
	case packet.DNSTypeTXT:
		// SPF/DKIM-style records: few answers, bulky blobs.
		for i, n := 0, 2+g.rng.Intn(3); i < n; i++ {
			ans = append(ans, packet.DNSResourceRecord{
				Name: name, Type: qt, Class: 1, TTL: 300,
				Data: make([]byte, 80+g.rng.Intn(170)),
			})
		}
	case packet.DNSTypeANY:
		// Legitimate ANY responses return the whole mixed RRset.
		for i, n := 0, 3+g.rng.Intn(4); i < n; i++ {
			rtype, rdata := packet.DNSTypeA, make([]byte, 4)
			if g.rng.Bool(0.4) {
				rtype, rdata = packet.DNSTypeTXT, make([]byte, 40+g.rng.Intn(120))
			}
			ans = append(ans, packet.DNSResourceRecord{Name: name, Type: rtype, Class: 1, TTL: 300, Data: rdata})
		}
	default:
		for i, n := 0, 1+g.rng.Intn(5); i < n; i++ {
			rdata := []byte{93, 184, byte(g.rng.Intn(256)), byte(g.rng.Intn(256))}
			if qt == packet.DNSTypeAAAA {
				rdata = make([]byte, 16)
				rdata[0], rdata[1] = 0x20, 0x01
			}
			ans = append(ans, packet.DNSResourceRecord{Name: name, Type: qt, Class: 1, TTL: 300, Data: rdata})
		}
	}
	d.r = packet.DNS{
		ID: id, QR: true, RD: true, RA: true,
		Questions: d.q.Questions,
		Answers:   ans,
	}
	return d
}

func (d *dnsExchange) nextTS() time.Duration { return d.at }

func (d *dnsExchange) emit(out *Frame) bool {
	out.TS = d.at
	out.Label = LabelBenign
	out.FlowID = d.fid
	if d.phase == 0 {
		out.Data = d.gen.fb.dnsFrame(d.client, d.server, d.cport, packet.PortDNS, &d.q)
		out.Dir = directionOf(d.gen.prof.Plan, d.client, d.server)
		d.phase, d.at = 1, d.at+d.rtt
		return true
	}
	out.Data = d.gen.fb.dnsFrame(d.server, d.client, packet.PortDNS, d.cport, &d.r)
	out.Dir = directionOf(d.gen.prof.Plan, d.server, d.client)
	return false
}
