package traffic

import (
	"math"
	"math/rand"
)

// RNG wraps a seeded PRNG with the distributions the generators draw from.
// All generation is deterministic given the seed, which is what makes the
// cross-campus reproducibility experiments exact.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uint64 returns a uniform 64-bit draw.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Exp returns an exponential draw with the given mean.
func (g *RNG) Exp(mean float64) float64 { return g.r.ExpFloat64() * mean }

// Pareto returns a bounded Pareto draw with shape alpha and scale xm.
// Heavy-tailed flow sizes in campus traffic follow this shape.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// LogNormal returns a draw from exp(N(mu, sigma)).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.r.NormFloat64()*sigma + mu)
}

// Normal returns a draw from N(mu, sigma).
func (g *RNG) Normal(mu, sigma float64) float64 {
	return g.r.NormFloat64()*sigma + mu
}

// Zipf returns a draw in [0, n) with Zipfian popularity (s=1.2), used for
// destination/domain popularity.
func (g *RNG) Zipf(n int) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF sampling over a truncated zeta distribution; n is small
	// (domain and host catalogs), so a linear walk is fine and avoids
	// keeping per-n state.
	const s = 1.2
	u := g.r.Float64()
	var total float64
	for i := 1; i <= n; i++ {
		total += 1 / math.Pow(float64(i), s)
	}
	u *= total
	var acc float64
	for i := 1; i <= n; i++ {
		acc += 1 / math.Pow(float64(i), s)
		if u <= acc {
			return i - 1
		}
	}
	return n - 1
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }
