package traffic

import (
	"fmt"
	"net/netip"

	"campuslab/internal/packet"
)

// Department is one campus subnet with its population of hosts.
type Department struct {
	Name   string
	Prefix netip.Prefix // e.g. 10.3.0.0/16
	Hosts  int          // number of active hosts
}

// AddressPlan is the campus addressing layout plus catalogs of external
// endpoints. It is shared by the benign and attack generators so that the
// same hosts appear consistently across traffic classes.
type AddressPlan struct {
	CampusPrefix netip.Prefix // covers all departments
	Departments  []Department
	// External catalogs, ordered by popularity (index 0 = most popular).
	WebServers   []netip.Addr
	VideoCDNs    []netip.Addr
	Resolvers    []netip.Addr // campus/upstream DNS resolvers
	MailServers  []netip.Addr
	OpenResolver []netip.Addr // abused open resolvers (DNS amplification)
}

// DefaultPlan returns a UCSB-like campus plan: a 10.0.0.0/8 campus with
// per-department /16s and realistic external catalogs. hostsPerDept scales
// the population.
func DefaultPlan(hostsPerDept int) *AddressPlan {
	if hostsPerDept <= 0 {
		hostsPerDept = 200
	}
	deptNames := []string{"cs", "ece", "physics", "library", "dorms-a", "dorms-b", "admin", "med"}
	p := &AddressPlan{CampusPrefix: netip.MustParsePrefix("10.0.0.0/8")}
	for i, name := range deptNames {
		p.Departments = append(p.Departments, Department{
			Name:   name,
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i + 1), 0, 0}), 16),
			Hosts:  hostsPerDept,
		})
	}
	mk := func(base [4]byte, n int) []netip.Addr {
		out := make([]netip.Addr, n)
		for i := range out {
			a := base
			a[2] += byte(i / 250)
			a[3] = byte(1 + i%250)
			out[i] = netip.AddrFrom4(a)
		}
		return out
	}
	p.WebServers = mk([4]byte{151, 101, 0, 0}, 60)
	p.VideoCDNs = mk([4]byte{23, 56, 0, 0}, 20)
	p.Resolvers = []netip.Addr{
		netip.MustParseAddr("10.0.0.53"),
		netip.MustParseAddr("8.8.8.8"),
		netip.MustParseAddr("1.1.1.1"),
	}
	p.MailServers = mk([4]byte{64, 233, 160, 0}, 8)
	p.OpenResolver = mk([4]byte{203, 0, 113, 0}, 120)
	return p
}

// TotalHosts returns the campus population size.
func (p *AddressPlan) TotalHosts() int {
	n := 0
	for _, d := range p.Departments {
		n += d.Hosts
	}
	return n
}

// Host returns the address of the i-th campus host (0-based, department-
// major order). It panics if i is out of range.
func (p *AddressPlan) Host(i int) netip.Addr {
	for _, d := range p.Departments {
		if i < d.Hosts {
			base := d.Prefix.Addr().As4()
			// .0.0 and .x.0/.x.255 avoided; hosts spread across /24s.
			base[2] = byte(1 + i/250)
			base[3] = byte(1 + i%250)
			return netip.AddrFrom4(base)
		}
		i -= d.Hosts
	}
	panic(fmt.Sprintf("traffic: host index %d out of range", i))
}

// Contains reports whether addr belongs to the campus.
func (p *AddressPlan) Contains(addr netip.Addr) bool {
	return p.CampusPrefix.Contains(addr)
}

// DepartmentOf returns the department containing addr, or nil.
func (p *AddressPlan) DepartmentOf(addr netip.Addr) *Department {
	for i := range p.Departments {
		if p.Departments[i].Prefix.Contains(addr) {
			return &p.Departments[i]
		}
	}
	return nil
}

// macFor derives a stable locally-administered MAC from an IP address so
// frames from the same host always carry the same MAC.
func macFor(a netip.Addr) packet.MACAddr {
	b := a.As4()
	return packet.MACAddr{0x02, 0x1b, b[0], b[1], b[2], b[3]}
}

// gatewayMAC is the border router's MAC, the far side of every flow seen
// at the edge tap.
var gatewayMAC = packet.MACAddr{0x02, 0x00, 0x00, 0x00, 0xff, 0x01}
