// Package traffic synthesizes campus network workloads: a benign
// application mix with heavy-tailed flow sizes and a diurnal load curve,
// plus the attack classes the paper's network-automation examples need
// (DNS amplification, SYN flood, port scanning, C&C beaconing).
//
// Every emitted frame carries ground-truth labels — the thing the paper
// says real networks lack ("labelled data ... is largely non-existent",
// §2) and that the simulated campus provides by construction.
package traffic

import (
	"fmt"
	"time"
)

// Label is the ground-truth class of a frame.
type Label uint8

// Ground-truth traffic classes.
const (
	LabelBenign Label = iota
	LabelDNSAmp
	LabelSYNFlood
	LabelPortScan
	LabelBeacon
	NumLabels
)

var labelNames = [NumLabels]string{"benign", "dns-amp", "syn-flood", "port-scan", "beacon"}

// String returns the label name.
func (l Label) String() string {
	if int(l) < len(labelNames) {
		return labelNames[l]
	}
	return fmt.Sprintf("label-%d", uint8(l))
}

// ParseLabel maps a label name back to its Label.
func ParseLabel(s string) (Label, error) {
	for i, n := range labelNames {
		if n == s {
			return Label(i), nil
		}
	}
	return 0, fmt.Errorf("traffic: unknown label %q", s)
}

// Direction classifies a frame relative to the campus edge.
type Direction uint8

// Frame directions at the campus border tap.
const (
	DirInbound  Direction = iota // from the Internet into campus
	DirOutbound                  // from campus to the Internet
	DirInternal                  // both endpoints on campus
)

// String returns the direction name.
func (d Direction) String() string {
	switch d {
	case DirInbound:
		return "in"
	case DirOutbound:
		return "out"
	default:
		return "internal"
	}
}

// Frame is one generated packet with its ground truth.
type Frame struct {
	TS    time.Duration // offset from scenario start
	Data  []byte        // full Ethernet frame
	Dir   Direction
	Label Label
	// Actor reports that the frame's *source* is a malicious actor (the
	// scanner, the abused resolver, the infected host) as opposed to a
	// victim's response that merely belongs to an attack episode. Source
	// attribution tasks (scan detection) train on this.
	Actor  bool
	FlowID uint64 // generator-scoped flow identifier
}

// Generator produces a time-ordered stream of frames. Next returns false
// when the stream is exhausted. Implementations are single-goroutine.
type Generator interface {
	// Next fills f with the next frame in timestamp order. The Data
	// slice is owned by the caller after return.
	Next(f *Frame) bool
}

// Collect drains g into a slice, up to max frames (0 = unlimited).
// Intended for tests and small scenarios; large scenarios should stream.
func Collect(g Generator, max int) []Frame {
	var out []Frame
	var f Frame
	for g.Next(&f) {
		out = append(out, f)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// Stats accumulates summary statistics over a frame stream.
type Stats struct {
	Frames   int
	Bytes    int64
	ByLabel  [NumLabels]int
	ByDir    [3]int
	Duration time.Duration
}

// Observe folds one frame into s.
func (s *Stats) Observe(f *Frame) {
	s.Frames++
	s.Bytes += int64(len(f.Data))
	if int(f.Label) < len(s.ByLabel) {
		s.ByLabel[f.Label]++
	}
	if int(f.Dir) < len(s.ByDir) {
		s.ByDir[f.Dir]++
	}
	if f.TS > s.Duration {
		s.Duration = f.TS
	}
}

// OfferedRate returns the average offered load in bits/s over the stream.
func (s *Stats) OfferedRate() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Bytes*8) / s.Duration.Seconds()
}
