package traffic

import (
	"net/netip"
	"time"

	"campuslab/internal/packet"
)

// frameBuilder serializes frames with a reusable buffer; one per generator.
type frameBuilder struct {
	buf *packet.SerializeBuffer
	eth packet.Ethernet
	ip  packet.IPv4
	tcp packet.TCP
	udp packet.UDP
}

func newFrameBuilder() *frameBuilder {
	return &frameBuilder{buf: packet.NewSerializeBuffer()}
}

// tcpFrame builds an Ethernet/IPv4/TCP frame. payloadLen bytes of opaque
// payload are appended (zero-filled; contents never matter to the stack,
// only sizes do).
func (fb *frameBuilder) tcpFrame(src, dst netip.Addr, sport, dport uint16, flags packet.TCPFlags, seq, ack uint32, payloadLen int) []byte {
	fb.tcp = packet.TCP{
		SrcPort: sport, DstPort: dport,
		Seq: seq, Ack: ack, Flags: flags, Window: 65535,
	}
	fb.stampIP(src, dst, packet.IPProtocolTCP)
	fb.buf.Clear()
	if payloadLen > 0 {
		p, _ := fb.buf.PrependBytes(payloadLen)
		clear(p)
	}
	fb.buf.SetNetworkLayerForChecksum(src, dst)
	if err := fb.tcp.SerializeTo(fb.buf); err != nil {
		panic(err) // builder invariants make this unreachable
	}
	return fb.finish()
}

// udpFrame builds an Ethernet/IPv4/UDP frame with an opaque payload.
func (fb *frameBuilder) udpFrame(src, dst netip.Addr, sport, dport uint16, payloadLen int) []byte {
	fb.udp = packet.UDP{SrcPort: sport, DstPort: dport}
	fb.stampIP(src, dst, packet.IPProtocolUDP)
	fb.buf.Clear()
	if payloadLen > 0 {
		p, _ := fb.buf.PrependBytes(payloadLen)
		clear(p)
	}
	fb.buf.SetNetworkLayerForChecksum(src, dst)
	if err := fb.udp.SerializeTo(fb.buf); err != nil {
		panic(err)
	}
	return fb.finish()
}

// dnsFrame builds an Ethernet/IPv4/UDP/DNS frame from a prepared message.
func (fb *frameBuilder) dnsFrame(src, dst netip.Addr, sport, dport uint16, msg *packet.DNS) []byte {
	fb.udp = packet.UDP{SrcPort: sport, DstPort: dport}
	fb.stampIP(src, dst, packet.IPProtocolUDP)
	fb.buf.Clear()
	fb.buf.SetNetworkLayerForChecksum(src, dst)
	if err := msg.SerializeTo(fb.buf); err != nil {
		panic(err)
	}
	if err := fb.udp.SerializeTo(fb.buf); err != nil {
		panic(err)
	}
	return fb.finish()
}

func (fb *frameBuilder) stampIP(src, dst netip.Addr, proto packet.IPProtocol) {
	fb.ip = packet.IPv4{TTL: 64, Protocol: proto, SrcIP: src, DstIP: dst, Flags: packet.IPv4DontFragment}
	srcMAC, dstMAC := macFor(src), macFor(dst)
	if !src.Is4() || src.As4()[0] != 10 {
		srcMAC = gatewayMAC
	}
	if !dst.Is4() || dst.As4()[0] != 10 {
		dstMAC = gatewayMAC
	}
	fb.eth = packet.Ethernet{SrcMAC: srcMAC, DstMAC: dstMAC, EtherType: packet.EtherTypeIPv4}
}

// finish serializes IP+Ethernet around the buffer's current transport
// contents and returns an owned copy of the frame.
func (fb *frameBuilder) finish() []byte {
	if err := fb.ip.SerializeTo(fb.buf); err != nil {
		panic(err)
	}
	if err := fb.eth.SerializeTo(fb.buf); err != nil {
		panic(err)
	}
	out := make([]byte, len(fb.buf.Bytes()))
	copy(out, fb.buf.Bytes())
	return out
}

// directionOf classifies a frame by its endpoints against the campus plan.
func directionOf(plan *AddressPlan, src, dst netip.Addr) Direction {
	in := plan.Contains(dst)
	out := plan.Contains(src)
	switch {
	case in && out:
		return DirInternal
	case out:
		return DirOutbound
	default:
		return DirInbound
	}
}

// emitter is a time-ordered sub-stream inside a generator: a single flow,
// an attack, or the flow-arrival process itself.
type emitter interface {
	// nextTS returns the timestamp of the emitter's next frame.
	nextTS() time.Duration
	// emit produces that frame (and/or schedules internal follow-ups),
	// returning false when the emitter is exhausted. emit may produce no
	// frame (f.Data == nil) when it only performed internal scheduling.
	emit(f *Frame) bool
}

// emitterHeap orders emitters by nextTS.
type emitterHeap []emitter

func (h emitterHeap) Len() int           { return len(h) }
func (h emitterHeap) Less(i, j int) bool { return h[i].nextTS() < h[j].nextTS() }
func (h emitterHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *emitterHeap) Push(x any)        { *h = append(*h, x.(emitter)) }
func (h *emitterHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
