package traffic

import (
	"net/netip"
	"time"

	"campuslab/internal/packet"
)

// AttackConfig parameterizes one attack episode overlaid on benign traffic.
type AttackConfig struct {
	// Kind selects the attack class (LabelDNSAmp, LabelSYNFlood,
	// LabelPortScan or LabelBeacon).
	Kind Label
	// Start and Duration bound the episode.
	Start    time.Duration
	Duration time.Duration
	// Victim is the targeted campus host (DNSAmp, SYNFlood) or the
	// infected campus host (Beacon). Zero value picks plan host 0.
	Victim netip.Addr
	// Rate is packets/second for volumetric attacks, probes/second for
	// scans, and beacons/hour for beaconing.
	Rate float64
	// Seed makes the attack reproducible.
	Seed int64
	// Plan must match the benign generator's plan.
	Plan *AddressPlan
}

func (c AttackConfig) withDefaults() AttackConfig {
	if c.Plan == nil {
		c.Plan = DefaultPlan(200)
	}
	if !c.Victim.IsValid() {
		c.Victim = c.Plan.Host(0)
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.Rate <= 0 {
		switch c.Kind {
		case LabelDNSAmp:
			c.Rate = 5000
		case LabelSYNFlood:
			c.Rate = 10000
		case LabelPortScan:
			c.Rate = 300
		case LabelBeacon:
			c.Rate = 120 // beacons/hour => one every 30s
		}
	}
	return c
}

// NewAttack returns a generator for the configured attack episode.
func NewAttack(c AttackConfig) Generator {
	c = c.withDefaults()
	rng := NewRNG(c.Seed)
	fb := newFrameBuilder()
	switch c.Kind {
	case LabelDNSAmp:
		return &dnsAmpAttack{cfg: c, rng: rng, fb: fb, at: c.Start}
	case LabelSYNFlood:
		return &synFloodAttack{cfg: c, rng: rng, fb: fb, at: c.Start}
	case LabelPortScan:
		return &portScanAttack{cfg: c, rng: rng, fb: fb, at: c.Start,
			scanner: netip.AddrFrom4([4]byte{185, 220, 101, byte(1 + rng.Intn(200))})}
	case LabelBeacon:
		return &beaconAttack{cfg: c, rng: rng, fb: fb, at: c.Start,
			cnc: netip.AddrFrom4([4]byte{45, 155, 205, byte(1 + rng.Intn(200))})}
	default:
		panic("traffic: unknown attack kind " + c.Kind.String())
	}
}

// dnsAmpAttack models a DNS amplification (reflection) attack: the campus
// victim receives a torrent of large DNS responses from abused open
// resolvers, answers to ANY queries it never sent. This is the §2 example
// event ("a DDoS attack in the form of a DNS amplification attack").
type dnsAmpAttack struct {
	cfg  AttackConfig
	rng  *RNG
	fb   *frameBuilder
	at   time.Duration
	fid  uint64
	resp packet.DNS
}

// amplifiedDomains are the zones attackers typically abuse (large TXT/ANY
// answers).
var amplifiedDomains = []string{"isc.org", "ripe.net", "cmu.edu", "verisign.com"}

func (a *dnsAmpAttack) Next(f *Frame) bool {
	end := a.cfg.Start + a.cfg.Duration
	if a.at >= end {
		return false
	}
	resolver := a.cfg.Plan.OpenResolver[a.rng.Intn(len(a.cfg.Plan.OpenResolver))]
	name := amplifiedDomains[a.rng.Intn(len(amplifiedDomains))]
	// Amplified responses: mostly ANY, but real attacks also abuse bulky
	// TXT/DNSSEC records, and record counts vary — the attack is not a
	// single clean signature.
	qtype := packet.DNSTypeANY
	if a.rng.Bool(0.3) {
		qtype = packet.DNSTypeTXT
	}
	nrec := 2 + a.rng.Intn(7)
	ans := make([]packet.DNSResourceRecord, nrec)
	for i := range ans {
		blob := make([]byte, 100+a.rng.Intn(160))
		ans[i] = packet.DNSResourceRecord{Name: name, Type: packet.DNSTypeTXT, Class: 1, TTL: 3600, Data: blob}
	}
	a.resp = packet.DNS{
		ID: uint16(a.rng.Uint64()), QR: true, RA: true,
		Questions: []packet.DNSQuestion{{Name: name, Type: qtype, Class: 1}},
		Answers:   ans,
	}
	a.fid++
	f.TS = a.at
	f.Data = a.fb.dnsFrame(resolver, a.cfg.Victim, packet.PortDNS, uint16(1024+a.rng.Intn(60000)), &a.resp)
	f.Dir = DirInbound
	f.Label = LabelDNSAmp
	f.Actor = true
	f.FlowID = 1<<40 | a.fid
	a.at += time.Duration(a.rng.Exp(float64(time.Second) / a.cfg.Rate))
	return true
}

// synFloodAttack sends spoofed SYNs to one campus server from random
// sources.
type synFloodAttack struct {
	cfg AttackConfig
	rng *RNG
	fb  *frameBuilder
	at  time.Duration
	fid uint64
}

func (a *synFloodAttack) Next(f *Frame) bool {
	end := a.cfg.Start + a.cfg.Duration
	if a.at >= end {
		return false
	}
	src := netip.AddrFrom4([4]byte{
		byte(1 + a.rng.Intn(220)), byte(a.rng.Intn(256)),
		byte(a.rng.Intn(256)), byte(1 + a.rng.Intn(254)),
	})
	a.fid++
	f.TS = a.at
	f.Data = a.fb.tcpFrame(src, a.cfg.Victim, uint16(1024+a.rng.Intn(60000)), packet.PortHTTPS,
		packet.TCPSyn, uint32(a.rng.Uint64()), 0, 0)
	f.Dir = DirInbound
	f.Label = LabelSYNFlood
	f.Actor = true
	f.FlowID = 2<<40 | a.fid
	a.at += time.Duration(a.rng.Exp(float64(time.Second) / a.cfg.Rate))
	return true
}

// portScanAttack sweeps ports across campus hosts from one external
// scanner, eliciting occasional RSTs.
type portScanAttack struct {
	cfg     AttackConfig
	rng     *RNG
	fb      *frameBuilder
	at      time.Duration
	fid     uint64
	scanner netip.Addr
	// pending RST reply, emitted right after the probe that caused it
	rstTo   netip.Addr
	rstPort uint16
	rstAt   time.Duration
}

// scannedPorts is the classic sweep order.
var scannedPorts = []uint16{22, 23, 80, 443, 445, 3389, 8080, 8443, 25, 110, 139, 3306, 5432, 6379, 9200}

func (a *portScanAttack) Next(f *Frame) bool {
	if a.rstTo.IsValid() {
		f.TS = a.rstAt
		f.Data = a.fb.tcpFrame(a.rstTo, a.scanner, a.rstPort, uint16(40000+a.rng.Intn(20000)),
			packet.TCPRst|packet.TCPAck, 0, 0, 0)
		f.Dir = DirOutbound
		f.Label = LabelPortScan
		f.Actor = false // victim's RST, not the scanner
		f.FlowID = 3<<40 | a.fid
		a.rstTo = netip.Addr{}
		return true
	}
	end := a.cfg.Start + a.cfg.Duration
	if a.at >= end {
		return false
	}
	target := a.cfg.Plan.Host(a.rng.Intn(a.cfg.Plan.TotalHosts()))
	port := scannedPorts[a.rng.Intn(len(scannedPorts))]
	a.fid++
	f.TS = a.at
	f.Data = a.fb.tcpFrame(a.scanner, target, uint16(40000+a.rng.Intn(20000)), port,
		packet.TCPSyn, uint32(a.rng.Uint64()), 0, 0)
	f.Dir = DirInbound
	f.Label = LabelPortScan
	f.Actor = true
	f.FlowID = 3<<40 | a.fid
	// ~70% of probes hit closed ports and elicit a RST.
	if a.rng.Bool(0.7) {
		a.rstTo, a.rstPort = target, port
		a.rstAt = a.at + time.Duration(a.rng.LogNormal(-0.5, 0.3)*float64(time.Millisecond))
	}
	a.at += time.Duration(a.rng.Exp(float64(time.Second) / a.cfg.Rate))
	return true
}

// beaconAttack models C&C beaconing: an infected campus host opens a small
// TLS connection to its controller on a fixed period with jitter — low and
// slow, the opposite of the volumetric attacks.
type beaconAttack struct {
	cfg   AttackConfig
	rng   *RNG
	fb    *frameBuilder
	at    time.Duration
	fid   uint64
	cnc   netip.Addr
	phase int
	cport uint16
}

func (a *beaconAttack) Next(f *Frame) bool {
	end := a.cfg.Start + a.cfg.Duration
	if a.at >= end {
		return false
	}
	host := a.cfg.Victim
	f.TS = a.at
	f.Label = LabelBeacon
	f.Actor = true // both endpoints of a C&C session are malicious
	f.FlowID = 4<<40 | a.fid
	switch a.phase {
	case 0: // SYN out
		a.cport = uint16(32768 + a.rng.Intn(28000))
		a.fid++
		f.FlowID = 4<<40 | a.fid
		f.Data = a.fb.tcpFrame(host, a.cnc, a.cport, packet.PortHTTPS, packet.TCPSyn, 1, 0, 0)
		f.Dir = DirOutbound
		a.phase = 1
		a.at += 40 * time.Millisecond
	case 1: // SYN|ACK in
		f.Data = a.fb.tcpFrame(a.cnc, host, packet.PortHTTPS, a.cport, packet.TCPSyn|packet.TCPAck, 1, 2, 0)
		f.Dir = DirInbound
		a.phase = 2
		a.at += 40 * time.Millisecond
	case 2: // small exfil push out
		f.Data = a.fb.tcpFrame(host, a.cnc, a.cport, packet.PortHTTPS, packet.TCPAck|packet.TCPPsh, 2, 2, 240)
		f.Dir = DirOutbound
		a.phase = 3
		a.at += 60 * time.Millisecond
	case 3: // command reply in, then sleep until next beacon
		f.Data = a.fb.tcpFrame(a.cnc, host, packet.PortHTTPS, a.cport, packet.TCPAck|packet.TCPPsh, 2, 242, 120)
		f.Dir = DirInbound
		a.phase = 0
		period := time.Duration(3600 / a.cfg.Rate * float64(time.Second))
		jitter := time.Duration(a.rng.Normal(0, 0.05*float64(period)))
		a.at += period + jitter
	}
	return true
}

// Merge interleaves multiple generators into one timestamp-ordered stream.
type Merge struct {
	gens  []Generator
	heads []Frame
	valid []bool
}

// NewMerge returns a merged generator over gens.
func NewMerge(gens ...Generator) *Merge {
	m := &Merge{gens: gens, heads: make([]Frame, len(gens)), valid: make([]bool, len(gens))}
	for i, g := range gens {
		m.valid[i] = g.Next(&m.heads[i])
	}
	return m
}

// Next implements Generator.
func (m *Merge) Next(f *Frame) bool {
	best := -1
	for i, ok := range m.valid {
		if ok && (best < 0 || m.heads[i].TS < m.heads[best].TS) {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	*f = m.heads[best]
	m.valid[best] = m.gens[best].Next(&m.heads[best])
	return true
}
