package traffic

import (
	"testing"
	"testing/quick"
	"time"

	"campuslab/internal/packet"
)

func TestLabelRoundTrip(t *testing.T) {
	for l := LabelBenign; l < NumLabels; l++ {
		got, err := ParseLabel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLabel(%v) = %v, %v", l, got, err)
		}
	}
	if _, err := ParseLabel("nope"); err == nil {
		t.Error("ParseLabel accepted junk")
	}
}

func TestAddressPlan(t *testing.T) {
	p := DefaultPlan(100)
	if p.TotalHosts() != 800 {
		t.Errorf("TotalHosts = %d, want 800", p.TotalHosts())
	}
	seen := map[string]bool{}
	for i := 0; i < p.TotalHosts(); i++ {
		a := p.Host(i)
		if !p.Contains(a) {
			t.Fatalf("host %d = %v outside campus", i, a)
		}
		if seen[a.String()] {
			t.Fatalf("duplicate host address %v", a)
		}
		seen[a.String()] = true
		if p.DepartmentOf(a) == nil {
			t.Fatalf("host %v has no department", a)
		}
	}
	if p.Contains(p.WebServers[0]) {
		t.Error("external web server inside campus prefix")
	}
}

func TestHostIndexOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DefaultPlan(10).Host(10 * 8)
}

func TestDiurnalFactorShape(t *testing.T) {
	if diurnalFactor(3) >= diurnalFactor(14) {
		t.Error("3am should be quieter than 2pm")
	}
	for h := 0.0; h < 48; h += 0.5 {
		f := diurnalFactor(h)
		if f <= 0 || f > 1.01 {
			t.Errorf("diurnalFactor(%v) = %v out of range", h, f)
		}
	}
}

func TestCampusGeneratorProducesOrderedDecodableFrames(t *testing.T) {
	g := NewCampus(Profile{FlowsPerSecond: 200, Duration: 2 * time.Second, Seed: 1})
	fp := packet.NewFlowParser()
	var s packet.Summary
	var prev time.Duration
	var st Stats
	var f Frame
	apps := map[uint16]bool{}
	for g.Next(&f) {
		if f.TS < prev {
			t.Fatalf("timestamps not monotone: %v after %v", f.TS, prev)
		}
		prev = f.TS
		if err := fp.Parse(f.Data, &s); err != nil {
			t.Fatalf("generated frame does not parse: %v", err)
		}
		if f.Label != LabelBenign {
			t.Fatalf("benign generator emitted label %v", f.Label)
		}
		apps[s.Tuple.SrcPort] = true
		apps[s.Tuple.DstPort] = true
		st.Observe(&f)
	}
	if st.Frames < 500 {
		t.Errorf("only %d frames in 2s at 200 flows/s", st.Frames)
	}
	for _, port := range []uint16{packet.PortHTTPS, packet.PortDNS} {
		if !apps[port] {
			t.Errorf("no traffic on well-known port %d", port)
		}
	}
}

func TestCampusGeneratorDeterministic(t *testing.T) {
	collect := func() []Frame {
		return Collect(NewCampus(Profile{FlowsPerSecond: 50, Duration: time.Second, Seed: 42}), 0)
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].TS != b[i].TS || len(a[i].Data) != len(b[i].Data) || a[i].FlowID != b[i].FlowID {
			t.Fatalf("frame %d differs", i)
		}
	}
}

func TestCampusGeneratorSeedsDiffer(t *testing.T) {
	a := Collect(NewCampus(Profile{FlowsPerSecond: 50, Duration: time.Second, Seed: 1}), 50)
	b := Collect(NewCampus(Profile{FlowsPerSecond: 50, Duration: time.Second, Seed: 2}), 50)
	same := 0
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].TS == b[i].TS {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical timestamp sequences")
	}
}

func TestDiurnalReducesNightLoad(t *testing.T) {
	day := NewCampus(Profile{FlowsPerSecond: 100, Duration: 5 * time.Second, Seed: 3, Diurnal: true, StartHour: 14})
	night := NewCampus(Profile{FlowsPerSecond: 100, Duration: 5 * time.Second, Seed: 3, Diurnal: true, StartHour: 3})
	var sd, sn Stats
	var f Frame
	for day.Next(&f) {
		sd.Observe(&f)
	}
	for night.Next(&f) {
		sn.Observe(&f)
	}
	if sn.Frames >= sd.Frames {
		t.Errorf("night frames %d >= day frames %d", sn.Frames, sd.Frames)
	}
}

func TestDNSAmpAttack(t *testing.T) {
	plan := DefaultPlan(50)
	victim := plan.Host(3)
	g := NewAttack(AttackConfig{
		Kind: LabelDNSAmp, Victim: victim, Plan: plan,
		Start: time.Second, Duration: 2 * time.Second, Rate: 1000, Seed: 7,
	})
	fp := packet.NewFlowParser()
	var s packet.Summary
	var f Frame
	n, bytes := 0, 0
	for g.Next(&f) {
		if f.TS < time.Second || f.TS >= 3*time.Second {
			t.Fatalf("frame at %v outside episode", f.TS)
		}
		if err := fp.Parse(f.Data, &s); err != nil {
			t.Fatalf("attack frame does not parse: %v", err)
		}
		if s.Tuple.DstIP != victim {
			t.Fatalf("attack frame to %v, want victim %v", s.Tuple.DstIP, victim)
		}
		if !s.IsDNS || !s.DNSResponse {
			t.Fatal("dns-amp frame is not a DNS response")
		}
		if s.DNSQueryType != packet.DNSTypeANY && s.DNSQueryType != packet.DNSTypeTXT {
			t.Fatalf("qtype = %v, want ANY or TXT", s.DNSQueryType)
		}
		if f.Label != LabelDNSAmp || f.Dir != DirInbound {
			t.Fatalf("label/dir = %v/%v", f.Label, f.Dir)
		}
		n++
		bytes += len(f.Data)
	}
	if n < 1500 || n > 2500 {
		t.Errorf("frames = %d, want ~2000 at 1000pps for 2s", n)
	}
	if avg := bytes / n; avg < 500 {
		t.Errorf("average amplified response %dB, want large", avg)
	}
}

func TestSYNFloodAttack(t *testing.T) {
	plan := DefaultPlan(50)
	g := NewAttack(AttackConfig{Kind: LabelSYNFlood, Plan: plan, Duration: time.Second, Rate: 5000, Seed: 8})
	fp := packet.NewFlowParser()
	var s packet.Summary
	var f Frame
	srcs := map[string]bool{}
	n := 0
	for g.Next(&f) {
		if err := fp.Parse(f.Data, &s); err != nil {
			t.Fatal(err)
		}
		if !s.TCPFlags.Has(packet.TCPSyn) || s.TCPFlags.Has(packet.TCPAck) {
			t.Fatalf("flags = %v, want bare SYN", s.TCPFlags)
		}
		srcs[s.Tuple.SrcIP.String()] = true
		n++
	}
	if n < 4000 {
		t.Errorf("frames = %d, want ~5000", n)
	}
	if len(srcs) < n/2 {
		t.Errorf("only %d distinct spoofed sources over %d SYNs", len(srcs), n)
	}
}

func TestPortScanAttack(t *testing.T) {
	plan := DefaultPlan(50)
	g := NewAttack(AttackConfig{Kind: LabelPortScan, Plan: plan, Duration: 2 * time.Second, Rate: 500, Seed: 9})
	fp := packet.NewFlowParser()
	var s packet.Summary
	var f Frame
	targets := map[string]bool{}
	ports := map[uint16]bool{}
	rsts := 0
	for g.Next(&f) {
		if err := fp.Parse(f.Data, &s); err != nil {
			t.Fatal(err)
		}
		if s.TCPFlags.Has(packet.TCPRst) {
			rsts++
			continue
		}
		targets[s.Tuple.DstIP.String()] = true
		ports[s.Tuple.DstPort] = true
	}
	if len(targets) < 100 {
		t.Errorf("scan touched only %d hosts", len(targets))
	}
	if len(ports) < 10 {
		t.Errorf("scan touched only %d ports", len(ports))
	}
	if rsts == 0 {
		t.Error("no RST replies generated")
	}
}

func TestBeaconAttackPeriodicity(t *testing.T) {
	plan := DefaultPlan(50)
	g := NewAttack(AttackConfig{
		Kind: LabelBeacon, Plan: plan, Victim: plan.Host(10),
		Duration: 10 * time.Minute, Rate: 120, Seed: 10, // every 30s
	})
	var f Frame
	var synTimes []time.Duration
	fp := packet.NewFlowParser()
	var s packet.Summary
	for g.Next(&f) {
		if err := fp.Parse(f.Data, &s); err != nil {
			t.Fatal(err)
		}
		if s.TCPFlags == packet.TCPSyn {
			synTimes = append(synTimes, f.TS)
		}
	}
	if len(synTimes) < 15 {
		t.Fatalf("only %d beacons in 10min at 30s period", len(synTimes))
	}
	// Mean inter-beacon gap should be near 30s.
	var sum time.Duration
	for i := 1; i < len(synTimes); i++ {
		sum += synTimes[i] - synTimes[i-1]
	}
	mean := sum / time.Duration(len(synTimes)-1)
	if mean < 25*time.Second || mean > 35*time.Second {
		t.Errorf("mean beacon period %v, want ~30s", mean)
	}
}

func TestMergeOrdersStreams(t *testing.T) {
	plan := DefaultPlan(50)
	benign := NewCampus(Profile{Plan: plan, FlowsPerSecond: 100, Duration: 3 * time.Second, Seed: 1})
	amp := NewAttack(AttackConfig{Kind: LabelDNSAmp, Plan: plan, Start: time.Second, Duration: time.Second, Rate: 500, Seed: 2})
	m := NewMerge(benign, amp)
	var prev time.Duration
	var f Frame
	var st Stats
	for m.Next(&f) {
		if f.TS < prev {
			t.Fatalf("merged stream out of order: %v after %v", f.TS, prev)
		}
		prev = f.TS
		st.Observe(&f)
	}
	if st.ByLabel[LabelBenign] == 0 || st.ByLabel[LabelDNSAmp] == 0 {
		t.Errorf("merge lost a class: %+v", st.ByLabel)
	}
}

func TestStatsOfferedRate(t *testing.T) {
	var st Stats
	st.Observe(&Frame{TS: 0, Data: make([]byte, 1250)})
	st.Observe(&Frame{TS: time.Second, Data: make([]byte, 1250)})
	// 2500 bytes over 1 second = 20 kbit/s
	if got := st.OfferedRate(); got < 19_000 || got > 21_000 {
		t.Errorf("OfferedRate = %v", got)
	}
}

func TestRNGDistributions(t *testing.T) {
	g := NewRNG(5)
	// Pareto: all draws >= xm; mean for alpha>1 is finite.
	for i := 0; i < 1000; i++ {
		if v := g.Pareto(100, 1.5); v < 100 {
			t.Fatalf("pareto draw %v < xm", v)
		}
	}
	// Zipf: index 0 should be the most frequent.
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		counts[g.Zipf(10)]++
	}
	if counts[0] <= counts[9] {
		t.Errorf("zipf head %d <= tail %d", counts[0], counts[9])
	}
	if g.Zipf(1) != 0 || g.Zipf(0) != 0 {
		t.Error("zipf degenerate cases wrong")
	}
}

func TestRNGExpProperty(t *testing.T) {
	fn := func(seed int64) bool {
		g := NewRNG(seed)
		var sum float64
		const n = 2000
		for i := 0; i < n; i++ {
			v := g.Exp(10)
			if v < 0 {
				return false
			}
			sum += v
		}
		mean := sum / n
		return mean > 8 && mean < 12 // loose CLT bound
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCampusGenerator(b *testing.B) {
	g := NewCampus(Profile{FlowsPerSecond: 1000, Duration: time.Hour, Seed: 1})
	var f Frame
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !g.Next(&f) {
			b.Fatal("generator exhausted")
		}
	}
}
