package ml

import (
	"reflect"
	"testing"
)

// TestFitForestParallelEquivalence: the ensemble must be identical —
// tree-by-tree — at every worker count, because each tree's RNG is derived
// from cfg.Seed + treeIndex, never from goroutine scheduling.
func TestFitForestParallelEquivalence(t *testing.T) {
	train := blobs(600, 0.9, 7)
	base, err := FitForest(train, 2, ForestConfig{Trees: 17, MaxDepth: 6, Seed: 99, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 16} {
		f, err := FitForest(train, 2, ForestConfig{Trees: 17, MaxDepth: 6, Seed: 99, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if f.NumTrees() != base.NumTrees() {
			t.Fatalf("workers=%d: %d trees, want %d", w, f.NumTrees(), base.NumTrees())
		}
		for i := 0; i < base.NumTrees(); i++ {
			if !reflect.DeepEqual(base.Tree(i), f.Tree(i)) {
				t.Fatalf("workers=%d: tree %d differs from serial", w, i)
			}
		}
	}
}

// TestPredictBatchMatchesPredict: the batch-parallel inference path must
// agree with per-row Predict at every worker count.
func TestPredictBatchMatchesPredict(t *testing.T) {
	train := blobs(500, 0.8, 11)
	test := blobs(300, 0.8, 12)
	f, err := FitForest(train, 2, ForestConfig{Trees: 12, MaxDepth: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, test.Len())
	for i, x := range test.X {
		want[i] = f.Predict(x)
	}
	for _, w := range []int{1, 4, 16} {
		got := f.PredictBatch(test.X, w)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: PredictBatch disagrees with Predict", w)
		}
	}
}
