package ml

import (
	"testing"

	"campuslab/internal/features"
)

func TestBoostLearnsXOR(t *testing.T) {
	// Depth-2 weak learners can carve XOR; boosting should reach high
	// accuracy where a single stump cannot.
	train := xorData(600, 101)
	test := xorData(300, 102)
	b, err := FitBoost(train, 0, BoostConfig{Rounds: 40, WeakDepth: 2, Seed: 103})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Evaluate(b, test).Accuracy(); acc < 0.95 {
		t.Errorf("boost accuracy %v on XOR", acc)
	}
	stump, _ := FitTree(train, 0, TreeConfig{MaxDepth: 1})
	if acc := Evaluate(stump, test).Accuracy(); acc > 0.8 {
		t.Errorf("single stump 'solved' XOR (%v) — boosting comparison meaningless", acc)
	}
}

func TestBoostBeatsWeakLearnerOnNoisyBlobs(t *testing.T) {
	train := blobs(600, 2.0, 104)
	test := blobs(400, 2.0, 105)
	weak, _ := FitTree(train, 0, TreeConfig{MaxDepth: 1})
	b, err := FitBoost(train, 0, BoostConfig{Rounds: 30, WeakDepth: 1, Seed: 106})
	if err != nil {
		t.Fatal(err)
	}
	wa := Evaluate(weak, test).Accuracy()
	ba := Evaluate(b, test).Accuracy()
	if ba < wa-0.02 {
		t.Errorf("boost %v worse than its weak learner %v", ba, wa)
	}
}

func TestBoostProbaNormalized(t *testing.T) {
	train := blobs(300, 1.0, 107)
	b, err := FitBoost(train, 0, BoostConfig{Rounds: 10, Seed: 108})
	if err != nil {
		t.Fatal(err)
	}
	p := b.Proba([]float64{1, 1})
	var sum float64
	for _, v := range p {
		if v < 0 {
			t.Fatalf("negative probability %v", v)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("proba sums to %v", sum)
	}
	if b.NumTrees() == 0 || b.TotalNodes() == 0 {
		t.Error("empty ensemble")
	}
}

func TestBoostMulticlass(t *testing.T) {
	// Three separable blobs.
	d := &features.Dataset{Schema: []string{"x"}}
	for i := 0; i < 300; i++ {
		c := i % 3
		d.X = append(d.X, []float64{float64(c*10) + float64(i%5)})
		d.Y = append(d.Y, c)
	}
	b, err := FitBoost(d, 3, BoostConfig{Rounds: 20, WeakDepth: 2, Seed: 109})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Evaluate(b, d).Accuracy(); acc < 0.98 {
		t.Errorf("multiclass boost accuracy %v", acc)
	}
}

func TestBoostEmptyDataset(t *testing.T) {
	if _, err := FitBoost(&features.Dataset{}, 0, BoostConfig{}); err == nil {
		t.Error("accepted empty dataset")
	}
}

func TestBoostDeterministic(t *testing.T) {
	train := blobs(300, 1.5, 110)
	a, _ := FitBoost(train, 0, BoostConfig{Rounds: 15, Seed: 111})
	b, _ := FitBoost(train, 0, BoostConfig{Rounds: 15, Seed: 111})
	for _, x := range train.X[:50] {
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same seed, different ensembles")
		}
	}
}

func BenchmarkFitBoost(b *testing.B) {
	d := blobs(500, 1.0, 112)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FitBoost(d, 0, BoostConfig{Rounds: 20, Seed: 113}); err != nil {
			b.Fatal(err)
		}
	}
}
