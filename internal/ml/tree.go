// Package ml is campuslab's learning substrate: CART decision trees, a
// bagged random forest (the paper's offline "black-box model"), logistic
// regression, evaluation metrics, and k-fold cross-validation. Everything
// is deterministic given a seed — the property the paper's reproducibility
// argument (§5) depends on.
package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"campuslab/internal/features"
)

// Classifier predicts a class for a feature vector.
type Classifier interface {
	// Predict returns the most likely class index.
	Predict(x []float64) int
	// Proba returns per-class probabilities (length NumClasses).
	Proba(x []float64) []float64
	// NumClasses returns the number of classes the model was fit with.
	NumClasses() int
}

// TreeConfig controls CART induction.
type TreeConfig struct {
	// MaxDepth bounds tree depth (root = depth 0). <=0 means unbounded.
	MaxDepth int
	// MinSamplesSplit stops splitting smaller nodes (default 2).
	MinSamplesSplit int
	// MaxFeatures considers a random subset of features per split
	// (0 = all; forests pass sqrt(d)).
	MaxFeatures int
	// Seed drives feature subsampling.
	Seed int64
}

// treeNode is one node of a fitted tree, stored flat.
type treeNode struct {
	feature     int       // split feature, -1 for leaf
	threshold   float64   // go left if x[feature] <= threshold
	left, right int       // child indices
	counts      []float64 // class histogram at this node (leaves use it)
	total       float64
}

// Tree is a fitted CART decision tree.
type Tree struct {
	nodes   []treeNode
	classes int
	dims    int
	cfg     TreeConfig
}

// FitTree induces a CART tree on d using Gini impurity.
func FitTree(d *features.Dataset, classes int, cfg TreeConfig) (*Tree, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: empty dataset")
	}
	if classes <= 0 {
		classes = maxLabel(d.Y) + 1
	}
	if cfg.MinSamplesSplit < 2 {
		cfg.MinSamplesSplit = 2
	}
	t := &Tree{classes: classes, dims: d.Dims(), cfg: cfg}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t.build(d, idx, 0, rng)
	return t, nil
}

func maxLabel(ys []int) int {
	m := 0
	for _, y := range ys {
		if y > m {
			m = y
		}
	}
	return m
}

// build grows the subtree over idx, returning its node index.
func (t *Tree) build(d *features.Dataset, idx []int, depth int, rng *rand.Rand) int {
	counts := make([]float64, t.classes)
	for _, i := range idx {
		counts[d.Y[i]]++
	}
	nodeIdx := len(t.nodes)
	t.nodes = append(t.nodes, treeNode{feature: -1, counts: counts, total: float64(len(idx))})

	if len(idx) < t.cfg.MinSamplesSplit || gini(counts, float64(len(idx))) == 0 ||
		(t.cfg.MaxDepth > 0 && depth >= t.cfg.MaxDepth) {
		return nodeIdx
	}
	feat, thr, ok := t.bestSplit(d, idx, counts, rng)
	if !ok {
		return nodeIdx
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return nodeIdx
	}
	l := t.build(d, left, depth+1, rng)
	r := t.build(d, right, depth+1, rng)
	t.nodes[nodeIdx].feature = feat
	t.nodes[nodeIdx].threshold = thr
	t.nodes[nodeIdx].left = l
	t.nodes[nodeIdx].right = r
	return nodeIdx
}

// gini computes Gini impurity from a class histogram.
func gini(counts []float64, total float64) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / total
		g -= p * p
	}
	return g
}

// bestSplit scans candidate features for the split minimizing weighted
// child impurity via the classic sort-and-sweep.
func (t *Tree) bestSplit(d *features.Dataset, idx []int, parentCounts []float64, rng *rand.Rand) (feat int, thr float64, ok bool) {
	feats := make([]int, t.dims)
	for i := range feats {
		feats[i] = i
	}
	if t.cfg.MaxFeatures > 0 && t.cfg.MaxFeatures < t.dims {
		rng.Shuffle(len(feats), func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		feats = feats[:t.cfg.MaxFeatures]
		sort.Ints(feats)
	}
	n := float64(len(idx))
	best := gini(parentCounts, n)
	bestFeat, bestThr := -1, 0.0
	order := make([]int, len(idx))
	leftCounts := make([]float64, t.classes)
	rightCounts := make([]float64, t.classes)

	for _, f := range feats {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return d.X[order[a]][f] < d.X[order[b]][f] })
		clear(leftCounts)
		copy(rightCounts, parentCounts)
		for k := 0; k < len(order)-1; k++ {
			y := d.Y[order[k]]
			leftCounts[y]++
			rightCounts[y]--
			xv, xn := d.X[order[k]][f], d.X[order[k+1]][f]
			if xv == xn {
				continue
			}
			nl, nr := float64(k+1), n-float64(k+1)
			score := (nl*gini(leftCounts, nl) + nr*gini(rightCounts, nr)) / n
			if score < best-1e-12 {
				best = score
				bestFeat = f
				bestThr = (xv + xn) / 2
			}
		}
	}
	if bestFeat < 0 {
		return 0, 0, false
	}
	return bestFeat, bestThr, true
}

// leaf walks x down to its leaf node.
func (t *Tree) leaf(x []float64) *treeNode {
	n := &t.nodes[0]
	for n.feature >= 0 {
		if x[n.feature] <= n.threshold {
			n = &t.nodes[n.left]
		} else {
			n = &t.nodes[n.right]
		}
	}
	return n
}

// Predict implements Classifier.
func (t *Tree) Predict(x []float64) int {
	n := t.leaf(x)
	best, bestC := 0, math.Inf(-1)
	for c, v := range n.counts {
		if v > bestC {
			best, bestC = c, v
		}
	}
	return best
}

// Proba implements Classifier.
func (t *Tree) Proba(x []float64) []float64 {
	n := t.leaf(x)
	out := make([]float64, t.classes)
	if n.total == 0 {
		return out
	}
	for c, v := range n.counts {
		out[c] = v / n.total
	}
	return out
}

// NumClasses implements Classifier.
func (t *Tree) NumClasses() int { return t.classes }

// Depth returns the fitted tree's depth.
func (t *Tree) Depth() int { return t.depth(0) }

func (t *Tree) depth(i int) int {
	n := &t.nodes[i]
	if n.feature < 0 {
		return 0
	}
	l, r := t.depth(n.left), t.depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// NumLeaves returns the number of leaf nodes — the rule count after
// compilation to match-action entries.
func (t *Tree) NumLeaves() int {
	n := 0
	for i := range t.nodes {
		if t.nodes[i].feature < 0 {
			n++
		}
	}
	return n
}

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Rule is one root-to-leaf path: the conjunction of threshold conditions
// and the class it predicts — the paper's operator-readable "list of
// pieces of evidence".
type Rule struct {
	Conds   []Cond
	Class   int
	Conf    float64 // leaf purity
	Support float64 // fraction of training data in the leaf
}

// Cond is one threshold condition on a feature.
type Cond struct {
	Feature int
	LE      bool // true: x[f] <= Thr; false: x[f] > Thr
	Thr     float64
}

// Rules enumerates every root-to-leaf path.
func (t *Tree) Rules() []Rule {
	var out []Rule
	var walk func(i int, conds []Cond)
	total := t.nodes[0].total
	walk = func(i int, conds []Cond) {
		n := &t.nodes[i]
		if n.feature < 0 {
			best, bestC := 0, math.Inf(-1)
			for c, v := range n.counts {
				if v > bestC {
					best, bestC = c, v
				}
			}
			conf := 0.0
			if n.total > 0 {
				conf = bestC / n.total
			}
			out = append(out, Rule{
				Conds: append([]Cond(nil), conds...),
				Class: best, Conf: conf, Support: n.total / total,
			})
			return
		}
		walk(n.left, append(conds, Cond{Feature: n.feature, LE: true, Thr: n.threshold}))
		walk(n.right, append(conds, Cond{Feature: n.feature, LE: false, Thr: n.threshold}))
	}
	walk(0, nil)
	return out
}

// ExportedNode is one node of a fitted tree in compiler-consumable form:
// flat indices, the split threshold, and the class histogram the node was
// fitted on (see Tree.Export). Counts/Total let a consumer reproduce the
// exact leaf probabilities Proba computes, including for internal nodes —
// what depth-capped lowering needs.
type ExportedNode struct {
	Feature     int     // split feature, -1 for a leaf
	Threshold   float64 // go left if x[Feature] <= Threshold
	Left, Right int     // child node indices (valid when Feature >= 0)
	Counts      []float64
	Total       float64
}

// Export returns the tree's nodes flat, root at index 0. Counts slices are
// copies; mutating the result never affects the tree.
func (t *Tree) Export() []ExportedNode {
	out := make([]ExportedNode, len(t.nodes))
	for i := range t.nodes {
		n := &t.nodes[i]
		out[i] = ExportedNode{
			Feature: n.feature, Threshold: n.threshold,
			Left: n.left, Right: n.right,
			Counts: append([]float64(nil), n.counts...),
			Total:  n.total,
		}
	}
	return out
}

// FeatureImportance returns normalized Gini importance per feature.
func (t *Tree) FeatureImportance() []float64 {
	imp := make([]float64, t.dims)
	for i := range t.nodes {
		n := &t.nodes[i]
		if n.feature < 0 {
			continue
		}
		l, r := &t.nodes[n.left], &t.nodes[n.right]
		dec := n.total*gini(n.counts, n.total) -
			l.total*gini(l.counts, l.total) - r.total*gini(r.counts, r.total)
		imp[n.feature] += dec
	}
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if sum > 0 {
		for i := range imp {
			imp[i] /= sum
		}
	}
	return imp
}
