package ml

import (
	"math"
	"testing"
)

func TestMergeForests(t *testing.T) {
	d1 := blobs(200, 0.5, 1)
	d2 := blobs(200, 0.5, 2)
	f1, err := FitForest(d1, 2, ForestConfig{Trees: 3, MaxDepth: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := FitForest(d2, 2, ForestConfig{Trees: 5, MaxDepth: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	m, err := MergeForests(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTrees() != 8 || m.NumClasses() != 2 {
		t.Fatalf("merged: %d trees, %d classes", m.NumTrees(), m.NumClasses())
	}
	if m.TotalNodes() != f1.TotalNodes()+f2.TotalNodes() {
		t.Fatalf("merged nodes %d != %d + %d", m.TotalNodes(), f1.TotalNodes(), f2.TotalNodes())
	}

	// The merged vote is exactly the tree-count-weighted average of the
	// inputs' votes — merging is pooling, not retraining.
	for _, x := range d1.X[:50] {
		p1, p2, pm := f1.Proba(x), f2.Proba(x), m.Proba(x)
		for c := range pm {
			want := (3*p1[c] + 5*p2[c]) / 8
			if math.Abs(pm[c]-want) > 1e-12 {
				t.Fatalf("merged proba[%d] = %v, want pooled %v", c, pm[c], want)
			}
		}
	}

	// Inputs are untouched (trees shared, not consumed).
	if f1.NumTrees() != 3 || f2.NumTrees() != 5 {
		t.Fatal("merge mutated its inputs")
	}
}

func TestMergeForestsSingleIsIdentityVote(t *testing.T) {
	f, err := FitForest(blobs(120, 0.4, 3), 2, ForestConfig{Trees: 4, MaxDepth: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := MergeForests(f)
	if err != nil {
		t.Fatal(err)
	}
	d := blobs(40, 0.4, 4)
	for _, x := range d.X {
		if m.Predict(x) != f.Predict(x) {
			t.Fatal("single-input merge changed predictions")
		}
	}
}

func TestMergeForestsErrors(t *testing.T) {
	if _, err := MergeForests(); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, err := MergeForests(nil); err == nil {
		t.Fatal("nil forest accepted")
	}
	f2, _ := FitForest(blobs(100, 0.4, 5), 2, ForestConfig{Trees: 2, MaxDepth: 3, Seed: 5})
	d3 := blobs(100, 0.4, 6)
	for i := range d3.Y {
		d3.Y[i] = i % 3
	}
	f3, err := FitForest(d3, 3, ForestConfig{Trees: 2, MaxDepth: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeForests(f2, f3); err == nil {
		t.Fatal("class-count mismatch accepted")
	}
	if _, err := MergeForests(f2, &Forest{classes: 2}); err == nil {
		t.Fatal("treeless forest accepted")
	}
}
