package ml

import (
	"fmt"
	"sort"
	"strings"

	"campuslab/internal/features"
)

// Confusion is a confusion matrix: Confusion[i][j] counts examples of true
// class i predicted as class j.
type Confusion [][]int

// BatchPredictor is implemented by classifiers whose inference
// parallelizes over examples (the Forest); Evaluate uses it when present.
type BatchPredictor interface {
	PredictBatch(X [][]float64, workers int) []int
}

// Evaluate runs the classifier over d and returns the confusion matrix.
// Classifiers implementing BatchPredictor are evaluated with fan-out; the
// matrix is identical either way because predictions are index-addressed.
func Evaluate(c Classifier, d *features.Dataset) Confusion {
	n := c.NumClasses()
	m := make(Confusion, n)
	for i := range m {
		m[i] = make([]int, n)
	}
	if bp, ok := c.(BatchPredictor); ok {
		preds := bp.PredictBatch(d.X, 0)
		for i, y := range d.Y {
			if y >= n {
				continue // class unseen at training time
			}
			m[y][preds[i]]++
		}
		return m
	}
	for i, x := range d.X {
		y := d.Y[i]
		if y >= n {
			continue // class unseen at training time
		}
		m[y][c.Predict(x)]++
	}
	return m
}

// Accuracy is the trace over the total.
func (m Confusion) Accuracy() float64 {
	var correct, total int
	for i := range m {
		for j := range m[i] {
			total += m[i][j]
			if i == j {
				correct += m[i][j]
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Precision of class c: TP / (TP + FP).
func (m Confusion) Precision(c int) float64 {
	var tp, fp int
	for i := range m {
		if i == c {
			tp = m[i][c]
		} else {
			fp += m[i][c]
		}
	}
	if tp+fp == 0 {
		return 0
	}
	return float64(tp) / float64(tp+fp)
}

// Recall of class c: TP / (TP + FN).
func (m Confusion) Recall(c int) float64 {
	var tp, fn int
	for j := range m[c] {
		if j == c {
			tp = m[c][j]
		} else {
			fn += m[c][j]
		}
	}
	if tp+fn == 0 {
		return 0
	}
	return float64(tp) / float64(tp+fn)
}

// F1 of class c.
func (m Confusion) F1(c int) float64 {
	p, r := m.Precision(c), m.Recall(c)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix for reports.
func (m Confusion) String() string {
	var sb strings.Builder
	for i := range m {
		for j := range m[i] {
			fmt.Fprintf(&sb, "%8d", m[i][j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// AUC computes the area under the ROC curve for binary scores: ys are 0/1
// truths, scores are P(class 1). Ties are handled by midrank.
func AUC(ys []int, scores []float64) float64 {
	type pair struct {
		s float64
		y int
	}
	ps := make([]pair, len(ys))
	for i := range ys {
		ps[i] = pair{scores[i], ys[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s < ps[j].s })
	// Midranks for ties.
	ranks := make([]float64, len(ps))
	for i := 0; i < len(ps); {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		mid := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		i = j
	}
	var sumPos float64
	var nPos, nNeg float64
	for i, p := range ps {
		if p.y == 1 {
			sumPos += ranks[i]
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	return (sumPos - nPos*(nPos+1)/2) / (nPos * nNeg)
}

// Agreement measures the fraction of examples on which two classifiers
// produce the same prediction — the fidelity metric for model extraction.
func Agreement(a, b Classifier, d *features.Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	same := 0
	for _, x := range d.X {
		if a.Predict(x) == b.Predict(x) {
			same++
		}
	}
	return float64(same) / float64(d.Len())
}

// CrossValidate runs k-fold CV, training with fit on each fold's training
// split and returning per-fold accuracies.
func CrossValidate(d *features.Dataset, k int, seed int64, fit func(train *features.Dataset) (Classifier, error)) ([]float64, error) {
	if k < 2 || d.Len() < k {
		return nil, fmt.Errorf("ml: need k>=2 folds over %d examples, got k=%d", d.Len(), k)
	}
	shuffled := &features.Dataset{Schema: d.Schema, X: append([][]float64(nil), d.X...), Y: append([]int(nil), d.Y...)}
	shuffled.Shuffle(seed)
	foldSize := shuffled.Len() / k
	accs := make([]float64, 0, k)
	for f := 0; f < k; f++ {
		lo, hi := f*foldSize, (f+1)*foldSize
		if f == k-1 {
			hi = shuffled.Len()
		}
		train := &features.Dataset{Schema: d.Schema}
		test := &features.Dataset{Schema: d.Schema}
		for i := 0; i < shuffled.Len(); i++ {
			if i >= lo && i < hi {
				test.X = append(test.X, shuffled.X[i])
				test.Y = append(test.Y, shuffled.Y[i])
			} else {
				train.X = append(train.X, shuffled.X[i])
				train.Y = append(train.Y, shuffled.Y[i])
			}
		}
		c, err := fit(train)
		if err != nil {
			return nil, fmt.Errorf("ml: fold %d: %w", f, err)
		}
		accs = append(accs, Evaluate(c, test).Accuracy())
	}
	return accs, nil
}

// Mean returns the mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
