package ml

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Model serialization lets the control plane persist a fitted model as a
// last-known-good bundle and restore it byte-identically after a rollback
// or restart — the durability half of the self-healing lifecycle. The
// format is self-framing and checksummed like the store's snapshot:
//
//	tree:   magic "CLTR" | version u16 | classes u32 | dims u32 |
//	        cfg (maxDepth i32, minSplit i32, maxFeat i32, seed i64) |
//	        node count u32, then per node:
//	        feature i32 | threshold f64 | left u32 | right u32 |
//	        total f64 | counts f64 × classes
//	        | crc32(everything after magic+version)
//	forest: magic "CLFR" | version u16 | classes u32 | tree count u32 |
//	        per tree: len u32 | tree bytes | crc32(header)
//
// All integers little-endian. Restored models predict identically to the
// originals (same flat node layout, same histogram values).

const (
	treeMagic     = "CLTR"
	forestMagic   = "CLFR"
	modelVersion  = 1
	maxModelNodes = 1 << 24 // a flipped count must not drive a huge alloc
)

// ErrBadModel reports model bytes that fail structural validation or
// checksum — never a panic.
var ErrBadModel = errors.New("ml: bad model bytes")

// MarshalBinary serializes the fitted tree.
func (t *Tree) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, 64+len(t.nodes)*(24+8*t.classes))
	b = append(b, treeMagic...)
	b = binary.LittleEndian.AppendUint16(b, modelVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(t.classes))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.dims))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(t.cfg.MaxDepth)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(t.cfg.MinSamplesSplit)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(t.cfg.MaxFeatures)))
	b = binary.LittleEndian.AppendUint64(b, uint64(t.cfg.Seed))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(t.nodes)))
	for i := range t.nodes {
		n := &t.nodes[i]
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(n.feature)))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(n.threshold))
		b = binary.LittleEndian.AppendUint32(b, uint32(n.left))
		b = binary.LittleEndian.AppendUint32(b, uint32(n.right))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(n.total))
		if len(n.counts) != t.classes {
			return nil, fmt.Errorf("ml: node %d has %d counts, tree has %d classes", i, len(n.counts), t.classes)
		}
		for _, c := range n.counts {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c))
		}
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[6:]))
	return b, nil
}

// UnmarshalTree restores a tree serialized by MarshalBinary. Corrupt input
// yields ErrBadModel; the returned tree predicts identically to the
// original.
func UnmarshalTree(b []byte) (*Tree, error) {
	body, err := checkModelFrame(b, treeMagic)
	if err != nil {
		return nil, err
	}
	return decodeTree(body)
}

// checkModelFrame validates magic, version, and trailing CRC, returning
// the body between the version and the checksum.
func checkModelFrame(b []byte, magic string) ([]byte, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("%w: short", ErrBadModel)
	}
	if string(b[:4]) != magic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadModel, b[:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != modelVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadModel, v)
	}
	body, sum := b[6:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadModel)
	}
	return body, nil
}

// decodeTree parses the checksummed tree body.
func decodeTree(b []byte) (*Tree, error) {
	if len(b) < 28 {
		return nil, fmt.Errorf("%w: short tree header", ErrBadModel)
	}
	t := &Tree{
		classes: int(binary.LittleEndian.Uint32(b[0:4])),
		dims:    int(binary.LittleEndian.Uint32(b[4:8])),
		cfg: TreeConfig{
			MaxDepth:        int(int32(binary.LittleEndian.Uint32(b[8:12]))),
			MinSamplesSplit: int(int32(binary.LittleEndian.Uint32(b[12:16]))),
			MaxFeatures:     int(int32(binary.LittleEndian.Uint32(b[16:20]))),
			Seed:            int64(binary.LittleEndian.Uint64(b[20:28])),
		},
	}
	if t.classes <= 0 || t.classes > 1<<16 || t.dims < 0 || t.dims > 1<<16 {
		return nil, fmt.Errorf("%w: %d classes / %d dims", ErrBadModel, t.classes, t.dims)
	}
	nNodes := int(binary.LittleEndian.Uint32(b[28:32]))
	if nNodes <= 0 || nNodes > maxModelNodes {
		return nil, fmt.Errorf("%w: %d nodes", ErrBadModel, nNodes)
	}
	off := 32
	nodeSize := 28 + 8*t.classes
	if len(b)-off != nNodes*nodeSize {
		return nil, fmt.Errorf("%w: %d body bytes for %d nodes", ErrBadModel, len(b)-off, nNodes)
	}
	t.nodes = make([]treeNode, nNodes)
	for i := range t.nodes {
		n := &t.nodes[i]
		n.feature = int(int32(binary.LittleEndian.Uint32(b[off : off+4])))
		n.threshold = math.Float64frombits(binary.LittleEndian.Uint64(b[off+4 : off+12]))
		n.left = int(binary.LittleEndian.Uint32(b[off+12 : off+16]))
		n.right = int(binary.LittleEndian.Uint32(b[off+16 : off+20]))
		n.total = math.Float64frombits(binary.LittleEndian.Uint64(b[off+20 : off+28]))
		off += 28
		if n.feature >= t.dims || (n.feature >= 0 && (n.left >= nNodes || n.right >= nNodes)) {
			return nil, fmt.Errorf("%w: node %d references out of range", ErrBadModel, i)
		}
		n.counts = make([]float64, t.classes)
		for c := range n.counts {
			n.counts[c] = math.Float64frombits(binary.LittleEndian.Uint64(b[off : off+8]))
			off += 8
		}
	}
	return t, nil
}

// MarshalBinary serializes the forest (every member tree framed inside).
func (f *Forest) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, 1<<16)
	b = append(b, forestMagic...)
	b = binary.LittleEndian.AppendUint16(b, modelVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(f.classes))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(f.trees)))
	for i, t := range f.trees {
		tb, err := t.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("ml: forest tree %d: %w", i, err)
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(len(tb)))
		b = append(b, tb...)
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[6:]))
	return b, nil
}

// UnmarshalForest restores a forest serialized by MarshalBinary.
func UnmarshalForest(b []byte) (*Forest, error) {
	body, err := checkModelFrame(b, forestMagic)
	if err != nil {
		return nil, err
	}
	if len(body) < 8 {
		return nil, fmt.Errorf("%w: short forest header", ErrBadModel)
	}
	f := &Forest{classes: int(binary.LittleEndian.Uint32(body[0:4]))}
	nTrees := int(binary.LittleEndian.Uint32(body[4:8]))
	if f.classes <= 0 || nTrees <= 0 || nTrees > 1<<16 {
		return nil, fmt.Errorf("%w: %d classes / %d trees", ErrBadModel, f.classes, nTrees)
	}
	off := 8
	f.trees = make([]*Tree, nTrees)
	for i := range f.trees {
		if off+4 > len(body) {
			return nil, fmt.Errorf("%w: truncated at tree %d", ErrBadModel, i)
		}
		tl := int(binary.LittleEndian.Uint32(body[off : off+4]))
		off += 4
		if tl < 0 || off+tl > len(body) {
			return nil, fmt.Errorf("%w: tree %d claims %d bytes", ErrBadModel, i, tl)
		}
		t, err := UnmarshalTree(body[off : off+tl])
		if err != nil {
			return nil, fmt.Errorf("ml: forest tree %d: %w", i, err)
		}
		if t.classes != f.classes {
			return nil, fmt.Errorf("%w: tree %d has %d classes, forest %d", ErrBadModel, i, t.classes, f.classes)
		}
		f.trees[i] = t
		off += tl
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadModel, len(body)-off)
	}
	return f, nil
}
