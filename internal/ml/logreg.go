package ml

import (
	"fmt"
	"math"
	"math/rand"

	"campuslab/internal/features"
)

// LogRegConfig controls logistic-regression training.
type LogRegConfig struct {
	// Epochs of SGD over the data (default 50).
	Epochs int
	// LearningRate for SGD (default 0.1).
	LearningRate float64
	// L2 regularization strength (default 1e-4).
	L2 float64
	// Seed shuffles example order per epoch.
	Seed int64
}

// LogReg is a multinomial (softmax) logistic regression — the simple
// linear baseline against which trees and forests are compared, and a
// second "deployable" candidate whose weights an operator can read.
type LogReg struct {
	W       [][]float64 // [class][dim]
	B       []float64   // [class]
	classes int
	dims    int
}

// FitLogReg trains with plain SGD on the softmax cross-entropy.
// Features should be standardized first (see features.Standardizer).
func FitLogReg(d *features.Dataset, classes int, cfg LogRegConfig) (*LogReg, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: empty dataset")
	}
	if classes <= 0 {
		classes = maxLabel(d.Y) + 1
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 50
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.L2 < 0 {
		cfg.L2 = 1e-4
	}
	m := &LogReg{classes: classes, dims: d.Dims(), B: make([]float64, classes)}
	m.W = make([][]float64, classes)
	for c := range m.W {
		m.W[c] = make([]float64, m.dims)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, d.Len())
	for i := range order {
		order[i] = i
	}
	probs := make([]float64, classes)
	for e := 0; e < cfg.Epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := cfg.LearningRate / (1 + 0.05*float64(e))
		for _, i := range order {
			m.softmax(d.X[i], probs)
			for c := 0; c < classes; c++ {
				grad := probs[c]
				if c == d.Y[i] {
					grad -= 1
				}
				w := m.W[c]
				for j, xv := range d.X[i] {
					w[j] -= lr * (grad*xv + cfg.L2*w[j])
				}
				m.B[c] -= lr * grad
			}
		}
	}
	return m, nil
}

func (m *LogReg) softmax(x []float64, out []float64) {
	maxZ := math.Inf(-1)
	for c := 0; c < m.classes; c++ {
		z := m.B[c]
		w := m.W[c]
		for j, xv := range x {
			z += w[j] * xv
		}
		out[c] = z
		if z > maxZ {
			maxZ = z
		}
	}
	var sum float64
	for c := range out {
		out[c] = math.Exp(out[c] - maxZ)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
}

// Predict implements Classifier.
func (m *LogReg) Predict(x []float64) int {
	p := m.Proba(x)
	best, bestV := 0, math.Inf(-1)
	for c, v := range p {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// Proba implements Classifier.
func (m *LogReg) Proba(x []float64) []float64 {
	out := make([]float64, m.classes)
	m.softmax(x, out)
	return out
}

// NumClasses implements Classifier.
func (m *LogReg) NumClasses() int { return m.classes }
