package ml

import (
	"fmt"
	"math"
	"math/rand"

	"campuslab/internal/features"
)

// BoostConfig controls AdaBoost (SAMME) training.
type BoostConfig struct {
	// Rounds is the number of weak learners (default 50).
	Rounds int
	// WeakDepth bounds each weak tree (default 2 — stumps-plus).
	WeakDepth int
	// Seed drives the weighted resampling.
	Seed int64
}

// Boost is an AdaBoost.SAMME ensemble of shallow trees — a second
// black-box family alongside the random forest, used to show that model
// extraction (internal/xai) is model-agnostic: the extracted tree mimics
// whatever taught it.
type Boost struct {
	trees   []*Tree
	alphas  []float64
	classes int
}

// FitBoost trains the ensemble. Sample weighting is implemented by
// weighted resampling, which keeps the weak learner unchanged.
func FitBoost(d *features.Dataset, classes int, cfg BoostConfig) (*Boost, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: empty dataset")
	}
	if classes <= 0 {
		classes = maxLabel(d.Y) + 1
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 50
	}
	if cfg.WeakDepth <= 0 {
		cfg.WeakDepth = 2
	}
	n := d.Len()
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := &Boost{classes: classes}
	sample := &features.Dataset{Schema: d.Schema}
	cum := make([]float64, n+1)

	for round := 0; round < cfg.Rounds; round++ {
		// Weighted bootstrap via inverse-CDF sampling.
		cum[0] = 0
		for i, wi := range w {
			cum[i+1] = cum[i] + wi
		}
		total := cum[n]
		sample.X = sample.X[:0]
		sample.Y = sample.Y[:0]
		for i := 0; i < n; i++ {
			u := rng.Float64() * total
			lo, hi := 0, n
			for lo < hi {
				mid := (lo + hi) / 2
				if cum[mid+1] < u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			sample.X = append(sample.X, d.X[lo])
			sample.Y = append(sample.Y, d.Y[lo])
		}
		tree, err := FitTree(sample, classes, TreeConfig{MaxDepth: cfg.WeakDepth, Seed: rng.Int63()})
		if err != nil {
			return nil, err
		}
		// Weighted error on the ORIGINAL distribution.
		var errw float64
		for i := range d.X {
			if tree.Predict(d.X[i]) != d.Y[i] {
				errw += w[i]
			}
		}
		if errw >= 1-1/float64(classes) {
			continue // worse than chance: discard this round
		}
		if errw < 1e-10 {
			// Perfect learner: dominate the vote and stop.
			b.trees = append(b.trees, tree)
			b.alphas = append(b.alphas, 10)
			break
		}
		alpha := math.Log((1-errw)/errw) + math.Log(float64(classes)-1)
		b.trees = append(b.trees, tree)
		b.alphas = append(b.alphas, alpha)
		// Reweight: misclassified examples gain weight.
		var sum float64
		for i := range w {
			if b.trees[len(b.trees)-1].Predict(d.X[i]) != d.Y[i] {
				w[i] *= math.Exp(alpha)
			}
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
	}
	if len(b.trees) == 0 {
		return nil, fmt.Errorf("ml: boosting found no usable weak learner")
	}
	return b, nil
}

// Predict implements Classifier.
func (b *Boost) Predict(x []float64) int {
	p := b.Proba(x)
	best, bestV := 0, math.Inf(-1)
	for c, v := range p {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// Proba implements Classifier: normalized alpha-weighted votes.
func (b *Boost) Proba(x []float64) []float64 {
	out := make([]float64, b.classes)
	var total float64
	for i, t := range b.trees {
		out[t.Predict(x)] += b.alphas[i]
		total += b.alphas[i]
	}
	if total > 0 {
		for c := range out {
			out[c] /= total
		}
	}
	return out
}

// NumClasses implements Classifier.
func (b *Boost) NumClasses() int { return b.classes }

// NumTrees returns the number of retained weak learners.
func (b *Boost) NumTrees() int { return len(b.trees) }

// Tree returns weak learner t (ensemble compilation and inspection).
func (b *Boost) Tree(t int) *Tree { return b.trees[t] }

// Alpha returns weak learner t's vote weight.
func (b *Boost) Alpha(t int) float64 { return b.alphas[t] }

// TotalNodes sums weak-learner node counts.
func (b *Boost) TotalNodes() int {
	n := 0
	for _, t := range b.trees {
		n += t.NumNodes()
	}
	return n
}
