package ml

import (
	"fmt"
	"math"
	"math/rand"

	"campuslab/internal/features"
	"campuslab/internal/obs"
	"campuslab/internal/parallel"
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	// Trees is the ensemble size (default 50).
	Trees int
	// MaxDepth bounds each tree (<=0 unbounded).
	MaxDepth int
	// MinSamplesSplit per tree (default 2).
	MinSamplesSplit int
	// Seed drives bootstrap and feature sampling. The sampling stream is
	// drawn serially up front, so the fitted ensemble is identical at any
	// worker count (and to the historical serial implementation).
	Seed int64
	// Workers bounds training fan-out (0 = GOMAXPROCS, 1 = serial).
	Workers int
}

// Forest is a bagged random forest — the heavyweight offline "black-box"
// model of Figure 2: accurate, but with hundreds of trees and thousands of
// paths, not something an operator can audit or a switch can run.
type Forest struct {
	trees   []*Tree
	classes int
}

// FitForest trains the ensemble: bootstrap sample per tree, sqrt(d)
// feature subsampling at each split. The random sampling stream (bootstrap
// indices and per-tree seeds) is drawn serially from cfg.Seed before any
// fan-out, then trees train concurrently across cfg.Workers goroutines —
// so the ensemble is byte-for-byte identical at any worker count, and
// identical to what the serial implementation has always produced.
func FitForest(d *features.Dataset, classes int, cfg ForestConfig) (*Forest, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: empty dataset")
	}
	if cfg.Trees <= 0 {
		cfg.Trees = 50
	}
	if classes <= 0 {
		classes = maxLabel(d.Y) + 1
	}
	maxFeat := int(math.Sqrt(float64(d.Dims())))
	if maxFeat < 1 {
		maxFeat = 1
	}
	defer obs.Default.StartSpan("train")()
	rng := rand.New(rand.NewSource(cfg.Seed))
	boots := make([][]int, cfg.Trees)
	seeds := make([]int64, cfg.Trees)
	for t := 0; t < cfg.Trees; t++ {
		ix := make([]int, d.Len())
		for i := range ix {
			ix[i] = rng.Intn(d.Len())
		}
		boots[t] = ix
		seeds[t] = rng.Int63()
	}
	f := &Forest{classes: classes, trees: make([]*Tree, cfg.Trees)}
	errs := make([]error, cfg.Trees)
	parallel.ForChunks(cfg.Trees, cfg.Workers, func(lo, hi int) {
		// One reusable bootstrap buffer per worker; rows alias d.X.
		boot := &features.Dataset{
			Schema: d.Schema,
			X:      make([][]float64, d.Len()),
			Y:      make([]int, d.Len()),
		}
		for t := lo; t < hi; t++ {
			for i, j := range boots[t] {
				boot.X[i] = d.X[j]
				boot.Y[i] = d.Y[j]
			}
			f.trees[t], errs[t] = FitTree(boot, classes, TreeConfig{
				MaxDepth:        cfg.MaxDepth,
				MinSamplesSplit: cfg.MinSamplesSplit,
				MaxFeatures:     maxFeat,
				Seed:            seeds[t],
			})
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Predict implements Classifier (argmax of averaged probabilities).
func (f *Forest) Predict(x []float64) int {
	p := f.Proba(x)
	best, bestV := 0, math.Inf(-1)
	for c, v := range p {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// PredictBatch classifies every row of X, fanning examples across workers
// (0 = GOMAXPROCS). Output is index-addressed, so predictions are
// identical to calling Predict row by row.
func (f *Forest) PredictBatch(X [][]float64, workers int) []int {
	out := make([]int, len(X))
	parallel.For(len(X), workers, func(i int) {
		out[i] = f.Predict(X[i])
	})
	return out
}

// Proba implements Classifier: the mean of member-tree probabilities.
func (f *Forest) Proba(x []float64) []float64 {
	out := make([]float64, f.classes)
	for _, t := range f.trees {
		for c, v := range t.Proba(x) {
			out[c] += v
		}
	}
	n := float64(len(f.trees))
	for c := range out {
		out[c] /= n
	}
	return out
}

// NumClasses implements Classifier.
func (f *Forest) NumClasses() int { return f.classes }

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Tree returns member tree t (equivalence testing and inspection).
func (f *Forest) Tree(t int) *Tree { return f.trees[t] }

// TotalNodes sums member-tree node counts — a size measure for the
// black-box vs deployable-model comparison.
func (f *Forest) TotalNodes() int {
	n := 0
	for _, t := range f.trees {
		n += t.NumNodes()
	}
	return n
}

// FeatureImportance averages member-tree importances.
func (f *Forest) FeatureImportance() []float64 {
	if len(f.trees) == 0 {
		return nil
	}
	out := make([]float64, f.trees[0].dims)
	for _, t := range f.trees {
		for i, v := range t.FeatureImportance() {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(f.trees))
	}
	return out
}
