package ml

import (
	"fmt"
	"math"
	"math/rand"

	"campuslab/internal/features"
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	// Trees is the ensemble size (default 50).
	Trees int
	// MaxDepth bounds each tree (<=0 unbounded).
	MaxDepth int
	// MinSamplesSplit per tree (default 2).
	MinSamplesSplit int
	// Seed drives bootstrap and feature sampling.
	Seed int64
}

// Forest is a bagged random forest — the heavyweight offline "black-box"
// model of Figure 2: accurate, but with hundreds of trees and thousands of
// paths, not something an operator can audit or a switch can run.
type Forest struct {
	trees   []*Tree
	classes int
}

// FitForest trains the ensemble: bootstrap sample per tree, sqrt(d)
// feature subsampling at each split.
func FitForest(d *features.Dataset, classes int, cfg ForestConfig) (*Forest, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: empty dataset")
	}
	if cfg.Trees <= 0 {
		cfg.Trees = 50
	}
	if classes <= 0 {
		classes = maxLabel(d.Y) + 1
	}
	maxFeat := int(math.Sqrt(float64(d.Dims())))
	if maxFeat < 1 {
		maxFeat = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{classes: classes}
	boot := &features.Dataset{Schema: d.Schema}
	for t := 0; t < cfg.Trees; t++ {
		boot.X = boot.X[:0]
		boot.Y = boot.Y[:0]
		for i := 0; i < d.Len(); i++ {
			j := rng.Intn(d.Len())
			boot.X = append(boot.X, d.X[j])
			boot.Y = append(boot.Y, d.Y[j])
		}
		tree, err := FitTree(boot, classes, TreeConfig{
			MaxDepth:        cfg.MaxDepth,
			MinSamplesSplit: cfg.MinSamplesSplit,
			MaxFeatures:     maxFeat,
			Seed:            rng.Int63(),
		})
		if err != nil {
			return nil, err
		}
		f.trees = append(f.trees, tree)
	}
	return f, nil
}

// Predict implements Classifier (argmax of averaged probabilities).
func (f *Forest) Predict(x []float64) int {
	p := f.Proba(x)
	best, bestV := 0, math.Inf(-1)
	for c, v := range p {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// Proba implements Classifier: the mean of member-tree probabilities.
func (f *Forest) Proba(x []float64) []float64 {
	out := make([]float64, f.classes)
	for _, t := range f.trees {
		for c, v := range t.Proba(x) {
			out[c] += v
		}
	}
	n := float64(len(f.trees))
	for c := range out {
		out[c] /= n
	}
	return out
}

// NumClasses implements Classifier.
func (f *Forest) NumClasses() int { return f.classes }

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// TotalNodes sums member-tree node counts — a size measure for the
// black-box vs deployable-model comparison.
func (f *Forest) TotalNodes() int {
	n := 0
	for _, t := range f.trees {
		n += t.NumNodes()
	}
	return n
}

// FeatureImportance averages member-tree importances.
func (f *Forest) FeatureImportance() []float64 {
	if len(f.trees) == 0 {
		return nil
	}
	out := make([]float64, f.trees[0].dims)
	for _, t := range f.trees {
		for i, v := range t.FeatureImportance() {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(f.trees))
	}
	return out
}
