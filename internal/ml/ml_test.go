package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"campuslab/internal/features"
)

// blobs builds a separable 2-class dataset: class 0 around (0,0), class 1
// around (4,4), with noise sigma.
func blobs(n int, sigma float64, seed int64) *features.Dataset {
	r := rand.New(rand.NewSource(seed))
	d := &features.Dataset{Schema: []string{"x0", "x1"}}
	for i := 0; i < n; i++ {
		c := i % 2
		cx := float64(c * 4)
		d.X = append(d.X, []float64{cx + r.NormFloat64()*sigma, cx + r.NormFloat64()*sigma})
		d.Y = append(d.Y, c)
	}
	return d
}

// xorData is the classic not-linearly-separable problem.
func xorData(n int, seed int64) *features.Dataset {
	r := rand.New(rand.NewSource(seed))
	d := &features.Dataset{Schema: []string{"x0", "x1"}}
	for i := 0; i < n; i++ {
		a, b := r.Float64() > 0.5, r.Float64() > 0.5
		x0, x1 := 0.1, 0.1
		if a {
			x0 = 0.9
		}
		if b {
			x1 = 0.9
		}
		y := 0
		if a != b {
			y = 1
		}
		d.X = append(d.X, []float64{x0 + r.NormFloat64()*0.05, x1 + r.NormFloat64()*0.05})
		d.Y = append(d.Y, y)
	}
	return d
}

func TestTreeLearnsBlobs(t *testing.T) {
	train := blobs(400, 0.7, 1)
	test := blobs(200, 0.7, 2)
	tree, err := FitTree(train, 0, TreeConfig{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Evaluate(tree, test).Accuracy(); acc < 0.95 {
		t.Errorf("tree accuracy %v on trivially separable data", acc)
	}
}

func TestTreeLearnsXOR(t *testing.T) {
	train := xorData(400, 3)
	test := xorData(200, 4)
	tree, err := FitTree(train, 0, TreeConfig{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Evaluate(tree, test).Accuracy(); acc < 0.95 {
		t.Errorf("tree accuracy %v on XOR", acc)
	}
}

func TestTreeDepthBound(t *testing.T) {
	train := xorData(500, 5)
	for _, maxD := range []int{1, 2, 3, 5} {
		tree, err := FitTree(train, 0, TreeConfig{MaxDepth: maxD})
		if err != nil {
			t.Fatal(err)
		}
		if tree.Depth() > maxD {
			t.Errorf("depth %d > bound %d", tree.Depth(), maxD)
		}
	}
}

func TestTreePureLeavesProbability(t *testing.T) {
	d := &features.Dataset{
		Schema: []string{"a"},
		X:      [][]float64{{0}, {0}, {1}, {1}},
		Y:      []int{0, 0, 1, 1},
	}
	tree, err := FitTree(d, 0, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p := tree.Proba([]float64{0})
	if p[0] != 1 || p[1] != 0 {
		t.Errorf("proba = %v", p)
	}
	if tree.Predict([]float64{1}) != 1 {
		t.Error("wrong class")
	}
}

func TestTreeDeterministic(t *testing.T) {
	train := blobs(300, 1.0, 7)
	a, _ := FitTree(train, 0, TreeConfig{MaxDepth: 6, Seed: 9})
	b, _ := FitTree(train, 0, TreeConfig{MaxDepth: 6, Seed: 9})
	test := blobs(100, 1.0, 8)
	for _, x := range test.X {
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same seed, different trees")
		}
	}
}

func TestTreeRulesCoverAndAgree(t *testing.T) {
	train := xorData(400, 11)
	tree, _ := FitTree(train, 0, TreeConfig{MaxDepth: 4})
	rules := tree.Rules()
	if len(rules) != tree.NumLeaves() {
		t.Fatalf("%d rules vs %d leaves", len(rules), tree.NumLeaves())
	}
	// Every example matches exactly one rule, and that rule's class is
	// the tree's prediction.
	for i, x := range train.X {
		matched := 0
		for _, r := range rules {
			ok := true
			for _, c := range r.Conds {
				if c.LE && !(x[c.Feature] <= c.Thr) || !c.LE && !(x[c.Feature] > c.Thr) {
					ok = false
					break
				}
			}
			if ok {
				matched++
				if r.Class != tree.Predict(x) {
					t.Fatalf("example %d: rule class %d != prediction %d", i, r.Class, tree.Predict(x))
				}
			}
		}
		if matched != 1 {
			t.Fatalf("example %d matched %d rules", i, matched)
		}
	}
	var support float64
	for _, r := range rules {
		support += r.Support
	}
	if math.Abs(support-1) > 1e-9 {
		t.Errorf("rule supports sum to %v", support)
	}
}

func TestTreeFeatureImportance(t *testing.T) {
	// Only feature 0 is informative.
	r := rand.New(rand.NewSource(13))
	d := &features.Dataset{Schema: []string{"signal", "noise"}}
	for i := 0; i < 400; i++ {
		c := i % 2
		d.X = append(d.X, []float64{float64(c) + r.NormFloat64()*0.1, r.NormFloat64()})
		d.Y = append(d.Y, c)
	}
	tree, _ := FitTree(d, 0, TreeConfig{MaxDepth: 4})
	imp := tree.FeatureImportance()
	if imp[0] < 0.9 {
		t.Errorf("importance = %v, signal should dominate", imp)
	}
}

func TestFitTreeEmpty(t *testing.T) {
	if _, err := FitTree(&features.Dataset{}, 0, TreeConfig{}); err == nil {
		t.Error("accepted empty dataset")
	}
}

func TestForestBeatsOrMatchesTreeOnNoisyData(t *testing.T) {
	train := blobs(600, 2.2, 21) // heavy overlap
	test := blobs(400, 2.2, 22)
	tree, _ := FitTree(train, 0, TreeConfig{}) // unbounded: overfits
	forest, err := FitForest(train, 0, ForestConfig{Trees: 40, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	at := Evaluate(tree, test).Accuracy()
	af := Evaluate(forest, test).Accuracy()
	if af < at-0.02 {
		t.Errorf("forest %v worse than single overfit tree %v", af, at)
	}
	if forest.NumTrees() != 40 {
		t.Errorf("trees = %d", forest.NumTrees())
	}
	if forest.TotalNodes() <= tree.NumNodes() {
		t.Error("forest should be much bigger than one tree")
	}
}

func TestForestProbaSumsToOne(t *testing.T) {
	train := blobs(200, 1.0, 31)
	forest, _ := FitForest(train, 0, ForestConfig{Trees: 10, Seed: 32})
	fn := func(a, b float64) bool {
		p := forest.Proba([]float64{a, b})
		var s float64
		for _, v := range p {
			s += v
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLogRegLearnsLinear(t *testing.T) {
	train := blobs(600, 1.0, 41)
	test := blobs(300, 1.0, 42)
	std := features.FitStandardizer(train)
	std.Apply(train)
	std.Apply(test)
	m, err := FitLogReg(train, 0, LogRegConfig{Epochs: 30, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Evaluate(m, test).Accuracy(); acc < 0.93 {
		t.Errorf("logreg accuracy %v", acc)
	}
}

func TestLogRegFailsXOR(t *testing.T) {
	// Sanity: a linear model cannot solve XOR — protects against the
	// test data being accidentally separable.
	train := xorData(600, 44)
	test := xorData(300, 45)
	m, _ := FitLogReg(train, 0, LogRegConfig{Epochs: 40, Seed: 46})
	if acc := Evaluate(m, test).Accuracy(); acc > 0.8 {
		t.Errorf("linear model 'solved' XOR with %v — test harness broken", acc)
	}
}

func TestConfusionMetrics(t *testing.T) {
	m := Confusion{
		{50, 10}, // true 0: 50 right, 10 wrong
		{5, 35},  // true 1: 35 right, 5 wrong
	}
	if got := m.Accuracy(); math.Abs(got-0.85) > 1e-9 {
		t.Errorf("accuracy = %v", got)
	}
	if got := m.Precision(1); math.Abs(got-35.0/45.0) > 1e-9 {
		t.Errorf("precision = %v", got)
	}
	if got := m.Recall(1); math.Abs(got-35.0/40.0) > 1e-9 {
		t.Errorf("recall = %v", got)
	}
	p, r := m.Precision(1), m.Recall(1)
	if got := m.F1(1); math.Abs(got-2*p*r/(p+r)) > 1e-9 {
		t.Errorf("f1 = %v", got)
	}
	if m.String() == "" {
		t.Error("empty string render")
	}
}

func TestAUC(t *testing.T) {
	// Perfect separation.
	if got := AUC([]int{0, 0, 1, 1}, []float64{0.1, 0.2, 0.8, 0.9}); got != 1 {
		t.Errorf("perfect AUC = %v", got)
	}
	// Inverted.
	if got := AUC([]int{1, 1, 0, 0}, []float64{0.1, 0.2, 0.8, 0.9}); got != 0 {
		t.Errorf("inverted AUC = %v", got)
	}
	// Random scores → about 0.5; all-ties → exactly 0.5.
	if got := AUC([]int{0, 1, 0, 1}, []float64{0.5, 0.5, 0.5, 0.5}); got != 0.5 {
		t.Errorf("tied AUC = %v", got)
	}
	// Degenerate single class.
	if got := AUC([]int{1, 1}, []float64{0.1, 0.2}); got != 0.5 {
		t.Errorf("single-class AUC = %v", got)
	}
}

func TestAgreement(t *testing.T) {
	train := blobs(300, 0.5, 51)
	a, _ := FitTree(train, 0, TreeConfig{MaxDepth: 5})
	if got := Agreement(a, a, train); got != 1 {
		t.Errorf("self agreement = %v", got)
	}
}

func TestCrossValidate(t *testing.T) {
	d := blobs(300, 0.8, 61)
	accs, err := CrossValidate(d, 5, 62, func(train *features.Dataset) (Classifier, error) {
		return FitTree(train, 2, TreeConfig{MaxDepth: 4})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 5 {
		t.Fatalf("folds = %d", len(accs))
	}
	if Mean(accs) < 0.9 {
		t.Errorf("cv mean accuracy = %v", Mean(accs))
	}
	if _, err := CrossValidate(d, 1, 0, nil); err == nil {
		t.Error("accepted k=1")
	}
}

func BenchmarkFitTree(b *testing.B) {
	d := blobs(1000, 1.0, 71)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FitTree(d, 0, TreeConfig{MaxDepth: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestPredict(b *testing.B) {
	d := blobs(500, 1.0, 72)
	f, _ := FitForest(d, 0, ForestConfig{Trees: 50, Seed: 73})
	x := []float64{2, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(x)
	}
}

func BenchmarkTreePredict(b *testing.B) {
	d := blobs(500, 1.0, 74)
	tr, _ := FitTree(d, 0, TreeConfig{MaxDepth: 8})
	x := []float64{2, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Predict(x)
	}
}
