package ml

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"campuslab/internal/features"
)

// serializeDataset builds a small deterministic two-class dataset.
func serializeDataset(n int, seed int64) *features.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &features.Dataset{
		Schema: []string{"f0", "f1", "f2", "f3", "f4", "f5"},
		X:      make([][]float64, n), Y: make([]int, n),
	}
	for i := range d.X {
		x := make([]float64, 6)
		for j := range x {
			x[j] = rng.Float64() * 10
		}
		d.X[i] = x
		if x[0]+x[3] > 10 {
			d.Y[i] = 1
		}
	}
	return d
}

func TestTreeSerializeRoundTrip(t *testing.T) {
	d := serializeDataset(400, 1)
	tree, err := FitTree(d, 2, TreeConfig{MaxDepth: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := tree.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalTree(b)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions and probabilities identical on every training row.
	for i, x := range d.X {
		if tree.Predict(x) != got.Predict(x) {
			t.Fatalf("row %d: prediction differs", i)
		}
		p1, p2 := tree.Proba(x), got.Proba(x)
		for c := range p1 {
			if p1[c] != p2[c] {
				t.Fatalf("row %d class %d: proba %v vs %v", i, c, p1, p2)
			}
		}
	}
	// Re-marshal is byte-identical (stable format).
	b2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("re-marshal differs")
	}
}

func TestForestSerializeRoundTrip(t *testing.T) {
	d := serializeDataset(300, 3)
	f, err := FitForest(d, 2, ForestConfig{Trees: 7, MaxDepth: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalForest(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTrees() != f.NumTrees() || got.NumClasses() != f.NumClasses() {
		t.Fatalf("shape differs: %d/%d vs %d/%d", got.NumTrees(), got.NumClasses(), f.NumTrees(), f.NumClasses())
	}
	for i, x := range d.X {
		p1, p2 := f.Proba(x), got.Proba(x)
		for c := range p1 {
			if p1[c] != p2[c] {
				t.Fatalf("row %d: proba differs", i)
			}
		}
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	d := serializeDataset(200, 5)
	tree, _ := FitTree(d, 2, TreeConfig{MaxDepth: 4, Seed: 6})
	good, _ := tree.MarshalBinary()

	cases := map[string][]byte{
		"nil":       nil,
		"short":     good[:8],
		"bad magic": append([]byte("XXXX"), good[4:]...),
		"truncated": good[:len(good)-10],
	}
	// Bit flip anywhere in the body must be caught by the CRC.
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	cases["bit flip"] = flipped

	for name, b := range cases {
		if _, err := UnmarshalTree(b); !errors.Is(err, ErrBadModel) {
			t.Errorf("%s: want ErrBadModel, got %v", name, err)
		}
	}

	f, _ := FitForest(d, 2, ForestConfig{Trees: 3, MaxDepth: 3, Seed: 7})
	fb, _ := f.MarshalBinary()
	fflip := append([]byte(nil), fb...)
	fflip[len(fflip)/3] ^= 0x01
	if _, err := UnmarshalForest(fflip); !errors.Is(err, ErrBadModel) {
		t.Errorf("forest bit flip: want ErrBadModel, got %v", err)
	}
	if _, err := UnmarshalForest(good); !errors.Is(err, ErrBadModel) {
		t.Error("forest unmarshal accepted tree bytes")
	}
}
