package ml

import "fmt"

// MergeForests builds a voted federated ensemble: the member trees of
// every input forest concatenated, in argument order, into one Forest
// whose Proba is the mean over all members. Each campus trains a forest
// on its own traffic; merging the forests pools their votes without ever
// pooling the raw features — the federated variant of the Figure-2 loop.
// All inputs must agree on class count. The result shares the input
// trees (no copy); inputs must not be mutated afterwards.
func MergeForests(forests ...*Forest) (*Forest, error) {
	if len(forests) == 0 {
		return nil, fmt.Errorf("ml: merge needs at least one forest")
	}
	total := 0
	for i, f := range forests {
		if f == nil || len(f.trees) == 0 {
			return nil, fmt.Errorf("ml: merge input %d is empty", i)
		}
		if f.classes != forests[0].classes {
			return nil, fmt.Errorf("ml: merge input %d has %d classes, input 0 has %d",
				i, f.classes, forests[0].classes)
		}
		total += len(f.trees)
	}
	merged := &Forest{trees: make([]*Tree, 0, total), classes: forests[0].classes}
	for _, f := range forests {
		merged.trees = append(merged.trees, f.trees...)
	}
	return merged, nil
}
