package capture

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"campuslab/internal/traffic"
)

func TestRingBasicFIFO(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		if !r.Push(Record{TS: time.Duration(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	var rec Record
	for i := 0; i < 5; i++ {
		if !r.Pop(&rec) {
			t.Fatalf("pop %d failed", i)
		}
		if rec.TS != time.Duration(i) {
			t.Fatalf("pop %d = %v, want %v", i, rec.TS, time.Duration(i))
		}
	}
	if r.Pop(&rec) {
		t.Error("pop from empty ring succeeded")
	}
}

func TestRingDropAccounting(t *testing.T) {
	r := NewRing(8)
	pushed, dropped := 0, 0
	for i := 0; i < 20; i++ {
		if r.Push(Record{}) {
			pushed++
		} else {
			dropped++
		}
	}
	if pushed != 8 || dropped != 12 {
		t.Errorf("pushed/dropped = %d/%d, want 8/12", pushed, dropped)
	}
	if r.Dropped() != 12 || r.Pushed() != 8 {
		t.Errorf("counters = %d/%d", r.Dropped(), r.Pushed())
	}
	// Drain one, push must succeed again.
	var rec Record
	r.Pop(&rec)
	if !r.Push(Record{}) {
		t.Error("push after drain failed")
	}
}

func TestRingCapacityRounding(t *testing.T) {
	if NewRing(5).Cap() != 8 || NewRing(8).Cap() != 8 || NewRing(9).Cap() != 16 || NewRing(0).Cap() != 8 {
		t.Error("capacity rounding wrong")
	}
}

func TestRingSPSCConcurrent(t *testing.T) {
	r := NewRing(1024)
	const n = 200000
	var got uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var rec Record
		var next time.Duration
		for int(got)+int(r.Dropped()) < n || r.Len() > 0 {
			if r.Pop(&rec) {
				// FIFO within delivered subsequence: timestamps increase.
				if rec.TS < next {
					t.Errorf("out of order: %v < %v", rec.TS, next)
					return
				}
				next = rec.TS
				got++
			}
		}
	}()
	for i := 0; i < n; i++ {
		r.Push(Record{TS: time.Duration(i)})
	}
	wg.Wait()
	if got+r.Dropped() != n {
		t.Errorf("accounting broken: delivered %d + dropped %d != %d", got, r.Dropped(), n)
	}
}

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{TS: 1500 * time.Millisecond, Data: []byte("frame-one")},
		{TS: 2 * time.Second, Data: bytes.Repeat([]byte{0xab}, 1500)},
		{TS: 2*time.Second + 17*time.Nanosecond, Data: []byte{}},
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Written() != 3 {
		t.Errorf("Written = %d", w.Written())
	}
	r, err := NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		var rec Record
		if err := r.Next(&rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.TS != recs[i].TS {
			t.Errorf("record %d TS = %v, want %v", i, rec.TS, recs[i].TS)
		}
		if !bytes.Equal(rec.Data, recs[i].Data) {
			t.Errorf("record %d data mismatch", i)
		}
	}
	var rec Record
	if err := r.Next(&rec); !errors.Is(err, io.EOF) {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestPcapSnaplen(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf, 100)
	rec := Record{TS: time.Second, Data: bytes.Repeat([]byte{1}, 500)}
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r, _ := NewPcapReader(&buf)
	var got Record
	if err := r.Next(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != 100 {
		t.Errorf("snapped len = %d, want 100", len(got.Data))
	}
}

func TestPcapRejectsGarbage(t *testing.T) {
	if _, err := NewPcapReader(bytes.NewReader(make([]byte, 24))); !errors.Is(err, ErrBadPcap) {
		t.Errorf("want ErrBadPcap, got %v", err)
	}
	if _, err := NewPcapReader(bytes.NewReader([]byte("short"))); !errors.Is(err, ErrBadPcap) {
		t.Errorf("want ErrBadPcap, got %v", err)
	}
}

func TestPcapPropertyRoundTrip(t *testing.T) {
	fn := func(payloads [][]byte, tsNanos []uint32) bool {
		var buf bytes.Buffer
		w, _ := NewPcapWriter(&buf, 0)
		n := len(payloads)
		if len(tsNanos) < n {
			n = len(tsNanos)
		}
		for i := 0; i < n; i++ {
			rec := Record{TS: time.Duration(tsNanos[i]), Data: payloads[i]}
			if err := w.Write(&rec); err != nil {
				return false
			}
		}
		w.Flush()
		r, err := NewPcapReader(&buf)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			var rec Record
			if err := r.Next(&rec); err != nil {
				return false
			}
			if rec.TS != time.Duration(tsNanos[i]) || !bytes.Equal(rec.Data, payloads[i]) {
				return false
			}
		}
		var rec Record
		return errors.Is(r.Next(&rec), io.EOF)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEngineLosslessContract(t *testing.T) {
	sink := &CountingSink{}
	e, err := NewEngine(EngineConfig{Taps: 4, RingSize: 1024, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	e.Start(context.Background())
	const perTap = 50000
	var wg sync.WaitGroup
	for tap := 0; tap < 4; tap++ {
		wg.Add(1)
		go func(tap int) {
			defer wg.Done()
			data := make([]byte, 200)
			for i := 0; i < perTap; i++ {
				e.Inject(tap, time.Duration(i), data)
			}
		}(tap)
	}
	wg.Wait()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Injected+st.Dropped != 4*perTap {
		t.Errorf("offered accounting: %d + %d != %d", st.Injected, st.Dropped, 4*perTap)
	}
	if st.Delivered != st.Injected {
		t.Errorf("delivered %d != injected %d (lost in flight)", st.Delivered, st.Injected)
	}
	if sink.Records.Load() != st.Delivered {
		t.Errorf("sink records %d != delivered %d", sink.Records.Load(), st.Delivered)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	if _, err := NewEngine(EngineConfig{Taps: 0, Sink: &CountingSink{}}); err == nil {
		t.Error("accepted zero taps")
	}
	if _, err := NewEngine(EngineConfig{Taps: 1}); err == nil {
		t.Error("accepted nil sink")
	}
}

func TestEngineSinkErrorPropagates(t *testing.T) {
	boom := errors.New("disk full")
	e, _ := NewEngine(EngineConfig{Taps: 1, RingSize: 64, Sink: SinkFunc(func(*Record) error { return boom })})
	e.Start(context.Background())
	e.Inject(0, 0, []byte("x"))
	time.Sleep(10 * time.Millisecond)
	if err := e.Stop(); !errors.Is(err, boom) {
		t.Errorf("want sink error, got %v", err)
	}
}

func TestLoadModelLosslessUnderCapacity(t *testing.T) {
	// 10 Gbps of 1000B frames = 1.25 Mpps; 120ns/pkt consumer handles
	// ~8.3 Mpps — easily lossless.
	gen := NewConstantRate(10, 1000, 10*time.Millisecond)
	res, err := RunLoadModel(gen, LoadModelConfig{RingSize: 4096, ServicePerPacket: 120 * time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Errorf("dropped %d packets under capacity", res.Dropped)
	}
	if res.OfferedGbps < 9 || res.OfferedGbps > 11 {
		t.Errorf("OfferedGbps = %v, want ~10", res.OfferedGbps)
	}
}

func TestLoadModelDropsOverCapacity(t *testing.T) {
	// 100 Gbps of 500B frames = 25 Mpps against an ~8.3 Mpps consumer:
	// heavy loss is inevitable.
	gen := NewConstantRate(100, 500, 5*time.Millisecond)
	res, err := RunLoadModel(gen, LoadModelConfig{RingSize: 4096, ServicePerPacket: 120 * time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.LossRate() < 0.5 {
		t.Errorf("loss rate %v, want heavy loss", res.LossRate())
	}
	if res.Captured+res.Dropped != res.Offered {
		t.Error("offered accounting broken")
	}
}

func TestLoadModelMoreConsumersHelp(t *testing.T) {
	run := func(consumers int) float64 {
		gen := NewConstantRate(40, 500, 5*time.Millisecond)
		res, err := RunLoadModel(gen, LoadModelConfig{
			RingSize: 2048, ServicePerPacket: 120 * time.Nanosecond, Consumers: consumers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.LossRate()
	}
	if one, four := run(1), run(4); four >= one {
		t.Errorf("4 consumers (loss %v) not better than 1 (loss %v)", four, one)
	}
}

func TestLoadModelBiggerRingAbsorbsBursts(t *testing.T) {
	// Bursty campus traffic at moderate load: a larger ring should lose
	// no more than a smaller one.
	loss := func(ring int) float64 {
		gen := traffic.NewCampus(traffic.Profile{FlowsPerSecond: 3000, Duration: 2 * time.Second, Seed: 11})
		res, err := RunLoadModel(gen, LoadModelConfig{RingSize: ring, ServicePerPacket: 15 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		return res.LossRate()
	}
	small, big := loss(64), loss(8192)
	if big > small {
		t.Errorf("bigger ring lost more: %v > %v", big, small)
	}
}

func TestLoadModelValidation(t *testing.T) {
	gen := NewConstantRate(1, 1000, time.Millisecond)
	if _, err := RunLoadModel(gen, LoadModelConfig{RingSize: 0, ServicePerPacket: time.Nanosecond}); err == nil {
		t.Error("accepted zero ring")
	}
	if _, err := RunLoadModel(gen, LoadModelConfig{RingSize: 16}); err == nil {
		t.Error("accepted zero service cost")
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter(0.5)
	// 1000-byte packets every millisecond => 1000 pps, 8 Mbit/s.
	for i := 1; i <= 100; i++ {
		m.Observe(time.Duration(i)*time.Millisecond, 1000)
	}
	pps, bps := m.Rates()
	if pps < 900 || pps > 1100 {
		t.Errorf("pps = %v, want ~1000", pps)
	}
	if bps < 7e6 || bps > 9e6 {
		t.Errorf("bps = %v, want ~8M", bps)
	}
	pkts, bytes := m.Totals()
	if pkts != 100 || bytes != 100_000 {
		t.Errorf("totals = %d/%d", pkts, bytes)
	}
}

func BenchmarkRingPushPop(b *testing.B) {
	r := NewRing(4096)
	var rec Record
	data := make([]byte, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Push(Record{TS: time.Duration(i), Data: data})
		r.Pop(&rec)
	}
}

func BenchmarkPcapWrite(b *testing.B) {
	w, _ := NewPcapWriter(io.Discard, 0)
	rec := Record{TS: time.Second, Data: make([]byte, 800)}
	b.ReportAllocs()
	b.SetBytes(800)
	for i := 0; i < b.N; i++ {
		if err := w.Write(&rec); err != nil {
			b.Fatal(err)
		}
	}
}
