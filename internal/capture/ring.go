// Package capture implements the campus monitoring substrate the paper
// assumes (§5: "enterprise-wide, continuous, lossless, full packet capture
// at scale"): single-producer/single-consumer ring buffers with precise
// drop accounting, a multi-tap capture engine, pcap persistence, and a
// queueing model used to sweep offered load against capture capacity.
//
// The contract mirrors the commercial appliance the paper cites: every
// packet is either captured or counted as a drop — silent loss is a bug.
package capture

import (
	"sync/atomic"
	"time"
)

// Record is one captured packet: wire bytes plus capture timestamp and the
// tap (link) it was seen on.
type Record struct {
	TS   time.Duration // scenario-relative capture time
	Link uint16        // tap identifier
	Data []byte
}

// Ring is a bounded single-producer/single-consumer queue of Records.
// Push never blocks: when the ring is full the record is dropped and
// counted. This is the classic NIC-ring discipline — loss happens at a
// known, measured point instead of silently downstream.
type Ring struct {
	mask    uint64
	_       [48]byte      // keep head/tail on separate cache lines
	head    atomic.Uint64 // next slot to read (consumer-owned)
	_       [56]byte
	tail    atomic.Uint64 // next slot to write (producer-owned)
	_       [56]byte
	dropped atomic.Uint64
	pushed  atomic.Uint64
	slots   []Record
}

// NewRing returns a ring with capacity rounded up to a power of two
// (minimum 8).
func NewRing(capacity int) *Ring {
	n := 8
	for n < capacity {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]Record, n)}
}

// Cap returns the ring capacity in records.
func (r *Ring) Cap() int { return len(r.slots) }

// Push attempts to enqueue rec, returning false (and counting a drop) when
// the ring is full. Producer-side only.
func (r *Ring) Push(rec Record) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.slots)) {
		r.dropped.Add(1)
		return false
	}
	r.slots[tail&r.mask] = rec
	r.tail.Store(tail + 1)
	r.pushed.Add(1)
	return true
}

// Pop dequeues the oldest record, reporting false when the ring is empty.
// Consumer-side only.
func (r *Ring) Pop(rec *Record) bool {
	head := r.head.Load()
	if head == r.tail.Load() {
		return false
	}
	*rec = r.slots[head&r.mask]
	r.slots[head&r.mask] = Record{} // release the payload reference
	r.head.Store(head + 1)
	return true
}

// Len returns the current queue depth (approximate under concurrency).
func (r *Ring) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Dropped returns the number of records lost to a full ring.
func (r *Ring) Dropped() uint64 { return r.dropped.Load() }

// Pushed returns the number of records successfully enqueued.
func (r *Ring) Pushed() uint64 { return r.pushed.Load() }
