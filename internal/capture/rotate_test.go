package capture

import (
	"io"
	"os"
	"testing"
	"time"
)

func TestRotatingWriterBySize(t *testing.T) {
	dir := t.TempDir()
	w, err := NewRotatingWriter(RotateConfig{Dir: dir, Prefix: "seg", MaxBytes: 10_000, Keep: 100})
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Data: make([]byte, 1000)}
	for i := 0; i < 50; i++ {
		rec.TS = time.Duration(i) * time.Millisecond
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := w.Segments()
	if err != nil {
		t.Fatal(err)
	}
	// 50 KB at ~10 KB per segment => ~5 segments.
	if len(segs) < 4 || len(segs) > 7 {
		t.Errorf("segments = %d, want ~5", len(segs))
	}
	// Every segment must be a valid pcap; records must total 50.
	total := 0
	for _, seg := range segs {
		f, err := os.Open(seg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewPcapReader(f)
		if err != nil {
			t.Fatalf("segment %s: %v", seg, err)
		}
		var rr Record
		for {
			if err := r.Next(&rr); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("segment %s: %v", seg, err)
			}
			total++
		}
		f.Close()
	}
	if total != 50 {
		t.Errorf("recovered %d records, want 50", total)
	}
	if recs, rots := w.Stats(); recs != 50 || rots != len(segs) {
		t.Errorf("stats = %d/%d", recs, rots)
	}
}

func TestRotatingWriterByTimeSpan(t *testing.T) {
	dir := t.TempDir()
	w, err := NewRotatingWriter(RotateConfig{Dir: dir, MaxSpan: time.Second, Keep: 100})
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Data: make([]byte, 100)}
	// 5 scenario-seconds of records at 10 per second.
	for i := 0; i < 50; i++ {
		rec.TS = time.Duration(i) * 100 * time.Millisecond
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, _ := w.Segments()
	if len(segs) != 5 {
		t.Errorf("segments = %d, want 5 (1s spans)", len(segs))
	}
}

func TestRotatingWriterRetention(t *testing.T) {
	dir := t.TempDir()
	w, err := NewRotatingWriter(RotateConfig{Dir: dir, MaxBytes: 2_000, Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Data: make([]byte, 1000)}
	for i := 0; i < 30; i++ {
		rec.TS = time.Duration(i)
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, _ := w.Segments()
	if len(segs) != 3 {
		t.Errorf("retained %d segments, want 3", len(segs))
	}
	// Retained segments are the newest ones (highest sequence numbers).
	if segs[len(segs)-1] < segs[0] {
		t.Error("segments not sorted")
	}
}

func TestRotatingWriterValidation(t *testing.T) {
	if _, err := NewRotatingWriter(RotateConfig{}); err == nil {
		t.Error("accepted empty dir")
	}
	if _, err := NewRotatingWriter(RotateConfig{Dir: "/nonexistent-dir-xyz"}); err == nil {
		t.Error("accepted missing dir")
	}
}
