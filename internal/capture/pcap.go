package capture

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// pcap file constants (nanosecond-resolution variant).
const (
	pcapMagicNanos = 0xa1b23c4d
	pcapMagicMicro = 0xa1b2c3d4
	pcapVersionMaj = 2
	pcapVersionMin = 4
	linkTypeEther  = 1
)

// ErrBadPcap reports a malformed pcap stream.
var ErrBadPcap = errors.New("capture: malformed pcap")

// PcapWriter streams Records into the classic libpcap file format
// (nanosecond timestamps, Ethernet link type), so captures interoperate
// with standard tooling.
type PcapWriter struct {
	w       *bufio.Writer
	snaplen uint32
	written uint64
	hdr     [16]byte
}

// NewPcapWriter writes a pcap global header to w and returns the writer.
// snaplen 0 means "no snapping" (65535).
func NewPcapWriter(w io.Writer, snaplen int) (*PcapWriter, error) {
	if snaplen <= 0 || snaplen > 65535 {
		snaplen = 65535
	}
	pw := &PcapWriter{w: bufio.NewWriterSize(w, 1<<16), snaplen: uint32(snaplen)}
	var gh [24]byte
	binary.LittleEndian.PutUint32(gh[0:4], pcapMagicNanos)
	binary.LittleEndian.PutUint16(gh[4:6], pcapVersionMaj)
	binary.LittleEndian.PutUint16(gh[6:8], pcapVersionMin)
	binary.LittleEndian.PutUint32(gh[16:20], pw.snaplen)
	binary.LittleEndian.PutUint32(gh[20:24], linkTypeEther)
	if _, err := pw.w.Write(gh[:]); err != nil {
		return nil, fmt.Errorf("capture: writing pcap header: %w", err)
	}
	return pw, nil
}

// Write appends one record. Frames longer than snaplen are snapped; the
// original length is preserved in the per-packet header.
func (pw *PcapWriter) Write(rec *Record) error {
	capLen := uint32(len(rec.Data))
	if capLen > pw.snaplen {
		capLen = pw.snaplen
	}
	sec := uint32(rec.TS / time.Second)
	nsec := uint32(rec.TS % time.Second)
	binary.LittleEndian.PutUint32(pw.hdr[0:4], sec)
	binary.LittleEndian.PutUint32(pw.hdr[4:8], nsec)
	binary.LittleEndian.PutUint32(pw.hdr[8:12], capLen)
	binary.LittleEndian.PutUint32(pw.hdr[12:16], uint32(len(rec.Data)))
	if _, err := pw.w.Write(pw.hdr[:]); err != nil {
		return err
	}
	if _, err := pw.w.Write(rec.Data[:capLen]); err != nil {
		return err
	}
	pw.written++
	return nil
}

// Written returns the number of records written so far.
func (pw *PcapWriter) Written() uint64 { return pw.written }

// Flush drains buffered bytes to the underlying writer.
func (pw *PcapWriter) Flush() error { return pw.w.Flush() }

// PcapReader reads records back from a pcap stream written by PcapWriter
// (it also accepts microsecond-resolution files).
type PcapReader struct {
	r     *bufio.Reader
	nanos bool
	snap  uint32
}

// NewPcapReader validates the global header and returns a reader.
func NewPcapReader(r io.Reader) (*PcapReader, error) {
	pr := &PcapReader{r: bufio.NewReaderSize(r, 1<<16)}
	var gh [24]byte
	if _, err := io.ReadFull(pr.r, gh[:]); err != nil {
		return nil, fmt.Errorf("%w: global header: %v", ErrBadPcap, err)
	}
	switch binary.LittleEndian.Uint32(gh[0:4]) {
	case pcapMagicNanos:
		pr.nanos = true
	case pcapMagicMicro:
		pr.nanos = false
	default:
		return nil, fmt.Errorf("%w: magic %#x", ErrBadPcap, binary.LittleEndian.Uint32(gh[0:4]))
	}
	if lt := binary.LittleEndian.Uint32(gh[20:24]); lt != linkTypeEther {
		return nil, fmt.Errorf("%w: link type %d", ErrBadPcap, lt)
	}
	pr.snap = binary.LittleEndian.Uint32(gh[16:20])
	return pr, nil
}

// Next reads the next record, allocating its Data. io.EOF marks a clean
// end of stream.
func (pr *PcapReader) Next(rec *Record) error {
	var hdr [16]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("%w: record header: %v", ErrBadPcap, err)
	}
	sec := binary.LittleEndian.Uint32(hdr[0:4])
	sub := binary.LittleEndian.Uint32(hdr[4:8])
	capLen := binary.LittleEndian.Uint32(hdr[8:12])
	if capLen > pr.snap && pr.snap > 0 {
		return fmt.Errorf("%w: caplen %d > snaplen %d", ErrBadPcap, capLen, pr.snap)
	}
	if pr.nanos {
		rec.TS = time.Duration(sec)*time.Second + time.Duration(sub)
	} else {
		rec.TS = time.Duration(sec)*time.Second + time.Duration(sub)*time.Microsecond
	}
	rec.Data = make([]byte, capLen)
	if _, err := io.ReadFull(pr.r, rec.Data); err != nil {
		return fmt.Errorf("%w: record body: %v", ErrBadPcap, err)
	}
	return nil
}
