package capture

import (
	"fmt"
	"time"

	"campuslab/internal/traffic"
)

// LoadModelConfig drives a virtual-time capture-capacity experiment: frames
// from a generator arrive at their scenario timestamps while a consumer
// with fixed per-packet service cost drains the ring. This is how E3 sweeps
// offered load (10/20/40/100 Gbps) against appliance capacity without
// needing the wall clock to cooperate.
type LoadModelConfig struct {
	// RingSize is the capture ring capacity in packets.
	RingSize int
	// ServicePerPacket is the fixed cost to process one packet
	// (decode + anonymize + index). 120ns ≈ an 8-10 Mpps appliance core.
	ServicePerPacket time.Duration
	// ServicePerKB adds a throughput-proportional cost (memory/IO) per
	// 1024 bytes of frame.
	ServicePerKB time.Duration
	// Consumers models parallel capture cores sharing the ring.
	Consumers int
}

// LoadModelResult reports the outcome of a virtual-time run.
type LoadModelResult struct {
	Offered     uint64  // packets offered
	Captured    uint64  // packets that made it through the ring
	Dropped     uint64  // packets lost to ring overflow
	OfferedGbps float64 // average offered rate over the run
	MaxDepth    int     // high-water ring occupancy
}

// LossRate returns the packet loss fraction.
func (r LoadModelResult) LossRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(r.Offered)
}

// RunLoadModel consumes gen to exhaustion under the configured capacity
// model. It is deterministic: the same generator seed yields the same
// result.
func RunLoadModel(gen traffic.Generator, cfg LoadModelConfig) (LoadModelResult, error) {
	if cfg.RingSize <= 0 {
		return LoadModelResult{}, fmt.Errorf("capture: RingSize must be positive")
	}
	if cfg.Consumers <= 0 {
		cfg.Consumers = 1
	}
	if cfg.ServicePerPacket <= 0 && cfg.ServicePerKB <= 0 {
		return LoadModelResult{}, fmt.Errorf("capture: service cost must be positive")
	}

	var res LoadModelResult
	var bytes uint64
	// freeAt[i] is when consumer i finishes its current packet.
	freeAt := make([]time.Duration, cfg.Consumers)
	// queue models ring occupancy: departure times of queued packets.
	type qpkt struct{ depart time.Duration }
	queue := make([]qpkt, 0, cfg.RingSize)
	var lastTS time.Duration

	var f traffic.Frame
	for gen.Next(&f) {
		now := f.TS
		lastTS = now
		// Retire packets whose service completed by now.
		keep := queue[:0]
		for _, q := range queue {
			if q.depart > now {
				keep = append(keep, q)
			}
		}
		queue = keep

		res.Offered++
		bytes += uint64(len(f.Data))
		if len(queue) >= cfg.RingSize {
			res.Dropped++
			continue
		}
		// Assign to the earliest-free consumer.
		best := 0
		for i := 1; i < cfg.Consumers; i++ {
			if freeAt[i] < freeAt[best] {
				best = i
			}
		}
		start := now
		if freeAt[best] > start {
			start = freeAt[best]
		}
		cost := cfg.ServicePerPacket + time.Duration(len(f.Data))*cfg.ServicePerKB/1024
		depart := start + cost
		freeAt[best] = depart
		queue = append(queue, qpkt{depart: depart})
		res.Captured++
		if len(queue) > res.MaxDepth {
			res.MaxDepth = len(queue)
		}
	}
	if lastTS > 0 {
		res.OfferedGbps = float64(bytes*8) / lastTS.Seconds() / 1e9
	}
	return res, nil
}

// ConstantRateGenerator emits fixed-size frames at a constant bit rate —
// the synthetic line-rate source for capacity sweeps where the shape of
// real traffic would confound the measurement.
type ConstantRateGenerator struct {
	frame    []byte
	interval time.Duration
	n        int
	emitted  int
	at       time.Duration
}

// NewConstantRate builds a generator that offers gbps of frameSize-byte
// packets for the given duration.
func NewConstantRate(gbps float64, frameSize int, duration time.Duration) *ConstantRateGenerator {
	if frameSize < 64 {
		frameSize = 64
	}
	pps := gbps * 1e9 / 8 / float64(frameSize)
	interval := time.Duration(float64(time.Second) / pps)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	return &ConstantRateGenerator{
		frame:    make([]byte, frameSize),
		interval: interval,
		n:        int(duration / interval),
	}
}

// Next implements traffic.Generator.
func (g *ConstantRateGenerator) Next(f *traffic.Frame) bool {
	if g.emitted >= g.n {
		return false
	}
	g.emitted++
	g.at += g.interval
	f.TS = g.at
	f.Data = g.frame // shared: capacity model never mutates frames
	f.Dir = traffic.DirInbound
	f.Label = traffic.LabelBenign
	f.FlowID = uint64(g.emitted)
	return true
}

// Meter tracks exponentially weighted packet and bit rates, the live
// counters a capture appliance exports.
type Meter struct {
	alpha      float64
	lastTS     time.Duration
	pps, bps   float64
	count      uint64
	totalBytes uint64
}

// NewMeter returns a meter with the given smoothing factor (0<alpha<=1).
func NewMeter(alpha float64) *Meter {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.1
	}
	return &Meter{alpha: alpha}
}

// Observe folds one packet at ts into the rates.
func (m *Meter) Observe(ts time.Duration, bytes int) {
	m.count++
	m.totalBytes += uint64(bytes)
	if m.lastTS == 0 {
		m.lastTS = ts
		return
	}
	dt := (ts - m.lastTS).Seconds()
	if dt <= 0 {
		return
	}
	instPPS := 1 / dt
	instBPS := float64(bytes*8) / dt
	m.pps = m.alpha*instPPS + (1-m.alpha)*m.pps
	m.bps = m.alpha*instBPS + (1-m.alpha)*m.bps
	m.lastTS = ts
}

// Rates returns the smoothed packets/s and bits/s.
func (m *Meter) Rates() (pps, bps float64) { return m.pps, m.bps }

// Totals returns cumulative packet and byte counts.
func (m *Meter) Totals() (packets, bytes uint64) { return m.count, m.totalBytes }
