package capture

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// RotatingWriter implements continuous capture with bounded retention: it
// writes pcap segments, starting a new one when the current segment
// exceeds the size or time bound, and deletes the oldest segments beyond
// the retention count — the disk-side half of §5's "data storage
// requirements of the order of a week".
type RotatingWriter struct {
	dir          string
	prefix       string
	maxBytes     int64
	maxSpan      time.Duration
	keep         int
	snaplen      int
	seq          int
	cur          *os.File
	curWriter    *PcapWriter
	curBytes     int64
	curStart     time.Duration
	curHasStart  bool
	totalWritten uint64
	rotations    int
}

// RotateConfig configures a RotatingWriter.
type RotateConfig struct {
	// Dir receives the segment files.
	Dir string
	// Prefix names segments: <prefix>-<seq>.pcap.
	Prefix string
	// MaxBytes bounds a segment's payload size (default 64 MiB).
	MaxBytes int64
	// MaxSpan bounds a segment's capture time span (default 1h of
	// scenario time).
	MaxSpan time.Duration
	// Keep is how many segments to retain (default 8; older are deleted).
	Keep int
	// Snaplen as in NewPcapWriter.
	Snaplen int
}

// NewRotatingWriter validates cfg and opens the first segment lazily.
func NewRotatingWriter(cfg RotateConfig) (*RotatingWriter, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("capture: rotate: Dir is required")
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "capture"
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 64 << 20
	}
	if cfg.MaxSpan <= 0 {
		cfg.MaxSpan = time.Hour
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 8
	}
	if st, err := os.Stat(cfg.Dir); err != nil || !st.IsDir() {
		return nil, fmt.Errorf("capture: rotate: %q is not a directory", cfg.Dir)
	}
	return &RotatingWriter{
		dir: cfg.Dir, prefix: cfg.Prefix,
		maxBytes: cfg.MaxBytes, maxSpan: cfg.MaxSpan,
		keep: cfg.Keep, snaplen: cfg.Snaplen,
	}, nil
}

// Write appends a record, rotating first if the current segment is full.
func (w *RotatingWriter) Write(rec *Record) error {
	needRotate := w.cur == nil ||
		w.curBytes >= w.maxBytes ||
		(w.curHasStart && rec.TS-w.curStart >= w.maxSpan)
	if needRotate {
		if err := w.rotate(); err != nil {
			return err
		}
		w.curStart, w.curHasStart = rec.TS, true
	}
	if err := w.curWriter.Write(rec); err != nil {
		return err
	}
	w.curBytes += int64(len(rec.Data)) + 16
	w.totalWritten++
	return nil
}

// rotate closes the current segment, opens the next, and enforces Keep.
func (w *RotatingWriter) rotate() error {
	if err := w.closeCurrent(); err != nil {
		return err
	}
	w.seq++
	w.rotations++
	path := w.segmentPath(w.seq)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("capture: rotate: %w", err)
	}
	pw, err := NewPcapWriter(f, w.snaplen)
	if err != nil {
		f.Close()
		return err
	}
	w.cur, w.curWriter, w.curBytes = f, pw, 0
	w.curHasStart = false
	// Enforce retention.
	if old := w.seq - w.keep; old >= 1 {
		os.Remove(w.segmentPath(old))
	}
	return nil
}

func (w *RotatingWriter) segmentPath(seq int) string {
	return filepath.Join(w.dir, fmt.Sprintf("%s-%06d.pcap", w.prefix, seq))
}

func (w *RotatingWriter) closeCurrent() error {
	if w.cur == nil {
		return nil
	}
	if err := w.curWriter.Flush(); err != nil {
		w.cur.Close()
		return err
	}
	err := w.cur.Close()
	w.cur, w.curWriter = nil, nil
	return err
}

// Close flushes and closes the active segment.
func (w *RotatingWriter) Close() error { return w.closeCurrent() }

// Segments lists retained segment paths, oldest first.
func (w *RotatingWriter) Segments() ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(w.dir, w.prefix+"-*.pcap"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	return matches, nil
}

// Stats reports total records written and rotations performed.
func (w *RotatingWriter) Stats() (records uint64, rotations int) {
	return w.totalWritten, w.rotations
}
