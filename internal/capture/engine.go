package capture

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Sink consumes captured records. Implementations must be safe for
// concurrent use if the engine runs more than one consumer.
type Sink interface {
	// Consume takes ownership of rec.Data.
	Consume(rec *Record) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(rec *Record) error

// Consume implements Sink.
func (f SinkFunc) Consume(rec *Record) error { return f(rec) }

// CountingSink is a Sink that only tallies records and bytes; useful as a
// measurement endpoint.
type CountingSink struct {
	Records atomic.Uint64
	Bytes   atomic.Uint64
}

// Consume implements Sink.
func (c *CountingSink) Consume(rec *Record) error {
	c.Records.Add(1)
	c.Bytes.Add(uint64(len(rec.Data)))
	return nil
}

// EngineConfig configures a capture engine.
type EngineConfig struct {
	// Taps is the number of independent capture points (border links,
	// distribution links). Each gets its own ring and consumer.
	Taps int
	// RingSize is the per-tap ring capacity in packets.
	RingSize int
	// Sink receives all captured records.
	Sink Sink
}

// Engine is the multi-tap capture pipeline: producers call Inject (one
// goroutine per tap), per-tap consumer goroutines drain rings into the
// sink. Every packet injected is either delivered to the sink or counted
// as a ring drop — the lossless-capture contract made checkable.
type Engine struct {
	cfg       EngineConfig
	rings     []*Ring
	wg        sync.WaitGroup
	cancel    context.CancelFunc
	sinkErr   atomic.Value // error
	started   bool
	delivered atomic.Uint64
}

// NewEngine validates cfg and builds the engine.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Taps <= 0 {
		return nil, fmt.Errorf("capture: Taps must be positive, got %d", cfg.Taps)
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 4096
	}
	if cfg.Sink == nil {
		return nil, fmt.Errorf("capture: Sink is required")
	}
	e := &Engine{cfg: cfg, rings: make([]*Ring, cfg.Taps)}
	for i := range e.rings {
		e.rings[i] = NewRing(cfg.RingSize)
	}
	return e, nil
}

// Start launches one consumer goroutine per tap.
func (e *Engine) Start(ctx context.Context) {
	ctx, e.cancel = context.WithCancel(ctx)
	e.started = true
	for _, ring := range e.rings {
		e.wg.Add(1)
		go e.consume(ctx, ring)
	}
}

func (e *Engine) consume(ctx context.Context, ring *Ring) {
	defer e.wg.Done()
	var rec Record
	idle := 0
	for {
		if ring.Pop(&rec) {
			idle = 0
			if err := e.cfg.Sink.Consume(&rec); err != nil {
				e.sinkErr.Store(err)
				return
			}
			e.delivered.Add(1)
			continue
		}
		select {
		case <-ctx.Done():
			// Drain what is left, then exit.
			for ring.Pop(&rec) {
				if err := e.cfg.Sink.Consume(&rec); err != nil {
					e.sinkErr.Store(err)
					return
				}
				e.delivered.Add(1)
			}
			return
		default:
		}
		if idle++; idle > 64 {
			time.Sleep(20 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
}

// Inject offers a frame to tap's ring, returning false if it was dropped.
// Each tap must be fed from a single goroutine (the SPSC contract).
func (e *Engine) Inject(tap int, ts time.Duration, data []byte) bool {
	return e.rings[tap].Push(Record{TS: ts, Link: uint16(tap), Data: data})
}

// Stop terminates consumers after draining and returns any sink error.
func (e *Engine) Stop() error {
	if e.started {
		e.cancel()
		e.wg.Wait()
	}
	if v := e.sinkErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Stats summarizes engine-wide accounting.
type Stats struct {
	Injected  uint64 // successfully ring-buffered
	Dropped   uint64 // lost to full rings
	Delivered uint64 // handed to the sink
}

// LossRate returns dropped / offered.
func (s Stats) LossRate() float64 {
	offered := s.Injected + s.Dropped
	if offered == 0 {
		return 0
	}
	return float64(s.Dropped) / float64(offered)
}

// Stats aggregates per-ring counters.
func (e *Engine) Stats() Stats {
	var s Stats
	for _, r := range e.rings {
		s.Injected += r.Pushed()
		s.Dropped += r.Dropped()
	}
	s.Delivered = e.delivered.Load()
	return s
}
