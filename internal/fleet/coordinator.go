package fleet

import (
	"fmt"

	"campuslab/internal/datastore"
	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/obs"
	"campuslab/internal/traffic"
)

var (
	obsCoordRounds   = obs.Default.Counter("campuslab_fleet_coordinator_rounds_total")
	obsCoordCampuses = obs.Default.Gauge("campuslab_fleet_coordinator_campuses")
)

// Campus is one fleet member as the coordinator sees it: a name and the
// packet store its taps (local or streamed over the ingest protocol)
// have filled.
type Campus struct {
	Name  string
	Store *datastore.Store
	// Features overrides the standard packet featurizer when non-nil
	// (tests inject canned datasets; Store may then be nil).
	Features func() *features.Dataset
}

// CoordinatorConfig parameterizes one federated development round.
type CoordinatorConfig struct {
	// Target is the attack class the round trains detectors for.
	Target traffic.Label
	// ForestTrees/ForestDepth shape each campus's forest (defaults 12/8).
	ForestTrees int
	ForestDepth int
	// Seed drives shuffling and tree induction; campus i shuffles with
	// Seed+i so campuses stay decorrelated but the round is reproducible.
	Seed int64
	// Workers bounds tree-induction and evaluation parallelism (0 =
	// GOMAXPROCS); results are worker-count independent.
	Workers int
	// TrainFrac is each campus's train split (default 0.7).
	TrainFrac float64
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.ForestTrees <= 0 {
		c.ForestTrees = 12
	}
	if c.ForestDepth <= 0 {
		c.ForestDepth = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TrainFrac <= 0 || c.TrainFrac >= 1 {
		c.TrainFrac = 0.7
	}
	return c
}

// FederatedResult is one coordinator round's output. All matrices are
// indexed [trainCampus][testCampus] in the caller's campus order; the
// Log is transition-ordered and contains no wall-clock content, so a
// round is byte-comparable across runs, fleet sizes, and transports.
type FederatedResult struct {
	Campuses []string
	// Recall[i][j] is campus i's forest recall on campus j's held-out
	// test traffic — the train-here/test-there generalization matrix.
	Recall   [][]float64
	Accuracy [][]float64
	// FederatedRecall[j] is the merged (vote-pooled) ensemble's recall
	// on campus j's test set; PooledRecall[j] is the pooled-feature
	// variant (one forest trained on the concatenated train splits).
	FederatedRecall   []float64
	FederatedAccuracy []float64
	PooledRecall      []float64
	PooledAccuracy    []float64
	// Merged is the federated ensemble; MergedBytes its canonical
	// serialized form (the determinism fingerprint input).
	Merged      *ml.Forest
	MergedBytes []byte
	Pooled      *ml.Forest
	// Log records the round's state transitions in execution order.
	Log []string
}

// RunFederated executes one Figure-2 development round across the fleet:
// per-campus featurize → split → fit, then an all-pairs road-test matrix
// plus two sharing strategies — vote pooling (merge the forests) and
// feature pooling (concatenate the train splits). Deterministic for a
// fixed campus list and config at any worker count.
func RunFederated(campuses []Campus, cfg CoordinatorConfig) (*FederatedResult, error) {
	if len(campuses) == 0 {
		return nil, fmt.Errorf("fleet: coordinator needs at least one campus")
	}
	cfg = cfg.withDefaults()
	obsCoordRounds.Inc()
	obsCoordCampuses.Set(float64(len(campuses)))

	res := &FederatedResult{Campuses: make([]string, len(campuses))}
	logf := func(format string, args ...any) {
		res.Log = append(res.Log, fmt.Sprintf(format, args...))
	}
	logf("round start: %d campuses, target=%d, trees=%d, depth=%d",
		len(campuses), cfg.Target, cfg.ForestTrees, cfg.ForestDepth)

	forests := make([]*ml.Forest, len(campuses))
	tests := make([]*features.Dataset, len(campuses))
	pooledTrain := &features.Dataset{}
	for i, campus := range campuses {
		res.Campuses[i] = campus.Name
		var ds *features.Dataset
		if campus.Features != nil {
			ds = campus.Features()
		} else {
			if campus.Store == nil {
				return nil, fmt.Errorf("fleet: campus %q has no store", campus.Name)
			}
			ds = features.FromPackets(campus.Store, 1).BinaryRelabel(cfg.Target)
		}
		if ds.Len() < 10 {
			return nil, fmt.Errorf("fleet: campus %q has %d examples (need >=10)", campus.Name, ds.Len())
		}
		ds.Shuffle(cfg.Seed + int64(i))
		train, test := ds.Split(cfg.TrainFrac)
		counts := train.ClassCounts()
		logf("campus %s: %d examples (%d train / %d test, %d positive train)",
			campus.Name, ds.Len(), train.Len(), test.Len(), counts[1])
		f, err := ml.FitForest(train, 2, ml.ForestConfig{
			Trees:    cfg.ForestTrees,
			MaxDepth: cfg.ForestDepth,
			Seed:     cfg.Seed,
			Workers:  cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: campus %q fit: %w", campus.Name, err)
		}
		forests[i], tests[i] = f, test
		if err := pooledTrain.Append(train); err != nil {
			return nil, fmt.Errorf("fleet: pooling campus %q: %w", campus.Name, err)
		}
		logf("campus %s: forest fitted (%d trees, %d nodes)",
			campus.Name, f.NumTrees(), f.TotalNodes())
	}

	// Train-here/test-there matrix.
	res.Recall = make([][]float64, len(campuses))
	res.Accuracy = make([][]float64, len(campuses))
	for i, f := range forests {
		res.Recall[i] = make([]float64, len(campuses))
		res.Accuracy[i] = make([]float64, len(campuses))
		for j, test := range tests {
			cm := ml.Evaluate(f, test)
			res.Recall[i][j] = cm.Recall(1)
			res.Accuracy[i][j] = cm.Accuracy()
			logf("roadtest train=%s test=%s recall=%.6f accuracy=%.6f",
				res.Campuses[i], res.Campuses[j], res.Recall[i][j], res.Accuracy[i][j])
		}
	}

	// Vote pooling: merge every campus's forest into one ensemble.
	merged, err := ml.MergeForests(forests...)
	if err != nil {
		return nil, fmt.Errorf("fleet: merge: %w", err)
	}
	res.Merged = merged
	res.MergedBytes, err = merged.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("fleet: marshal merged: %w", err)
	}
	logf("federated ensemble: %d trees from %d campuses, %d bytes",
		merged.NumTrees(), len(campuses), len(res.MergedBytes))

	// Feature pooling: one forest over the concatenated train splits
	// (campus order, no re-shuffle — Append order is the spec).
	pooled, err := ml.FitForest(pooledTrain, 2, ml.ForestConfig{
		Trees:    cfg.ForestTrees,
		MaxDepth: cfg.ForestDepth,
		Seed:     cfg.Seed,
		Workers:  cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: pooled fit: %w", err)
	}
	res.Pooled = pooled

	res.FederatedRecall = make([]float64, len(campuses))
	res.FederatedAccuracy = make([]float64, len(campuses))
	res.PooledRecall = make([]float64, len(campuses))
	res.PooledAccuracy = make([]float64, len(campuses))
	for j, test := range tests {
		cm := ml.Evaluate(merged, test)
		res.FederatedRecall[j] = cm.Recall(1)
		res.FederatedAccuracy[j] = cm.Accuracy()
		pm := ml.Evaluate(pooled, test)
		res.PooledRecall[j] = pm.Recall(1)
		res.PooledAccuracy[j] = pm.Accuracy()
		logf("federated test=%s recall=%.6f accuracy=%.6f pooled recall=%.6f accuracy=%.6f",
			res.Campuses[j], res.FederatedRecall[j], res.FederatedAccuracy[j],
			res.PooledRecall[j], res.PooledAccuracy[j])
	}
	logf("round complete")
	return res, nil
}
