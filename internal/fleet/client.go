package fleet

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"time"

	"campuslab/internal/control"
	"campuslab/internal/obs"
	"campuslab/internal/traffic"
)

var (
	obsCliBatches  = obs.Default.Counter("campuslab_fleet_client_batches_total")
	obsCliFrames   = obs.Default.Counter("campuslab_fleet_client_frames_total")
	obsCliRetries  = obs.Default.Counter("campuslab_fleet_client_retries_total")
	obsCliRedials  = obs.Default.Counter("campuslab_fleet_client_redials_total")
	obsCliBackoffs = obs.Default.Counter("campuslab_fleet_client_overload_backoffs_total")
)

// ClientConfig parameterizes a campus ingest client.
type ClientConfig struct {
	// Addr is the server's TCP address (ignored when Dial is set).
	Addr string
	// Campus names this stream; the server keys its resume/dedup state by
	// it, so a campus must not run two writers under one name.
	Campus string
	// Retry bounds per-batch delivery: MaxAttempts tries with Base..Max
	// exponential backoff and seeded jitter — the control plane's install
	// retry schedule, reused (default 8 attempts, 5ms base, 500ms cap).
	Retry control.RetryPolicy
	// Dial overrides the transport (tests inject faulty connections).
	Dial func() (net.Conn, error)
	// Sleep overrides the backoff sleep (tests use a recorder; default
	// time.Sleep).
	Sleep func(time.Duration)
	// Timeout is the per-message I/O deadline (default 30s).
	Timeout time.Duration
}

func (c ClientConfig) withDefaults() (ClientConfig, error) {
	if c.Campus == "" {
		return c, fmt.Errorf("fleet: client needs a campus name")
	}
	if len(c.Campus) > maxCampusName {
		return c, fmt.Errorf("fleet: campus name %d bytes (max %d)", len(c.Campus), maxCampusName)
	}
	if c.Dial == nil {
		if c.Addr == "" {
			return c, fmt.Errorf("fleet: client needs an address")
		}
		addr := c.Addr
		c.Dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Retry.MaxAttempts <= 0 {
		c.Retry.MaxAttempts = 8
	}
	if c.Retry.Base <= 0 {
		c.Retry.Base = 5 * time.Millisecond
	}
	if c.Retry.Max <= 0 {
		c.Retry.Max = 500 * time.Millisecond
	}
	if c.Retry.Seed == 0 {
		c.Retry.Seed = 1
	}
	return c, nil
}

// Client streams labeled frame batches to a fleet ingest server. Not
// goroutine-safe: one stream has one writer (batch sequence numbers are a
// single ascending counter).
type Client struct {
	cfg    ClientConfig
	conn   net.Conn
	br     *bufio.Reader
	seq    uint64 // last sequence this client assigned
	jitter *rand.Rand
	// serverSeq is the server's last acked sequence from the most recent
	// handshake — how a reconnect learns whether the in-flight batch's
	// ack was lost after the batch landed.
	serverSeq uint64
	scratch   []byte
}

// DialCampus connects and handshakes a campus ingest stream. The client
// resumes its sequence numbering from the server's acked position, so a
// restarted client under the same campus name continues without gaps.
func DialCampus(cfg ClientConfig) (*Client, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Client{cfg: cfg, jitter: rand.New(rand.NewSource(cfg.Retry.Seed))}
	if err := c.connect(); err != nil {
		return nil, err
	}
	c.seq = c.serverSeq
	return c, nil
}

// connect dials and handshakes, replacing any previous connection.
func (c *Client) connect() error {
	c.dropConn()
	conn, err := c.cfg.Dial()
	if err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
	msg := AppendMessage(nil, MsgHello, EncodeHello(c.cfg.Campus))
	if _, err := conn.Write(msg); err != nil {
		conn.Close()
		return fmt.Errorf("fleet: hello: %w", err)
	}
	t, payload, err := ReadMessage(br, &c.scratch)
	if err != nil {
		conn.Close()
		return fmt.Errorf("fleet: hello reply: %w", err)
	}
	switch t {
	case MsgHelloAck:
	case MsgError:
		conn.Close()
		return fmt.Errorf("fleet: server rejected handshake: %s", payload)
	default:
		conn.Close()
		return fmt.Errorf("fleet: unexpected handshake reply %v", t)
	}
	version, lastSeq, err := DecodeHelloAck(payload)
	if err != nil {
		conn.Close()
		return err
	}
	if version != ProtocolVersion {
		conn.Close()
		return fmt.Errorf("fleet: server speaks version %d, client %d", version, ProtocolVersion)
	}
	c.conn, c.br, c.serverSeq = conn, br, lastSeq
	return nil
}

func (c *Client) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.br = nil, nil
	}
}

// Close tears down the connection. Acked batches are already in the
// server's store; unacked ones were never acknowledged to the caller.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.br = nil, nil
	return err
}

// SendBatch delivers one batch of frames, blocking until the server
// acknowledges it or the retry budget runs out. Delivery is exactly-once
// from the store's point of view: a connection cut after the batch landed
// but before the ack arrived is retried and answered from the server's
// ack cache, never re-ingested. A MsgOverloaded reply (admission gate
// shut) backs off with the control plane's jittered schedule and retries
// the same sequence.
func (c *Client) SendBatch(frames []traffic.Frame) (Ack, error) {
	if len(frames) == 0 {
		return Ack{Seq: c.seq}, nil
	}
	seq := c.seq + 1
	msg := AppendMessage(c.scratchMsg(), MsgBatch, EncodeBatch(seq, frames, nil))
	step := c.cfg.Retry.Base
	var lastErr error
	for attempt := 1; attempt <= c.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			obsCliRetries.Inc()
			var delay time.Duration
			delay, step = c.cfg.Retry.Backoff(step, c.jitter)
			c.cfg.Sleep(delay)
		}
		if c.conn == nil {
			obsCliRedials.Inc()
			if lastErr = c.connect(); lastErr != nil {
				continue
			}
		}
		ack, retry, err := c.exchange(msg, seq)
		if err == nil {
			c.seq = seq
			obsCliBatches.Inc()
			obsCliFrames.Add(uint64(len(frames)))
			return ack, nil
		}
		if !retry {
			return Ack{}, err
		}
		lastErr = err
	}
	return Ack{}, fmt.Errorf("fleet: batch %d not acknowledged after %d attempts: %w",
		seq, c.cfg.Retry.MaxAttempts, lastErr)
}

// exchange performs one write-batch/read-reply round trip. retry reports
// whether the failure is worth another attempt.
func (c *Client) exchange(msg []byte, seq uint64) (ack Ack, retry bool, err error) {
	c.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
	if _, werr := c.conn.Write(msg); werr != nil {
		c.dropConn()
		return Ack{}, true, fmt.Errorf("fleet: write batch %d: %w", seq, werr)
	}
	t, payload, rerr := ReadMessage(c.br, &c.scratch)
	if rerr != nil {
		// The cut may have landed after ingest: reconnect and re-send;
		// the server's ack cache makes the retry idempotent.
		c.dropConn()
		return Ack{}, true, fmt.Errorf("fleet: read reply for batch %d: %w", seq, rerr)
	}
	switch t {
	case MsgAck:
		ack, aerr := DecodeAck(payload)
		if aerr != nil {
			c.dropConn()
			return Ack{}, true, aerr
		}
		if ack.Seq != seq {
			c.dropConn()
			return Ack{}, true, fmt.Errorf("fleet: ack for batch %d while waiting on %d", ack.Seq, seq)
		}
		return ack, false, nil
	case MsgOverloaded:
		obsCliBackoffs.Inc()
		return Ack{}, true, fmt.Errorf("fleet: server overloaded at batch %d", seq)
	case MsgError:
		return Ack{}, false, fmt.Errorf("fleet: server error at batch %d: %s", seq, payload)
	default:
		c.dropConn()
		return Ack{}, true, fmt.Errorf("fleet: unexpected reply %v to batch %d", t, seq)
	}
}

// scratchMsg returns a zero-length buffer for message encoding, reusing
// prior capacity. It is distinct from c.scratch (the read buffer): a
// batch message must stay intact across the read of its reply so a retry
// can re-send the identical bytes.
func (c *Client) scratchMsg() []byte { return nil }

// StreamStats summarizes one Stream call.
type StreamStats struct {
	Frames  uint64 // frames offered by the generator
	Stored  uint64 // frames the server acknowledged as ingested
	Shed    uint64 // frames the server's admission gate shed
	Batches uint64 // acked batches
}

// DefaultStreamBatch mirrors the local collector's ingest batch size, so
// a streamed campus and a locally collected one land byte-identical
// stores.
const DefaultStreamBatch = 4096

// Stream drains a generator into the server in batches of batchSize
// (<=0 = DefaultStreamBatch), the streaming counterpart of Lab.Collect.
func (c *Client) Stream(gen traffic.Generator, batchSize int) (StreamStats, error) {
	if batchSize <= 0 {
		batchSize = DefaultStreamBatch
	}
	var st StreamStats
	batch := make([]traffic.Frame, 0, batchSize)
	flush := func() error {
		ack, err := c.SendBatch(batch)
		if err != nil {
			return err
		}
		if len(batch) > 0 {
			st.Batches++
		}
		st.Stored += uint64(ack.Ingested)
		st.Shed += uint64(ack.Shed)
		batch = batch[:0]
		return nil
	}
	var f traffic.Frame
	for gen.Next(&f) {
		batch = append(batch, f)
		st.Frames++
		if len(batch) == batchSize {
			if err := flush(); err != nil {
				return st, err
			}
		}
	}
	if err := flush(); err != nil {
		return st, err
	}
	return st, nil
}
