package fleet

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzFleetFrame drives the wire decoder with arbitrary bytes. The
// invariants under fuzz:
//
//  1. DecodeMessage/ReadMessage never panic; every failure is
//     ErrFrameCorrupt (structural) or an io error (truncation).
//  2. The streaming and in-memory decoders agree on well-formed input.
//  3. A successfully decoded message re-encodes to the identical bytes —
//     the encoding is canonical, so decode∘encode is the identity and a
//     single flipped bit can never round-trip cleanly.
func FuzzFleetFrame(f *testing.F) {
	f.Add(AppendMessage(nil, MsgHello, EncodeHello("ucsb")))
	f.Add(AppendMessage(nil, MsgHelloAck, EncodeHelloAck(12)))
	f.Add(AppendMessage(nil, MsgBatch, EncodeBatch(1, testFrames(3, 5), []uint16{0, 1, 2})))
	f.Add(AppendMessage(nil, MsgBatch, EncodeBatch(2, nil, nil)))
	f.Add(AppendMessage(nil, MsgAck, EncodeAck(Ack{Seq: 2, First: 77, Ingested: 10, Shed: 1})))
	f.Add(AppendMessage(nil, MsgOverloaded, EncodeSeq(9)))
	f.Add(AppendMessage(nil, MsgError, []byte("campus x: ingest wedged")))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		mt, payload, rest, err := DecodeMessage(b)
		if err != nil {
			if !errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("DecodeMessage error %v is not ErrFrameCorrupt", err)
			}
			// The streaming decoder must also refuse (with a frame or io
			// error), never panic.
			var scratch []byte
			if _, _, rerr := ReadMessage(bytes.NewReader(b), &scratch); rerr == nil {
				t.Fatal("ReadMessage accepted what DecodeMessage refused")
			}
			return
		}
		// Streaming decoder agrees byte for byte.
		var scratch []byte
		rt, rp, rerr := ReadMessage(bytes.NewReader(b), &scratch)
		if rerr != nil || rt != mt || !bytes.Equal(rp, payload) {
			t.Fatalf("ReadMessage disagrees: %v %v vs %v", rt, rerr, mt)
		}
		consumed := b[:len(b)-len(rest)]
		if got := AppendMessage(nil, mt, payload); !bytes.Equal(got, consumed) {
			t.Fatal("message re-encode differs")
		}

		// Payload decoders: never panic, typed errors, canonical re-encode.
		switch mt {
		case MsgHello:
			campus, version, err := DecodeHello(payload)
			if err != nil {
				if !errors.Is(err, ErrFrameCorrupt) {
					t.Fatalf("DecodeHello: %v", err)
				}
			} else if version == ProtocolVersion && !bytes.Equal(EncodeHello(campus), payload) {
				t.Fatal("hello re-encode differs")
			}
		case MsgHelloAck:
			version, lastSeq, err := DecodeHelloAck(payload)
			if err != nil {
				if !errors.Is(err, ErrFrameCorrupt) {
					t.Fatalf("DecodeHelloAck: %v", err)
				}
			} else if version == ProtocolVersion && !bytes.Equal(EncodeHelloAck(lastSeq), payload) {
				t.Fatal("hello-ack re-encode differs")
			}
		case MsgBatch:
			seq, frames, links, err := DecodeBatch(payload)
			if err != nil {
				if !errors.Is(err, ErrFrameCorrupt) {
					t.Fatalf("DecodeBatch: %v", err)
				}
			} else if !bytes.Equal(EncodeBatch(seq, frames, links), payload) {
				t.Fatal("batch re-encode differs")
			}
		case MsgAck:
			ack, err := DecodeAck(payload)
			if err != nil {
				if !errors.Is(err, ErrFrameCorrupt) {
					t.Fatalf("DecodeAck: %v", err)
				}
			} else if !bytes.Equal(EncodeAck(ack), payload) {
				t.Fatal("ack re-encode differs")
			}
		case MsgOverloaded:
			seq, err := DecodeSeq(payload)
			if err != nil {
				if !errors.Is(err, ErrFrameCorrupt) {
					t.Fatalf("DecodeSeq: %v", err)
				}
			} else if !bytes.Equal(EncodeSeq(seq), payload) {
				t.Fatal("seq re-encode differs")
			}
		}
	})
}
