package fleet_test

import (
	"net"
	"testing"
	"time"

	"campuslab/internal/datastore"
	"campuslab/internal/faults"
	"campuslab/internal/fleet"
)

// faultyConn wraps a client connection and consults a fault schedule on
// every batch write. A transient fault cuts the connection mid-message:
// half the bytes reach the server, then the socket dies — the torn-batch
// crash the protocol's CRC framing and all-or-nothing ingest exist for.
type faultyConn struct {
	net.Conn
	inj *faults.Schedule
}

func (c *faultyConn) Write(b []byte) (int, error) {
	if len(b) > 0 && fleet.MsgType(b[0]) == fleet.MsgBatch {
		if err := c.inj.Fail("fleet.batch"); err != nil {
			n, _ := c.Conn.Write(b[:len(b)/2])
			c.Conn.Close()
			return n, err
		}
	}
	return c.Conn.Write(b)
}

// TestCrashMidBatchDurability kills the campus connection in the middle
// of a batch write and checks the full recovery contract:
//
//   - the torn batch is never partially ingested (all-or-nothing);
//   - the client's retry-with-backoff reconnects and resumes without
//     duplicating a single PacketID;
//   - after a crash+Recover of the durable store, everything acked is
//     present, byte-identical — an ack really is a durability receipt.
func TestCrashMidBatchDurability(t *testing.T) {
	dir := t.TempDir()
	st, rs, err := datastore.Recover(datastore.DurableConfig{Dir: dir, Fsync: datastore.FsyncAlways, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rs.SnapshotPackets+rs.WALPackets != 0 {
		t.Fatalf("fresh dir recovered %+v", rs)
	}
	addr := startServer(t, st, fleet.ServerConfig{})

	// Cut the 2nd batch write mid-message (and, on a later batch, a 2nd
	// cut to prove repeated faults stay safe).
	inj := faults.NewSchedule().
		FailCalls("fleet.batch", 2, 2, faults.KindTransient).
		FailCalls("fleet.batch", 5, 5, faults.KindTransient)

	var slept []time.Duration
	cl, err := fleet.DialCampus(fleet.ClientConfig{
		Campus: "ucsb",
		Dial: func() (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return &faultyConn{Conn: conn, inj: inj}, nil
		},
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const batches, perBatch = 4, 50
	frames := synthFrames(batches*perBatch, 13)
	var firstIDs []uint64
	for b := 0; b < batches; b++ {
		ack, err := cl.SendBatch(frames[b*perBatch : (b+1)*perBatch])
		if err != nil {
			t.Fatalf("batch %d: %v", b+1, err)
		}
		if ack.Ingested != perBatch {
			t.Fatalf("batch %d ack %+v", b+1, ack)
		}
		firstIDs = append(firstIDs, ack.First)
	}
	if len(slept) == 0 {
		t.Fatal("retries never backed off")
	}

	// No duplicates, no gaps: acked batches take consecutive ID ranges.
	for b := 1; b < batches; b++ {
		if firstIDs[b] != firstIDs[b-1]+perBatch {
			t.Fatalf("batch first-IDs %v: torn batch leaked partial frames", firstIDs)
		}
	}
	if got := st.Stats().Packets; got != batches*perBatch {
		t.Fatalf("store has %d packets, want %d", got, batches*perBatch)
	}
	live := storeFingerprint(st)

	// Crash: detach the WAL without a checkpoint and recover from disk.
	if err := st.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	st2, rs2, err := datastore.Recover(datastore.DurableConfig{Dir: dir, Fsync: datastore.FsyncAlways, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.CloseWAL()
	if rs2.Torn {
		t.Fatalf("recovery reports torn log: %+v", rs2)
	}
	if got := storeFingerprint(st2); got != live {
		t.Fatal("recovered store differs from acked live store")
	}
}
