package fleet_test

import (
	"testing"

	"campuslab/internal/datastore"
	"campuslab/internal/fleet"
)

// BenchmarkFleetIngest measures the streaming path end to end and puts a
// number on the fleet-mode tax: the same batches landed through a local
// AddBatch call versus framed, CRC'd, and acked over a loopback TCP
// connection. The delta is pure protocol + syscall cost — the store work
// is identical by construction (TestStreamMatchesLocalIngest).
func BenchmarkFleetIngest(b *testing.B) {
	const batchSize = 512
	frames := synthFrames(batchSize, 42)

	b.Run("inprocess", func(b *testing.B) {
		st := datastore.NewSharded(4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.AddBatchLinks(frames, nil, 1); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(batchSize))
	})

	b.Run("loopback", func(b *testing.B) {
		st := datastore.NewSharded(4)
		addr := startServer(b, st, fleet.ServerConfig{Workers: 1})
		cl, err := fleet.DialCampus(fleet.ClientConfig{Addr: addr, Campus: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.SendBatch(frames); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(batchSize))
	})
}
