package fleet_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"campuslab/internal/datastore"
	"campuslab/internal/fleet"
	"campuslab/internal/traffic"
)

// synthFrames builds n deterministic synthetic frames.
func synthFrames(n, seed int) []traffic.Frame {
	frames := make([]traffic.Frame, n)
	for i := range frames {
		data := make([]byte, 24+(seed+i)%64)
		for j := range data {
			data[j] = byte(seed*31 + i + j)
		}
		frames[i] = traffic.Frame{
			TS:    time.Duration(seed*1000+i) * time.Microsecond,
			Data:  data,
			Label: traffic.Label((seed + i) % int(traffic.NumLabels)),
			Actor: (seed+i)%3 == 0,
		}
	}
	return frames
}

// startServer runs a fleet server over st on loopback and returns its
// address. Cleanup stops it.
func startServer(t testing.TB, st *datastore.Store, cfg fleet.ServerConfig) string {
	t.Helper()
	cfg.Store = st
	srv, err := fleet.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ln.Close()
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// storeFingerprint hashes the store's full ordered content: every packet's
// identity, ordering, labels, and raw bytes.
func storeFingerprint(st *datastore.Store) string {
	h := sha256.New()
	var buf [8]byte
	st.Scan(func(p *datastore.StoredPacket) bool {
		binary.LittleEndian.PutUint64(buf[:], uint64(p.ID))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(p.TS))
		h.Write(buf[:])
		binary.LittleEndian.PutUint16(buf[:2], p.Link)
		a := byte(0)
		if p.Actor {
			a = 1
		}
		h.Write([]byte{buf[0], buf[1], byte(p.Label), a})
		h.Write(p.Data)
		return true
	})
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestStreamMatchesLocalIngest is the transport-transparency contract:
// frames streamed over TCP land a byte-identical store to the same frames
// ingested in process, at any shard/worker combination.
func TestStreamMatchesLocalIngest(t *testing.T) {
	frames := synthFrames(1000, 3)
	for _, shards := range []int{1, 4} {
		for _, workers := range []int{1, 4} {
			local := datastore.NewSharded(shards)
			for lo := 0; lo < len(frames); lo += 128 {
				hi := min(lo+128, len(frames))
				if _, err := local.AddBatchAdmit(frames[lo:hi], workers); err != nil {
					t.Fatal(err)
				}
			}

			remote := datastore.NewSharded(shards)
			addr := startServer(t, remote, fleet.ServerConfig{Workers: workers})
			cl, err := fleet.DialCampus(fleet.ClientConfig{Addr: addr, Campus: "ucsb"})
			if err != nil {
				t.Fatal(err)
			}
			for lo := 0; lo < len(frames); lo += 128 {
				hi := min(lo+128, len(frames))
				ack, err := cl.SendBatch(frames[lo:hi])
				if err != nil {
					t.Fatal(err)
				}
				if int(ack.Ingested) != hi-lo || ack.Shed != 0 {
					t.Fatalf("ack %+v for %d frames", ack, hi-lo)
				}
			}
			cl.Close()

			if lf, rf := storeFingerprint(local), storeFingerprint(remote); lf != rf {
				t.Fatalf("shards=%d workers=%d: TCP store differs from local (%s vs %s)", shards, workers, lf, rf)
			}
		}
	}
}

// rawSession opens a raw protocol connection and completes the handshake,
// returning the conn and the server's last acked seq for the campus.
func rawSession(t *testing.T, addr, campus string) (net.Conn, uint64) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if _, err := conn.Write(fleet.AppendMessage(nil, fleet.MsgHello, fleet.EncodeHello(campus))); err != nil {
		t.Fatal(err)
	}
	mt, payload := readMsg(t, conn)
	if mt != fleet.MsgHelloAck {
		t.Fatalf("handshake reply %v: %s", mt, payload)
	}
	_, lastSeq, err := fleet.DecodeHelloAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	return conn, lastSeq
}

// readMsg reads one framed message off conn.
func readMsg(t *testing.T, conn net.Conn) (fleet.MsgType, []byte) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var scratch []byte
	mt, payload, err := fleet.ReadMessage(conn, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	return mt, bytes.Clone(payload)
}

func TestServerDedupesRetriedBatch(t *testing.T) {
	st := datastore.New()
	addr := startServer(t, st, fleet.ServerConfig{})
	conn, lastSeq := rawSession(t, addr, "ucsb")
	if lastSeq != 0 {
		t.Fatalf("fresh campus resumes at %d", lastSeq)
	}

	batch := fleet.AppendMessage(nil, fleet.MsgBatch, fleet.EncodeBatch(1, synthFrames(20, 7), nil))
	if _, err := conn.Write(batch); err != nil {
		t.Fatal(err)
	}
	mt, first := readMsg(t, conn)
	if mt != fleet.MsgAck {
		t.Fatalf("first send: %v %s", mt, first)
	}
	// Re-send the identical batch: same ack bytes, no re-ingest.
	if _, err := conn.Write(batch); err != nil {
		t.Fatal(err)
	}
	mt, second := readMsg(t, conn)
	if mt != fleet.MsgAck || !bytes.Equal(first, second) {
		t.Fatalf("retry: %v, acks equal=%v", mt, bytes.Equal(first, second))
	}
	if got := st.Stats().Packets; got != 20 {
		t.Fatalf("duplicate batch was re-ingested: %d packets", got)
	}

	// The dedup state survives reconnects: a new session resumes at 1.
	conn.Close()
	_, lastSeq = rawSession(t, addr, "ucsb")
	if lastSeq != 1 {
		t.Fatalf("reconnect resumes at %d, want 1", lastSeq)
	}
	// And a different campus starts fresh.
	_, lastSeq = rawSession(t, addr, "princeton")
	if lastSeq != 0 {
		t.Fatalf("other campus resumes at %d, want 0", lastSeq)
	}
}

func TestServerRejectsProtocolViolations(t *testing.T) {
	st := datastore.New()
	addr := startServer(t, st, fleet.ServerConfig{})

	// expectError writes msgs, discards skip replies (handshake acks),
	// then requires a MsgError.
	expectError := func(name string, skip int, msgs ...[]byte) {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		for _, m := range msgs {
			if _, err := conn.Write(m); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < skip; i++ {
			if mt, payload := readMsg(t, conn); mt != fleet.MsgHelloAck {
				t.Fatalf("%s: reply %d is %v %q, want hello-ack", name, i, mt, payload)
			}
		}
		mt, payload := readMsg(t, conn)
		if mt != fleet.MsgError {
			t.Fatalf("%s: got %v %q, want error", name, mt, payload)
		}
	}

	hello := func(campus string) []byte {
		return fleet.AppendMessage(nil, fleet.MsgHello, fleet.EncodeHello(campus))
	}
	badVersion := fleet.EncodeHello("ucsb")
	badVersion[4] = 99 // version low byte
	expectError("wrong version", 0, fleet.AppendMessage(nil, fleet.MsgHello, badVersion))
	expectError("empty campus", 0, hello(""))
	expectError("batch before hello", 0, fleet.AppendMessage(nil, fleet.MsgBatch, fleet.EncodeBatch(1, nil, nil)))
	expectError("seq gap", 1, hello("ucsb"),
		fleet.AppendMessage(nil, fleet.MsgBatch, fleet.EncodeBatch(5, synthFrames(3, 1), nil)))
	expectError("double hello", 1, hello("ucsb"), hello("ucsb"))

	if got := st.Stats().Packets; got != 0 {
		t.Fatalf("violating sessions ingested %d packets", got)
	}
}

// TestServerBackpressure drives the store into its admission gate's
// reject posture and checks the typed MsgOverloaded round trip: the
// server refuses without ingesting, the client backs off (recorded, not
// slept) and surfaces the failure after its retry budget.
func TestServerBackpressure(t *testing.T) {
	st := datastore.New()
	st.SetAdmission(datastore.AdmissionConfig{MaxPackets: 50})
	addr := startServer(t, st, fleet.ServerConfig{})

	var slept []time.Duration
	cl, err := fleet.DialCampus(fleet.ClientConfig{
		Addr: addr, Campus: "ucsb",
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Fill to capacity; attack-labeled frames cannot be shed, so the gate
	// moves straight to reject.
	fill := synthFrames(50, 2)
	for i := range fill {
		fill[i].Label = traffic.LabelDNSAmp
	}
	if ack, err := cl.SendBatch(fill); err != nil || ack.Ingested != 50 {
		t.Fatalf("fill: %+v %v", ack, err)
	}

	_, err = cl.SendBatch(synthFrames(10, 9))
	if err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("overfull send: %v", err)
	}
	if len(slept) == 0 {
		t.Fatal("client never backed off")
	}
	for i := 1; i < len(slept); i++ {
		if slept[i] < slept[i-1]/2 {
			t.Fatalf("backoff not growing: %v", slept)
		}
	}
	if got := st.Stats().Packets; got != 50 {
		t.Fatalf("rejected batch leaked into store: %d packets", got)
	}

	// Empty batches are never refused, even at reject.
	if _, err := cl.SendBatch(nil); err != nil {
		t.Fatalf("empty batch refused: %v", err)
	}
}

func TestClientValidatesConfig(t *testing.T) {
	if _, err := fleet.DialCampus(fleet.ClientConfig{Addr: "127.0.0.1:1"}); err == nil {
		t.Fatal("missing campus name accepted")
	}
	if _, err := fleet.DialCampus(fleet.ClientConfig{Campus: "x"}); err == nil {
		t.Fatal("missing address accepted")
	}
	long := strings.Repeat("x", 300)
	if _, err := fleet.DialCampus(fleet.ClientConfig{Addr: "127.0.0.1:1", Campus: long}); err == nil {
		t.Fatal("oversized campus name accepted")
	}
}

func TestClientStreamBatching(t *testing.T) {
	st := datastore.New()
	addr := startServer(t, st, fleet.ServerConfig{})
	cl, err := fleet.DialCampus(fleet.ClientConfig{Addr: addr, Campus: "ucsb"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	frames := synthFrames(257, 11)
	stats, err := cl.Stream(&sliceGen{frames: frames}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Frames != 257 || stats.Stored != 257 || stats.Batches != 3 || stats.Shed != 0 {
		t.Fatalf("stream stats %+v", stats)
	}
	if got := st.Stats().Packets; got != 257 {
		t.Fatalf("store has %d packets", got)
	}
}

// sliceGen replays a fixed frame slice as a traffic.Generator.
type sliceGen struct {
	frames []traffic.Frame
	i      int
}

func (g *sliceGen) Next(f *traffic.Frame) bool {
	if g.i >= len(g.frames) {
		return false
	}
	*f = g.frames[g.i]
	g.i++
	return true
}
