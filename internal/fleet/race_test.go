package fleet_test

import (
	"sync"
	"testing"

	"campuslab/internal/datastore"
	"campuslab/internal/features"
	"campuslab/internal/fleet"
	"campuslab/internal/traffic"
)

// TestRaceConcurrentCampusStreams drives three campuses into one shared
// listener and store at once — the shape `go test -race` must bless:
// every frame lands exactly once with a unique PacketID, whatever the
// interleaving.
func TestRaceConcurrentCampusStreams(t *testing.T) {
	st := datastore.NewSharded(4)
	addr := startServer(t, st, fleet.ServerConfig{Workers: 2})

	const perCampus = 600
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i, campus := range []string{"ucsb", "princeton", "columbia"} {
		wg.Add(1)
		go func(i int, campus string) {
			defer wg.Done()
			cl, err := fleet.DialCampus(fleet.ClientConfig{Addr: addr, Campus: campus})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			stats, err := cl.Stream(&sliceGen{frames: synthFrames(perCampus, i+1)}, 64)
			if err != nil {
				errs <- err
				return
			}
			if stats.Stored != perCampus {
				errs <- errStored(stats.Stored)
			}
		}(i, campus)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := st.Stats().Packets; got != 3*perCampus {
		t.Fatalf("store has %d packets, want %d", got, 3*perCampus)
	}
	seen := make(map[datastore.PacketID]bool, 3*perCampus)
	st.Scan(func(p *datastore.StoredPacket) bool {
		if seen[p.ID] {
			t.Errorf("duplicate PacketID %d", p.ID)
		}
		seen[p.ID] = true
		return true
	})
	if len(seen) != 3*perCampus {
		t.Fatalf("%d unique ids, want %d", len(seen), 3*perCampus)
	}
}

type errStored uint64

func (e errStored) Error() string { return "short store" }

// TestRaceCoordinatorDuringStreaming runs a federated round while every
// campus is still actively streaming into its store — the coordinator
// reads (featurize = store scans) race against live ingest appends. The
// round must complete and the test must stay race-detector clean.
func TestRaceCoordinatorDuringStreaming(t *testing.T) {
	const campuses = 3
	stores := make([]*datastore.Store, campuses)
	campusList := make([]fleet.Campus, campuses)
	names := []string{"ucsb", "princeton", "columbia"}
	var wg sync.WaitGroup
	errs := make(chan error, campuses)
	for i := 0; i < campuses; i++ {
		i := i
		stores[i] = datastore.NewSharded(2)
		addr := startServer(t, stores[i], fleet.ServerConfig{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := fleet.DialCampus(fleet.ClientConfig{Addr: addr, Campus: names[i]})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			if _, err := cl.Stream(&sliceGen{frames: synthFrames(2000, i+5)}, 32); err != nil {
				errs <- err
			}
		}()
		campusList[i] = fleet.Campus{
			Name: names[i],
			// The featurizer stands in for FromPackets but still scans the
			// live store, so coordinator reads overlap ingest writes.
			Features: func() *features.Dataset {
				stores[i].Scan(func(p *datastore.StoredPacket) bool { return p.ID != 0 })
				return synthDataset(i, 300)
			},
		}
	}

	res, err := fleet.RunFederated(campusList, fleet.CoordinatorConfig{
		Target: traffic.LabelDNSAmp, ForestTrees: 4, ForestDepth: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FederatedRecall) != campuses {
		t.Fatalf("round produced %d federated cells", len(res.FederatedRecall))
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, st := range stores {
		if got := st.Stats().Packets; got != 2000 {
			t.Fatalf("campus %d store has %d packets, want 2000", i, got)
		}
	}
}
