package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"campuslab/internal/datastore"
	"campuslab/internal/obs"
	"campuslab/internal/traffic"
)

// Fleet ingest counters. Batch- and connection-granularity only — the
// per-frame work happens inside the store's own instrumented ingest path.
var (
	obsSrvConns      = obs.Default.Counter("campuslab_fleet_server_connections_total")
	obsSrvBatches    = obs.Default.Counter(obs.FleetBatchesName)
	obsSrvFrames     = obs.Default.Counter(obs.FleetFramesName)
	obsSrvBytes      = obs.Default.Counter("campuslab_fleet_server_bytes_total")
	obsSrvDups       = obs.Default.Counter("campuslab_fleet_server_duplicate_batches_total")
	obsSrvOverloaded = obs.Default.Counter("campuslab_fleet_server_overloaded_replies_total")
	obsSrvErrors     = obs.Default.Counter("campuslab_fleet_server_protocol_errors_total")
	obsSrvCampuses   = obs.Default.Gauge("campuslab_fleet_server_campuses")
)

// ServerConfig parameterizes an ingest listener.
type ServerConfig struct {
	// Store receives every acked batch (required). When the store is
	// durable (WAL attached), a MsgAck means the batch is on disk.
	Store *datastore.Store
	// Workers bounds per-batch ingest fan-out (0 = GOMAXPROCS).
	Workers int
	// IdleTimeout closes a connection that sends nothing for this long
	// (default 2 minutes).
	IdleTimeout time.Duration
}

// Server accepts campus ingest streams and lands their batches in the
// store. Multiple campuses may stream concurrently; batches within one
// campus are serialized by sequence number, and re-sent batches (client
// retry after a torn connection) are answered from a per-campus ack cache
// without touching the store.
type Server struct {
	cfg ServerConfig

	mu       sync.Mutex
	campuses map[string]*campusState
	conns    map[net.Conn]struct{}
	closed   atomic.Bool
	wg       sync.WaitGroup
}

// campusState is the per-campus stream position: the last acked batch
// sequence and its cached reply. It survives reconnects (keyed by campus
// name, not connection), which is what makes retry idempotent.
type campusState struct {
	mu      sync.Mutex
	lastSeq uint64
	lastAck Ack
}

// NewServer builds an ingest server over the store.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("fleet: server needs a store")
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	return &Server{
		cfg:      cfg,
		campuses: make(map[string]*campusState),
		conns:    make(map[net.Conn]struct{}),
	}, nil
}

// Serve accepts connections on ln until Close (or a non-temporary accept
// error). Each connection is handled on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if s.closed.Load() {
			conn.Close()
			return nil
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handle(conn)
		}()
	}
}

// Close stops accepting work and force-closes live connections. The
// listener passed to Serve must be closed by the caller (Serve returns
// once it is).
func (s *Server) Close() {
	s.closed.Store(true)
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// campus returns (creating if needed) the state for a campus name.
func (s *Server) campus(name string) *campusState {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.campuses[name]
	if !ok {
		cs = &campusState{}
		s.campuses[name] = cs
		obsSrvCampuses.Set(float64(len(s.campuses)))
	}
	return cs
}

// reply writes one framed message and flushes it.
func reply(w *bufio.Writer, t MsgType, payload []byte) error {
	var hdr []byte
	hdr = AppendMessage(hdr, t, payload)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	return w.Flush()
}

// fail sends a fatal MsgError (best effort) and counts it.
func fail(w *bufio.Writer, format string, args ...any) {
	obsSrvErrors.Inc()
	_ = reply(w, MsgError, []byte(fmt.Sprintf(format, args...)))
}

// handle runs one connection: handshake, then a batch/ack loop until the
// peer hangs up or violates the protocol.
func (s *Server) handle(conn net.Conn) {
	obsSrvConns.Inc()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var scratch []byte

	conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	t, payload, err := ReadMessage(br, &scratch)
	if err != nil || t != MsgHello {
		if err == nil {
			fail(bw, "expected hello, got %v", t)
		}
		return
	}
	campus, version, err := DecodeHello(payload)
	if err != nil {
		fail(bw, "bad hello: %v", err)
		return
	}
	if version != ProtocolVersion {
		fail(bw, "protocol version %d not supported (want %d)", version, ProtocolVersion)
		return
	}
	if campus == "" {
		fail(bw, "empty campus name")
		return
	}
	cs := s.campus(campus)
	cs.mu.Lock()
	lastSeq := cs.lastSeq
	cs.mu.Unlock()
	if err := reply(bw, MsgHelloAck, EncodeHelloAck(lastSeq)); err != nil {
		return
	}

	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		t, payload, err := ReadMessage(br, &scratch)
		switch {
		case err == io.EOF:
			return // clean hangup at a message boundary
		case errors.Is(err, ErrFrameCorrupt):
			fail(bw, "corrupt message: %v", err)
			return
		case err != nil:
			return // cut mid-message or deadline: nothing was ingested
		}
		if t != MsgBatch {
			fail(bw, "expected batch, got %v", t)
			return
		}
		seq, frames, links, err := DecodeBatch(payload)
		if err != nil {
			fail(bw, "corrupt batch: %v", err)
			return
		}
		if !s.ingestBatch(bw, cs, campus, seq, frames, links) {
			return
		}
	}
}

// ingestBatch lands one decoded batch (or answers it from the ack cache)
// and writes the reply. Returns false when the connection should close.
func (s *Server) ingestBatch(bw *bufio.Writer, cs *campusState, campus string, seq uint64, frames []traffic.Frame, links []uint16) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	switch {
	case seq == cs.lastSeq && seq != 0:
		// Retry of the batch we just acked: the ack was lost, not the
		// batch. Answer from the cache; the store never sees it again.
		obsSrvDups.Inc()
		return reply(bw, MsgAck, EncodeAck(cs.lastAck)) == nil
	case seq != cs.lastSeq+1:
		fail(bw, "campus %s: batch seq %d after %d", campus, seq, cs.lastSeq)
		return false
	}
	r, err := s.cfg.Store.AddBatchLinks(frames, links, s.cfg.Workers)
	switch {
	case errors.Is(err, datastore.ErrOverloaded):
		// Typed backpressure: the whole batch was refused before any WAL
		// append; the client backs off and retries the same sequence.
		obsSrvOverloaded.Inc()
		return reply(bw, MsgOverloaded, EncodeSeq(seq)) == nil
	case err != nil:
		// WAL failure or other refusal: the batch is NOT durable and must
		// not be acked. Fatal for the stream — a wedged log will not heal
		// by retrying.
		fail(bw, "campus %s: ingest: %v", campus, err)
		return false
	}
	cs.lastSeq = seq
	cs.lastAck = Ack{Seq: seq, First: uint64(r.First), Ingested: uint32(r.Ingested), Shed: uint32(r.Shed)}
	obsSrvBatches.Inc()
	obsSrvFrames.Add(uint64(len(frames)))
	var nbytes uint64
	for i := range frames {
		nbytes += uint64(len(frames[i].Data))
	}
	obsSrvBytes.Add(nbytes)
	return reply(bw, MsgAck, EncodeAck(cs.lastAck)) == nil
}
