package fleet_test

import (
	"strconv"
	"strings"
	"testing"

	"campuslab/internal/features"
	"campuslab/internal/fleet"
	"campuslab/internal/traffic"
)

// synthDataset builds a deterministic, linearly separable two-class
// dataset whose decision boundary shifts with the campus index, so
// campus models genuinely differ.
func synthDataset(campus, n int) *features.Dataset {
	d := &features.Dataset{Schema: []string{"rate", "size", "spread"}}
	shift := float64(campus) * 0.4
	for i := 0; i < n; i++ {
		// Deterministic pseudo-noise without shared rand state.
		a := float64((i*2654435761)%1000) / 1000
		b := float64((i*40503+campus*7919)%1000) / 1000
		y := 0
		x := []float64{a, b, a + b}
		if a+0.7*b > 0.8+shift*0.1 {
			y = 1
			x[0] += 0.5 + shift
			x[2] += shift
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, y)
	}
	return d
}

func cannedCampuses(n int) []fleet.Campus {
	campuses := make([]fleet.Campus, n)
	names := []string{"ucsb", "princeton", "columbia", "berkeley"}
	for i := range campuses {
		i := i
		campuses[i] = fleet.Campus{
			Name:     names[i%len(names)],
			Features: func() *features.Dataset { return synthDataset(i, 400) },
		}
	}
	return campuses
}

// federatedFingerprint flattens everything a round produces into one
// comparable string: the full matrices at exact float precision, the
// serialized merged ensemble, and the transition log.
func federatedFingerprint(res *fleet.FederatedResult) string {
	var sb strings.Builder
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i := range res.Campuses {
		for j := range res.Campuses {
			sb.WriteString(res.Campuses[i] + "/" + res.Campuses[j] + ": " +
				f(res.Recall[i][j]) + " " + f(res.Accuracy[i][j]) + "\n")
		}
	}
	for j := range res.Campuses {
		sb.WriteString(f(res.FederatedRecall[j]) + " " + f(res.FederatedAccuracy[j]) + " " +
			f(res.PooledRecall[j]) + " " + f(res.PooledAccuracy[j]) + "\n")
	}
	sb.Write(res.MergedBytes)
	sb.WriteString(strings.Join(res.Log, "\n"))
	return sb.String()
}

func TestFederatedDeterministicAcrossWorkers(t *testing.T) {
	var prints []string
	for _, workers := range []int{1, 2, 4} {
		res, err := fleet.RunFederated(cannedCampuses(3), fleet.CoordinatorConfig{
			Target: traffic.LabelDNSAmp, Seed: 11, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		prints = append(prints, federatedFingerprint(res))
	}
	for i := 1; i < len(prints); i++ {
		if prints[i] != prints[0] {
			t.Fatalf("worker count changed the federated round (run %d differs)", i)
		}
	}
}

func TestFederatedShapesAndMerge(t *testing.T) {
	res, err := fleet.RunFederated(cannedCampuses(3), fleet.CoordinatorConfig{
		Target: traffic.LabelDNSAmp, ForestTrees: 5, ForestDepth: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recall) != 3 || len(res.Recall[0]) != 3 {
		t.Fatalf("matrix shape %dx%d", len(res.Recall), len(res.Recall[0]))
	}
	if got := res.Merged.NumTrees(); got != 15 {
		t.Fatalf("merged ensemble has %d trees, want 15", got)
	}
	if len(res.MergedBytes) == 0 {
		t.Fatal("no serialized ensemble")
	}
	for i := range res.Campuses {
		if res.Recall[i][i] < 0.5 {
			t.Fatalf("campus %s home recall %.3f — separable dataset should be learnable",
				res.Campuses[i], res.Recall[i][i])
		}
	}
	if len(res.Log) == 0 || res.Log[len(res.Log)-1] != "round complete" {
		t.Fatalf("log malformed: %v", res.Log)
	}
}

func TestFederatedErrors(t *testing.T) {
	if _, err := fleet.RunFederated(nil, fleet.CoordinatorConfig{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	tiny := []fleet.Campus{{Name: "x", Features: func() *features.Dataset { return synthDataset(0, 5) }}}
	if _, err := fleet.RunFederated(tiny, fleet.CoordinatorConfig{}); err == nil {
		t.Fatal("5-example campus accepted")
	}
	nostore := []fleet.Campus{{Name: "x"}}
	if _, err := fleet.RunFederated(nostore, fleet.CoordinatorConfig{}); err == nil {
		t.Fatal("campus without store accepted")
	}
}
