package fleet

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"campuslab/internal/traffic"
)

// testFrames builds n deterministic synthetic frames (arbitrary bytes —
// the wire layer must round-trip anything the WAL can hold).
func testFrames(n, seed int) []traffic.Frame {
	frames := make([]traffic.Frame, n)
	for i := range frames {
		data := make([]byte, 20+(seed+i)%80)
		for j := range data {
			data[j] = byte(seed + i + j)
		}
		frames[i] = traffic.Frame{
			TS:    time.Duration(i) * time.Millisecond,
			Data:  data,
			Label: traffic.Label((seed + i) % int(traffic.NumLabels)),
			Actor: i%2 == 0,
		}
	}
	return frames
}

func TestMessageRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 1000)}
	for _, p := range payloads {
		for mt := MsgHello; mt < msgTypeEnd; mt++ {
			msg := AppendMessage(nil, mt, p)
			gt, gp, rest, err := DecodeMessage(msg)
			if err != nil {
				t.Fatalf("decode %v/%d bytes: %v", mt, len(p), err)
			}
			if gt != mt || !bytes.Equal(gp, p) || len(rest) != 0 {
				t.Fatalf("round trip %v/%d: got %v/%d, %d rest", mt, len(p), gt, len(gp), len(rest))
			}
		}
	}
}

func TestMessageDecodeRejectsCorruption(t *testing.T) {
	msg := AppendMessage(nil, MsgBatch, EncodeBatch(7, testFrames(3, 1), nil))
	// Every single-bit flip must be detected (type, length, CRC, payload).
	for i := range msg {
		for bit := 0; bit < 8; bit++ {
			bad := bytes.Clone(msg)
			bad[i] ^= 1 << bit
			mt, p, _, err := DecodeMessage(bad)
			if err == nil {
				// A flip confined to the type byte can still be a valid
				// type with a valid CRC-checked payload; anything else
				// must fail.
				if i == 0 && mt != MsgBatch && bytes.Equal(p, msg[9:]) {
					continue
				}
				t.Fatalf("bit flip at byte %d bit %d decoded cleanly", i, bit)
			}
			if !errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("bit flip at byte %d bit %d: error %v is not ErrFrameCorrupt", i, bit, err)
			}
		}
	}
	// Truncation at every boundary.
	for n := 0; n < len(msg); n++ {
		if _, _, _, err := DecodeMessage(msg[:n]); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("truncation to %d bytes: %v", n, err)
		}
	}
}

func TestReadMessageEOFSemantics(t *testing.T) {
	msg := AppendMessage(nil, MsgAck, EncodeAck(Ack{Seq: 3, First: 100, Ingested: 50}))
	var scratch []byte

	// Clean read then boundary EOF.
	r := bytes.NewReader(msg)
	mt, p, err := ReadMessage(r, &scratch)
	if err != nil || mt != MsgAck {
		t.Fatalf("read: %v %v", mt, err)
	}
	if a, err := DecodeAck(p); err != nil || a.Seq != 3 || a.First != 100 || a.Ingested != 50 {
		t.Fatalf("ack round trip: %+v %v", a, err)
	}
	if _, _, err := ReadMessage(r, &scratch); err != io.EOF {
		t.Fatalf("boundary EOF: got %v", err)
	}

	// A cut anywhere inside the message is ErrUnexpectedEOF, never EOF.
	for n := 1; n < len(msg); n++ {
		_, _, err := ReadMessage(bytes.NewReader(msg[:n]), &scratch)
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: got %v", n, err)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	frames := testFrames(17, 9)
	links := make([]uint16, len(frames))
	for i := range links {
		links[i] = uint16(i % 3)
	}
	payload := EncodeBatch(42, frames, links)
	seq, gotF, gotL, err := DecodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || len(gotF) != len(frames) {
		t.Fatalf("seq=%d frames=%d", seq, len(gotF))
	}
	for i := range frames {
		f, g := &frames[i], &gotF[i]
		if f.TS != g.TS || f.Label != g.Label || f.Actor != g.Actor || !bytes.Equal(f.Data, g.Data) {
			t.Fatalf("frame %d differs: %+v vs %+v", i, f, g)
		}
		if gotL[i] != links[i] {
			t.Fatalf("link %d: %d vs %d", i, gotL[i], links[i])
		}
	}
	// Canonical: re-encoding the decoded batch reproduces the bytes.
	if !bytes.Equal(EncodeBatch(seq, gotF, gotL), payload) {
		t.Fatal("re-encode differs from original payload")
	}
	// Decoded Data must not alias the payload buffer.
	payload[len(payload)-1] ^= 0xFF
	last := gotF[len(gotF)-1]
	if last.Data[len(last.Data)-1] == payload[len(payload)-1] {
		t.Fatal("decoded frame data aliases the wire buffer")
	}
}

func TestBatchDecodeRejectsBadFields(t *testing.T) {
	frames := testFrames(2, 4)
	base := EncodeBatch(1, frames, nil)
	mut := func(f func(b []byte)) []byte {
		b := bytes.Clone(base)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"short header":   base[:11],
		"trailing bytes": append(bytes.Clone(base), 0),
		"huge count":     mut(func(b []byte) { b[8], b[9], b[10], b[11] = 0xFF, 0xFF, 0xFF, 0xFF }),
		"bad label":      mut(func(b []byte) { b[12+10] = byte(traffic.NumLabels) }),
		"bad actor":      mut(func(b []byte) { b[12+11] = 2 }),
		"huge dlen":      mut(func(b []byte) { b[12+12], b[12+13], b[12+14], b[12+15] = 0xFF, 0xFF, 0xFF, 0xFF }),
	}
	for name, b := range cases {
		if _, _, _, err := DecodeBatch(b); !errors.Is(err, ErrFrameCorrupt) {
			t.Errorf("%s: got %v, want ErrFrameCorrupt", name, err)
		}
	}
	// Empty batches are legal on the wire (the server acks them as no-ops).
	if _, f, _, err := DecodeBatch(EncodeBatch(5, nil, nil)); err != nil || len(f) != 0 {
		t.Fatalf("empty batch: %d frames, %v", len(f), err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	for _, name := range []string{"ucsb", "a", string(bytes.Repeat([]byte{'x'}, maxCampusName))} {
		campus, version, err := DecodeHello(EncodeHello(name))
		if err != nil || campus != name || version != ProtocolVersion {
			t.Fatalf("hello %q: got %q v%d, %v", name, campus, version, err)
		}
	}
	bad := [][]byte{
		{}, []byte("CLF"), []byte("XXXX\x01\x00\x00\x00"),
		append(EncodeHello("abc"), 'd'), // length shorter than payload
		EncodeHello("abc")[:9],          // payload shorter than length
	}
	for i, b := range bad {
		if _, _, err := DecodeHello(b); !errors.Is(err, ErrFrameCorrupt) {
			t.Errorf("bad hello %d: got %v", i, err)
		}
	}
	version, lastSeq, err := DecodeHelloAck(EncodeHelloAck(991))
	if err != nil || version != ProtocolVersion || lastSeq != 991 {
		t.Fatalf("hello-ack: v%d seq=%d %v", version, lastSeq, err)
	}
	if _, _, err := DecodeHelloAck([]byte{1, 2, 3}); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("short hello-ack: %v", err)
	}
}

func TestSeqRoundTrip(t *testing.T) {
	got, err := DecodeSeq(EncodeSeq(1 << 40))
	if err != nil || got != 1<<40 {
		t.Fatalf("seq: %d %v", got, err)
	}
	if _, err := DecodeSeq([]byte{1}); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("short seq: %v", err)
	}
}
