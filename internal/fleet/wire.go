// Package fleet turns campuslab into a multi-campus system: a binary
// streaming ingest protocol that lets remote campus nodes push labeled
// packet-record batches into a labd data store over TCP, and a federated
// coordinator that runs the Figure-2 development loop across N campus
// stores — per-campus forests merged into a voted ensemble, cross-campus
// train-here/test-there evaluation, and a pooled-feature variant — the
// paper's §5 endgame (many campuses reproducing each other's results)
// made mechanically checkable.
//
// Wire format (all integers little-endian):
//
//	message: type u8 | payload len u32 | payload crc32 u32 | payload
//
//	MsgHello      payload: magic "CLFT" | version u16 |
//	              name len u16 | campus name
//	MsgHelloAck   payload: version u16 | last acked batch seq u64
//	MsgBatch      payload: batch seq u64 | frame count u32, per frame:
//	              ts i64 | link u16 | label u8 | actor u8 | dlen u32 | data
//	MsgAck        payload: batch seq u64 | first packet id u64 |
//	              ingested u32 | shed u32
//	MsgOverloaded payload: batch seq u64   (backpressure: retry later)
//	MsgError      payload: utf-8 reason    (fatal for the stream)
//
// Batches are CRC-framed so a cut connection or bit rot is detected
// before any frame reaches the store: a batch is ingested entirely or not
// at all, and an acked batch rides the store's admission + WAL path, so a
// MsgAck is a durability acknowledgment whenever the serving store is
// durable. Batch sequence numbers are per-campus and strictly
// consecutive; the server remembers the last acked sequence per campus
// and answers a re-sent batch from its ack cache without re-ingesting, so
// client retry after a torn connection never duplicates PacketIDs.
package fleet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"campuslab/internal/traffic"
)

// MsgType tags one framed protocol message.
type MsgType uint8

// Protocol message types.
const (
	MsgHello MsgType = iota + 1
	MsgHelloAck
	MsgBatch
	MsgAck
	MsgOverloaded
	MsgError
	msgTypeEnd
)

// String names the message type (errors, tests).
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello-ack"
	case MsgBatch:
		return "batch"
	case MsgAck:
		return "ack"
	case MsgOverloaded:
		return "overloaded"
	case MsgError:
		return "error"
	}
	return fmt.Sprintf("msg-%d", uint8(t))
}

const (
	// helloMagic opens every stream; a dialer that is not a fleet client
	// is rejected at the first message.
	helloMagic = "CLFT"
	// ProtocolVersion is the handshake version both ends must speak.
	ProtocolVersion = 1

	// msgHeaderSize is type + payload len + payload crc.
	msgHeaderSize = 1 + 4 + 4
	// maxMsgPayload bounds one message; a flipped length byte must not
	// drive a huge allocation (mirrors the WAL's record bound).
	maxMsgPayload = 64 << 20
	// maxFrameData bounds one packet record inside a batch.
	maxFrameData = 1 << 20
	// maxCampusName bounds the handshake's campus name.
	maxCampusName = 255
	// frameFixed is the per-frame fixed field size inside a batch payload.
	frameFixed = 8 + 2 + 1 + 1 + 4
)

// ErrFrameCorrupt reports wire bytes that fail structural validation or
// checksum — truncation, bad type, oversized lengths, CRC mismatch. The
// decoder never panics on hostile input; it returns this.
var ErrFrameCorrupt = errors.New("fleet: frame corrupt")

// AppendMessage appends one framed message to dst and returns it.
func AppendMessage(dst []byte, t MsgType, payload []byte) []byte {
	dst = append(dst, byte(t))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// DecodeMessage parses one framed message from the front of b, returning
// the type, its payload (aliasing b), and the remaining bytes.
func DecodeMessage(b []byte) (t MsgType, payload, rest []byte, err error) {
	if len(b) < msgHeaderSize {
		return 0, nil, nil, fmt.Errorf("%w: short header (%d bytes)", ErrFrameCorrupt, len(b))
	}
	t = MsgType(b[0])
	if t < MsgHello || t >= msgTypeEnd {
		return 0, nil, nil, fmt.Errorf("%w: unknown message type %d", ErrFrameCorrupt, b[0])
	}
	plen := binary.LittleEndian.Uint32(b[1:5])
	if plen > maxMsgPayload {
		return 0, nil, nil, fmt.Errorf("%w: payload claims %d bytes", ErrFrameCorrupt, plen)
	}
	if uint32(len(b)-msgHeaderSize) < plen {
		return 0, nil, nil, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrFrameCorrupt, len(b)-msgHeaderSize, plen)
	}
	payload = b[msgHeaderSize : msgHeaderSize+int(plen)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[5:9]) {
		return 0, nil, nil, fmt.Errorf("%w: payload checksum mismatch", ErrFrameCorrupt)
	}
	return t, payload, b[msgHeaderSize+int(plen):], nil
}

// ReadMessage reads one framed message from r, reusing *scratch for the
// payload. io.EOF at a message boundary is returned as io.EOF; a
// mid-message cut is io.ErrUnexpectedEOF; corruption is ErrFrameCorrupt.
func ReadMessage(r io.Reader, scratch *[]byte) (MsgType, []byte, error) {
	var hdr [msgHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	t := MsgType(hdr[0])
	if t < MsgHello || t >= msgTypeEnd {
		return 0, nil, fmt.Errorf("%w: unknown message type %d", ErrFrameCorrupt, hdr[0])
	}
	plen := binary.LittleEndian.Uint32(hdr[1:5])
	if plen > maxMsgPayload {
		return 0, nil, fmt.Errorf("%w: payload claims %d bytes", ErrFrameCorrupt, plen)
	}
	if cap(*scratch) < int(plen) {
		*scratch = make([]byte, plen)
	}
	payload := (*scratch)[:plen]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[5:9]) {
		return 0, nil, fmt.Errorf("%w: payload checksum mismatch", ErrFrameCorrupt)
	}
	return t, payload, nil
}

// EncodeHello builds the handshake payload for a campus name.
func EncodeHello(campus string) []byte {
	b := make([]byte, 0, 8+len(campus))
	b = append(b, helloMagic...)
	b = binary.LittleEndian.AppendUint16(b, ProtocolVersion)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(campus)))
	return append(b, campus...)
}

// DecodeHello parses a handshake payload into (campus, version).
func DecodeHello(p []byte) (campus string, version uint16, err error) {
	if len(p) < 8 {
		return "", 0, fmt.Errorf("%w: short hello", ErrFrameCorrupt)
	}
	if string(p[:4]) != helloMagic {
		return "", 0, fmt.Errorf("%w: hello magic %q", ErrFrameCorrupt, p[:4])
	}
	version = binary.LittleEndian.Uint16(p[4:6])
	nlen := int(binary.LittleEndian.Uint16(p[6:8]))
	if nlen > maxCampusName || len(p) != 8+nlen {
		return "", 0, fmt.Errorf("%w: hello name length %d in %d payload bytes", ErrFrameCorrupt, nlen, len(p))
	}
	return string(p[8:]), version, nil
}

// EncodeHelloAck builds the server's handshake reply: its protocol
// version and the last batch sequence it has acknowledged for this campus
// (0 = none), so a reconnecting client knows where to resume.
func EncodeHelloAck(lastSeq uint64) []byte {
	b := make([]byte, 0, 10)
	b = binary.LittleEndian.AppendUint16(b, ProtocolVersion)
	return binary.LittleEndian.AppendUint64(b, lastSeq)
}

// DecodeHelloAck parses the handshake reply.
func DecodeHelloAck(p []byte) (version uint16, lastSeq uint64, err error) {
	if len(p) != 10 {
		return 0, 0, fmt.Errorf("%w: hello-ack length %d", ErrFrameCorrupt, len(p))
	}
	return binary.LittleEndian.Uint16(p[0:2]), binary.LittleEndian.Uint64(p[2:10]), nil
}

// EncodeBatch serializes a batch payload: the client-assigned sequence
// number and every frame's stored fields (timestamp, link, ground-truth
// label, actor bit, raw bytes). links may be nil (all link 0). The
// encoding is canonical: DecodeBatch followed by EncodeBatch reproduces
// the input bytes exactly.
func EncodeBatch(seq uint64, frames []traffic.Frame, links []uint16) []byte {
	need := 12
	for i := range frames {
		need += frameFixed + len(frames[i].Data)
	}
	b := make([]byte, 0, need)
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(frames)))
	for i := range frames {
		f := &frames[i]
		b = binary.LittleEndian.AppendUint64(b, uint64(f.TS))
		var link uint16
		if links != nil {
			link = links[i]
		}
		b = binary.LittleEndian.AppendUint16(b, link)
		actor := byte(0)
		if f.Actor {
			actor = 1
		}
		b = append(b, byte(f.Label), actor)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(f.Data)))
		b = append(b, f.Data...)
	}
	return b
}

// DecodeBatch parses a batch payload. Frame Data slices are copied out of
// p, so the caller may reuse its read buffer. Trailing bytes are
// corruption: the encoding is canonical.
func DecodeBatch(p []byte) (seq uint64, frames []traffic.Frame, links []uint16, err error) {
	if len(p) < 12 {
		return 0, nil, nil, fmt.Errorf("%w: short batch header", ErrFrameCorrupt)
	}
	seq = binary.LittleEndian.Uint64(p[0:8])
	count := binary.LittleEndian.Uint32(p[8:12])
	if count > uint32((len(p)-12)/frameFixed) {
		return 0, nil, nil, fmt.Errorf("%w: batch claims %d frames in %d bytes", ErrFrameCorrupt, count, len(p))
	}
	frames = make([]traffic.Frame, 0, count)
	links = make([]uint16, 0, count)
	off := 12
	for i := uint32(0); i < count; i++ {
		if len(p)-off < frameFixed {
			return 0, nil, nil, fmt.Errorf("%w: truncated frame %d", ErrFrameCorrupt, i)
		}
		ts := time.Duration(binary.LittleEndian.Uint64(p[off : off+8]))
		link := binary.LittleEndian.Uint16(p[off+8 : off+10])
		label := traffic.Label(p[off+10])
		if label >= traffic.NumLabels {
			return 0, nil, nil, fmt.Errorf("%w: frame %d label %d", ErrFrameCorrupt, i, p[off+10])
		}
		actorB := p[off+11]
		if actorB > 1 {
			return 0, nil, nil, fmt.Errorf("%w: frame %d actor byte %d", ErrFrameCorrupt, i, actorB)
		}
		dlen := binary.LittleEndian.Uint32(p[off+12 : off+16])
		off += frameFixed
		if dlen > maxFrameData || len(p)-off < int(dlen) {
			return 0, nil, nil, fmt.Errorf("%w: frame %d claims %d data bytes", ErrFrameCorrupt, i, dlen)
		}
		data := make([]byte, dlen)
		copy(data, p[off:off+int(dlen)])
		off += int(dlen)
		frames = append(frames, traffic.Frame{TS: ts, Data: data, Label: label, Actor: actorB == 1})
		links = append(links, link)
	}
	if off != len(p) {
		return 0, nil, nil, fmt.Errorf("%w: %d trailing batch bytes", ErrFrameCorrupt, len(p)-off)
	}
	return seq, frames, links, nil
}

// Ack is the server's acknowledgment of one ingested batch.
type Ack struct {
	// Seq echoes the batch sequence number.
	Seq uint64
	// First is the PacketID of the first stored frame (meaningless when
	// Ingested == 0); stored frames take consecutive IDs.
	First uint64
	// Ingested counts frames stored (durably, when the store has a WAL).
	Ingested uint32
	// Shed counts low-priority frames the admission gate dropped.
	Shed uint32
}

// EncodeAck serializes an acknowledgment payload.
func EncodeAck(a Ack) []byte {
	b := make([]byte, 0, 24)
	b = binary.LittleEndian.AppendUint64(b, a.Seq)
	b = binary.LittleEndian.AppendUint64(b, a.First)
	b = binary.LittleEndian.AppendUint32(b, a.Ingested)
	return binary.LittleEndian.AppendUint32(b, a.Shed)
}

// DecodeAck parses an acknowledgment payload.
func DecodeAck(p []byte) (Ack, error) {
	if len(p) != 24 {
		return Ack{}, fmt.Errorf("%w: ack length %d", ErrFrameCorrupt, len(p))
	}
	return Ack{
		Seq:      binary.LittleEndian.Uint64(p[0:8]),
		First:    binary.LittleEndian.Uint64(p[8:16]),
		Ingested: binary.LittleEndian.Uint32(p[16:20]),
		Shed:     binary.LittleEndian.Uint32(p[20:24]),
	}, nil
}

// EncodeSeq serializes a bare sequence payload (MsgOverloaded).
func EncodeSeq(seq uint64) []byte {
	return binary.LittleEndian.AppendUint64(make([]byte, 0, 8), seq)
}

// DecodeSeq parses a bare sequence payload.
func DecodeSeq(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: seq length %d", ErrFrameCorrupt, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}
