package control

import (
	"testing"

	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

func newParser() *packet.FlowParser { return packet.NewFlowParser() }

// parseAll pre-parses frames into summaries for benchmarks.
func parseAll(tb testing.TB, fp *packet.FlowParser, frames []traffic.Frame) []packet.Summary {
	tb.Helper()
	out := make([]packet.Summary, len(frames))
	for i := range frames {
		if err := fp.Parse(frames[i].Data, &out[i]); err != nil {
			tb.Fatalf("frame %d: %v", i, err)
		}
	}
	return out
}
