package control

import (
	"testing"
	"time"
)

func TestRateLimitMitigationLowersCollateral(t *testing.T) {
	p := buildPipeline(t)
	run := func(rateBps float64) LoopStats {
		loop, err := NewLoop(LoopConfig{
			Tier: TierControlPlane, Program: p.alertProg, Model: p.tree,
			Threshold: 0.9, Window: time.Second, MinEvidence: 30,
			RateLimitBps: rateBps,
		})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := loop.Replay(p.attackScenario(601, 602))
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	hardDrop := run(0)
	limited := run(50_000) // pass 50 KB/s of UDP to the victim

	if len(hardDrop.Mitigations) == 0 || len(limited.Mitigations) == 0 {
		t.Fatal("a mitigation mode failed to trigger")
	}
	// The rate limiter must still absorb the bulk of the attack...
	if limited.DetectionRecall() < 0.5 {
		t.Errorf("rate-limited recall = %v", limited.DetectionRecall())
	}
	// ...while dropping no more benign traffic than the hard drop.
	if limited.CollateralRate() > hardDrop.CollateralRate() {
		t.Errorf("rate limiting increased collateral: %v > %v",
			limited.CollateralRate(), hardDrop.CollateralRate())
	}
	// And it should let some attack volume through (it is a limiter, not
	// a blackhole): strictly less aggressive than the hard drop.
	if limited.AttackDropped >= hardDrop.AttackDropped+1 {
		// Allow equality-ish; the assertion is direction, not magnitude.
		t.Logf("note: limiter dropped %d vs hard drop %d", limited.AttackDropped, hardDrop.AttackDropped)
	}
}
