package control

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"campuslab/internal/dataplane"
	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

// LoopConfig wires a detection/mitigation control loop.
type LoopConfig struct {
	// Tier selects where inference runs.
	Tier Tier
	// TierModel overrides the default latency envelope (zero = default).
	TierModel *TierModel
	// Program is the compiled in-switch classifier. For TierDataPlane
	// its attack rules should be drops; for the other tiers alerts/punts.
	Program *dataplane.Program
	// Model is the off-switch classifier (extracted tree for the control
	// plane, black-box forest for the cloud). Ignored by TierDataPlane.
	Model ml.Classifier
	// Threshold is the per-victim confidence required before mitigation
	// (the paper's "at least 90%" example).
	Threshold float64
	// Window is the confidence-aggregation window.
	Window time.Duration
	// MinEvidence is the minimum suspicious packets per window before a
	// confidence is considered meaningful.
	MinEvidence int
	// FilterScope narrows installed mitigations: protocol to block
	// toward the victim (default UDP, matching the DNS-amp task).
	FilterProto packet.IPProtocol
	// RateLimitBps, when positive, makes React install a token-bucket
	// meter (pass this many bytes/second toward the victim, drop the
	// excess) instead of a hard drop — the lower-collateral mitigation.
	RateLimitBps float64
	// Resources sizes the switch (zero = DefaultResources).
	Resources *dataplane.Resources
}

// Mitigation records one react action.
type Mitigation struct {
	Victim      netip.Addr
	InstalledAt time.Duration // when the filter became effective
	DecidedAt   time.Duration // when confidence crossed the threshold
	Confidence  float64
	Evidence    int // suspicious packets that contributed
}

// LoopStats summarizes a replay through the loop.
type LoopStats struct {
	Packets     uint64
	InlineDrops uint64 // dropped by the program (dataplane tier)
	FilterDrops uint64 // dropped by installed mitigations
	Escalations uint64 // packets sent to the inference tier
	Mitigations []Mitigation
	InferMean   time.Duration
	InferMax    time.Duration
	// per ground-truth accounting (filled when labels supplied)
	AttackPackets uint64
	AttackDropped uint64
	BenignPackets uint64
	BenignDropped uint64
}

// DetectionRecall is the fraction of attack packets dropped.
func (s *LoopStats) DetectionRecall() float64 {
	if s.AttackPackets == 0 {
		return 0
	}
	return float64(s.AttackDropped) / float64(s.AttackPackets)
}

// CollateralRate is the fraction of benign packets dropped.
func (s *LoopStats) CollateralRate() float64 {
	if s.BenignPackets == 0 {
		return 0
	}
	return float64(s.BenignDropped) / float64(s.BenignPackets)
}

// Loop is the running control loop bound to one switch.
type Loop struct {
	cfg    LoopConfig
	sw     *dataplane.Switch
	engine *InferenceEngine
	stats  LoopStats

	// per-victim evidence accumulation
	windows map[netip.Addr]*victimWindow
	// verdicts in flight from the inference tier
	pending   []pendingVerdict
	mitigated map[netip.Addr]bool
	featBuf   []float64
}

type victimWindow struct {
	start      time.Duration
	suspicious int
	confSum    float64
}

type pendingVerdict struct {
	readyAt time.Duration
	victim  netip.Addr
	conf    float64
	attack  bool
}

// NewLoop validates cfg and builds the loop.
func NewLoop(cfg LoopConfig) (*Loop, error) {
	if cfg.Program == nil {
		return nil, fmt.Errorf("control: Program is required")
	}
	if cfg.Tier != TierDataPlane && cfg.Model == nil {
		return nil, fmt.Errorf("control: %v tier requires a Model", cfg.Tier)
	}
	if cfg.Threshold <= 0 || cfg.Threshold > 1 {
		cfg.Threshold = 0.9
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.MinEvidence <= 0 {
		cfg.MinEvidence = 20
	}
	if cfg.FilterProto == 0 {
		cfg.FilterProto = packet.IPProtocolUDP
	}
	res := dataplane.DefaultResources()
	if cfg.Resources != nil {
		res = *cfg.Resources
	}
	sw := dataplane.NewSwitch(res)
	if err := sw.Load(cfg.Program); err != nil {
		return nil, err
	}
	tm := DefaultTierModels()[cfg.Tier]
	if cfg.TierModel != nil {
		tm = *cfg.TierModel
	}
	return &Loop{
		cfg:       cfg,
		sw:        sw,
		engine:    NewInferenceEngine(tm),
		windows:   make(map[netip.Addr]*victimWindow),
		mitigated: make(map[netip.Addr]bool),
		featBuf:   make([]float64, len(features.PacketSchema)),
	}, nil
}

// Switch exposes the underlying switch (telemetry, tests).
func (l *Loop) Switch() *dataplane.Switch { return l.sw }

// BenignDroppedSoFar exposes the live benign-collateral counter for
// watchdogs (canary deployments) that must act mid-replay.
func (l *Loop) BenignDroppedSoFar() uint64 { return l.stats.BenignDropped }

// Feed runs one labeled frame through the loop at its timestamp and
// reports whether the packet survived (was not dropped).
func (l *Loop) Feed(f *traffic.Frame, s *packet.Summary) bool {
	l.drainPending(f.TS)
	l.stats.Packets++
	isAttack := f.Label != traffic.LabelBenign
	if isAttack {
		l.stats.AttackPackets++
	} else {
		l.stats.BenignPackets++
	}

	v := l.sw.ProcessAt(f.TS, s)
	dropped := v.Action == dataplane.ActionDrop
	if dropped {
		if v.FilterHit {
			l.stats.FilterDrops++
		} else {
			l.stats.InlineDrops++
		}
	}

	// Escalate alerts/punts to the inference tier (detect-then-mitigate).
	if l.cfg.Tier != TierDataPlane &&
		(v.Action == dataplane.ActionAlert || v.Action == dataplane.ActionPunt) {
		l.escalate(f.TS, s)
	}

	if dropped {
		if isAttack {
			l.stats.AttackDropped++
		} else {
			l.stats.BenignDropped++
		}
		return false
	}
	return true
}

// escalate submits the packet to the tier model and schedules the verdict.
func (l *Loop) escalate(ts time.Duration, s *packet.Summary) {
	l.stats.Escalations++
	readyAt := l.engine.Submit(ts)
	features.PacketVector(s, l.featBuf)
	proba := l.cfg.Model.Proba(l.featBuf)
	attackConf := 0.0
	for c := 1; c < len(proba); c++ {
		attackConf += proba[c]
	}
	l.pending = append(l.pending, pendingVerdict{
		readyAt: readyAt,
		victim:  s.Tuple.DstIP,
		conf:    attackConf,
		attack:  attackConf >= 0.5,
	})
}

// drainPending applies verdicts whose latency has elapsed, accumulating
// evidence and installing mitigations when the threshold is crossed.
func (l *Loop) drainPending(now time.Duration) {
	if len(l.pending) == 0 {
		return
	}
	sort.SliceStable(l.pending, func(i, j int) bool { return l.pending[i].readyAt < l.pending[j].readyAt })
	keep := l.pending[:0]
	for _, pv := range l.pending {
		if pv.readyAt > now {
			keep = append(keep, pv)
			continue
		}
		l.applyVerdict(pv)
	}
	l.pending = keep
}

func (l *Loop) applyVerdict(pv pendingVerdict) {
	if !pv.attack || l.mitigated[pv.victim] {
		return
	}
	w := l.windows[pv.victim]
	if w == nil || pv.readyAt-w.start > l.cfg.Window {
		w = &victimWindow{start: pv.readyAt}
		l.windows[pv.victim] = w
	}
	w.suspicious++
	w.confSum += pv.conf
	if w.suspicious < l.cfg.MinEvidence {
		return
	}
	conf := w.confSum / float64(w.suspicious)
	if conf < l.cfg.Threshold {
		return
	}
	// React: install the mitigation; effective after one controller RTT.
	installAt := pv.readyAt + l.engine.model.RTT/2
	key := dataplane.FilterKey{DstIP: pv.victim, Proto: l.cfg.FilterProto}
	var err error
	if l.cfg.RateLimitBps > 0 {
		err = l.sw.InstallRateLimit(key, l.cfg.RateLimitBps, 4*l.cfg.RateLimitBps)
	} else {
		err = l.sw.InstallFilter(key, dataplane.ActionDrop)
	}
	if err != nil {
		return // table full: mitigation impossible, keep accumulating
	}
	l.mitigated[pv.victim] = true
	l.stats.Mitigations = append(l.stats.Mitigations, Mitigation{
		Victim:      pv.victim,
		DecidedAt:   pv.readyAt,
		InstalledAt: installAt,
		Confidence:  conf,
		Evidence:    w.suspicious,
	})
}

// Finish flushes in-flight verdicts and returns final statistics.
func (l *Loop) Finish() LoopStats {
	l.drainPending(1 << 62)
	_, mean, max := l.engine.LatencyStats()
	l.stats.InferMean = mean
	l.stats.InferMax = max
	return l.stats
}

// Replay drives a whole generator through the loop, parsing frames once.
func (l *Loop) Replay(gen traffic.Generator) (LoopStats, error) {
	fp := packet.NewFlowParser()
	var f traffic.Frame
	var s packet.Summary
	for gen.Next(&f) {
		if err := fp.Parse(f.Data, &s); err != nil {
			continue // non-IP or malformed: not the loop's problem
		}
		l.Feed(&f, &s)
	}
	return l.Finish(), nil
}
