package control

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"campuslab/internal/dataplane"
	"campuslab/internal/faults"
	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/obs"
	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

// LoopConfig wires a detection/mitigation control loop.
type LoopConfig struct {
	// Tier selects where inference runs.
	Tier Tier
	// TierModel overrides the default latency envelope (zero = default).
	TierModel *TierModel
	// Program is the compiled in-switch classifier. For TierDataPlane
	// its attack rules should be drops; for the other tiers alerts/punts.
	// Optional when Ensemble is set.
	Program *dataplane.Program
	// Ensemble, when set, installs a compiled whole-ensemble pipeline as
	// the switch's classification stage (TierDataPlane ensemble mode): the
	// forest/boost verdicts themselves run at data-plane latency instead
	// of only the extracted tree. It takes precedence over Program for
	// classification; an also-supplied Program stays loaded underneath.
	Ensemble *dataplane.EnsembleProgram
	// Model is the off-switch classifier (extracted tree for the control
	// plane, black-box forest for the cloud). Ignored by TierDataPlane.
	Model ml.Classifier
	// Threshold is the per-victim confidence required before mitigation
	// (the paper's "at least 90%" example).
	Threshold float64
	// Window is the confidence-aggregation window.
	Window time.Duration
	// MinEvidence is the minimum suspicious packets per window before a
	// confidence is considered meaningful.
	MinEvidence int
	// FilterScope narrows installed mitigations: protocol to block
	// toward the victim (default UDP, matching the DNS-amp task).
	FilterProto packet.IPProtocol
	// RateLimitBps, when positive, makes React install a token-bucket
	// meter (pass this many bytes/second toward the victim, drop the
	// excess) instead of a hard drop — the lower-collateral mitigation.
	RateLimitBps float64
	// Resources sizes the switch (zero = DefaultResources).
	Resources *dataplane.Resources

	// Faults injects failures into the loop's instrumented points — the
	// dataplane install path and each tier's inference — for chaos road
	// tests. nil = always healthy, at zero cost.
	Faults faults.Injector
	// Retry bounds the React install retry loop (zero value = defaults:
	// 4 attempts, 2ms base backoff doubling to 100ms, jitter seed 1).
	Retry RetryPolicy
	// Breaker parameterizes the per-tier circuit breakers (zero value =
	// defaults: trip after 5 consecutive failures, 5s cooldown).
	Breaker BreakerConfig
	// Fallbacks is the ordered degradation chain behind the primary
	// tier: when a tier's breaker is open, inference moves to the next
	// entry (data plane → control plane → cloud), paying its latency.
	Fallbacks []FallbackTier
}

// Mitigation records one react action.
type Mitigation struct {
	Victim      netip.Addr
	InstalledAt time.Duration // when the filter became effective
	DecidedAt   time.Duration // when confidence crossed the threshold
	Confidence  float64
	Evidence    int // suspicious packets that contributed
}

// LoopStats summarizes a replay through the loop.
type LoopStats struct {
	Packets     uint64
	InlineDrops uint64 // dropped by the program (dataplane tier)
	FilterDrops uint64 // dropped by installed mitigations
	Escalations uint64 // packets sent to the inference tier
	Mitigations []Mitigation
	InferMean   time.Duration
	InferMax    time.Duration
	// per ground-truth accounting (filled when labels supplied)
	AttackPackets uint64
	AttackDropped uint64
	BenignPackets uint64
	BenignDropped uint64

	// Resilience accounting — all zero in a healthy run.
	InstallRetries     uint64 // install re-attempts after transient faults
	DroppedMitigations uint64 // mitigation decisions abandoned after the retry budget
	InstallFailures    uint64 // permanent install failures (table full / injected)
	InferFailures      uint64 // inference requests lost to tier faults
	FallbackInferences uint64 // inferences served by a degraded (non-primary) tier
	BreakerTrips       uint64 // circuit-breaker openings across all tiers
}

// DetectionRecall is the fraction of attack packets dropped.
func (s *LoopStats) DetectionRecall() float64 {
	if s.AttackPackets == 0 {
		return 0
	}
	return float64(s.AttackDropped) / float64(s.AttackPackets)
}

// CollateralRate is the fraction of benign packets dropped.
func (s *LoopStats) CollateralRate() float64 {
	if s.BenignPackets == 0 {
		return 0
	}
	return float64(s.BenignDropped) / float64(s.BenignPackets)
}

// Loop is the running control loop bound to one switch.
type Loop struct {
	cfg    LoopConfig
	sw     *dataplane.Switch
	tiers  []*tierRuntime // index 0 = primary, then the fallback chain
	retry  RetryPolicy
	jitter *rand.Rand
	stats  LoopStats
	// ctr is the loop's operational counter block — the source of truth
	// for the resilience counters; stats' mirror fields are views filled
	// at Finish.
	ctr *loopCounters

	// per-victim evidence accumulation
	windows map[netip.Addr]*victimWindow
	// verdicts in flight from the inference tier
	pending   []pendingVerdict
	mitigated map[netip.Addr]bool
	featBuf   []float64
	// verdictBuf holds FeedBatch's precomputed switch verdicts.
	verdictBuf []dataplane.Verdict
}

type victimWindow struct {
	start      time.Duration
	suspicious int
	confSum    float64
}

type pendingVerdict struct {
	readyAt time.Duration
	victim  netip.Addr
	conf    float64
	attack  bool
	// installRTT is the verdict tier's RTT: a mitigation decided from
	// this verdict becomes effective after half of it (controller→switch).
	installRTT time.Duration
}

// NewLoop validates cfg and builds the loop.
func NewLoop(cfg LoopConfig) (*Loop, error) {
	if cfg.Program == nil && cfg.Ensemble == nil {
		return nil, fmt.Errorf("control: a Program or an Ensemble is required")
	}
	if cfg.Tier != TierDataPlane && cfg.Model == nil {
		return nil, fmt.Errorf("control: %v tier requires a Model", cfg.Tier)
	}
	if cfg.Threshold <= 0 || cfg.Threshold > 1 {
		cfg.Threshold = 0.9
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.MinEvidence <= 0 {
		cfg.MinEvidence = 20
	}
	if cfg.FilterProto == 0 {
		cfg.FilterProto = packet.IPProtocolUDP
	}
	res := dataplane.DefaultResources()
	if cfg.Resources != nil {
		res = *cfg.Resources
	}
	sw := dataplane.NewSwitch(res)
	if cfg.Program != nil {
		if err := sw.Load(cfg.Program); err != nil {
			return nil, err
		}
	}
	if cfg.Ensemble != nil {
		if err := sw.LoadEnsemble(cfg.Ensemble); err != nil {
			return nil, err
		}
	}
	if cfg.Faults != nil {
		sw.SetFaultInjector(cfg.Faults)
	}
	defaults := DefaultTierModels()
	brk := cfg.Breaker.withDefaults()
	ctr := newLoopCounters()
	newTier := func(t Tier, model ml.Classifier, override *TierModel) *tierRuntime {
		tm := defaults[t]
		if override != nil {
			tm = *override
		}
		return &tierRuntime{
			tier:    t,
			model:   model,
			engine:  NewInferenceEngine(tm),
			breaker: breaker{cfg: brk, ctr: ctr},
			opName:  faults.OpInfer(t.String()),
		}
	}
	tiers := []*tierRuntime{newTier(cfg.Tier, cfg.Model, cfg.TierModel)}
	for _, fb := range cfg.Fallbacks {
		if fb.Tier == TierDataPlane {
			return nil, fmt.Errorf("control: the data plane cannot serve as a fallback inference tier")
		}
		if fb.Model == nil {
			return nil, fmt.Errorf("control: fallback %v tier requires a Model", fb.Tier)
		}
		tiers = append(tiers, newTier(fb.Tier, fb.Model, fb.TierModel))
	}
	retry := cfg.Retry.withDefaults()
	return &Loop{
		cfg:       cfg,
		sw:        sw,
		tiers:     tiers,
		retry:     retry,
		ctr:       ctr,
		jitter:    rand.New(rand.NewSource(retry.Seed)),
		windows:   make(map[netip.Addr]*victimWindow),
		mitigated: make(map[netip.Addr]bool),
		featBuf:   make([]float64, len(features.PacketSchema)),
	}, nil
}

// Switch exposes the underlying switch (telemetry, tests).
func (l *Loop) Switch() *dataplane.Switch { return l.sw }

// BenignDroppedSoFar exposes the live benign-collateral counter for
// watchdogs (canary deployments) that must act mid-replay.
func (l *Loop) BenignDroppedSoFar() uint64 { return l.stats.BenignDropped }

// Feed runs one labeled frame through the loop at its timestamp and
// reports whether the packet survived (was not dropped).
func (l *Loop) Feed(f *traffic.Frame, s *packet.Summary) bool {
	l.drainPending(f.TS)
	v := l.sw.ProcessAt(f.TS, s)
	return l.consume(f, s, v)
}

// FeedBatch runs a batch of labeled frames (with pre-parsed summaries)
// through the loop, filling keep[i] with whether frame i survived.
// Semantically identical to calling Feed per frame in order; the win is
// that the switch sense stage is precomputed for the whole batch from
// one state snapshot. Because a mitigation installed while draining
// pending verdicts must affect the packets behind it, the precompute is
// abandoned the moment the switch state generation moves (or when
// stateful meters make classification impure) and the remainder of the
// batch falls back to the per-packet path.
func (l *Loop) FeedBatch(frames []*traffic.Frame, sums []*packet.Summary, keep []bool) {
	defer obs.Default.StartSpan("fastloop")()
	n := len(frames)
	if cap(l.verdictBuf) < n {
		l.verdictBuf = make([]dataplane.Verdict, n)
	}
	vs := l.verdictBuf[:n]
	gen, pre := l.sw.ClassifyBatch(sums, vs)
	for i := 0; i < n; i++ {
		f, s := frames[i], sums[i]
		l.drainPending(f.TS)
		if pre && l.sw.StateGen() != gen {
			pre = false
		}
		var v dataplane.Verdict
		if pre {
			v = vs[i]
			l.sw.CommitVerdict(v)
		} else {
			v = l.sw.ProcessAt(f.TS, s)
		}
		keep[i] = l.consume(f, s, v)
	}
}

// consume applies the loop logic — ground-truth accounting, data-plane
// fault handling, escalation, drop bookkeeping — to one switch verdict.
func (l *Loop) consume(f *traffic.Frame, s *packet.Summary, v dataplane.Verdict) bool {
	l.stats.Packets++
	isAttack := f.Label != traffic.LabelBenign
	if isAttack {
		l.stats.AttackPackets++
	} else {
		l.stats.BenignPackets++
	}

	// Data-plane-tier inference faults: an inline classification drop is
	// the data plane's "Infer" verdict. When that verdict is lost (an
	// injected fault) or untrusted (the data-plane breaker is open), the
	// packet is not dropped; with a fallback chain configured it is
	// escalated to the next tier instead — fail-open with degradation,
	// exactly what a broken classification stage forces on an operator.
	if l.cfg.Tier == TierDataPlane && v.Action == dataplane.ActionDrop && !v.FilterHit {
		dp := l.tiers[0]
		lost := false
		if !dp.breaker.allow(f.TS) {
			lost = true
		} else if l.cfg.Faults != nil {
			if err := l.cfg.Faults.Fail(dp.opName); err != nil {
				dp.breaker.failure(f.TS)
				l.ctr.inferFailures.Inc()
				lost = true
			} else {
				dp.breaker.success()
			}
		}
		if lost {
			v = dataplane.Verdict{Action: dataplane.ActionPermit, RuleIndex: v.RuleIndex}
			if len(l.tiers) > 1 {
				l.escalate(f.TS, s)
			}
		}
	}

	dropped := v.Action == dataplane.ActionDrop
	if dropped {
		if v.FilterHit {
			l.stats.FilterDrops++
		} else {
			l.stats.InlineDrops++
		}
	}

	// Escalate alerts/punts to the inference tier (detect-then-mitigate).
	if l.cfg.Tier != TierDataPlane &&
		(v.Action == dataplane.ActionAlert || v.Action == dataplane.ActionPunt) {
		l.escalate(f.TS, s)
	}

	if dropped {
		if isAttack {
			l.stats.AttackDropped++
		} else {
			l.stats.BenignDropped++
		}
		return false
	}
	return true
}

// inferTier returns the first tier able to serve an escalated inference
// at virtual time now: it must hold a model (the data-plane primary does
// not) and its breaker must admit the request. nil when the whole chain
// is down.
func (l *Loop) inferTier(now time.Duration) *tierRuntime {
	for _, tr := range l.tiers {
		if tr.model == nil {
			continue
		}
		if tr.breaker.allow(now) {
			return tr
		}
	}
	return nil
}

// escalate submits the packet to the first available inference tier and
// schedules the verdict. Injected tier faults lose the request (the
// verdict never arrives — a timeout in a real deployment) and feed that
// tier's breaker.
func (l *Loop) escalate(ts time.Duration, s *packet.Summary) {
	l.ctr.escalations.Inc()
	tr := l.inferTier(ts)
	if tr == nil {
		l.ctr.inferFailures.Inc()
		return // every tier down: the verdict is lost
	}
	if l.cfg.Faults != nil {
		if err := l.cfg.Faults.Fail(tr.opName); err != nil {
			tr.breaker.failure(ts)
			l.ctr.inferFailures.Inc()
			return
		}
		tr.breaker.success()
	}
	if tr != l.tiers[0] {
		l.ctr.fallbackInferences.Inc()
	}
	readyAt := tr.engine.Submit(ts)
	features.PacketVector(s, l.featBuf)
	proba := tr.model.Proba(l.featBuf)
	attackConf := 0.0
	for c := 1; c < len(proba); c++ {
		attackConf += proba[c]
	}
	l.pending = append(l.pending, pendingVerdict{
		readyAt:    readyAt,
		victim:     s.Tuple.DstIP,
		conf:       attackConf,
		attack:     attackConf >= 0.5,
		installRTT: tr.engine.model.RTT,
	})
}

// drainPending applies verdicts whose latency has elapsed, accumulating
// evidence and installing mitigations when the threshold is crossed.
func (l *Loop) drainPending(now time.Duration) {
	if len(l.pending) == 0 {
		return
	}
	sort.SliceStable(l.pending, func(i, j int) bool { return l.pending[i].readyAt < l.pending[j].readyAt })
	keep := l.pending[:0]
	for _, pv := range l.pending {
		if pv.readyAt > now {
			keep = append(keep, pv)
			continue
		}
		l.applyVerdict(pv)
	}
	l.pending = keep
}

func (l *Loop) applyVerdict(pv pendingVerdict) {
	if !pv.attack || l.mitigated[pv.victim] {
		return
	}
	w := l.windows[pv.victim]
	if w == nil || pv.readyAt-w.start > l.cfg.Window {
		w = &victimWindow{start: pv.readyAt}
		l.windows[pv.victim] = w
	}
	w.suspicious++
	w.confSum += pv.conf
	if w.suspicious < l.cfg.MinEvidence {
		return
	}
	conf := w.confSum / float64(w.suspicious)
	if conf < l.cfg.Threshold {
		return
	}
	// React: install the mitigation; effective after one controller RTT,
	// plus backoff for every transient install failure retried.
	installAt, ok := l.installMitigation(pv.victim, pv.readyAt+pv.installRTT/2)
	if !ok {
		return // mitigation impossible right now: keep accumulating
	}
	l.mitigated[pv.victim] = true
	l.ctr.mitigations.Inc()
	l.stats.Mitigations = append(l.stats.Mitigations, Mitigation{
		Victim:      pv.victim,
		DecidedAt:   pv.readyAt,
		InstalledAt: installAt,
		Confidence:  conf,
		Evidence:    w.suspicious,
	})
}

// installMitigation drives the React install with the retry policy:
// transient failures back off exponentially (with deterministic jitter)
// in virtual time and retry up to the attempt budget; permanent failures
// (table full, injected permanent faults) abort immediately. Returns the
// effective install time and whether the install landed.
func (l *Loop) installMitigation(victim netip.Addr, installAt time.Duration) (time.Duration, bool) {
	key := dataplane.FilterKey{DstIP: victim, Proto: l.cfg.FilterProto}
	backoff := l.retry.Base
	for attempt := 1; ; attempt++ {
		var err error
		if l.cfg.RateLimitBps > 0 {
			err = l.sw.InstallRateLimit(key, l.cfg.RateLimitBps, 4*l.cfg.RateLimitBps)
		} else {
			err = l.sw.InstallFilter(key, dataplane.ActionDrop)
		}
		if err == nil {
			return installAt, true
		}
		if !faults.IsTransient(err) {
			l.ctr.installFailures.Inc()
			return 0, false
		}
		if attempt >= l.retry.MaxAttempts {
			l.ctr.droppedMitigations.Inc()
			return 0, false
		}
		l.ctr.installRetries.Inc()
		var delay time.Duration
		delay, backoff = l.retry.Backoff(backoff, l.jitter)
		installAt += delay
	}
}

// Finish flushes in-flight verdicts and returns final statistics. The
// resilience fields of LoopStats are views over the loop's registry
// counter block, filled here.
func (l *Loop) Finish() LoopStats {
	l.drainPending(1 << 62)
	var requests, trips uint64
	var total, max time.Duration
	for _, tr := range l.tiers {
		n, _, mx := tr.engine.LatencyStats()
		requests += n
		total += tr.engine.totalLat
		if mx > max {
			max = mx
		}
		trips += tr.breaker.trips
	}
	l.stats.Escalations = l.ctr.escalations.Value()
	l.stats.InstallRetries = l.ctr.installRetries.Value()
	l.stats.DroppedMitigations = l.ctr.droppedMitigations.Value()
	l.stats.InstallFailures = l.ctr.installFailures.Value()
	l.stats.InferFailures = l.ctr.inferFailures.Value()
	l.stats.FallbackInferences = l.ctr.fallbackInferences.Value()
	l.stats.BreakerTrips = l.ctr.breakerOpens.Value()
	if trips != l.stats.BreakerTrips {
		// Structural audit: per-breaker trip counts and the loop block
		// must agree; disagreement means an uninstrumented trip site.
		panic("control: breaker trip accounting diverged")
	}
	if requests > 0 {
		l.stats.InferMean = total / time.Duration(requests)
		l.stats.InferMax = max
	}
	return l.stats
}

// ReplayBatch is how many parsed frames Replay accumulates before one
// FeedBatch call — large enough to amortize the switch dispatch, small
// enough to keep the working set in cache.
const ReplayBatch = 256

// Replay drives a whole generator through the loop, parsing frames once
// and feeding them in batches of ReplayBatch.
func (l *Loop) Replay(gen traffic.Generator) (LoopStats, error) {
	fp := packet.NewFlowParser()
	var (
		frames [ReplayBatch]traffic.Frame
		sums   [ReplayBatch]packet.Summary
		fptrs  [ReplayBatch]*traffic.Frame
		sptrs  [ReplayBatch]*packet.Summary
		keep   [ReplayBatch]bool
	)
	for i := range fptrs {
		fptrs[i], sptrs[i] = &frames[i], &sums[i]
	}
	n := 0
	for gen.Next(&frames[n]) {
		if err := fp.Parse(frames[n].Data, &sums[n]); err != nil {
			continue // non-IP or malformed: not the loop's problem
		}
		n++
		if n == ReplayBatch {
			l.FeedBatch(fptrs[:n], sptrs[:n], keep[:n])
			n = 0
		}
	}
	if n > 0 {
		l.FeedBatch(fptrs[:n], sptrs[:n], keep[:n])
	}
	return l.Finish(), nil
}
