package control

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"campuslab/internal/features"
	"campuslab/internal/obs"
)

// The model lifecycle is the self-healing layer: a state machine that
// watches the drift detector, retrains on a virtual-clock cadence, gates
// every candidate model behind a validation check (the road-test canary),
// and rolls back to a persisted last-known-good bundle when the live
// model goes bad. States:
//
//	healthy ──drift──▶ degraded ──validation fails / drift persists──▶ lame-duck
//	   ▲                   │                                              │
//	   └──── candidate promoted ◀──── retrain + validate ◀────────────────┘
//
// healthy: the live model matches its training distribution. degraded:
// drift detected; an out-of-cycle retrain is scheduled. lame-duck: the
// live model is actively wrong (validation failed or drift persisted);
// the lifecycle has rolled back to the last-known-good bundle and serves
// that while retraining. All transitions are pure functions of the
// observed windows and the injected callbacks, so a seeded run produces
// the identical transition log every time.

// LifecycleState is the model's operational health.
type LifecycleState int32

const (
	// StateHealthy: no drift; periodic retrain cadence only.
	StateHealthy LifecycleState = iota
	// StateDegraded: drift detected; retrain scheduled now.
	StateDegraded
	// StateLameDuck: live model failed validation or drift persisted;
	// last-known-good is serving while retrain attempts continue.
	StateLameDuck
)

// String names the state (healthz, transition log).
func (s LifecycleState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	default:
		return "lame-duck"
	}
}

// LifecycleConfig wires a lifecycle. Retrain, Validate, and Activate are
// injected so the lifecycle needs no knowledge of how models are built or
// road-tested (the canary lives a package up; see roadtest.RunCanary).
type LifecycleConfig struct {
	// RetrainEvery is the periodic retrain cadence on the virtual clock
	// (default 30 virtual minutes).
	RetrainEvery time.Duration
	// DegradedPatience is how many consecutive degraded Ticks are
	// tolerated before the state falls to lame-duck (default 2).
	DegradedPatience int
	// Drift parameterizes the detector thresholds.
	Drift DriftConfig
	// Dir, when set, persists the last-known-good bundle to
	// dir/model.lkg so a restarted process can serve immediately.
	Dir string

	// Retrain builds a candidate model bundle from the current store
	// (serialized; the lifecycle never inspects it). Called on the
	// periodic cadence and on drift.
	Retrain func() ([]byte, error)
	// Validate gates a candidate bundle — the canary hook. A false
	// verdict keeps (or demotes to) the previous model.
	Validate func(bundle []byte) (bool, error)
	// Activate deploys a bundle as the live model and returns the
	// refreshed drift reference (the distribution the bundle was trained
	// on) plus the classifier the drift detector should watch.
	Activate func(bundle []byte) (*features.Dataset, error)
}

// lkgName is the persisted last-known-good bundle file.
const lkgName = "model.lkg"

// Lifecycle metrics.
var (
	obsLifecycleState     = obs.Default.Gauge("campuslab_lifecycle_state")
	obsLifecycleRetrains  = obs.Default.Counter("campuslab_lifecycle_retrains_total")
	obsLifecycleRollbacks = obs.Default.Counter("campuslab_lifecycle_rollbacks_total")
	obsLifecyclePromotes  = obs.Default.Counter("campuslab_lifecycle_promotions_total")
)

// Transition is one entry of the lifecycle's append-only decision log —
// the deterministic artifact E16 compares across runs.
type Transition struct {
	At     time.Duration // virtual time
	From   LifecycleState
	To     LifecycleState
	Reason string
}

// Lifecycle is the self-healing model state machine. Not goroutine-safe;
// drive it from one loop (labd's virtual-clock ticker or an experiment).
type Lifecycle struct {
	cfg      LifecycleConfig
	state    LifecycleState
	detector *DriftDetector

	lastRetrain time.Duration
	degradedFor int
	lkg         []byte // last-known-good bundle
	live        []byte // currently active bundle
	classifier  classifierHolder
	log         []Transition
}

// NewLifecycle starts a lifecycle in the healthy state with bundle as the
// live (and last-known-good) model. The bundle must pass Activate; when
// cfg.Dir is set it is persisted immediately.
func NewLifecycle(cfg LifecycleConfig, bundle []byte, now time.Duration) (*Lifecycle, error) {
	if cfg.Retrain == nil || cfg.Validate == nil || cfg.Activate == nil {
		return nil, fmt.Errorf("control: lifecycle needs Retrain, Validate, and Activate")
	}
	if cfg.RetrainEvery <= 0 {
		cfg.RetrainEvery = 30 * time.Minute
	}
	if cfg.DegradedPatience <= 0 {
		cfg.DegradedPatience = 2
	}
	lc := &Lifecycle{cfg: cfg, lastRetrain: now}
	if err := lc.activate(bundle); err != nil {
		return nil, err
	}
	lc.lkg = bundle
	if err := lc.persistLKG(); err != nil {
		return nil, err
	}
	obsLifecycleState.Set(float64(lc.state))
	return lc, nil
}

// LoadLKG reads a persisted last-known-good bundle from dir, if any.
func LoadLKG(dir string) ([]byte, bool) {
	b, err := os.ReadFile(filepath.Join(dir, lkgName))
	if err != nil || len(b) == 0 {
		return nil, false
	}
	return b, true
}

// activate deploys bundle and points the drift detector at it.
func (lc *Lifecycle) activate(bundle []byte) error {
	ref, err := lc.cfg.Activate(bundle)
	if err != nil {
		return fmt.Errorf("control: activate: %w", err)
	}
	det, err := NewDriftDetector(ref, activatedModel{lc}, lc.cfg.Drift)
	if err != nil {
		return err
	}
	// Activate returns the reference; the detector needs the classifier
	// too. The Activate callback is expected to retain the live model
	// where the lifecycle's owner can reach it; the lifecycle itself only
	// tracks bundles. The detector's model is supplied via SetClassifier.
	lc.detector = det
	lc.live = bundle
	return nil
}

// activatedModel defers prediction to the owner-installed classifier; see
// SetClassifier.
type activatedModel struct{ lc *Lifecycle }

func (m activatedModel) Predict(x []float64) int {
	if m.lc.classifier == nil {
		return 0
	}
	return m.lc.classifier.Predict(x)
}
func (m activatedModel) Proba(x []float64) []float64 { return nil }
func (m activatedModel) NumClasses() int             { return 2 }

// persistLKG writes the last-known-good bundle crash-safely (temp +
// rename, matching the snapshot discipline).
func (lc *Lifecycle) persistLKG() error {
	if lc.cfg.Dir == "" || len(lc.lkg) == 0 {
		return nil
	}
	if err := os.MkdirAll(lc.cfg.Dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(lc.cfg.Dir, lkgName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, lc.lkg, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// State returns the current lifecycle state.
func (lc *Lifecycle) State() LifecycleState { return lc.state }

// Transitions returns the decision log (append-only; do not mutate).
func (lc *Lifecycle) Transitions() []Transition { return lc.log }

// LiveBundle returns the currently active model bundle.
func (lc *Lifecycle) LiveBundle() []byte { return lc.live }

// classifier is the live model in predict-callable form, installed by the
// owner after each Activate (the lifecycle cannot deserialize bundles —
// that knowledge lives with the owner's model format).
type classifierHolder = interface {
	Predict(x []float64) int
}

// SetClassifier installs the live model's predict function for the drift
// detector's recall proxy. Call after NewLifecycle and after any Tick
// that reports a model change.
func (lc *Lifecycle) SetClassifier(c classifierHolder) { lc.classifier = c }

// TickResult reports one lifecycle step.
type TickResult struct {
	State LifecycleState
	// Drift is the window's detector verdict.
	Drift DriftReport
	// Retrained / RolledBack / Promoted flag what happened this tick.
	Retrained, RolledBack, Promoted bool
	// ModelChanged means the live bundle changed (owner must refresh its
	// deserialized model and call SetClassifier).
	ModelChanged bool
	// Err carries a retrain/validation infrastructure failure (the state
	// machine treats it as a failed candidate, not a crash).
	Err error
}

// Tick advances the lifecycle at virtual time now with the window of
// labeled examples observed since the last tick. It runs the drift
// detector, decides retrain/rollback, and returns what changed.
func (lc *Lifecycle) Tick(now time.Duration, win *features.Dataset) TickResult {
	res := TickResult{}
	res.Drift = lc.detector.Observe(win)

	switch lc.state {
	case StateHealthy:
		if res.Drift.Drifted {
			lc.transition(now, StateDegraded, driftReason(res.Drift))
			lc.degradedFor = 1
		}
	case StateDegraded:
		if res.Drift.Drifted {
			lc.degradedFor++
			if lc.degradedFor > lc.cfg.DegradedPatience {
				// Drift persisted: the live model is presumed wrong.
				// Serve last-known-good while retraining continues.
				lc.rollback(now, &res, "drift persisted past patience")
			}
		} else {
			lc.transition(now, StateHealthy, "drift cleared")
			lc.degradedFor = 0
		}
	case StateLameDuck:
		// Only a successful retrain+validate leaves lame-duck.
	}

	// Retrain on cadence, immediately when degraded, and every tick while
	// lame-duck (the system is actively unhealthy; keep trying).
	due := now-lc.lastRetrain >= lc.cfg.RetrainEvery
	if due || lc.state != StateHealthy {
		lc.retrain(now, &res)
	}
	res.State = lc.state
	obsLifecycleState.Set(float64(lc.state))
	return res
}

// retrain builds, validates, and (on success) promotes a candidate.
func (lc *Lifecycle) retrain(now time.Duration, res *TickResult) {
	lc.lastRetrain = now
	res.Retrained = true
	obsLifecycleRetrains.Inc()
	bundle, err := lc.cfg.Retrain()
	if err != nil {
		lc.candidateFailed(now, res, fmt.Errorf("retrain: %w", err))
		return
	}
	ok, err := lc.cfg.Validate(bundle)
	if err != nil {
		lc.candidateFailed(now, res, fmt.Errorf("validate: %w", err))
		return
	}
	if !ok {
		lc.candidateFailed(now, res, nil)
		return
	}
	// Candidate passed the canary: promote it to live and last-known-good.
	if err := lc.activate(bundle); err != nil {
		lc.candidateFailed(now, res, err)
		return
	}
	lc.lkg = bundle
	if err := lc.persistLKG(); err != nil {
		res.Err = err
	}
	res.Promoted = true
	res.ModelChanged = true
	obsLifecyclePromotes.Inc()
	if lc.state != StateHealthy {
		lc.transition(now, StateHealthy, "validated candidate promoted")
	}
	lc.degradedFor = 0
}

// candidateFailed records a failed retrain attempt. A healthy system just
// keeps its model; a degraded one falls to lame-duck (the live model is
// suspect AND we cannot produce a better one — serve last-known-good).
func (lc *Lifecycle) candidateFailed(now time.Duration, res *TickResult, err error) {
	if err != nil {
		res.Err = err
	}
	if lc.state == StateDegraded {
		lc.rollback(now, res, "candidate failed validation while degraded")
	}
}

// rollback reverts to the last-known-good bundle and enters lame-duck.
func (lc *Lifecycle) rollback(now time.Duration, res *TickResult, reason string) {
	if lc.state == StateLameDuck {
		return
	}
	lc.transition(now, StateLameDuck, reason)
	obsLifecycleRollbacks.Inc()
	res.RolledBack = true
	if len(lc.lkg) > 0 && string(lc.lkg) != string(lc.live) {
		if err := lc.activate(lc.lkg); err != nil {
			res.Err = err
			return
		}
		res.ModelChanged = true
	}
}

// transition appends to the decision log.
func (lc *Lifecycle) transition(at time.Duration, to LifecycleState, reason string) {
	lc.log = append(lc.log, Transition{At: at, From: lc.state, To: to, Reason: reason})
	lc.state = to
}

func driftReason(r DriftReport) string {
	switch {
	case r.FeatureDrift && r.RecallDrift:
		return "feature and recall drift"
	case r.FeatureDrift:
		return fmt.Sprintf("feature drift (%d features)", r.DriftingFeatures)
	default:
		return "recall below floor"
	}
}
