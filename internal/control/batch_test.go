package control

import (
	"reflect"
	"testing"
	"time"

	"campuslab/internal/packet"
	"campuslab/internal/telemetry"
	"campuslab/internal/traffic"
)

// collectFrames materializes a scenario so the same episode can be fed
// to two loops.
func collectFrames(tb testing.TB, gen traffic.Generator) ([]traffic.Frame, []packet.Summary) {
	tb.Helper()
	fp := newParser()
	var frames []traffic.Frame
	var sums []packet.Summary
	var f traffic.Frame
	var s packet.Summary
	for gen.Next(&f) {
		if err := fp.Parse(f.Data, &s); err != nil {
			continue
		}
		frames = append(frames, f)
		sums = append(sums, s)
	}
	return frames, sums
}

// TestFeedBatchMatchesFeed pins the batched sense stage to the per-frame
// path on a tier that installs mitigations mid-stream — every stat,
// mitigation record, and per-frame keep decision must agree.
func TestFeedBatchMatchesFeed(t *testing.T) {
	p := buildPipeline(t)
	mk := func() *Loop {
		loop, err := NewLoop(LoopConfig{
			Tier: TierControlPlane, Program: p.alertProg, Model: p.tree,
			Threshold: 0.9, Window: time.Second, MinEvidence: 30,
		})
		if err != nil {
			t.Fatal(err)
		}
		return loop
	}
	frames, sums := collectFrames(t, p.attackScenario(501, 502))

	seq := mk()
	seqKeep := make([]bool, len(frames))
	for i := range frames {
		seqKeep[i] = seq.Feed(&frames[i], &sums[i])
	}

	bat := mk()
	batKeep := make([]bool, len(frames))
	const chunk = 96
	fptrs := make([]*traffic.Frame, 0, chunk)
	sptrs := make([]*packet.Summary, 0, chunk)
	for lo := 0; lo < len(frames); lo += chunk {
		hi := lo + chunk
		if hi > len(frames) {
			hi = len(frames)
		}
		fptrs, sptrs = fptrs[:0], sptrs[:0]
		for i := lo; i < hi; i++ {
			fptrs = append(fptrs, &frames[i])
			sptrs = append(sptrs, &sums[i])
		}
		bat.FeedBatch(fptrs, sptrs, batKeep[lo:hi])
	}

	for i := range seqKeep {
		if seqKeep[i] != batKeep[i] {
			t.Fatalf("frame %d: keep diverged (seq=%v batch=%v)", i, seqKeep[i], batKeep[i])
		}
	}
	ss, bs := seq.Finish(), bat.Finish()
	// Latency percentiles aside (engine timing state is shared), the
	// counted stats must be identical.
	ss.InferMean, bs.InferMean = 0, 0
	ss.InferMax, bs.InferMax = 0, 0
	if !reflect.DeepEqual(ss, bs) {
		t.Fatalf("stats diverged:\nseq:   %+v\nbatch: %+v", ss, bs)
	}
}

func TestFeedBatchRecordsFastloopStage(t *testing.T) {
	before := uint64(0)
	for _, st := range telemetry.Pipeline.Stages() {
		if st.Stage == "fastloop" {
			before = st.Calls
		}
	}
	p := buildPipeline(t)
	loop, err := NewLoop(LoopConfig{Tier: TierDataPlane, Program: p.dropProg})
	if err != nil {
		t.Fatal(err)
	}
	frames, sums := collectFrames(t, p.attackScenario(503, 504))
	fptrs := []*traffic.Frame{&frames[0], &frames[1]}
	sptrs := []*packet.Summary{&sums[0], &sums[1]}
	loop.FeedBatch(fptrs, sptrs, make([]bool, 2))
	for _, st := range telemetry.Pipeline.Stages() {
		if st.Stage == "fastloop" && st.Calls > before {
			return
		}
	}
	t.Fatal("FeedBatch did not record a fastloop telemetry stage")
}
