package control

import (
	"sync"

	"campuslab/internal/obs"
)

// loopCounters is a control loop's operational counter block — the one
// source of truth for the loop's resilience accounting. Event sites
// (install retries, breaker transitions, tier fallbacks, escalations)
// write these atomics; LoopStats' resilience fields are filled from the
// block at Finish, and the process-wide registry aggregates every block
// at snapshot time via the collector below. Blocks are padded counters
// (~64B each) pinned for the life of the process; a loop is created per
// deployment or replay, so the pinned footprint stays tiny.
type loopCounters struct {
	escalations        obs.Counter
	mitigations        obs.Counter
	installRetries     obs.Counter
	droppedMitigations obs.Counter
	installFailures    obs.Counter
	inferFailures      obs.Counter
	fallbackInferences obs.Counter
	breakerOpens       obs.Counter
	breakerHalfOpens   obs.Counter
	breakerCloses      obs.Counter
}

var (
	loopBlocksMu sync.Mutex
	loopBlocks   []*loopCounters
)

// newLoopCounters allocates a block and pins it for aggregation.
func newLoopCounters() *loopCounters {
	c := &loopCounters{}
	loopBlocksMu.Lock()
	loopBlocks = append(loopBlocks, c)
	loopBlocksMu.Unlock()
	return c
}

func init() {
	obs.Default.RegisterCollector(collectLoops)
}

// collectLoops sums every loop's counter block into the process-wide
// control series. Sums are computed first so each series is emitted
// exactly once (and exists, zero-valued, before any loop sees traffic).
func collectLoops(e *obs.Emitter) {
	loopBlocksMu.Lock()
	var esc, mit, retr, drop, instFail, inferFail, fb, opens, halfs, closes uint64
	n := uint64(len(loopBlocks))
	for _, c := range loopBlocks {
		esc += c.escalations.Value()
		mit += c.mitigations.Value()
		retr += c.installRetries.Value()
		drop += c.droppedMitigations.Value()
		instFail += c.installFailures.Value()
		inferFail += c.inferFailures.Value()
		fb += c.fallbackInferences.Value()
		opens += c.breakerOpens.Value()
		halfs += c.breakerHalfOpens.Value()
		closes += c.breakerCloses.Value()
	}
	loopBlocksMu.Unlock()
	e.Counter("campuslab_control_loops_total", n)
	e.Counter("campuslab_control_escalations_total", esc)
	e.Counter("campuslab_control_mitigations_total", mit)
	e.Counter("campuslab_control_install_retries_total", retr)
	e.Counter("campuslab_control_dropped_mitigations_total", drop)
	e.Counter("campuslab_control_install_failures_total", instFail)
	e.Counter("campuslab_control_infer_failures_total", inferFail)
	e.Counter("campuslab_control_fallback_inferences_total", fb)
	e.Counter("campuslab_control_breaker_transitions_total", opens, "to", "open")
	e.Counter("campuslab_control_breaker_transitions_total", halfs, "to", "half_open")
	e.Counter("campuslab_control_breaker_transitions_total", closes, "to", "closed")
}
