package control

import (
	"testing"
	"time"

	"campuslab/internal/faults"
)

func TestBreakerTripAndRecovery(t *testing.T) {
	b := breaker{cfg: BreakerConfig{Trip: 3, Cooldown: time.Second}}
	if !b.allow(0) {
		t.Fatal("fresh breaker should be closed")
	}
	b.failure(0)
	b.failure(0)
	if !b.allow(0) {
		t.Fatal("below threshold should stay closed")
	}
	b.failure(0) // third consecutive: trips
	if b.allow(100 * time.Millisecond) {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if b.trips != 1 {
		t.Fatalf("trips = %d", b.trips)
	}
	// Cooldown elapsed: half-open admits one probe.
	if !b.allow(time.Second) {
		t.Fatal("half-open breaker rejected the probe")
	}
	// A failed probe re-opens immediately.
	b.failure(time.Second)
	if b.allow(time.Second + 500*time.Millisecond) {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.trips != 2 {
		t.Fatalf("trips = %d", b.trips)
	}
	// A successful probe closes it for good.
	if !b.allow(3 * time.Second) {
		t.Fatal("second half-open rejected")
	}
	b.success()
	b.failure(3 * time.Second)
	if !b.allow(3 * time.Second) {
		t.Fatal("one failure after recovery should not re-trip")
	}
}

// controlPlaneCfg builds the standard detect-then-mitigate config used by
// the resilience tests.
func controlPlaneCfg(p *pipeline) LoopConfig {
	return LoopConfig{
		Tier: TierControlPlane, Program: p.alertProg, Model: p.tree,
		Threshold: 0.9, Window: time.Second, MinEvidence: 30,
	}
}

func TestReactRetriesTransientInstallFaults(t *testing.T) {
	p := buildPipeline(t)

	healthy, err := NewLoop(controlPlaneCfg(p))
	if err != nil {
		t.Fatal(err)
	}
	base, err := healthy.Replay(p.attackScenario(501, 502))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Mitigations) == 0 {
		t.Fatal("healthy baseline did not mitigate")
	}

	cfg := controlPlaneCfg(p)
	cfg.Faults = faults.NewSchedule().FailCalls(faults.OpInstall, 1, 2, faults.KindTransient)
	faulty, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := faulty.Replay(p.attackScenario(501, 502))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Mitigations) == 0 {
		t.Fatal("transient install faults defeated the mitigation entirely")
	}
	if stats.InstallRetries != 2 {
		t.Errorf("InstallRetries = %d, want 2", stats.InstallRetries)
	}
	if stats.DroppedMitigations != 0 {
		t.Errorf("DroppedMitigations = %d, want 0", stats.DroppedMitigations)
	}
	// Two retries at 2ms/4ms backoff: install lands at least 6ms later
	// than the healthy run, but under the full backoff + jitter ceiling.
	delay := stats.Mitigations[0].InstalledAt - base.Mitigations[0].InstalledAt
	if delay < 6*time.Millisecond {
		t.Errorf("install delay %v, want >= 6ms of backoff", delay)
	}
	if delay > 50*time.Millisecond {
		t.Errorf("install delay %v unreasonably large", delay)
	}
	if stats.Mitigations[0].Victim != base.Mitigations[0].Victim {
		t.Error("faulty run mitigated a different victim")
	}
}

func TestReactRetryBudgetExhaustedThenRecovers(t *testing.T) {
	p := buildPipeline(t)
	cfg := controlPlaneCfg(p)
	// First mitigation decision burns its whole 4-attempt budget; the
	// evidence keeps accumulating and a later verdict retries with a
	// healthy install path.
	cfg.Faults = faults.NewSchedule().FailCalls(faults.OpInstall, 1, 4, faults.KindTransient)
	loop, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := loop.Replay(p.attackScenario(503, 504))
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedMitigations != 1 {
		t.Errorf("DroppedMitigations = %d, want 1", stats.DroppedMitigations)
	}
	if stats.InstallRetries != 3 {
		t.Errorf("InstallRetries = %d, want 3 (attempts 2-4 of the burned budget)", stats.InstallRetries)
	}
	if len(stats.Mitigations) == 0 {
		t.Fatal("loop never recovered after the exhausted retry budget")
	}
	if stats.DetectionRecall() < 0.5 {
		t.Errorf("recall = %v after recovery", stats.DetectionRecall())
	}
}

func TestBreakerTripsToFallbackTier(t *testing.T) {
	p := buildPipeline(t)
	cfg := controlPlaneCfg(p)
	// The control-plane tier fails every inference; the loop must trip
	// its breaker and degrade to the cloud tier (higher RTT, same task).
	cfg.Faults = faults.NewSchedule().FailCalls(faults.OpInfer("controlplane"), 1, 1<<40, faults.KindTransient)
	cfg.Fallbacks = []FallbackTier{{Tier: TierCloud, Model: p.forest}}
	loop, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := loop.Replay(p.attackScenario(505, 506))
	if err != nil {
		t.Fatal(err)
	}
	if stats.BreakerTrips == 0 {
		t.Error("control-plane breaker never tripped")
	}
	if stats.FallbackInferences == 0 {
		t.Error("no inferences served by the fallback tier")
	}
	if len(stats.Mitigations) == 0 {
		t.Fatal("degraded loop failed to mitigate")
	}
	if stats.Mitigations[0].Victim != p.plan.Host(7) {
		t.Errorf("degraded loop mitigated %v, want %v", stats.Mitigations[0].Victim, p.plan.Host(7))
	}
	// The cloud's 40ms RTT must show up in the verdict latency.
	if stats.InferMean < 10*time.Millisecond {
		t.Errorf("InferMean %v does not reflect cloud fallback latency", stats.InferMean)
	}
}

func TestDataplaneDegradesToControlPlane(t *testing.T) {
	p := buildPipeline(t)
	// Healthy inline baseline for comparison.
	healthy, err := NewLoop(LoopConfig{Tier: TierDataPlane, Program: p.dropProg})
	if err != nil {
		t.Fatal(err)
	}
	base, err := healthy.Replay(p.attackScenario(507, 508))
	if err != nil {
		t.Fatal(err)
	}

	cfg := LoopConfig{
		Tier: TierDataPlane, Program: p.dropProg,
		Threshold: 0.9, Window: time.Second, MinEvidence: 30,
		Faults:    faults.NewSchedule().FailCalls(faults.OpInfer("dataplane"), 1, 1<<40, faults.KindTransient),
		Breaker:   BreakerConfig{Trip: 5, Cooldown: 30 * time.Second},
		Fallbacks: []FallbackTier{{Tier: TierControlPlane, Model: p.tree}},
	}
	loop, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := loop.Replay(p.attackScenario(507, 508))
	if err != nil {
		t.Fatal(err)
	}
	if stats.BreakerTrips == 0 {
		t.Fatal("data-plane breaker never tripped")
	}
	if stats.FallbackInferences == 0 {
		t.Fatal("no control-plane fallback inferences")
	}
	if len(stats.Mitigations) == 0 {
		t.Fatal("degraded loop never installed a mitigation")
	}
	if stats.Mitigations[0].Victim != p.plan.Host(7) {
		t.Errorf("wrong victim %v", stats.Mitigations[0].Victim)
	}
	if stats.FilterDrops == 0 {
		t.Error("installed mitigation dropped nothing")
	}
	// Degradation is graceful, not free: recall below the inline
	// baseline but the attack is still substantially mitigated.
	if stats.DetectionRecall() < 0.5 {
		t.Errorf("degraded recall = %v", stats.DetectionRecall())
	}
	if stats.DetectionRecall() > base.DetectionRecall() {
		t.Errorf("degraded recall %v beats healthy inline %v?", stats.DetectionRecall(), base.DetectionRecall())
	}
	if stats.CollateralRate() > 0.02 {
		t.Errorf("degraded collateral = %v", stats.CollateralRate())
	}
}

func TestAllTiersDownLosesVerdictsSafely(t *testing.T) {
	p := buildPipeline(t)
	cfg := controlPlaneCfg(p)
	// No fallback: when the only tier is down, verdicts are lost and the
	// loop must fail open (no mitigations, no drops, no panic).
	cfg.Faults = faults.NewSchedule().FailCalls(faults.OpInfer("controlplane"), 1, 1<<40, faults.KindTransient)
	cfg.Breaker = BreakerConfig{Trip: 5, Cooldown: 30 * time.Second}
	loop, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := loop.Replay(p.attackScenario(509, 510))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Mitigations) != 0 {
		t.Error("mitigation installed with no working inference tier")
	}
	if stats.BenignDropped != 0 {
		t.Error("fail-open loop dropped benign traffic")
	}
	if stats.InferFailures == 0 {
		t.Error("lost inferences not accounted")
	}
}

func TestFallbackValidation(t *testing.T) {
	p := buildPipeline(t)
	cfg := controlPlaneCfg(p)
	cfg.Fallbacks = []FallbackTier{{Tier: TierDataPlane}}
	if _, err := NewLoop(cfg); err == nil {
		t.Error("accepted the data plane as a fallback inference tier")
	}
	cfg.Fallbacks = []FallbackTier{{Tier: TierCloud}}
	if _, err := NewLoop(cfg); err == nil {
		t.Error("accepted a model-less fallback tier")
	}
}

func TestHealthyLoopWithFallbackChainMatchesPlain(t *testing.T) {
	p := buildPipeline(t)
	run := func(withFallback bool) LoopStats {
		cfg := controlPlaneCfg(p)
		if withFallback {
			cfg.Fallbacks = []FallbackTier{{Tier: TierCloud, Model: p.forest}}
		}
		loop, err := NewLoop(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := loop.Replay(p.attackScenario(511, 512))
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	plain, chained := run(false), run(true)
	if chained.FallbackInferences != 0 || chained.BreakerTrips != 0 {
		t.Error("healthy run exercised the fallback chain")
	}
	if plain.Escalations != chained.Escalations ||
		plain.FilterDrops != chained.FilterDrops ||
		plain.InferMean != chained.InferMean ||
		len(plain.Mitigations) != len(chained.Mitigations) {
		t.Errorf("fallback chain changed healthy behavior: %+v vs %+v", plain, chained)
	}
}
