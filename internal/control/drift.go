package control

import (
	"fmt"
	"math"

	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/obs"
)

// Drift detection watches whether the data a deployed model sees still
// looks like the data it was trained on — the concept-drift gap AI4NETS
// names as the reason ML models rot in production networks. Two signals
// feed the lifecycle state machine:
//
//   - Feature drift: per-feature Population Stability Index (PSI) between
//     a frozen reference window (the training distribution) and the
//     current window. PSI < 0.1 is stable, 0.1–0.25 is shifting, > 0.25
//     is a different population — the standard industry reading.
//   - Recall proxy: the model's recall on the labeled replay stream (the
//     lab always knows ground truth for generated scenarios), smoothed
//     over a rolling window so one odd batch doesn't flap the state.
//
// Both are pure functions of the observed windows, so a seeded replay
// produces the identical drift trajectory every run.

// driftBins is the fixed histogram resolution. Edges are frozen from the
// reference window (equal-width over its observed range, with open-ended
// outer bins), so reference and current windows are always binned alike.
const driftBins = 10

// DriftConfig parameterizes a detector.
type DriftConfig struct {
	// PSIWarn marks a feature as shifting (default 0.25 — the classic
	// "population has changed" threshold).
	PSIWarn float64
	// WarnFeatures is how many features must exceed PSIWarn before the
	// detector reports drift (default 1).
	WarnFeatures int
	// MinRecall is the floor for the rolling recall proxy (default 0.5);
	// only consulted once MinLabeled positives have been observed.
	MinRecall float64
	// MinLabeled is the minimum positive-example count before the recall
	// proxy is trusted (default 20).
	MinLabeled int
	// Window bounds the rolling recall window in examples (default 512).
	Window int
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.PSIWarn <= 0 {
		c.PSIWarn = 0.25
	}
	if c.WarnFeatures <= 0 {
		c.WarnFeatures = 1
	}
	if c.MinRecall <= 0 {
		c.MinRecall = 0.5
	}
	if c.MinLabeled <= 0 {
		c.MinLabeled = 20
	}
	if c.Window <= 0 {
		c.Window = 512
	}
	return c
}

// featureRef is one feature's frozen reference histogram.
type featureRef struct {
	lo, width float64 // bin 0 starts at lo; driftBins equal-width bins
	ref       [driftBins]float64
}

// Drift metrics: the worst current PSI, drifting-feature count, and the
// rolling recall proxy.
var (
	obsDriftMaxPSI   = obs.Default.Gauge("campuslab_drift_max_psi")
	obsDriftFeatures = obs.Default.Gauge("campuslab_drift_features")
	obsDriftRecall   = obs.Default.Gauge("campuslab_drift_recall_proxy")
)

// DriftDetector compares live windows against a frozen training
// reference. Not goroutine-safe; the owning lifecycle serializes access.
type DriftDetector struct {
	cfg   DriftConfig
	refs  []featureRef
	dims  int
	model ml.Classifier

	// Rolling recall proxy over the last cfg.Window labeled examples:
	// ring[i] packs (positive, hit).
	ring   []recallCell
	next   int
	filled bool
}

type recallCell struct{ positive, hit bool }

// NewDriftDetector freezes ref as the training distribution and watches
// model's recall on labeled examples. ref must be the dataset (or a
// faithful sample of it) the model was trained on.
func NewDriftDetector(ref *features.Dataset, model ml.Classifier, cfg DriftConfig) (*DriftDetector, error) {
	if ref.Len() == 0 {
		return nil, fmt.Errorf("control: drift reference is empty")
	}
	cfg = cfg.withDefaults()
	d := &DriftDetector{
		cfg: cfg, dims: ref.Dims(), model: model,
		ring: make([]recallCell, cfg.Window),
	}
	d.refs = make([]featureRef, d.dims)
	for f := 0; f < d.dims; f++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range ref.X {
			lo = math.Min(lo, x[f])
			hi = math.Max(hi, x[f])
		}
		width := (hi - lo) / driftBins
		if width <= 0 {
			width = 1 // constant feature: everything lands in bin 0
		}
		r := &d.refs[f]
		r.lo, r.width = lo, width
		for _, x := range ref.X {
			r.ref[binOf(x[f], lo, width)]++
		}
		normalize(&r.ref, float64(ref.Len()))
	}
	return d, nil
}

// binOf maps v into the frozen bins; the outer bins are open-ended.
func binOf(v, lo, width float64) int {
	b := int((v - lo) / width)
	if b < 0 {
		return 0
	}
	if b >= driftBins {
		return driftBins - 1
	}
	return b
}

// normalize converts counts to proportions with a small floor so PSI's
// log-ratio never divides by zero (the standard smoothing).
func normalize(h *[driftBins]float64, total float64) {
	const floor = 1e-4
	for i := range h {
		h[i] = math.Max(h[i]/total, floor)
	}
}

// DriftReport is one window's verdict.
type DriftReport struct {
	// MaxPSI is the worst per-feature PSI this window.
	MaxPSI float64
	// DriftingFeatures counts features with PSI > PSIWarn.
	DriftingFeatures int
	// Recall is the rolling recall proxy (NaN until MinLabeled positives
	// have been seen).
	Recall float64
	// FeatureDrift / RecallDrift name which signal tripped.
	FeatureDrift, RecallDrift bool
	// Drifted is the combined verdict the lifecycle consumes.
	Drifted bool
}

// Observe scores one labeled window (positives = class 1 in the binary
// framing the development loop uses) and returns the drift verdict.
func (d *DriftDetector) Observe(win *features.Dataset) DriftReport {
	var rep DriftReport
	if win.Len() == 0 {
		rep.Recall = d.recall()
		return rep
	}
	// Feature drift: PSI per feature against the frozen reference.
	var cur [driftBins]float64
	for f := 0; f < d.dims; f++ {
		r := &d.refs[f]
		clear(cur[:])
		for _, x := range win.X {
			cur[binOf(x[f], r.lo, r.width)]++
		}
		normalize(&cur, float64(win.Len()))
		psi := 0.0
		for i := range cur {
			psi += (cur[i] - r.ref[i]) * math.Log(cur[i]/r.ref[i])
		}
		if psi > rep.MaxPSI {
			rep.MaxPSI = psi
		}
		if psi > d.cfg.PSIWarn {
			rep.DriftingFeatures++
		}
	}
	// Recall proxy: feed the window's labeled examples into the ring.
	for i, x := range win.X {
		if win.Y[i] != 1 {
			continue
		}
		d.push(recallCell{positive: true, hit: d.model.Predict(x) == 1})
	}
	rep.Recall = d.recall()

	rep.FeatureDrift = rep.DriftingFeatures >= d.cfg.WarnFeatures
	rep.RecallDrift = !math.IsNaN(rep.Recall) && rep.Recall < d.cfg.MinRecall
	rep.Drifted = rep.FeatureDrift || rep.RecallDrift
	obsDriftMaxPSI.Set(rep.MaxPSI)
	obsDriftFeatures.Set(float64(rep.DriftingFeatures))
	if !math.IsNaN(rep.Recall) {
		obsDriftRecall.Set(rep.Recall)
	}
	return rep
}

func (d *DriftDetector) push(c recallCell) {
	d.ring[d.next] = c
	d.next++
	if d.next == len(d.ring) {
		d.next, d.filled = 0, true
	}
}

// recall computes the rolling proxy; NaN until enough positives landed.
func (d *DriftDetector) recall() float64 {
	n := d.next
	if d.filled {
		n = len(d.ring)
	}
	pos, hit := 0, 0
	for i := 0; i < n; i++ {
		if d.ring[i].positive {
			pos++
			if d.ring[i].hit {
				hit++
			}
		}
	}
	if pos < d.cfg.MinLabeled {
		return math.NaN()
	}
	return float64(hit) / float64(pos)
}

// SetModel swaps the watched model (after a retrain or rollback) and
// clears the rolling recall window — the new model starts fresh.
func (d *DriftDetector) SetModel(m ml.Classifier) {
	d.model = m
	d.next, d.filled = 0, false
	for i := range d.ring {
		d.ring[i] = recallCell{}
	}
}
