// Package control implements Figure 2's fast online control loop — sense,
// infer, react — with the inference step placeable on three compute tiers
// (data plane, control plane, cloud), each with its own latency and
// capacity model. The tier comparison is §2's resource-allocation
// question: "the allocation of compute resources ... will depend on how
// fast and with what accuracy that task has to be performed."
package control

import (
	"fmt"
	"time"
)

// Tier is where inference runs.
type Tier uint8

// Inference placement tiers.
const (
	// TierDataPlane classifies inline in the switch pipeline: nanosecond
	// verdicts, but only the compiled (depth-bounded) model and no
	// cross-packet state.
	TierDataPlane Tier = iota
	// TierControlPlane punts suspicious packets to the local controller:
	// sub-millisecond RTT, runs the full extracted tree and aggregates
	// evidence across packets.
	TierControlPlane
	// TierCloud ships digests to an off-campus service running the
	// black-box model: most accurate, tens of milliseconds away.
	TierCloud
	numTiers
)

var tierNames = [numTiers]string{"dataplane", "controlplane", "cloud"}

// String returns the tier name.
func (t Tier) String() string {
	if int(t) < len(tierNames) {
		return tierNames[t]
	}
	return fmt.Sprintf("tier-%d", uint8(t))
}

// TierModel is a tier's latency/capacity envelope.
type TierModel struct {
	// RTT is the fixed round trip to reach the tier and return a verdict.
	RTT time.Duration
	// Service is the per-request inference cost at the tier.
	Service time.Duration
	// CapacityPPS caps sustained requests/second; excess requests queue
	// (latency grows) rather than drop. <=0 means unbounded.
	CapacityPPS float64
}

// DefaultTierModels returns the calibrated tier envelopes used across the
// experiments: inline ~100ns; controller ~500µs RTT at 200k req/s;
// cloud ~40ms RTT, effectively unbounded capacity.
func DefaultTierModels() [3]TierModel {
	return [3]TierModel{
		TierDataPlane:    {RTT: 0, Service: 100 * time.Nanosecond, CapacityPPS: 0},
		TierControlPlane: {RTT: 500 * time.Microsecond, Service: 10 * time.Microsecond, CapacityPPS: 200_000},
		TierCloud:        {RTT: 40 * time.Millisecond, Service: 50 * time.Microsecond, CapacityPPS: 0},
	}
}

// InferenceEngine simulates request latency at one tier, including queueing
// when offered load exceeds capacity. Deterministic and single-threaded
// (driven by the replay's virtual clock).
type InferenceEngine struct {
	model     TierModel
	busyUntil time.Duration
	requests  uint64
	totalLat  time.Duration
	maxLat    time.Duration
}

// NewInferenceEngine builds an engine for the tier model.
func NewInferenceEngine(m TierModel) *InferenceEngine {
	return &InferenceEngine{model: m}
}

// Submit records a request arriving at now and returns when its verdict is
// available to the switch (now + queueing + service + RTT).
func (e *InferenceEngine) Submit(now time.Duration) time.Duration {
	start := now
	if e.model.CapacityPPS > 0 {
		// The server frees up at busyUntil; capacity expressed as
		// minimum spacing between request completions.
		spacing := time.Duration(float64(time.Second) / e.model.CapacityPPS)
		if e.busyUntil > start {
			start = e.busyUntil
		}
		e.busyUntil = start + spacing
	}
	done := start + e.model.Service + e.model.RTT
	lat := done - now
	e.requests++
	e.totalLat += lat
	if lat > e.maxLat {
		e.maxLat = lat
	}
	return done
}

// LatencyStats reports request count, mean and max verdict latency.
func (e *InferenceEngine) LatencyStats() (n uint64, mean, max time.Duration) {
	if e.requests == 0 {
		return 0, 0, 0
	}
	return e.requests, e.totalLat / time.Duration(e.requests), e.maxLat
}
