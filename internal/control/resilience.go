package control

import (
	"math/rand"
	"time"

	"campuslab/internal/ml"
)

// RetryPolicy bounds the React step's install retry loop. Transient
// install failures (control-channel drops, busy table managers — injected
// via faults.Injector in road tests) are retried with exponential backoff
// plus deterministic jitter; permanent failures (table full) are never
// retried. Backoff accrues in the replay's virtual clock: each retry
// pushes the mitigation's effective install time later, which is how
// chaos experiments measure time-to-mitigation inflation.
type RetryPolicy struct {
	// MaxAttempts is the total install attempts per mitigation decision
	// (default 4). 1 disables retries.
	MaxAttempts int
	// Base is the first retry's backoff (default 2ms).
	Base time.Duration
	// Max caps the exponential backoff (default 100ms).
	Max time.Duration
	// Seed drives the jitter stream (default 1); jitter is uniform in
	// [0, backoff/2] and fully deterministic per seed.
	Seed int64
}

// Backoff computes the jittered delay to wait before the next retry
// given the current backoff step, and returns the doubled (Max-capped)
// step for the retry after that. jitter must be a caller-owned seeded
// stream so the schedule is deterministic; the delay is step plus a
// uniform draw from [0, step/2]. Every retry loop in the system — the
// React install path here, the fleet ingest client's reconnect loop —
// shares this schedule.
func (p RetryPolicy) Backoff(step time.Duration, jitter *rand.Rand) (delay, next time.Duration) {
	delay = step + time.Duration(jitter.Int63n(int64(step)/2+1))
	next = step * 2
	if next > p.Max {
		next = p.Max
	}
	return delay, next
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.Base <= 0 {
		p.Base = 2 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 100 * time.Millisecond
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// BreakerConfig parameterizes the per-tier circuit breakers guarding the
// Infer step. After Trip consecutive inference failures at a tier the
// breaker opens: the loop stops sending requests there and degrades to
// the next tier in the fallback chain (paying that tier's latency model).
// After Cooldown of virtual time the breaker half-opens and the next
// request probes the tier again.
type BreakerConfig struct {
	// Trip is the consecutive-failure threshold (default 5).
	Trip int
	// Cooldown is how long an open breaker rejects the tier (default 5s
	// of replay time).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Trip <= 0 {
		c.Trip = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// FallbackTier is one step of the loop's degradation chain: when every
// earlier tier's breaker is open, inference runs here instead — slower
// (this tier's RTT/service model applies) but alive.
type FallbackTier struct {
	// Tier is the placement; must be TierControlPlane or TierCloud
	// (the data plane cannot serve escalated inference).
	Tier Tier
	// Model classifies escalated packets at this tier.
	Model ml.Classifier
	// TierModel overrides the default latency envelope (nil = default).
	TierModel *TierModel
}

// breaker is one tier's circuit breaker, driven by the replay's virtual
// clock — deterministic, no wall time. State transitions are mirrored
// into the owning loop's counter block (ctr may be nil in unit tests).
type breaker struct {
	cfg         BreakerConfig
	consecutive int
	open        bool
	halfOpen    bool
	openUntil   time.Duration
	trips       uint64
	ctr         *loopCounters
}

// allow reports whether the tier may serve a request at virtual time now,
// transitioning open→half-open when the cooldown has elapsed.
func (b *breaker) allow(now time.Duration) bool {
	if !b.open {
		return true
	}
	if now >= b.openUntil {
		// Half-open: admit one probe; failure() re-opens immediately
		// because consecutive resumes from Trip-1.
		b.open = false
		b.halfOpen = true
		b.consecutive = b.cfg.Trip - 1
		if b.ctr != nil {
			b.ctr.breakerHalfOpens.Inc()
		}
		return true
	}
	return false
}

// failure records a failed request, tripping the breaker at the
// consecutive-failure threshold.
func (b *breaker) failure(now time.Duration) {
	b.consecutive++
	if b.consecutive >= b.cfg.Trip {
		b.open = true
		b.halfOpen = false
		b.openUntil = now + b.cfg.Cooldown
		b.trips++
		b.consecutive = 0
		if b.ctr != nil {
			b.ctr.breakerOpens.Inc()
		}
	}
}

// success resets the consecutive-failure count (and closes a half-open
// breaker for good).
func (b *breaker) success() {
	b.consecutive = 0
	if b.halfOpen {
		b.halfOpen = false
		if b.ctr != nil {
			b.ctr.breakerCloses.Inc()
		}
	}
}

// tierRuntime is one tier of the loop's inference chain: the primary at
// index 0, fallbacks after it in degradation order.
type tierRuntime struct {
	tier    Tier
	model   ml.Classifier // nil only for a data-plane primary
	engine  *InferenceEngine
	breaker breaker
	opName  string // faults op name, "infer.<tier>"
}
