package control

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"campuslab/internal/features"
	"campuslab/internal/ml"
)

// driftDataset draws n rows from N(mean, 1) per feature, labels by a
// fixed rule so recall is measurable.
func driftDataset(n int, mean float64, seed int64) *features.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &features.Dataset{
		Schema: []string{"a", "b", "c"},
		X:      make([][]float64, n), Y: make([]int, n),
	}
	for i := range d.X {
		x := []float64{
			rng.NormFloat64() + mean,
			rng.NormFloat64() + mean,
			rng.NormFloat64() + mean,
		}
		d.X[i] = x
		if x[0] > mean { // half positive, centered on the window's mean
			d.Y[i] = 1
		}
	}
	return d
}

// constModel always predicts the same class.
type constModel int

func (m constModel) Predict([]float64) int  { return int(m) }
func (m constModel) Proba([]float64) []float64 { return nil }
func (m constModel) NumClasses() int        { return 2 }

// thresholdModel predicts 1 when x[0] > cut — a "real" model whose recall
// degrades when the distribution shifts.
type thresholdModel float64

func (m thresholdModel) Predict(x []float64) int {
	if x[0] > float64(m) {
		return 1
	}
	return 0
}
func (m thresholdModel) Proba([]float64) []float64 { return nil }
func (m thresholdModel) NumClasses() int           { return 2 }

func TestDriftDetectorStableWindow(t *testing.T) {
	ref := driftDataset(2000, 0, 1)
	det, err := NewDriftDetector(ref, thresholdModel(0), DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := det.Observe(driftDataset(1000, 0, 2))
	if rep.FeatureDrift || rep.Drifted {
		t.Fatalf("same-distribution window reported drift: %+v", rep)
	}
	if rep.MaxPSI > 0.1 {
		t.Fatalf("stable PSI = %.3f, want < 0.1", rep.MaxPSI)
	}
}

func TestDriftDetectorShiftedWindow(t *testing.T) {
	ref := driftDataset(2000, 0, 1)
	det, err := NewDriftDetector(ref, thresholdModel(0), DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := det.Observe(driftDataset(1000, 3, 2))
	if !rep.FeatureDrift || !rep.Drifted {
		t.Fatalf("3σ shift not detected: %+v", rep)
	}
	if rep.MaxPSI < 0.25 {
		t.Fatalf("shifted PSI = %.3f, want > 0.25", rep.MaxPSI)
	}
}

func TestDriftDetectorRecallProxy(t *testing.T) {
	ref := driftDataset(2000, 0, 1)
	// A model that never fires: recall 0 once enough positives observed.
	det, err := NewDriftDetector(ref, constModel(0), DriftConfig{PSIWarn: 100})
	if err != nil {
		t.Fatal(err)
	}
	rep := det.Observe(driftDataset(10, 0, 2))
	if !math.IsNaN(rep.Recall) {
		// At most 10 positives from 10 rows: below MinLabeled=20.
		t.Fatalf("recall trusted too early: %+v", rep)
	}
	rep = det.Observe(driftDataset(200, 0, 3))
	if math.IsNaN(rep.Recall) || rep.Recall != 0 {
		t.Fatalf("recall = %v, want 0", rep.Recall)
	}
	if !rep.RecallDrift || !rep.Drifted {
		t.Fatalf("zero recall not flagged: %+v", rep)
	}
	// Swapping in a perfect model clears the window.
	det.SetModel(thresholdModel(0))
	rep = det.Observe(driftDataset(200, 0, 4))
	if rep.RecallDrift {
		t.Fatalf("fresh model inherited stale recall: %+v", rep)
	}
}

// lifecycleHarness wires a Lifecycle whose callbacks are scriptable.
type lifecycleHarness struct {
	retrains  int
	validates int
	pass      func(attempt int) bool // validation verdict per attempt
	refMean   float64
}

func (h *lifecycleHarness) config(dir string) LifecycleConfig {
	return LifecycleConfig{
		RetrainEvery:     10 * time.Minute,
		DegradedPatience: 2,
		Dir:              dir,
		Retrain: func() ([]byte, error) {
			h.retrains++
			return []byte(fmt.Sprintf("model-%d", h.retrains)), nil
		},
		Validate: func([]byte) (bool, error) {
			h.validates++
			if h.pass == nil {
				return true, nil
			}
			return h.pass(h.validates), nil
		},
		Activate: func([]byte) (*features.Dataset, error) {
			return driftDataset(2000, h.refMean, 1), nil
		},
	}
}

func TestLifecycleHealthyCadence(t *testing.T) {
	h := &lifecycleHarness{}
	lc, err := NewLifecycle(h.config(""), []byte("model-0"), 0)
	if err != nil {
		t.Fatal(err)
	}
	lc.SetClassifier(thresholdModel(0))
	// Stable windows: no drift, retrain only at the 10-minute cadence.
	// Windows are large enough that small-sample PSI noise stays under
	// the 0.25 warn threshold.
	for min := 1; min <= 25; min++ {
		res := lc.Tick(time.Duration(min)*time.Minute, driftDataset(1000, 0, int64(min)))
		if res.State != StateHealthy {
			t.Fatalf("minute %d: state %v", min, res.State)
		}
	}
	if h.retrains != 2 {
		t.Fatalf("retrains = %d, want 2 (minutes 10 and 20)", h.retrains)
	}
	if len(lc.Transitions()) != 0 {
		t.Fatalf("healthy run logged transitions: %+v", lc.Transitions())
	}
}

func TestLifecycleDriftDegradesThenHeals(t *testing.T) {
	h := &lifecycleHarness{}
	lc, err := NewLifecycle(h.config(""), []byte("model-0"), 0)
	if err != nil {
		t.Fatal(err)
	}
	lc.SetClassifier(thresholdModel(0))
	// A shifted window: degrade, retrain immediately, promote, heal.
	res := lc.Tick(time.Minute, driftDataset(500, 4, 9))
	if !res.Retrained || !res.Promoted || !res.ModelChanged {
		t.Fatalf("drift tick = %+v", res)
	}
	if res.State != StateHealthy {
		t.Fatalf("state after promotion = %v", res.State)
	}
	log := lc.Transitions()
	if len(log) != 2 || log[0].To != StateDegraded || log[1].To != StateHealthy {
		t.Fatalf("transition log %+v", log)
	}
}

func TestLifecycleRollbackToLastKnownGood(t *testing.T) {
	dir := t.TempDir()
	h := &lifecycleHarness{pass: func(int) bool { return false }}
	lc, err := NewLifecycle(h.config(dir), []byte("model-0"), 0)
	if err != nil {
		t.Fatal(err)
	}
	lc.SetClassifier(thresholdModel(0))
	// Persistent drift + failing validation: degraded → lame-duck with
	// rollback to the initial (last-known-good) bundle.
	var rolledBack bool
	for min := 1; min <= 4; min++ {
		res := lc.Tick(time.Duration(min)*time.Minute, driftDataset(500, 4, int64(min)))
		rolledBack = rolledBack || res.RolledBack
	}
	if lc.State() != StateLameDuck {
		t.Fatalf("state = %v, want lame-duck", lc.State())
	}
	if !rolledBack {
		t.Fatal("no rollback recorded")
	}
	if string(lc.LiveBundle()) != "model-0" {
		t.Fatalf("live bundle = %q, want last-known-good model-0", lc.LiveBundle())
	}
	// Validation starts passing: the next tick promotes and heals.
	h.pass = nil
	res := lc.Tick(10*time.Minute, driftDataset(500, 4, 99))
	if !res.Promoted || res.State != StateHealthy {
		t.Fatalf("recovery tick = %+v", res)
	}
	// The promoted bundle is now persisted as last-known-good.
	b, ok := LoadLKG(dir)
	if !ok || string(b) != string(lc.LiveBundle()) {
		t.Fatalf("LKG on disk = %q/%v, live = %q", b, ok, lc.LiveBundle())
	}
}

func TestLifecycleLKGPersistedAtStart(t *testing.T) {
	dir := t.TempDir()
	h := &lifecycleHarness{}
	if _, err := NewLifecycle(h.config(dir), []byte("boot-model"), 0); err != nil {
		t.Fatal(err)
	}
	b, ok := LoadLKG(dir)
	if !ok || string(b) != "boot-model" {
		t.Fatalf("LKG = %q/%v", b, ok)
	}
	if _, ok := LoadLKG(t.TempDir()); ok {
		t.Fatal("LoadLKG invented a bundle in an empty dir")
	}
}

func TestLifecycleDeterministicTransitions(t *testing.T) {
	run := func() []Transition {
		h := &lifecycleHarness{pass: func(a int) bool { return a > 2 }}
		lc, err := NewLifecycle(h.config(""), []byte("m0"), 0)
		if err != nil {
			t.Fatal(err)
		}
		lc.SetClassifier(thresholdModel(0))
		for min := 1; min <= 8; min++ {
			mean := 0.0
			if min >= 3 && min <= 6 {
				mean = 4 // drift window
			}
			lc.Tick(time.Duration(min)*time.Minute, driftDataset(300, mean, int64(min)))
		}
		return lc.Transitions()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("seeded runs diverge:\n%+v\nvs\n%+v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("scripted drift produced no transitions")
	}
}

func TestLifecycleStateStrings(t *testing.T) {
	for _, s := range []LifecycleState{StateHealthy, StateDegraded, StateLameDuck} {
		if s.String() == "" {
			t.Errorf("state %d has empty String()", s)
		}
	}
}

var _ ml.Classifier = constModel(0) // the test doubles satisfy the real interface
