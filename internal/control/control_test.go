package control

import (
	"testing"
	"time"

	"campuslab/internal/dataplane"
	"campuslab/internal/datastore"
	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/traffic"
	"campuslab/internal/xai"
)

// pipeline holds the trained artifacts shared by control-loop tests.
type pipeline struct {
	plan      *traffic.AddressPlan
	forest    *ml.Forest
	tree      *ml.Tree
	dropProg  *dataplane.Program
	alertProg *dataplane.Program
}

// buildPipeline trains the full chain once: scenario -> store -> packet
// features -> forest -> extracted tree -> compiled programs.
func buildPipeline(t testing.TB) *pipeline {
	t.Helper()
	plan := traffic.DefaultPlan(40)
	benign := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 60, Duration: 4 * time.Second, Seed: 91})
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(3),
		Start: 500 * time.Millisecond, Duration: 3 * time.Second, Rate: 900, Seed: 92,
	})
	st := datastore.New()
	g := traffic.NewMerge(benign, amp)
	var f traffic.Frame
	for g.Next(&f) {
		st.IngestFrame(&f)
	}
	ds := features.FromPackets(st, 1.0).BinaryRelabel(traffic.LabelDNSAmp)
	forest, err := ml.FitForest(ds, 2, ml.ForestConfig{Trees: 20, MaxDepth: 8, Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := xai.Extract(forest, ds, xai.ExtractConfig{MaxDepth: 4, Seed: 94})
	if err != nil {
		t.Fatal(err)
	}
	dropProg, err := dataplane.Compile(ex.Tree, features.PacketSchema, dataplane.CompileConfig{
		Name: "amp-drop", DropClasses: []int{1}, MinConfidence: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	alertProg, err := dataplane.Compile(ex.Tree, features.PacketSchema, dataplane.CompileConfig{
		Name: "amp-alert", // no DropClasses: attack rules become alerts
	})
	if err != nil {
		t.Fatal(err)
	}
	return &pipeline{plan: plan, forest: forest, tree: ex.Tree, dropProg: dropProg, alertProg: alertProg}
}

// attackScenario returns a fresh replay generator (same seeds as training
// scenario shape but different seed values — a held-out episode).
func (p *pipeline) attackScenario(benignSeed, attackSeed int64) traffic.Generator {
	benign := traffic.NewCampus(traffic.Profile{Plan: p.plan, FlowsPerSecond: 60, Duration: 5 * time.Second, Seed: benignSeed})
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: p.plan, Victim: p.plan.Host(7),
		Start: time.Second, Duration: 3 * time.Second, Rate: 900, Seed: attackSeed,
	})
	return traffic.NewMerge(benign, amp)
}

func TestDataPlaneTierDropsInline(t *testing.T) {
	p := buildPipeline(t)
	loop, err := NewLoop(LoopConfig{Tier: TierDataPlane, Program: p.dropProg})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := loop.Replay(p.attackScenario(101, 102))
	if err != nil {
		t.Fatal(err)
	}
	if stats.DetectionRecall() < 0.9 {
		t.Errorf("inline recall = %v", stats.DetectionRecall())
	}
	if stats.CollateralRate() > 0.02 {
		t.Errorf("collateral = %v", stats.CollateralRate())
	}
	if stats.InlineDrops == 0 || stats.FilterDrops != 0 {
		t.Errorf("drops = inline %d / filter %d; dataplane tier should drop inline", stats.InlineDrops, stats.FilterDrops)
	}
	if stats.Escalations != 0 {
		t.Errorf("dataplane tier escalated %d packets", stats.Escalations)
	}
}

func TestControlPlaneTierMitigates(t *testing.T) {
	p := buildPipeline(t)
	loop, err := NewLoop(LoopConfig{
		Tier: TierControlPlane, Program: p.alertProg, Model: p.tree,
		Threshold: 0.9, Window: time.Second, MinEvidence: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := loop.Replay(p.attackScenario(103, 104))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Mitigations) == 0 {
		t.Fatal("no mitigation installed")
	}
	m := stats.Mitigations[0]
	if m.Victim != p.plan.Host(7) {
		t.Errorf("mitigated %v, want victim %v", m.Victim, p.plan.Host(7))
	}
	if m.Confidence < 0.9 {
		t.Errorf("confidence = %v", m.Confidence)
	}
	// Attack starts at 1s; mitigation should land shortly after.
	if m.InstalledAt < time.Second || m.InstalledAt > 3*time.Second {
		t.Errorf("mitigation at %v", m.InstalledAt)
	}
	if stats.FilterDrops == 0 {
		t.Error("installed filter dropped nothing")
	}
	if stats.DetectionRecall() < 0.5 {
		t.Errorf("recall = %v (detect-then-mitigate should still catch most of a 3s attack)", stats.DetectionRecall())
	}
	if stats.Escalations == 0 {
		t.Error("no escalations on alert tier")
	}
}

func TestCloudTierSlowerThanControlPlane(t *testing.T) {
	p := buildPipeline(t)
	run := func(tier Tier, model ml.Classifier) LoopStats {
		loop, err := NewLoop(LoopConfig{
			Tier: tier, Program: p.alertProg, Model: model,
			Threshold: 0.9, Window: time.Second, MinEvidence: 30,
		})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := loop.Replay(p.attackScenario(105, 106))
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	cp := run(TierControlPlane, p.tree)
	cl := run(TierCloud, p.forest)
	if len(cp.Mitigations) == 0 || len(cl.Mitigations) == 0 {
		t.Fatal("a tier failed to mitigate")
	}
	if cl.InferMean <= cp.InferMean {
		t.Errorf("cloud inference latency %v <= control plane %v", cl.InferMean, cp.InferMean)
	}
	if cl.Mitigations[0].InstalledAt < cp.Mitigations[0].InstalledAt {
		t.Errorf("cloud mitigated earlier (%v) than control plane (%v)",
			cl.Mitigations[0].InstalledAt, cp.Mitigations[0].InstalledAt)
	}
}

func TestCapacityQueueingGrowsLatency(t *testing.T) {
	eng := NewInferenceEngine(TierModel{RTT: time.Millisecond, Service: 10 * time.Microsecond, CapacityPPS: 1000})
	// Offer 10k requests in one virtual second: 10x over capacity.
	var last time.Duration
	for i := 0; i < 10000; i++ {
		last = eng.Submit(time.Duration(i) * 100 * time.Microsecond)
	}
	n, mean, max := eng.LatencyStats()
	if n != 10000 {
		t.Fatalf("n = %d", n)
	}
	if mean < 10*time.Millisecond {
		t.Errorf("mean latency %v too low for 10x overload", mean)
	}
	if max < mean {
		t.Error("max < mean")
	}
	if last < 9*time.Second {
		t.Errorf("last verdict at %v; 10k requests at 1k/s should take ~10s", last)
	}
}

func TestUncongestedEngineLatencyIsRTTPlusService(t *testing.T) {
	eng := NewInferenceEngine(TierModel{RTT: 2 * time.Millisecond, Service: 100 * time.Microsecond, CapacityPPS: 1_000_000})
	done := eng.Submit(time.Second)
	want := time.Second + 2*time.Millisecond + 100*time.Microsecond
	// Allow the capacity spacing term.
	if done < want || done > want+10*time.Microsecond {
		t.Errorf("done = %v, want ~%v", done, want)
	}
}

func TestNewLoopValidation(t *testing.T) {
	if _, err := NewLoop(LoopConfig{}); err == nil {
		t.Error("accepted nil program")
	}
	prog := &dataplane.Program{Name: "x", Default: dataplane.ActionPermit}
	if _, err := NewLoop(LoopConfig{Tier: TierCloud, Program: prog}); err == nil {
		t.Error("accepted cloud tier without model")
	}
	if _, err := NewLoop(LoopConfig{Tier: TierDataPlane, Program: prog}); err != nil {
		t.Errorf("dataplane tier needs no model: %v", err)
	}
}

func TestTierNames(t *testing.T) {
	if TierDataPlane.String() != "dataplane" || TierCloud.String() != "cloud" {
		t.Error("tier names wrong")
	}
}

func BenchmarkLoopFeedDataplane(b *testing.B) {
	p := buildPipeline(b)
	loop, err := NewLoop(LoopConfig{Tier: TierDataPlane, Program: p.dropProg})
	if err != nil {
		b.Fatal(err)
	}
	frames := traffic.Collect(p.attackScenario(107, 108), 5000)
	fp := newParser()
	summaries := parseAll(b, fp, frames)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(frames)
		loop.Feed(&frames[j], &summaries[j])
	}
}
