package faults

import (
	"errors"
	"fmt"
	"testing"
)

func TestHealthyInjectsNothing(t *testing.T) {
	for i := 0; i < 1000; i++ {
		if err := Healthy.Fail(OpInstall); err != nil {
			t.Fatalf("healthy injector failed call %d: %v", i, err)
		}
	}
}

func TestScheduleFiresOnExactWindows(t *testing.T) {
	s := NewSchedule().
		FailCalls(OpInstall, 2, 4, KindTransient).
		FailCalls(OpInstall, 7, 7, KindPermanent)
	var got []string
	for i := 1; i <= 8; i++ {
		err := s.Fail(OpInstall)
		switch {
		case err == nil:
			got = append(got, "ok")
		case IsTransient(err):
			got = append(got, "t")
		case IsPermanent(err):
			got = append(got, "p")
		}
	}
	want := []string{"ok", "t", "t", "t", "ok", "ok", "p", "ok"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d: got %v, want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
	st := s.Stats()[OpInstall]
	if st.Calls != 8 || st.Transient != 3 || st.Permanent != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestScheduleCountsPerOp(t *testing.T) {
	s := NewSchedule().FailCalls(OpInstall, 1, 1, KindTransient)
	// Calls to a different op must not advance OpInstall's counter.
	if err := s.Fail(OpStoreWrite); err != nil {
		t.Fatal("unscripted op failed")
	}
	if err := s.Fail(OpInstall); !IsTransient(err) {
		t.Fatalf("first OpInstall call should fail, got %v", err)
	}
}

func TestProbIsDeterministicAndRateBounded(t *testing.T) {
	run := func() (faults int, kinds []Kind) {
		p := NewProb(42).Rate(OpInstall, 0.3, 0.05)
		for i := 0; i < 2000; i++ {
			if err := p.Fail(OpInstall); err != nil {
				faults++
				var fe *Error
				errors.As(err, &fe)
				kinds = append(kinds, fe.Kind)
			}
		}
		return faults, kinds
	}
	f1, k1 := run()
	f2, k2 := run()
	if f1 != f2 || len(k1) != len(k2) {
		t.Fatalf("same seed diverged: %d vs %d faults", f1, f2)
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("fault %d kind differs across identical runs", i)
		}
	}
	// ~35% of 2000; allow generous slack, but it must be in the ballpark.
	if f1 < 500 || f1 > 900 {
		t.Errorf("fault count %d far from expected ~700", f1)
	}
}

func TestProbPerOpStreamsAreIndependent(t *testing.T) {
	// Interleaving calls to another op must not change this op's fault
	// sequence: per-op RNGs are derived independently from the seed.
	seq := func(interleave bool) []uint64 {
		p := NewProb(7).Rate(OpInstall, 0.2, 0).Rate(OpStoreWrite, 0.5, 0)
		var out []uint64
		for i := 0; i < 500; i++ {
			if interleave {
				p.Fail(OpStoreWrite)
			}
			if err := p.Fail(OpInstall); err != nil {
				var fe *Error
				errors.As(err, &fe)
				out = append(out, fe.Seq)
			}
		}
		return out
	}
	a, b := seq(false), seq(true)
	if len(a) != len(b) {
		t.Fatalf("interleaving changed fault count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d at call %d vs %d", i, a[i], b[i])
		}
	}
}

func TestChainFirstFaultWins(t *testing.T) {
	sched := NewSchedule().FailCalls(OpInstall, 1, 1, KindPermanent)
	noise := NewProb(1).Rate(OpInstall, 1.0, 0) // always transient
	c := Chain{sched, noise}
	err := c.Fail(OpInstall)
	if !IsPermanent(err) {
		t.Fatalf("want scheduled permanent fault first, got %v", err)
	}
	if err := c.Fail(OpInstall); !IsTransient(err) {
		t.Fatalf("want noise transient fault second, got %v", err)
	}
}

func TestErrorClassification(t *testing.T) {
	te := &Error{Op: OpInstall, Kind: KindTransient, Seq: 3}
	pe := &Error{Op: OpInstall, Kind: KindPermanent, Seq: 4}
	if !IsTransient(te) || IsPermanent(te) {
		t.Error("transient misclassified")
	}
	if !IsPermanent(pe) || IsTransient(pe) {
		t.Error("permanent misclassified")
	}
	wrapped := fmt.Errorf("dataplane: %w", te)
	if !IsTransient(wrapped) {
		t.Error("wrapped transient not detected")
	}
	if IsTransient(errors.New("plain")) || IsPermanent(nil) {
		t.Error("non-fault errors misclassified")
	}
	for _, e := range []*Error{te, pe} {
		if e.Error() == "" {
			t.Error("empty rendering")
		}
	}
}
