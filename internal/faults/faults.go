// Package faults is a deterministic, seedable fault-injection layer for
// road-testing the system the way a production campus network would break
// it: transient rule-install failures, full switch tables, dead inference
// tiers, interrupted snapshot writes. Instrumented call sites (the
// dataplane install path, the control loop's inference tiers, the
// datastore's file writer) ask an Injector whether this call fails; the
// healthy no-op injector costs one nil check and changes nothing, so the
// plumbing is free in production configurations.
//
// All injectors are deterministic: probabilistic faults derive from a
// seed, scripted schedules fire on exact per-op call indices, and nothing
// reads the wall clock — the same replay under the same injector produces
// the same faults, which is what makes chaos experiments (E14)
// reproducible.
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"

	"campuslab/internal/obs"
)

// Kind classifies an injected fault.
type Kind uint8

const (
	// KindTransient faults succeed on retry (a dropped control-channel
	// message, a busy table manager). Callers should back off and retry.
	KindTransient Kind = iota
	// KindPermanent faults do not clear on retry (table full, tier down).
	// Callers must degrade instead of retrying.
	KindPermanent
)

// String names the kind.
func (k Kind) String() string {
	if k == KindTransient {
		return "transient"
	}
	return "permanent"
}

// Instrumented operation names. Injector implementations key schedules
// and rates by these.
const (
	// OpInstall is a dataplane rule/meter install (Switch.InstallFilter,
	// Switch.InstallRateLimit).
	OpInstall = "dataplane.install"
	// OpStoreWrite is one buffered write during a datastore snapshot save.
	OpStoreWrite = "store.write"
	// OpStoreSync is the pre-rename fsync of a snapshot temp file.
	OpStoreSync = "store.sync"
	// OpStoreRename is the atomic rename publishing a snapshot.
	OpStoreRename = "store.rename"
)

// OpInfer returns the inference-op name for a tier ("infer.dataplane",
// "infer.controlplane", "infer.cloud").
func OpInfer(tier string) string { return "infer." + tier }

// Error is the typed error every injector returns. Callers classify it
// with IsTransient/IsPermanent (via errors.As), never by string.
type Error struct {
	Op   string // instrumented operation that failed
	Kind Kind   // transient vs permanent
	Seq  uint64 // 1-based call index of the failed call, per op
}

// Error renders the fault.
func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s failure at %s (call %d)", e.Kind, e.Op, e.Seq)
}

// IsTransient reports whether err is (or wraps) a transient injected
// fault.
func IsTransient(err error) bool {
	fe, ok := asFault(err)
	return ok && fe.Kind == KindTransient
}

// IsPermanent reports whether err is (or wraps) a permanent injected
// fault.
func IsPermanent(err error) bool {
	fe, ok := asFault(err)
	return ok && fe.Kind == KindPermanent
}

func asFault(err error) (*Error, bool) {
	for ; err != nil; err = unwrap(err) {
		if fe, ok := err.(*Error); ok {
			return fe, true
		}
	}
	return nil, false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

// Injector decides, per instrumented call, whether that call fails.
// A nil error means the call proceeds normally. Implementations must be
// safe for concurrent use.
type Injector interface {
	Fail(op string) error
}

// OpStats counts one op's traffic through an injector.
type OpStats struct {
	Calls     uint64 // instrumented calls observed
	Transient uint64 // transient faults injected
	Permanent uint64 // permanent faults injected
}

// counters is the shared per-op accounting every injector embeds.
type counters struct {
	mu    sync.Mutex
	perOp map[string]*OpStats
}

func (c *counters) record(op string, k Kind, injected bool) (seq uint64) {
	if c.perOp == nil {
		c.perOp = make(map[string]*OpStats)
	}
	st := c.perOp[op]
	if st == nil {
		st = &OpStats{}
		c.perOp[op] = st
	}
	st.Calls++
	if injected {
		if k == KindTransient {
			st.Transient++
		} else {
			st.Permanent++
		}
		// Every injector funnels injected faults through here, so this
		// one registry write covers install, inference, and persistence
		// faults process-wide. Fault events are rare by construction;
		// the handle lookup is off any hot path.
		obs.Default.Counter("campuslab_faults_injected_total",
			"kind", k.String(), "op", op).Inc()
	}
	return st.Calls
}

func (c *counters) stats() map[string]OpStats {
	out := make(map[string]OpStats, len(c.perOp))
	for op, st := range c.perOp {
		out[op] = *st
	}
	return out
}

// None is the always-healthy injector: every call succeeds. Its zero cost
// is the contract that lets fault plumbing stay wired in production paths.
type None struct{}

// Fail always returns nil.
func (None) Fail(string) error { return nil }

// Healthy is the shared no-op injector.
var Healthy Injector = None{}

// Prob injects faults probabilistically at per-op rates, driven by a
// per-op RNG derived from one seed — deterministic for a fixed per-op call
// sequence, and independent of how calls to different ops interleave.
type Prob struct {
	seed int64

	mu    sync.Mutex
	cnt   counters
	rates map[string]probRate
	rngs  map[string]*rand.Rand
}

type probRate struct{ transient, permanent float64 }

// NewProb builds a probabilistic injector; all rates start at zero.
func NewProb(seed int64) *Prob {
	return &Prob{
		seed:  seed,
		rates: make(map[string]probRate),
		rngs:  make(map[string]*rand.Rand),
	}
}

// Rate sets op's fault probabilities (each in [0,1]; checked in order
// transient, permanent against one uniform draw). Returns p for chaining.
func (p *Prob) Rate(op string, transient, permanent float64) *Prob {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rates[op] = probRate{transient: transient, permanent: permanent}
	return p
}

// Fail draws the op's RNG and injects at the configured rates.
func (p *Prob) Fail(op string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.rates[op]
	if !ok || (r.transient <= 0 && r.permanent <= 0) {
		p.cnt.record(op, KindTransient, false)
		return nil
	}
	rng := p.rngs[op]
	if rng == nil {
		h := fnv.New64a()
		h.Write([]byte(op))
		rng = rand.New(rand.NewSource(p.seed ^ int64(h.Sum64())))
		p.rngs[op] = rng
	}
	u := rng.Float64()
	var kind Kind
	switch {
	case u < r.transient:
		kind = KindTransient
	case u < r.transient+r.permanent:
		kind = KindPermanent
	default:
		p.cnt.record(op, KindTransient, false)
		return nil
	}
	seq := p.cnt.record(op, kind, true)
	return &Error{Op: op, Kind: kind, Seq: seq}
}

// Stats snapshots per-op call and fault counts.
func (p *Prob) Stats() map[string]OpStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cnt.stats()
}

// Schedule injects faults on scripted per-op call-index windows: "fail
// calls 3 through 7 of dataplane.install, transiently". Calls are counted
// from 1 per op. Windows may overlap; the first matching window wins.
type Schedule struct {
	mu      sync.Mutex
	cnt     counters
	windows map[string][]window
}

type window struct {
	from, to uint64 // inclusive call-index range
	kind     Kind
}

// NewSchedule builds an empty scripted injector.
func NewSchedule() *Schedule {
	return &Schedule{windows: make(map[string][]window)}
}

// FailCalls scripts faults of the given kind for op calls from..to
// (1-based, inclusive). Returns s for chaining.
func (s *Schedule) FailCalls(op string, from, to uint64, kind Kind) *Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.windows[op] = append(s.windows[op], window{from: from, to: to, kind: kind})
	return s
}

// Fail fires when the op's call counter lands inside a scripted window.
func (s *Schedule) Fail(op string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.cnt.record(op, KindTransient, false)
	for _, w := range s.windows[op] {
		if seq >= w.from && seq <= w.to {
			// Re-record as a fault (undo the healthy count above).
			st := s.cnt.perOp[op]
			if w.kind == KindTransient {
				st.Transient++
			} else {
				st.Permanent++
			}
			return &Error{Op: op, Kind: w.kind, Seq: seq}
		}
	}
	return nil
}

// Stats snapshots per-op call and fault counts.
func (s *Schedule) Stats() map[string]OpStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cnt.stats()
}

// Chain composes injectors: the first non-nil fault wins, so a scripted
// outage can ride on top of background probabilistic noise. Every
// component observes every call (all counters advance), which keeps each
// component's schedule aligned with the full call stream.
type Chain []Injector

// Fail asks each injector in order and returns the first fault.
func (c Chain) Fail(op string) error {
	var first error
	for _, in := range c {
		if err := in.Fail(op); err != nil && first == nil {
			first = err
		}
	}
	return first
}
