// Package features turns data-store contents into labeled ML datasets —
// the "feature engineering as a first-class citizen" workflow of §2/§3:
// with the full data store available, features are computed after the
// fact, from ground truth, with no new measurement experiments.
package features

import (
	"fmt"
	"math"
	"math/rand"

	"campuslab/internal/traffic"
)

// Dataset is a labeled design matrix. Rows of X align with Y; Schema names
// the columns.
type Dataset struct {
	Schema []string
	X      [][]float64
	Y      []int // class index (traffic.Label numeric value)
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// Dims returns the feature dimensionality.
func (d *Dataset) Dims() int { return len(d.Schema) }

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("features: %d rows vs %d labels", len(d.X), len(d.Y))
	}
	for i, row := range d.X {
		if len(row) != len(d.Schema) {
			return fmt.Errorf("features: row %d has %d dims, schema has %d", i, len(row), len(d.Schema))
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("features: row %d col %d (%s) is %v", i, j, d.Schema[j], v)
			}
		}
	}
	return nil
}

// ClassCounts tallies examples per class.
func (d *Dataset) ClassCounts() map[int]int {
	out := make(map[int]int)
	for _, y := range d.Y {
		out[y]++
	}
	return out
}

// Shuffle permutes examples deterministically.
func (d *Dataset) Shuffle(seed int64) {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(d.X), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Split returns train/test datasets with the first trainFrac of examples
// in train (shuffle first for a random split).
func (d *Dataset) Split(trainFrac float64) (train, test *Dataset) {
	n := int(float64(len(d.X)) * trainFrac)
	if n < 0 {
		n = 0
	}
	if n > len(d.X) {
		n = len(d.X)
	}
	train = &Dataset{Schema: d.Schema, X: d.X[:n], Y: d.Y[:n]}
	test = &Dataset{Schema: d.Schema, X: d.X[n:], Y: d.Y[n:]}
	return train, test
}

// Subsample returns up to n examples per class, deterministically.
func (d *Dataset) Subsample(perClass int, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	byClass := map[int][]int{}
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	out := &Dataset{Schema: d.Schema}
	for _, idxs := range byClass {
		r.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		take := perClass
		if take > len(idxs) {
			take = len(idxs)
		}
		for _, i := range idxs[:take] {
			out.X = append(out.X, d.X[i])
			out.Y = append(out.Y, d.Y[i])
		}
	}
	out.Shuffle(seed + 1)
	return out
}

// Append adds other's rows (schemas must match).
func (d *Dataset) Append(other *Dataset) error {
	if len(d.Schema) == 0 {
		d.Schema = other.Schema
	}
	if len(other.Schema) != len(d.Schema) {
		return fmt.Errorf("features: schema mismatch %d vs %d", len(other.Schema), len(d.Schema))
	}
	d.X = append(d.X, other.X...)
	d.Y = append(d.Y, other.Y...)
	return nil
}

// BinaryRelabel maps the dataset to a two-class problem: positive (1) for
// the given label, 0 otherwise.
func (d *Dataset) BinaryRelabel(positive traffic.Label) *Dataset {
	out := &Dataset{Schema: d.Schema, X: d.X, Y: make([]int, len(d.Y))}
	for i, y := range d.Y {
		if y == int(positive) {
			out.Y[i] = 1
		}
	}
	return out
}

// Standardizer rescales features to zero mean / unit variance, fitted on
// training data and applied to both splits (never fit on test data).
type Standardizer struct {
	Mean  []float64
	Scale []float64
}

// FitStandardizer computes per-column statistics from d.
func FitStandardizer(d *Dataset) *Standardizer {
	dims := d.Dims()
	s := &Standardizer{Mean: make([]float64, dims), Scale: make([]float64, dims)}
	n := float64(len(d.X))
	if n == 0 {
		for j := range s.Scale {
			s.Scale[j] = 1
		}
		return s
	}
	for _, row := range d.X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range d.X {
		for j, v := range row {
			dv := v - s.Mean[j]
			s.Scale[j] += dv * dv
		}
	}
	for j := range s.Scale {
		s.Scale[j] = math.Sqrt(s.Scale[j] / n)
		if s.Scale[j] == 0 {
			s.Scale[j] = 1
		}
	}
	return s
}

// Apply rescales d in place and returns it.
func (s *Standardizer) Apply(d *Dataset) *Dataset {
	for _, row := range d.X {
		for j := range row {
			row[j] = (row[j] - s.Mean[j]) / s.Scale[j]
		}
	}
	return d
}

// Entropy computes the Shannon entropy (bits) of a count distribution — a
// workhorse feature for scan/amplification detection.
func Entropy[K comparable](counts map[K]int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}
