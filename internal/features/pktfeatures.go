package features

import (
	"campuslab/internal/datastore"
	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

// PacketSchema names the per-packet features a programmable switch can
// compute inline from header fields — the only features a deployable
// in-network model may use (Figure 2's target-specific program). Order is
// part of the dataplane compiler's contract; see internal/dataplane.
var PacketSchema = []string{
	"wire_len",      // 0
	"is_udp",        // 1
	"is_tcp",        // 2
	"dst_port",      // 3
	"src_port",      // 4
	"tcp_syn_noack", // 5
	"dns_resp",      // 6
	"dns_any",       // 7
	"dns_answers",   // 8
	"ttl",           // 9
}

// PacketVector fills v (len(PacketSchema)) from a packet summary.
func PacketVector(s *packet.Summary, v []float64) {
	v[0] = float64(s.WireLen)
	v[1] = b2f(s.HasUDP)
	v[2] = b2f(s.HasTCP)
	v[3] = float64(s.Tuple.DstPort)
	v[4] = float64(s.Tuple.SrcPort)
	v[5] = b2f(s.HasTCP && s.TCPFlags.Has(packet.TCPSyn) && !s.TCPFlags.Has(packet.TCPAck))
	v[6] = b2f(s.IsDNS && s.DNSResponse)
	v[7] = b2f(s.IsDNS && s.DNSQueryType == packet.DNSTypeANY)
	v[8] = float64(s.DNSAnswerCnt)
	v[9] = float64(s.TTL)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// FromPackets extracts one labeled example per stored packet, labeled by
// the ground-truth label of the packet's flow. benignKeep in (0,1] keeps
// only that fraction of benign packets (class balance; attacks are rare in
// count of flows but flood in packets — and vice versa for beacons).
func FromPackets(st *datastore.Store, benignKeep float64) *Dataset {
	if benignKeep <= 0 || benignKeep > 1 {
		benignKeep = 1
	}
	labelOf := make(map[packet.FiveTuple]traffic.Label)
	for _, fm := range st.Flows() {
		if fm.Labeled {
			labelOf[fm.Key] = fm.Label
		}
	}
	d := &Dataset{Schema: PacketSchema}
	benignSeen := 0
	keepEvery := int(1 / benignKeep)
	if keepEvery < 1 {
		keepEvery = 1
	}
	st.Scan(func(sp *datastore.StoredPacket) bool {
		if !sp.Summary.HasIP {
			return true
		}
		label := traffic.LabelBenign
		if l, ok := labelOf[sp.Summary.Tuple.Canonical()]; ok {
			label = l
		}
		if label == traffic.LabelBenign {
			benignSeen++
			if benignSeen%keepEvery != 0 {
				return true
			}
		}
		v := make([]float64, len(PacketSchema))
		PacketVector(&sp.Summary, v)
		d.X = append(d.X, v)
		d.Y = append(d.Y, int(label))
		return true
	})
	return d
}
