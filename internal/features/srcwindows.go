package features

import (
	"net/netip"
	"time"

	"campuslab/internal/datastore"
	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

// SourceWindowSchema names per-(source, window) features — the view a
// scan/sweep detector needs. A port scanner touches many destinations and
// ports from one source; no per-packet or per-destination feature ever
// sees that fan-out.
var SourceWindowSchema = []string{
	"pps",            // 0: packets/s from the source
	"distinct_dsts",  // 1
	"dst_entropy",    // 2
	"distinct_ports", // 3
	"port_entropy",   // 4
	"syn_frac",       // 5: bare-SYN fraction
	"bytes_per_pkt",  // 6
	"dns_frac",       // 7
	"src_internal",   // 8
}

// SourceWindowConfig parameterizes per-source extraction.
type SourceWindowConfig struct {
	// Window is the aggregation interval (default 1s).
	Window time.Duration
	// Campus classifies sources as internal/external.
	Campus netip.Prefix
	// MinPackets drops windows with fewer packets (default 3).
	MinPackets int
}

// srcAgg accumulates one (source, window) cell. It is shared by the batch
// extractor below and the streaming detector in internal/detect.
type srcAgg struct {
	pkts, bytes int
	dsts        map[netip.Addr]int
	ports       map[uint16]int
	syn         int
	dns         int
}

func newSrcAgg() *srcAgg {
	return &srcAgg{dsts: make(map[netip.Addr]int), ports: make(map[uint16]int)}
}

func (a *srcAgg) observe(s *packet.Summary) {
	a.pkts++
	a.bytes += s.WireLen
	a.dsts[s.Tuple.DstIP]++
	a.ports[s.Tuple.DstPort]++
	if s.HasTCP && s.TCPFlags.Has(packet.TCPSyn) && !s.TCPFlags.Has(packet.TCPAck) {
		a.syn++
	}
	if s.IsDNS {
		a.dns++
	}
}

// vector renders the aggregate as a SourceWindowSchema feature row.
func (a *srcAgg) vector(src netip.Addr, campus netip.Prefix, window time.Duration) []float64 {
	v := make([]float64, len(SourceWindowSchema))
	secs := window.Seconds()
	v[0] = float64(a.pkts) / secs
	v[1] = float64(len(a.dsts))
	v[2] = Entropy(a.dsts)
	v[3] = float64(len(a.ports))
	v[4] = Entropy(a.ports)
	v[5] = float64(a.syn) / float64(a.pkts)
	v[6] = float64(a.bytes) / float64(a.pkts)
	v[7] = float64(a.dns) / float64(a.pkts)
	if campus.IsValid() && campus.Contains(src) {
		v[8] = 1
	}
	return v
}

// SourceWindowResult is one closed (source, window) cell from the
// streaming tracker.
type SourceWindowResult struct {
	Src    netip.Addr
	Window int64
	Vector []float64
}

// SourceWindowTracker is the streaming form of FromSourceWindows: feed it
// packets in time order and it emits each source's feature vector when its
// window closes. One instance per goroutine.
type SourceWindowTracker struct {
	cfg    SourceWindowConfig
	curWin int64
	aggs   map[netip.Addr]*srcAgg
}

// NewSourceWindowTracker builds a tracker; zero-value cfg fields default
// as in FromSourceWindows.
func NewSourceWindowTracker(cfg SourceWindowConfig) *SourceWindowTracker {
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.MinPackets <= 0 {
		cfg.MinPackets = 3
	}
	return &SourceWindowTracker{cfg: cfg, aggs: make(map[netip.Addr]*srcAgg)}
}

// Observe folds one packet in; when ts crosses into a new window it
// returns the closed window's qualifying source vectors (nil otherwise).
func (t *SourceWindowTracker) Observe(ts time.Duration, s *packet.Summary) []SourceWindowResult {
	var out []SourceWindowResult
	win := int64(ts / t.cfg.Window)
	if win != t.curWin {
		out = t.flush()
		t.curWin = win
	}
	if s.HasIP {
		a := t.aggs[s.Tuple.SrcIP]
		if a == nil {
			a = newSrcAgg()
			t.aggs[s.Tuple.SrcIP] = a
		}
		a.observe(s)
	}
	return out
}

// Flush closes the current window unconditionally (end of stream).
func (t *SourceWindowTracker) Flush() []SourceWindowResult { return t.flush() }

func (t *SourceWindowTracker) flush() []SourceWindowResult {
	var out []SourceWindowResult
	for src, a := range t.aggs {
		if a.pkts >= t.cfg.MinPackets {
			out = append(out, SourceWindowResult{
				Src: src, Window: t.curWin,
				Vector: a.vector(src, t.cfg.Campus, t.cfg.Window),
			})
		}
	}
	clear(t.aggs)
	return out
}

// FromSourceWindows extracts one labeled example per (source, window).
// A window is labeled with the attack class of any labeled flow the source
// originated during it (attack sources are unambiguous in the scenarios).
func FromSourceWindows(st *datastore.Store, cfg SourceWindowConfig) *Dataset {
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.MinPackets <= 0 {
		cfg.MinPackets = 3
	}
	type key struct {
		src netip.Addr
		win int64
	}
	aggs := make(map[key]*srcAgg)
	labels := make(map[key]traffic.Label)
	st.Scan(func(sp *datastore.StoredPacket) bool {
		if !sp.Summary.HasIP {
			return true
		}
		k := key{src: sp.Summary.Tuple.SrcIP, win: int64(sp.TS / cfg.Window)}
		a := aggs[k]
		if a == nil {
			a = newSrcAgg()
			aggs[k] = a
		}
		a.observe(&sp.Summary)
		// Actor attribution: only packets the malicious actor itself
		// sent label its source's window — a victim's RST replies must
		// not train the detector to convict victims.
		if sp.Actor && sp.Label != traffic.LabelBenign {
			if _, seen := labels[k]; !seen {
				labels[k] = sp.Label
			}
		}
		return true
	})
	d := &Dataset{Schema: SourceWindowSchema}
	for k, a := range aggs {
		if a.pkts < cfg.MinPackets {
			continue
		}
		d.X = append(d.X, a.vector(k.src, cfg.Campus, cfg.Window))
		d.Y = append(d.Y, int(labels[k]))
	}
	return d
}
