package features

import (
	"math"
	"net/netip"
	"sort"
	"time"

	"campuslab/internal/datastore"
	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

// PairSchema names per-(internal host, external peer) features for beacon
// hunting: C&C beaconing is low-and-slow but *periodic* — a statistic only
// visible across many connections in the data store, never in a single
// packet or flow. This is the paper's case for retrospective analysis over
// a retained store.
var PairSchema = []string{
	"conn_count",    // 0: connections host->peer in the analysis span
	"mean_gap_s",    // 1: mean inter-connection gap
	"gap_cv",        // 2: coefficient of variation of gaps (low = periodic)
	"mean_bytes",    // 3: mean bytes per connection (beacons are small)
	"bytes_cv",      // 4: size regularity (beacons are same-sized)
	"dst_wellknown", // 5: peer port < 1024
}

// PairConfig parameterizes beacon-pair extraction.
type PairConfig struct {
	// Campus identifies internal hosts (the potential victims).
	Campus netip.Prefix
	// MinConnections is the fewest host->peer connections worth scoring
	// (default 4 — periodicity needs a few samples).
	MinConnections int
}

// PairID identifies one (internal host, external peer) pair.
type PairID struct {
	Host netip.Addr
	Peer netip.Addr
}

// FromPairs extracts one labeled example per qualifying pair, returning
// the dataset and the pair identities aligned with its rows (callers need
// to know *which* pair a positive prediction names).
func FromPairs(st *datastore.Store, cfg PairConfig) (*Dataset, []PairID) {
	if cfg.MinConnections < 2 {
		cfg.MinConnections = 4
	}
	type pairState struct {
		starts []time.Duration
		bytes  []float64
		port   uint16
		label  traffic.Label
	}
	pairs := make(map[PairID]*pairState)
	for _, fm := range st.Flows() {
		// Orient the flow: internal endpoint is the host.
		var host, peer netip.Addr
		var port uint16
		switch {
		case cfg.Campus.Contains(fm.Key.SrcIP) && !cfg.Campus.Contains(fm.Key.DstIP):
			host, peer, port = fm.Key.SrcIP, fm.Key.DstIP, fm.Key.DstPort
		case cfg.Campus.Contains(fm.Key.DstIP) && !cfg.Campus.Contains(fm.Key.SrcIP):
			host, peer, port = fm.Key.DstIP, fm.Key.SrcIP, fm.Key.SrcPort
		default:
			continue // internal-internal or external-external
		}
		if fm.Key.Proto != packet.IPProtocolTCP {
			continue // beaconing model: TCP sessions
		}
		id := PairID{Host: host, Peer: peer}
		ps := pairs[id]
		if ps == nil {
			ps = &pairState{port: port}
			pairs[id] = ps
		}
		ps.starts = append(ps.starts, fm.First)
		ps.bytes = append(ps.bytes, float64(fm.Bytes))
		if fm.Labeled && ps.label == traffic.LabelBenign {
			ps.label = fm.Label
		}
	}

	d := &Dataset{Schema: PairSchema}
	var ids []PairID
	for id, ps := range pairs {
		if len(ps.starts) < cfg.MinConnections {
			continue
		}
		sort.Slice(ps.starts, func(i, j int) bool { return ps.starts[i] < ps.starts[j] })
		gaps := make([]float64, 0, len(ps.starts)-1)
		for i := 1; i < len(ps.starts); i++ {
			gaps = append(gaps, (ps.starts[i] - ps.starts[i-1]).Seconds())
		}
		v := make([]float64, len(PairSchema))
		v[0] = float64(len(ps.starts))
		v[1] = mean(gaps)
		v[2] = cv(gaps)
		v[3] = mean(ps.bytes)
		v[4] = cv(ps.bytes)
		if ps.port < 1024 && ps.port != 0 {
			v[5] = 1
		}
		d.X = append(d.X, v)
		d.Y = append(d.Y, int(ps.label))
		ids = append(ids, id)
	}
	return d, ids
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// cv is the coefficient of variation (stddev/mean), 0 for degenerate input.
func cv(xs []float64) float64 {
	m := mean(xs)
	if m == 0 || len(xs) < 2 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	return math.Sqrt(ss/float64(len(xs))) / m
}
