package features

import (
	"reflect"
	"testing"
)

// TestFromFlowsWorkersEquivalence: the fanned-out extractor writes into
// index-addressed slots, so the dataset must be identical — row order
// included — at every worker count.
func TestFromFlowsWorkersEquivalence(t *testing.T) {
	st := scenarioStore(t)
	base := FromFlowsWorkers(st, campusPfx, 1)
	if base.Len() < 100 {
		t.Fatalf("only %d flow examples", base.Len())
	}
	for _, w := range []int{2, 4, 16} {
		got := FromFlowsWorkers(st, campusPfx, w)
		if !reflect.DeepEqual(base.Schema, got.Schema) {
			t.Fatalf("workers=%d: schema differs", w)
		}
		if !reflect.DeepEqual(base.X, got.X) {
			t.Fatalf("workers=%d: feature matrix differs from serial", w)
		}
		if !reflect.DeepEqual(base.Y, got.Y) {
			t.Fatalf("workers=%d: labels differ from serial", w)
		}
	}
}
