package features

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"campuslab/internal/datastore"
	"campuslab/internal/packet"
	"campuslab/internal/telemetry"
	"campuslab/internal/traffic"
)

var campusPfx = netip.MustParsePrefix("10.0.0.0/8")

// scenarioStore builds a store with benign traffic plus DNS-amp and
// SYN-flood episodes against distinct victims.
func scenarioStore(t testing.TB) *datastore.Store {
	t.Helper()
	plan := traffic.DefaultPlan(50)
	benign := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 60, Duration: 6 * time.Second, Seed: 31})
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(2),
		Start: time.Second, Duration: 3 * time.Second, Rate: 600, Seed: 32,
	})
	flood := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelSYNFlood, Plan: plan, Victim: plan.Host(9),
		Start: 2 * time.Second, Duration: 2 * time.Second, Rate: 800, Seed: 33,
	})
	g := traffic.NewMerge(benign, amp, flood)
	st := datastore.New()
	var f traffic.Frame
	for g.Next(&f) {
		st.IngestFrame(&f)
	}
	return st
}

func TestFromFlowsProducesValidDataset(t *testing.T) {
	st := scenarioStore(t)
	d := FromFlows(st, campusPfx)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() < 100 {
		t.Fatalf("only %d flow examples", d.Len())
	}
	counts := d.ClassCounts()
	if counts[int(traffic.LabelDNSAmp)] == 0 || counts[int(traffic.LabelSYNFlood)] == 0 || counts[int(traffic.LabelBenign)] == 0 {
		t.Fatalf("class counts %v missing a class", counts)
	}
}

func TestFlowFeatureSemantics(t *testing.T) {
	st := scenarioStore(t)
	d := FromFlows(st, campusPfx)
	ampIdx := index(FlowSchema, "dns_resp_excess")
	anyIdx := index(FlowSchema, "dns_any_frac")
	synIdx := index(FlowSchema, "syn_no_ack")
	var ampExcess, benignExcess, ampAny, benignAny, nAmp, nBenign float64
	for i, row := range d.X {
		switch d.Y[i] {
		case int(traffic.LabelDNSAmp):
			ampExcess += row[ampIdx]
			ampAny += row[anyIdx]
			nAmp++
		case int(traffic.LabelSYNFlood):
			if row[synIdx] != 1 {
				t.Error("syn-flood flow without syn_no_ack")
			}
		case int(traffic.LabelBenign):
			benignExcess += row[ampIdx]
			benignAny += row[anyIdx]
			nBenign++
		}
	}
	if ampExcess/nAmp <= benignExcess/nBenign {
		t.Errorf("dns_resp_excess does not separate: amp %v vs benign %v", ampExcess/nAmp, benignExcess/nBenign)
	}
	if ampAny/nAmp <= benignAny/nBenign {
		t.Errorf("dns_any_frac does not separate on average: amp %v vs benign %v", ampAny/nAmp, benignAny/nBenign)
	}
}

func TestFromWindowsSeparatesVictims(t *testing.T) {
	st := scenarioStore(t)
	d := FromWindows(st, WindowConfig{Window: time.Second, Campus: campusPfx})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := d.ClassCounts()
	if counts[int(traffic.LabelDNSAmp)] == 0 {
		t.Fatal("no dns-amp windows")
	}
	ppsIdx := index(WindowSchema, "pps")
	var ampPPS, benignPPS, nAmp, nBenign float64
	for i, row := range d.X {
		if d.Y[i] == int(traffic.LabelDNSAmp) {
			ampPPS += row[ppsIdx]
			nAmp++
		} else if d.Y[i] == int(traffic.LabelBenign) {
			benignPPS += row[ppsIdx]
			nBenign++
		}
	}
	if nBenign == 0 || ampPPS/nAmp <= benignPPS/nBenign {
		t.Errorf("attack windows not hotter: amp %v benign %v", ampPPS/nAmp, benignPPS/nBenign)
	}
}

func TestSplitAndShuffle(t *testing.T) {
	d := &Dataset{Schema: []string{"a"}}
	for i := 0; i < 100; i++ {
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, i%2)
	}
	d.Shuffle(7)
	train, test := d.Split(0.8)
	if train.Len() != 80 || test.Len() != 20 {
		t.Errorf("split = %d/%d", train.Len(), test.Len())
	}
	// Shuffle determinism
	d2 := &Dataset{Schema: []string{"a"}}
	for i := 0; i < 100; i++ {
		d2.X = append(d2.X, []float64{float64(i)})
		d2.Y = append(d2.Y, i%2)
	}
	d2.Shuffle(7)
	for i := range d.X {
		if d.X[i][0] != d2.X[i][0] {
			t.Fatal("shuffle not deterministic")
		}
	}
}

func TestSubsampleBalances(t *testing.T) {
	d := &Dataset{Schema: []string{"a"}}
	for i := 0; i < 1000; i++ {
		d.X = append(d.X, []float64{float64(i)})
		y := 0
		if i%10 == 0 {
			y = 1
		}
		d.Y = append(d.Y, y)
	}
	sub := d.Subsample(50, 1)
	counts := sub.ClassCounts()
	if counts[0] != 50 || counts[1] != 50 {
		t.Errorf("subsample counts = %v", counts)
	}
}

func TestBinaryRelabel(t *testing.T) {
	d := &Dataset{Schema: []string{"a"}, X: [][]float64{{1}, {2}, {3}}, Y: []int{0, 1, 2}}
	b := d.BinaryRelabel(traffic.Label(2))
	if b.Y[0] != 0 || b.Y[1] != 0 || b.Y[2] != 1 {
		t.Errorf("relabel = %v", b.Y)
	}
}

func TestStandardizer(t *testing.T) {
	d := &Dataset{Schema: []string{"a", "b"}}
	for i := 0; i < 100; i++ {
		d.X = append(d.X, []float64{float64(i), 5}) // col b constant
		d.Y = append(d.Y, 0)
	}
	s := FitStandardizer(d)
	s.Apply(d)
	var mean, variance float64
	for _, row := range d.X {
		mean += row[0]
	}
	mean /= 100
	for _, row := range d.X {
		variance += (row[0] - mean) * (row[0] - mean)
	}
	variance /= 100
	if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-9 {
		t.Errorf("standardized mean/var = %v/%v", mean, variance)
	}
	// Constant column must not produce NaN.
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy(map[string]int{"a": 1, "b": 1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("uniform 2 = %v, want 1 bit", got)
	}
	if got := Entropy(map[string]int{"a": 10}); got != 0 {
		t.Errorf("single = %v, want 0", got)
	}
	if got := Entropy(map[string]int{}); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
}

func TestEntropyProperty(t *testing.T) {
	// Property: entropy of n uniform keys is log2(n), and entropy is
	// maximized by uniformity.
	fn := func(n uint8) bool {
		k := int(n%16) + 1
		m := map[int]int{}
		for i := 0; i < k; i++ {
			m[i] = 7
		}
		return math.Abs(Entropy(m)-math.Log2(float64(k))) < 1e-9
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesBadData(t *testing.T) {
	d := &Dataset{Schema: []string{"a"}, X: [][]float64{{math.NaN()}}, Y: []int{0}}
	if err := d.Validate(); err == nil {
		t.Error("NaN accepted")
	}
	d = &Dataset{Schema: []string{"a"}, X: [][]float64{{1, 2}}, Y: []int{0}}
	if err := d.Validate(); err == nil {
		t.Error("dim mismatch accepted")
	}
	d = &Dataset{Schema: []string{"a"}, X: [][]float64{{1}}, Y: []int{}}
	if err := d.Validate(); err == nil {
		t.Error("row/label mismatch accepted")
	}
}

func TestAppendSchemaMismatch(t *testing.T) {
	a := &Dataset{Schema: []string{"x"}}
	b := &Dataset{Schema: []string{"x", "y"}}
	if err := a.Append(b); err == nil {
		t.Error("schema mismatch accepted")
	}
	c := &Dataset{}
	if err := c.Append(&Dataset{Schema: []string{"x"}, X: [][]float64{{1}}, Y: []int{0}}); err != nil || c.Len() != 1 {
		t.Error("append into empty failed")
	}
}

func TestFromFlowRecords(t *testing.T) {
	tuple := packet.FiveTuple{
		Proto: packet.IPProtocolUDP,
		SrcIP: netip.MustParseAddr("203.0.113.5"), DstIP: netip.MustParseAddr("10.1.1.5"),
		SrcPort: 53, DstPort: 4444,
	}
	recs := []telemetry.FlowRecord{{
		Tuple: tuple.Canonical(), Packets: 5, Bytes: 5000,
		First: 0, Last: time.Second,
	}}
	truth := map[packet.FiveTuple]traffic.Label{tuple.Canonical(): traffic.LabelDNSAmp}
	d := FromFlowRecords(recs, 10, truth)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Y[0] != int(traffic.LabelDNSAmp) {
		t.Error("truth label not applied")
	}
	if d.X[0][index(FlowRecordSchema, "pkts")] != 50 {
		t.Errorf("sampling scale-up wrong: %v", d.X[0][1])
	}
}

func index(schema []string, name string) int {
	for i, s := range schema {
		if s == name {
			return i
		}
	}
	panic("no column " + name)
}

func BenchmarkFromFlows(b *testing.B) {
	st := scenarioStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromFlows(st, campusPfx)
	}
}

func BenchmarkFromWindows(b *testing.B) {
	st := scenarioStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromWindows(st, WindowConfig{Window: time.Second, Campus: campusPfx})
	}
}
