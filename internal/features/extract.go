package features

import (
	"net/netip"
	"time"

	"campuslab/internal/datastore"
	"campuslab/internal/obs"
	"campuslab/internal/packet"
	"campuslab/internal/parallel"
	"campuslab/internal/telemetry"
	"campuslab/internal/traffic"
)

// FlowSchema names the per-flow feature columns produced by FromFlows.
var FlowSchema = []string{
	"duration_s",      // 0
	"pkts",            // 1
	"bytes",           // 2
	"bytes_per_pkt",   // 3
	"pkts_per_s",      // 4
	"payload_frac",    // 5
	"syn_no_ack",      // 6
	"has_rst",         // 7
	"has_fin",         // 8
	"dns_msgs",        // 9
	"dns_resp_excess", // 10: responses - queries (reflection tell)
	"dns_any_frac",    // 11
	"dst_port_wk",     // 12: well-known destination port
	"src_internal",    // 13
	"dst_internal",    // 14
	"is_udp",          // 15
}

// FromFlows extracts one labeled example per stored flow, fanning the
// flow→vector work across GOMAXPROCS workers.
func FromFlows(st *datastore.Store, campus netip.Prefix) *Dataset {
	return FromFlowsWorkers(st, campus, 0)
}

// FromFlowsWorkers is FromFlows with an explicit worker count (0 = auto).
// Rows are index-addressed into pre-sized slices, so the dataset is
// identical — row for row — at any worker count; workers=1 is the serial
// path.
func FromFlowsWorkers(st *datastore.Store, campus netip.Prefix, workers int) *Dataset {
	defer obs.Default.StartSpan("featurize")()
	flows := st.Flows()
	d := &Dataset{
		Schema: FlowSchema,
		X:      make([][]float64, len(flows)),
		Y:      make([]int, len(flows)),
	}
	parallel.For(len(flows), workers, func(i int) {
		fm := &flows[i]
		d.X[i] = flowVector(fm, campus)
		d.Y[i] = int(fm.Label)
	})
	return d
}

func flowVector(fm *datastore.FlowMeta, campus netip.Prefix) []float64 {
	dur := (fm.Last - fm.First).Seconds()
	pkts := float64(fm.Packets)
	bytes := float64(fm.Bytes)
	v := make([]float64, len(FlowSchema))
	v[0] = dur
	v[1] = pkts
	v[2] = bytes
	if pkts > 0 {
		v[3] = bytes / pkts
		v[5] = float64(fm.PayloadBytes) / bytes
	}
	if dur > 0 {
		v[4] = pkts / dur
	} else {
		v[4] = pkts // instantaneous flows: rate = count
	}
	if fm.TCPFlags.Has(packet.TCPSyn) && !fm.TCPFlags.Has(packet.TCPAck) {
		v[6] = 1
	}
	if fm.TCPFlags.Has(packet.TCPRst) {
		v[7] = 1
	}
	if fm.TCPFlags.Has(packet.TCPFin) {
		v[8] = 1
	}
	dnsMsgs := float64(fm.DNSQueries + fm.DNSResponses)
	v[9] = dnsMsgs
	v[10] = float64(fm.DNSResponses) - float64(fm.DNSQueries)
	if dnsMsgs > 0 {
		v[11] = float64(fm.DNSAnyCount) / dnsMsgs
	}
	if fm.Key.DstPort < 1024 && fm.Key.DstPort != 0 {
		v[12] = 1
	}
	if campus.Contains(fm.Key.SrcIP) {
		v[13] = 1
	}
	if campus.Contains(fm.Key.DstIP) {
		v[14] = 1
	}
	if fm.Key.Proto == packet.IPProtocolUDP {
		v[15] = 1
	}
	return v
}

// WindowSchema names the per-(host, window) feature columns.
var WindowSchema = []string{
	"pps",             // 0: packets/s toward the host
	"bps",             // 1: bits/s toward the host
	"distinct_srcs",   // 2
	"src_entropy",     // 3: entropy of source addresses (bits)
	"syn_frac",        // 4
	"dns_resp_frac",   // 5
	"dns_any_frac",    // 6
	"avg_pkt_size",    // 7
	"unanswered_frac", // 8: DNS responses with no query from host in window
	"port_entropy",    // 9: entropy of destination ports (scan tell)
}

// WindowConfig parameterizes windowed extraction.
type WindowConfig struct {
	// Window is the aggregation interval (default 1s).
	Window time.Duration
	// Campus restricts monitored hosts to campus destinations.
	Campus netip.Prefix
	// MinPackets drops windows with fewer inbound packets (noise floor).
	MinPackets int
}

// hostWindow accumulates per-host per-window state.
type hostWindow struct {
	pkts, bytes   int
	srcs          map[netip.Addr]int
	ports         map[uint16]int
	syn           int
	dnsResp       int
	dnsAny        int
	dnsQueriesOut int // queries the host itself sent this window
	label         traffic.Label
	labeled       bool
}

// FromWindows extracts one labeled example per (campus host, window) with
// inbound traffic — the representation a DDoS/scan detector consumes. The
// window label is the ground-truth label of any attack flow touching the
// host in that window (attacks dominate; ties broken by first seen).
func FromWindows(st *datastore.Store, cfg WindowConfig) *Dataset {
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.MinPackets <= 0 {
		cfg.MinPackets = 3
	}
	type key struct {
		host netip.Addr
		win  int64
	}
	wins := make(map[key]*hostWindow)
	// Resolve per-flow labels for packets via the flow table.
	labelOf := make(map[packet.FiveTuple]traffic.Label)
	for _, fm := range st.Flows() {
		if fm.Labeled {
			labelOf[fm.Key] = fm.Label
		}
	}
	st.Scan(func(sp *datastore.StoredPacket) bool {
		if !sp.Summary.HasIP {
			return true
		}
		dst := sp.Summary.Tuple.DstIP
		src := sp.Summary.Tuple.SrcIP
		winIdx := int64(sp.TS / cfg.Window)
		if cfg.Campus.IsValid() && cfg.Campus.Contains(src) {
			// Outbound packet: count DNS queries the host originated.
			if sp.Summary.IsDNS && !sp.Summary.DNSResponse {
				k := key{host: src, win: winIdx}
				if hw := wins[k]; hw != nil {
					hw.dnsQueriesOut++
				} else {
					hw := newHostWindow()
					hw.dnsQueriesOut = 1
					wins[k] = hw
				}
			}
		}
		if cfg.Campus.IsValid() && !cfg.Campus.Contains(dst) {
			return true
		}
		k := key{host: dst, win: winIdx}
		hw := wins[k]
		if hw == nil {
			hw = newHostWindow()
			wins[k] = hw
		}
		hw.pkts++
		hw.bytes += sp.Summary.WireLen
		hw.srcs[src]++
		hw.ports[sp.Summary.Tuple.DstPort]++
		if sp.Summary.HasTCP && sp.Summary.TCPFlags.Has(packet.TCPSyn) && !sp.Summary.TCPFlags.Has(packet.TCPAck) {
			hw.syn++
		}
		if sp.Summary.IsDNS && sp.Summary.DNSResponse {
			hw.dnsResp++
			if sp.Summary.DNSQueryType == packet.DNSTypeANY {
				hw.dnsAny++
			}
		}
		if !hw.labeled {
			if l, ok := labelOf[sp.Summary.Tuple.Canonical()]; ok {
				hw.label, hw.labeled = l, true
			}
		}
		return true
	})

	d := &Dataset{Schema: WindowSchema}
	secs := cfg.Window.Seconds()
	for _, hw := range wins {
		if hw.pkts < cfg.MinPackets {
			continue
		}
		v := make([]float64, len(WindowSchema))
		v[0] = float64(hw.pkts) / secs
		v[1] = float64(hw.bytes*8) / secs
		v[2] = float64(len(hw.srcs))
		v[3] = Entropy(hw.srcs)
		v[4] = float64(hw.syn) / float64(hw.pkts)
		v[5] = float64(hw.dnsResp) / float64(hw.pkts)
		if hw.dnsResp > 0 {
			v[6] = float64(hw.dnsAny) / float64(hw.dnsResp)
		}
		v[7] = float64(hw.bytes) / float64(hw.pkts)
		if hw.dnsResp > 0 {
			un := hw.dnsResp - hw.dnsQueriesOut
			if un < 0 {
				un = 0
			}
			v[8] = float64(un) / float64(hw.dnsResp)
		}
		v[9] = Entropy(hw.ports)
		d.X = append(d.X, v)
		d.Y = append(d.Y, int(hw.label))
	}
	return d
}

func newHostWindow() *hostWindow {
	return &hostWindow{srcs: make(map[netip.Addr]int), ports: make(map[uint16]int)}
}

// FromFlowRecords extracts flow features from sampled NetFlow records (the
// E10 bottom-up baseline). Only fields NetFlow exports are available —
// payload fraction, DNS internals and per-packet details are gone, which
// is exactly the handicap being measured. Labels come from the truth map
// (canonical tuple -> label).
var FlowRecordSchema = []string{
	"duration_s", "pkts", "bytes", "bytes_per_pkt", "pkts_per_s",
	"syn_no_ack", "has_rst", "has_fin", "dst_port_wk", "is_udp",
}

// FromFlowRecords builds a dataset from sampled exporter output.
func FromFlowRecords(recs []telemetry.FlowRecord, sampleRate int, truth map[packet.FiveTuple]traffic.Label) *Dataset {
	d := &Dataset{Schema: FlowRecordSchema}
	for i := range recs {
		r := &recs[i]
		dur := (r.Last - r.First).Seconds()
		pkts := float64(r.Packets) * float64(sampleRate) // inverse-probability estimate
		bytes := float64(r.Bytes) * float64(sampleRate)
		v := make([]float64, len(FlowRecordSchema))
		v[0] = dur
		v[1] = pkts
		v[2] = bytes
		if pkts > 0 {
			v[3] = bytes / pkts
		}
		if dur > 0 {
			v[4] = pkts / dur
		} else {
			v[4] = pkts
		}
		if r.TCPFlags.Has(packet.TCPSyn) && !r.TCPFlags.Has(packet.TCPAck) {
			v[5] = 1
		}
		if r.TCPFlags.Has(packet.TCPRst) {
			v[6] = 1
		}
		if r.TCPFlags.Has(packet.TCPFin) {
			v[7] = 1
		}
		if r.Tuple.DstPort < 1024 && r.Tuple.DstPort != 0 {
			v[8] = 1
		}
		if r.Tuple.Proto == packet.IPProtocolUDP {
			v[9] = 1
		}
		d.X = append(d.X, v)
		y := traffic.LabelBenign
		if l, ok := truth[r.Tuple.Canonical()]; ok {
			y = l
		}
		d.Y = append(d.Y, int(y))
	}
	return d
}
