package xai

import (
	"strings"
	"testing"

	"campuslab/internal/features"
	"campuslab/internal/ml"
)

// thresholdTree builds a simple 1-feature tree: x0 <= 5 -> class 0,
// x0 > 5 -> class 1.
func thresholdTree(t *testing.T) *ml.Tree {
	t.Helper()
	d := &features.Dataset{Schema: []string{"x0"}}
	for i := 0; i < 50; i++ {
		v := float64(i % 10)
		y := 0
		if v > 5 {
			y = 1
		}
		d.X = append(d.X, []float64{v})
		d.Y = append(d.Y, y)
	}
	tree, err := ml.FitTree(d, 2, ml.TreeConfig{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestCounterfactualSingleFeature(t *testing.T) {
	tree := thresholdTree(t)
	x := []float64{2} // class 0
	cf, ok := FindCounterfactual(tree, []string{"x0"}, x, 1, nil)
	if !ok {
		t.Fatal("no counterfactual found")
	}
	if len(cf.Changes) != 1 || cf.Changes[0].Feature != 0 {
		t.Fatalf("changes = %+v", cf.Changes)
	}
	// Applying the change must flip the prediction.
	x2 := []float64{cf.Changes[0].To}
	if tree.Predict(x2) != 1 {
		t.Errorf("counterfactual value %v does not flip the tree", cf.Changes[0].To)
	}
	// The change should land just above the ~5 threshold, not far away.
	if cf.Changes[0].To < 4 || cf.Changes[0].To > 7 {
		t.Errorf("projection %v far from boundary", cf.Changes[0].To)
	}
	if !strings.Contains(cf.String(), "x0") {
		t.Errorf("String = %q", cf.String())
	}
}

func TestCounterfactualMinimality(t *testing.T) {
	// Two-feature ring data: any counterfactual should modify few
	// features and always flip the model.
	train := ringData(600, 17)
	tree, err := ml.FitTree(train, 2, ml.TreeConfig{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	std := features.FitStandardizer(train)
	flipped, total := 0, 0
	for i := 0; i < 100; i++ {
		x := train.X[i]
		cur := tree.Predict(x)
		cf, ok := FindCounterfactual(tree, train.Schema, x, 1-cur, std.Scale)
		if !ok {
			continue
		}
		total++
		x2 := append([]float64(nil), x...)
		for _, ch := range cf.Changes {
			x2[ch.Feature] = ch.To
		}
		if tree.Predict(x2) == 1-cur {
			flipped++
		}
		if len(cf.Changes) > 2 {
			t.Errorf("counterfactual touches %d features in a 2-feature space", len(cf.Changes))
		}
	}
	if total == 0 {
		t.Fatal("no counterfactuals computed")
	}
	if flipped != total {
		t.Errorf("only %d/%d counterfactuals actually flip the model", flipped, total)
	}
}

func TestCounterfactualNoTargetLeaf(t *testing.T) {
	// Single-class dataset: no leaf of class 1 exists.
	d := &features.Dataset{Schema: []string{"x0"}, X: [][]float64{{1}, {2}, {3}}, Y: []int{0, 0, 0}}
	tree, err := ml.FitTree(d, 2, ml.TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := FindCounterfactual(tree, d.Schema, []float64{1}, 1, nil); ok {
		t.Error("found counterfactual to nonexistent class")
	}
}

func TestCounterfactualOnExtractedDetector(t *testing.T) {
	// End-to-end: extract a DNS-amp detector, ask why a benign packet is
	// benign and what would make it attack — the full operator dialogue.
	train := ringData(500, 19)
	forest := trainedForest(t, train)
	ex, err := Extract(forest, train, ExtractConfig{MaxDepth: 4, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.1}
	cur := ex.Tree.Predict(x)
	cf, ok := FindCounterfactual(ex.Tree, train.Schema, x, 1-cur, nil)
	if !ok {
		t.Fatal("no counterfactual")
	}
	x2 := append([]float64(nil), x...)
	for _, ch := range cf.Changes {
		x2[ch.Feature] = ch.To
	}
	if ex.Tree.Predict(x2) == cur {
		t.Error("counterfactual does not flip the extracted model")
	}
}
