package xai

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"campuslab/internal/ml"
)

// Counterfactual answers the operator's follow-up question to an
// explanation: "what is the smallest change to this input that would have
// flipped the decision?" — the contrastive form of step (iv)'s
// white-boxing. For a tree, the exact answer is computable: project the
// input onto every leaf of the desired class and keep the cheapest
// projection.
type Counterfactual struct {
	// TargetClass is the class the modified input would receive.
	TargetClass int
	// Changes lists the feature modifications, fewest first.
	Changes []FeatureChange
	// Distance is the search objective: number of changed features plus
	// the sum of normalized change magnitudes (lower = more plausible).
	Distance float64
}

// FeatureChange is one modified feature.
type FeatureChange struct {
	Feature  int
	Name     string
	From, To float64
}

// String renders the counterfactual for an operator.
func (c Counterfactual) String() string {
	parts := make([]string, len(c.Changes))
	for i, ch := range c.Changes {
		parts[i] = fmt.Sprintf("%s: %.4g -> %.4g", ch.Name, ch.From, ch.To)
	}
	return fmt.Sprintf("would be class %d if %s", c.TargetClass, strings.Join(parts, ", "))
}

// FindCounterfactual returns the minimal modification of x that makes the
// tree predict target. scale gives per-feature normalization constants
// (e.g. a Standardizer's Scale, or nil for unscaled distances). It returns
// false when no leaf of the target class exists.
func FindCounterfactual(t *ml.Tree, schema []string, x []float64, target int, scale []float64) (Counterfactual, bool) {
	best := Counterfactual{Distance: math.Inf(1)}
	found := false
	for _, r := range t.Rules() {
		if r.Class != target {
			continue
		}
		cand, ok := projectOntoRule(r, schema, x, scale)
		if !ok {
			continue
		}
		cand.TargetClass = target
		if cand.Distance < best.Distance {
			best = cand
			found = true
		}
	}
	if !found {
		return Counterfactual{}, false
	}
	sort.Slice(best.Changes, func(i, j int) bool { return best.Changes[i].Feature < best.Changes[j].Feature })
	return best, true
}

// projectOntoRule computes the cheapest x' satisfying every condition of r.
func projectOntoRule(r ml.Rule, schema []string, x []float64, scale []float64) (Counterfactual, bool) {
	// Intersect the rule's conditions into per-feature intervals.
	lo := map[int]float64{}
	hi := map[int]float64{}
	for _, c := range r.Conds {
		if c.LE {
			if v, ok := hi[c.Feature]; !ok || c.Thr < v {
				hi[c.Feature] = c.Thr
			}
		} else {
			if v, ok := lo[c.Feature]; !ok || c.Thr > v {
				lo[c.Feature] = c.Thr
			}
		}
	}
	var out Counterfactual
	for f := range mergeKeys(lo, hi) {
		l, hasLo := lo[f]
		h, hasHi := hi[f]
		if hasLo && hasHi && l >= h {
			return Counterfactual{}, false // contradictory path (empty box)
		}
		cur := x[f]
		inLo := !hasLo || cur > l
		inHi := !hasHi || cur <= h
		if inLo && inHi {
			continue // already satisfied
		}
		// Project to the nearest boundary of the interval (l, h].
		var to float64
		if !inLo {
			to = nudgeAbove(l)
			if hasHi && to > h {
				return Counterfactual{}, false
			}
		} else {
			to = h
		}
		name := fmt.Sprintf("f%d", f)
		if f < len(schema) {
			name = schema[f]
		}
		out.Changes = append(out.Changes, FeatureChange{Feature: f, Name: name, From: cur, To: to})
		norm := 1.0
		if scale != nil && f < len(scale) && scale[f] > 0 {
			norm = scale[f]
		}
		out.Distance += 1 + math.Abs(to-cur)/norm
	}
	if len(out.Changes) == 0 {
		// x already satisfies the rule; distance zero (class boundary
		// bug in the caller), treat as invalid to avoid no-op answers.
		return Counterfactual{}, false
	}
	return out, true
}

// nudgeAbove returns the smallest float usefully greater than v for
// threshold semantics (conditions are strict '>').
func nudgeAbove(v float64) float64 {
	step := math.Max(1e-9, math.Abs(v)*1e-9)
	return v + step
}

func mergeKeys(a, b map[int]float64) map[int]struct{} {
	out := make(map[int]struct{}, len(a)+len(b))
	for k := range a {
		out[k] = struct{}{}
	}
	for k := range b {
		out[k] = struct{}{}
	}
	return out
}
