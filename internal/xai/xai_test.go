package xai

import (
	"math/rand"
	"strings"
	"testing"

	"campuslab/internal/features"
	"campuslab/internal/ml"
)

// ringData is a nonlinear 2-class problem (inner blob vs outer ring) that
// a forest learns well and a shallow tree can approximate.
func ringData(n int, seed int64) *features.Dataset {
	r := rand.New(rand.NewSource(seed))
	d := &features.Dataset{Schema: []string{"x0", "x1"}}
	for i := 0; i < n; i++ {
		x0, x1 := r.NormFloat64()*2, r.NormFloat64()*2
		y := 0
		if x0*x0+x1*x1 > 4 {
			y = 1
		}
		d.X = append(d.X, []float64{x0, x1})
		d.Y = append(d.Y, y)
	}
	return d
}

func trainedForest(t testing.TB, d *features.Dataset) *ml.Forest {
	t.Helper()
	f, err := ml.FitForest(d, 0, ml.ForestConfig{Trees: 30, MaxDepth: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestExtractHighFidelity(t *testing.T) {
	train := ringData(800, 1)
	test := ringData(400, 3)
	forest := trainedForest(t, train)
	ex, err := Extract(forest, train, ExtractConfig{MaxDepth: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Fidelity < 0.9 {
		t.Errorf("fidelity = %v, want >= 0.9", ex.Fidelity)
	}
	rep := Compare(forest, ex, test)
	if rep.ExtractedAccuracy < rep.BlackBoxAccuracy-0.1 {
		t.Errorf("extracted accuracy %v much worse than black box %v",
			rep.ExtractedAccuracy, rep.BlackBoxAccuracy)
	}
	if rep.ExtractedSize >= rep.BlackBoxSize/10 {
		t.Errorf("extracted size %d not much smaller than %d", rep.ExtractedSize, rep.BlackBoxSize)
	}
}

func TestFidelityGrowsWithDepth(t *testing.T) {
	train := ringData(800, 5)
	forest := trainedForest(t, train)
	var prev float64
	notWorse := 0
	depths := []int{1, 3, 6, 9}
	fids := make([]float64, len(depths))
	for i, depth := range depths {
		ex, err := Extract(forest, train, ExtractConfig{MaxDepth: depth, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		fids[i] = ex.Fidelity
		if ex.Fidelity >= prev-0.02 {
			notWorse++
		}
		prev = ex.Fidelity
	}
	if notWorse < len(depths)-1 {
		t.Errorf("fidelity not broadly increasing with depth: %v", fids)
	}
	if fids[len(fids)-1] <= fids[0] {
		t.Errorf("deep tree fidelity %v <= stump fidelity %v", fids[len(fids)-1], fids[0])
	}
}

func TestExtractTreeMimicsModelNotTruth(t *testing.T) {
	// Train a deliberately wrong black box (labels flipped); the
	// extracted tree must agree with the black box, not the truth.
	train := ringData(500, 7)
	flipped := &features.Dataset{Schema: train.Schema, X: train.X, Y: make([]int, train.Len())}
	for i, y := range train.Y {
		flipped.Y[i] = 1 - y
	}
	forest := trainedForest(t, flipped)
	ex, err := Extract(forest, train, ExtractConfig{MaxDepth: 6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Fidelity < 0.85 {
		t.Errorf("fidelity to (wrong) black box = %v", ex.Fidelity)
	}
	// Accuracy against the real labels should be awful.
	if acc := ml.Evaluate(ex.Tree, train).Accuracy(); acc > 0.3 {
		t.Errorf("extracted tree accuracy on truth = %v; should mimic the wrong model", acc)
	}
}

func TestExplainProducesConditions(t *testing.T) {
	train := ringData(500, 9)
	forest := trainedForest(t, train)
	ex, err := Extract(forest, train, ExtractConfig{MaxDepth: 4, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{5, 5} // clearly outer ring
	ev := Explain(ex.Tree, train.Schema, x)
	if ev.Class != ex.Tree.Predict(x) {
		t.Errorf("evidence class %d != prediction %d", ev.Class, ex.Tree.Predict(x))
	}
	if len(ev.Conditions) == 0 {
		t.Fatal("no conditions")
	}
	for _, c := range ev.Conditions {
		if !strings.Contains(c, "x0") && !strings.Contains(c, "x1") && c != "(always)" {
			t.Errorf("condition %q does not use schema names", c)
		}
	}
	if ev.Confidence <= 0 || ev.Confidence > 1 {
		t.Errorf("confidence = %v", ev.Confidence)
	}
	if s := ev.String(); !strings.Contains(s, "because") {
		t.Errorf("String = %q", s)
	}
}

func TestRuleSetRendering(t *testing.T) {
	train := ringData(500, 11)
	forest := trainedForest(t, train)
	ex, _ := Extract(forest, train, ExtractConfig{MaxDepth: 3, Seed: 12})
	rules := RuleSet(ex.Tree, train.Schema, func(c int) string {
		if c == 1 {
			return "ATTACK"
		}
		return "BENIGN"
	})
	if len(rules) != ex.Tree.NumLeaves() {
		t.Fatalf("%d rules vs %d leaves", len(rules), ex.Tree.NumLeaves())
	}
	for _, r := range rules {
		if !strings.HasPrefix(r, "IF ") || !strings.Contains(r, "THEN") {
			t.Errorf("malformed rule %q", r)
		}
		if !strings.Contains(r, "ATTACK") && !strings.Contains(r, "BENIGN") {
			t.Errorf("rule without class name: %q", r)
		}
	}
	// Sorted by support, descending.
	// (Spot check: first rule has support >= last rule.)
	first := rules[0]
	last := rules[len(rules)-1]
	if !strings.Contains(first, "support") || !strings.Contains(last, "support") {
		t.Error("support missing from rendering")
	}
}

func TestExtractValidation(t *testing.T) {
	if _, err := Extract(nil, &features.Dataset{}, ExtractConfig{}); err == nil {
		t.Error("accepted empty reference")
	}
}

func TestExtractDeterministic(t *testing.T) {
	train := ringData(300, 13)
	forest := trainedForest(t, train)
	a, _ := Extract(forest, train, ExtractConfig{MaxDepth: 4, Seed: 14})
	b, _ := Extract(forest, train, ExtractConfig{MaxDepth: 4, Seed: 14})
	if a.Fidelity != b.Fidelity {
		t.Error("extraction not deterministic")
	}
	for _, x := range train.X {
		if a.Tree.Predict(x) != b.Tree.Predict(x) {
			t.Fatal("trees differ")
		}
	}
}

func BenchmarkExtract(b *testing.B) {
	train := ringData(400, 15)
	forest, _ := ml.FitForest(train, 0, ml.ForestConfig{Trees: 20, MaxDepth: 8, Seed: 16})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(forest, train, ExtractConfig{MaxDepth: 4, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
