// Package xai implements step (ii) and (iv) of the paper's §5 road-map:
// replace the offline black-box model with a deployable learning model
// that is "explainable or interpretable, lightweight and closely
// approximates the original model" (model extraction à la Bastani et al.),
// and produce the operator-facing evidence listings that turn the black
// box into a white box.
package xai

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/obs"
)

// ExtractConfig controls model extraction.
type ExtractConfig struct {
	// MaxDepth bounds the extracted tree — the explainability budget.
	// Smaller trees are easier to audit and compile (default 4).
	MaxDepth int
	// Samples is the number of synthetic points labeled by the black box
	// (default 4x the reference set).
	Samples int
	// Jitter scales the Gaussian noise added when resampling reference
	// points, as a fraction of each feature's std (default 0.25).
	Jitter float64
	// Seed drives sampling.
	Seed int64
}

// Extraction is the result of distilling a black box into a tree.
type Extraction struct {
	// Tree is the deployable model.
	Tree *ml.Tree
	// Fidelity is agreement with the black box on the reference set.
	Fidelity float64
	// Samples is how many synthetic points were used.
	Samples int
}

// Extract distills blackbox into a depth-bounded decision tree: sample
// points around the reference distribution, label them with the black box,
// and fit a tree to the black box's behaviour (not to ground truth — the
// tree mimics the model, which is what makes fidelity meaningful).
func Extract(blackbox ml.Classifier, ref *features.Dataset, cfg ExtractConfig) (*Extraction, error) {
	defer obs.Default.StartSpan("extract")()
	if ref.Len() == 0 {
		return nil, fmt.Errorf("xai: empty reference dataset")
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 4
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 4 * ref.Len()
	}
	if cfg.Jitter <= 0 {
		cfg.Jitter = 0.25
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Per-dimension std for jitter scaling.
	std := features.FitStandardizer(ref)

	synth := &features.Dataset{Schema: ref.Schema}
	for i := 0; i < cfg.Samples; i++ {
		base := ref.X[rng.Intn(ref.Len())]
		x := make([]float64, len(base))
		for j, v := range base {
			x[j] = v + rng.NormFloat64()*cfg.Jitter*std.Scale[j]
		}
		synth.X = append(synth.X, x)
		synth.Y = append(synth.Y, blackbox.Predict(x))
	}
	tree, err := ml.FitTree(synth, blackbox.NumClasses(), ml.TreeConfig{
		MaxDepth: cfg.MaxDepth, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("xai: fitting extracted tree: %w", err)
	}
	return &Extraction{
		Tree:     tree,
		Fidelity: ml.Agreement(blackbox, tree, ref),
		Samples:  cfg.Samples,
	}, nil
}

// Evidence is the operator-readable justification for one decision: the
// exact conditions on named features the packet/flow satisfied, plus the
// leaf's confidence — §5's "list of pieces of evidence that the model used
// to arrive at its decisions".
type Evidence struct {
	Class      int
	Confidence float64
	Conditions []string
}

// String renders the evidence as an operator would read it.
func (e Evidence) String() string {
	return fmt.Sprintf("class=%d conf=%.2f because %s",
		e.Class, e.Confidence, strings.Join(e.Conditions, " AND "))
}

// Explain walks x down the extracted tree, returning the decision path as
// named conditions.
func Explain(t *ml.Tree, schema []string, x []float64) Evidence {
	var ev Evidence
	for _, r := range t.Rules() {
		ok := true
		for _, c := range r.Conds {
			if c.LE && !(x[c.Feature] <= c.Thr) || !c.LE && !(x[c.Feature] > c.Thr) {
				ok = false
				break
			}
		}
		if ok {
			ev.Class = r.Class
			ev.Confidence = r.Conf
			for _, c := range r.Conds {
				ev.Conditions = append(ev.Conditions, condString(schema, c))
			}
			if len(ev.Conditions) == 0 {
				ev.Conditions = []string{"(always)"}
			}
			return ev
		}
	}
	return ev // unreachable for a well-formed tree
}

func condString(schema []string, c ml.Cond) string {
	name := fmt.Sprintf("f%d", c.Feature)
	if c.Feature < len(schema) {
		name = schema[c.Feature]
	}
	op := ">"
	if c.LE {
		op = "<="
	}
	return fmt.Sprintf("%s %s %.3g", name, op, c.Thr)
}

// RuleSet renders every rule of the tree, most-supported first — the
// artifact handed to the operator in road-map step (iv).
func RuleSet(t *ml.Tree, schema []string, classNames func(int) string) []string {
	rules := t.Rules()
	sort.Slice(rules, func(i, j int) bool { return rules[i].Support > rules[j].Support })
	out := make([]string, 0, len(rules))
	for _, r := range rules {
		conds := make([]string, 0, len(r.Conds))
		for _, c := range r.Conds {
			conds = append(conds, condString(schema, c))
		}
		cond := strings.Join(conds, " AND ")
		if cond == "" {
			cond = "(always)"
		}
		name := fmt.Sprintf("class %d", r.Class)
		if classNames != nil {
			name = classNames(r.Class)
		}
		out = append(out, fmt.Sprintf("IF %s THEN %s (conf %.2f, support %.1f%%)",
			cond, name, r.Conf, 100*r.Support))
	}
	return out
}

// ComparisonReport quantifies what extraction traded away: the black box
// vs deployable model on the same test set.
type ComparisonReport struct {
	BlackBoxAccuracy  float64
	ExtractedAccuracy float64
	Fidelity          float64
	BlackBoxSize      int // total nodes
	ExtractedSize     int
	Rules             int
}

// Compare evaluates both models on test data.
func Compare(blackbox *ml.Forest, ex *Extraction, test *features.Dataset) ComparisonReport {
	return ComparisonReport{
		BlackBoxAccuracy:  ml.Evaluate(blackbox, test).Accuracy(),
		ExtractedAccuracy: ml.Evaluate(ex.Tree, test).Accuracy(),
		Fidelity:          ml.Agreement(blackbox, ex.Tree, test),
		BlackBoxSize:      blackbox.TotalNodes(),
		ExtractedSize:     ex.Tree.NumNodes(),
		Rules:             ex.Tree.NumLeaves(),
	}
}
