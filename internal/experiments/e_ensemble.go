package experiments

import (
	"fmt"
	"time"

	"campuslab/internal/control"
	"campuslab/internal/dataplane"
	"campuslab/internal/features"
	"campuslab/internal/traffic"
)

// E15EnsembleFrontier measures the accuracy-vs-resources frontier of
// whole-ensemble compilation (Homunculus-style): the black-box forest
// lowered into per-tree decision DAGs plus a vote stage under shrinking
// hardware budgets, against the extracted single tree and control-plane
// forest inference — each with its tier's latency envelope.
func E15EnsembleFrontier() (*Table, error) {
	fx := newFixture()
	_, dep, err := fx.developedLab()
	if err != nil {
		return nil, err
	}
	forest, tree := dep.BlackBox, dep.Extraction.Tree

	// Held-out labeled episode: summaries for the switch paths, the same
	// packet-feature view as float vectors for the control-plane model,
	// binary ground truth from the generator labels.
	frames := traffic.Collect(fx.replayScenario(1501, 1502), 4000)
	fp := newFlowParser()
	var (
		sums   []summaryT
		X      [][]float64
		labels []int
	)
	for i := range frames {
		var s summaryT
		if err := fp.Parse(frames[i].Data, &s); err != nil {
			continue
		}
		x := make([]float64, len(features.PacketSchema))
		features.PacketVector(&s, x)
		sums = append(sums, s)
		X = append(X, x)
		cls := 0
		if frames[i].Label != traffic.LabelBenign {
			cls = 1
		}
		labels = append(labels, cls)
	}

	t := &Table{
		ID:    "E15",
		Title: "ensemble-in-dataplane frontier: accuracy vs hardware budget vs tier latency",
		Columns: []string{"deployment", "mode", "trees", "nodes", "entries", "stages",
			"accuracy", "ns/pkt", "tier_latency"},
	}

	accuracyOf := func(pred func(i int) int) float64 {
		ok := 0
		for i := range labels {
			p := pred(i)
			if p != 0 {
				p = 1
			}
			if p == labels[i] {
				ok++
			}
		}
		return float64(ok) / float64(len(labels))
	}

	// measureSwitch replays the eval set through a switch and returns the
	// verdicts plus mean per-packet wall time.
	measureSwitch := func(sw *dataplane.Switch) ([]dataplane.Verdict, time.Duration) {
		const reps = 20
		out := make([]dataplane.Verdict, 0, len(sums))
		start := time.Now()
		for r := 0; r < reps; r++ {
			out = sw.ProcessBatchAt(nil, sums, out[:0])
		}
		return out, time.Since(start) / time.Duration(reps*len(sums))
	}

	dpLatency := fmtDur(100 * time.Nanosecond) // pipeline latency model (E2)

	// Budget sweep over the same forest: roomy (exact), squeezed (pruned),
	// starved (fallback to the extracted tree).
	exact, err := dataplane.CompileForestEnsemble(forest, packetSchema(), dataplane.EnsembleConfig{
		Name: "e15-exact", DropClasses: []int{1}, MinConfidence: 0.9,
	})
	if err != nil {
		return nil, err
	}
	squeezedBudget := dataplane.ResourceBudget{Nodes: exact.Usage().Nodes / 3}
	sweep := []struct {
		label  string
		budget dataplane.ResourceBudget
	}{
		{"ensemble-dag (roomy budget)", dataplane.ResourceBudget{}},
		{fmt.Sprintf("ensemble-dag (%d-node budget)", squeezedBudget.Nodes), squeezedBudget},
		{"ensemble-dag (2-tree budget)", dataplane.ResourceBudget{Trees: 2}},
	}
	for _, sc := range sweep {
		ep, err := dataplane.CompileForestEnsemble(forest, packetSchema(), dataplane.EnsembleConfig{
			Name: "e15", DropClasses: []int{1}, MinConfidence: 0.9, Budget: sc.budget, Fallback: tree,
		})
		if err != nil {
			return nil, err
		}
		sw := dataplane.NewSwitch(dataplane.DefaultResources())
		if err := sw.LoadEnsemble(ep); err != nil {
			return nil, err
		}
		u, _ := sw.EnsembleInfo()
		verdicts, perPkt := measureSwitch(sw)
		acc := accuracyOf(func(i int) int { return verdicts[i].Class })
		t.AddRow(sc.label, u.Mode.String(), fmt.Sprintf("%d", u.Trees),
			fmt.Sprintf("%d", u.Nodes), fmt.Sprintf("%d", u.TableEntries),
			fmt.Sprintf("%d", u.Stages), pct(acc),
			fmt.Sprintf("%d", perPkt.Nanoseconds()), dpLatency)
	}

	// Extracted single tree as a compiled rule program — the pre-ensemble
	// deployment this PR's tentpole moves beyond.
	sw := dataplane.NewSwitch(dataplane.DefaultResources())
	if err := sw.Load(dep.DropProgram); err != nil {
		return nil, err
	}
	verdicts, perPkt := measureSwitch(sw)
	acc := accuracyOf(func(i int) int { return verdicts[i].Class })
	t.AddRow("extracted-tree dag", "-", "1", "-", "-", "-",
		pct(acc), fmt.Sprintf("%d", perPkt.Nanoseconds()), dpLatency)

	// Control-plane forest inference: same model, per-packet PredictBatch
	// cost plus the control-plane tier's latency envelope.
	const reps = 5
	start := time.Now()
	var preds []int
	for r := 0; r < reps; r++ {
		preds = forest.PredictBatch(X, workers())
	}
	cpPerPkt := time.Since(start) / time.Duration(reps*len(X))
	acc = accuracyOf(func(i int) int { return preds[i] })
	cpModel := control.DefaultTierModels()[control.TierControlPlane]
	t.AddRow("controlplane forest", "-", fmt.Sprintf("%d", forest.NumTrees()), "-", "-", "-",
		pct(acc), fmt.Sprintf("%d", cpPerPkt.Nanoseconds()), fmtDur(cpModel.RTT+cpModel.Service))

	// Close the loop: the TierDataPlane ensemble mode end to end (batched
	// ClassifyBatch path) vs the extracted-tree drop program.
	for _, lc := range []struct {
		label string
		cfg   control.LoopConfig
	}{
		{"ensemble", control.LoopConfig{Tier: control.TierDataPlane, Ensemble: exact}},
		{"extracted-tree", control.LoopConfig{Tier: control.TierDataPlane, Program: dep.DropProgram}},
	} {
		loop, err := control.NewLoop(lc.cfg)
		if err != nil {
			return nil, err
		}
		stats, err := loop.Replay(fx.replayScenario(1501, 1502))
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"dataplane-tier loop (%s): recall %s, collateral %s over the held-out episode",
			lc.label, pct(stats.DetectionRecall()), pct(stats.CollateralRate())))
	}
	t.Notes = append(t.Notes,
		"expected shape: the exact ensemble matches control-plane forest accuracy at data-plane latency; shrinking budgets degrade gracefully (pruned, then the extracted tree) with accuracy stepping down, not failing; per-packet inference is cheapest on the compiled paths and the control plane pays its RTT on top")
	return t, nil
}
