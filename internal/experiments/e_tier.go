package experiments

import (
	"fmt"
	"hash/fnv"
	"os"
	"time"

	"campuslab/internal/datastore"
	"campuslab/internal/traffic"
)

// E17TieredRetention is the tiered-storage acceptance run: a store whose
// hot slab is capped at 1/25 of the offered stream ingests 20 epochs of
// campus + DNS-amp traffic, spilling sealed history into compressed
// columnar segments as it goes. The table substantiates four claims:
//
//   - bounded memory: hot occupancy never exceeds the configured cap (plus
//     one in-flight batch) no matter how much history accrues;
//   - compression: cold bytes/packet come out well under half the hot
//     slab's bytes/packet (raw data + index);
//   - pruning: a recent-window selective query decodes almost none of the
//     cold segments — TS bounds and zone maps skip the rest;
//   - equivalence: every query surface returns exactly what an untiered
//     store holding the full stream in RAM returns.
func E17TieredRetention() (*Table, error) {
	t := &Table{
		ID:      "E17",
		Title:   "tiered retention: bounded hot slab over a 25x stream",
		Columns: []string{"step", "ingested", "hot pkts", "cold pkts", "segments", "detail", "outcome"},
	}

	const epochs = 20
	plan := traffic.DefaultPlan(40)
	epochSpan := 2 * time.Second

	// Generate all epochs up front so the hot cap can be sized from the
	// real total: capacity = total/25 guarantees the stream is >= 20x (in
	// fact 25x) the hot slab.
	all := make([][]traffic.Frame, epochs)
	total := 0
	for e := 0; e < epochs; e++ {
		frames := tierEpochFrames(plan, e)
		off := time.Duration(e) * epochSpan
		for i := range frames {
			frames[i].TS += off
		}
		all[e] = frames
		total += len(frames)
	}
	capacity := max(256, total/25)

	dir, err := os.MkdirTemp("", "e17-tier-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	st := datastore.NewSharded(4)
	if err := st.EnableTiering(datastore.TierPolicy{
		Dir:            dir,
		HotPackets:     uint64(capacity),
		KeepFrac:       0.5,
		MinSealPackets: 256,
		SegmentPackets: max(512, capacity/4),
	}); err != nil {
		return nil, err
	}
	ref := datastore.NewSharded(4) // untiered, holds everything in RAM

	const batch = 512
	maxHot := uint64(0)
	ingested := 0
	for e := 0; e < epochs; e++ {
		frames := all[e]
		for lo := 0; lo < len(frames); lo += batch {
			hi := min(lo+batch, len(frames))
			if _, err := st.AddBatch(frames[lo:hi], workers()); err != nil {
				return nil, fmt.Errorf("e17 epoch %d: %w", e, err)
			}
			if _, err := ref.AddBatch(frames[lo:hi], workers()); err != nil {
				return nil, fmt.Errorf("e17 epoch %d (ref): %w", e, err)
			}
			if hot := st.Stats().Packets; hot > maxHot {
				maxHot = hot
			}
		}
		ingested += len(frames)
		if e%5 == 4 || e == epochs-1 {
			ss := st.Stats()
			outcome := "PASS: hot bounded"
			if ss.Packets > uint64(capacity+batch) {
				outcome = fmt.Sprintf("FAIL: hot %d over cap %d", ss.Packets, capacity)
			}
			t.AddRow(fmt.Sprintf("epoch %d", e+1), fmt.Sprintf("%d", ingested),
				fmt.Sprintf("%d", ss.Packets), fmt.Sprintf("%d", ss.ColdPackets),
				fmt.Sprintf("%d", ss.Segments), fmt.Sprintf("cap %d", capacity), outcome)
		}
	}

	ss := st.Stats()
	ts := st.TierStats()
	if ts.Err != nil {
		return nil, fmt.Errorf("e17: tier degraded: %w", ts.Err)
	}

	// Claim 1: bounded hot slab across the whole run.
	boundOutcome := fmt.Sprintf("PASS: peak hot %d <= cap %d + batch %d", maxHot, capacity, batch)
	if maxHot > uint64(capacity+batch) {
		boundOutcome = fmt.Sprintf("FAIL: peak hot %d over cap %d + batch %d", maxHot, capacity, batch)
	}
	t.AddRow("bounded memory", fmt.Sprintf("%d", ingested), fmt.Sprintf("%d", ss.Packets),
		fmt.Sprintf("%d", ss.ColdPackets), fmt.Sprintf("%d", ss.Segments),
		fmt.Sprintf("stream %.1fx hot cap", float64(total)/float64(capacity)), boundOutcome)

	// Claim 2: compression. Hot bytes/pkt counts raw data + index overhead,
	// cold bytes/pkt is the on-disk segment files — apples to apples, the
	// full per-tier cost of holding one packet queryable.
	hotBPP := float64(ss.DataBytes+ss.IndexBytes) / float64(max(1, int(ss.Packets)))
	coldBPP := float64(ss.ColdBytes) / float64(max(1, int(ss.ColdPackets)))
	ratio := coldBPP / hotBPP
	compOutcome := fmt.Sprintf("PASS: cold/hot = %.1f%%", 100*ratio)
	if ratio > 0.5 {
		compOutcome = fmt.Sprintf("FAIL: cold/hot = %.1f%% > 50%%", 100*ratio)
	}
	t.AddRow("compression", "", fmt.Sprintf("%.0f B/pkt", hotBPP),
		fmt.Sprintf("%.0f B/pkt", coldBPP), fmt.Sprintf("%d", ss.Segments),
		fmtBytes(ss.ColdBytes)+" on disk", compOutcome)

	// Claim 3: pruning. A selective query over the most recent epoch —
	// the analyst's common case — must skip >= 80% of the cold segments
	// via TS bounds and zone maps before any column is decoded.
	recent := fmt.Sprintf("ts >= %dms && proto == udp && dst.port == 53",
		(time.Duration(epochs-1)*epochSpan)/time.Millisecond)
	fRecent, err := datastore.ParseFilter(recent)
	if err != nil {
		return nil, err
	}
	pre := st.TierStats()
	nRecent := st.Count(fRecent)
	post := st.TierStats()
	scanned := post.SegmentsScanned - pre.SegmentsScanned
	pruned := post.SegmentsPruned - pre.SegmentsPruned
	pruneRate := float64(pruned) / float64(max(1, int(scanned+pruned)))
	pruneOutcome := fmt.Sprintf("PASS: %.0f%% pruned", 100*pruneRate)
	if pruneRate < 0.8 {
		pruneOutcome = fmt.Sprintf("FAIL: only %.0f%% pruned", 100*pruneRate)
	}
	t.AddRow("segment pruning", fmt.Sprintf("%d hits", nRecent), "",
		fmt.Sprintf("scanned %d", scanned), fmt.Sprintf("pruned %d", pruned),
		"recent-window selective query", pruneOutcome)

	// Hot-vs-cold latency for the same selective shape: the recent window
	// is answered from RAM, the oldest window pays segment decode. Reported
	// as a bound, not asserted — wall clock is environment-dependent.
	fOld, err := datastore.ParseFilter("ts < 2s && proto == udp && dst.port == 53")
	if err != nil {
		return nil, err
	}
	lat := func(f *datastore.Filter) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			st.Count(f)
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	t.AddRow("query latency", "", lat(fRecent).String(), lat(fOld).String(), "",
		"selective count: hot window vs cold window (best of 3)", "report")

	// Claim 4: equivalence. The tiered store must be indistinguishable
	// from the all-RAM reference on every query surface, before and after
	// compaction squeezes the segment set.
	if err := tierEquivRow(t, "equivalence", st, ref, ingested); err != nil {
		return nil, err
	}
	preSegs := st.TierStats().Segments
	if _, err := st.CompactTier(); err != nil {
		return nil, err
	}
	postSegs := st.TierStats().Segments
	if err := tierEquivRow(t, fmt.Sprintf("post-compaction (%d -> %d segs)", preSegs, postSegs),
		st, ref, ingested); err != nil {
		return nil, err
	}

	t.Notes = append(t.Notes,
		"expected shape: hot occupancy plateaus at the cap while cold packets grow linearly with the stream; cold B/pkt lands well under half of hot B/pkt (delta-coded columns + DEFLATE); the recent-window query decodes only the newest segment generation",
		"set CAMPUSLAB_SCAN_QUERY=1 to re-run any query through the serial full-scan reference engine; results must not change",
		"this container is 1-CPU: seal/compaction wall-clock and query latency are not representative; the table's claims are all size and equivalence claims, which are machine-independent")
	return t, nil
}

// tierEpochFrames generates epoch e's traffic (benign campus + a DNS-amp
// burst) with epoch-distinct seeds.
func tierEpochFrames(plan *traffic.AddressPlan, e int) []traffic.Frame {
	benign := traffic.NewCampus(traffic.Profile{
		Plan: plan, FlowsPerSecond: 40, Duration: time.Second, Seed: int64(1900 + e),
	})
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(3 + e%5),
		Start: 300 * time.Millisecond, Duration: 500 * time.Millisecond,
		Rate: 250, Seed: int64(1950 + e),
	})
	g := traffic.NewMerge(benign, amp)
	var frames []traffic.Frame
	var f traffic.Frame
	for g.Next(&f) {
		frames = append(frames, f)
	}
	return frames
}

// tierEquivRow compares the tiered store against the untiered reference:
// full-scan fingerprint (order, IDs, timestamps, payload sizes), total
// count, and a spread of selective/broad/flow queries.
func tierEquivRow(t *Table, step string, st, ref *datastore.Store, ingested int) error {
	fp := func(s *datastore.Store) (uint64, int) {
		h := fnv.New64a()
		n := 0
		var buf [8]byte
		s.Scan(func(sp *datastore.StoredPacket) bool {
			for _, v := range []uint64{uint64(sp.ID), uint64(sp.TS), uint64(len(sp.Data))} {
				for i := 0; i < 8; i++ {
					buf[i] = byte(v >> (8 * i))
				}
				h.Write(buf[:])
			}
			n++
			return true
		})
		return h.Sum64(), n
	}
	gotH, gotN := fp(st)
	wantH, wantN := fp(ref)
	mismatch := ""
	if gotN != wantN || gotH != wantH {
		mismatch = fmt.Sprintf("scan diverged: %d pkts (hash %x) vs %d (hash %x)", gotN, gotH, wantN, wantH)
	}
	for _, expr := range []string{
		"proto == udp && dst.port == 53",
		"label == dns-amp",
		"len > 100",
		"tcp.syn && !tcp.ack",
		"ts >= 10s && ts < 30s",
	} {
		got, err := st.CountExpr(expr)
		if err != nil {
			return err
		}
		want, err := ref.CountExpr(expr)
		if err != nil {
			return err
		}
		if mismatch == "" && got != want {
			mismatch = fmt.Sprintf("%q: %d vs %d", expr, got, want)
		}
	}
	if g, w := len(st.Flows()), len(ref.Flows()); mismatch == "" && g != w {
		mismatch = fmt.Sprintf("flows: %d vs %d", g, w)
	}
	outcome := "PASS: identical to all-RAM reference"
	if mismatch != "" {
		outcome = "FAIL: " + mismatch
	}
	ss := st.Stats()
	t.AddRow(step, fmt.Sprintf("%d", ingested), fmt.Sprintf("%d", ss.Packets),
		fmt.Sprintf("%d", ss.ColdPackets), fmt.Sprintf("%d", ss.Segments),
		fmt.Sprintf("scan + 5 filters + flows (%d pkts)", gotN), outcome)
	if mismatch != "" {
		return fmt.Errorf("e17 %s: %s", step, mismatch)
	}
	return nil
}
