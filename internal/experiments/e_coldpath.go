package experiments

import (
	"fmt"
	"os"
	"time"

	"campuslab/internal/datastore"
	"campuslab/internal/traffic"
)

// E19ColdQueryFastPath re-runs the E17 25x stream against three cold
// tiers — legacy v1 segments, v2 block-compressed + dictionary segments,
// and v2 with the decoded-block cache — and substantiates the fast-path
// claims:
//
//   - equivalence: all three answer every query surface exactly like the
//     all-RAM reference (the fast path changes cost, never results);
//   - size: v2's per-block DEFLATE restarts and dictionary columns cost
//     at most 25% extra disk over v1's single stream;
//   - latency: a selective cold Select decodes only the blocks holding
//     its candidate rows under v2, and a warm cache answers from RAM
//     (reported best-of-3, not asserted — wall clock is environmental);
//   - cache: repeated queries against the cached tier serve mostly from
//     the cache (hit rate >= 50% after warm-up).
func E19ColdQueryFastPath() (*Table, error) {
	t := &Table{
		ID:      "E19",
		Title:   "cold-tier query fast path: block decode, dictionaries, cache",
		Columns: []string{"step", "v1", "v2", "v2+cache", "detail", "outcome"},
	}

	const epochs = 12
	plan := traffic.DefaultPlan(40)
	epochSpan := 2 * time.Second
	all := make([][]traffic.Frame, epochs)
	total := 0
	for e := 0; e < epochs; e++ {
		frames := tierEpochFrames(plan, e)
		off := time.Duration(e) * epochSpan
		for i := range frames {
			frames[i].TS += off
		}
		all[e] = frames
		total += len(frames)
	}
	capacity := max(256, total/25)

	type tierCase struct {
		name   string
		format int
		cache  int64
		store  *datastore.Store
	}
	cases := []*tierCase{
		{name: "v1", format: 1},
		{name: "v2", format: 2},
		{name: "v2+cache", format: 2, cache: 64 << 20},
	}
	for _, c := range cases {
		dir, err := os.MkdirTemp("", "e19-tier-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		c.store = datastore.NewSharded(4)
		if err := c.store.EnableTiering(datastore.TierPolicy{
			Dir:            dir,
			HotPackets:     uint64(capacity),
			KeepFrac:       0.5,
			MinSealPackets: 256,
			SegmentPackets: max(512, capacity/4),
			Format:         c.format,
			CacheBytes:     c.cache,
		}); err != nil {
			return nil, err
		}
	}
	ref := datastore.NewSharded(4)

	const batch = 512
	ingested := 0
	for e := 0; e < epochs; e++ {
		frames := all[e]
		for lo := 0; lo < len(frames); lo += batch {
			hi := min(lo+batch, len(frames))
			for _, c := range cases {
				if _, err := c.store.AddBatch(frames[lo:hi], workers()); err != nil {
					return nil, fmt.Errorf("e19 epoch %d (%s): %w", e, c.name, err)
				}
			}
			if _, err := ref.AddBatch(frames[lo:hi], workers()); err != nil {
				return nil, fmt.Errorf("e19 epoch %d (ref): %w", e, err)
			}
		}
		ingested += len(frames)
	}
	for _, c := range cases {
		if ts := c.store.TierStats(); ts.Err != nil {
			return nil, fmt.Errorf("e19 %s: tier degraded: %w", c.name, ts.Err)
		}
	}

	// Claim 1: equivalence for every format and the cached tier.
	for _, c := range cases {
		if err := tierEquivRow19(t, c.name, c.store, ref, ingested); err != nil {
			return nil, err
		}
	}

	// Claim 2: size under dictionary encoding. v2 restarts DEFLATE per
	// block and adds dictionary columns; both must stay a modest tax on
	// v1's single-stream ratio.
	v1s, v2s := cases[0].store.Stats(), cases[1].store.Stats()
	v1bpp := float64(v1s.ColdBytes) / float64(max(1, int(v1s.ColdPackets)))
	v2bpp := float64(v2s.ColdBytes) / float64(max(1, int(v2s.ColdPackets)))
	sizeRatio := v2bpp / v1bpp
	sizeOutcome := fmt.Sprintf("PASS: v2/v1 = %.2fx", sizeRatio)
	if sizeRatio > 1.25 {
		sizeOutcome = fmt.Sprintf("FAIL: v2/v1 = %.2fx > 1.25x", sizeRatio)
	}
	t.AddRow("cold bytes/pkt", fmt.Sprintf("%.0f B", v1bpp), fmt.Sprintf("%.0f B", v2bpp), "",
		fmt.Sprintf("%s vs %s on disk", fmtBytes(v1s.ColdBytes), fmtBytes(v2s.ColdBytes)), sizeOutcome)

	// Claim 3 (reported): selective cold Select latency. The filter is a
	// needle in the oldest (fully cold) window, so v1 inflates whole data
	// columns, v2 only the blocks its candidates live in, and the cached
	// tier (warmed by the run below) mostly skips inflation entirely.
	sel, err := datastore.ParseFilter("ts < 2s && proto == udp && dst.port == 53")
	if err != nil {
		return nil, err
	}
	lat := func(s *datastore.Store) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			s.Select(sel, 0)
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	// Warm the cache before timing it, and measure the hit rate over the
	// repeated queries (claim 4).
	cached := cases[2].store
	cached.Select(sel, 0)
	pre := cached.TierStats()
	lats := make([]time.Duration, len(cases))
	for i, c := range cases {
		lats[i] = lat(c.store)
	}
	post := cached.TierStats()
	hits := post.CacheHits - pre.CacheHits
	misses := post.CacheMisses - pre.CacheMisses
	hitRate := float64(hits) / float64(max(1, int(hits+misses)))

	t.AddRow("cold selective Select", lats[0].String(), lats[1].String(), lats[2].String(),
		"oldest-window needle, best of 3", "report")

	cacheOutcome := fmt.Sprintf("PASS: %.0f%% served from cache", 100*hitRate)
	if hitRate < 0.5 {
		cacheOutcome = fmt.Sprintf("FAIL: hit rate %.0f%% < 50%%", 100*hitRate)
	}
	t.AddRow("cache hit rate", "", "", fmt.Sprintf("%d/%d", hits, hits+misses),
		fmt.Sprintf("%s resident, %d blocks", fmtBytes(uint64(post.CacheBytes)), post.CacheEntries),
		cacheOutcome)

	t.Notes = append(t.Notes,
		"expected shape: v2 beats v1 on the selective cold Select by skipping blocks without candidate rows (the BenchmarkSegmentQuery acceptance measures the same ratio); the warm cache beats both by skipping inflation; disk cost of block restarts + dictionaries stays under 1.25x v1",
		"set CAMPUSLAB_SCAN_QUERY=1 to re-run any query through the serial full-scan reference engine; results must not change; CAMPUSLAB_NO_MMAP=1 swaps the segment read path to plain reads",
		"this container is 1-CPU: the latency row is a report, not an assertion; the size, equivalence and hit-rate claims are machine-independent")
	return t, nil
}

// tierEquivRow19 is tierEquivRow reshaped for E19's column layout: one
// row per tier case, the named column carrying its packet totals.
func tierEquivRow19(t *Table, name string, st, ref *datastore.Store, ingested int) error {
	probe := &Table{Columns: t.Columns}
	if err := tierEquivRow(probe, name, st, ref, ingested); err != nil {
		return err
	}
	row := probe.Rows[len(probe.Rows)-1]
	ss := st.Stats()
	cell := fmt.Sprintf("%d hot + %d cold", ss.Packets, ss.ColdPackets)
	cells := []string{"", "", ""}
	for i, c := range []string{"v1", "v2", "v2+cache"} {
		if c == name {
			cells[i] = cell
		}
	}
	t.AddRow("equivalence "+name, cells[0], cells[1], cells[2],
		fmt.Sprintf("scan + 5 filters + flows (%d pkts)", ingested), row[len(row)-1])
	return nil
}
