//go:build race

package experiments

// raceEnabled reports that this binary was built with -race; the slowest
// duplicate-coverage tests use it to keep the package inside the default
// 10-minute test timeout under the race detector's ~10x slowdown.
const raceEnabled = true
