package experiments

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"reflect"
	"time"

	"campuslab/internal/control"
	"campuslab/internal/dataplane"
	"campuslab/internal/datastore"
	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/roadtest"
	"campuslab/internal/traffic"
)

// E16ChaosSoak is the continuous-operation acceptance run: a virtual-clock
// soak that (a) hard-crashes and restarts the durable store between ingest
// epochs, asserting zero acknowledged-batch loss and byte-identical reads
// versus an uncrashed reference, and (b) drives the model lifecycle through
// a scripted drift-plus-bad-retrain episode, asserting the self-healing arc
// (healthy → degraded → lame-duck rollback → recovered) replays identically
// at the same seed. It is the end-to-end proof that the fault plumbing from
// the chaos work actually heals the system instead of merely observing it.
func E16ChaosSoak() (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "chaos soak: crash/restart durability and self-healing model lifecycle",
		Columns: []string{"phase", "step", "detail", "acked", "shed", "replayed", "outcome"},
	}
	if err := soakDurability(t); err != nil {
		return nil, err
	}

	// The lifecycle arc runs twice at the same seed; the table keeps the
	// first run's rows and the determinism verdict compares the second.
	runA, err := soakLifecycle(t, true)
	if err != nil {
		return nil, err
	}
	runB, err := soakLifecycle(nil, false)
	if err != nil {
		return nil, err
	}
	verdict := "PASS: identical transition logs"
	if !reflect.DeepEqual(runA, runB) {
		verdict = "FAIL: seeded lifecycle runs diverged"
	}
	t.AddRow("lifecycle", "determinism", "two runs, same seed", "", "", "", verdict)
	t.Notes = append(t.Notes,
		"expected shape: every crash row recovers byte-identically (the WAL holds every acked batch the snapshot misses); the lifecycle row sequence shows drift degrade the model, a poisoned retrain fail the canary and trigger rollback to last-known-good, and a clean retrain promote its way back to healthy — the same trajectory on every run at this seed",
		"wall-clock recovery times are environment-dependent and reported here only as a bound, not a deterministic cell")
	return t, nil
}

// soakEpochFrames generates epoch e's labeled traffic (benign + DNS-amp).
func soakEpochFrames(plan *traffic.AddressPlan, e int) []traffic.Frame {
	benign := traffic.NewCampus(traffic.Profile{
		Plan: plan, FlowsPerSecond: 50, Duration: time.Second, Seed: int64(1600 + e),
	})
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(5),
		Start: 200 * time.Millisecond, Duration: 600 * time.Millisecond,
		Rate: 300, Seed: int64(1650 + e),
	})
	g := traffic.NewMerge(benign, amp)
	var frames []traffic.Frame
	var f traffic.Frame
	for g.Next(&f) {
		frames = append(frames, f)
	}
	return frames
}

// soakDurability runs the crash/restart half: six ingest epochs, each
// ending in a different kind of kill, with the recovered store compared
// byte-for-byte against an uncrashed reference ingesting the same stream.
func soakDurability(t *Table) error {
	dir, err := os.MkdirTemp("", "e16-soak-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	plan := traffic.DefaultPlan(40)
	admission := datastore.AdmissionConfig{MaxPackets: 200_000, ShedAt: 0.85}
	dcfg := datastore.DurableConfig{
		Dir: dir, Fsync: datastore.FsyncAlways, Shards: 4, Workers: workers(),
	}
	st, _, err := datastore.Recover(dcfg)
	if err != nil {
		return err
	}
	st.SetAdmission(admission)
	ref := datastore.NewSharded(4)
	ref.SetAdmission(admission)

	var maxRecovery time.Duration
	crashKinds := []string{"kill", "kill+torn tail", "checkpoint+kill"}
	for e := 0; e < 6; e++ {
		frames := soakEpochFrames(plan, e)
		var acked, shed int
		for lo := 0; lo < len(frames); lo += 512 {
			hi := min(lo+512, len(frames))
			r, err := st.AddBatchAdmit(frames[lo:hi], workers())
			if err != nil {
				return fmt.Errorf("e16 epoch %d: %w", e, err)
			}
			rr, err := ref.AddBatchAdmit(frames[lo:hi], workers())
			if err != nil {
				return fmt.Errorf("e16 epoch %d (ref): %w", e, err)
			}
			if r.Ingested != rr.Ingested || r.Shed != rr.Shed {
				return fmt.Errorf("e16 epoch %d: gate diverged from reference", e)
			}
			acked += r.Ingested
			shed += r.Shed
		}

		kind := crashKinds[e%len(crashKinds)]
		switch kind {
		case "checkpoint+kill":
			if err := st.CheckpointDir(dir); err != nil {
				return err
			}
		case "kill+torn tail":
			// A record the crash left half-written (never acked).
			if err := appendGarbageToNewestSegment(dir); err != nil {
				return err
			}
		}
		// The "kill": abandon the store. FsyncAlways means every acked
		// batch is already on disk; CloseWAL adds no durability, it just
		// releases the descriptor.
		st.CloseWAL()

		start := time.Now()
		st2, rs, err := datastore.Recover(dcfg)
		recovery := time.Since(start)
		if err != nil {
			return fmt.Errorf("e16 epoch %d recovery: %w", e, err)
		}
		if recovery > maxRecovery {
			maxRecovery = recovery
		}
		st2.SetAdmission(admission)

		var a, b bytes.Buffer
		if err := st2.Save(&a); err != nil {
			return err
		}
		if err := ref.Save(&b); err != nil {
			return err
		}
		outcome := "PASS: byte-identical"
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			outcome = "FAIL: recovered store diverged from acked stream"
		}
		t.AddRow("durability", fmt.Sprintf("epoch %d", e), kind,
			fmt.Sprintf("%d", acked), fmt.Sprintf("%d", shed),
			fmt.Sprintf("wal=%d snap=%d", rs.WALRecords, rs.SnapshotPackets),
			outcome)
		st = st2
	}
	st.CloseWAL()
	t.Notes = append(t.Notes, fmt.Sprintf(
		"worst crash-to-ready recovery across the six epochs: %s (snapshot load + WAL replay, 1-CPU container wall clock)", fmtDur(maxRecovery)))
	return nil
}

// appendGarbageToNewestSegment simulates a torn write: bytes of a record
// that was never fully written (and therefore never acknowledged).
func appendGarbageToNewestSegment(dir string) error {
	newest, err := datastore.NewestWALSegment(dir)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(newest, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write([]byte{0x13, 0x37, 0x00, 0xfe, 0xca, 0xfe, 0xba, 0xbe, 0x01})
	return err
}

// lifecycleTrace is the deterministic artifact two runs must agree on.
type lifecycleTrace struct {
	States      []control.LifecycleState
	Transitions []control.Transition
	Promotions  int
	Rollbacks   int
}

// soakLifecycle drives the self-healing arc: two stable ticks, a drift
// window during which every retrain is poisoned (bad ground truth), then
// clean retrains. When t is non-nil the per-tick rows are added to it.
func soakLifecycle(t *Table, report bool) (*lifecycleTrace, error) {
	fx := newFixture()
	_, dep, err := fx.developedLab()
	if err != nil {
		return nil, err
	}
	initialBundle, err := dep.Extraction.Tree.MarshalBinary()
	if err != nil {
		return nil, err
	}

	// Window datasets: the stable one replays the training mix, the
	// drifted one shifts the traffic population (sparser benign, a much
	// hotter attack on a different victim). Each population is one seeded
	// realization so the drift detector sees exactly the scripted shift —
	// its statistical behaviour on noisy windows is unit-tested in
	// internal/control; this run exercises the state machine's response.
	// Poisoned retrains additionally corrupt the labels the retrainer
	// sees — a bad-ground-truth fault.
	window := func(drifted bool) *features.Dataset {
		st := datastore.NewSharded(2)
		fps, rate, victim := 50.0, 300.0, fx.plan.Host(5)
		seeds := [2]int64{1700, 1750}
		if drifted {
			fps, rate, victim = 8.0, 2500.0, fx.plan.Host(9)
			seeds = [2]int64{1800, 1850}
		}
		benign := traffic.NewCampus(traffic.Profile{
			Plan: fx.plan, FlowsPerSecond: fps, Duration: time.Second, Seed: seeds[0],
		})
		amp := traffic.NewAttack(traffic.AttackConfig{
			Kind: traffic.LabelDNSAmp, Plan: fx.plan, Victim: victim,
			Start: 100 * time.Millisecond, Duration: 800 * time.Millisecond,
			Rate: rate, Seed: seeds[1],
		})
		g := traffic.NewMerge(benign, amp)
		var f traffic.Frame
		for g.Next(&f) {
			st.IngestFrame(&f)
		}
		return features.FromPackets(st, 1.0).BinaryRelabel(traffic.LabelDNSAmp)
	}
	poison := func(ds *features.Dataset) *features.Dataset {
		out := &features.Dataset{Schema: ds.Schema, X: ds.X, Y: make([]int, len(ds.Y))}
		for i, y := range ds.Y {
			out.Y[i] = 1 - y // flipped ground truth: benign becomes attack
		}
		return out
	}

	// The harness remembers which window each bundle was trained on so
	// Activate can hand the lifecycle the right drift reference.
	trainedOn := map[string]*features.Dataset{string(initialBundle): window(false)}
	var trainWindow *features.Dataset // what the next Retrain sees
	trace := &lifecycleTrace{}

	cfg := control.LifecycleConfig{
		RetrainEvery:     time.Hour, // cadence never fires in this run
		DegradedPatience: 2,
		Drift:            control.DriftConfig{MinLabeled: 50},
		Retrain: func() ([]byte, error) {
			tree, err := ml.FitTree(trainWindow, 2, ml.TreeConfig{MaxDepth: 4, Seed: 1660})
			if err != nil {
				return nil, err
			}
			b, err := tree.MarshalBinary()
			if err != nil {
				return nil, err
			}
			trainedOn[string(b)] = trainWindow
			return b, nil
		},
		Validate: func(bundle []byte) (bool, error) {
			// The existing road-test canary is the gate: compile the
			// candidate to a drop program and replay a held-out episode
			// under a harm budget. A candidate that drops benign traffic
			// is rejected exactly as a live experiment would be killed.
			tree, err := ml.UnmarshalTree(bundle)
			if err != nil {
				return false, err
			}
			prog, err := dataplane.Compile(tree, features.PacketSchema, dataplane.CompileConfig{
				Name: "e16-candidate", DropClasses: []int{1}, MinConfidence: 0.9,
			})
			if err != nil {
				return false, err
			}
			res, err := roadtest.RunCanary(fx.replayScenario(1620, 1621), roadtest.CanaryConfig{
				Loop:           control.LoopConfig{Tier: control.TierDataPlane, Program: prog},
				MaxBenignDrops: 50,
			})
			if err != nil {
				return false, err
			}
			return !res.RolledBack, nil
		},
		Activate: func(bundle []byte) (*features.Dataset, error) {
			ref, ok := trainedOn[string(bundle)]
			if !ok {
				return nil, fmt.Errorf("e16: unknown bundle activated")
			}
			return ref, nil
		},
	}
	lc, err := control.NewLifecycle(cfg, initialBundle, 0)
	if err != nil {
		return nil, err
	}
	setLive := func() error {
		tree, err := ml.UnmarshalTree(lc.LiveBundle())
		if err != nil {
			return err
		}
		lc.SetClassifier(tree)
		return nil
	}
	if err := setLive(); err != nil {
		return nil, err
	}

	for tick := 1; tick <= 8; tick++ {
		drifted := tick >= 3
		poisoned := tick >= 3 && tick <= 5
		win := window(drifted)
		trainWindow = win
		if poisoned {
			trainWindow = poison(win)
		}
		res := lc.Tick(time.Duration(tick)*time.Minute, win)
		if res.Err != nil {
			return nil, fmt.Errorf("e16 tick %d: %w", tick, res.Err)
		}
		if res.ModelChanged {
			if err := setLive(); err != nil {
				return nil, err
			}
		}
		trace.States = append(trace.States, res.State)
		if res.Promoted {
			trace.Promotions++
		}
		if res.RolledBack {
			trace.Rollbacks++
		}
		if report {
			recall := "n/a"
			if !math.IsNaN(res.Drift.Recall) {
				recall = pct(res.Drift.Recall)
			}
			event := "-"
			switch {
			case res.RolledBack:
				event = "rolled back to last-known-good"
			case res.Promoted:
				event = "candidate promoted"
			case res.Retrained:
				event = "candidate rejected by canary"
			}
			t.AddRow("lifecycle", fmt.Sprintf("tick %d", tick),
				fmt.Sprintf("drift=%v poisoned=%v psi=%.2f recall=%s", drifted, poisoned, res.Drift.MaxPSI, recall),
				"", "", "", fmt.Sprintf("%s (%s)", res.State, event))
		}
	}
	trace.Transitions = lc.Transitions()

	if report {
		healed := trace.Rollbacks > 0 && trace.Promotions > 0 &&
			trace.States[len(trace.States)-1] == control.StateHealthy
		verdict := "PASS: degraded -> rolled back -> re-promoted -> healthy"
		if !healed {
			verdict = fmt.Sprintf("FAIL: arc incomplete (rollbacks=%d promotions=%d final=%v)",
				trace.Rollbacks, trace.Promotions, trace.States[len(trace.States)-1])
		}
		t.AddRow("lifecycle", "self-healing arc", fmt.Sprintf("%d transitions", len(trace.Transitions)),
			"", "", "", verdict)
	}
	return trace, nil
}
