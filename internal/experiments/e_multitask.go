package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"campuslab/internal/datastore"
	"campuslab/internal/detect"
	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/telemetry"
	"campuslab/internal/traffic"
)

// E13MultiTask runs four concurrent automation tasks over one scenario,
// each at the compute tier its state requires — §2's observation that
// resource allocation "will depend on how fast and with what accuracy that
// task has to be performed", demonstrated across the whole task spectrum:
//
//	dns-amp    per-packet signature    -> dataplane match-action (E5)
//	syn-flood  per-victim counters     -> dataplane sketch registers
//	port-scan  per-source fan-out      -> control-plane windows
//	beacon     per-pair periodicity    -> offline data-store analytics
func E13MultiTask() (*Table, error) {
	plan := traffic.DefaultPlan(40)
	campus := plan.CampusPrefix
	infected := plan.Host(12)
	floodVictim := plan.Host(20)
	mk := func(seed int64) *datastore.Store {
		benign := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 50, Duration: 10 * time.Second, Seed: seed})
		amp := traffic.NewAttack(traffic.AttackConfig{
			Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(5),
			Start: time.Second, Duration: 4 * time.Second, Rate: 600, Seed: seed + 1,
		})
		flood := traffic.NewAttack(traffic.AttackConfig{
			Kind: traffic.LabelSYNFlood, Plan: plan, Victim: floodVictim,
			Start: 3 * time.Second, Duration: 3 * time.Second, Rate: 2000, Seed: seed + 2,
		})
		scan := traffic.NewAttack(traffic.AttackConfig{
			Kind: traffic.LabelPortScan, Plan: plan,
			Start: 2 * time.Second, Duration: 6 * time.Second, Rate: 400, Seed: seed + 3,
		})
		beacon := traffic.NewAttack(traffic.AttackConfig{
			Kind: traffic.LabelBeacon, Plan: plan, Victim: infected,
			Start: 0, Duration: 10 * time.Second, Rate: 3600, Seed: seed + 4,
		})
		st := datastore.New()
		g := traffic.NewMerge(benign, amp, flood, scan, beacon)
		var f traffic.Frame
		for g.Next(&f) {
			st.IngestFrame(&f)
		}
		return st
	}
	trainStore := mk(1801)
	replayStore := mk(1901)

	t := &Table{
		ID:      "E13",
		Title:   "four concurrent automation tasks, one scenario, each at its natural tier",
		Columns: []string{"task", "placement", "state", "outcome"},
	}

	// Task 1: DNS amplification — per-packet program (the E5 pipeline).
	{
		ds := features.FromPackets(trainStore, 1.0).BinaryRelabel(traffic.LabelDNSAmp)
		forest, err := ml.FitForest(ds, 2, ml.ForestConfig{Trees: 20, MaxDepth: 8, Seed: 1802, Workers: workers()})
		if err != nil {
			return nil, err
		}
		var hit, total int
		replayStore.Scan(func(sp *datastore.StoredPacket) bool {
			if sp.Label == traffic.LabelDNSAmp {
				total++
				v := make([]float64, len(features.PacketSchema))
				features.PacketVector(&sp.Summary, v)
				if forest.Predict(v) == 1 {
					hit++
				}
			}
			return true
		})
		t.AddRow("dns-amp", "dataplane (match-action)", "~50 TCAM entries",
			fmt.Sprintf("per-packet recall %s", pct(float64(hit)/float64(total))))
	}

	// Task 2: SYN flood — heavy-hitter sketch over bare-SYN destinations
	// (fits dataplane registers; no model needed).
	{
		hh, err := telemetry.NewHeavyHitters(32)
		if err != nil {
			return nil, err
		}
		addrOf := map[uint64]netip.Addr{}
		replayStore.Scan(func(sp *datastore.StoredPacket) bool {
			s := &sp.Summary
			if s.HasTCP && s.TCPFlags == 2 /* bare SYN */ && campus.Contains(s.Tuple.DstIP) {
				k := uint64(s.Tuple.DstIP.As4()[0])<<24 | uint64(s.Tuple.DstIP.As4()[1])<<16 |
					uint64(s.Tuple.DstIP.As4()[2])<<8 | uint64(s.Tuple.DstIP.As4()[3])
				hh.Add(k, 1)
				addrOf[k] = s.Tuple.DstIP
			}
			return true
		})
		top := hh.Top(1)
		outcome := "victim not found"
		if len(top) > 0 && addrOf[top[0].Key] == floodVictim {
			outcome = fmt.Sprintf("victim %v identified (%d SYNs, err<=%d)", floodVictim, top[0].Count, top[0].Err)
		}
		t.AddRow("syn-flood", "dataplane (sketch registers)", "32-entry space-saving", outcome)
	}

	// Task 3: port scan — streaming source-window detector (control plane).
	{
		ds := features.FromSourceWindows(trainStore, features.SourceWindowConfig{Window: time.Second, Campus: campus})
		forest, err := ml.FitForest(ds, int(traffic.NumLabels), ml.ForestConfig{Trees: 20, MaxDepth: 8, Seed: 1803, Workers: workers()})
		if err != nil {
			return nil, err
		}
		det, err := detect.NewScanDetector(detect.ScanDetectorConfig{
			Model: forest, Window: time.Second, Campus: campus, Threshold: 0.8,
		})
		if err != nil {
			return nil, err
		}
		replayStore.Scan(func(sp *datastore.StoredPacket) bool {
			det.Observe(sp.TS, &sp.Summary)
			return true
		})
		alerts := det.Finish()
		truth := map[netip.Addr]bool{}
		replayStore.Scan(func(sp *datastore.StoredPacket) bool {
			if sp.Label == traffic.LabelPortScan && sp.Actor {
				truth[sp.Summary.Tuple.SrcIP] = true
			}
			return true
		})
		correct := 0
		for _, a := range alerts {
			if truth[a.Source] {
				correct++
			}
		}
		t.AddRow("port-scan", "control plane (windows)", "per-source dst/port sets",
			fmt.Sprintf("%d/%d scanners convicted, %d false", correct, len(truth), len(alerts)-correct))
	}

	// Task 4: beacon — retrospective periodicity hunt over the store.
	{
		findings := detect.HuntBeacons(replayStore, detect.BeaconConfig{Campus: campus})
		outcome := "no findings"
		if len(findings) > 0 {
			hit := findings[0].Pair.Host == infected
			outcome = fmt.Sprintf("top finding %v (correct=%v): %s", findings[0].Pair.Host, hit, findings[0].Evidence)
		}
		t.AddRow("beacon", "offline (data store)", "per-pair connection history", outcome)
	}

	t.Notes = append(t.Notes,
		"expected shape: the volumetric tasks fit the data plane (signature or sketch); fan-out needs controller state; periodicity is only visible in the retained store — one campus, four tasks, three tiers, which is the paper's resource-allocation argument in one table")
	return t, nil
}
