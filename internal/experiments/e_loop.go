package experiments

import (
	"fmt"
	"time"

	"campuslab/internal/control"
	"campuslab/internal/core"
	"campuslab/internal/dataplane"
	"campuslab/internal/features"
	"campuslab/internal/packet"
	"campuslab/internal/roadtest"
	"campuslab/internal/traffic"
)

// Local aliases keep the experiment bodies readable.
type (
	coreDevelopConfig = core.DevelopConfig
	summaryT          = packet.Summary
)

func newFlowParser() *packet.FlowParser { return packet.NewFlowParser() }
func packetSchema() []string            { return features.PacketSchema }

// E2ControlLoopTiers reproduces Figure 2's fast-vs-slow distinction as
// numbers: per-tier inference latency, mitigation reaction time, and the
// accuracy each placement achieves on the same episode.
func E2ControlLoopTiers() (*Table, error) {
	fx := newFixture()
	_, dep, err := fx.developedLab()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E2",
		Title:   "control-loop placement: latency vs recall (Figure 2)",
		Columns: []string{"tier", "infer_mean", "infer_max", "reaction", "recall", "collateral"},
	}
	run := func(tier control.Tier) error {
		cfg := control.LoopConfig{Tier: tier, Threshold: 0.9, Window: time.Second, MinEvidence: 30}
		switch tier {
		case control.TierDataPlane:
			cfg.Program = dep.DropProgram
		case control.TierControlPlane:
			cfg.Program, cfg.Model = dep.AlertProgram, dep.Extraction.Tree
		case control.TierCloud:
			cfg.Program, cfg.Model = dep.AlertProgram, dep.BlackBox
		}
		loop, err := control.NewLoop(cfg)
		if err != nil {
			return err
		}
		stats, err := loop.Replay(fx.replayScenario(1101, 1102))
		if err != nil {
			return err
		}
		reaction := time.Duration(-1)
		if tier == control.TierDataPlane {
			reaction = 0
		} else if len(stats.Mitigations) > 0 {
			reaction = stats.Mitigations[0].InstalledAt - time.Second // attack starts at 1s
		}
		inferMean, inferMax := stats.InferMean, stats.InferMax
		if tier == control.TierDataPlane {
			inferMean, inferMax = 100*time.Nanosecond, 100*time.Nanosecond // pipeline latency model
		}
		t.AddRow(tier.String(), fmtDur(inferMean), fmtDur(inferMax), fmtDur(reaction),
			pct(stats.DetectionRecall()), pct(stats.CollateralRate()))
		return nil
	}
	for _, tier := range []control.Tier{control.TierDataPlane, control.TierControlPlane, control.TierCloud} {
		if err := run(tier); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: dataplane verdicts are ~5 orders of magnitude faster and mitigate from the first packet; control plane reacts in ~the aggregation window; cloud adds its RTT and trails both — accuracy is comparable because the extracted model is faithful (E6)")
	return t, nil
}

// E4TaskScaling sweeps the number of concurrent automation tasks against
// the switch's TCAM/stage budget — §2's "not capable of supporting this
// capability at scale" made quantitative.
func E4TaskScaling() (*Table, error) {
	fx := newFixture()
	_, dep, err := fx.developedLab()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E4",
		Title:   "concurrent automation tasks vs dataplane resources (Tofino-like: 12 stages, 3072 TCAM)",
		Columns: []string{"tasks", "tcam_needed", "fits", "limit_reason"},
	}
	res := dataplane.DefaultResources()
	perTask := dep.DropProgram.TCAMCost()
	maxFit := res.MaxConcurrent(dep.DropProgram)
	for _, n := range []int{1, 10, 50, 100, maxFit, maxFit + 1, 1000, 5000} {
		if n <= 0 {
			continue
		}
		progs := make([]*dataplane.Program, n)
		for i := range progs {
			progs[i] = dep.DropProgram
		}
		rep := res.Fit(progs...)
		reason := "-"
		if !rep.Fits {
			reason = rep.Reason
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", rep.TCAMUsed),
			fmt.Sprintf("%v", rep.Fits), reason)
	}
	t.AddRow("per-task cost", fmt.Sprintf("%d entries", perTask), "", "")
	t.AddRow("max concurrent", fmt.Sprintf("%d tasks", maxFit), "", "")
	t.Notes = append(t.Notes,
		"expected shape: a handful-to-hundreds of tasks fit; 'hundreds or thousands ... concurrently' (§2) exhausts the TCAM, which is exactly the paper's argument for tiered offload (E2)")
	return t, nil
}

// E5DNSAmpMitigation is the paper's worked example: "drop attack traffic
// on ingress if confidence in detection is at least 90%", measured as
// precision/recall and victim-goodput protection on the simulated campus.
func E5DNSAmpMitigation() (*Table, error) {
	fx := newFixture()
	lab, dep, err := fx.developedLab()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E5",
		Title:   "DNS amplification mitigation at the 90% confidence threshold",
		Columns: []string{"deployment", "recall", "collateral", "reaction", "verdict"},
	}
	for _, tc := range []struct {
		name string
		tier control.Tier
		spec roadtest.Spec
	}{
		{"inline drop (dataplane)", control.TierDataPlane,
			roadtest.Spec{MinRecall: 0.9, MaxCollateral: 0.02}},
		{"detect+mitigate (control plane)", control.TierControlPlane,
			roadtest.Spec{MinRecall: 0.5, MaxCollateral: 0.05, MaxReaction: 2 * time.Second}},
	} {
		rep, err := lab.RoadTest(dep, tc.tier, fx.replayScenario(1201, 1202), tc.spec)
		if err != nil {
			return nil, err
		}
		verdict := "PASS"
		if !rep.Passed() {
			verdict = "FAIL: " + rep.Violations[0]
		}
		t.AddRow(tc.name, pct(rep.Loop.DetectionRecall()), pct(rep.Loop.CollateralRate()),
			fmtDur(rep.Reaction), verdict)
	}
	// Evidence ablation: how much proof the controller demands before it
	// acts trades reaction time against the risk of acting on noise.
	for _, minEv := range []int{5, 30, 200, 1000} {
		loop, err := control.NewLoop(control.LoopConfig{
			Tier: control.TierControlPlane, Program: dep.AlertProgram,
			Model: dep.Extraction.Tree, Threshold: 0.9, Window: time.Second, MinEvidence: minEv,
		})
		if err != nil {
			return nil, err
		}
		stats, err := loop.Replay(fx.replayScenario(1203, 1204))
		if err != nil {
			return nil, err
		}
		reaction := "never"
		if len(stats.Mitigations) > 0 {
			reaction = fmtDur(stats.Mitigations[0].InstalledAt - time.Second)
		}
		t.AddRow(fmt.Sprintf("min evidence=%d pkts", minEv), pct(stats.DetectionRecall()),
			pct(stats.CollateralRate()), reaction,
			fmt.Sprintf("%d mitigations", len(stats.Mitigations)))
	}
	t.Notes = append(t.Notes,
		"expected shape: >90% of attack packets dropped with <2% benign collateral at the paper's 90% bar; demanding more evidence delays mitigation and costs recall — the operator-trust tradeoff §5 discusses")
	return t, nil
}

// E11CanaryRollback measures the §4 safety mechanism: a harmful model is
// rolled back within its harm budget; a good one is left running.
func E11CanaryRollback() (*Table, error) {
	fx := newFixture()
	_, dep, err := fx.developedLab()
	if err != nil {
		return nil, err
	}
	bad := &dataplane.Program{
		Name: "drop-all-udp",
		Rules: []dataplane.Rule{{
			Conds:  []dataplane.RangeCond{{Field: dataplane.FieldIsUDP, Lo: 1, Hi: 1}},
			Action: dataplane.ActionDrop, Class: 1, Confidence: 0.99,
		}},
	}
	t := &Table{
		ID:      "E11",
		Title:   "canary deployment: harm budget 100 benign packets",
		Columns: []string{"candidate", "rolled_back", "at", "benign_drops", "recall"},
	}
	for _, tc := range []struct {
		name string
		prog *dataplane.Program
	}{
		{"trained dns-amp model", dep.DropProgram},
		{"broken model (drops all UDP)", bad},
	} {
		res, err := roadtest.RunCanary(fx.replayScenario(1301, 1302), roadtest.CanaryConfig{
			Loop:           control.LoopConfig{Tier: control.TierDataPlane, Program: tc.prog},
			MaxBenignDrops: 100,
			Window:         50,
		})
		if err != nil {
			return nil, err
		}
		at := "-"
		if res.RolledBack {
			at = fmtDur(res.RollbackAt)
		}
		t.AddRow(tc.name, fmt.Sprintf("%v", res.RolledBack), at,
			fmt.Sprintf("%d", res.Final.BenignDropped), pct(res.Final.DetectionRecall()))
	}
	t.Notes = append(t.Notes,
		"expected shape: the trained model never trips the budget; the broken model is killed within one watchdog window, bounding realized harm — the guardrail that makes §4's road-testing palatable to operators")
	return t, nil
}

// E12Compile measures tree→match-action compilation: rule count, TCAM
// expansion and switch lookup cost as the deployable tree deepens.
func E12Compile() (*Table, error) {
	fx := newFixture()
	lab, _, err := fx.developedLab()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E12",
		Title:   "deployable-tree depth vs compiled program size and lookup cost",
		Columns: []string{"depth", "leaves", "rules", "tcam_entries", "compile_time", "lookup_ns"},
	}
	for _, depth := range []int{2, 3, 4, 6, 8} {
		dep, err := lab.Develop(lab2cfg(depth))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		const reps = 50
		var prog = dep.DropProgram
		for i := 0; i < reps; i++ {
			prog, err = dataplane.Compile(dep.Extraction.Tree, packetSchema(), dataplane.CompileConfig{
				DropClasses: []int{1}, MinConfidence: 0.9,
			})
			if err != nil {
				return nil, err
			}
		}
		compile := time.Since(start) / reps

		sw := dataplane.NewSwitch(dataplane.Resources{Stages: 12, TCAMEntries: 1 << 20, ExactEntries: 1 << 16})
		if err := sw.Load(prog); err != nil {
			return nil, err
		}
		summaries := sampleSummaries(fx, 2000)
		start = time.Now()
		const lookupReps = 50
		verdicts := make([]dataplane.Verdict, 0, len(summaries))
		for r := 0; r < lookupReps; r++ {
			verdicts = sw.ProcessBatchAt(nil, summaries, verdicts[:0])
		}
		lookup := time.Since(start) / time.Duration(lookupReps*len(summaries))
		t.AddRow(fmt.Sprintf("%d", depth),
			fmt.Sprintf("%d", dep.Extraction.Tree.NumLeaves()),
			fmt.Sprintf("%d", len(prog.Rules)),
			fmt.Sprintf("%d", prog.TCAMCost()),
			fmtDur(compile),
			fmt.Sprintf("%d", lookup.Nanoseconds()))
	}
	t.Notes = append(t.Notes,
		"expected shape: rules and TCAM cost grow roughly exponentially with depth while fidelity saturates (E6) — depth 3-4 is the compilability sweet spot; lookup stays sub-microsecond throughout")
	return t, nil
}

// lab2cfg builds a DevelopConfig with the given deploy depth.
func lab2cfg(depth int) (cfg coreDevelopConfig) {
	cfg.Target = traffic.LabelDNSAmp
	cfg.DeployDepth = depth
	cfg.Seed = int64(2000 + depth)
	return cfg
}

// sampleSummaries parses a few thousand frames for lookup benchmarks.
func sampleSummaries(fx *fixture, n int) []summaryT {
	frames := traffic.Collect(fx.replayScenario(1401, 1402), n)
	fp := newFlowParser()
	out := make([]summaryT, 0, len(frames))
	var s summaryT
	for i := range frames {
		if err := fp.Parse(frames[i].Data, &s); err == nil {
			out = append(out, s)
		}
	}
	return out
}
