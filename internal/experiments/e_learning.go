package experiments

import (
	"fmt"
	"time"

	"campuslab/internal/core"
	"campuslab/internal/datastore"
	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/telemetry"
	"campuslab/internal/traffic"
	"campuslab/internal/xai"
)

// E6ModelExtraction sweeps extraction depth: fidelity to the black box,
// accuracy on ground truth, and size — the road-map step (ii) tradeoff.
func E6ModelExtraction() (*Table, error) {
	fx := newFixture()
	lab, err := core.NewLab(core.Config{Name: "e6", Plan: fx.plan, Workers: workers()})
	if err != nil {
		return nil, err
	}
	if _, err := lab.Collect(fx.trainingScenario()); err != nil {
		return nil, err
	}
	ds := lab.PacketDataset(traffic.LabelDNSAmp, 1.0)
	ds.Shuffle(1501)
	train, test := ds.Split(0.7)
	forest, err := ml.FitForest(train, 2, ml.ForestConfig{Trees: 30, MaxDepth: 10, Seed: 1502, Workers: workers()})
	if err != nil {
		return nil, err
	}
	bbAcc := ml.Evaluate(forest, test).Accuracy()

	t := &Table{
		ID:      "E6",
		Title:   "model extraction: fidelity and accuracy vs deployable-tree depth",
		Columns: []string{"depth", "fidelity", "test_acc", "bb_test_acc", "nodes", "bb_nodes", "size_ratio"},
	}
	for _, depth := range []int{1, 2, 3, 4, 6, 8} {
		ex, err := xai.Extract(forest, train, xai.ExtractConfig{MaxDepth: depth, Seed: 1503})
		if err != nil {
			return nil, err
		}
		acc := ml.Evaluate(ex.Tree, test).Accuracy()
		t.AddRow(fmt.Sprintf("%d", depth), pct(ex.Fidelity), pct(acc), pct(bbAcc),
			fmt.Sprintf("%d", ex.Tree.NumNodes()),
			fmt.Sprintf("%d", forest.TotalNodes()),
			fmt.Sprintf("%.4f", float64(ex.Tree.NumNodes())/float64(forest.TotalNodes())))
	}
	// Ablation: extraction is model-agnostic — distilling a boosted
	// ensemble (a different black-box family) works identically.
	boost, err := ml.FitBoost(train, 2, ml.BoostConfig{Rounds: 40, WeakDepth: 2, Seed: 1504})
	if err != nil {
		return nil, err
	}
	boostAcc := ml.Evaluate(boost, test).Accuracy()
	exB, err := xai.Extract(boost, train, xai.ExtractConfig{MaxDepth: 4, Seed: 1505})
	if err != nil {
		return nil, err
	}
	t.AddRow("4 (from AdaBoost)", pct(exB.Fidelity), pct(ml.Evaluate(exB.Tree, test).Accuracy()),
		pct(boostAcc), fmt.Sprintf("%d", exB.Tree.NumNodes()),
		fmt.Sprintf("%d", boost.TotalNodes()),
		fmt.Sprintf("%.4f", float64(exB.Tree.NumNodes())/float64(boost.TotalNodes())))
	t.Notes = append(t.Notes,
		"expected shape: fidelity climbs with depth and saturates near 100% by depth ~4; the deployable model gives up at most a point or two of accuracy while being 2-4 orders of magnitude smaller than the black box; the AdaBoost row shows extraction is black-box-agnostic")
	return t, nil
}

// E9CrossCampus runs the §5 reproducibility experiment: one open-sourced
// algorithm, three simulated campuses, full train/eval matrix.
func E9CrossCampus() (*Table, error) {
	specs := []core.CampusSpec{
		{Name: "ucsb", HostsPerDept: 30, FlowsPerSecond: 50, AttackRate: 700, StartHour: 14, Seed: 1601},
		{Name: "princeton", HostsPerDept: 45, FlowsPerSecond: 70, AttackRate: 500, StartHour: 17, Seed: 1602},
		{Name: "columbia", HostsPerDept: 25, FlowsPerSecond: 40, AttackRate: 900, StartHour: 17, Seed: 1603},
	}
	res, err := core.RunCrossCampus(specs, core.Algorithm{Target: traffic.LabelDNSAmp, Seed: 1604})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E9",
		Title:   "cross-campus reproducibility: accuracy of model trained at row-campus on column-campus data",
		Columns: append([]string{"train\\test"}, res.Campuses...),
	}
	for i, name := range res.Campuses {
		row := []string{name}
		for j := range res.Campuses {
			row = append(row, pct(res.Accuracy[i][j]))
		}
		t.AddRow(row...)
	}
	t.AddRow("---", "", "", "")
	t.AddRow("self mean", pct(res.DiagonalMean()), "", "")
	t.AddRow("transfer mean", pct(res.OffDiagonalMean()), "", "")
	for i, name := range res.Campuses {
		t.AddRow("fidelity@"+name, pct(res.Fidelity[i]), "", "")
	}
	t.Notes = append(t.Notes,
		"expected shape: high self-accuracy at every campus and modest transfer degradation — evidence that open-sourcing the algorithm (not the data) yields the reproducibility §5 argues for")
	return t, nil
}

// E10TopDownVsBottomUp compares the model quality the full-capture data
// store enables (top-down, §3) against the sampled-NetFlow features that
// bottom-up collection typically yields (§2's "data problem").
func E10TopDownVsBottomUp() (*Table, error) {
	fx := newFixture()
	st := datastore.New()
	gen := fx.trainingScenario()
	exporters := map[int]*telemetry.SampledExporter{}
	for _, rate := range []int{1, 10, 100, 1000} {
		e, err := telemetry.NewSampledExporter(rate, 0)
		if err != nil {
			return nil, err
		}
		exporters[rate] = e
	}
	fp := newFlowParser()
	var f traffic.Frame
	var s summaryT
	truthMap := map[flowKeyT]traffic.Label{}
	for gen.Next(&f) {
		st.IngestFrame(&f)
		if err := fp.Parse(f.Data, &s); err != nil {
			continue
		}
		for _, e := range exporters {
			e.Observe(f.TS, &s)
		}
		if f.Label != traffic.LabelBenign {
			truthMap[s.Tuple.Canonical()] = f.Label
		}
	}

	// Ground truth: how many attack flows actually exist in the store.
	totalAttackFlows := 0
	for _, fm := range st.Flows() {
		if fm.Label == traffic.LabelDNSAmp {
			totalAttackFlows++
		}
	}
	t := &Table{
		ID:      "E10",
		Title:   "detection quality: full-capture store vs 1-in-N sampled NetFlow",
		Columns: []string{"data source", "attack_flows_seen", "coverage", "visible_F1", "effective_recall"},
	}
	// effective recall charges the detector for every attack flow the
	// data source never surfaced — the honest measure of §2's data
	// problem (a model cannot flag a flow its telemetry never exported).
	eval := func(name string, ds *features.Dataset) error {
		counts := ds.ClassCounts()
		seen := counts[1]
		coverage := float64(seen) / float64(totalAttackFlows)
		if seen < 5 || counts[0] < 5 || ds.Len() < 20 {
			t.AddRow(name, fmt.Sprintf("%d/%d", seen, totalAttackFlows), pct(coverage),
				"class collapsed", pct(0))
			return nil
		}
		ds.Shuffle(1701)
		train, test := ds.Split(0.7)
		tree, err := ml.FitTree(train, 2, ml.TreeConfig{MaxDepth: 6, Seed: 1702})
		if err != nil {
			return err
		}
		conf := ml.Evaluate(tree, test)
		f1 := conf.F1(1)
		effRecall := conf.Recall(1) * coverage
		t.AddRow(name, fmt.Sprintf("%d/%d", seen, totalAttackFlows), pct(coverage),
			fmt.Sprintf("%.3f", f1), pct(effRecall))
		return nil
	}

	full := features.FromFlows(st, fx.plan.CampusPrefix).BinaryRelabel(traffic.LabelDNSAmp)
	if err := eval("full-capture store (flow features)", full); err != nil {
		return nil, err
	}
	for _, rate := range []int{1, 10, 100, 1000} {
		recs := exporters[rate].Flush()
		ds := features.FromFlowRecords(recs, rate, truthMap).BinaryRelabel(traffic.LabelDNSAmp)
		if err := eval(fmt.Sprintf("NetFlow 1-in-%d", rate), ds); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: full capture surfaces every attack flow (coverage 100%); sampling surfaces a shrinking sliver — even when the visible records classify perfectly, effective recall collapses with coverage, which is §2's data problem measured")
	return t, nil
}

// flowKeyT aliases the canonical flow key for the truth map.
type flowKeyT = datastore.FlowKey

// E1Duration is a shared knob for how long synthetic scenarios run.
const E1Duration = 4 * time.Second
