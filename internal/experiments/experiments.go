// Package experiments contains the reproduction harness: one function per
// experiment in DESIGN.md's index (E1-E15), each regenerating the
// measurement that substantiates a figure or quantitative claim of the
// paper. The cmd/campuslab driver prints these tables; bench_test.go wraps
// them as benchmarks; EXPERIMENTS.md records their output.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's result in paper form: labeled columns, rows of
// formatted cells, and prose notes recording the expected shape.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the table as GitHub markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", n)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// Runner is one registered experiment.
type Runner struct {
	ID   string
	Name string
	Run  func() (*Table, error)
}

// All returns every experiment in index order.
func All() []Runner {
	return []Runner{
		{"E1", "data-source pipeline throughput", E1Pipeline},
		{"E2", "control-loop tier latency (Figure 2)", E2ControlLoopTiers},
		{"E3", "lossless capture vs offered load", E3CaptureRate},
		{"E4", "concurrent tasks vs dataplane resources", E4TaskScaling},
		{"E5", "DNS-amplification mitigation at 90% confidence", E5DNSAmpMitigation},
		{"E6", "model extraction fidelity vs depth", E6ModelExtraction},
		{"E7", "store volume vs retention", E7StoreRetention},
		{"E8", "anonymization cost and property checks", E8Anonymization},
		{"E9", "cross-campus reproducibility", E9CrossCampus},
		{"E10", "top-down vs bottom-up data", E10TopDownVsBottomUp},
		{"E11", "canary rollback safety", E11CanaryRollback},
		{"E12", "tree compile cost vs depth", E12Compile},
		{"E13", "multi-task suite across tiers", E13MultiTask},
		{"E14", "chaos road test: mitigation under injected faults", E14ChaosLoop},
		{"E15", "ensemble-in-dataplane frontier vs resource budgets", E15EnsembleFrontier},
		{"E16", "chaos soak: crash/restart durability and self-healing lifecycle", E16ChaosSoak},
		{"E17", "tiered retention: bounded hot slab over a 25x stream", E17TieredRetention},
		{"E18", "multi-campus fleet: train-here/test-there vs federated recall", E18FleetFederation},
		{"E19", "cold-tier query fast path: block decode, dictionaries, cache", E19ColdQueryFastPath},
	}
}

// Find returns the runner with the given ID (case-insensitive).
func Find(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}

// fmtDur renders durations compactly for table cells.
func fmtDur(d time.Duration) string {
	switch {
	case d < 0:
		return "n/a"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// fmtBytes renders byte counts with binary units.
func fmtBytes(b uint64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%dB", b)
	}
	div, exp := uint64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// pct renders a fraction as a percentage cell.
func pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }
