package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"campuslab/internal/capture"
	"campuslab/internal/datastore"
	"campuslab/internal/features"
	"campuslab/internal/privacy"
	"campuslab/internal/traffic"
)

// E1Pipeline measures the data-source half of Figure 1 end to end:
// generate → anonymize → store → featurize, reporting stage throughputs in
// packets/second of wall-clock work.
func E1Pipeline() (*Table, error) {
	fx := newFixture()
	frames := traffic.Collect(fx.trainingScenario(), 0)
	n := len(frames)

	t := &Table{
		ID:      "E1",
		Title:   "Figure 1 data-source pipeline, per-stage wall-clock throughput",
		Columns: []string{"stage", "packets", "wall_time", "pkts_per_sec"},
	}
	row := func(stage string, dur time.Duration) {
		pps := float64(n) / dur.Seconds()
		t.AddRow(stage, fmt.Sprintf("%d", n), fmtDur(dur), fmt.Sprintf("%.0f", pps))
	}

	enf, err := privacy.NewEnforcer(privacy.Policy{Scope: privacy.AnonAll}, []byte("e1-key"))
	if err != nil {
		return nil, err
	}
	start := time.Now()
	anon := make([]traffic.Frame, n)
	for i := range frames {
		out, err := enf.Apply(frames[i].Data)
		if err != nil {
			out = frames[i].Data
		}
		anon[i] = frames[i]
		anon[i].Data = out
	}
	row("anonymize", time.Since(start))

	st := datastore.New()
	start = time.Now()
	st.AddBatch(anon, workers())
	row("store+index", time.Since(start))

	start = time.Now()
	ds := features.FromPackets(st, 1.0)
	row("featurize", time.Since(start))

	start = time.Now()
	_ = features.FromFlowsWorkers(st, fx.plan.CampusPrefix, workers())
	row("flow-features", time.Since(start))

	if ds.Len() == 0 {
		return nil, fmt.Errorf("E1: empty dataset")
	}
	t.Notes = append(t.Notes,
		"expected shape: every stage sustains well above campus line rate (~1.5 Mpps at 10 Gbps of 800B packets); the store, not the pipeline, is the retention bottleneck (see E7)")
	return t, nil
}

// E3CaptureRate sweeps offered load against capture capacity: the §5 claim
// that lossless capture at 10-20 Gbps is practical, and that loss appears
// when offered load exceeds the appliance envelope.
func E3CaptureRate() (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "lossless capture vs offered load (120ns/pkt + 0.15ns/B per core, 800B frames)",
		Columns: []string{"offered_gbps", "consumers", "ring", "captured", "dropped", "loss"},
	}
	for _, tc := range []struct {
		gbps      float64
		consumers int
		ring      int
	}{
		{10, 1, 4096},
		{20, 1, 4096},
		{40, 1, 4096},
		{40, 2, 4096},
		{100, 2, 4096},
		{100, 4, 4096},
		{100, 8, 4096},
	} {
		gen := capture.NewConstantRate(tc.gbps, 800, 20*time.Millisecond)
		res, err := capture.RunLoadModel(gen, capture.LoadModelConfig{
			RingSize:         tc.ring,
			ServicePerPacket: 120 * time.Nanosecond,
			ServicePerKB:     154 * time.Nanosecond, // ~0.15ns per byte
			Consumers:        tc.consumers,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%.0f", tc.gbps),
			fmt.Sprintf("%d", tc.consumers),
			fmt.Sprintf("%d", tc.ring),
			fmt.Sprintf("%d", res.Captured),
			fmt.Sprintf("%d", res.Dropped),
			pct(res.LossRate()),
		)
	}
	t.Notes = append(t.Notes,
		"expected shape: lossless through 10-20 Gbps on one core (the paper's campus uplink range); 100 Gbps needs parallel capture cores, matching the commercial appliance's scale-out design")
	return t, nil
}

// E7StoreRetention measures store volume and query latency, projecting the
// §5 sizing claim (10 Gbps upstream, a week of retention).
func E7StoreRetention() (*Table, error) {
	fx := newFixture()
	st := datastore.New()
	var f traffic.Frame
	gen := fx.trainingScenario()
	for gen.Next(&f) {
		st.IngestFrame(&f)
	}
	stats := st.Stats()

	t := &Table{
		ID:      "E7",
		Title:   "data store volume, retention projection and query latency",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("packets stored", fmt.Sprintf("%d", stats.Packets))
	t.AddRow("flows indexed", fmt.Sprintf("%d", stats.Flows))
	t.AddRow("raw bytes", fmtBytes(stats.DataBytes))
	t.AddRow("index overhead", fmtBytes(stats.IndexBytes))
	t.AddRow("index/data ratio", pct(float64(stats.IndexBytes)/float64(stats.DataBytes)))
	t.AddRow("accrual (scenario)", fmt.Sprintf("%s/s", fmtBytes(uint64(stats.BytesPerSecond()))))
	// Project the paper's sizing: a 10 Gbps uplink at 35% mean utilization.
	const uplinkBps = 10e9 * 0.35 / 8
	overhead := 1 + float64(stats.IndexBytes)/float64(stats.DataBytes)
	day := uint64(uplinkBps * 86400 * overhead)
	t.AddRow("10Gbps@35% 1 day", fmtBytes(day))
	t.AddRow("10Gbps@35% 1 week", fmtBytes(day*7))

	for _, expr := range []string{
		"proto == udp && dst.port == 53",
		"dns && dns.qtype == ANY",
		"ts >= 1s && ts < 2s && udp",
		"src.ip in 10.0.0.0/8 && len > 1000",
	} {
		fl, err := datastore.ParseFilterCached(expr)
		if err != nil {
			return nil, err
		}
		path := "scan"
		if fl.Indexable() {
			path = "index"
		}
		start := time.Now()
		matches := st.Select(fl, 0)
		t.AddRow(fmt.Sprintf("query %q", expr),
			fmt.Sprintf("%d hits in %s (%s path)", len(matches), fmtDur(time.Since(start)), path))
	}
	t.Notes = append(t.Notes,
		"expected shape: storage grows linearly with retention; a week at campus scale lands in the hundreds-of-TB range the paper prices at 'a few $100K'; index-path queries return in tens of microseconds, scan-path in milliseconds")
	return t, nil
}

// E8Anonymization measures Crypto-PAn cost and verifies its properties on
// the live address population.
func E8Anonymization() (*Table, error) {
	anon, err := privacy.NewAnonymizer([]byte("e8-key"))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E8",
		Title:   "prefix-preserving anonymization: cost and properties",
		Columns: []string{"metric", "value"},
	}
	// Cold path: distinct addresses.
	const nCold = 20000
	start := time.Now()
	for i := 0; i < nCold; i++ {
		anon.Anonymize(netip.AddrFrom4([4]byte{10, byte(i >> 12), byte(i >> 4), byte(i)}))
	}
	cold := time.Since(start) / nCold
	t.AddRow("cold anonymize (cache miss)", fmtDur(cold))
	// Warm path.
	addr := netip.MustParseAddr("10.1.2.3")
	anon.Anonymize(addr)
	const nWarm = 2_000_000
	start = time.Now()
	for i := 0; i < nWarm; i++ {
		anon.Anonymize(addr)
	}
	t.AddRow("warm anonymize (cache hit)", fmtDur(time.Since(start)/nWarm))

	// Property checks over the campus population.
	plan := traffic.DefaultPlan(40)
	violations := 0
	prev := plan.Host(0)
	prevA := anon.Anonymize(prev)
	for i := 1; i < plan.TotalHosts(); i++ {
		cur := plan.Host(i)
		curA := anon.Anonymize(cur)
		if privacy.CommonPrefixLen(prev, cur) != privacy.CommonPrefixLen(prevA, curA) {
			violations++
		}
		prev, prevA = cur, curA
	}
	t.AddRow("prefix violations (320 host pairs)", fmt.Sprintf("%d", violations))
	if violations > 0 {
		return nil, fmt.Errorf("E8: prefix preservation violated %d times", violations)
	}

	// Full enforcement path on real frames.
	enf, err := privacy.NewEnforcer(privacy.Policy{Scope: privacy.AnonAll, Payload: privacy.PayloadStrip}, []byte("e8-key"))
	if err != nil {
		return nil, err
	}
	fx := newFixture()
	frames := traffic.Collect(fx.trainingScenario(), 20000)
	start = time.Now()
	for i := range frames {
		if _, err := enf.Apply(frames[i].Data); err != nil {
			return nil, err
		}
	}
	perPkt := time.Since(start) / time.Duration(len(frames))
	t.AddRow("full policy enforcement per packet", fmtDur(perPkt))
	_, in, out := enf.Stats()
	t.AddRow("stored-byte reduction (strip policy)", pct(1-float64(out)/float64(in)))
	t.Notes = append(t.Notes,
		"expected shape: warm-path cost is a map lookup (tens of ns) so anonymization never gates 10-20 Gbps collection; prefix preservation holds exactly")
	return t, nil
}
