package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment once and checks the
// structural invariants: tables are well-formed and non-empty. Shape
// assertions specific to each experiment live below.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			switch {
			case raceEnabled && (r.ID == "E16" || r.ID == "E17" || r.ID == "E18" || r.ID == "E19"):
				// These four are the slow soak/comparison drivers (each
				// 1.5–4 minutes under the race detector; together they
				// push the package past the default -timeout), and every
				// experiment here is a single-threaded driver over a
				// subsystem that has its own dedicated race gate: the WAL
				// crash/checkpoint and concurrent-ingest races plus the
				// tier seal/compact/cache churn races in
				// internal/datastore cover E16/E17/E19, and the
				// concurrent-stream + coordinator-during-ingest races in
				// internal/fleet cover E18. Nothing is lost by skipping
				// the duplicates here.
				t.Skip("race-covered by the subsystem race gates")
			}
			tb, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			if tb.ID != r.ID {
				t.Errorf("table ID %q != runner ID %q", tb.ID, r.ID)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("empty table")
			}
			for i, row := range tb.Rows {
				if len(row) > len(tb.Columns) {
					t.Errorf("row %d has %d cells, %d columns", i, len(row), len(tb.Columns))
				}
			}
			if tb.String() == "" || tb.Markdown() == "" {
				t.Error("rendering failed")
			}
			if len(tb.Notes) == 0 {
				t.Error("missing expected-shape note")
			}
		})
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("e5"); !ok {
		t.Error("case-insensitive find failed")
	}
	if _, ok := Find("E99"); ok {
		t.Error("found nonexistent experiment")
	}
}

func TestE3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	if raceEnabled {
		t.Skip("full-run duplicate; E3 is race-covered by TestAllExperimentsRun/E3")
	}
	tb, err := E3CaptureRate()
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: 10 Gbps, 1 consumer — must be lossless.
	loss := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[5], "%"), 64)
		if err != nil {
			t.Fatalf("bad loss cell %q", row[5])
		}
		return v
	}
	if l := loss(tb.Rows[0]); l != 0 {
		t.Errorf("10 Gbps loss = %v%%, want 0", l)
	}
	if l := loss(tb.Rows[1]); l != 0 {
		t.Errorf("20 Gbps loss = %v%%, want 0 (the paper's campus envelope)", l)
	}
	// 40 Gbps overloads one core but not two; 100 Gbps needs scale-out.
	if l := loss(tb.Rows[2]); l == 0 {
		t.Error("40 Gbps on 1 core should overload")
	}
	if l := loss(tb.Rows[3]); l != 0 {
		t.Error("40 Gbps on 2 cores should be lossless")
	}
	l100x2, l100x4, l100x8 := loss(tb.Rows[4]), loss(tb.Rows[5]), loss(tb.Rows[6])
	if l100x2 == 0 {
		t.Error("100 Gbps on 2 cores should overload")
	}
	if l100x4 > l100x2 {
		t.Errorf("more consumers did not reduce loss: %v > %v", l100x4, l100x2)
	}
	if l100x8 != 0 {
		t.Errorf("100 Gbps on 8 cores loss = %v%%, want 0", l100x8)
	}
}

func TestE6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	if raceEnabled {
		t.Skip("full-run duplicate; E6 is race-covered by TestAllExperimentsRun/E6")
	}
	tb, err := E6ModelExtraction()
	if err != nil {
		t.Fatal(err)
	}
	fid := func(row []string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(row[1], "%"), 64)
		return v
	}
	first, last := fid(tb.Rows[0]), fid(tb.Rows[len(tb.Rows)-1])
	if last < first {
		t.Errorf("fidelity shrank with depth: %v -> %v", first, last)
	}
	if last < 95 {
		t.Errorf("deep extraction fidelity = %v%%, want >= 95%%", last)
	}
}

func TestE15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	if raceEnabled {
		t.Skip("full-run duplicate; E15 is race-covered by TestAllExperimentsRun/E15")
	}
	tb, err := E15EnsembleFrontier()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("want 5 rows (3 budgets + tree + controlplane), got %d", len(tb.Rows))
	}
	if got := tb.Rows[0][1]; got != "exact" {
		t.Errorf("roomy budget mode = %q, want exact", got)
	}
	// Shrinking the budget must degrade, not fail: each sweep row reports a
	// valid mode and a parseable accuracy.
	acc := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[6], "%"), 64)
		if err != nil {
			t.Fatalf("accuracy cell %q: %v", row[6], err)
		}
		return v
	}
	for _, row := range tb.Rows[:3] {
		switch row[1] {
		case "exact", "pruned", "fallback":
		default:
			t.Errorf("budget row mode = %q", row[1])
		}
		if acc(row) < 50 {
			t.Errorf("ensemble accuracy %v%% under budget %q; degradation should not collapse", acc(row), row[0])
		}
	}
	// The exact ensemble classifies at least as well as the extracted tree
	// on the same episode (it is the model the tree approximates).
	if acc(tb.Rows[0]) < acc(tb.Rows[3])-1 {
		t.Errorf("exact ensemble accuracy %v%% below extracted tree %v%%", acc(tb.Rows[0]), acc(tb.Rows[3]))
	}
	// And matches the control-plane forest exactly: same model, same input.
	if acc(tb.Rows[0]) != acc(tb.Rows[4]) {
		t.Errorf("exact ensemble accuracy %v%% != control-plane forest %v%%", acc(tb.Rows[0]), acc(tb.Rows[4]))
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Notes = append(tb.Notes, "a note")
	s := tb.String()
	if !strings.Contains(s, "T — demo") || !strings.Contains(s, "note: a note") {
		t.Errorf("String = %q", s)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("Markdown = %q", md)
	}
}

func TestFormatters(t *testing.T) {
	cases := map[string]string{
		fmtDur(500):           "500ns",
		fmtDur(1500):          "1.5µs",
		fmtDur(2_500_000):     "2.50ms",
		fmtDur(3_000_000_000): "3.00s",
		fmtDur(-1):            "n/a",
		fmtBytes(512):         "512B",
		fmtBytes(2048):        "2.0KiB",
		fmtBytes(5 << 30):     "5.0GiB",
		pct(0.123):            "12.30%",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestE16Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	if raceEnabled {
		t.Skip("full-soak duplicate; E16 is race-covered by TestAllExperimentsRun/E16")
	}
	tb, err := E16ChaosSoak()
	if err != nil {
		t.Fatal(err)
	}
	// 6 crash epochs + 8 lifecycle ticks + arc verdict + determinism verdict.
	if len(tb.Rows) != 16 {
		t.Fatalf("want 16 rows, got %d", len(tb.Rows))
	}
	var rollback, reject, promote bool
	for _, row := range tb.Rows {
		switch row[0] {
		case "durability":
			if !strings.HasPrefix(row[6], "PASS") {
				t.Errorf("crash epoch %s: %s", row[1], row[6])
			}
		case "lifecycle":
			out := row[6]
			rollback = rollback || strings.Contains(out, "rolled back")
			reject = reject || strings.Contains(out, "rejected by canary")
			promote = promote || strings.Contains(out, "promoted")
			if row[1] == "self-healing arc" || row[1] == "determinism" {
				if !strings.HasPrefix(out, "PASS") {
					t.Errorf("%s: %s", row[1], out)
				}
			}
		}
	}
	if !rollback || !reject || !promote {
		t.Errorf("lifecycle arc incomplete: rollback=%v reject=%v promote=%v", rollback, reject, promote)
	}
}
