package experiments

import (
	"fmt"

	"campuslab/internal/core"
	"campuslab/internal/fleet"
	"campuslab/internal/traffic"
)

// E18FleetFederation runs the fleet coordinator's federated development
// round across three campus profiles and tabulates the
// train-here/test-there recall matrix against the two sharing
// strategies: vote pooling (merge every campus's forest) and feature
// pooling (train one forest on the concatenated train splits). The
// diagonal is each campus's home recall; off-diagonal cells show the
// generalization gap a model pays when road-tested on another campus's
// traffic, and the federated rows show how much of that gap sharing
// recovers without moving raw data.
func E18FleetFederation() (*Table, error) {
	specs := []core.CampusSpec{
		{Name: "ucsb", HostsPerDept: 30, FlowsPerSecond: 50, AttackRate: 500, StartHour: 14, Seed: 1801},
		{Name: "princeton", HostsPerDept: 45, FlowsPerSecond: 70, AttackRate: 300, StartHour: 17, Seed: 1802},
		{Name: "columbia", HostsPerDept: 25, FlowsPerSecond: 40, AttackRate: 800, StartHour: 17, Seed: 1803},
	}
	campuses := make([]fleet.Campus, len(specs))
	for i, spec := range specs {
		spec.Workers = workers()
		lab, gen, err := core.BuildCampusScenario(spec, traffic.LabelPortScan)
		if err != nil {
			return nil, fmt.Errorf("campus %s: %w", spec.Name, err)
		}
		if _, err := lab.Collect(gen); err != nil {
			return nil, fmt.Errorf("campus %s: %w", spec.Name, err)
		}
		campuses[i] = fleet.Campus{Name: spec.Name, Store: lab.Store()}
	}
	res, err := fleet.RunFederated(campuses, fleet.CoordinatorConfig{
		Target: traffic.LabelPortScan, Seed: 1804, Workers: workers(),
	})
	if err != nil {
		return nil, err
	}

	tb := &Table{
		ID:    "E18",
		Title: "multi-campus fleet: train-here/test-there vs federated recall",
		Columns: append([]string{"model \\ test campus"},
			res.Campuses...),
	}
	for i, name := range res.Campuses {
		row := []string{"trained @ " + name}
		for j := range res.Campuses {
			row = append(row, pct(res.Recall[i][j]))
		}
		tb.AddRow(row...)
	}
	fed := []string{"federated (vote-pooled)"}
	pooled := []string{"pooled features"}
	for j := range res.Campuses {
		fed = append(fed, pct(res.FederatedRecall[j]))
		pooled = append(pooled, pct(res.PooledRecall[j]))
	}
	tb.AddRow(fed...)
	tb.AddRow(pooled...)

	// The contrast the table exists for: the worst single-campus model's
	// average recall vs the federated ensemble's worst-case cell.
	weakest, fedMin := 1.0, 1.0
	var weakestName string
	for i := range res.Campuses {
		var avg float64
		for j := range res.Campuses {
			avg += res.Recall[i][j]
		}
		avg /= float64(len(res.Campuses))
		if avg < weakest {
			weakest, weakestName = avg, res.Campuses[i]
		}
		if res.FederatedRecall[i] < fedMin {
			fedMin = res.FederatedRecall[i]
		}
	}
	tb.Notes = append(tb.Notes,
		fmt.Sprintf("the weakest single-campus model (%s, the low-intensity campus) averages %s recall; the vote-pooled federated ensemble holds >=%s on every campus — sharing models, not raw data, closes the gap", weakestName, pct(weakest), pct(fedMin)),
		fmt.Sprintf("federated ensemble: %d trees, %s serialized — the only artifact that crosses campus boundaries", res.Merged.NumTrees(), fmtBytes(uint64(len(res.MergedBytes)))),
		"identical tables at any fleet size, shard count, or worker count; the TCP-streamed variant in golden_test.go is byte-identical to this in-process run",
	)
	return tb, nil
}
