package experiments

import (
	"time"

	"campuslab/internal/core"
	"campuslab/internal/traffic"
)

// fixture bundles the shared scenario parameters every experiment draws
// from, so results are comparable across tables.
type fixture struct {
	plan *traffic.AddressPlan
}

func newFixture() *fixture {
	return &fixture{plan: traffic.DefaultPlan(40)}
}

// trainingScenario is the labeled collection run (benign + DNS-amp).
func (fx *fixture) trainingScenario() traffic.Generator {
	benign := traffic.NewCampus(traffic.Profile{
		Plan: fx.plan, FlowsPerSecond: 60, Duration: 4 * time.Second, Seed: 1001,
	})
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: fx.plan, Victim: fx.plan.Host(5),
		Start: 600 * time.Millisecond, Duration: 2800 * time.Millisecond, Rate: 800, Seed: 1002,
	})
	return traffic.NewMerge(benign, amp)
}

// replayScenario is a held-out benign+attack episode for road tests.
func (fx *fixture) replayScenario(benignSeed, attackSeed int64) traffic.Generator {
	benign := traffic.NewCampus(traffic.Profile{
		Plan: fx.plan, FlowsPerSecond: 60, Duration: 5 * time.Second, Seed: benignSeed,
	})
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: fx.plan, Victim: fx.plan.Host(9),
		Start: time.Second, Duration: 3 * time.Second, Rate: 800, Seed: attackSeed,
	})
	return traffic.NewMerge(benign, amp)
}

// developedLab collects the training scenario and runs the full Figure 2
// development loop, returning the lab and its deployment artifacts.
func (fx *fixture) developedLab() (*core.Lab, *core.Deployment, error) {
	lab, err := core.NewLab(core.Config{Name: "e-campus", Plan: fx.plan, Workers: workers()})
	if err != nil {
		return nil, nil, err
	}
	if _, err := lab.Collect(fx.trainingScenario()); err != nil {
		return nil, nil, err
	}
	dep, err := lab.Develop(core.DevelopConfig{Target: traffic.LabelDNSAmp, Seed: 1003, Workers: workers()})
	if err != nil {
		return nil, nil, err
	}
	return lab, dep, nil
}
