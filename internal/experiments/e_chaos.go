package experiments

import (
	"fmt"
	"time"

	"campuslab/internal/control"
	"campuslab/internal/faults"
)

// E14ChaosLoop replays the E5 DNS-amplification episode under injected
// faults — transient install failures, a full install outage, and a
// data-plane inference blackout that trips the circuit breaker — and
// measures what §4's operator actually cares about: does the loop still
// mitigate the right victim, how much later, and at what collateral cost.
// All fault schedules are seeded and deterministic; the healthy rows are
// byte-identical to a run with no injector at all.
func E14ChaosLoop() (*Table, error) {
	fx := newFixture()
	_, dep, err := fx.developedLab()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E14",
		Title:   "chaos road test: DNS-amp mitigation under injected faults",
		Columns: []string{"scenario", "recall", "collateral", "reaction", "retries", "breaker_trips", "fallback_inf", "dropped_mitig", "false_victims", "verdict"},
	}
	victim := fx.plan.Host(9) // replayScenario's attack target

	cpCfg := func() control.LoopConfig {
		return control.LoopConfig{
			Tier: control.TierControlPlane, Program: dep.AlertProgram,
			Model: dep.Extraction.Tree, Threshold: 0.9, Window: time.Second, MinEvidence: 30,
		}
	}
	run := func(name string, cfg control.LoopConfig) (control.LoopStats, error) {
		loop, err := control.NewLoop(cfg)
		if err != nil {
			return control.LoopStats{}, fmt.Errorf("%s: %w", name, err)
		}
		stats, err := loop.Replay(fx.replayScenario(1401, 1402))
		if err != nil {
			return control.LoopStats{}, fmt.Errorf("%s: %w", name, err)
		}
		reaction := "never"
		if len(stats.Mitigations) > 0 {
			reaction = fmtDur(stats.Mitigations[0].InstalledAt - time.Second)
		} else if cfg.Tier == control.TierDataPlane && len(cfg.Fallbacks) == 0 {
			reaction = "0 (inline)"
		}
		falseVictims := 0
		for _, m := range stats.Mitigations {
			if m.Victim != victim {
				falseVictims++
			}
		}
		verdict := "PASS"
		switch {
		case falseVictims > 0:
			verdict = fmt.Sprintf("FAIL: %d false victims", falseVictims)
		case len(stats.Mitigations) == 0 && cfg.Tier != control.TierDataPlane:
			verdict = "FAIL: never mitigated"
		}
		t.AddRow(name, pct(stats.DetectionRecall()), pct(stats.CollateralRate()), reaction,
			fmt.Sprintf("%d", stats.InstallRetries), fmt.Sprintf("%d", stats.BreakerTrips),
			fmt.Sprintf("%d", stats.FallbackInferences), fmt.Sprintf("%d", stats.DroppedMitigations),
			fmt.Sprintf("%d", falseVictims), verdict)
		return stats, nil
	}

	// Healthy detect-then-mitigate baseline: every chaos row below is read
	// against this one.
	healthy, err := run("healthy (control plane)", cpCfg())
	if err != nil {
		return nil, err
	}

	// A transient blip: the first two install attempts fail; the retry
	// loop (exponential backoff + jitter, 4 attempts) must absorb them.
	cfg := cpCfg()
	cfg.Faults = faults.NewSchedule().FailCalls(faults.OpInstall, 1, 2, faults.KindTransient)
	flaky, err := run("transient install blip (2 failures)", cfg)
	if err != nil {
		return nil, err
	}

	// A scripted outage eats the first mitigation's whole retry budget; the
	// loop must drop that mitigation, keep accumulating evidence, and land
	// the next one.
	cfg = cpCfg()
	cfg.Faults = faults.NewSchedule().FailCalls(faults.OpInstall, 1, 4, faults.KindTransient)
	if _, err := run("install outage (retry budget burned)", cfg); err != nil {
		return nil, err
	}

	// Healthy inline baseline for the breaker scenario.
	inline := control.LoopConfig{Tier: control.TierDataPlane, Program: dep.DropProgram}
	if _, err := run("healthy (dataplane inline)", inline); err != nil {
		return nil, err
	}

	// The acceptance scenario: the data plane's inference path blacks out
	// (breaker trips) AND the install channel is flaky — a guaranteed
	// first-attempt failure plus a 12% transient rate on every attempt.
	// The loop must degrade to the control-plane tier, retry through the
	// flaky installs, and still mitigate only the true victim.
	chaos := control.LoopConfig{
		Tier: control.TierDataPlane, Program: dep.DropProgram,
		Threshold: 0.9, Window: time.Second, MinEvidence: 30,
		Faults: faults.Chain{
			faults.NewSchedule().
				FailCalls(faults.OpInfer("dataplane"), 1, 1<<40, faults.KindTransient).
				FailCalls(faults.OpInstall, 1, 1, faults.KindTransient),
			faults.NewProb(1404).Rate(faults.OpInstall, 0.12, 0),
		},
		Breaker:   control.BreakerConfig{Trip: 5, Cooldown: 30 * time.Second},
		Fallbacks: []control.FallbackTier{{Tier: control.TierControlPlane, Model: dep.Extraction.Tree}},
	}
	broken, err := run("dataplane blackout -> CP fallback + 12% install faults", chaos)
	if err != nil {
		return nil, err
	}

	if len(healthy.Mitigations) > 0 && len(flaky.Mitigations) > 0 {
		h := healthy.Mitigations[0].InstalledAt - time.Second
		f := flaky.Mitigations[0].InstalledAt - time.Second
		t.Notes = append(t.Notes, fmt.Sprintf(
			"time-to-mitigation inflation under the 2-failure install blip: %s -> %s (%.2fx), bounded by the retry policy's backoff ceiling",
			fmtDur(h), fmtDur(f), float64(f)/float64(h)))
	}
	if broken.BreakerTrips == 0 {
		t.Notes = append(t.Notes, "WARNING: dataplane breaker never tripped — chaos scenario did not exercise the fallback path")
	}
	t.Notes = append(t.Notes,
		"expected shape: transient install faults cost milliseconds (retries), not mitigations; a burned retry budget costs one mitigation but the evidence loop recovers; a data-plane inference blackout degrades recall to roughly the control-plane tier's detect-then-mitigate level with zero false victims — graceful degradation, not collapse")
	return t, nil
}
