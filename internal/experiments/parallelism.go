package experiments

import "campuslab/internal/parallel"

// workerCount is the offline-loop fan-out every experiment uses for
// sharded ingest, feature extraction and forest training. 0 means
// GOMAXPROCS; 1 forces the serial path. cmd/campuslab plumbs its -workers
// flag here so the whole experiment suite runs at one setting.
var workerCount int

// SetWorkers configures the experiment suite's worker count
// (0 = GOMAXPROCS, 1 = serial). Tables are identical at any setting —
// only wall-clock changes.
func SetWorkers(n int) { workerCount = n }

// Workers returns the configured count, resolved (never 0).
func Workers() int { return parallel.Workers(workerCount) }

// workers returns the raw configured value for passing into Workers
// fields that resolve 0 themselves.
func workers() int { return workerCount }
