package dataplane

import (
	"fmt"
	"math"

	"campuslab/internal/ml"
	"campuslab/internal/obs"
)

// CompileConfig controls tree-to-program compilation.
type CompileConfig struct {
	// Name labels the program.
	Name string
	// DropClasses lists model classes compiled to ActionDrop; other
	// non-zero classes become ActionAlert. Class 0 (benign) is permit.
	DropClasses []int
	// MinConfidence converts low-confidence attack leaves to ActionPunt
	// (send to control plane) instead of acting in the fast path — the
	// §2 "drop ... if confidence in detection is at least 90%" knob.
	MinConfidence float64
}

// Compile lowers an extracted decision tree into a match-action Program.
// The tree must be trained over features whose schema columns all resolve
// to matchable fields (features.PacketSchema). Each root-to-leaf path
// becomes one rule whose per-field intervals are the intersection of the
// path's threshold conditions.
func Compile(tree *ml.Tree, schema []string, cfg CompileConfig) (*Program, error) {
	defer obs.Default.StartSpan("compile")()
	fields := make([]Field, len(schema))
	for i, name := range schema {
		f, err := FieldByName(name)
		if err != nil {
			return nil, fmt.Errorf("dataplane: schema column %d: %w", i, err)
		}
		fields[i] = f
	}
	drop := make(map[int]bool, len(cfg.DropClasses))
	for _, c := range cfg.DropClasses {
		drop[c] = true
	}
	prog := &Program{Name: cfg.Name, Default: ActionPermit}
	// Per-feature interval scratch, allocated once per compile (not per
	// rule) and reset at the top of each iteration.
	lo := make([]float64, len(schema))
	hi := make([]float64, len(schema))
	for _, rule := range tree.Rules() {
		if rule.Class == 0 {
			continue // benign leaves fall through to the default permit
		}
		// Intersect conditions into per-feature intervals.
		for i := range hi {
			hi[i] = math.Inf(1)
			lo[i] = math.Inf(-1)
		}
		for _, c := range rule.Conds {
			if c.Feature >= len(schema) {
				return nil, fmt.Errorf("dataplane: rule condition on feature %d outside schema", c.Feature)
			}
			if c.LE {
				if c.Thr < hi[c.Feature] {
					hi[c.Feature] = c.Thr
				}
			} else {
				if c.Thr > lo[c.Feature] {
					lo[c.Feature] = c.Thr
				}
			}
		}
		var conds []RangeCond
		unsat := false
		for i := range schema {
			if math.IsInf(lo[i], -1) && math.IsInf(hi[i], 1) {
				continue // unconstrained
			}
			f := fields[i]
			maxV := float64(f.MaxValue())
			c := RangeCond{Field: f, Lo: 0, Hi: f.MaxValue()}
			// Thresholds come from jittered training samples and can fall
			// outside the field's integer domain; clamp into [0, max].
			if !math.IsInf(lo[i], -1) {
				if lo[i] >= maxV {
					unsat = true // x > max is unsatisfiable
					break
				}
				if lo[i] >= 0 {
					// strict '>' on integers: lo bound is floor(thr)+1
					c.Lo = uint32(math.Floor(lo[i])) + 1
				}
			}
			if !math.IsInf(hi[i], 1) {
				if hi[i] < 0 {
					unsat = true // x <= negative is unsatisfiable
					break
				}
				if hi[i] < maxV {
					c.Hi = uint32(math.Floor(hi[i]))
				}
			}
			if c.Lo > c.Hi {
				unsat = true // empty interval after integer snapping
				break
			}
			if c.Lo == 0 && c.Hi == f.MaxValue() {
				continue // clamping made the condition vacuous
			}
			conds = append(conds, c)
		}
		if unsat {
			continue // unreachable rule
		}
		action := ActionAlert
		if drop[rule.Class] {
			action = ActionDrop
		}
		if rule.Conf < cfg.MinConfidence {
			action = ActionPunt
		}
		prog.Rules = append(prog.Rules, Rule{
			Conds:      conds,
			Action:     action,
			Class:      rule.Class,
			Confidence: rule.Conf,
		})
	}
	return prog, nil
}
