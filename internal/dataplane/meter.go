package dataplane

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// TokenBucket is the switch meter primitive (P4 meters, simplified to a
// single-rate two-color marker): traffic within rate+burst conforms,
// excess is marked for drop. Mitigations can rate-limit a victim's inbound
// UDP instead of blackholing it — less collateral than a hard drop.
//
// State lives in atomics so the lock-free verdict path can charge the
// bucket without taking a lock. Conforms keeps its original sequential
// contract (non-decreasing ts from one replay goroutine); concurrent
// callers are race-safe but may interleave charges.
type TokenBucket struct {
	rateBps float64 // refill rate in bytes/second
	burst   float64 // bucket depth in bytes

	tokens  atomic.Uint64 // Float64bits of the current token count
	last    atomic.Int64  // last refill time (ns)
	started atomic.Bool

	conformed atomic.Uint64
	exceeded  atomic.Uint64
}

// NewTokenBucket builds a meter passing rateBps bytes/second with the
// given burst allowance.
func NewTokenBucket(rateBps, burst float64) (*TokenBucket, error) {
	if rateBps <= 0 || burst <= 0 {
		return nil, fmt.Errorf("dataplane: meter rate and burst must be positive (got %v, %v)", rateBps, burst)
	}
	tb := &TokenBucket{rateBps: rateBps, burst: burst}
	tb.tokens.Store(math.Float64bits(burst))
	return tb, nil
}

// Conforms charges size bytes at time ts, reporting whether the packet is
// within profile. Calls must have non-decreasing ts.
func (tb *TokenBucket) Conforms(ts time.Duration, size int) bool {
	if !tb.started.Load() {
		tb.last.Store(int64(ts))
		tb.started.Store(true)
	}
	last := time.Duration(tb.last.Load())
	tokens := math.Float64frombits(tb.tokens.Load())
	if ts > last {
		tokens += (ts - last).Seconds() * tb.rateBps
		if tokens > tb.burst {
			tokens = tb.burst
		}
		tb.last.Store(int64(ts))
	}
	if float64(size) <= tokens {
		tb.tokens.Store(math.Float64bits(tokens - float64(size)))
		tb.conformed.Add(1)
		return true
	}
	tb.tokens.Store(math.Float64bits(tokens))
	tb.exceeded.Add(1)
	return false
}

// Stats returns conforming and exceeding packet counts.
func (tb *TokenBucket) Stats() (conformed, exceeded uint64) {
	return tb.conformed.Load(), tb.exceeded.Load()
}
