package dataplane

import (
	"fmt"
	"time"
)

// TokenBucket is the switch meter primitive (P4 meters, simplified to a
// single-rate two-color marker): traffic within rate+burst conforms,
// excess is marked for drop. Mitigations can rate-limit a victim's inbound
// UDP instead of blackholing it — less collateral than a hard drop.
type TokenBucket struct {
	rateBps float64 // refill rate in bytes/second
	burst   float64 // bucket depth in bytes
	tokens  float64
	last    time.Duration
	started bool

	conformed uint64
	exceeded  uint64
}

// NewTokenBucket builds a meter passing rateBps bytes/second with the
// given burst allowance.
func NewTokenBucket(rateBps, burst float64) (*TokenBucket, error) {
	if rateBps <= 0 || burst <= 0 {
		return nil, fmt.Errorf("dataplane: meter rate and burst must be positive (got %v, %v)", rateBps, burst)
	}
	return &TokenBucket{rateBps: rateBps, burst: burst, tokens: burst}, nil
}

// Conforms charges size bytes at time ts, reporting whether the packet is
// within profile. Calls must have non-decreasing ts.
func (tb *TokenBucket) Conforms(ts time.Duration, size int) bool {
	if !tb.started {
		tb.last, tb.started = ts, true
	}
	if ts > tb.last {
		tb.tokens += (ts - tb.last).Seconds() * tb.rateBps
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = ts
	}
	if float64(size) <= tb.tokens {
		tb.tokens -= float64(size)
		tb.conformed++
		return true
	}
	tb.exceeded++
	return false
}

// Stats returns conforming and exceeding packet counts.
func (tb *TokenBucket) Stats() (conformed, exceeded uint64) {
	return tb.conformed, tb.exceeded
}
