package dataplane

import (
	"math/rand"
	"testing"

	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/packet"
)

// --- generators -----------------------------------------------------------

// randPacketDataset draws a random labeled dataset over the matchable
// packet schema. Values are small integers so fitted trees carry many
// overlapping thresholds on the same fields — the shape that stresses
// per-tree dedup and integerization.
func randPacketDataset(rng *rand.Rand, rows, classes int) *features.Dataset {
	ds := &features.Dataset{Schema: features.PacketSchema}
	for i := 0; i < rows; i++ {
		x := make([]float64, len(features.PacketSchema))
		for j := range x {
			f, _ := FieldByName(features.PacketSchema[j])
			span := int64(f.MaxValue()) + 1
			if span > 9 {
				span = 9 // overlap-heavy: many duplicate values per column
			}
			x[j] = float64(rng.Int63n(span))
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, rng.Intn(classes))
	}
	return ds
}

// randForest fits a small randomized forest on a random dataset.
func randForest(t testing.TB, rng *rand.Rand) *ml.Forest {
	t.Helper()
	classes := 2 + rng.Intn(3)
	ds := randPacketDataset(rng, 40+rng.Intn(40), classes)
	f, err := ml.FitForest(ds, classes, ml.ForestConfig{
		Trees: 1 + rng.Intn(8), MaxDepth: 1 + rng.Intn(6), Seed: rng.Int63(), Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// fvToX maps a field vector onto the model's feature space — the exact
// conversion the equivalence contract is stated over.
func fvToX(fv *FieldVector, x []float64) {
	for j := range features.PacketSchema {
		f, _ := FieldByName(features.PacketSchema[j])
		x[j] = float64(fv.Get(f))
	}
}

// ensRandVector mixes full-domain vectors with small-valued ones that sit
// right on the fitted thresholds.
func ensRandVector(rng *rand.Rand) FieldVector {
	if rng.Intn(3) == 0 {
		return randVector(rng)
	}
	var fv FieldVector
	for f := Field(0); f < NumFields; f++ {
		fv.Set(f, uint32(rng.Intn(10)))
	}
	return fv
}

// --- equivalence properties -----------------------------------------------

// TestForestEnsembleEquivalence pins the compiled ensemble's verdicts —
// class AND confidence — byte-identical to ml.Forest.Predict/Proba, and
// the integer fast path identical to the float reference walk, across
// randomized forests with overlapping thresholds.
func TestForestEnsembleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	x := make([]float64, len(features.PacketSchema))
	for trial := 0; trial < 40; trial++ {
		forest := randForest(t, rng)
		ep, err := CompileForestEnsemble(forest, features.PacketSchema, EnsembleConfig{
			Name: "rand-forest", DropClasses: []int{1},
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if u := ep.Usage(); u.Mode != EnsembleExact {
			t.Fatalf("trial %d: mode %v, want exact (usage %+v)", trial, u.Mode, u)
		}
		for i := 0; i < 300; i++ {
			fv := ensRandVector(rng)
			got := ep.evalCompiled(&fv)
			if ref := ep.evalRef(&fv); got != ref {
				t.Fatalf("trial %d: compiled %+v != ref %+v (fv %v)", trial, got, ref, fv.vals)
			}
			fvToX(&fv, x)
			wantClass := forest.Predict(x)
			wantConf := forest.Proba(x)[wantClass]
			if got.Class != wantClass || got.Confidence != wantConf {
				t.Fatalf("trial %d: verdict (%d, %v) != forest (%d, %v) fv %v",
					trial, got.Class, got.Confidence, wantClass, wantConf, fv.vals)
			}
		}
	}
}

// TestBoostEnsembleEquivalence is the boosted twin: alpha-weighted leaf
// votes must reproduce ml.Boost.Predict/Proba byte-identically.
func TestBoostEnsembleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	x := make([]float64, len(features.PacketSchema))
	for trial := 0; trial < 30; trial++ {
		classes := 2 + rng.Intn(2)
		ds := randPacketDataset(rng, 40+rng.Intn(40), classes)
		boost, err := ml.FitBoost(ds, classes, ml.BoostConfig{
			Rounds: 2 + rng.Intn(8), WeakDepth: 1 + rng.Intn(3), Seed: rng.Int63(),
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ep, err := CompileBoostEnsemble(boost, features.PacketSchema, EnsembleConfig{Name: "rand-boost"})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if u := ep.Usage(); u.Mode != EnsembleExact {
			t.Fatalf("trial %d: mode %v, want exact", trial, u.Mode)
		}
		for i := 0; i < 300; i++ {
			fv := ensRandVector(rng)
			got := ep.evalCompiled(&fv)
			if ref := ep.evalRef(&fv); got != ref {
				t.Fatalf("trial %d: compiled %+v != ref %+v", trial, got, ref)
			}
			fvToX(&fv, x)
			wantClass := boost.Predict(x)
			wantConf := boost.Proba(x)[wantClass]
			if got.Class != wantClass || got.Confidence != wantConf {
				t.Fatalf("trial %d: verdict (%d, %v) != boost (%d, %v)",
					trial, got.Class, got.Confidence, wantClass, wantConf)
			}
		}
	}
}

// TestEnsembleBatchEquivalence runs the trained DNS-amp forest through the
// switch at batch sizes 1 and 64 and pins every verdict to the
// control-plane forest on the same parsed field view.
func TestEnsembleBatchEquivalence(t *testing.T) {
	forest, _, _, _ := trainPacketForest(t)
	ep, err := CompileForestEnsemble(forest, features.PacketSchema, EnsembleConfig{
		Name: "dns-amp-ens", DropClasses: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if u := ep.Usage(); u.Mode != EnsembleExact {
		t.Fatalf("trained forest should fit the default budget: %+v", u)
	}
	sw := NewSwitch(DefaultResources())
	if err := sw.LoadEnsemble(ep); err != nil {
		t.Fatal(err)
	}
	if !sw.EnsembleLoaded() {
		t.Fatal("ensemble not loaded")
	}
	rng := rand.New(rand.NewSource(503))
	pool := testAddrPool()
	x := make([]float64, len(features.PacketSchema))
	for _, batch := range []int{1, 64} {
		sums := make([]packet.Summary, batch)
		for i := range sums {
			sums[i] = randTestSummary(rng, pool)
		}
		out := sw.ProcessBatchAt(nil, sums, nil)
		for i := range sums {
			var fv FieldVector
			fv.FromSummary(&sums[i])
			fvToX(&fv, x)
			wantClass := forest.Predict(x)
			wantConf := forest.Proba(x)[wantClass]
			if out[i].Class != wantClass || out[i].Confidence != wantConf {
				t.Fatalf("batch=%d pkt %d: verdict (%d, %v) != forest (%d, %v)",
					batch, i, out[i].Class, out[i].Confidence, wantClass, wantConf)
			}
			// Batched and single-packet paths agree.
			if single := sw.ProcessAt(0, &sums[i]); single != out[i] {
				t.Fatalf("batch=%d pkt %d: batch %+v != single %+v", batch, i, out[i], single)
			}
		}
	}
}

// --- budgets and degradation ----------------------------------------------

// TestEnsembleBudgetDegradation walks the ladder: a roomy budget compiles
// exactly, a tight node budget prunes every tree, a tiny tree budget
// falls back to the extracted single tree — all without error, all within
// the declared budget, and all still byte-identical to their own float
// reference walk.
func TestEnsembleBudgetDegradation(t *testing.T) {
	forest, tree, _, _ := trainPacketForest(t)
	rng := rand.New(rand.NewSource(504))
	x := make([]float64, len(features.PacketSchema))

	checkRef := func(t *testing.T, ep *EnsembleProgram) {
		t.Helper()
		for i := 0; i < 500; i++ {
			fv := ensRandVector(rng)
			if got, ref := ep.evalCompiled(&fv), ep.evalRef(&fv); got != ref {
				t.Fatalf("compiled %+v != ref %+v (fv %v)", got, ref, fv.vals)
			}
		}
	}

	t.Run("exact", func(t *testing.T) {
		ep, err := CompileForestEnsemble(forest, features.PacketSchema, EnsembleConfig{DropClasses: []int{1}})
		if err != nil {
			t.Fatal(err)
		}
		u := ep.Usage()
		if u.Mode != EnsembleExact || u.PrunedDepth != 0 || u.Trees != forest.NumTrees() {
			t.Fatalf("usage %+v", u)
		}
		if !u.Budget.admits(u) {
			t.Fatalf("exact compile exceeds its own budget: %+v", u)
		}
		checkRef(t, ep)
	})

	t.Run("pruned", func(t *testing.T) {
		budget := ResourceBudget{Nodes: 40}
		ep, err := CompileForestEnsemble(forest, features.PacketSchema, EnsembleConfig{
			DropClasses: []int{1}, Budget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		u := ep.Usage()
		if u.Mode != EnsemblePruned {
			t.Fatalf("mode %v, want pruned (usage %+v)", u.Mode, u)
		}
		if u.Nodes > budget.Nodes {
			t.Fatalf("pruned compile still over budget: %+v", u)
		}
		if u.Trees != forest.NumTrees() || u.PrunedDepth < 1 {
			t.Fatalf("usage %+v", u)
		}
		sum := 0
		for _, n := range u.TreeNodes {
			sum += n
		}
		if sum != u.Nodes {
			t.Fatalf("per-tree nodes sum %d != total %d", sum, u.Nodes)
		}
		checkRef(t, ep)
	})

	t.Run("fallback", func(t *testing.T) {
		ep, err := CompileForestEnsemble(forest, features.PacketSchema, EnsembleConfig{
			DropClasses: []int{1},
			Budget:      ResourceBudget{Trees: 2},
			Fallback:    tree,
		})
		if err != nil {
			t.Fatal(err)
		}
		u := ep.Usage()
		if u.Mode != EnsembleFallback || u.Trees != 1 {
			t.Fatalf("usage %+v", u)
		}
		checkRef(t, ep)
		// A one-tree mean vote is exactly the fallback tree's argmax.
		for i := 0; i < 500; i++ {
			fv := ensRandVector(rng)
			fvToX(&fv, x)
			if got, want := ep.evalCompiled(&fv).Class, tree.Predict(x); got != want {
				t.Fatalf("fallback class %d != tree %d (fv %v)", got, want, fv.vals)
			}
		}
	})

	t.Run("impossible", func(t *testing.T) {
		_, err := CompileForestEnsemble(forest, features.PacketSchema, EnsembleConfig{
			Budget: ResourceBudget{TableEntries: 1}, // can't hold even 2 leaves
		})
		if err == nil {
			t.Fatal("budget of 1 table entry must be rejected")
		}
	})
}

// TestEnsembleVerdictActions pins the class→action ladder: class 0
// permits, drop classes drop, others alert, low confidence punts.
func TestEnsembleVerdictActions(t *testing.T) {
	forest, _, _, _ := trainPacketForest(t)
	rng := rand.New(rand.NewSource(505))
	x := make([]float64, len(features.PacketSchema))

	for _, tc := range []struct {
		name    string
		cfg     EnsembleConfig
		expect  func(class int, conf float64) ActionKind
	}{
		{"drop", EnsembleConfig{DropClasses: []int{1}}, func(class int, conf float64) ActionKind {
			if class == 0 {
				return ActionPermit
			}
			return ActionDrop
		}},
		{"alert", EnsembleConfig{}, func(class int, conf float64) ActionKind {
			if class == 0 {
				return ActionPermit
			}
			return ActionAlert
		}},
		{"punt", EnsembleConfig{DropClasses: []int{1}, MinConfidence: 1.1}, func(class int, conf float64) ActionKind {
			if class == 0 {
				return ActionPermit
			}
			return ActionPunt // nothing reaches confidence 1.1
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ep, err := CompileForestEnsemble(forest, features.PacketSchema, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			sawAttack := false
			for i := 0; i < 2000; i++ {
				fv := ensRandVector(rng)
				v := ep.evalCompiled(&fv)
				fvToX(&fv, x)
				if want := tc.expect(forest.Predict(x), v.Confidence); v.Action != want {
					t.Fatalf("class %d conf %v: action %v, want %v", v.Class, v.Confidence, v.Action, want)
				}
				if v.Class != 0 {
					sawAttack = true
				}
			}
			if !sawAttack {
				t.Fatal("no attack verdicts drawn; test vacuous")
			}
		})
	}
}

// --- switch integration ----------------------------------------------------

// TestEnsembleInfoCopy verifies EnsembleInfo hands out deep copies, never
// live internals, and reports absence correctly.
func TestEnsembleInfoCopy(t *testing.T) {
	forest, _, _, _ := trainPacketForest(t)
	ep, err := CompileForestEnsemble(forest, features.PacketSchema, EnsembleConfig{DropClasses: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwitch(DefaultResources())
	if _, ok := sw.EnsembleInfo(); ok {
		t.Fatal("EnsembleInfo reported an ensemble before LoadEnsemble")
	}
	if err := sw.LoadEnsemble(ep); err != nil {
		t.Fatal(err)
	}
	u, ok := sw.EnsembleInfo()
	if !ok {
		t.Fatal("EnsembleInfo missing after LoadEnsemble")
	}
	if u.Trees != forest.NumTrees() || len(u.TreeNodes) != forest.NumTrees() {
		t.Fatalf("usage %+v", u)
	}
	// Corrupt the copy; the switch's view must be unaffected.
	origFirst := u.TreeNodes[0]
	u.TreeNodes[0] = -1
	u.Nodes = -1
	again, _ := sw.EnsembleInfo()
	if again.TreeNodes[0] != origFirst || again.Nodes < 0 {
		t.Fatal("EnsembleInfo handed out live state")
	}
	// Same contract on the program itself.
	pu := ep.Usage()
	pu.TreeNodes[0] = -7
	if ep.Usage().TreeNodes[0] == -7 {
		t.Fatal("EnsembleProgram.Usage handed out live state")
	}
	if !sw.UnloadEnsemble() {
		t.Fatal("UnloadEnsemble found nothing")
	}
	if _, ok := sw.EnsembleInfo(); ok {
		t.Fatal("EnsembleInfo reported an ensemble after unload")
	}
	if sw.UnloadEnsemble() {
		t.Fatal("second UnloadEnsemble reported success")
	}
}

// TestEnsembleScanKnob drives the ensemble path through the scan-path
// environment knob and SetScanOnly, demanding identical verdicts from the
// reference walk.
func TestEnsembleScanKnob(t *testing.T) {
	forest, _, _, _ := trainPacketForest(t)
	ep, err := CompileForestEnsemble(forest, features.PacketSchema, EnsembleConfig{DropClasses: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv(ScanPathEnv, "1")
	swScan := NewSwitch(DefaultResources())
	if err := swScan.LoadEnsemble(ep); err != nil {
		t.Fatal(err)
	}
	if !swScan.state.Load().ens.scan {
		t.Fatalf("%s did not force the ensemble reference walk", ScanPathEnv)
	}
	swFast := NewSwitch(DefaultResources())
	swFast.SetScanOnly(false)
	if err := swFast.LoadEnsemble(ep); err != nil {
		t.Fatal(err)
	}
	if swFast.state.Load().ens.scan {
		t.Fatal("fast twin is on the reference walk")
	}
	rng := rand.New(rand.NewSource(506))
	pool := testAddrPool()
	for i := 0; i < 2000; i++ {
		s := randTestSummary(rng, pool)
		if vs, vf := swScan.ProcessAt(0, &s), swFast.ProcessAt(0, &s); vs != vf {
			t.Fatalf("pkt %d: scan %+v != fast %+v", i, vs, vf)
		}
	}
	// Flipping the knob at runtime swaps the evaluator in place.
	swFast.SetScanOnly(true)
	if !swFast.state.Load().ens.scan {
		t.Fatal("SetScanOnly(true) did not switch the ensemble to the reference walk")
	}
	swFast.SetScanOnly(false)
	if swFast.state.Load().ens.scan {
		t.Fatal("SetScanOnly(false) did not restore the compiled ensemble path")
	}
}

// TestEnsembleHotPathAllocs pins the ensemble fast path at zero
// allocations per packet, single and batched.
func TestEnsembleHotPathAllocs(t *testing.T) {
	forest, _, _, _ := trainPacketForest(t)
	ep, err := CompileForestEnsemble(forest, features.PacketSchema, EnsembleConfig{DropClasses: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwitch(DefaultResources())
	if err := sw.LoadEnsemble(ep); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(507))
	pool := testAddrPool()
	s := randTestSummary(rng, pool)
	if n := testing.AllocsPerRun(200, func() { sw.ProcessAt(0, &s) }); n != 0 {
		t.Fatalf("ProcessAt allocates %v/op on the ensemble path", n)
	}
	sums := make([]packet.Summary, 64)
	for i := range sums {
		sums[i] = randTestSummary(rng, pool)
	}
	out := make([]Verdict, 0, len(sums))
	if n := testing.AllocsPerRun(50, func() { out = sw.ProcessBatchAt(nil, sums, out[:0]) }); n != 0 {
		t.Fatalf("ProcessBatchAt allocates %v/op on the ensemble path", n)
	}
}

// --- fuzzing ---------------------------------------------------------------

// FuzzEnsembleCompile drives random tree shapes, thresholds, and budgets
// through the ensemble compiler: it must never panic, never hand back an
// over-budget program, keep its per-tree accounting consistent, and stay
// byte-identical to its own reference walk (and to the source model when
// the compile is exact).
func FuzzEnsembleCompile(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(3), uint8(40), uint8(0), uint8(0), uint8(0), uint8(0), false)
	f.Add(int64(7), uint8(5), uint8(4), uint8(60), uint8(200), uint8(32), uint8(0), uint8(0), false)
	f.Add(int64(42), uint8(8), uint8(6), uint8(70), uint8(50), uint8(0), uint8(4), uint8(2), false)
	f.Add(int64(3), uint8(4), uint8(2), uint8(50), uint8(0), uint8(8), uint8(3), uint8(0), true)
	f.Add(int64(99), uint8(2), uint8(1), uint8(20), uint8(1), uint8(1), uint8(1), uint8(1), true)
	f.Fuzz(func(t *testing.T, seed int64, nTrees, depth, rows, bNodes, bEntries, bStages, bTrees uint8, boost bool) {
		rng := rand.New(rand.NewSource(seed))
		classes := 2 + int(nTrees)%3
		ds := randPacketDataset(rng, 20+int(rows)%60, classes)
		budget := ResourceBudget{
			Nodes: int(bNodes), TableEntries: int(bEntries),
			Stages: int(bStages), Trees: int(bTrees),
		}
		cfg := EnsembleConfig{Name: "fuzz", DropClasses: []int{1}, Budget: budget}

		var ep *EnsembleProgram
		var err error
		var model ml.Classifier
		if boost {
			b, ferr := ml.FitBoost(ds, classes, ml.BoostConfig{
				Rounds: 1 + int(nTrees)%6, WeakDepth: 1 + int(depth)%3, Seed: rng.Int63(),
			})
			if ferr != nil {
				t.Skip()
			}
			model = b
			ep, err = CompileBoostEnsemble(b, features.PacketSchema, cfg)
		} else {
			fr, ferr := ml.FitForest(ds, classes, ml.ForestConfig{
				Trees: 1 + int(nTrees)%8, MaxDepth: 1 + int(depth)%6, Seed: rng.Int63(), Workers: 1,
			})
			if ferr != nil {
				t.Skip()
			}
			model = fr
			ep, err = CompileForestEnsemble(fr, features.PacketSchema, cfg)
		}
		if err != nil {
			return // rejected (budget impossible): fine, as long as no panic
		}
		u := ep.Usage()
		norm := budget
		if budget == (ResourceBudget{}) {
			norm = DefaultEnsembleBudget()
		}
		norm = norm.normalized()
		if !norm.admits(u) {
			t.Fatalf("compiled program exceeds budget: usage %+v budget %+v", u, norm)
		}
		sum := 0
		for _, n := range u.TreeNodes {
			sum += n
		}
		if sum != u.Nodes || len(u.TreeNodes) != u.Trees {
			t.Fatalf("per-tree accounting inconsistent: %+v", u)
		}
		if (u.Mode == EnsembleExact) != (u.PrunedDepth == 0 && u.Mode != EnsembleFallback) {
			t.Fatalf("mode/depth inconsistent: %+v", u)
		}
		x := make([]float64, len(features.PacketSchema))
		for i := 0; i < 60; i++ {
			fv := ensRandVector(rng)
			got := ep.evalCompiled(&fv)
			if ref := ep.evalRef(&fv); got != ref {
				t.Fatalf("compiled %+v != ref %+v (fv %v, usage %+v)", got, ref, fv.vals, u)
			}
			if u.Mode == EnsembleExact {
				fvToX(&fv, x)
				if want := model.Predict(x); got.Class != want {
					t.Fatalf("exact-mode class %d != model %d (fv %v)", got.Class, want, fv.vals)
				}
			}
		}
	})
}
