package dataplane

import (
	"errors"
	"fmt"
	"net/netip"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"campuslab/internal/faults"
	"campuslab/internal/obs"
	"campuslab/internal/packet"
)

// ErrTableFull reports a rule install rejected because the exact-match
// table budget is exhausted — a permanent condition until entries are
// removed; retrying without freeing space cannot succeed.
var ErrTableFull = errors.New("dataplane: filter table full")

// ScanPathEnv, when set to a non-empty value, forces every switch created
// afterwards onto the linear-scan reference path (no DAG compilation) —
// the escape hatch for bisecting a suspected fast-path divergence.
const ScanPathEnv = "CAMPUSLAB_SCAN_PATH"

// FieldVector is the per-packet header view the pipeline matches on.
type FieldVector struct {
	vals [NumFields]uint32
}

// Get returns the value of field f.
func (fv *FieldVector) Get(f Field) uint32 { return fv.vals[f] }

// Set assigns field f (tests and synthetic traffic).
func (fv *FieldVector) Set(f Field, v uint32) { fv.vals[f] = v }

// FromSummary fills the vector from a parsed packet summary — the switch
// "parser" stage.
func (fv *FieldVector) FromSummary(s *packet.Summary) {
	fv.vals[FieldWireLen] = clampU32(s.WireLen)
	fv.vals[FieldIsUDP] = b2u(s.HasUDP)
	fv.vals[FieldIsTCP] = b2u(s.HasTCP)
	fv.vals[FieldDstPort] = uint32(s.Tuple.DstPort)
	fv.vals[FieldSrcPort] = uint32(s.Tuple.SrcPort)
	fv.vals[FieldSynNoAck] = b2u(s.HasTCP && s.TCPFlags.Has(packet.TCPSyn) && !s.TCPFlags.Has(packet.TCPAck))
	fv.vals[FieldDNSResp] = b2u(s.IsDNS && s.DNSResponse)
	fv.vals[FieldDNSAny] = b2u(s.IsDNS && s.DNSQueryType == packet.DNSTypeANY)
	fv.vals[FieldDNSAnswers] = clampU32(s.DNSAnswerCnt)
	fv.vals[FieldTTL] = uint32(s.TTL)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func clampU32(v int) uint32 {
	if v < 0 {
		return 0
	}
	if v > 0xffff {
		return 0xffff
	}
	return uint32(v)
}

// Verdict is the pipeline's decision for one packet.
type Verdict struct {
	Action     ActionKind
	Class      int
	Confidence float64
	// RuleIndex is the matching classification rule, -1 for default or
	// filter-table hits.
	RuleIndex int
	// FilterHit reports the packet matched an installed runtime filter.
	FilterHit bool
}

// FilterKey is an exact-match runtime filter entry key: drop traffic to a
// victim, optionally narrowed by source and port.
type FilterKey struct {
	DstIP   netip.Addr
	SrcIP   netip.Addr        // zero value = wildcard
	DstPort uint16            // 0 = wildcard
	Proto   packet.IPProtocol // 0 = wildcard
}

// Probe-form bitmask: ProcessAt probes up to five key shapes, most to
// least specific. An installed entry is only reachable through forms
// whose omitted fields are zero in the entry, so the state precomputes
// which forms can possibly hit and the verdict path skips the rest.
const (
	shapeFull        uint8 = 1 << iota // {DstIP, SrcIP, DstPort, Proto}
	shapeDstPortProt                   // {DstIP, DstPort, Proto}
	shapeDstProt                       // {DstIP, Proto}
	shapeDst                           // {DstIP}
	shapeSrc                           // {SrcIP}
)

// probeShapes returns the forms that could ever look up key k. Form 0
// copies every tuple field from the packet, so it can reach any entry;
// the narrower forms leave fields at their zero value and thus only
// reach entries whose corresponding fields are zero too.
func probeShapes(k FilterKey) uint8 {
	m := shapeFull
	zSrc := k.SrcIP == netip.Addr{}
	if zSrc {
		m |= shapeDstPortProt
		if k.DstPort == 0 {
			m |= shapeDstProt
			if k.Proto == 0 {
				m |= shapeDst
			}
		}
	}
	if (k.DstIP == netip.Addr{}) && k.DstPort == 0 && k.Proto == 0 {
		m |= shapeSrc
	}
	return m
}

// filterEntry is one slot of the combined filter+meter table. A key may
// carry both (a filter installed over an existing meter); the filter
// wins, matching the historical probe order.
type filterEntry struct {
	act      ActionKind
	isFilter bool
	meter    *TokenBucket
}

// pipelineState is the switch's entire read-mostly state as one immutable
// value published RCU-style: the verdict path loads it once per packet
// (or per batch) with a single atomic pointer read and never takes a
// lock. Writers (Load/Install/Remove) copy, modify, and swap under a
// writer mutex.
type pipelineState struct {
	prog *Program         // defensively copied at Load; nil = no program
	dag  *compiledProgram // compiled fast path; nil = linear-scan reference
	// perRule carries the per-rule match counters (atomic access). The
	// slice is shared across filter-table swaps so counts survive
	// mitigation installs, and replaced on Load.
	perRule []uint64

	// ens is the compiled ensemble pipeline; when set it replaces the
	// rule program as the classification stage (filters/meters still run
	// first).
	ens *ensembleState

	table    map[FilterKey]filterEntry
	nFilters int
	nMeters  int
	shapes   uint8
}

// evalRules classifies fv against the loaded classification stage
// (filters already missed): the ensemble pipeline when one is installed,
// else the rule program. Pure: no counters, no mutation.
func (st *pipelineState) evalRules(fv *FieldVector) Verdict {
	if st.ens != nil {
		return st.ens.eval(fv)
	}
	if st.dag != nil {
		return st.dag.eval(fv)
	}
	if st.prog != nil {
		for i := range st.prog.Rules {
			r := &st.prog.Rules[i]
			if r.Matches(fv) {
				return Verdict{
					Action: r.Action, Class: r.Class,
					Confidence: r.Confidence, RuleIndex: i,
				}
			}
		}
		return Verdict{Action: st.prog.Default, RuleIndex: -1}
	}
	return Verdict{Action: ActionPermit, RuleIndex: -1}
}

// lookup probes one filter key, charging the meter on a meter hit.
func (st *pipelineState) lookup(ts time.Duration, k FilterKey, wireLen int) (Verdict, bool) {
	e, ok := st.table[k]
	if !ok {
		return Verdict{}, false
	}
	if e.isFilter {
		return Verdict{Action: e.act, RuleIndex: -1, FilterHit: true}, true
	}
	if e.meter.Conforms(ts, wireLen) {
		return Verdict{Action: ActionPermit, RuleIndex: -1, FilterHit: true}, true
	}
	return Verdict{Action: ActionDrop, RuleIndex: -1, FilterHit: true}, true
}

// eval runs the full pipeline: runtime filters first (mitigations beat
// classification), then meters, then the program. Meters aside, eval is
// pure; counters are recorded separately by the caller.
func (st *pipelineState) eval(ts time.Duration, s *packet.Summary, fv *FieldVector) Verdict {
	if st.shapes != 0 {
		t := &s.Tuple
		if st.shapes&shapeFull != 0 {
			if v, ok := st.lookup(ts, FilterKey{DstIP: t.DstIP, SrcIP: t.SrcIP, DstPort: t.DstPort, Proto: t.Proto}, s.WireLen); ok {
				return v
			}
		}
		if st.shapes&shapeDstPortProt != 0 {
			if v, ok := st.lookup(ts, FilterKey{DstIP: t.DstIP, DstPort: t.DstPort, Proto: t.Proto}, s.WireLen); ok {
				return v
			}
		}
		if st.shapes&shapeDstProt != 0 {
			if v, ok := st.lookup(ts, FilterKey{DstIP: t.DstIP, Proto: t.Proto}, s.WireLen); ok {
				return v
			}
		}
		if st.shapes&shapeDst != 0 {
			if v, ok := st.lookup(ts, FilterKey{DstIP: t.DstIP}, s.WireLen); ok {
				return v
			}
		}
		if st.shapes&shapeSrc != 0 {
			if v, ok := st.lookup(ts, FilterKey{SrcIP: t.SrcIP}, s.WireLen); ok {
				return v
			}
		}
	}
	return st.evalRules(fv)
}

// Switch is the software programmable switch: a loaded classification
// program plus a runtime exact-match filter table the control plane
// installs mitigations into. The per-packet path is lock-free: all
// read-mostly state lives in one immutable pipelineState behind an
// atomic pointer and every counter is atomic. Safe for concurrent use;
// installs are copy-on-write and O(table size).
type Switch struct {
	res   Resources
	state atomic.Pointer[pipelineState]
	gen   atomic.Uint64 // bumped on every state publish

	// writeMu serializes state writers (Load, installs, removes) and
	// guards the fault injector and scan-path knob.
	writeMu  sync.Mutex
	faults   faults.Injector // nil = healthy
	scanOnly bool

	// ctr holds the verdict counters — the only atomics the per-packet
	// path touches besides the state pointer and perRule slots. The
	// block lives behind a pointer so the obs registry can aggregate
	// every switch's counters at snapshot time (see obs.go); Processed
	// is derived: the action counters partition it.
	ctr *switchCounters
}

// NewSwitch creates a switch with the given resource budget. Setting the
// CAMPUSLAB_SCAN_PATH environment variable forces the linear-scan
// reference path (see also SetScanOnly).
func NewSwitch(res Resources) *Switch {
	sw := &Switch{res: res, scanOnly: os.Getenv(ScanPathEnv) != "", ctr: newSwitchCounters()}
	sw.state.Store(&pipelineState{table: map[FilterKey]filterEntry{}})
	return sw
}

// publish swaps in the next state and bumps the generation. Callers hold
// writeMu.
func (sw *Switch) publish(st *pipelineState) {
	sw.state.Store(st)
	sw.gen.Add(1)
	obsStatePublishes.Inc()
}

// mutate builds the successor state from a copy of the current one
// (shared program/DAG/counters, fresh table map) and publishes it.
// Callers hold writeMu.
func (sw *Switch) mutate(edit func(next *pipelineState)) {
	cur := sw.state.Load()
	next := *cur
	next.table = make(map[FilterKey]filterEntry, len(cur.table)+1)
	for k, e := range cur.table {
		next.table[k] = e
	}
	edit(&next)
	next.shapes = 0
	for k := range next.table {
		next.shapes |= probeShapes(k)
	}
	sw.publish(&next)
}

// Load installs the classification program after a resource fit check.
// The program is copied and compiled to a decision DAG (unless the scan
// path is forced); the caller keeps ownership of prog.
func (sw *Switch) Load(prog *Program) error {
	defer obs.Default.StartSpan("install")()
	if rep := sw.res.Fit(prog); !rep.Fits {
		return fmt.Errorf("dataplane: program %q does not fit: %s", prog.Name, rep.Reason)
	}
	own := cloneProgram(prog)
	var dag *compiledProgram
	sw.writeMu.Lock()
	defer sw.writeMu.Unlock()
	if !sw.scanOnly {
		dag = compileDAG(own)
	}
	sw.mutate(func(next *pipelineState) {
		next.prog = own
		next.dag = dag
		next.perRule = make([]uint64, len(own.Rules))
	})
	if dag != nil {
		obsCompilesDag.Inc()
	} else {
		obsCompilesScan.Inc()
	}
	return nil
}

// LoadEnsemble installs a compiled ensemble pipeline as the classification
// stage, replacing any previous ensemble. The program is immutable after
// compilation, so it is published as-is behind the RCU pointer; a loaded
// rule program stays installed underneath and resumes if the ensemble is
// unloaded. Resource admission already happened at compile time against
// the EnsembleConfig budget; usage is exported as obs gauges here.
func (sw *Switch) LoadEnsemble(ep *EnsembleProgram) error {
	defer obs.Default.StartSpan("install")()
	if ep == nil {
		return fmt.Errorf("dataplane: nil ensemble program")
	}
	sw.writeMu.Lock()
	defer sw.writeMu.Unlock()
	sw.mutate(func(next *pipelineState) {
		next.ens = &ensembleState{ep: ep, scan: sw.scanOnly}
	})
	countEnsembleLoad(ep.usage)
	return nil
}

// UnloadEnsemble removes the ensemble stage (the rule program, if any,
// takes over again), reporting whether one was installed.
func (sw *Switch) UnloadEnsemble() bool {
	sw.writeMu.Lock()
	defer sw.writeMu.Unlock()
	if sw.state.Load().ens == nil {
		return false
	}
	sw.mutate(func(next *pipelineState) { next.ens = nil })
	return true
}

// EnsembleLoaded reports whether an ensemble pipeline is installed.
func (sw *Switch) EnsembleLoaded() bool {
	return sw.state.Load().ens != nil
}

// EnsembleInfo returns a copy of the installed ensemble's resource usage
// (mode, tree/node/entry/stage counts, budget) and whether one is
// installed. The copy is deep — mutating it never touches the running
// pipeline.
func (sw *Switch) EnsembleInfo() (EnsembleUsage, bool) {
	st := sw.state.Load()
	if st.ens == nil {
		return EnsembleUsage{}, false
	}
	return st.ens.ep.usage.clone(), true
}

// cloneProgram deep-copies a program so neither the loader nor Program()
// callers can mutate the rules the verdict path is executing.
func cloneProgram(p *Program) *Program {
	if p == nil {
		return nil
	}
	cp := &Program{Name: p.Name, Default: p.Default, Rules: make([]Rule, len(p.Rules))}
	copy(cp.Rules, p.Rules)
	for i := range cp.Rules {
		cp.Rules[i].Conds = append([]RangeCond(nil), cp.Rules[i].Conds...)
	}
	return cp
}

// Program returns a copy of the loaded program (nil if none). Mutating
// the returned value never affects the running pipeline.
func (sw *Switch) Program() *Program {
	return cloneProgram(sw.state.Load().prog)
}

// Compiled reports whether the active program runs on the compiled DAG
// fast path (false: linear-scan reference, by knob or compile fallback).
func (sw *Switch) Compiled() bool {
	return sw.state.Load().dag != nil
}

// SetScanOnly forces (or releases) the linear-scan reference path,
// recompiling the currently loaded program accordingly — the knob the
// equivalence tests and a suspicious operator flip.
func (sw *Switch) SetScanOnly(scan bool) {
	sw.writeMu.Lock()
	defer sw.writeMu.Unlock()
	sw.scanOnly = scan
	cur := sw.state.Load()
	progStale := cur.prog != nil && (cur.dag == nil) != scan
	ensStale := cur.ens != nil && cur.ens.scan != scan
	if !progStale && !ensStale {
		return
	}
	var dag *compiledProgram
	if progStale && !scan {
		dag = compileDAG(cur.prog)
	}
	sw.mutate(func(next *pipelineState) {
		if progStale {
			next.dag = dag
		}
		if ensStale {
			next.ens = &ensembleState{ep: next.ens.ep, scan: scan}
		}
	})
}

// StateGen returns the state generation, bumped on every Load, install
// or remove. Batch consumers use it to detect mid-batch table changes.
func (sw *Switch) StateGen() uint64 { return sw.gen.Load() }

// SetFaultInjector points the switch's install path at a fault injector
// (nil restores always-healthy). Real switches lose rule installs — the
// control channel drops a message, the table manager is busy — and this is
// where road tests make that happen on demand.
func (sw *Switch) SetFaultInjector(inj faults.Injector) {
	sw.writeMu.Lock()
	defer sw.writeMu.Unlock()
	sw.faults = inj
}

// failInstall consults the injector for one install attempt. Callers hold
// writeMu.
func (sw *Switch) failInstall() error {
	if sw.faults == nil {
		return nil
	}
	if err := sw.faults.Fail(faults.OpInstall); err != nil {
		return fmt.Errorf("dataplane: install: %w", err)
	}
	return nil
}

// InstallFilter adds a runtime filter entry, honoring the exact-match
// table budget. Errors are typed: injected faults classify via
// faults.IsTransient/IsPermanent, table exhaustion is ErrTableFull
// (permanent — retrying cannot succeed until entries are removed).
func (sw *Switch) InstallFilter(key FilterKey, action ActionKind) error {
	sw.writeMu.Lock()
	defer sw.writeMu.Unlock()
	if err := sw.failInstall(); err != nil {
		obsInstallErr.Inc()
		return err
	}
	cur := sw.state.Load()
	exists := cur.table[key].isFilter
	if !exists && cur.nFilters >= sw.res.ExactEntries {
		obsInstallErr.Inc()
		return fmt.Errorf("%w (%d entries)", ErrTableFull, sw.res.ExactEntries)
	}
	sw.mutate(func(next *pipelineState) {
		e := next.table[key]
		e.act, e.isFilter = action, true
		next.table[key] = e
		if !exists {
			next.nFilters++
		}
	})
	obsInstallOK.Inc()
	return nil
}

// InstallRateLimit attaches a meter to a filter key: matching traffic is
// passed within rateBps bytes/second (+burst) and dropped beyond — the
// softer mitigation for victims that still need their protocol to work.
func (sw *Switch) InstallRateLimit(key FilterKey, rateBps, burst float64) error {
	tb, err := NewTokenBucket(rateBps, burst)
	if err != nil {
		return err
	}
	sw.writeMu.Lock()
	defer sw.writeMu.Unlock()
	if err := sw.failInstall(); err != nil {
		obsMeterErr.Inc()
		return err
	}
	cur := sw.state.Load()
	exists := cur.table[key].meter != nil
	if !exists && cur.nFilters+cur.nMeters >= sw.res.ExactEntries {
		obsMeterErr.Inc()
		return fmt.Errorf("%w (%d entries)", ErrTableFull, sw.res.ExactEntries)
	}
	sw.mutate(func(next *pipelineState) {
		e := next.table[key]
		e.meter = tb
		next.table[key] = e
		if !exists {
			next.nMeters++
		}
	})
	obsMeterOK.Inc()
	return nil
}

// RemoveFilter deletes a filter or meter entry, reporting whether it
// existed.
func (sw *Switch) RemoveFilter(key FilterKey) bool {
	sw.writeMu.Lock()
	defer sw.writeMu.Unlock()
	cur := sw.state.Load()
	e, ok := cur.table[key]
	if !ok {
		return false
	}
	sw.mutate(func(next *pipelineState) {
		delete(next.table, key)
		if e.isFilter {
			next.nFilters--
		}
		if e.meter != nil {
			next.nMeters--
		}
	})
	obsRemoves.Inc()
	return true
}

// FilterCount returns the number of installed filters and meters.
func (sw *Switch) FilterCount() int {
	st := sw.state.Load()
	return st.nFilters + st.nMeters
}

// Process runs one packet through the pipeline with no timestamp (meters
// see t=0); prefer ProcessAt when replaying timed traffic.
func (sw *Switch) Process(s *packet.Summary) Verdict { return sw.ProcessAt(0, s) }

// ProcessAt runs one packet summary through the pipeline at time ts:
// runtime filters first (mitigations beat classification), then meters,
// then the program rules, then the default action. Lock-free and
// allocation-free: one atomic state load plus atomic counter updates.
func (sw *Switch) ProcessAt(ts time.Duration, s *packet.Summary) Verdict {
	st := sw.state.Load()
	var fv FieldVector
	fv.FromSummary(s)
	v := st.eval(ts, s, &fv)
	sw.record(st, v)
	return v
}

// ProcessBatch runs a batch through the pipeline with no timestamps,
// returning newly allocated verdicts. The whole batch is served from one
// state snapshot, amortizing the per-packet dispatch.
func (sw *Switch) ProcessBatch(sums []packet.Summary) []Verdict {
	return sw.ProcessBatchAt(nil, sums, make([]Verdict, 0, len(sums)))
}

// ProcessBatchAt runs a batch at per-packet timestamps (ts may be nil for
// t=0), appending verdicts to out (pass out[:0] to reuse a buffer).
// Counters are recorded per packet; the state is loaded once for the
// whole batch, so a concurrent install becomes visible at the next batch.
func (sw *Switch) ProcessBatchAt(ts []time.Duration, sums []packet.Summary, out []Verdict) []Verdict {
	st := sw.state.Load()
	var fv FieldVector
	// Action tallies accumulate locally and flush as one atomic add per
	// counter per batch; only the per-rule/filter attribution stays
	// per-packet.
	var acts [4]uint64
	var filterHits uint64
	for i := range sums {
		var t time.Duration
		if ts != nil {
			t = ts[i]
		}
		fv.FromSummary(&sums[i])
		v := st.eval(t, &sums[i], &fv)
		a := v.Action
		if a > ActionPunt {
			a = ActionPermit
		}
		acts[a]++
		if v.FilterHit {
			filterHits++
		} else if v.RuleIndex >= 0 && v.RuleIndex < len(st.perRule) {
			atomic.AddUint64(&st.perRule[v.RuleIndex], 1)
		}
		out = append(out, v)
	}
	if acts[ActionPermit] != 0 {
		sw.ctr.permitted.Add(acts[ActionPermit])
	}
	if acts[ActionDrop] != 0 {
		sw.ctr.dropped.Add(acts[ActionDrop])
	}
	if acts[ActionAlert] != 0 {
		sw.ctr.alerted.Add(acts[ActionAlert])
	}
	if acts[ActionPunt] != 0 {
		sw.ctr.punted.Add(acts[ActionPunt])
	}
	if filterHits != 0 {
		sw.ctr.filterHits.Add(filterHits)
	}
	countBatch(st, len(sums))
	return out
}

// ClassifyBatch precomputes verdicts for a batch without recording
// counters or charging meters, filling out[i] per summary. It returns
// the state generation the verdicts were computed under and whether the
// precompute is valid — false when meters are installed, because then
// classification has side effects and callers must fall back to
// ProcessAt. The control loop uses this to batch the sense stage and
// commit verdicts one by one as it consumes them (re-evaluating from the
// first packet after a mid-batch install, detected via StateGen).
func (sw *Switch) ClassifyBatch(sums []*packet.Summary, out []Verdict) (uint64, bool) {
	st := sw.state.Load()
	gen := sw.gen.Load()
	if st.nMeters > 0 || sw.state.Load() != st {
		return gen, false
	}
	var fv FieldVector
	for i, s := range sums {
		fv.FromSummary(s)
		out[i] = st.eval(0, s, &fv)
	}
	countBatch(st, len(sums))
	return gen, true
}

// CommitVerdict records a verdict previously computed by ClassifyBatch
// into the switch counters. Callers must have checked StateGen still
// matches the ClassifyBatch generation.
func (sw *Switch) CommitVerdict(v Verdict) {
	sw.record(sw.state.Load(), v)
}

// record tallies one verdict: exactly one action counter plus the
// filter-hit or per-rule attribution. The processed total is not a
// separate counter — it is the sum of the four action counters, which
// makes the "every verdict counted exactly once" invariant structural.
func (sw *Switch) record(st *pipelineState, v Verdict) {
	switch v.Action {
	case ActionDrop:
		sw.ctr.dropped.Add(1)
	case ActionAlert:
		sw.ctr.alerted.Add(1)
	case ActionPunt:
		sw.ctr.punted.Add(1)
	default:
		sw.ctr.permitted.Add(1)
	}
	if v.FilterHit {
		sw.ctr.filterHits.Add(1)
	} else if v.RuleIndex >= 0 && v.RuleIndex < len(st.perRule) {
		atomic.AddUint64(&st.perRule[v.RuleIndex], 1)
	}
}

// SwitchStats is the switch's counter snapshot.
type SwitchStats struct {
	Processed  uint64
	Permitted  uint64
	Dropped    uint64
	Alerted    uint64
	Punted     uint64
	FilterHits uint64
	PerRule    []uint64
}

// Stats returns a snapshot of all counters. Every verdict is counted in
// exactly one of Permitted/Dropped/Alerted/Punted, so those always sum
// to Processed.
func (sw *Switch) Stats() SwitchStats {
	st := sw.state.Load()
	per := make([]uint64, len(st.perRule))
	for i := range st.perRule {
		per[i] = atomic.LoadUint64(&st.perRule[i])
	}
	s := SwitchStats{
		Permitted:  sw.ctr.permitted.Load(),
		Dropped:    sw.ctr.dropped.Load(),
		Alerted:    sw.ctr.alerted.Load(),
		Punted:     sw.ctr.punted.Load(),
		FilterHits: sw.ctr.filterHits.Load(),
		PerRule:    per,
	}
	s.Processed = s.Permitted + s.Dropped + s.Alerted + s.Punted
	return s
}

// ResetCounters zeroes all counters (not the tables).
func (sw *Switch) ResetCounters() {
	sw.writeMu.Lock()
	defer sw.writeMu.Unlock()
	sw.ctr.permitted.Store(0)
	sw.ctr.dropped.Store(0)
	sw.ctr.alerted.Store(0)
	sw.ctr.punted.Store(0)
	sw.ctr.filterHits.Store(0)
	st := sw.state.Load()
	for i := range st.perRule {
		atomic.StoreUint64(&st.perRule[i], 0)
	}
}
