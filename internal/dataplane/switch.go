package dataplane

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"campuslab/internal/faults"
	"campuslab/internal/packet"
)

// ErrTableFull reports a rule install rejected because the exact-match
// table budget is exhausted — a permanent condition until entries are
// removed; retrying without freeing space cannot succeed.
var ErrTableFull = errors.New("dataplane: filter table full")

// FieldVector is the per-packet header view the pipeline matches on.
type FieldVector struct {
	vals [NumFields]uint32
}

// Get returns the value of field f.
func (fv *FieldVector) Get(f Field) uint32 { return fv.vals[f] }

// Set assigns field f (tests and synthetic traffic).
func (fv *FieldVector) Set(f Field, v uint32) { fv.vals[f] = v }

// FromSummary fills the vector from a parsed packet summary — the switch
// "parser" stage.
func (fv *FieldVector) FromSummary(s *packet.Summary) {
	fv.vals[FieldWireLen] = clampU32(s.WireLen)
	fv.vals[FieldIsUDP] = b2u(s.HasUDP)
	fv.vals[FieldIsTCP] = b2u(s.HasTCP)
	fv.vals[FieldDstPort] = uint32(s.Tuple.DstPort)
	fv.vals[FieldSrcPort] = uint32(s.Tuple.SrcPort)
	fv.vals[FieldSynNoAck] = b2u(s.HasTCP && s.TCPFlags.Has(packet.TCPSyn) && !s.TCPFlags.Has(packet.TCPAck))
	fv.vals[FieldDNSResp] = b2u(s.IsDNS && s.DNSResponse)
	fv.vals[FieldDNSAny] = b2u(s.IsDNS && s.DNSQueryType == packet.DNSTypeANY)
	fv.vals[FieldDNSAnswers] = clampU32(s.DNSAnswerCnt)
	fv.vals[FieldTTL] = uint32(s.TTL)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func clampU32(v int) uint32 {
	if v < 0 {
		return 0
	}
	if v > 0xffff {
		return 0xffff
	}
	return uint32(v)
}

// Verdict is the pipeline's decision for one packet.
type Verdict struct {
	Action     ActionKind
	Class      int
	Confidence float64
	// RuleIndex is the matching classification rule, -1 for default or
	// filter-table hits.
	RuleIndex int
	// FilterHit reports the packet matched an installed runtime filter.
	FilterHit bool
}

// FilterKey is an exact-match runtime filter entry key: drop traffic to a
// victim, optionally narrowed by source and port.
type FilterKey struct {
	DstIP   netip.Addr
	SrcIP   netip.Addr        // zero value = wildcard
	DstPort uint16            // 0 = wildcard
	Proto   packet.IPProtocol // 0 = wildcard
}

// Switch is the software programmable switch: a loaded classification
// program plus a runtime exact-match filter table the control plane
// installs mitigations into. Safe for concurrent use.
type Switch struct {
	mu      sync.RWMutex
	prog    *Program
	res     Resources
	faults  faults.Injector // nil = healthy
	filters map[FilterKey]ActionKind
	meters  map[FilterKey]*TokenBucket

	// counters
	processed  uint64
	dropped    uint64
	alerted    uint64
	punted     uint64
	filterHits uint64
	perRule    []uint64
}

// NewSwitch creates a switch with the given resource budget.
func NewSwitch(res Resources) *Switch {
	return &Switch{
		res:     res,
		filters: make(map[FilterKey]ActionKind),
		meters:  make(map[FilterKey]*TokenBucket),
	}
}

// Load installs the classification program after a resource fit check.
func (sw *Switch) Load(prog *Program) error {
	if rep := sw.res.Fit(prog); !rep.Fits {
		return fmt.Errorf("dataplane: program %q does not fit: %s", prog.Name, rep.Reason)
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.prog = prog
	sw.perRule = make([]uint64, len(prog.Rules))
	return nil
}

// Program returns the loaded program (nil if none).
func (sw *Switch) Program() *Program {
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	return sw.prog
}

// SetFaultInjector points the switch's install path at a fault injector
// (nil restores always-healthy). Real switches lose rule installs — the
// control channel drops a message, the table manager is busy — and this is
// where road tests make that happen on demand.
func (sw *Switch) SetFaultInjector(inj faults.Injector) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.faults = inj
}

// failInstall consults the injector for one install attempt.
func (sw *Switch) failInstall() error {
	if sw.faults == nil {
		return nil
	}
	if err := sw.faults.Fail(faults.OpInstall); err != nil {
		return fmt.Errorf("dataplane: install: %w", err)
	}
	return nil
}

// InstallFilter adds a runtime filter entry, honoring the exact-match
// table budget. Errors are typed: injected faults classify via
// faults.IsTransient/IsPermanent, table exhaustion is ErrTableFull
// (permanent — retrying cannot succeed until entries are removed).
func (sw *Switch) InstallFilter(key FilterKey, action ActionKind) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if err := sw.failInstall(); err != nil {
		return err
	}
	if _, exists := sw.filters[key]; !exists && len(sw.filters) >= sw.res.ExactEntries {
		return fmt.Errorf("%w (%d entries)", ErrTableFull, sw.res.ExactEntries)
	}
	sw.filters[key] = action
	return nil
}

// InstallRateLimit attaches a meter to a filter key: matching traffic is
// passed within rateBps bytes/second (+burst) and dropped beyond — the
// softer mitigation for victims that still need their protocol to work.
func (sw *Switch) InstallRateLimit(key FilterKey, rateBps, burst float64) error {
	tb, err := NewTokenBucket(rateBps, burst)
	if err != nil {
		return err
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if err := sw.failInstall(); err != nil {
		return err
	}
	if _, exists := sw.meters[key]; !exists && len(sw.filters)+len(sw.meters) >= sw.res.ExactEntries {
		return fmt.Errorf("%w (%d entries)", ErrTableFull, sw.res.ExactEntries)
	}
	sw.meters[key] = tb
	return nil
}

// RemoveFilter deletes a filter or meter entry, reporting whether it
// existed.
func (sw *Switch) RemoveFilter(key FilterKey) bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	_, ok := sw.filters[key]
	_, mok := sw.meters[key]
	delete(sw.filters, key)
	delete(sw.meters, key)
	return ok || mok
}

// FilterCount returns the number of installed filters and meters.
func (sw *Switch) FilterCount() int {
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	return len(sw.filters) + len(sw.meters)
}

// Process runs one packet through the pipeline with no timestamp (meters
// see t=0); prefer ProcessAt when replaying timed traffic.
func (sw *Switch) Process(s *packet.Summary) Verdict { return sw.ProcessAt(0, s) }

// ProcessAt runs one packet summary through the pipeline at time ts:
// runtime filters first (mitigations beat classification), then meters,
// then the program rules, then the default action.
func (sw *Switch) ProcessAt(ts time.Duration, s *packet.Summary) Verdict {
	var fv FieldVector
	fv.FromSummary(s)
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.processed++

	// Exact-match filter lookups: most- to least-specific. Also probes
	// the source-only form so scan mitigations can block an offender.
	if len(sw.filters) > 0 || len(sw.meters) > 0 {
		keys := [5]FilterKey{
			{DstIP: s.Tuple.DstIP, SrcIP: s.Tuple.SrcIP, DstPort: s.Tuple.DstPort, Proto: s.Tuple.Proto},
			{DstIP: s.Tuple.DstIP, DstPort: s.Tuple.DstPort, Proto: s.Tuple.Proto},
			{DstIP: s.Tuple.DstIP, Proto: s.Tuple.Proto},
			{DstIP: s.Tuple.DstIP},
			{SrcIP: s.Tuple.SrcIP},
		}
		for _, k := range keys {
			if act, ok := sw.filters[k]; ok {
				sw.filterHits++
				sw.tally(act)
				return Verdict{Action: act, RuleIndex: -1, FilterHit: true}
			}
			if tb, ok := sw.meters[k]; ok {
				sw.filterHits++
				if tb.Conforms(ts, s.WireLen) {
					return Verdict{Action: ActionPermit, RuleIndex: -1, FilterHit: true}
				}
				sw.tally(ActionDrop)
				return Verdict{Action: ActionDrop, RuleIndex: -1, FilterHit: true}
			}
		}
	}

	if sw.prog != nil {
		for i := range sw.prog.Rules {
			r := &sw.prog.Rules[i]
			if r.Matches(&fv) {
				sw.perRule[i]++
				sw.tally(r.Action)
				return Verdict{
					Action: r.Action, Class: r.Class,
					Confidence: r.Confidence, RuleIndex: i,
				}
			}
		}
		sw.tally(sw.prog.Default)
		return Verdict{Action: sw.prog.Default, RuleIndex: -1}
	}
	return Verdict{Action: ActionPermit, RuleIndex: -1}
}

func (sw *Switch) tally(a ActionKind) {
	switch a {
	case ActionDrop:
		sw.dropped++
	case ActionAlert:
		sw.alerted++
	case ActionPunt:
		sw.punted++
	}
}

// SwitchStats is the switch's counter snapshot.
type SwitchStats struct {
	Processed  uint64
	Dropped    uint64
	Alerted    uint64
	Punted     uint64
	FilterHits uint64
	PerRule    []uint64
}

// Stats returns a snapshot of all counters.
func (sw *Switch) Stats() SwitchStats {
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	return SwitchStats{
		Processed:  sw.processed,
		Dropped:    sw.dropped,
		Alerted:    sw.alerted,
		Punted:     sw.punted,
		FilterHits: sw.filterHits,
		PerRule:    append([]uint64(nil), sw.perRule...),
	}
}

// ResetCounters zeroes all counters (not the tables).
func (sw *Switch) ResetCounters() {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.processed, sw.dropped, sw.alerted, sw.punted, sw.filterHits = 0, 0, 0, 0, 0
	clear(sw.perRule)
}
