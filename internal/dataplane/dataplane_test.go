package dataplane

import (
	"math"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"campuslab/internal/datastore"
	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/packet"
	"campuslab/internal/traffic"
	"campuslab/internal/xai"
)

func TestPrefixCount(t *testing.T) {
	cases := []struct {
		lo, hi uint32
		width  int
		want   int
	}{
		{0, 0, 16, 1},
		{0, 0xffff, 16, 1},  // full range = one wildcard
		{0, 0x7fff, 16, 1},  // aligned half
		{1, 0xfffe, 16, 30}, // classic worst-ish case: 2w-2
		{4, 7, 16, 1},
		{5, 6, 16, 2},
		{3, 3, 16, 1},
		{7, 2, 16, 0}, // empty
	}
	for _, c := range cases {
		if got := prefixCount(c.lo, c.hi, c.width); got != c.want {
			t.Errorf("prefixCount(%d,%d,w%d) = %d, want %d", c.lo, c.hi, c.width, got, c.want)
		}
	}
}

func TestPrefixCountProperty(t *testing.T) {
	// Property: expansion of [lo,hi] within 16-bit space is at most
	// 2*16-2 and at least 1 for non-empty ranges.
	fn := func(a, b uint16) bool {
		lo, hi := uint32(a), uint32(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		n := prefixCount(lo, hi, 16)
		return n >= 1 && n <= 30
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestRuleMatchAndCost(t *testing.T) {
	r := Rule{
		Conds: []RangeCond{
			{Field: FieldDstPort, Lo: 53, Hi: 53},
			{Field: FieldDNSResp, Lo: 1, Hi: 1},
		},
		Action: ActionDrop, Class: 1, Confidence: 0.97,
	}
	var fv FieldVector
	fv.Set(FieldDstPort, 53)
	fv.Set(FieldDNSResp, 1)
	if !r.Matches(&fv) {
		t.Error("should match")
	}
	fv.Set(FieldDNSResp, 0)
	if r.Matches(&fv) {
		t.Error("should not match")
	}
	if r.TCAMCost() != 1 {
		t.Errorf("cost = %d", r.TCAMCost())
	}
	if !strings.Contains(r.String(), "drop") {
		t.Errorf("String = %q", r.String())
	}
}

// trainedModels caches the expensive DNS-amp training artifacts: the
// black-box forest, the extracted tree, the labeled dataset, and the
// backing store. Everything is treated read-only by the tests that share
// it.
var trainedModels struct {
	once   sync.Once
	err    error
	forest *ml.Forest
	tree   *ml.Tree
	ds     *features.Dataset
	st     *datastore.Store
}

// trainPacketForest builds a store with DNS-amp traffic, trains a forest
// on per-packet features and extracts a compilable tree. The result is
// trained once and shared across tests and benchmarks; treat it as
// immutable.
func trainPacketForest(t testing.TB) (*ml.Forest, *ml.Tree, *features.Dataset, *datastore.Store) {
	t.Helper()
	m := &trainedModels
	m.once.Do(func() {
		plan := traffic.DefaultPlan(40)
		benign := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 60, Duration: 4 * time.Second, Seed: 81})
		amp := traffic.NewAttack(traffic.AttackConfig{
			Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(1),
			Start: 500 * time.Millisecond, Duration: 3 * time.Second, Rate: 800, Seed: 82,
		})
		st := datastore.New()
		g := traffic.NewMerge(benign, amp)
		var f traffic.Frame
		for g.Next(&f) {
			st.IngestFrame(&f)
		}
		ds := features.FromPackets(st, 1.0)
		bin := ds.BinaryRelabel(traffic.LabelDNSAmp)
		forest, err := ml.FitForest(bin, 2, ml.ForestConfig{Trees: 20, MaxDepth: 8, Seed: 83})
		if err != nil {
			m.err = err
			return
		}
		ex, err := xai.Extract(forest, bin, xai.ExtractConfig{MaxDepth: 4, Seed: 84})
		if err != nil {
			m.err = err
			return
		}
		m.forest, m.tree, m.ds, m.st = forest, ex.Tree, bin, st
	})
	if m.err != nil {
		t.Fatal(m.err)
	}
	return m.forest, m.tree, m.ds, m.st
}

// trainPacketTree is the extracted-tree view of trainPacketForest.
func trainPacketTree(t testing.TB) (*ml.Tree, *features.Dataset, *datastore.Store) {
	_, tree, ds, st := trainPacketForest(t)
	return tree, ds, st
}

func TestCompileAndClassify(t *testing.T) {
	tree, ds, _ := trainPacketTree(t)
	prog, err := Compile(tree, features.PacketSchema, CompileConfig{
		Name: "dns-amp", DropClasses: []int{1}, MinConfidence: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) == 0 {
		t.Fatal("no rules compiled")
	}
	// The compiled program must agree with the tree on the dataset
	// everywhere the program decides (permit default = class 0).
	sw := NewSwitch(DefaultResources())
	if err := sw.Load(prog); err != nil {
		t.Fatal(err)
	}
	agree, total := 0, 0
	for i, x := range ds.X {
		var fv FieldVector
		for j := range x {
			f, _ := FieldByName(features.PacketSchema[j])
			fv.Set(f, uint32(x[j]))
		}
		// Evaluate program manually (bypassing Summary parsing).
		cls := 0
		for r := range prog.Rules {
			if prog.Rules[r].Matches(&fv) {
				cls = prog.Rules[r].Class
				break
			}
		}
		want := tree.Predict(x)
		total++
		if cls == want {
			agree++
		}
		_ = i
	}
	if frac := float64(agree) / float64(total); frac < 0.99 {
		t.Errorf("program/tree agreement = %v, want ~1 (integer snapping only)", frac)
	}
}

func TestCompileRejectsUnknownSchema(t *testing.T) {
	d := &features.Dataset{
		Schema: []string{"not_a_field"},
		X:      [][]float64{{0}, {1}},
		Y:      []int{0, 1},
	}
	tree, err := ml.FitTree(d, 2, ml.TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(tree, d.Schema, CompileConfig{}); err == nil {
		t.Error("accepted uncompilable schema")
	}
}

func TestCompileMinConfidencePunts(t *testing.T) {
	// A noisy dataset yields impure leaves; with MinConfidence=1.01 every
	// rule must be a punt.
	d := &features.Dataset{Schema: []string{"wire_len"}}
	for i := 0; i < 100; i++ {
		d.X = append(d.X, []float64{float64(i % 10)})
		y := 0
		if i%10 > 4 {
			y = 1
		}
		if i%7 == 0 {
			y = 1 - y // noise
		}
		d.Y = append(d.Y, y)
	}
	tree, _ := ml.FitTree(d, 2, ml.TreeConfig{MaxDepth: 2})
	prog, err := Compile(tree, d.Schema, CompileConfig{DropClasses: []int{1}, MinConfidence: 1.01})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range prog.Rules {
		if r.Action != ActionPunt {
			t.Errorf("rule action = %v, want punt under impossible confidence bar", r.Action)
		}
	}
}

func TestSwitchEndToEndOnTraffic(t *testing.T) {
	tree, _, st := trainPacketTree(t)
	prog, err := Compile(tree, features.PacketSchema, CompileConfig{
		Name: "dns-amp", DropClasses: []int{1}, MinConfidence: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwitch(DefaultResources())
	if err := sw.Load(prog); err != nil {
		t.Fatal(err)
	}
	var attackDropped, attackTotal, benignDropped, benignTotal int
	labelOf := map[packet.FiveTuple]traffic.Label{}
	for _, fm := range st.Flows() {
		if fm.Labeled {
			labelOf[fm.Key] = fm.Label
		}
	}
	st.Scan(func(sp *datastore.StoredPacket) bool {
		if !sp.Summary.HasIP {
			return true
		}
		v := sw.Process(&sp.Summary)
		isAttack := labelOf[sp.Summary.Tuple.Canonical()] == traffic.LabelDNSAmp
		if isAttack {
			attackTotal++
			if v.Action == ActionDrop {
				attackDropped++
			}
		} else {
			benignTotal++
			if v.Action == ActionDrop {
				benignDropped++
			}
		}
		return true
	})
	if attackTotal == 0 {
		t.Fatal("no attack packets")
	}
	recall := float64(attackDropped) / float64(attackTotal)
	fpr := float64(benignDropped) / float64(benignTotal)
	if recall < 0.9 {
		t.Errorf("attack drop recall = %v", recall)
	}
	if fpr > 0.02 {
		t.Errorf("benign collateral = %v", fpr)
	}
	stats := sw.Stats()
	if stats.Processed != uint64(attackTotal+benignTotal) {
		t.Error("processed counter wrong")
	}
	if stats.Dropped == 0 {
		t.Error("dropped counter zero")
	}
}

func TestSwitchFilterTable(t *testing.T) {
	sw := NewSwitch(Resources{Stages: 12, TCAMEntries: 100, ExactEntries: 2})
	victim := netip.MustParseAddr("10.1.1.5")
	if err := sw.InstallFilter(FilterKey{DstIP: victim}, ActionDrop); err != nil {
		t.Fatal(err)
	}
	s := packet.Summary{HasIP: true, Tuple: packet.FiveTuple{
		Proto: packet.IPProtocolUDP, SrcIP: netip.MustParseAddr("203.0.113.1"),
		DstIP: victim, SrcPort: 53, DstPort: 9999,
	}}
	v := sw.Process(&s)
	if v.Action != ActionDrop || !v.FilterHit {
		t.Errorf("verdict = %+v", v)
	}
	// Other destinations unaffected.
	s.Tuple.DstIP = netip.MustParseAddr("10.1.1.6")
	if v := sw.Process(&s); v.Action != ActionPermit {
		t.Errorf("innocent traffic dropped: %+v", v)
	}
	// Capacity enforcement.
	if err := sw.InstallFilter(FilterKey{DstIP: netip.MustParseAddr("10.1.1.7")}, ActionDrop); err != nil {
		t.Fatal(err)
	}
	if err := sw.InstallFilter(FilterKey{DstIP: netip.MustParseAddr("10.1.1.8")}, ActionDrop); err == nil {
		t.Error("filter table over capacity accepted")
	}
	if !sw.RemoveFilter(FilterKey{DstIP: victim}) {
		t.Error("remove failed")
	}
	if sw.RemoveFilter(FilterKey{DstIP: victim}) {
		t.Error("double remove succeeded")
	}
	if sw.FilterCount() != 1 {
		t.Errorf("filter count = %d", sw.FilterCount())
	}
}

func TestSwitchSpecificFilterBeatsGeneral(t *testing.T) {
	sw := NewSwitch(DefaultResources())
	victim := netip.MustParseAddr("10.1.1.5")
	resolver := netip.MustParseAddr("203.0.113.9")
	// General permit-to-victim plus specific drop from one resolver.
	if err := sw.InstallFilter(FilterKey{DstIP: victim}, ActionAlert); err != nil {
		t.Fatal(err)
	}
	if err := sw.InstallFilter(FilterKey{DstIP: victim, SrcIP: resolver, DstPort: 7777, Proto: packet.IPProtocolUDP}, ActionDrop); err != nil {
		t.Fatal(err)
	}
	s := packet.Summary{HasIP: true, Tuple: packet.FiveTuple{
		Proto: packet.IPProtocolUDP, SrcIP: resolver, DstIP: victim, SrcPort: 53, DstPort: 7777,
	}}
	if v := sw.Process(&s); v.Action != ActionDrop {
		t.Errorf("specific filter not preferred: %+v", v)
	}
}

func TestLoadRejectsOversizedProgram(t *testing.T) {
	// Build a program whose TCAM expansion exceeds a tiny budget.
	prog := &Program{Name: "big", Default: ActionPermit}
	for i := 0; i < 50; i++ {
		prog.Rules = append(prog.Rules, Rule{
			Conds:  []RangeCond{{Field: FieldDstPort, Lo: 1, Hi: 0xfffe}}, // 30-entry expansion
			Action: ActionDrop, Class: 1,
		})
	}
	sw := NewSwitch(Resources{Stages: 12, TCAMEntries: 50, ExactEntries: 10})
	if err := sw.Load(prog); err == nil {
		t.Error("oversized program loaded")
	}
	rep := Resources{Stages: 12, TCAMEntries: 50}.Fit(prog)
	if rep.Fits || !strings.Contains(rep.Reason, "TCAM") {
		t.Errorf("fit report = %+v", rep)
	}
}

func TestStageBudget(t *testing.T) {
	var conds []RangeCond
	for f := Field(0); f < NumFields; f++ {
		conds = append(conds, RangeCond{Field: f, Lo: 0, Hi: 1})
	}
	prog := &Program{Rules: []Rule{{Conds: conds, Action: ActionDrop, Class: 1}}}
	rep := Resources{Stages: 3, TCAMEntries: 1 << 20}.Fit(prog)
	if rep.Fits || !strings.Contains(rep.Reason, "stages") {
		t.Errorf("fit report = %+v", rep)
	}
}

func TestMaxConcurrent(t *testing.T) {
	prog := &Program{Rules: []Rule{{
		Conds:  []RangeCond{{Field: FieldDstPort, Lo: 53, Hi: 53}, {Field: FieldDNSResp, Lo: 1, Hi: 1}},
		Action: ActionDrop, Class: 1,
	}}}
	res := Resources{Stages: 12, TCAMEntries: 3072}
	n := res.MaxConcurrent(prog)
	if n != 3072/prog.TCAMCost() {
		t.Errorf("MaxConcurrent = %d (cost %d)", n, prog.TCAMCost())
	}
	if n < 50 || n > 1000 {
		t.Errorf("MaxConcurrent = %d; a 2-condition task should fit tens-to-hundreds of times, not %d", n, n)
	}
	// A program with expensive range rules fits far fewer times.
	exp := &Program{Rules: []Rule{{
		Conds:  []RangeCond{{Field: FieldWireLen, Lo: 1, Hi: 0xfffe}, {Field: FieldSrcPort, Lo: 1, Hi: 0xfffe}},
		Action: ActionDrop, Class: 1,
	}}}
	if m := res.MaxConcurrent(exp); m >= n {
		t.Errorf("expensive program fits %d >= cheap %d", m, n)
	}
}

func TestFieldByName(t *testing.T) {
	for i, name := range features.PacketSchema {
		f, err := FieldByName(name)
		if err != nil {
			t.Fatalf("PacketSchema[%d]=%q not matchable: %v", i, name, err)
		}
		if int(f) != i {
			t.Errorf("field order mismatch: %q = %d, schema index %d", name, f, i)
		}
	}
	if _, err := FieldByName("nope"); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestFieldMaxValue(t *testing.T) {
	if FieldDstPort.MaxValue() != 0xffff || FieldIsUDP.MaxValue() != 1 || FieldTTL.MaxValue() != 0xff {
		t.Error("field widths wrong")
	}
}

func TestVerdictDefaults(t *testing.T) {
	sw := NewSwitch(DefaultResources())
	s := packet.Summary{HasIP: true}
	if v := sw.Process(&s); v.Action != ActionPermit || v.RuleIndex != -1 {
		t.Errorf("no-program verdict = %+v", v)
	}
}

func TestTCAMCostMonotonicInRuleCount(t *testing.T) {
	mk := func(n int) *Program {
		p := &Program{}
		for i := 0; i < n; i++ {
			p.Rules = append(p.Rules, Rule{Conds: []RangeCond{{Field: FieldDstPort, Lo: uint32(i), Hi: uint32(i)}}})
		}
		return p
	}
	if mk(10).TCAMCost() >= mk(20).TCAMCost() {
		t.Error("cost not monotone in rules")
	}
	if math.MaxInt32 != (Resources{Stages: 1, TCAMEntries: 5}).MaxConcurrent(&Program{}) {
		t.Error("empty program should fit unbounded")
	}
}

func BenchmarkSwitchProcess(b *testing.B) {
	tree, _, st := trainPacketTree(b)
	prog, err := Compile(tree, features.PacketSchema, CompileConfig{DropClasses: []int{1}})
	if err != nil {
		b.Fatal(err)
	}
	sw := NewSwitch(DefaultResources())
	if err := sw.Load(prog); err != nil {
		b.Fatal(err)
	}
	var summaries []packet.Summary
	st.Scan(func(sp *datastore.StoredPacket) bool {
		summaries = append(summaries, sp.Summary)
		return len(summaries) < 4096
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Process(&summaries[i%len(summaries)])
	}
}

func BenchmarkCompile(b *testing.B) {
	tree, _, _ := trainPacketTree(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(tree, features.PacketSchema, CompileConfig{DropClasses: []int{1}}); err != nil {
			b.Fatal(err)
		}
	}
}
