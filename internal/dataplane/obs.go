package dataplane

import (
	"sync"
	"sync/atomic"

	"campuslab/internal/obs"
)

// padUint64 is an atomic counter padded to a cache line so the five
// verdict counters in a block never false-share under concurrent
// pipelines.
type padUint64 struct {
	atomic.Uint64
	_ [56]byte
}

// switchCounters is a switch's verdict counter block. The per-packet
// path keeps writing plain atomics exactly as before — the block is the
// same five counters the Switch struct used to embed, moved behind a
// pointer so the process-wide registry can aggregate them at snapshot
// time without adding a single write to the fast path. Blocks are small
// (five words) and pinned for the life of the process; the switches
// that own them can still be collected.
type switchCounters struct {
	permitted  padUint64
	dropped    padUint64
	alerted    padUint64
	punted     padUint64
	filterHits padUint64
}

var (
	swBlocksMu sync.Mutex
	swBlocks   []*switchCounters
)

// newSwitchCounters allocates a block and pins it for aggregation.
func newSwitchCounters() *switchCounters {
	c := &switchCounters{}
	swBlocksMu.Lock()
	swBlocks = append(swBlocks, c)
	swBlocksMu.Unlock()
	return c
}

// Writer-path metrics: these sites run under writeMu (installs, loads,
// publishes) or once per batch, so plain registry counters cost nothing
// that matters. Handles are resolved once at package init.
var (
	obsStatePublishes = obs.Default.Counter("campuslab_dataplane_state_publishes_total")
	obsCompilesDag    = obs.Default.Counter("campuslab_dataplane_program_loads_total", "path", "dag")
	obsCompilesScan   = obs.Default.Counter("campuslab_dataplane_program_loads_total", "path", "scan")
	obsInstallOK      = obs.Default.Counter("campuslab_dataplane_installs_total", "kind", "filter", "result", "ok")
	obsInstallErr     = obs.Default.Counter("campuslab_dataplane_installs_total", "kind", "filter", "result", "error")
	obsMeterOK        = obs.Default.Counter("campuslab_dataplane_installs_total", "kind", "meter", "result", "ok")
	obsMeterErr       = obs.Default.Counter("campuslab_dataplane_installs_total", "kind", "meter", "result", "error")
	obsRemoves        = obs.Default.Counter("campuslab_dataplane_removes_total")
	obsBatchesDag     = obs.Default.Counter("campuslab_dataplane_batches_total", "path", "dag")
	obsBatchesScan    = obs.Default.Counter("campuslab_dataplane_batches_total", "path", "scan")
	obsBatchesEns     = obs.Default.Counter("campuslab_dataplane_batches_total", "path", "ensemble")
	obsBatchSize      = obs.Default.Histogram("campuslab_dataplane_batch_size",
		[]float64{16, 64, 256, 1024})
)

// Ensemble load accounting: one counter per degradation-ladder rung, plus
// gauges reporting what the installed ensemble consumed of its hardware
// budget — the operator-visible face of the compile-time admission.
var (
	obsEnsLoadExact    = obs.Default.Counter("campuslab_dataplane_ensemble_loads_total", "mode", "exact")
	obsEnsLoadPruned   = obs.Default.Counter("campuslab_dataplane_ensemble_loads_total", "mode", "pruned")
	obsEnsLoadFallback = obs.Default.Counter("campuslab_dataplane_ensemble_loads_total", "mode", "fallback")
	obsEnsTrees        = obs.Default.Gauge("campuslab_dataplane_ensemble_trees")
	obsEnsNodes        = obs.Default.Gauge("campuslab_dataplane_ensemble_nodes")
	obsEnsEntries      = obs.Default.Gauge("campuslab_dataplane_ensemble_table_entries")
	obsEnsStages       = obs.Default.Gauge("campuslab_dataplane_ensemble_stages")
)

// countEnsembleLoad records one LoadEnsemble: the ladder rung taken and
// the resources the published program consumes.
func countEnsembleLoad(u EnsembleUsage) {
	switch u.Mode {
	case EnsemblePruned:
		obsEnsLoadPruned.Inc()
	case EnsembleFallback:
		obsEnsLoadFallback.Inc()
	default:
		obsEnsLoadExact.Inc()
	}
	obsEnsTrees.Set(float64(u.Trees))
	obsEnsNodes.Set(float64(u.Nodes))
	obsEnsEntries.Set(float64(u.TableEntries))
	obsEnsStages.Set(float64(u.Stages))
}

// countBatch tallies one classified batch on the path it executed.
func countBatch(st *pipelineState, n int) {
	switch {
	case st.ens != nil:
		obsBatchesEns.Inc()
	case st.dag != nil:
		obsBatchesDag.Inc()
	default:
		obsBatchesScan.Inc()
	}
	obsBatchSize.Observe(float64(n))
}

func init() {
	obs.Default.RegisterCollector(collectSwitches)
}

// collectSwitches sums every switch's verdict block into the registry's
// dataplane series. Sums are accumulated first so each series is
// emitted once and exists (zero-valued) before any traffic flows.
func collectSwitches(e *obs.Emitter) {
	swBlocksMu.Lock()
	var permit, drop, alert, punt, hits uint64
	n := uint64(len(swBlocks))
	for _, c := range swBlocks {
		permit += c.permitted.Load()
		drop += c.dropped.Load()
		alert += c.alerted.Load()
		punt += c.punted.Load()
		hits += c.filterHits.Load()
	}
	swBlocksMu.Unlock()
	e.Counter("campuslab_dataplane_switches_total", n)
	e.Counter("campuslab_dataplane_verdicts_total", permit, "action", ActionPermit.String())
	e.Counter("campuslab_dataplane_verdicts_total", drop, "action", ActionDrop.String())
	e.Counter("campuslab_dataplane_verdicts_total", alert, "action", ActionAlert.String())
	e.Counter("campuslab_dataplane_verdicts_total", punt, "action", ActionPunt.String())
	e.Counter("campuslab_dataplane_filter_hits_total", hits)
}
