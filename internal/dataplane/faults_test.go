package dataplane

import (
	"errors"
	"testing"

	"campuslab/internal/faults"
)

func TestInstallFilterInjectedTransientFault(t *testing.T) {
	sw := NewSwitch(DefaultResources())
	sw.SetFaultInjector(faults.NewSchedule().FailCalls(faults.OpInstall, 1, 2, faults.KindTransient))
	key := FilterKey{DstPort: 53}
	for i := 0; i < 2; i++ {
		err := sw.InstallFilter(key, ActionDrop)
		if !faults.IsTransient(err) {
			t.Fatalf("attempt %d: want transient fault, got %v", i+1, err)
		}
		if sw.FilterCount() != 0 {
			t.Fatal("failed install mutated the table")
		}
	}
	// Third attempt is past the scripted window: succeeds.
	if err := sw.InstallFilter(key, ActionDrop); err != nil {
		t.Fatalf("post-window install: %v", err)
	}
	if sw.FilterCount() != 1 {
		t.Fatalf("filter count = %d", sw.FilterCount())
	}
}

func TestInstallRateLimitInjectedFault(t *testing.T) {
	sw := NewSwitch(DefaultResources())
	sw.SetFaultInjector(faults.NewSchedule().FailCalls(faults.OpInstall, 1, 1, faults.KindPermanent))
	err := sw.InstallRateLimit(FilterKey{DstPort: 53}, 1e6, 4e6)
	if !faults.IsPermanent(err) {
		t.Fatalf("want permanent fault, got %v", err)
	}
	if err := sw.InstallRateLimit(FilterKey{DstPort: 53}, 1e6, 4e6); err != nil {
		t.Fatalf("second install: %v", err)
	}
}

func TestTableFullIsTypedAndPermanent(t *testing.T) {
	sw := NewSwitch(Resources{Stages: 4, TCAMEntries: 64, ExactEntries: 1})
	if err := sw.InstallFilter(FilterKey{DstPort: 1}, ActionDrop); err != nil {
		t.Fatal(err)
	}
	err := sw.InstallFilter(FilterKey{DstPort: 2}, ActionDrop)
	if !errors.Is(err, ErrTableFull) {
		t.Fatalf("want ErrTableFull, got %v", err)
	}
	if faults.IsTransient(err) {
		t.Error("table-full must not classify as transient")
	}
	// Overwriting an existing key still works at capacity.
	if err := sw.InstallFilter(FilterKey{DstPort: 1}, ActionAlert); err != nil {
		t.Errorf("overwrite at capacity: %v", err)
	}
}

func TestNilInjectorCostsNothing(t *testing.T) {
	sw := NewSwitch(DefaultResources())
	// No SetFaultInjector call: the healthy path must behave exactly as
	// before the fault layer existed.
	for i := 0; i < 100; i++ {
		if err := sw.InstallFilter(FilterKey{DstPort: uint16(i + 1)}, ActionDrop); err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
	}
	if sw.FilterCount() != 100 {
		t.Fatalf("count = %d", sw.FilterCount())
	}
}
