package dataplane

import (
	"net/netip"
	"testing"
	"time"

	"campuslab/internal/packet"
)

func TestTokenBucketSteadyStateUnderRate(t *testing.T) {
	// 1 MB/s limit, 1000B packets every ms = exactly 1 MB/s: all conform.
	tb, err := NewTokenBucket(1e6, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if !tb.Conforms(time.Duration(i)*time.Millisecond, 1000) {
			t.Fatalf("packet %d marked at exactly the rate", i)
		}
	}
	c, e := tb.Stats()
	if c != 1000 || e != 0 {
		t.Errorf("stats = %d/%d", c, e)
	}
}

func TestTokenBucketMarksExcess(t *testing.T) {
	// 100 KB/s limit, offered 1 MB/s: ~90% should exceed after the
	// initial burst drains.
	tb, _ := NewTokenBucket(100_000, 10_000)
	var conf, exc int
	for i := 0; i < 2000; i++ {
		if tb.Conforms(time.Duration(i)*time.Millisecond, 1000) {
			conf++
		} else {
			exc++
		}
	}
	frac := float64(conf) / 2000
	if frac < 0.08 || frac > 0.15 {
		t.Errorf("conforming fraction = %v, want ~0.1 (rate/offered)", frac)
	}
}

func TestTokenBucketBurstAbsorbed(t *testing.T) {
	// After idling, a burst up to the bucket depth passes at once.
	tb, _ := NewTokenBucket(1e6, 50_000)
	if !tb.Conforms(0, 1000) {
		t.Fatal("first packet marked")
	}
	// Idle 1s refills fully; then a 50KB burst in one instant conforms.
	passed := 0
	for i := 0; i < 60; i++ {
		if tb.Conforms(time.Second, 1000) {
			passed++
		}
	}
	if passed < 48 || passed > 52 {
		t.Errorf("burst passed %d packets, want ~50", passed)
	}
}

func TestTokenBucketValidation(t *testing.T) {
	if _, err := NewTokenBucket(0, 100); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewTokenBucket(100, 0); err == nil {
		t.Error("zero burst accepted")
	}
}

func TestSwitchRateLimitFilter(t *testing.T) {
	sw := NewSwitch(DefaultResources())
	victim := netip.MustParseAddr("10.1.1.5")
	// 10 KB/s toward the victim.
	if err := sw.InstallRateLimit(FilterKey{DstIP: victim, Proto: packet.IPProtocolUDP}, 10_000, 5_000); err != nil {
		t.Fatal(err)
	}
	s := packet.Summary{HasIP: true, WireLen: 1000, Tuple: packet.FiveTuple{
		Proto: packet.IPProtocolUDP, SrcIP: netip.MustParseAddr("203.0.113.1"),
		DstIP: victim, SrcPort: 53, DstPort: 9999,
	}}
	// Offer 100 KB/s for 2 virtual seconds.
	var dropped, permitted int
	for i := 0; i < 200; i++ {
		v := sw.ProcessAt(time.Duration(i)*10*time.Millisecond, &s)
		if !v.FilterHit {
			t.Fatal("meter not consulted")
		}
		if v.Action == ActionDrop {
			dropped++
		} else {
			permitted++
		}
	}
	if permitted < 15 || permitted > 35 {
		t.Errorf("permitted %d of 200 at 10%% profile (plus burst)", permitted)
	}
	// TCP to the victim is not metered (proto-scoped key).
	s.Tuple.Proto = packet.IPProtocolTCP
	if v := sw.ProcessAt(3*time.Second, &s); v.FilterHit {
		t.Error("TCP hit a UDP-scoped meter")
	}
	// RemoveFilter clears meters too.
	if !sw.RemoveFilter(FilterKey{DstIP: victim, Proto: packet.IPProtocolUDP}) {
		t.Error("meter removal failed")
	}
	s.Tuple.Proto = packet.IPProtocolUDP
	if v := sw.ProcessAt(4*time.Second, &s); v.FilterHit {
		t.Error("meter survived removal")
	}
}

func TestSwitchSourceOnlyFilter(t *testing.T) {
	sw := NewSwitch(DefaultResources())
	scanner := netip.MustParseAddr("185.220.101.7")
	if err := sw.InstallFilter(FilterKey{SrcIP: scanner}, ActionDrop); err != nil {
		t.Fatal(err)
	}
	s := packet.Summary{HasIP: true, Tuple: packet.FiveTuple{
		Proto: packet.IPProtocolTCP, SrcIP: scanner,
		DstIP: netip.MustParseAddr("10.3.1.4"), SrcPort: 55555, DstPort: 22,
	}}
	if v := sw.Process(&s); v.Action != ActionDrop || !v.FilterHit {
		t.Errorf("source filter missed: %+v", v)
	}
	// Different sources unaffected.
	s.Tuple.SrcIP = netip.MustParseAddr("185.220.101.8")
	if v := sw.Process(&s); v.Action == ActionDrop {
		t.Error("innocent source dropped")
	}
}

func TestRateLimitCapacityShared(t *testing.T) {
	sw := NewSwitch(Resources{Stages: 12, TCAMEntries: 100, ExactEntries: 2})
	a := netip.MustParseAddr("10.0.0.1")
	b := netip.MustParseAddr("10.0.0.2")
	c := netip.MustParseAddr("10.0.0.3")
	if err := sw.InstallFilter(FilterKey{DstIP: a}, ActionDrop); err != nil {
		t.Fatal(err)
	}
	if err := sw.InstallRateLimit(FilterKey{DstIP: b}, 1000, 1000); err != nil {
		t.Fatal(err)
	}
	if err := sw.InstallRateLimit(FilterKey{DstIP: c}, 1000, 1000); err == nil {
		t.Error("meters not counted against the exact-entry budget")
	}
}
