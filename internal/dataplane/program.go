// Package dataplane implements Figure 2's "target-specific program" and
// "switch": a P4-like match-action pipeline with a Tofino-flavoured
// resource model (stages, SRAM/TCAM entry budgets, range-to-ternary
// expansion), a compiler from extracted decision trees to classification
// rules, and a software switch that executes the program per packet.
//
// The resource model is the point, not an inconvenience: §2's observation
// that data planes "are currently not capable of supporting this
// capability at scale" falls out of the fit check (experiment E4).
package dataplane

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Field identifies a header field the pipeline can match on. Values are
// normalized to uint32.
type Field uint8

// Matchable per-packet fields (aligned with features.PacketSchema).
const (
	FieldWireLen Field = iota
	FieldIsUDP
	FieldIsTCP
	FieldDstPort
	FieldSrcPort
	FieldSynNoAck
	FieldDNSResp
	FieldDNSAny
	FieldDNSAnswers
	FieldTTL
	NumFields
)

var fieldNames = [NumFields]string{
	"wire_len", "is_udp", "is_tcp", "dst_port", "src_port",
	"tcp_syn_noack", "dns_resp", "dns_any", "dns_answers", "ttl",
}

// fieldWidths in bits, for TCAM expansion accounting.
var fieldWidths = [NumFields]int{16, 1, 1, 16, 16, 1, 1, 1, 8, 8}

// String returns the field name.
func (f Field) String() string {
	if int(f) < len(fieldNames) {
		return fieldNames[f]
	}
	return fmt.Sprintf("field-%d", uint8(f))
}

// FieldByName resolves a features schema column to a Field.
func FieldByName(name string) (Field, error) {
	for i, n := range fieldNames {
		if n == name {
			return Field(i), nil
		}
	}
	return 0, fmt.Errorf("dataplane: no matchable field %q", name)
}

// MaxValue returns the largest representable value for the field.
func (f Field) MaxValue() uint32 {
	if int(f) >= len(fieldWidths) {
		return 0
	}
	w := fieldWidths[f]
	if w >= 32 {
		return math.MaxUint32
	}
	return 1<<w - 1
}

// RangeCond is a closed interval condition on one field.
type RangeCond struct {
	Field Field
	Lo    uint32
	Hi    uint32 // inclusive
}

// Matches reports whether v satisfies the condition.
func (c RangeCond) Matches(v uint32) bool { return v >= c.Lo && v <= c.Hi }

// prefixCount returns how many ternary (prefix) entries the range [lo,hi]
// expands into — the classic TCAM range-expansion cost.
func prefixCount(lo, hi uint32, width int) int {
	if lo > hi {
		return 0
	}
	count := 0
	for lo <= hi {
		// Largest aligned block starting at lo that fits within hi.
		maxBlock := uint32(1) << bits.TrailingZeros32(lo|1<<width)
		for lo+maxBlock-1 > hi {
			maxBlock >>= 1
		}
		count++
		next := lo + maxBlock
		if next < lo { // overflow: block reached the top
			break
		}
		lo = next
	}
	return count
}

// ActionKind is what a matching rule does.
type ActionKind uint8

// Rule actions.
const (
	// ActionPermit forwards the packet unchanged.
	ActionPermit ActionKind = iota
	// ActionDrop discards the packet.
	ActionDrop
	// ActionAlert forwards but raises an event to the control plane.
	ActionAlert
	// ActionPunt sends the packet to the control plane for a decision
	// (slow path).
	ActionPunt
)

// String returns the action name.
func (a ActionKind) String() string {
	switch a {
	case ActionPermit:
		return "permit"
	case ActionDrop:
		return "drop"
	case ActionAlert:
		return "alert"
	case ActionPunt:
		return "punt"
	default:
		return fmt.Sprintf("action-%d", uint8(a))
	}
}

// Rule is one classification entry: a conjunction of range conditions with
// an action, a predicted class, and the model confidence behind it.
type Rule struct {
	Conds      []RangeCond
	Action     ActionKind
	Class      int
	Confidence float64
}

// Matches evaluates the rule against a field vector.
func (r *Rule) Matches(fv *FieldVector) bool {
	for _, c := range r.Conds {
		if !c.Matches(fv.Get(c.Field)) {
			return false
		}
	}
	return true
}

// TCAMCost is the rule's naive single-table ternary expansion: the product
// of per-field prefix counts. This is what the rule would cost if matched
// as one TCAM entry set; Program.TCAMCost uses the cheaper decomposed
// layout real tree-to-switch compilers emit.
func (r *Rule) TCAMCost() int {
	cost := 1
	for _, c := range r.Conds {
		cost *= prefixCount(c.Lo, c.Hi, fieldWidths[c.Field])
	}
	return cost
}

// String renders the rule.
func (r *Rule) String() string {
	conds := make([]string, len(r.Conds))
	for i, c := range r.Conds {
		conds[i] = fmt.Sprintf("%v in [%d,%d]", c.Field, c.Lo, c.Hi)
	}
	cond := strings.Join(conds, " && ")
	if cond == "" {
		cond = "true"
	}
	return fmt.Sprintf("if %s -> %v class=%d conf=%.2f", cond, r.Action, r.Class, r.Confidence)
}

// Program is a compiled classification program: an ordered rule list
// (first match wins; tree-compiled rules are disjoint so order is
// cosmetic) plus a default action.
type Program struct {
	Name    string
	Rules   []Rule
	Default ActionKind
}

// TCAMCost models the decomposed layout real tree-to-switch compilers
// (IIsy/Mousika-style) emit: one range-encoding table per matched field
// (each interval between threshold cut points expands to prefixes —
// additive across fields, not multiplicative), plus one exact-match
// verdict entry per rule over the encoded range IDs.
func (p *Program) TCAMCost() int {
	cuts := map[Field]map[uint32]bool{}
	for i := range p.Rules {
		for _, c := range p.Rules[i].Conds {
			m := cuts[c.Field]
			if m == nil {
				m = make(map[uint32]bool)
				cuts[c.Field] = m
			}
			m[c.Lo] = true
			if c.Hi < c.Field.MaxValue() {
				m[c.Hi+1] = true
			}
		}
	}
	total := len(p.Rules) // verdict table: one exact entry per rule
	for f, m := range cuts {
		points := make([]uint32, 0, len(m)+1)
		points = append(points, 0)
		for v := range m {
			if v != 0 {
				points = append(points, v)
			}
		}
		sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
		w := fieldWidths[f]
		for i, lo := range points {
			hi := f.MaxValue()
			if i+1 < len(points) {
				hi = points[i+1] - 1
			}
			total += prefixCount(lo, hi, w)
		}
	}
	return total
}

// MatchedFields returns the distinct fields the program matches on.
func (p *Program) MatchedFields() int {
	seen := map[Field]bool{}
	for i := range p.Rules {
		for _, c := range p.Rules[i].Conds {
			seen[c.Field] = true
		}
	}
	return len(seen)
}

// StagesNeeded models the decomposed layout's pipeline depth: field
// range-encoding tables pack four to a stage (they are independent), plus
// one verdict stage.
func (p *Program) StagesNeeded() int {
	f := p.MatchedFields()
	if f == 0 && len(p.Rules) == 0 {
		return 0
	}
	return (f+3)/4 + 1
}

// MaxCondsPerRule returns the widest conjunction in the program.
func (p *Program) MaxCondsPerRule() int {
	m := 0
	for i := range p.Rules {
		if len(p.Rules[i].Conds) > m {
			m = len(p.Rules[i].Conds)
		}
	}
	return m
}

// Resources is the switch resource budget, Tofino-flavoured defaults.
type Resources struct {
	// Stages is the number of match-action stages (Tofino: 12).
	Stages int
	// TCAMEntries is the total ternary entry budget across stages.
	TCAMEntries int
	// ExactEntries is the exact-match (SRAM) entry budget, consumed by
	// the runtime filter table (installed drop rules).
	ExactEntries int
}

// DefaultResources returns a Tofino-like budget.
func DefaultResources() Resources {
	return Resources{Stages: 12, TCAMEntries: 3072, ExactEntries: 65536}
}

// FitReport details whether a set of programs fits the budget.
type FitReport struct {
	Programs     int
	TCAMUsed     int
	TCAMBudget   int
	StagesNeeded int
	StagesBudget int
	Fits         bool
	Reason       string
}

// Fit checks whether the programs fit the resource budget together (the
// E4 question: how many concurrent automation tasks can one switch run?).
func (res Resources) Fit(programs ...*Program) FitReport {
	rep := FitReport{
		Programs:     len(programs),
		TCAMBudget:   res.TCAMEntries,
		StagesBudget: res.Stages,
		Fits:         true,
	}
	for _, p := range programs {
		rep.TCAMUsed += p.TCAMCost()
		// Programs share stages via table packing, so the deepest
		// program's pipeline bounds the stage requirement.
		if s := p.StagesNeeded(); s > rep.StagesNeeded {
			rep.StagesNeeded = s
		}
	}
	if rep.TCAMUsed > rep.TCAMBudget {
		rep.Fits = false
		rep.Reason = fmt.Sprintf("TCAM: need %d entries, budget %d", rep.TCAMUsed, rep.TCAMBudget)
	} else if rep.StagesNeeded > rep.StagesBudget {
		rep.Fits = false
		rep.Reason = fmt.Sprintf("stages: need %d, budget %d", rep.StagesNeeded, rep.StagesBudget)
	}
	return rep
}

// MaxConcurrent returns how many copies of prog fit the budget — the E4
// scaling curve in one call.
func (res Resources) MaxConcurrent(prog *Program) int {
	if prog.StagesNeeded() > res.Stages {
		return 0
	}
	cost := prog.TCAMCost()
	if cost == 0 {
		return math.MaxInt32
	}
	return res.TCAMEntries / cost
}
