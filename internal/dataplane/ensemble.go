package dataplane

// Whole-ensemble compilation (Homunculus-style): instead of deploying only
// the extracted single tree, lower every member tree of an ml.Forest or
// ml.Boost into its own integer-domain decision DAG and combine their leaf
// verdicts in a vote stage — mean leaf probabilities + argmax for forests,
// alpha-weighted leaf-class votes for boosting — reproducing the control
// plane model's arithmetic operation for operation so verdict classes and
// confidences are byte-identical to ml.Forest.Predict / ml.Boost.Predict
// on the matchable schema.
//
// The compiler works under an explicit Tofino-ish ResourceBudget (pipeline
// stages, vote-table entries, DAG nodes, parallel tree pipelines). Over
// budget it degrades rather than fails: first every tree is depth-capped
// (pruned internal nodes become leaves voting their fitted class
// histogram), the cap shrinking until the ensemble fits; if no cap fits,
// it falls back to compiling the single extracted tree alone. What was
// used — and which rung of the ladder produced it — is reported in
// EnsembleUsage and exported as obs gauges at load time.
//
// Each compiled program carries two evaluators over the same vote tables:
// the integer fast path (thresholds floored onto the uint32 field domain,
// structurally-identical subtrees and identical leaves deduplicated per
// tree) and a float reference walk of the original thresholds, selected by
// the same scan-path knob that covers the rule DAG (CAMPUSLAB_SCAN_PATH).

import (
	"fmt"
	"math"

	"campuslab/internal/ml"
)

// MaxEnsembleClasses bounds the vote stage's per-class accumulator, which
// lives on the eval stack so the hot path stays allocation-free.
const MaxEnsembleClasses = 8

// ResourceBudget is the hardware envelope an ensemble must compile into —
// the Tofino-ish constraints the paper assumes for in-network ML. A field
// <= 0 means unconstrained.
type ResourceBudget struct {
	// Stages bounds pipeline depth: the deepest per-tree DAG plus one
	// vote stage.
	Stages int
	// TableEntries bounds the vote tables: one entry per distinct leaf
	// verdict across all trees.
	TableEntries int
	// Nodes bounds total decision-DAG nodes across all trees.
	Nodes int
	// Trees bounds the parallel per-tree pipelines.
	Trees int
}

// DefaultEnsembleBudget returns a Tofino-flavoured envelope: 12 stages,
// 4096 vote entries, 8192 DAG nodes, 32 parallel tree pipelines.
func DefaultEnsembleBudget() ResourceBudget {
	return ResourceBudget{Stages: 12, TableEntries: 4096, Nodes: 8192, Trees: 32}
}

// normalized maps unconstrained (<=0) fields to MaxInt so fit checks are
// plain comparisons.
func (b ResourceBudget) normalized() ResourceBudget {
	if b.Stages <= 0 {
		b.Stages = math.MaxInt
	}
	if b.TableEntries <= 0 {
		b.TableEntries = math.MaxInt
	}
	if b.Nodes <= 0 {
		b.Nodes = math.MaxInt
	}
	if b.Trees <= 0 {
		b.Trees = math.MaxInt
	}
	return b
}

// admits reports whether usage fits the (normalized) budget.
func (b ResourceBudget) admits(u EnsembleUsage) bool {
	return u.Trees <= b.Trees && u.Nodes <= b.Nodes &&
		u.TableEntries <= b.TableEntries && u.Stages <= b.Stages
}

// EnsembleMode is which rung of the degradation ladder produced the
// compiled program.
type EnsembleMode uint8

// Degradation ladder, best to worst.
const (
	// EnsembleExact: the full ensemble fit; verdicts are byte-identical
	// to the control-plane model.
	EnsembleExact EnsembleMode = iota
	// EnsemblePruned: every tree was depth-capped to fit the budget.
	EnsemblePruned
	// EnsembleFallback: the ensemble could not fit at any depth cap; the
	// single fallback tree was compiled instead.
	EnsembleFallback
)

// String returns the mode name.
func (m EnsembleMode) String() string {
	switch m {
	case EnsembleExact:
		return "exact"
	case EnsemblePruned:
		return "pruned"
	case EnsembleFallback:
		return "fallback"
	default:
		return fmt.Sprintf("mode-%d", uint8(m))
	}
}

// EnsembleUsage reports what a compiled ensemble consumed of its budget.
type EnsembleUsage struct {
	Mode EnsembleMode
	// PrunedDepth is the applied depth cap (0 = uncapped).
	PrunedDepth int
	// Trees/Nodes/TableEntries/Stages are the consumed resources.
	Trees, Nodes, TableEntries, Stages int
	// TreeNodes is the per-tree compiled DAG node count.
	TreeNodes []int
	// Budget is the normalized envelope the compile was checked against.
	Budget ResourceBudget
}

// clone deep-copies the usage so callers never see live internals.
func (u EnsembleUsage) clone() EnsembleUsage {
	u.TreeNodes = append([]int(nil), u.TreeNodes...)
	return u
}

// EnsembleConfig controls ensemble-to-pipeline compilation. The action
// mapping mirrors CompileConfig: class 0 permits, DropClasses drop, other
// classes alert, and verdicts below MinConfidence punt to the control
// plane instead of acting inline.
type EnsembleConfig struct {
	// Name labels the program.
	Name string
	// DropClasses lists model classes compiled to ActionDrop.
	DropClasses []int
	// MinConfidence converts low-confidence attack verdicts to ActionPunt.
	MinConfidence float64
	// Budget is the hardware envelope (zero value = DefaultEnsembleBudget).
	Budget ResourceBudget
	// Fallback is the extracted single tree compiled when the ensemble
	// cannot fit at any depth cap. Nil falls back to the ensemble's first
	// member tree.
	Fallback *ml.Tree
}

// ensKind selects the vote combiner.
type ensKind uint8

const (
	ensForest ensKind = iota // mean leaf probabilities, argmax
	ensBoost                 // alpha-weighted leaf-class votes, argmax
)

// ensNode is one compiled integer-domain split: val <= cut goes left.
// Child targets >= 0 are node indices; < 0 encode ^leafRow.
type ensNode struct {
	field       Field
	cut         uint32
	left, right int32
}

// refNode is the float reference twin: the original threshold on the
// original schema column, same ^leafRow leaf encoding into the same vote
// tables.
type refNode struct {
	feature     int32
	thr         float64
	left, right int32
}

// EnsembleProgram is a compiled ensemble pipeline: per-tree DAGs over an
// immutable shared arena plus the vote tables. Values are immutable after
// compilation; the switch publishes them RCU-style like rule programs.
type EnsembleProgram struct {
	Name    string
	kind    ensKind
	classes int

	roots []int32 // per-tree compiled entry: node index or ^leafRow
	nodes []ensNode

	refRoots []int32
	refNodes []refNode
	fields   []Field // schema column -> field, for the reference walk

	// Vote tables. Forest rows are classes-wide probability vectors in
	// leafProba; boost rows are predicted classes in leafClass with
	// per-tree alpha weights.
	leafProba []float64
	leafClass []int32
	alphas    []float64
	alphaSum  float64

	dropClass []bool
	minConf   float64
	usage     EnsembleUsage
}

// Usage returns a copy of the compiled program's resource report.
func (ep *EnsembleProgram) Usage() EnsembleUsage { return ep.usage.clone() }

// NumClasses returns the vote stage's class count.
func (ep *EnsembleProgram) NumClasses() int { return ep.classes }

// CompileForestEnsemble lowers a bagged forest into per-tree DAGs plus a
// mean-probability vote stage. Verdict classes and confidences are
// byte-identical to f.Predict/f.Proba on the matchable schema whenever the
// budget admits the exact ensemble; over budget it degrades (prune, then
// fall back to cfg.Fallback) instead of failing.
func CompileForestEnsemble(f *ml.Forest, schema []string, cfg EnsembleConfig) (*EnsembleProgram, error) {
	trees := make([]*ml.Tree, f.NumTrees())
	for t := range trees {
		trees[t] = f.Tree(t)
	}
	return compileEnsemble(ensForest, trees, nil, f.NumClasses(), schema, cfg)
}

// CompileBoostEnsemble lowers an AdaBoost ensemble into per-tree DAGs plus
// an alpha-weighted vote stage, byte-identical to b.Predict/b.Proba under
// the same budget contract as CompileForestEnsemble.
func CompileBoostEnsemble(b *ml.Boost, schema []string, cfg EnsembleConfig) (*EnsembleProgram, error) {
	trees := make([]*ml.Tree, b.NumTrees())
	alphas := make([]float64, b.NumTrees())
	for t := range trees {
		trees[t], alphas[t] = b.Tree(t), b.Alpha(t)
	}
	return compileEnsemble(ensBoost, trees, alphas, b.NumClasses(), schema, cfg)
}

// compileEnsemble runs the degradation ladder: exact, then depth caps
// descending from one below the deepest tree, then the single fallback
// tree (itself capped if necessary).
func compileEnsemble(kind ensKind, trees []*ml.Tree, alphas []float64, classes int, schema []string, cfg EnsembleConfig) (*EnsembleProgram, error) {
	if classes < 2 || classes > MaxEnsembleClasses {
		return nil, fmt.Errorf("dataplane: ensemble with %d classes outside [2,%d]", classes, MaxEnsembleClasses)
	}
	if len(trees) == 0 {
		return nil, fmt.Errorf("dataplane: empty ensemble")
	}
	fields := make([]Field, len(schema))
	for i, name := range schema {
		f, err := FieldByName(name)
		if err != nil {
			return nil, fmt.Errorf("dataplane: schema column %d: %w", i, err)
		}
		fields[i] = f
	}
	budget := cfg.Budget
	if budget == (ResourceBudget{}) {
		budget = DefaultEnsembleBudget()
	}
	budget = budget.normalized()

	exported := make([][]ml.ExportedNode, len(trees))
	maxDepth := 0
	for t, tr := range trees {
		exported[t] = tr.Export()
		if d := tr.Depth(); d > maxDepth {
			maxDepth = d
		}
	}

	build := func(exp [][]ml.ExportedNode, aw []float64, cap int, mode EnsembleMode) (*EnsembleProgram, error) {
		ep, err := lowerEnsemble(kind, exp, aw, classes, fields, cfg, cap)
		if err != nil {
			return nil, err
		}
		ep.usage.Mode = mode
		ep.usage.PrunedDepth = cap
		ep.usage.Budget = budget
		return ep, nil
	}

	if len(trees) <= budget.Trees {
		// Rung 1: exact, then descending depth caps.
		for cap := 0; ; cap++ {
			d := 0 // 0 = uncapped
			if cap > 0 {
				d = maxDepth - cap
				if d < 1 {
					break
				}
			}
			mode := EnsembleExact
			if cap > 0 {
				mode = EnsemblePruned
			}
			ep, err := build(exported, alphas, d, mode)
			if err != nil {
				return nil, err
			}
			if budget.admits(ep.usage) {
				return ep, nil
			}
		}
	}

	// Rung 2: the single fallback tree, compiled as a one-tree mean-vote
	// ensemble (for one tree that is exactly Tree.Predict), capped if even
	// it is too deep or too wide.
	fb := cfg.Fallback
	if fb == nil {
		fb = trees[0]
	}
	fbExp := [][]ml.ExportedNode{fb.Export()}
	for cap := 0; ; cap++ {
		d := 0
		if cap > 0 {
			d = fb.Depth() - cap
			if d < 1 {
				return nil, fmt.Errorf("dataplane: budget %+v cannot hold even a depth-1 tree", cfg.Budget)
			}
		}
		ep, err := lowerEnsemble(ensForest, fbExp, nil, classes, fields, cfg, d)
		if err != nil {
			return nil, err
		}
		ep.usage.Mode = EnsembleFallback
		ep.usage.PrunedDepth = d
		ep.usage.Budget = budget
		if budget.admits(ep.usage) {
			return ep, nil
		}
	}
}

// treeLowering carries one tree's compilation state: per-tree memo tables
// (each tree is its own physical pipeline, so sharing across trees would
// not save hardware) and the depth bookkeeping for the stage model.
type treeLowering struct {
	ep       *EnsembleProgram
	exp      []ml.ExportedNode
	cap      int // depth cap; 0 = none
	nodeMemo map[ensNode]int32
	leafMemo map[string]int32
	depth    int // deepest internal-node level reached (1-based)
}

// lowerEnsemble compiles every exported tree into the shared arenas.
func lowerEnsemble(kind ensKind, exported [][]ml.ExportedNode, alphas []float64, classes int, fields []Field, cfg EnsembleConfig, cap int) (*EnsembleProgram, error) {
	drop := make([]bool, classes)
	for _, c := range cfg.DropClasses {
		if c >= 0 && c < classes {
			drop[c] = true
		}
	}
	ep := &EnsembleProgram{
		Name:      cfg.Name,
		kind:      kind,
		classes:   classes,
		fields:    fields,
		dropClass: drop,
		minConf:   cfg.MinConfidence,
	}
	if kind == ensBoost {
		ep.alphas = append([]float64(nil), alphas...)
		// Same summation order as Boost.Proba accumulates total.
		for _, a := range ep.alphas {
			ep.alphaSum += a
		}
	}
	ep.usage.Trees = len(exported)
	ep.usage.TreeNodes = make([]int, len(exported))
	maxDepth := 0
	for t, exp := range exported {
		lw := &treeLowering{
			ep: ep, exp: exp, cap: cap,
			nodeMemo: make(map[ensNode]int32),
			leafMemo: make(map[string]int32),
		}
		nodesBefore := len(ep.nodes)
		ci, ri, err := lw.lower(0, 0)
		if err != nil {
			return nil, fmt.Errorf("dataplane: tree %d: %w", t, err)
		}
		ep.roots = append(ep.roots, ci)
		ep.refRoots = append(ep.refRoots, ri)
		ep.usage.TreeNodes[t] = len(ep.nodes) - nodesBefore
		if lw.depth > maxDepth {
			maxDepth = lw.depth
		}
	}
	ep.usage.Nodes = len(ep.nodes)
	if ep.kind == ensBoost {
		ep.usage.TableEntries = len(ep.leafClass)
	} else {
		ep.usage.TableEntries = len(ep.leafProba) / classes
	}
	ep.usage.Stages = maxDepth + 1 // per-tree match levels + the vote stage
	return ep, nil
}

// lower compiles the subtree at exported index i, returning the compiled
// and reference entries (node index or ^leafRow). depth is the level of
// node i (root = 0).
func (lw *treeLowering) lower(i, depth int) (int32, int32, error) {
	ep := lw.ep
	n := &lw.exp[i]
	if n.Feature < 0 || (lw.cap > 0 && depth >= lw.cap) {
		row, err := lw.leafRow(n)
		if err != nil {
			return 0, 0, err
		}
		return ^row, ^row, nil
	}
	if n.Feature >= len(ep.fields) {
		return 0, 0, fmt.Errorf("split on feature %d outside schema (%d columns)", n.Feature, len(ep.fields))
	}
	li, lr, err := lw.lower(n.Left, depth+1)
	if err != nil {
		return 0, 0, err
	}
	ri, rr, err := lw.lower(n.Right, depth+1)
	if err != nil {
		return 0, 0, err
	}
	if depth+1 > lw.depth {
		lw.depth = depth + 1
	}
	refIdx := int32(len(ep.refNodes))
	ep.refNodes = append(ep.refNodes, refNode{
		feature: int32(n.Feature), thr: n.Threshold, left: lr, right: rr,
	})

	// Integerize the threshold onto the uint32 field domain: for integer
	// v, v <= thr iff v <= floor(thr). Thresholds outside the domain make
	// the split constant and the node disappears from the fast path.
	var ci int32
	switch {
	case n.Threshold < 0:
		ci = ri // no uint32 is <= a negative threshold
	case n.Threshold >= math.MaxUint32:
		ci = li // every uint32 satisfies it
	case li == ri:
		ci = li // both branches agree: the test is dead
	default:
		node := ensNode{
			field: ep.fields[n.Feature],
			cut:   uint32(math.Floor(n.Threshold)),
			left:  li, right: ri,
		}
		if idx, ok := lw.nodeMemo[node]; ok {
			ci = idx
		} else {
			ci = int32(len(ep.nodes))
			ep.nodes = append(ep.nodes, node)
			lw.nodeMemo[node] = ci
		}
	}
	return ci, refIdx, nil
}

// leafRow interns the vote-table row for a (possibly pruned-internal) node:
// the exact probability vector Tree.Proba computes for forests, the exact
// argmax class Tree.Predict computes for boosting. Identical rows within a
// tree share one table entry.
func (lw *treeLowering) leafRow(n *ml.ExportedNode) (int32, error) {
	ep := lw.ep
	if len(n.Counts) != ep.classes {
		return 0, fmt.Errorf("leaf histogram has %d classes, ensemble has %d", len(n.Counts), ep.classes)
	}
	if ep.kind == ensBoost {
		// Tree.Predict's argmax: first strictly-greater count wins.
		best, bestC := 0, math.Inf(-1)
		for c, v := range n.Counts {
			if v > bestC {
				best, bestC = c, v
			}
		}
		key := string(rune(best))
		if row, ok := lw.leafMemo[key]; ok {
			return row, nil
		}
		row := int32(len(ep.leafClass))
		ep.leafClass = append(ep.leafClass, int32(best))
		lw.leafMemo[key] = row
		return row, nil
	}
	// Forest leaf: Tree.Proba's counts/total division, precomputed once.
	proba := make([]float64, ep.classes)
	if n.Total > 0 {
		for c, v := range n.Counts {
			proba[c] = v / n.Total
		}
	}
	var key []byte
	for _, p := range proba {
		bits := math.Float64bits(p)
		key = append(key, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
			byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
	}
	if row, ok := lw.leafMemo[string(key)]; ok {
		return row, nil
	}
	row := int32(len(ep.leafProba) / ep.classes)
	ep.leafProba = append(ep.leafProba, proba...)
	lw.leafMemo[string(key)] = row
	return row, nil
}

// evalCompiled is the ensemble fast path: walk every per-tree integer DAG,
// combine in the vote stage, map the winning class to an action. It never
// allocates; the accumulator lives on the stack.
func (ep *EnsembleProgram) evalCompiled(fv *FieldVector) Verdict {
	var acc [MaxEnsembleClasses]float64
	if ep.kind == ensBoost {
		for i, root := range ep.roots {
			t := root
			for t >= 0 {
				n := &ep.nodes[t]
				if fv.vals[n.field] <= n.cut {
					t = n.left
				} else {
					t = n.right
				}
			}
			acc[ep.leafClass[^t]] += ep.alphas[i]
		}
		return ep.vote(&acc, ep.alphaSum)
	}
	for _, root := range ep.roots {
		t := root
		for t >= 0 {
			n := &ep.nodes[t]
			if fv.vals[n.field] <= n.cut {
				t = n.left
			} else {
				t = n.right
			}
		}
		row := int(^t) * ep.classes
		for c := 0; c < ep.classes; c++ {
			acc[c] += ep.leafProba[row+c]
		}
	}
	return ep.vote(&acc, float64(len(ep.roots)))
}

// evalRef is the reference twin: the float walk of the original (possibly
// depth-capped) trees feeding the same vote tables — what the compiled
// path is property-tested against, reachable via the scan-path knob.
func (ep *EnsembleProgram) evalRef(fv *FieldVector) Verdict {
	var acc [MaxEnsembleClasses]float64
	if ep.kind == ensBoost {
		for i, root := range ep.refRoots {
			t := root
			for t >= 0 {
				n := &ep.refNodes[t]
				if float64(fv.vals[ep.fields[n.feature]]) <= n.thr {
					t = n.left
				} else {
					t = n.right
				}
			}
			acc[ep.leafClass[^t]] += ep.alphas[i]
		}
		return ep.vote(&acc, ep.alphaSum)
	}
	for _, root := range ep.refRoots {
		t := root
		for t >= 0 {
			n := &ep.refNodes[t]
			if float64(fv.vals[ep.fields[n.feature]]) <= n.thr {
				t = n.left
			} else {
				t = n.right
			}
		}
		row := int(^t) * ep.classes
		for c := 0; c < ep.classes; c++ {
			acc[c] += ep.leafProba[row+c]
		}
	}
	return ep.vote(&acc, float64(len(ep.refRoots)))
}

// vote normalizes the accumulated scores and maps the argmax class to a
// verdict. The argmax replicates ml's "first strictly greater wins", and
// the per-class division happens before the comparison exactly as
// Forest.Proba/Boost.Proba divide before Predict's scan — confidences are
// the same float64s the control-plane model reports.
func (ep *EnsembleProgram) vote(acc *[MaxEnsembleClasses]float64, norm float64) Verdict {
	best, bestV := 0, math.Inf(-1)
	for c := 0; c < ep.classes; c++ {
		v := acc[c] / norm
		if v > bestV {
			best, bestV = c, v
		}
	}
	if best == 0 {
		// Benign is the pipeline default, as with compiled rule programs.
		return Verdict{Action: ActionPermit, RuleIndex: -1, Confidence: bestV}
	}
	action := ActionAlert
	if ep.dropClass[best] {
		action = ActionDrop
	}
	if bestV < ep.minConf {
		action = ActionPunt
	}
	return Verdict{Action: action, Class: best, Confidence: bestV, RuleIndex: -1}
}

// ensembleState is the published form inside pipelineState: the immutable
// program plus which evaluator the scan knob selected.
type ensembleState struct {
	ep   *EnsembleProgram
	scan bool
}

// eval dispatches one field vector to the selected evaluator.
func (es *ensembleState) eval(fv *FieldVector) Verdict {
	if es.scan {
		return es.ep.evalRef(fv)
	}
	return es.ep.evalCompiled(fv)
}
