package dataplane

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"

	"campuslab/internal/features"
	"campuslab/internal/packet"
)

// --- generators -----------------------------------------------------------

// randDisjointProgram builds a rule list by recursive domain partitioning —
// the shape a distilled decision tree compiles to: disjoint conjunctions of
// per-field intervals, with gaps falling through to the default action.
func randDisjointProgram(rng *rand.Rand, maxRules int) *Program {
	p := &Program{Name: "rand-disjoint", Default: ActionKind(rng.Intn(2))}
	var root cellBounds
	for f := Field(0); f < NumFields; f++ {
		root.hi[f] = f.MaxValue()
	}
	var build func(c cellBounds, depth int)
	build = func(c cellBounds, depth int) {
		if len(p.Rules) >= maxRules {
			return
		}
		if depth == 0 || rng.Intn(4) == 0 {
			if rng.Intn(4) == 0 {
				return // gap: the default decides this cell
			}
			var conds []RangeCond
			for f := Field(0); f < NumFields; f++ {
				if c.lo[f] != 0 || c.hi[f] != f.MaxValue() {
					conds = append(conds, RangeCond{Field: f, Lo: c.lo[f], Hi: c.hi[f]})
				}
			}
			if len(conds) == 0 {
				return // a condless rule would shadow the whole space
			}
			p.Rules = append(p.Rules, Rule{
				Conds: conds, Action: ActionKind(rng.Intn(4)),
				Class: rng.Intn(3), Confidence: float64(rng.Intn(100)) / 100,
			})
			return
		}
		f := Field(rng.Intn(int(NumFields)))
		if c.lo[f] >= c.hi[f] {
			build(c, depth-1)
			return
		}
		cut := c.lo[f] + 1 + uint32(rng.Int63n(int64(c.hi[f]-c.lo[f])))
		left, right := c, c
		left.hi[f] = cut - 1
		right.lo[f] = cut
		build(left, depth-1)
		build(right, depth-1)
	}
	build(root, 6)
	return p
}

// randOverlappingProgram builds rules with arbitrary (overlapping) interval
// conjunctions. The DAG builder claims exactness under first-match-wins for
// these too.
func randOverlappingProgram(rng *rand.Rand) *Program {
	p := &Program{Name: "rand-overlap", Default: ActionKind(rng.Intn(2))}
	nRules := 1 + rng.Intn(6)
	for i := 0; i < nRules; i++ {
		var conds []RangeCond
		nConds := 1 + rng.Intn(2)
		for j := 0; j < nConds; j++ {
			f := Field(rng.Intn(int(NumFields)))
			max := int64(f.MaxValue())
			lo := uint32(rng.Int63n(max + 1))
			hi := lo + uint32(rng.Int63n(max-int64(lo)+1))
			conds = append(conds, RangeCond{Field: f, Lo: lo, Hi: hi})
		}
		p.Rules = append(p.Rules, Rule{
			Conds: conds, Action: ActionKind(rng.Intn(4)),
			Class: rng.Intn(3), Confidence: float64(rng.Intn(100)) / 100,
		})
	}
	return p
}

// randVector draws field values mostly inside the field widths, sometimes
// far outside them (hand-built vectors are not width-clamped and the DAG
// must agree with the scan reference there too).
func randVector(rng *rand.Rand) FieldVector {
	var fv FieldVector
	for f := Field(0); f < NumFields; f++ {
		if rng.Intn(6) == 0 {
			fv.Set(f, rng.Uint32())
		} else {
			fv.Set(f, uint32(rng.Int63n(int64(f.MaxValue())+1)))
		}
	}
	return fv
}

// scanVerdict is the independent linear-scan reference the DAG is checked
// against.
func scanVerdict(p *Program, fv *FieldVector) Verdict {
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Matches(fv) {
			return Verdict{Action: r.Action, Class: r.Class, Confidence: r.Confidence, RuleIndex: i}
		}
	}
	return Verdict{Action: p.Default, RuleIndex: -1}
}

func testAddrPool() []netip.Addr {
	return []netip.Addr{
		netip.MustParseAddr("10.0.0.1"),
		netip.MustParseAddr("10.0.0.2"),
		netip.MustParseAddr("10.0.1.7"),
		netip.MustParseAddr("192.0.2.9"),
		netip.MustParseAddr("198.51.100.3"),
	}
}

func randTestSummary(rng *rand.Rand, pool []netip.Addr) packet.Summary {
	var s packet.Summary
	s.Tuple.SrcIP = pool[rng.Intn(len(pool))]
	s.Tuple.DstIP = pool[rng.Intn(len(pool))]
	s.Tuple.SrcPort = uint16(rng.Intn(1 << 16))
	s.Tuple.DstPort = uint16(rng.Intn(1 << 16))
	switch rng.Intn(3) {
	case 0:
		s.Tuple.Proto = packet.IPProtocolTCP
		s.HasTCP = true
		if rng.Intn(2) == 0 {
			s.TCPFlags = packet.TCPSyn
		}
	case 1:
		s.Tuple.Proto = packet.IPProtocolUDP
		s.HasUDP = true
		if rng.Intn(3) == 0 {
			s.IsDNS = true
			s.DNSResponse = rng.Intn(2) == 0
			s.DNSAnswerCnt = rng.Intn(30)
		}
	}
	s.WireLen = 60 + rng.Intn(1500)
	s.TTL = uint8(rng.Intn(256))
	return s
}

// randFilterKey draws a key in one of the five probe shapes so installed
// entries are actually reachable by the verdict path.
func randFilterKey(rng *rand.Rand, pool []netip.Addr) FilterKey {
	var k FilterKey
	switch rng.Intn(5) {
	case 0: // full tuple
		k = FilterKey{DstIP: pool[rng.Intn(len(pool))], SrcIP: pool[rng.Intn(len(pool))],
			DstPort: uint16(1 + rng.Intn(1024)), Proto: packet.IPProtocolUDP}
	case 1: // dst+port+proto
		k = FilterKey{DstIP: pool[rng.Intn(len(pool))], DstPort: uint16(1 + rng.Intn(1024)), Proto: packet.IPProtocolUDP}
	case 2: // dst+proto
		k = FilterKey{DstIP: pool[rng.Intn(len(pool))], Proto: packet.IPProtocolTCP}
	case 3: // dst only
		k = FilterKey{DstIP: pool[rng.Intn(len(pool))]}
	default: // src only
		k = FilterKey{SrcIP: pool[rng.Intn(len(pool))]}
	}
	return k
}

// --- equivalence properties -----------------------------------------------

func TestDAGScanEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 150; trial++ {
		var p *Program
		if trial%3 == 2 {
			p = randOverlappingProgram(rng)
		} else {
			p = randDisjointProgram(rng, 1+rng.Intn(24))
		}
		dag := compileDAG(p)
		if dag == nil {
			t.Fatalf("trial %d: compile fell back (%d rules)", trial, len(p.Rules))
		}
		for i := 0; i < 400; i++ {
			fv := randVector(rng)
			got, want := dag.eval(&fv), scanVerdict(p, &fv)
			if got != want {
				t.Fatalf("trial %d (%s, %d rules): dag=%+v scan=%+v fv=%+v",
					trial, p.Name, len(p.Rules), got, want, fv.vals)
			}
		}
	}
}

func TestDAGScanEquivalenceDistilledTree(t *testing.T) {
	tree, _, _ := trainPacketTree(t)
	prog, err := Compile(tree, features.PacketSchema, CompileConfig{
		DropClasses: []int{1}, MinConfidence: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwitch(DefaultResources())
	if err := sw.Load(prog); err != nil {
		t.Fatal(err)
	}
	if !sw.Compiled() {
		t.Fatal("distilled program did not compile")
	}
	dag := sw.state.Load().dag
	rng := rand.New(rand.NewSource(402))
	for i := 0; i < 5000; i++ {
		fv := randVector(rng)
		if got, want := dag.eval(&fv), scanVerdict(prog, &fv); got != want {
			t.Fatalf("dag=%+v scan=%+v fv=%+v", got, want, fv.vals)
		}
	}
}

// TestSwitchPipelineEquivalence runs the same randomized program, filter
// and meter installs, and packet sequence through a compiled switch and a
// scan-only twin, demanding identical verdicts and counters end to end.
func TestSwitchPipelineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	pool := testAddrPool()
	for trial := 0; trial < 25; trial++ {
		prog := randDisjointProgram(rng, 12)
		swDag := NewSwitch(DefaultResources())
		swScan := NewSwitch(DefaultResources())
		swScan.SetScanOnly(true)
		if err := swDag.Load(prog); err != nil {
			t.Fatal(err)
		}
		if err := swScan.Load(prog); err != nil {
			t.Fatal(err)
		}
		if swDag.Compiled() == swScan.Compiled() {
			t.Fatal("twins must run different rule paths")
		}
		for i := 0; i < 6; i++ {
			k := randFilterKey(rng, pool)
			if rng.Intn(2) == 0 {
				act := ActionDrop
				if rng.Intn(3) == 0 {
					act = ActionAlert
				}
				if err := swDag.InstallFilter(k, act); err != nil {
					t.Fatal(err)
				}
				if err := swScan.InstallFilter(k, act); err != nil {
					t.Fatal(err)
				}
			} else {
				rate, burst := float64(1000+rng.Intn(20000)), float64(500+rng.Intn(2000))
				if err := swDag.InstallRateLimit(k, rate, burst); err != nil {
					t.Fatal(err)
				}
				if err := swScan.InstallRateLimit(k, rate, burst); err != nil {
					t.Fatal(err)
				}
			}
		}
		ts := time.Duration(0)
		for i := 0; i < 800; i++ {
			ts += time.Duration(rng.Intn(2_000_000))
			s := randTestSummary(rng, pool)
			vd, vs := swDag.ProcessAt(ts, &s), swScan.ProcessAt(ts, &s)
			if vd != vs {
				t.Fatalf("trial %d pkt %d: dag=%+v scan=%+v", trial, i, vd, vs)
			}
		}
		sd, ss := swDag.Stats(), swScan.Stats()
		if sd.Processed != ss.Processed || sd.Permitted != ss.Permitted ||
			sd.Dropped != ss.Dropped || sd.Alerted != ss.Alerted ||
			sd.Punted != ss.Punted || sd.FilterHits != ss.FilterHits {
			t.Fatalf("trial %d: stats diverged: dag=%+v scan=%+v", trial, sd, ss)
		}
		for i := range sd.PerRule {
			if sd.PerRule[i] != ss.PerRule[i] {
				t.Fatalf("trial %d: perRule[%d] %d != %d", trial, i, sd.PerRule[i], ss.PerRule[i])
			}
		}
	}
}

// --- counter accounting ---------------------------------------------------

// TestSwitchCounterAccounting checks every verdict lands in exactly one
// action counter and exactly one attribution bucket.
func TestSwitchCounterAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	pool := testAddrPool()
	sw := NewSwitch(DefaultResources())
	if err := sw.Load(randDisjointProgram(rng, 10)); err != nil {
		t.Fatal(err)
	}
	if err := sw.InstallFilter(FilterKey{DstIP: pool[0]}, ActionDrop); err != nil {
		t.Fatal(err)
	}
	if err := sw.InstallRateLimit(FilterKey{DstIP: pool[1], Proto: packet.IPProtocolUDP}, 2000, 800); err != nil {
		t.Fatal(err)
	}

	var byAction [4]uint64
	var filterHits uint64
	perRule := map[int]uint64{}
	ts := time.Duration(0)
	const n = 3000
	for i := 0; i < n; i++ {
		ts += time.Duration(rng.Intn(1_500_000))
		s := randTestSummary(rng, pool)
		v := sw.ProcessAt(ts, &s)
		byAction[v.Action]++
		if v.FilterHit {
			filterHits++
		} else if v.RuleIndex >= 0 {
			perRule[v.RuleIndex]++
		}
	}
	st := sw.Stats()
	if st.Processed != n {
		t.Fatalf("processed %d != %d", st.Processed, n)
	}
	if got := st.Permitted + st.Dropped + st.Alerted + st.Punted; got != st.Processed {
		t.Fatalf("action counters sum %d != processed %d (%+v)", got, st.Processed, st)
	}
	if st.Permitted != byAction[ActionPermit] || st.Dropped != byAction[ActionDrop] ||
		st.Alerted != byAction[ActionAlert] || st.Punted != byAction[ActionPunt] {
		t.Fatalf("per-action counts diverge from verdicts: stats=%+v verdicts=%v", st, byAction)
	}
	if st.FilterHits != filterHits {
		t.Fatalf("filterHits %d != %d", st.FilterHits, filterHits)
	}
	var ruleSum uint64
	for i, c := range st.PerRule {
		ruleSum += c
		if c != perRule[i] {
			t.Fatalf("perRule[%d] = %d, verdicts saw %d", i, c, perRule[i])
		}
	}
	if ruleSum+filterHits+byAction[ActionPermit] < st.Processed-st.Permitted {
		t.Fatal("attribution lost verdicts")
	}

	sw.ResetCounters()
	st = sw.Stats()
	if st.Processed != 0 || st.Permitted != 0 || st.FilterHits != 0 {
		t.Fatalf("reset left counters: %+v", st)
	}
	for i, c := range st.PerRule {
		if c != 0 {
			t.Fatalf("reset left perRule[%d]=%d", i, c)
		}
	}
}

// --- batch path -----------------------------------------------------------

func TestProcessBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	pool := testAddrPool()
	prog := randDisjointProgram(rng, 14)
	swBatch := NewSwitch(DefaultResources())
	swSeq := NewSwitch(DefaultResources())
	for _, sw := range []*Switch{swBatch, swSeq} {
		if err := sw.Load(prog); err != nil {
			t.Fatal(err)
		}
		if err := sw.InstallFilter(FilterKey{DstIP: pool[2]}, ActionDrop); err != nil {
			t.Fatal(err)
		}
		if err := sw.InstallRateLimit(FilterKey{SrcIP: pool[3]}, 4000, 1000); err != nil {
			t.Fatal(err)
		}
	}
	sums := make([]packet.Summary, 500)
	tss := make([]time.Duration, len(sums))
	ts := time.Duration(0)
	for i := range sums {
		ts += time.Duration(rng.Intn(1_000_000))
		sums[i], tss[i] = randTestSummary(rng, pool), ts
	}
	got := swBatch.ProcessBatchAt(tss, sums, nil)
	for i := range sums {
		want := swSeq.ProcessAt(tss[i], &sums[i])
		if got[i] != want {
			t.Fatalf("pkt %d: batch=%+v seq=%+v", i, got[i], want)
		}
	}
	if b, s := swBatch.Stats(), swSeq.Stats(); b.Processed != s.Processed || b.Dropped != s.Dropped ||
		b.FilterHits != s.FilterHits || b.Permitted != s.Permitted {
		t.Fatalf("stats diverged: batch=%+v seq=%+v", b, s)
	}

	// ProcessBatch (t=0 convenience form) agrees with Process.
	v1 := swBatch.ProcessBatch(sums[:10])
	for i := 0; i < 10; i++ {
		if v2 := swSeq.Process(&sums[i]); v1[i] != v2 {
			t.Fatalf("pkt %d: ProcessBatch=%+v Process=%+v", i, v1[i], v2)
		}
	}
}

// TestClassifyBatchCommit exercises the control loop's precompute/commit
// split: classification is pure, commits tally, and installs invalidate.
func TestClassifyBatchCommit(t *testing.T) {
	rng := rand.New(rand.NewSource(406))
	pool := testAddrPool()
	sw := NewSwitch(DefaultResources())
	if err := sw.Load(randDisjointProgram(rng, 10)); err != nil {
		t.Fatal(err)
	}
	sums := make([]*packet.Summary, 64)
	for i := range sums {
		s := randTestSummary(rng, pool)
		sums[i] = &s
	}
	out := make([]Verdict, len(sums))
	gen, ok := sw.ClassifyBatch(sums, out)
	if !ok {
		t.Fatal("classify refused with no meters installed")
	}
	if sw.Stats().Processed != 0 {
		t.Fatal("classification recorded counters")
	}
	for i := range sums {
		if sw.StateGen() != gen {
			t.Fatal("generation moved without an install")
		}
		sw.CommitVerdict(out[i])
	}
	if got := sw.Stats().Processed; got != uint64(len(sums)) {
		t.Fatalf("commits recorded %d, want %d", got, len(sums))
	}

	// An install bumps the generation, and meters force the fallback.
	if err := sw.InstallFilter(FilterKey{DstIP: pool[0]}, ActionDrop); err != nil {
		t.Fatal(err)
	}
	if sw.StateGen() == gen {
		t.Fatal("install did not bump generation")
	}
	if err := sw.InstallRateLimit(FilterKey{DstIP: pool[1]}, 1000, 500); err != nil {
		t.Fatal(err)
	}
	if _, ok := sw.ClassifyBatch(sums, out); ok {
		t.Fatal("classify must refuse while meters are installed")
	}
}

// --- immutability and knobs -----------------------------------------------

func TestProgramViewImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(407))
	orig := randDisjointProgram(rng, 8)
	sw := NewSwitch(DefaultResources())
	if err := sw.Load(orig); err != nil {
		t.Fatal(err)
	}

	// Mutating the caller's program after Load must not reach the switch.
	origAction := orig.Rules[0].Action
	orig.Rules[0].Action = ActionPunt
	orig.Rules[0].Conds[0].Lo = 0xdeadbeef
	view := sw.Program()
	if view.Rules[0].Action != origAction {
		t.Fatal("Load did not defensively copy the program")
	}

	// Mutating the returned view must not reach the switch either.
	origDefault := view.Default
	view.Rules[0].Action = ActionAlert
	view.Rules[0].Conds[0].Hi = 0
	view.Default = ActionPunt
	again := sw.Program()
	if again.Rules[0].Action != origAction || again.Default != origDefault {
		t.Fatal("Program() handed out live state")
	}
	if &again.Rules[0] == &view.Rules[0] {
		t.Fatal("Program() returned shared backing array")
	}
}

func TestScanPathKnob(t *testing.T) {
	rng := rand.New(rand.NewSource(408))
	prog := randDisjointProgram(rng, 8)

	t.Setenv(ScanPathEnv, "1")
	sw := NewSwitch(DefaultResources())
	if err := sw.Load(prog); err != nil {
		t.Fatal(err)
	}
	if sw.Compiled() {
		t.Fatalf("%s must force the scan path", ScanPathEnv)
	}
	sw.SetScanOnly(false)
	if !sw.Compiled() {
		t.Fatal("SetScanOnly(false) did not recompile")
	}
	sw.SetScanOnly(true)
	if sw.Compiled() {
		t.Fatal("SetScanOnly(true) did not drop the DAG")
	}
}

func TestDAGNodeBudgetFallback(t *testing.T) {
	old := maxDAGNodes
	maxDAGNodes = 2
	defer func() { maxDAGNodes = old }()

	rng := rand.New(rand.NewSource(409))
	prog := randDisjointProgram(rng, 16)
	sw := NewSwitch(DefaultResources())
	if err := sw.Load(prog); err != nil {
		t.Fatal(err)
	}
	if sw.Compiled() {
		t.Fatal("budget of 2 nodes should force scan fallback")
	}
	// The fallback still answers correctly.
	for i := 0; i < 200; i++ {
		fv := randVector(rng)
		got := sw.state.Load().evalRules(&fv)
		if want := scanVerdict(prog, &fv); got != want {
			t.Fatalf("fallback verdict %+v != %+v", got, want)
		}
	}
}

// --- concurrency ----------------------------------------------------------

// TestConcurrentInstallDuringBatch hammers the copy-on-write writers while
// batches and classify/commit cycles run; correctness here is "the race
// detector stays silent and counters stay coherent".
func TestConcurrentInstallDuringBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(410))
	pool := testAddrPool()
	sw := NewSwitch(DefaultResources())
	if err := sw.Load(randDisjointProgram(rng, 12)); err != nil {
		t.Fatal(err)
	}
	sums := make([]packet.Summary, 256)
	for i := range sums {
		sums[i] = randTestSummary(rng, pool)
	}
	ptrs := make([]*packet.Summary, len(sums))
	for i := range sums {
		ptrs[i] = &sums[i]
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // filter churn
		defer wg.Done()
		r := rand.New(rand.NewSource(411))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := randFilterKey(r, pool)
			if i%3 == 0 {
				sw.RemoveFilter(k)
			} else {
				_ = sw.InstallFilter(k, ActionDrop)
			}
		}
	}()
	go func() { // meter churn + program reloads
		defer wg.Done()
		r := rand.New(rand.NewSource(412))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := randFilterKey(r, pool)
			if i%4 == 0 {
				_ = sw.Load(randDisjointProgram(r, 8))
			} else if i%2 == 0 {
				_ = sw.InstallRateLimit(k, 5000, 1000)
			} else {
				sw.RemoveFilter(k)
			}
		}
	}()

	out := make([]Verdict, len(sums))
	var committed uint64
	for iter := 0; iter < 60; iter++ {
		_ = sw.ProcessBatchAt(nil, sums, out[:0])
		committed += uint64(len(sums))
		if gen, ok := sw.ClassifyBatch(ptrs, out); ok {
			for i := range ptrs {
				if sw.StateGen() != gen {
					// Mid-batch publish: fall back like the control loop.
					sw.ProcessAt(0, ptrs[i])
				} else {
					sw.CommitVerdict(out[i])
				}
				committed++
			}
		} else {
			for i := range ptrs {
				sw.ProcessAt(0, ptrs[i])
				committed++
			}
		}
	}
	close(stop)
	wg.Wait()

	st := sw.Stats()
	if st.Processed != committed {
		t.Fatalf("processed %d != committed %d", st.Processed, committed)
	}
	if st.Permitted+st.Dropped+st.Alerted+st.Punted != st.Processed {
		t.Fatalf("action counters do not sum under concurrency: %+v", st)
	}
}

// TestConcurrentEnsembleInstallDuringBatch churns ensemble loads/unloads
// and filter installs underneath running batches and classify/commit
// cycles; correctness is "the race detector stays silent and counters
// stay coherent" — the RCU publish contract extended to the ensemble
// stage.
func TestConcurrentEnsembleInstallDuringBatch(t *testing.T) {
	forest, tree, _, _ := trainPacketForest(t)
	epFull, err := CompileForestEnsemble(forest, features.PacketSchema, EnsembleConfig{DropClasses: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	epSmall, err := CompileForestEnsemble(forest, features.PacketSchema, EnsembleConfig{
		DropClasses: []int{1}, Budget: ResourceBudget{Trees: 2}, Fallback: tree,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(420))
	pool := testAddrPool()
	sw := NewSwitch(DefaultResources())
	if err := sw.Load(randDisjointProgram(rng, 8)); err != nil {
		t.Fatal(err)
	}
	sums := make([]packet.Summary, 256)
	for i := range sums {
		sums[i] = randTestSummary(rng, pool)
	}
	ptrs := make([]*packet.Summary, len(sums))
	for i := range sums {
		ptrs[i] = &sums[i]
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // ensemble churn: full <-> degraded <-> none, plus knob flips
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				_ = sw.LoadEnsemble(epFull)
			case 1:
				_ = sw.LoadEnsemble(epSmall)
			case 2:
				sw.UnloadEnsemble()
			default:
				sw.SetScanOnly(i%8 == 3)
			}
			if u, ok := sw.EnsembleInfo(); ok && u.Trees == 0 {
				t.Error("EnsembleInfo saw an empty installed ensemble")
				return
			}
		}
	}()
	go func() { // filter churn
		defer wg.Done()
		r := rand.New(rand.NewSource(421))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := randFilterKey(r, pool)
			if i%3 == 0 {
				sw.RemoveFilter(k)
			} else {
				_ = sw.InstallFilter(k, ActionDrop)
			}
		}
	}()

	out := make([]Verdict, len(sums))
	var committed uint64
	for iter := 0; iter < 50; iter++ {
		_ = sw.ProcessBatchAt(nil, sums, out[:0])
		committed += uint64(len(sums))
		if gen, ok := sw.ClassifyBatch(ptrs, out); ok {
			for i := range ptrs {
				if sw.StateGen() != gen {
					sw.ProcessAt(0, ptrs[i])
				} else {
					sw.CommitVerdict(out[i])
				}
				committed++
			}
		} else {
			for i := range ptrs {
				sw.ProcessAt(0, ptrs[i])
				committed++
			}
		}
	}
	close(stop)
	wg.Wait()

	st := sw.Stats()
	if st.Processed != committed {
		t.Fatalf("processed %d != committed %d", st.Processed, committed)
	}
	if st.Permitted+st.Dropped+st.Alerted+st.Punted != st.Processed {
		t.Fatalf("action counters do not sum under concurrency: %+v", st)
	}
}

// --- benchmarks -----------------------------------------------------------

// synthProgram emits nRules disjoint attack-signature rules shaped like
// the sibling leaves of one distilled subtree: shared broad guard conds
// (the path through the upper tree, repeated verbatim in every leaf's
// conjunction), a DNS-response trigger, and a narrow per-rule TTL band.
// Benign-heavy traffic matches no rule, so the scan path re-evaluates
// every guard of all nRules rules per packet; the DAG checks each guard
// region once and binary-searches the band.
func synthProgram(nRules int) *Program {
	p := &Program{Name: "synth", Default: ActionPermit}
	span := 256 / nRules
	for i := 0; i < nRules; i++ {
		act := ActionDrop
		if i%3 == 0 {
			act = ActionAlert
		}
		p.Rules = append(p.Rules, Rule{
			Conds: []RangeCond{
				{Field: FieldWireLen, Lo: 0, Hi: 16383},
				{Field: FieldDstPort, Lo: 0, Hi: 61439},
				{Field: FieldSrcPort, Lo: 0, Hi: 61439},
				{Field: FieldSynNoAck, Lo: 0, Hi: 0},
				{Field: FieldDNSResp, Lo: 1, Hi: 1},
				{Field: FieldTTL, Lo: uint32(i * span), Hi: uint32((i+1)*span - 1)},
			},
			Action: act, Class: 1, Confidence: 0.95,
		})
	}
	return p
}

func installBenchFilters(b *testing.B, sw *Switch, pool []netip.Addr) {
	b.Helper()
	for i, k := range []FilterKey{
		{DstIP: pool[0], Proto: packet.IPProtocolUDP},
		{DstIP: pool[1], Proto: packet.IPProtocolUDP},
		{DstIP: pool[2]},
		{SrcIP: pool[3]},
	} {
		var err error
		if i%2 == 0 {
			err = sw.InstallFilter(k, ActionDrop)
		} else {
			err = sw.InstallRateLimit(k, 1e9, 1e6)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSwitchProcessPaths compares the linear-scan reference against
// the compiled DAG across program sizes, with and without an installed
// filter table in front.
func BenchmarkSwitchProcessPaths(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	pool := testAddrPool()
	sums := make([]packet.Summary, 1024)
	for i := range sums {
		sums[i] = randTestSummary(rng, pool)
	}
	for _, rules := range []int{4, 16, 64} {
		prog := synthProgram(rules)
		for _, mode := range []string{"scan", "dag"} {
			for _, withFilters := range []bool{false, true} {
				name := fmt.Sprintf("%s/rules=%d/filters=%v", mode, rules, withFilters)
				b.Run(name, func(b *testing.B) {
					sw := NewSwitch(DefaultResources())
					sw.SetScanOnly(mode == "scan")
					if err := sw.Load(prog); err != nil {
						b.Fatal(err)
					}
					if (mode == "dag") != sw.Compiled() {
						b.Fatal("wrong rule path")
					}
					if withFilters {
						installBenchFilters(b, sw, pool)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						sw.Process(&sums[i&1023])
					}
				})
			}
		}
	}
}

// BenchmarkEnsembleInference compares per-packet inference cost across the
// deployment frontier on the same trained forest: the whole ensemble
// compiled into the data plane (roomy and tight budgets), the extracted
// single tree as a compiled rule DAG, and the control plane's
// ml.PredictBatch. ns/op is per 256-packet batch; divide by 256 for
// per-packet cost.
func BenchmarkEnsembleInference(b *testing.B) {
	forest, tree, _, _ := trainPacketForest(b)
	rng := rand.New(rand.NewSource(9))
	pool := testAddrPool()
	const batch = 256
	sums := make([]packet.Summary, batch)
	X := make([][]float64, batch)
	for i := range sums {
		sums[i] = randTestSummary(rng, pool)
		var fv FieldVector
		fv.FromSummary(&sums[i])
		x := make([]float64, len(features.PacketSchema))
		for j := range features.PacketSchema {
			f, _ := FieldByName(features.PacketSchema[j])
			x[j] = float64(fv.Get(f))
		}
		X[i] = x
	}

	benchEnsemble := func(b *testing.B, budget ResourceBudget) {
		ep, err := CompileForestEnsemble(forest, features.PacketSchema, EnsembleConfig{
			DropClasses: []int{1}, Budget: budget, Fallback: tree,
		})
		if err != nil {
			b.Fatal(err)
		}
		u := ep.Usage()
		b.Logf("mode=%v trees=%d nodes=%d entries=%d stages=%d", u.Mode, u.Trees, u.Nodes, u.TableEntries, u.Stages)
		sw := NewSwitch(DefaultResources())
		if err := sw.LoadEnsemble(ep); err != nil {
			b.Fatal(err)
		}
		out := make([]Verdict, 0, batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = sw.ProcessBatchAt(nil, sums, out[:0])
		}
	}
	b.Run("ensemble-dag/budget=roomy", func(b *testing.B) { benchEnsemble(b, ResourceBudget{}) })
	b.Run("ensemble-dag/budget=tight", func(b *testing.B) { benchEnsemble(b, ResourceBudget{Nodes: 40}) })

	b.Run("extracted-tree-dag", func(b *testing.B) {
		prog, err := Compile(tree, features.PacketSchema, CompileConfig{DropClasses: []int{1}})
		if err != nil {
			b.Fatal(err)
		}
		sw := NewSwitch(DefaultResources())
		if err := sw.Load(prog); err != nil {
			b.Fatal(err)
		}
		out := make([]Verdict, 0, batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = sw.ProcessBatchAt(nil, sums, out[:0])
		}
	})

	b.Run("controlplane-predictbatch", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = forest.PredictBatch(X, 1)
		}
	})
}

// BenchmarkSwitchProcessBatch measures the batched entry point; ns/op is
// per 256-packet batch.
func BenchmarkSwitchProcessBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	pool := testAddrPool()
	sums := make([]packet.Summary, 256)
	for i := range sums {
		sums[i] = randTestSummary(rng, pool)
	}
	for _, rules := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("rules=%d", rules), func(b *testing.B) {
			sw := NewSwitch(DefaultResources())
			if err := sw.Load(synthProgram(rules)); err != nil {
				b.Fatal(err)
			}
			out := make([]Verdict, 0, len(sums))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = sw.ProcessBatchAt(nil, sums, out[:0])
			}
		})
	}
}
