package dataplane

import (
	"encoding/binary"
	"math"
)

// The per-packet fast path does not scan Program.Rules. Load compiles the
// rule list — disjoint conjunctions of per-field intervals, the shape a
// distilled decision tree produces — back into a decision DAG: each node
// splits one field's domain into the elementary intervals induced by the
// candidate rules' bounds and jumps straight to the child for the
// interval holding the packet's value. Evaluation is O(depth) binary
// searches instead of O(rules × conds) comparisons, and the structure is
// immutable after compilation so readers never synchronize.
//
// The builder is exact for arbitrary (even overlapping) rule lists under
// first-match-wins semantics: a cell is turned into a leaf only when its
// first intersecting rule covers the whole cell, so every packet in the
// cell provably matches that rule first.

// maxDAGNodes caps compilation; programs exceeding it (pathological
// overlap, not tree-distilled rules) fall back to the linear-scan
// reference path. A var so tests can exercise the fallback.
var maxDAGNodes = 1 << 16

// compiledProgram is the immutable decision-DAG form of a Program.
type compiledProgram struct {
	nodes []dagNode
	// Flat edge arrays: node i owns bounds[first:first+n] (ascending,
	// inclusive upper ends of its intervals; the last equals the node's
	// cell upper bound so the search always lands) and the parallel
	// next[first:first+n] targets (>= 0: node index; < 0: ^leaf index).
	bounds []uint32
	next   []int32
	// leaves hold the precomputed verdicts: one per rule, then the
	// default at index len(Rules).
	leaves []Verdict
	root   int32 // node index, or negative ^leaf for rule-free programs
}

// eval walks the DAG for one field vector. It never allocates.
func (c *compiledProgram) eval(fv *FieldVector) Verdict {
	t := c.root
	for t >= 0 {
		n := &c.nodes[t]
		v := fv.vals[n.field]
		first := n.first
		// Binary search for the first interval bound >= v.
		lo, hi := uint32(0), n.n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if v <= c.bounds[first+mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		t = c.next[first+lo]
	}
	return c.leaves[^t]
}

// dagNode is one interval-jump split on a single field.
type dagNode struct {
	field Field
	first uint32
	n     uint32
}

// dagBuilder carries compilation state.
type dagBuilder struct {
	prog *Program
	c    *compiledProgram
	memo map[string]int32
	ok   bool
}

// compileDAG lowers p into a decision DAG, or nil when p exceeds the node
// budget (callers then keep the scan path).
func compileDAG(p *Program) *compiledProgram {
	c := &compiledProgram{leaves: make([]Verdict, 0, len(p.Rules)+1)}
	for i := range p.Rules {
		r := &p.Rules[i]
		c.leaves = append(c.leaves, Verdict{
			Action: r.Action, Class: r.Class, Confidence: r.Confidence, RuleIndex: i,
		})
	}
	c.leaves = append(c.leaves, Verdict{Action: p.Default, RuleIndex: -1})

	b := &dagBuilder{prog: p, c: c, memo: make(map[string]int32), ok: true}
	// The cell domain is the full uint32 space, not Field.MaxValue():
	// hand-built field vectors can carry out-of-width values and the DAG
	// must agree with the scan path on them too.
	var cell cellBounds
	for f := range cell.hi {
		cell.hi[f] = math.MaxUint32
	}
	cands := make([]int, len(p.Rules))
	for i := range cands {
		cands[i] = i
	}
	root := b.build(cands, &cell)
	if !b.ok {
		return nil
	}
	c.root = root
	return c
}

// cellBounds is the sub-hyperrectangle of field space a builder node
// covers: lo[f] <= value(f) <= hi[f].
type cellBounds struct {
	lo, hi [NumFields]uint32
}

// relation classifies rule r against the cell: disjoint (cannot match any
// packet in the cell), covering (matches every packet in the cell), or
// partial.
const (
	relDisjoint = iota
	relCovers
	relPartial
)

func (b *dagBuilder) relation(ri int, cell *cellBounds) int {
	rel := relCovers
	for _, c := range b.prog.Rules[ri].Conds {
		f := c.Field
		if c.Lo > cell.hi[f] || c.Hi < cell.lo[f] {
			return relDisjoint
		}
		if c.Lo > cell.lo[f] || c.Hi < cell.hi[f] {
			rel = relPartial
		}
	}
	return rel
}

// build returns the DAG entry (node index or ^leaf) deciding the cell for
// the candidate rules (program order, already known to be the only rules
// that can intersect the cell).
func (b *dagBuilder) build(cands []int, cell *cellBounds) int32 {
	if !b.ok {
		return 0
	}
	// Prune to intersecting rules; the first covering rule wins the whole
	// cell, shadowing everything after it.
	live := make([]int, 0, len(cands))
	for _, ri := range cands {
		switch b.relation(ri, cell) {
		case relDisjoint:
		case relCovers:
			if len(live) == 0 {
				return ^int32(ri)
			}
			live = append(live, ri)
			goto pruned
		default:
			live = append(live, ri)
		}
	}
pruned:
	if len(live) == 0 {
		return ^int32(len(b.prog.Rules)) // default leaf
	}

	key := b.memoKey(live, cell)
	if idx, hit := b.memo[key]; hit {
		return idx
	}

	field, cuts := b.splitField(live, cell)
	// Elementary intervals: [cell.lo, cuts[0]-1], [cuts[0], cuts[1]-1],
	// ..., [cuts[k-1], cell.hi].
	nEdges := len(cuts) + 1
	edgeBounds := make([]uint32, nEdges)
	edgeNext := make([]int32, nEdges)
	childCell := *cell
	lo := cell.lo[field]
	for i := 0; i < nEdges; i++ {
		hi := cell.hi[field]
		if i < len(cuts) {
			hi = cuts[i] - 1
		}
		childCell.lo[field], childCell.hi[field] = lo, hi
		edgeBounds[i] = hi
		edgeNext[i] = b.build(live, &childCell)
		if !b.ok {
			return 0
		}
		lo = hi + 1
	}
	// Merge adjacent intervals that reached the same target.
	w := 1
	for i := 1; i < nEdges; i++ {
		if edgeNext[i] == edgeNext[w-1] {
			edgeBounds[w-1] = edgeBounds[i]
			continue
		}
		edgeBounds[w], edgeNext[w] = edgeBounds[i], edgeNext[i]
		w++
	}
	if w == 1 {
		b.memo[key] = edgeNext[0]
		return edgeNext[0]
	}
	if len(b.c.nodes) >= maxDAGNodes {
		b.ok = false
		return 0
	}
	idx := int32(len(b.c.nodes))
	b.c.nodes = append(b.c.nodes, dagNode{
		field: field, first: uint32(len(b.c.bounds)), n: uint32(w),
	})
	b.c.bounds = append(b.c.bounds, edgeBounds[:w]...)
	b.c.next = append(b.c.next, edgeNext[:w]...)
	b.memo[key] = idx
	return idx
}

// splitField picks the field with the most elementary cut points inside
// the cell (consolidating many rules into one multi-way node) and returns
// its sorted, deduplicated interior cuts. At least one cut exists because
// some live rule is partial over the cell.
func (b *dagBuilder) splitField(live []int, cell *cellBounds) (Field, []uint32) {
	var best Field
	var bestCuts []uint32
	for f := Field(0); f < NumFields; f++ {
		var cuts []uint32
		for _, ri := range live {
			for _, c := range b.prog.Rules[ri].Conds {
				if c.Field != f {
					continue
				}
				if c.Lo > cell.lo[f] && c.Lo <= cell.hi[f] {
					cuts = append(cuts, c.Lo)
				}
				if c.Hi < cell.hi[f] && c.Hi >= cell.lo[f] && c.Hi < math.MaxUint32 {
					cuts = append(cuts, c.Hi+1)
				}
			}
		}
		cuts = sortedUnique(cuts)
		if len(cuts) > len(bestCuts) {
			best, bestCuts = f, cuts
		}
	}
	return best, bestCuts
}

func sortedUnique(v []uint32) []uint32 {
	if len(v) < 2 {
		return v
	}
	// Insertion sort: cut lists are tiny (≤ 2×rules).
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	w := 1
	for i := 1; i < len(v); i++ {
		if v[i] != v[w-1] {
			v[w] = v[i]
			w++
		}
	}
	return v[:w]
}

// memoKey identifies a subproblem: the candidate set plus the cell bounds
// of the fields those candidates still constrain. Structurally identical
// subproblems share one DAG node.
func (b *dagBuilder) memoKey(live []int, cell *cellBounds) string {
	var used [NumFields]bool
	for _, ri := range live {
		for _, c := range b.prog.Rules[ri].Conds {
			used[c.Field] = true
		}
	}
	buf := make([]byte, 0, 4*len(live)+8*int(NumFields))
	var tmp [4]byte
	for _, ri := range live {
		binary.LittleEndian.PutUint32(tmp[:], uint32(ri))
		buf = append(buf, tmp[:]...)
	}
	for f := 0; f < int(NumFields); f++ {
		if !used[f] {
			continue
		}
		buf = append(buf, byte(f))
		binary.LittleEndian.PutUint32(tmp[:], cell.lo[f])
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint32(tmp[:], cell.hi[f])
		buf = append(buf, tmp[:]...)
	}
	return string(buf)
}
