// Package parallel is the shared worker-pool substrate of the offline
// development loop: bounded fan-out with deterministic, index-addressed
// output. Every parallel stage in the pipeline (sharded ingest, feature
// extraction, forest training) sizes itself through Workers so one knob —
// plumbed from cmd flags through experiments — controls the whole loop,
// and Workers==1 degenerates to the exact serial execution order.
package parallel

import (
	"runtime"
	"sync"
)

// MaxWorkers caps fan-out; beyond this the offline stages are memory- not
// core-bound and extra goroutines only add scheduling noise.
const MaxWorkers = 64

// Workers resolves a configured worker count: n itself when positive,
// otherwise GOMAXPROCS, clamped to MaxWorkers.
func Workers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > MaxWorkers {
		n = MaxWorkers
	}
	if n < 1 {
		n = 1
	}
	return n
}

// For runs fn(i) for every i in [0, n) across at most workers goroutines
// (0 = GOMAXPROCS). Iterations are distributed in contiguous blocks so
// writes into pre-sized slices stay cache-friendly and race-free as long
// as fn(i) touches only index i. With one worker the loop runs inline in
// index order — the serial path, byte-for-byte.
func For(n, workers int, fn func(i int)) {
	ForChunks(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForChunks splits [0, n) into one contiguous [lo, hi) block per worker
// and runs fn on each block concurrently. It returns when every block is
// done. Workers that would receive an empty block are not started.
func ForChunks(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
