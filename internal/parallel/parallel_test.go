package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	if got := Workers(0); got != min(runtime.GOMAXPROCS(0), MaxWorkers) {
		t.Errorf("Workers(0) = %d", got)
	}
	if got := Workers(-3); got < 1 {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(MaxWorkers + 100); got != MaxWorkers {
		t.Errorf("Workers(huge) = %d, want cap %d", got, MaxWorkers)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			hits := make([]int32, n)
			For(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForSingleWorkerRunsInOrder(t *testing.T) {
	var order []int
	For(50, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path out of order at %d: %v", i, v)
		}
	}
}

func TestForChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		covered := make([]int32, 97)
		ForChunks(len(covered), workers, func(lo, hi int) {
			if lo >= hi {
				t.Error("empty chunk dispatched")
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
}
