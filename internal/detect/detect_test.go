package detect

import (
	"net/netip"
	"testing"
	"time"

	"campuslab/internal/datastore"
	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

var campus = netip.MustParsePrefix("10.0.0.0/8")

// multiAttackStore builds a store with benign traffic plus a port scan and
// a beacon; returns the store and the attack identities.
func multiAttackStore(t testing.TB, benignSeed int64) (*datastore.Store, netip.Addr) {
	t.Helper()
	plan := traffic.DefaultPlan(40)
	infected := plan.Host(12)
	benign := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 50, Duration: 10 * time.Second, Seed: benignSeed})
	scan := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelPortScan, Plan: plan,
		Start: 2 * time.Second, Duration: 5 * time.Second, Rate: 400, Seed: benignSeed + 1,
	})
	beacon := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelBeacon, Plan: plan, Victim: infected,
		Start: 0, Duration: 10 * time.Second, Rate: 3600, Seed: benignSeed + 2, // 1/s
	})
	st := datastore.New()
	g := traffic.NewMerge(benign, scan, beacon)
	var f traffic.Frame
	for g.Next(&f) {
		st.IngestFrame(&f)
	}
	return st, infected
}

// trainScanModel fits a forest over source-window features.
func trainScanModel(t testing.TB, st *datastore.Store) ml.Classifier {
	t.Helper()
	ds := features.FromSourceWindows(st, features.SourceWindowConfig{Window: time.Second, Campus: campus})
	if ds.ClassCounts()[int(traffic.LabelPortScan)] == 0 {
		t.Fatal("no scan windows in training data")
	}
	forest, err := ml.FitForest(ds, int(traffic.NumLabels), ml.ForestConfig{Trees: 20, MaxDepth: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return forest
}

func TestSourceWindowDatasetSeparatesScanners(t *testing.T) {
	st, _ := multiAttackStore(t, 401)
	ds := features.FromSourceWindows(st, features.SourceWindowConfig{Window: time.Second, Campus: campus})
	counts := ds.ClassCounts()
	if counts[int(traffic.LabelPortScan)] == 0 || counts[int(traffic.LabelBenign)] == 0 {
		t.Fatalf("class counts: %v", counts)
	}
	// Scan windows must have higher destination fan-out on average.
	dstIdx := 1 // distinct_dsts
	var scanFan, benignFan, nScan, nBenign float64
	for i, row := range ds.X {
		if ds.Y[i] == int(traffic.LabelPortScan) {
			scanFan += row[dstIdx]
			nScan++
		} else if ds.Y[i] == int(traffic.LabelBenign) {
			benignFan += row[dstIdx]
			nBenign++
		}
	}
	if scanFan/nScan <= benignFan/nBenign {
		t.Errorf("scan fan-out %v <= benign %v", scanFan/nScan, benignFan/nBenign)
	}
}

func TestScanDetectorConvictsScanner(t *testing.T) {
	trainStore, _ := multiAttackStore(t, 402)
	model := trainScanModel(t, trainStore)

	// Held-out replay.
	replayStore, _ := multiAttackStore(t, 500)
	det, err := NewScanDetector(ScanDetectorConfig{
		Model: model, Window: time.Second, Campus: campus, Threshold: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	replayStore.Scan(func(sp *datastore.StoredPacket) bool {
		det.Observe(sp.TS, &sp.Summary)
		return true
	})
	alerts := det.Finish()
	if len(alerts) == 0 {
		t.Fatal("scanner not convicted")
	}
	// Identify the true scanner: an external source with port-scan flows.
	truth := map[netip.Addr]bool{}
	for _, fm := range replayStore.Flows() {
		if fm.Label == traffic.LabelPortScan && !campus.Contains(fm.Key.SrcIP) {
			truth[fm.Key.SrcIP] = true
		}
		if fm.Label == traffic.LabelPortScan && !campus.Contains(fm.Key.DstIP) {
			truth[fm.Key.DstIP] = true
		}
	}
	for _, a := range alerts {
		if !truth[a.Source] {
			t.Errorf("false conviction of %v (conf %.2f)", a.Source, a.Confidence)
		}
		if a.Confidence < 0.8 || a.Windows < 2 {
			t.Errorf("weak conviction: %+v", a)
		}
	}
}

func TestScanDetectorNoFalseConvictionsOnCleanTraffic(t *testing.T) {
	trainStore, _ := multiAttackStore(t, 403)
	model := trainScanModel(t, trainStore)
	det, err := NewScanDetector(ScanDetectorConfig{
		Model: model, Window: time.Second, Campus: campus, Threshold: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := traffic.DefaultPlan(40)
	clean := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 60, Duration: 8 * time.Second, Seed: 404})
	fp := packet.NewFlowParser()
	var f traffic.Frame
	var s packet.Summary
	for clean.Next(&f) {
		if err := fp.Parse(f.Data, &s); err != nil {
			continue
		}
		det.Observe(f.TS, &s)
	}
	if alerts := det.Finish(); len(alerts) != 0 {
		t.Errorf("false convictions on clean traffic: %+v", alerts)
	}
}

func TestScanDetectorValidation(t *testing.T) {
	if _, err := NewScanDetector(ScanDetectorConfig{}); err == nil {
		t.Error("accepted nil model")
	}
}

func TestHuntBeaconsHeuristic(t *testing.T) {
	st, infected := multiAttackStore(t, 405)
	findings := HuntBeacons(st, BeaconConfig{Campus: campus})
	if len(findings) == 0 {
		t.Fatal("beacon not found")
	}
	top := findings[0]
	if top.Pair.Host != infected {
		t.Errorf("top finding host = %v, want infected %v", top.Pair.Host, infected)
	}
	if top.Score <= 0 || top.Evidence == "" {
		t.Errorf("finding lacks evidence: %+v", top)
	}
	// No benign pair should look beacon-like: all findings must involve
	// the infected host.
	for _, f := range findings {
		if f.Pair.Host != infected {
			t.Errorf("false beacon finding: %+v", f)
		}
	}
}

func TestHuntBeaconsWithModel(t *testing.T) {
	// One store yields a single beacon pair; pool several scenarios so
	// the forest has enough positives to learn from.
	ds := &features.Dataset{}
	for seed := int64(406); seed < 412; seed++ {
		trainStore, _ := multiAttackStore(t, seed)
		part, _ := features.FromPairs(trainStore, features.PairConfig{Campus: campus})
		if err := ds.Append(part); err != nil {
			t.Fatal(err)
		}
	}
	if ds.ClassCounts()[int(traffic.LabelBeacon)] < 3 {
		t.Fatalf("too few beacon pairs in pooled training data: %v", ds.ClassCounts())
	}
	forest, err := ml.FitForest(ds, int(traffic.NumLabels), ml.ForestConfig{Trees: 15, MaxDepth: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	replayStore, infected := multiAttackStore(t, 501)
	findings := HuntBeacons(replayStore, BeaconConfig{Campus: campus, Model: forest})
	if len(findings) == 0 {
		t.Fatal("model-based hunt found nothing")
	}
	if findings[0].Pair.Host != infected {
		t.Errorf("top finding host = %v, want %v", findings[0].Pair.Host, infected)
	}
}

func TestPairFeaturesPeriodicity(t *testing.T) {
	st, infected := multiAttackStore(t, 407)
	ds, ids := features.FromPairs(st, features.PairConfig{Campus: campus})
	if len(ids) != ds.Len() {
		t.Fatal("ids misaligned")
	}
	cvIdx := 2
	for i, id := range ids {
		if ds.Y[i] == int(traffic.LabelBeacon) {
			if id.Host != infected {
				t.Errorf("beacon pair host = %v", id.Host)
			}
			if ds.X[i][cvIdx] > 0.3 {
				t.Errorf("beacon gap_cv = %v, want low (periodic)", ds.X[i][cvIdx])
			}
		}
	}
}

func BenchmarkScanDetectorObserve(b *testing.B) {
	trainStore, _ := multiAttackStore(b, 408)
	model := trainScanModel(b, trainStore)
	det, err := NewScanDetector(ScanDetectorConfig{Model: model, Window: time.Second, Campus: campus})
	if err != nil {
		b.Fatal(err)
	}
	var summaries []packet.Summary
	var stamps []time.Duration
	trainStore.Scan(func(sp *datastore.StoredPacket) bool {
		summaries = append(summaries, sp.Summary)
		stamps = append(stamps, sp.TS)
		return len(summaries) < 8192
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(summaries)
		det.Observe(stamps[j], &summaries[j])
	}
}
