// Package detect holds the stateful automation tasks that cannot run in
// the data plane: scan detection (needs per-source fan-out state across
// packets) and beacon hunting (needs per-pair periodicity across hours of
// retained data). Together with the per-packet DNS-amp program they form
// the multi-task suite of §2 — each task with a different natural compute
// placement, which is the paper's resource-allocation argument.
package detect

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"campuslab/internal/datastore"
	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

// ScanDetectorConfig wires a streaming scan detector.
type ScanDetectorConfig struct {
	// Model classifies SourceWindowSchema vectors (class index =
	// traffic.Label value; LabelPortScan is the trigger class).
	Model ml.Classifier
	// Window/Campus/MinPackets as in features.SourceWindowConfig.
	Window     time.Duration
	Campus     netip.Prefix
	MinPackets int
	// Threshold is the per-window confidence required to flag a source.
	Threshold float64
	// ConfirmWindows is how many flagged windows convict a source
	// (default 2 — one noisy window must not block anyone).
	ConfirmWindows int
}

// ScanAlert reports one convicted scanning source.
type ScanAlert struct {
	Source     netip.Addr
	At         time.Duration // conviction time (window close)
	Confidence float64       // mean over flagged windows
	Windows    int
}

// ScanDetector consumes a packet stream and convicts scanning sources.
// This task is control-plane-only by construction: its state (per-source
// destination/port sets) does not fit match-action tables.
type ScanDetector struct {
	cfg       ScanDetectorConfig
	tracker   *features.SourceWindowTracker
	flagged   map[netip.Addr][]float64
	convicted map[netip.Addr]bool
	alerts    []ScanAlert
}

// NewScanDetector validates cfg and builds the detector.
func NewScanDetector(cfg ScanDetectorConfig) (*ScanDetector, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("detect: Model is required")
	}
	if cfg.Threshold <= 0 || cfg.Threshold > 1 {
		cfg.Threshold = 0.8
	}
	if cfg.ConfirmWindows <= 0 {
		cfg.ConfirmWindows = 2
	}
	return &ScanDetector{
		cfg: cfg,
		tracker: features.NewSourceWindowTracker(features.SourceWindowConfig{
			Window: cfg.Window, Campus: cfg.Campus, MinPackets: cfg.MinPackets,
		}),
		flagged:   make(map[netip.Addr][]float64),
		convicted: make(map[netip.Addr]bool),
	}, nil
}

// Observe feeds one packet; returns any new convictions.
func (d *ScanDetector) Observe(ts time.Duration, s *packet.Summary) []ScanAlert {
	return d.process(ts, d.tracker.Observe(ts, s))
}

// Finish flushes the open window and returns all alerts so far.
func (d *ScanDetector) Finish() []ScanAlert {
	d.process(0, d.tracker.Flush())
	return d.alerts
}

func (d *ScanDetector) process(ts time.Duration, closed []features.SourceWindowResult) []ScanAlert {
	var newAlerts []ScanAlert
	for _, res := range closed {
		if d.convicted[res.Src] {
			continue
		}
		proba := d.cfg.Model.Proba(res.Vector)
		scanConf := 0.0
		if int(traffic.LabelPortScan) < len(proba) {
			scanConf = proba[traffic.LabelPortScan]
		}
		if scanConf < d.cfg.Threshold {
			continue
		}
		d.flagged[res.Src] = append(d.flagged[res.Src], scanConf)
		if len(d.flagged[res.Src]) >= d.cfg.ConfirmWindows {
			var sum float64
			for _, c := range d.flagged[res.Src] {
				sum += c
			}
			alert := ScanAlert{
				Source:     res.Src,
				At:         ts,
				Confidence: sum / float64(len(d.flagged[res.Src])),
				Windows:    len(d.flagged[res.Src]),
			}
			d.convicted[res.Src] = true
			d.alerts = append(d.alerts, alert)
			newAlerts = append(newAlerts, alert)
		}
	}
	return newAlerts
}

// BeaconConfig tunes the retrospective beacon hunt.
type BeaconConfig struct {
	// Campus identifies internal hosts.
	Campus netip.Prefix
	// MinConnections per pair before periodicity is scored (default 4).
	MinConnections int
	// MaxGapCV is the periodicity bar: a pair whose inter-connection
	// gaps vary less than this (and is small/regular) is suspicious
	// (default 0.25; real beacons jitter ~5-15%).
	MaxGapCV float64
	// MaxMeanBytes bounds per-connection volume: beacons are small
	// (default 4 KiB).
	MaxMeanBytes float64
	// Model optionally replaces the heuristic with a trained classifier
	// over features.PairSchema (LabelBeacon is the trigger class).
	Model ml.Classifier
}

// BeaconFinding reports one suspected C&C pair with its evidence — the
// §5-style operator listing.
type BeaconFinding struct {
	Pair     features.PairID
	Score    float64 // model confidence or heuristic margin
	Evidence string
}

// HuntBeacons scans the data store for periodic low-volume pairs. This is
// the retrospective, store-powered task: it is only possible because the
// campus retains everything (Figure 1's data-source half).
func HuntBeacons(st *datastore.Store, cfg BeaconConfig) []BeaconFinding {
	if cfg.MinConnections < 2 {
		cfg.MinConnections = 4
	}
	if cfg.MaxGapCV <= 0 {
		cfg.MaxGapCV = 0.25
	}
	if cfg.MaxMeanBytes <= 0 {
		cfg.MaxMeanBytes = 4096
	}
	ds, ids := features.FromPairs(st, features.PairConfig{
		Campus: cfg.Campus, MinConnections: cfg.MinConnections,
	})
	var out []BeaconFinding
	for i, id := range ids {
		v := ds.X[i]
		connCount, meanGap, gapCV := v[0], v[1], v[2]
		meanBytes := v[3]
		var score float64
		if cfg.Model != nil {
			proba := cfg.Model.Proba(v)
			if int(traffic.LabelBeacon) < len(proba) {
				score = proba[traffic.LabelBeacon]
			}
			if score < 0.5 {
				continue
			}
		} else {
			if gapCV > cfg.MaxGapCV || meanBytes > cfg.MaxMeanBytes {
				continue
			}
			// Heuristic margin: perfect periodicity scores 1.
			score = 1 - gapCV/cfg.MaxGapCV
		}
		out = append(out, BeaconFinding{
			Pair:  id,
			Score: score,
			Evidence: fmt.Sprintf("%d connections every %.1fs (cv %.3f), %.0fB each",
				int(connCount), meanGap, gapCV, meanBytes),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Pair.Host.Compare(out[j].Pair.Host) < 0
	})
	return out
}
