package core

import (
	"fmt"
	"time"

	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/traffic"
	"campuslab/internal/xai"
)

// CampusSpec describes one participating university: same open-sourced
// algorithm, different network (size, mix, attack intensity, time zone) —
// §5's reproducibility-across-campuses experiment. Data never leaves a
// campus; only the algorithm travels.
type CampusSpec struct {
	Name           string
	HostsPerDept   int
	FlowsPerSecond float64
	// Duration of the collected scenario.
	Duration time.Duration
	// AttackRate scales the overlaid attack episode (pps).
	AttackRate float64
	// StartHour shifts the diurnal curve (time zones).
	StartHour int
	// Seed makes this campus's traffic unique and reproducible.
	Seed int64
	// Shards/Workers shape the campus's local store and ingest fan-out
	// (0 = the Lab defaults). Store content is shard- and worker-count
	// independent; these only tune throughput.
	Shards  int
	Workers int
}

// Algorithm is the "open-sourced learning algorithm" every campus runs
// locally: a pipeline recipe, not a trained model.
type Algorithm struct {
	// Target attack class.
	Target traffic.Label
	// ForestTrees/ForestDepth size the black box (defaults 30/10).
	ForestTrees, ForestDepth int
	// DeployDepth bounds the extracted tree (default 4).
	DeployDepth int
	// Seed is the algorithm-level seed (shared; campus data differs).
	Seed int64
	// Workers bounds training fan-out (0 = GOMAXPROCS, 1 = serial).
	Workers int
}

// CrossCampusResult is the train-on-i, evaluate-on-j matrix.
type CrossCampusResult struct {
	Campuses []string
	// Accuracy[i][j]: deployable model trained at campus i, tested on
	// campus j's held-out data.
	Accuracy [][]float64
	// F1 of the attack class in the same arrangement.
	F1 [][]float64
	// Fidelity[i] is extraction fidelity at the home campus.
	Fidelity []float64
}

// DiagonalMean averages self-campus accuracy (train = test campus).
func (r *CrossCampusResult) DiagonalMean() float64 {
	var s float64
	for i := range r.Accuracy {
		s += r.Accuracy[i][i]
	}
	return s / float64(len(r.Accuracy))
}

// OffDiagonalMean averages transfer accuracy (train != test campus).
func (r *CrossCampusResult) OffDiagonalMean() float64 {
	var s float64
	var n int
	for i := range r.Accuracy {
		for j := range r.Accuracy[i] {
			if i != j {
				s += r.Accuracy[i][j]
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// RunCrossCampus simulates each campus, trains the algorithm locally, and
// evaluates every model on every campus's held-out test set.
func RunCrossCampus(specs []CampusSpec, algo Algorithm) (*CrossCampusResult, error) {
	if len(specs) < 2 {
		return nil, fmt.Errorf("core: cross-campus needs >= 2 campuses, got %d", len(specs))
	}
	if algo.Target == traffic.LabelBenign {
		return nil, fmt.Errorf("core: algorithm target must be an attack class")
	}
	if algo.ForestTrees <= 0 {
		algo.ForestTrees = 30
	}
	if algo.ForestDepth <= 0 {
		algo.ForestDepth = 10
	}
	if algo.DeployDepth <= 0 {
		algo.DeployDepth = 4
	}

	n := len(specs)
	trainSets := make([]*features.Dataset, n)
	testSets := make([]*features.Dataset, n)
	models := make([]*xai.Extraction, n)
	res := &CrossCampusResult{
		Campuses: make([]string, n),
		Accuracy: make([][]float64, n),
		F1:       make([][]float64, n),
		Fidelity: make([]float64, n),
	}

	for i, spec := range specs {
		res.Campuses[i] = spec.Name
		lab, gen, err := BuildCampusScenario(spec, algo.Target)
		if err != nil {
			return nil, fmt.Errorf("core: campus %s: %w", spec.Name, err)
		}
		if _, err := lab.Collect(gen); err != nil {
			return nil, fmt.Errorf("core: campus %s: %w", spec.Name, err)
		}
		ds := lab.PacketDataset(algo.Target, 1.0)
		if ds.ClassCounts()[1] == 0 {
			return nil, fmt.Errorf("core: campus %s collected no attack traffic", spec.Name)
		}
		ds.Shuffle(algo.Seed + spec.Seed)
		trainSets[i], testSets[i] = ds.Split(0.7)
	}
	for i := range specs {
		forest, err := ml.FitForest(trainSets[i], 2, ml.ForestConfig{
			Trees: algo.ForestTrees, MaxDepth: algo.ForestDepth, Seed: algo.Seed,
			Workers: algo.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("core: training at %s: %w", specs[i].Name, err)
		}
		ex, err := xai.Extract(forest, trainSets[i], xai.ExtractConfig{
			MaxDepth: algo.DeployDepth, Seed: algo.Seed + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("core: extracting at %s: %w", specs[i].Name, err)
		}
		models[i] = ex
		res.Fidelity[i] = ex.Fidelity
	}
	for i := range specs {
		res.Accuracy[i] = make([]float64, n)
		res.F1[i] = make([]float64, n)
		for j := range specs {
			conf := ml.Evaluate(models[i].Tree, testSets[j])
			res.Accuracy[i][j] = conf.Accuracy()
			res.F1[i][j] = conf.F1(1)
		}
	}
	return res, nil
}

// BuildCampusScenario assembles one campus's lab and labeled scenario:
// the local collection side of both the cross-campus experiment and the
// fleet coordinator (whose remote campuses stream the same generator
// over the ingest protocol instead of collecting in process).
func BuildCampusScenario(spec CampusSpec, target traffic.Label) (*Lab, traffic.Generator, error) {
	hosts := spec.HostsPerDept
	if hosts <= 0 {
		hosts = 50
	}
	dur := spec.Duration
	if dur <= 0 {
		dur = 4 * time.Second
	}
	fps := spec.FlowsPerSecond
	if fps <= 0 {
		fps = 60
	}
	rate := spec.AttackRate
	if rate <= 0 {
		rate = 700
	}
	plan := traffic.DefaultPlan(hosts)
	lab, err := NewLab(Config{Name: spec.Name, Plan: plan, Shards: spec.Shards, Workers: spec.Workers})
	if err != nil {
		return nil, nil, err
	}
	benign := traffic.NewCampus(traffic.Profile{
		Plan: plan, FlowsPerSecond: fps, Duration: dur,
		Diurnal: true, StartHour: spec.StartHour, Seed: spec.Seed,
	})
	attack := traffic.NewAttack(traffic.AttackConfig{
		Kind: target, Plan: plan, Victim: plan.Host(int(spec.Seed) % plan.TotalHosts()),
		Start: dur / 5, Duration: dur / 2, Rate: rate, Seed: spec.Seed + 1,
	})
	return lab, traffic.NewMerge(benign, attack), nil
}
