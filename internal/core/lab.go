// Package core is campuslab's public entry point: the Lab type operates a
// campus network "as a lab" exactly as the paper proposes — the same
// network is the data source (capture → privacy enforcement → data store →
// feature engineering) and the testbed (deploy → road-test), and the
// development loop of Figure 2 (store → black-box model → extracted
// deployable model → compiled switch program) is one method call.
package core

import (
	"fmt"
	"time"

	"campuslab/internal/control"
	"campuslab/internal/dataplane"
	"campuslab/internal/datastore"
	"campuslab/internal/eventlog"
	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/netsim"
	"campuslab/internal/privacy"
	"campuslab/internal/roadtest"
	"campuslab/internal/traffic"
	"campuslab/internal/xai"
)

// Config creates a Lab.
type Config struct {
	// Name identifies the campus (reports, cross-campus runs).
	Name string
	// Plan is the campus address layout (nil = DefaultPlan(200)).
	Plan *traffic.AddressPlan
	// Policy is the IT organization's collection policy. The zero value
	// stores everything unanonymized (internal-only store, §3).
	Policy privacy.Policy
	// Secret keys the anonymizer (required when Policy anonymizes).
	Secret []byte
	// Workers bounds offline-loop fan-out: sharded ingest, feature
	// extraction, and (as the Develop default) forest training.
	// 0 = GOMAXPROCS, 1 = serial; results are identical either way.
	Workers int
	// Shards fixes the data store's shard count (0 = auto-size from
	// GOMAXPROCS). Query results are identical at any shard count; the
	// knob exists for determinism tests and tuning.
	Shards int
	// Store, when non-nil, is adopted instead of creating a fresh store —
	// the continuous-operation path where labd recovers a durable store
	// (snapshot ⊕ WAL) before constructing the lab. Shards is ignored.
	Store *datastore.Store
}

// Lab is a campus network operated as data source and testbed.
type Lab struct {
	cfg      Config
	store    *datastore.Store
	enforcer *privacy.Enforcer
}

// NewLab validates cfg and builds the lab.
func NewLab(cfg Config) (*Lab, error) {
	if cfg.Name == "" {
		cfg.Name = "campus"
	}
	if cfg.Plan == nil {
		cfg.Plan = traffic.DefaultPlan(200)
	}
	if cfg.Policy.Scope == privacy.AnonInternal && !cfg.Policy.CampusPrefix.IsValid() {
		cfg.Policy.CampusPrefix = cfg.Plan.CampusPrefix
	}
	secret := cfg.Secret
	if len(secret) == 0 {
		secret = []byte("campuslab-default-internal-key")
	}
	enf, err := privacy.NewEnforcer(cfg.Policy, secret)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	st := cfg.Store
	if st == nil {
		st = datastore.NewSharded(cfg.Shards)
	}
	return &Lab{cfg: cfg, store: st, enforcer: enf}, nil
}

// Name returns the campus name.
func (l *Lab) Name() string { return l.cfg.Name }

// Plan returns the address plan.
func (l *Lab) Plan() *traffic.AddressPlan { return l.cfg.Plan }

// Store exposes the data store for queries.
func (l *Lab) Store() *datastore.Store { return l.store }

// SaveSnapshot writes the lab's collected data to path crash-safely:
// checksummed, fsynced, and atomically renamed into place, so a crash
// mid-save never clobbers the previous snapshot. When the store has a WAL
// attached, the log the snapshot now covers is truncated in the same
// critical section (see Store.Checkpoint).
func (l *Lab) SaveSnapshot(path string) error {
	return l.store.Checkpoint(path)
}

// RestoreSnapshot replaces the lab's store with the snapshot at path.
// Corrupt or truncated snapshots are rejected with a typed error and the
// current store is left untouched.
func (l *Lab) RestoreSnapshot(path string) error {
	st, err := datastore.LoadFile(path)
	if err != nil {
		return err
	}
	l.store = st
	return nil
}

// CollectStats summarizes one collection run.
type CollectStats struct {
	Frames     uint64
	Bytes      uint64
	StoreStats datastore.Stats
	// Stored / Shed split Frames by the store's admission gate: Stored
	// frames were acknowledged (and WAL-logged when durability is on);
	// Shed were dropped as low-priority under overload.
	Stored, Shed uint64
}

// collectBatch sizes the ingest batches Collect hands to the sharded
// store: large enough to amortize per-shard locking, small enough to keep
// memory flat while streaming long scenarios.
const collectBatch = 4096

// Collect runs a traffic stream through privacy enforcement into the data
// store — the "privacy-preserving data collection" arrow of Figure 1.
// Ground-truth labels ride along for flows the generator marks as attacks.
// Frames are ingested through the store's batched path so parsing and
// shard updates fan out across Workers.
func (l *Lab) Collect(gen traffic.Generator) (CollectStats, error) {
	var cs CollectStats
	var f traffic.Frame
	batch := make([]traffic.Frame, 0, collectBatch)
	flush := func() error {
		r, err := l.store.AddBatchAdmit(batch, l.cfg.Workers)
		cs.Stored += uint64(r.Ingested)
		cs.Shed += uint64(r.Shed)
		batch = batch[:0]
		return err
	}
	for gen.Next(&f) {
		out, err := l.enforcer.Apply(f.Data)
		if err != nil {
			// Unparseable frames are stored as-is; the store keeps the
			// "everything on the wire" contract.
			out = f.Data
		}
		stored := f
		stored.Data = out
		batch = append(batch, stored)
		if len(batch) == collectBatch {
			if err := flush(); err != nil {
				cs.StoreStats = l.store.Stats()
				return cs, fmt.Errorf("core: collect: %w", err)
			}
		}
		cs.Frames++
		cs.Bytes += uint64(len(out))
	}
	if err := flush(); err != nil {
		cs.StoreStats = l.store.Stats()
		return cs, fmt.Errorf("core: collect: %w", err)
	}
	cs.StoreStats = l.store.Stats()
	return cs, nil
}

// AddSensorEvents ingests complementary sensor streams, correcting each
// stream's clock against the capture clock first when a synchronizer is
// provided (nil sync = trust the sensor clock).
func (l *Lab) AddSensorEvents(evs []eventlog.Event, sync *eventlog.Synchronizer) {
	if sync != nil {
		corrected := make([]eventlog.Event, len(evs))
		for i, e := range evs {
			corrected[i] = e
			corrected[i].TS = sync.Correct(e.TS)
		}
		evs = corrected
	}
	l.store.AddEvents(evs)
}

// PacketDataset extracts the per-packet dataset (dataplane-compilable
// features) as a binary problem for the target attack class.
func (l *Lab) PacketDataset(target traffic.Label, benignKeep float64) *features.Dataset {
	return features.FromPackets(l.store, benignKeep).BinaryRelabel(target)
}

// FlowDataset extracts per-flow features with multiclass labels.
func (l *Lab) FlowDataset() *features.Dataset {
	return features.FromFlowsWorkers(l.store, l.cfg.Plan.CampusPrefix, l.cfg.Workers)
}

// WindowDataset extracts per-(host, window) features.
func (l *Lab) WindowDataset(window time.Duration) *features.Dataset {
	return features.FromWindows(l.store, features.WindowConfig{
		Window: window, Campus: l.cfg.Plan.CampusPrefix,
	})
}

// DevelopConfig parameterizes the Figure 2 development loop.
type DevelopConfig struct {
	// Target is the attack class the automation task detects.
	Target traffic.Label
	// ForestTrees/ForestDepth size the black-box model (defaults 30/10).
	ForestTrees, ForestDepth int
	// DeployDepth bounds the extracted deployable tree (default 4).
	DeployDepth int
	// MinConfidence gates fast-path drops (the paper's 90% example;
	// default 0.9).
	MinConfidence float64
	// Seed drives the entire loop deterministically.
	Seed int64
	// Workers bounds training fan-out (0 = the lab's Workers setting).
	// Any value yields the identical deployment; only wall-clock changes.
	Workers int
}

// Deployment is the development loop's output: every artifact of Figure 2.
type Deployment struct {
	// BlackBox is the offline model (slow loop).
	BlackBox *ml.Forest
	// Extraction is the deployable model plus its fidelity.
	Extraction *xai.Extraction
	// DropProgram drops attack traffic inline (dataplane tier).
	DropProgram *dataplane.Program
	// AlertProgram only alerts — for detect-then-mitigate tiers.
	AlertProgram *dataplane.Program
	// Rules is the operator-facing rule listing (road-map step iv).
	Rules []string
	// TrainAccuracy/TestAccuracy of the deployable model on held-out data.
	TrainAccuracy, TestAccuracy float64
	// BlackBoxTestAccuracy for the accuracy-cost-of-explainability gap.
	BlackBoxTestAccuracy float64
}

// Develop runs the full slow loop against the data store: featurize →
// train black box → extract deployable model → compile both program
// variants → report accuracies and rules.
func (l *Lab) Develop(cfg DevelopConfig) (*Deployment, error) {
	if cfg.Target == traffic.LabelBenign {
		return nil, fmt.Errorf("core: Target must be an attack class")
	}
	if cfg.ForestTrees <= 0 {
		cfg.ForestTrees = 30
	}
	if cfg.ForestDepth <= 0 {
		cfg.ForestDepth = 10
	}
	if cfg.DeployDepth <= 0 {
		cfg.DeployDepth = 4
	}
	if cfg.MinConfidence <= 0 {
		cfg.MinConfidence = 0.9
	}
	ds := l.PacketDataset(cfg.Target, 1.0)
	if ds.Len() == 0 {
		return nil, fmt.Errorf("core: data store has no packets to learn from")
	}
	counts := ds.ClassCounts()
	if counts[1] == 0 {
		return nil, fmt.Errorf("core: no %v examples in the store", cfg.Target)
	}
	ds.Shuffle(cfg.Seed)
	train, test := ds.Split(0.7)

	if cfg.Workers <= 0 {
		cfg.Workers = l.cfg.Workers
	}
	forest, err := ml.FitForest(train, 2, ml.ForestConfig{
		Trees: cfg.ForestTrees, MaxDepth: cfg.ForestDepth, Seed: cfg.Seed,
		Workers: cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("core: training black box: %w", err)
	}
	ex, err := xai.Extract(forest, train, xai.ExtractConfig{
		MaxDepth: cfg.DeployDepth, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("core: extracting deployable model: %w", err)
	}
	dropProg, err := dataplane.Compile(ex.Tree, features.PacketSchema, dataplane.CompileConfig{
		Name:        fmt.Sprintf("%s-%v-drop", l.cfg.Name, cfg.Target),
		DropClasses: []int{1}, MinConfidence: cfg.MinConfidence,
	})
	if err != nil {
		return nil, fmt.Errorf("core: compiling drop program: %w", err)
	}
	alertProg, err := dataplane.Compile(ex.Tree, features.PacketSchema, dataplane.CompileConfig{
		Name: fmt.Sprintf("%s-%v-alert", l.cfg.Name, cfg.Target),
	})
	if err != nil {
		return nil, fmt.Errorf("core: compiling alert program: %w", err)
	}
	classNames := func(c int) string {
		if c == 1 {
			return cfg.Target.String()
		}
		return "benign"
	}
	return &Deployment{
		BlackBox:             forest,
		Extraction:           ex,
		DropProgram:          dropProg,
		AlertProgram:         alertProg,
		Rules:                xai.RuleSet(ex.Tree, features.PacketSchema, classNames),
		TrainAccuracy:        ml.Evaluate(ex.Tree, train).Accuracy(),
		TestAccuracy:         ml.Evaluate(ex.Tree, test).Accuracy(),
		BlackBoxTestAccuracy: ml.Evaluate(forest, test).Accuracy(),
	}, nil
}

// RoadTest deploys the deployable model on a fresh simulated campus and
// replays a held-out scenario through it (Figure 1, right half).
func (l *Lab) RoadTest(dep *Deployment, tier control.Tier, scenario traffic.Generator, spec roadtest.Spec) (*roadtest.Report, error) {
	loopCfg := control.LoopConfig{Tier: tier, Threshold: 0.9, Window: time.Second, MinEvidence: 30}
	switch tier {
	case control.TierDataPlane:
		loopCfg.Program = dep.DropProgram
	case control.TierControlPlane:
		loopCfg.Program = dep.AlertProgram
		loopCfg.Model = dep.Extraction.Tree
	case control.TierCloud:
		loopCfg.Program = dep.AlertProgram
		loopCfg.Model = dep.BlackBox
	default:
		return nil, fmt.Errorf("core: unknown tier %v", tier)
	}
	return roadtest.Run(roadtest.Config{
		Plan:     l.cfg.Plan,
		Net:      netsim.Config{HostsPerAccess: 25},
		Loop:     loopCfg,
		Scenario: scenario,
		Spec:     spec,
	})
}
