package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"campuslab/internal/control"
	"campuslab/internal/datastore"
	"campuslab/internal/eventlog"
	"campuslab/internal/privacy"
	"campuslab/internal/roadtest"
	"campuslab/internal/traffic"
)

// scenario builds a labeled benign+attack stream on the lab's plan.
func scenario(l *Lab, benignSeed, attackSeed int64) traffic.Generator {
	benign := traffic.NewCampus(traffic.Profile{
		Plan: l.Plan(), FlowsPerSecond: 60, Duration: 4 * time.Second, Seed: benignSeed,
	})
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: l.Plan(), Victim: l.Plan().Host(6),
		Start: 800 * time.Millisecond, Duration: 2500 * time.Millisecond, Rate: 800, Seed: attackSeed,
	})
	return traffic.NewMerge(benign, amp)
}

func newLab(t testing.TB) *Lab {
	t.Helper()
	lab, err := NewLab(Config{Name: "ucsb-sim", Plan: traffic.DefaultPlan(40)})
	if err != nil {
		t.Fatal(err)
	}
	return lab
}

func TestCollectPopulatesStore(t *testing.T) {
	lab := newLab(t)
	cs, err := lab.Collect(scenario(lab, 301, 302))
	if err != nil {
		t.Fatal(err)
	}
	if cs.Frames == 0 || cs.Bytes == 0 {
		t.Fatal("nothing collected")
	}
	if cs.StoreStats.Packets != cs.Frames {
		t.Errorf("store packets %d != frames %d", cs.StoreStats.Packets, cs.Frames)
	}
	counts := lab.Store().LabelCounts()
	if counts[traffic.LabelDNSAmp] == 0 {
		t.Error("attack labels missing after collection")
	}
}

func TestCollectWithAnonymizationStillLearns(t *testing.T) {
	lab, err := NewLab(Config{
		Name: "anon-campus", Plan: traffic.DefaultPlan(40),
		Policy: privacy.Policy{Scope: privacy.AnonAll},
		Secret: []byte("it-org-secret"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lab.Collect(scenario(lab, 303, 304)); err != nil {
		t.Fatal(err)
	}
	dep, err := lab.Develop(DevelopConfig{Target: traffic.LabelDNSAmp, Seed: 305})
	if err != nil {
		t.Fatal(err)
	}
	// Anonymization preserves everything the packet features use, so the
	// model should be as good as ever.
	if dep.TestAccuracy < 0.95 {
		t.Errorf("test accuracy on anonymized store = %v", dep.TestAccuracy)
	}
}

func TestDevelopProducesAllArtifacts(t *testing.T) {
	lab := newLab(t)
	if _, err := lab.Collect(scenario(lab, 306, 307)); err != nil {
		t.Fatal(err)
	}
	dep, err := lab.Develop(DevelopConfig{Target: traffic.LabelDNSAmp, Seed: 308})
	if err != nil {
		t.Fatal(err)
	}
	if dep.BlackBox == nil || dep.Extraction == nil || dep.DropProgram == nil || dep.AlertProgram == nil {
		t.Fatal("missing artifacts")
	}
	if dep.Extraction.Fidelity < 0.9 {
		t.Errorf("fidelity = %v", dep.Extraction.Fidelity)
	}
	if dep.TestAccuracy < 0.9 {
		t.Errorf("deployable test accuracy = %v", dep.TestAccuracy)
	}
	if dep.BlackBoxTestAccuracy < dep.TestAccuracy-0.05 {
		// black box should be at least comparable
		t.Errorf("black box %v much worse than extracted %v", dep.BlackBoxTestAccuracy, dep.TestAccuracy)
	}
	if len(dep.Rules) == 0 {
		t.Fatal("no operator rules")
	}
	for _, r := range dep.Rules {
		if !strings.Contains(r, "IF ") {
			t.Errorf("malformed rule %q", r)
		}
	}
	// The drop program must be strictly smaller than the black box in
	// the sense that matters for a switch.
	if dep.DropProgram.TCAMCost() <= 0 {
		t.Error("drop program has no rules")
	}
}

func TestDevelopValidation(t *testing.T) {
	lab := newLab(t)
	if _, err := lab.Develop(DevelopConfig{Target: traffic.LabelBenign}); err == nil {
		t.Error("accepted benign target")
	}
	if _, err := lab.Develop(DevelopConfig{Target: traffic.LabelDNSAmp}); err == nil {
		t.Error("developed from an empty store")
	}
	// Store with benign only: no positives.
	benign := traffic.NewCampus(traffic.Profile{Plan: lab.Plan(), FlowsPerSecond: 30, Duration: time.Second, Seed: 309})
	if _, err := lab.Collect(benign); err != nil {
		t.Fatal(err)
	}
	if _, err := lab.Develop(DevelopConfig{Target: traffic.LabelDNSAmp}); err == nil {
		t.Error("developed with no positive examples")
	}
}

func TestDevelopThenRoadTest(t *testing.T) {
	lab := newLab(t)
	if _, err := lab.Collect(scenario(lab, 310, 311)); err != nil {
		t.Fatal(err)
	}
	dep, err := lab.Develop(DevelopConfig{Target: traffic.LabelDNSAmp, Seed: 312})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lab.RoadTest(dep, control.TierDataPlane, scenario(lab, 313, 314),
		roadtest.Spec{MinRecall: 0.9, MaxCollateral: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("road test failed: %s", rep.Summary())
	}
}

func TestSensorEventsJoinStore(t *testing.T) {
	lab := newLab(t)
	gen := eventlog.NewGenerator(eventlog.GeneratorConfig{
		Source: eventlog.SourceFirewall, Rate: 5, Seed: 315, Skew: 2 * time.Second,
	})
	evs := gen.Generate(10 * time.Second)
	var sync eventlog.Synchronizer
	// Reference pairs: sensor clock = capture + 2s.
	if err := sync.Fit(
		[]time.Duration{3 * time.Second, 7 * time.Second},
		[]time.Duration{1 * time.Second, 5 * time.Second},
	); err != nil {
		t.Fatal(err)
	}
	lab.AddSensorEvents(evs, &sync)
	// A sensor event at skewed TS 2.5s is really at 0.5s.
	got := lab.Store().EventsBetween(0, 10*time.Second)
	if len(got) == 0 {
		t.Fatal("no events stored")
	}
	// All corrected times must be earlier than the skewed originals.
	for i, e := range got {
		if e.TS >= evs[i].TS {
			t.Fatalf("event %d not clock-corrected: %v >= %v", i, e.TS, evs[i].TS)
		}
	}
}

func TestCrossCampusReproducibility(t *testing.T) {
	specs := []CampusSpec{
		{Name: "ucsb", HostsPerDept: 30, FlowsPerSecond: 50, AttackRate: 700, StartHour: 14, Seed: 316},
		{Name: "princeton", HostsPerDept: 45, FlowsPerSecond: 70, AttackRate: 500, StartHour: 17, Seed: 317},
		{Name: "columbia", HostsPerDept: 25, FlowsPerSecond: 40, AttackRate: 900, StartHour: 17, Seed: 318},
	}
	res, err := RunCrossCampus(specs, Algorithm{Target: traffic.LabelDNSAmp, Seed: 319})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Campuses) != 3 || len(res.Accuracy) != 3 {
		t.Fatalf("matrix shape wrong: %+v", res.Campuses)
	}
	// Self-accuracy must be high everywhere; transfer should hold up
	// (the signature is structural, not campus-specific).
	for i := range res.Accuracy {
		if res.Accuracy[i][i] < 0.9 {
			t.Errorf("campus %s self accuracy = %v", res.Campuses[i], res.Accuracy[i][i])
		}
		if res.Fidelity[i] < 0.85 {
			t.Errorf("campus %s fidelity = %v", res.Campuses[i], res.Fidelity[i])
		}
		for j := range res.Accuracy[i] {
			if res.Accuracy[i][j] < 0.5 {
				t.Errorf("transfer %s->%s accuracy = %v", res.Campuses[i], res.Campuses[j], res.Accuracy[i][j])
			}
		}
	}
	if res.DiagonalMean() <= 0 || res.OffDiagonalMean() <= 0 {
		t.Error("means not computed")
	}
}

func TestCrossCampusValidation(t *testing.T) {
	if _, err := RunCrossCampus([]CampusSpec{{Name: "only"}}, Algorithm{Target: traffic.LabelDNSAmp}); err == nil {
		t.Error("accepted single campus")
	}
	specs := []CampusSpec{{Name: "a", Seed: 1}, {Name: "b", Seed: 2}}
	if _, err := RunCrossCampus(specs, Algorithm{Target: traffic.LabelBenign}); err == nil {
		t.Error("accepted benign target")
	}
}

func TestLabDatasets(t *testing.T) {
	lab := newLab(t)
	if _, err := lab.Collect(scenario(lab, 320, 321)); err != nil {
		t.Fatal(err)
	}
	if d := lab.FlowDataset(); d.Len() == 0 {
		t.Error("empty flow dataset")
	}
	if d := lab.WindowDataset(time.Second); d.Len() == 0 {
		t.Error("empty window dataset")
	}
	if d := lab.PacketDataset(traffic.LabelDNSAmp, 0.5); d.Len() == 0 {
		t.Error("empty packet dataset")
	}
}

func TestLabSnapshotRoundTrip(t *testing.T) {
	lab := newLab(t)
	if _, err := lab.Collect(scenario(lab, 330, 331)); err != nil {
		t.Fatal(err)
	}
	want := lab.Store().Stats()
	path := filepath.Join(t.TempDir(), "lab.clds")
	if err := lab.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	fresh := newLab(t)
	if err := fresh.RestoreSnapshot(path); err != nil {
		t.Fatal(err)
	}
	got := fresh.Store().Stats()
	if got.Packets != want.Packets || got.Flows != want.Flows || got.DataBytes != want.DataBytes {
		t.Fatalf("restored stats %+v, want %+v", got, want)
	}
	// The restored lab is a working lab: develop a model from it.
	if _, err := fresh.Develop(DevelopConfig{Target: traffic.LabelDNSAmp, Seed: 332}); err != nil {
		t.Fatalf("develop on restored lab: %v", err)
	}
}

func TestLabRestoreRejectsCorruptSnapshot(t *testing.T) {
	lab := newLab(t)
	if _, err := lab.Collect(scenario(lab, 333, 334)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lab.clds")
	if err := lab.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x04
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	before := lab.Store().Stats()
	if err := lab.RestoreSnapshot(path); !errors.Is(err, datastore.ErrBadSnapshot) {
		t.Fatalf("corrupt snapshot: want ErrBadSnapshot, got %v", err)
	}
	// The failed restore must not have touched the live store.
	if after := lab.Store().Stats(); after.Packets != before.Packets {
		t.Errorf("failed restore altered the live store: %+v vs %+v", after, before)
	}
}
