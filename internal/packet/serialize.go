package packet

import (
	"fmt"
	"net/netip"
)

// SerializableLayer is a Layer that can write itself to a SerializeBuffer.
type SerializableLayer interface {
	Layer
	// SerializeTo prepends this layer's wire bytes to b. Layers that
	// depend on payload length or checksums read the current buffer
	// contents, so serialization runs outermost-last.
	SerializeTo(b *SerializeBuffer) error
}

// SerializeBuffer accumulates wire bytes back-to-front so that inner layers
// are written first and outer layers can compute lengths/checksums over
// them — the gopacket serialization idiom.
type SerializeBuffer struct {
	buf   []byte // full backing array
	start int    // first valid byte
	// pseudo-header addresses for transport checksums
	ckSrc, ckDst netip.Addr
	ckSet        bool
}

// NewSerializeBuffer returns a buffer with the given headroom capacity.
func NewSerializeBuffer() *SerializeBuffer {
	const defaultCap = 2048
	return &SerializeBuffer{buf: make([]byte, defaultCap), start: defaultCap}
}

// Bytes returns the currently serialized contents.
func (b *SerializeBuffer) Bytes() []byte { return b.buf[b.start:] }

// Clear resets the buffer for reuse, keeping the backing array.
func (b *SerializeBuffer) Clear() {
	b.start = len(b.buf)
	b.ckSet = false
}

// PrependBytes makes room for n bytes in front of the current contents and
// returns the slice to fill in.
func (b *SerializeBuffer) PrependBytes(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("packet: prepend %d bytes", n)
	}
	if b.start < n {
		grown := make([]byte, len(b.buf)*2+n)
		off := len(grown) - len(b.Bytes())
		copy(grown[off:], b.Bytes())
		b.start = off
		b.buf = grown
	}
	b.start -= n
	return b.buf[b.start : b.start+n], nil
}

// SetNetworkLayerForChecksum records the pseudo-header addresses that
// transport layers use when computing checksums.
func (b *SerializeBuffer) SetNetworkLayerForChecksum(src, dst netip.Addr) {
	b.ckSrc, b.ckDst = src, dst
	b.ckSet = true
}

func (b *SerializeBuffer) checksumAddrs() (src, dst netip.Addr, ok bool) {
	return b.ckSrc, b.ckDst, b.ckSet
}

// Serialize writes layers to b in wire order (outermost first in the
// argument list, like gopacket.SerializeLayers). IPv4/IPv6 layers
// automatically arm the transport pseudo-header checksum.
func Serialize(b *SerializeBuffer, layers ...SerializableLayer) error {
	b.Clear()
	for _, l := range layers {
		switch ip := l.(type) {
		case *IPv4:
			b.SetNetworkLayerForChecksum(ip.SrcIP, ip.DstIP)
		case *IPv6:
			b.SetNetworkLayerForChecksum(ip.SrcIP, ip.DstIP)
		}
	}
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b); err != nil {
			return fmt.Errorf("serializing %v: %w", layers[i].LayerType(), err)
		}
	}
	return nil
}
