package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPProtocol is the IPv4 protocol / IPv6 next-header number.
type IPProtocol uint8

const (
	IPProtocolICMPv4 IPProtocol = 1
	IPProtocolTCP    IPProtocol = 6
	IPProtocolUDP    IPProtocol = 17
	IPProtocolICMPv6 IPProtocol = 58
)

// String returns the protocol name.
func (p IPProtocol) String() string {
	switch p {
	case IPProtocolICMPv4:
		return "ICMPv4"
	case IPProtocolTCP:
		return "TCP"
	case IPProtocolUDP:
		return "UDP"
	case IPProtocolICMPv6:
		return "ICMPv6"
	default:
		return fmt.Sprintf("proto-%d", uint8(p))
	}
}

const ipv4MinHeaderLen = 20

// IPv4 is an IPv4 header.
type IPv4 struct {
	TOS        uint8
	Length     uint16 // total length incl. header
	ID         uint16
	Flags      uint8 // 3 bits: reserved, DF, MF
	FragOffset uint16
	TTL        uint8
	Protocol   IPProtocol
	Checksum   uint16
	SrcIP      netip.Addr
	DstIP      netip.Addr
	Options    []byte
	payload    []byte
}

// Fragment flag bits within IPv4.Flags.
const (
	IPv4DontFragment = 0x2
	IPv4MoreFragment = 0x1
)

// LayerType implements Layer.
func (*IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// LayerPayload implements Layer.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// HeaderLen returns the header length in bytes implied by Options.
func (ip *IPv4) HeaderLen() int { return ipv4MinHeaderLen + len(ip.Options) }

// DecodeFromBytes implements DecodingLayer.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < ipv4MinHeaderLen {
		return fmt.Errorf("%w: ipv4 needs %d bytes, have %d", ErrTruncated, ipv4MinHeaderLen, len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return fmt.Errorf("%w: ip version %d in ipv4 decoder", ErrMalformed, v)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < ipv4MinHeaderLen {
		return fmt.Errorf("%w: ihl %d", ErrMalformed, ihl)
	}
	if len(data) < ihl {
		return fmt.Errorf("%w: ipv4 header len %d, have %d", ErrTruncated, ihl, len(data))
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOffset = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = IPProtocol(data[9])
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	var src, dst [4]byte
	copy(src[:], data[12:16])
	copy(dst[:], data[16:20])
	ip.SrcIP = netip.AddrFrom4(src)
	ip.DstIP = netip.AddrFrom4(dst)
	ip.Options = data[ipv4MinHeaderLen:ihl]
	end := int(ip.Length)
	if end < ihl {
		return fmt.Errorf("%w: total length %d < header %d", ErrMalformed, end, ihl)
	}
	if end > len(data) {
		// Snap to what we actually have; capture may have snapped the frame.
		end = len(data)
	}
	ip.payload = data[ihl:end]
	return nil
}

// NextLayerType implements DecodingLayer.
func (ip *IPv4) NextLayerType() LayerType {
	if ip.FragOffset != 0 || ip.Flags&IPv4MoreFragment != 0 && ip.FragOffset > 0 {
		return LayerTypePayload // non-first fragments carry no parseable L4 header
	}
	switch ip.Protocol {
	case IPProtocolTCP:
		return LayerTypeTCP
	case IPProtocolUDP:
		return LayerTypeUDP
	case IPProtocolICMPv4:
		return LayerTypeICMPv4
	default:
		return LayerTypePayload
	}
}

// SerializeTo implements SerializableLayer. Length and Checksum are
// computed from the buffer contents, overwriting any caller-set values.
func (ip *IPv4) SerializeTo(b *SerializeBuffer) error {
	optLen := len(ip.Options)
	if optLen%4 != 0 {
		return fmt.Errorf("%w: ipv4 options not 32-bit aligned (%d bytes)", ErrMalformed, optLen)
	}
	hlen := ipv4MinHeaderLen + optLen
	payloadLen := len(b.Bytes())
	hdr, err := b.PrependBytes(hlen)
	if err != nil {
		return err
	}
	hdr[0] = 0x40 | uint8(hlen/4)
	hdr[1] = ip.TOS
	binary.BigEndian.PutUint16(hdr[2:4], uint16(hlen+payloadLen))
	binary.BigEndian.PutUint16(hdr[4:6], ip.ID)
	binary.BigEndian.PutUint16(hdr[6:8], uint16(ip.Flags)<<13|ip.FragOffset&0x1fff)
	hdr[8] = ip.TTL
	hdr[9] = uint8(ip.Protocol)
	hdr[10], hdr[11] = 0, 0
	src, dst := ip.SrcIP.As4(), ip.DstIP.As4()
	copy(hdr[12:16], src[:])
	copy(hdr[16:20], dst[:])
	copy(hdr[20:], ip.Options)
	binary.BigEndian.PutUint16(hdr[10:12], internetChecksum(hdr[:hlen]))
	return nil
}

// pseudoHeaderChecksum computes the IPv4/IPv6 pseudo-header partial sum used
// by TCP/UDP checksums.
func pseudoHeaderChecksum(src, dst netip.Addr, proto IPProtocol, length int) uint32 {
	var sum uint32
	addAddr := func(a netip.Addr) {
		if a.Is4() {
			b := a.As4()
			sum += uint32(binary.BigEndian.Uint16(b[0:2]))
			sum += uint32(binary.BigEndian.Uint16(b[2:4]))
		} else {
			b := a.As16()
			for i := 0; i < 16; i += 2 {
				sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
			}
		}
	}
	addAddr(src)
	addAddr(dst)
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// internetChecksum computes the RFC 1071 one's-complement checksum of data.
func internetChecksum(data []byte) uint16 {
	return finishChecksum(sumBytes(0, data))
}

func sumBytes(sum uint32, data []byte) uint32 {
	n := len(data) &^ 1
	for i := 0; i < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	return sum
}

func finishChecksum(sum uint32) uint16 {
	for sum > 0xffff {
		sum = sum>>16 + sum&0xffff
	}
	return ^uint16(sum)
}
