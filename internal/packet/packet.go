// Package packet implements the wire-format substrate for campuslab: a
// gopacket-inspired layered packet model covering Ethernet, IPv4/IPv6,
// TCP/UDP/ICMPv4 and DNS, with both a convenient eager decoder and an
// allocation-free FlowParser for hot capture paths.
//
// The design follows the layering idiom of gopacket: every protocol is a
// Layer; decoding walks the layer chain; serialization walks it in reverse
// so that lengths and checksums can be fixed up. Unlike gopacket, the set
// of layers is closed (campus traffic only), which lets the fast path avoid
// all interface allocation.
package packet

import (
	"errors"
	"fmt"
)

// LayerType identifies a protocol layer within a packet.
type LayerType uint8

// The closed set of layer types campuslab understands.
const (
	LayerTypeInvalid LayerType = iota
	LayerTypeEthernet
	LayerTypeIPv4
	LayerTypeIPv6
	LayerTypeTCP
	LayerTypeUDP
	LayerTypeICMPv4
	LayerTypeDNS
	LayerTypeARP
	LayerTypePayload
	numLayerTypes
)

var layerTypeNames = [numLayerTypes]string{
	"Invalid", "Ethernet", "IPv4", "IPv6", "TCP", "UDP", "ICMPv4", "DNS", "ARP", "Payload",
}

// String returns the human-readable protocol name.
func (t LayerType) String() string {
	if int(t) < len(layerTypeNames) {
		return layerTypeNames[t]
	}
	return fmt.Sprintf("LayerType(%d)", uint8(t))
}

// Common decode errors. Decoders wrap these so callers can classify
// malformed traffic without string matching.
var (
	ErrTruncated   = errors.New("packet: truncated layer")
	ErrMalformed   = errors.New("packet: malformed layer")
	ErrUnsupported = errors.New("packet: unsupported protocol")
)

// Layer is one decoded protocol layer.
type Layer interface {
	// LayerType reports which protocol this layer is.
	LayerType() LayerType
	// LayerPayload returns the bytes this layer carries for the next
	// layer up the stack (nil when the layer is terminal).
	LayerPayload() []byte
}

// DecodingLayer is a Layer that can overwrite itself from wire bytes.
// Implementations must not retain data beyond the call unless the caller
// guaranteed the buffer is immutable (the NoCopy contract).
type DecodingLayer interface {
	Layer
	// DecodeFromBytes parses data into the receiver. The receiver is
	// fully overwritten; previous contents do not leak through.
	DecodeFromBytes(data []byte) error
	// NextLayerType reports the type of the layer carried in
	// LayerPayload, or LayerTypePayload when unknown/opaque.
	NextLayerType() LayerType
}

// Packet is an eagerly decoded packet: the full layer chain plus the raw
// bytes it was decoded from. Packet is the convenient API; hot paths should
// prefer FlowParser.
type Packet struct {
	data   []byte
	layers []Layer
	// Truncated reports that decoding stopped early because the bytes
	// ran out mid-layer; the layers decoded so far are still valid.
	Truncated bool
}

// Decode eagerly parses data starting at first. The returned Packet
// references data; the caller must not mutate it afterwards.
func Decode(data []byte, first LayerType) (*Packet, error) {
	p := &Packet{data: data, layers: make([]Layer, 0, 4)}
	cur, rest := first, data
	for cur != LayerTypeInvalid && len(rest) > 0 {
		dl, err := newLayer(cur)
		if err != nil {
			// Unknown next protocol: keep what we have as payload.
			p.layers = append(p.layers, &Payload{Data: rest})
			return p, nil
		}
		if err := dl.DecodeFromBytes(rest); err != nil {
			if errors.Is(err, ErrTruncated) {
				p.Truncated = true
				return p, nil
			}
			return p, fmt.Errorf("decoding %v: %w", cur, err)
		}
		p.layers = append(p.layers, dl)
		next := dl.NextLayerType()
		rest = dl.LayerPayload()
		if next == LayerTypePayload {
			if len(rest) > 0 {
				p.layers = append(p.layers, &Payload{Data: rest})
			}
			return p, nil
		}
		cur = next
	}
	return p, nil
}

// newLayer constructs a fresh DecodingLayer for t.
func newLayer(t LayerType) (DecodingLayer, error) {
	switch t {
	case LayerTypeEthernet:
		return new(Ethernet), nil
	case LayerTypeIPv4:
		return new(IPv4), nil
	case LayerTypeIPv6:
		return new(IPv6), nil
	case LayerTypeTCP:
		return new(TCP), nil
	case LayerTypeUDP:
		return new(UDP), nil
	case LayerTypeICMPv4:
		return new(ICMPv4), nil
	case LayerTypeDNS:
		return new(DNS), nil
	case LayerTypeARP:
		return new(ARP), nil
	case LayerTypePayload:
		return new(Payload), nil
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnsupported, t)
	}
}

// Data returns the raw bytes the packet was decoded from.
func (p *Packet) Data() []byte { return p.data }

// Layers returns the decoded layer chain in wire order.
func (p *Packet) Layers() []Layer { return p.layers }

// Layer returns the first layer of type t, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// TransportLayer returns the TCP or UDP layer, or nil.
func (p *Packet) TransportLayer() Layer {
	for _, l := range p.layers {
		if t := l.LayerType(); t == LayerTypeTCP || t == LayerTypeUDP {
			return l
		}
	}
	return nil
}

// NetworkLayer returns the IPv4 or IPv6 layer, or nil.
func (p *Packet) NetworkLayer() Layer {
	for _, l := range p.layers {
		if t := l.LayerType(); t == LayerTypeIPv4 || t == LayerTypeIPv6 {
			return l
		}
	}
	return nil
}

// String renders a one-line summary, e.g. "Ethernet/IPv4/UDP/DNS (90B)".
func (p *Packet) String() string {
	s := ""
	for i, l := range p.layers {
		if i > 0 {
			s += "/"
		}
		s += l.LayerType().String()
	}
	return fmt.Sprintf("%s (%dB)", s, len(p.data))
}

// Payload is an opaque application payload layer.
type Payload struct {
	Data []byte
}

// LayerType implements Layer.
func (*Payload) LayerType() LayerType { return LayerTypePayload }

// LayerPayload implements Layer; a payload is terminal.
func (*Payload) LayerPayload() []byte { return nil }

// DecodeFromBytes implements DecodingLayer.
func (pl *Payload) DecodeFromBytes(data []byte) error {
	pl.Data = data
	return nil
}

// NextLayerType implements DecodingLayer.
func (*Payload) NextLayerType() LayerType { return LayerTypeInvalid }

// SerializeTo implements SerializableLayer.
func (pl *Payload) SerializeTo(b *SerializeBuffer) error {
	dst, err := b.PrependBytes(len(pl.Data))
	if err != nil {
		return err
	}
	copy(dst, pl.Data)
	return nil
}
