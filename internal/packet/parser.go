package packet

import "errors"

// Summary is the fixed-size, allocation-free digest of one packet that the
// hot capture and dataplane paths operate on. It carries exactly the fields
// the feature extractors and match-action tables key on.
type Summary struct {
	Tuple      FiveTuple
	WireLen    int // bytes on the wire (frame length)
	IPLen      int // IP total length
	PayloadLen int // transport payload bytes
	TTL        uint8
	TCPFlags   TCPFlags
	HasIP      bool
	HasTCP     bool
	HasUDP     bool
	HasICMP    bool

	// DNS quick-look fields, populated without building a DNS struct.
	IsDNS        bool
	DNSResponse  bool
	DNSQueryType DNSType // type of the first question, if parseable
	DNSAnswerCnt int
	DNSMsgLen    int
}

// FlowParser is the allocation-free fast-path decoder: one instance per
// goroutine, reused across packets (the DecodingLayerParser idiom). It
// decodes Ethernet/IPv4/IPv6/TCP/UDP/ICMP in place and extracts DNS
// indicators without touching the heap.
type FlowParser struct {
	eth  Ethernet
	ip4  IPv4
	ip6  IPv6
	tcp  TCP
	udp  UDP
	icmp ICMPv4
}

// NewFlowParser returns a ready parser. The zero value is also usable.
func NewFlowParser() *FlowParser { return &FlowParser{} }

// ErrNotIP reports a frame whose EtherType the parser does not handle.
var ErrNotIP = errors.New("packet: frame is not IPv4/IPv6")

// Parse decodes frame (starting at Ethernet) into s. It returns ErrNotIP
// for non-IP frames (ARP etc.) with s.WireLen still set; other errors mean
// a malformed/truncated packet.
func (fp *FlowParser) Parse(frame []byte, s *Summary) error {
	*s = Summary{WireLen: len(frame)}
	if err := fp.eth.DecodeFromBytes(frame); err != nil {
		return err
	}
	var (
		payload []byte
		proto   IPProtocol
	)
	switch fp.eth.NextLayerType() {
	case LayerTypeIPv4:
		if err := fp.ip4.DecodeFromBytes(fp.eth.LayerPayload()); err != nil {
			return err
		}
		s.Tuple.SrcIP, s.Tuple.DstIP = fp.ip4.SrcIP, fp.ip4.DstIP
		s.TTL = fp.ip4.TTL
		s.IPLen = int(fp.ip4.Length)
		proto = fp.ip4.Protocol
		if fp.ip4.NextLayerType() == LayerTypePayload && proto != IPProtocolICMPv4 {
			// fragment or unsupported proto: record what we know
			s.Tuple.Proto = proto
			s.HasIP = true
			return nil
		}
		payload = fp.ip4.LayerPayload()
	case LayerTypeIPv6:
		if err := fp.ip6.DecodeFromBytes(fp.eth.LayerPayload()); err != nil {
			return err
		}
		s.Tuple.SrcIP, s.Tuple.DstIP = fp.ip6.SrcIP, fp.ip6.DstIP
		s.TTL = fp.ip6.HopLimit
		s.IPLen = ipv6HeaderLen + int(fp.ip6.Length)
		proto = fp.ip6.NextHeader
		payload = fp.ip6.LayerPayload()
	default:
		return ErrNotIP
	}
	s.HasIP = true
	s.Tuple.Proto = proto

	switch proto {
	case IPProtocolTCP:
		if err := fp.tcp.DecodeFromBytes(payload); err != nil {
			return err
		}
		s.HasTCP = true
		s.Tuple.SrcPort, s.Tuple.DstPort = fp.tcp.SrcPort, fp.tcp.DstPort
		s.TCPFlags = fp.tcp.Flags
		s.PayloadLen = len(fp.tcp.LayerPayload())
	case IPProtocolUDP:
		if err := fp.udp.DecodeFromBytes(payload); err != nil {
			return err
		}
		s.HasUDP = true
		s.Tuple.SrcPort, s.Tuple.DstPort = fp.udp.SrcPort, fp.udp.DstPort
		s.PayloadLen = len(fp.udp.LayerPayload())
		if fp.udp.SrcPort == PortDNS || fp.udp.DstPort == PortDNS {
			fp.peekDNS(fp.udp.LayerPayload(), s)
		}
	case IPProtocolICMPv4:
		if err := fp.icmp.DecodeFromBytes(payload); err != nil {
			return err
		}
		s.HasICMP = true
		s.PayloadLen = len(fp.icmp.LayerPayload())
	default:
		s.PayloadLen = len(payload)
	}
	return nil
}

// peekDNS extracts the DNS quick-look fields without allocating: header
// flags, answer count, and the first question's QTYPE (skipping its name
// labels in place).
func (fp *FlowParser) peekDNS(msg []byte, s *Summary) {
	if len(msg) < dnsHeaderLen {
		return
	}
	s.IsDNS = true
	s.DNSMsgLen = len(msg)
	flags := uint16(msg[2])<<8 | uint16(msg[3])
	s.DNSResponse = flags&dnsFlagQR != 0
	s.DNSAnswerCnt = int(msg[6])<<8 | int(msg[7])
	qd := int(msg[4])<<8 | int(msg[5])
	if qd == 0 {
		return
	}
	// Skip the first question's name (labels or a compression pointer).
	off := dnsHeaderLen
	for off < len(msg) {
		b := msg[off]
		if b == 0 {
			off++
			break
		}
		if b&0xc0 == 0xc0 {
			off += 2
			break
		}
		off += 1 + int(b)
	}
	if off+2 <= len(msg) {
		s.DNSQueryType = DNSType(uint16(msg[off])<<8 | uint16(msg[off+1]))
	}
}
