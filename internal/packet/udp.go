package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

const udpHeaderLen = 8

// Well-known UDP/TCP service ports the feature extractors care about.
const (
	PortDNS   = 53
	PortHTTP  = 80
	PortHTTPS = 443
	PortNTP   = 123
	PortSSH   = 22
	PortSMTP  = 25
	PortIMAPS = 993
	PortRTP   = 5004
	PortQUIC  = 443
	PortSNMP  = 161
)

// UDP is a UDP datagram header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
	payload          []byte
}

// LayerType implements Layer.
func (*UDP) LayerType() LayerType { return LayerTypeUDP }

// LayerPayload implements Layer.
func (u *UDP) LayerPayload() []byte { return u.payload }

// NextLayerType implements DecodingLayer: DNS on port 53, opaque otherwise.
func (u *UDP) NextLayerType() LayerType {
	if u.SrcPort == PortDNS || u.DstPort == PortDNS {
		return LayerTypeDNS
	}
	return LayerTypePayload
}

// DecodeFromBytes implements DecodingLayer.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < udpHeaderLen {
		return fmt.Errorf("%w: udp needs %d bytes, have %d", ErrTruncated, udpHeaderLen, len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	if int(u.Length) < udpHeaderLen {
		return fmt.Errorf("%w: udp length %d", ErrMalformed, u.Length)
	}
	end := int(u.Length)
	if end > len(data) {
		end = len(data)
	}
	u.payload = data[udpHeaderLen:end]
	return nil
}

// SerializeTo implements SerializableLayer. Length and Checksum are
// computed from the buffer contents.
func (u *UDP) SerializeTo(b *SerializeBuffer) error {
	dgramLen := udpHeaderLen + len(b.Bytes())
	hdr, err := b.PrependBytes(udpHeaderLen)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint16(hdr[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], u.DstPort)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(dgramLen))
	hdr[6], hdr[7] = 0, 0
	if src, dst, ok := b.checksumAddrs(); ok {
		sum := pseudoHeaderChecksum(src, dst, IPProtocolUDP, dgramLen)
		sum = sumBytes(sum, b.Bytes())
		ck := finishChecksum(sum)
		if ck == 0 {
			ck = 0xffff // RFC 768: transmitted zero means "no checksum"
		}
		binary.BigEndian.PutUint16(hdr[6:8], ck)
	}
	return nil
}

// VerifyUDPChecksum recomputes the UDP checksum over datagram bytes
// (header+payload), reporting whether it is consistent. A zero checksum
// field (checksum disabled) verifies trivially.
func VerifyUDPChecksum(src, dst netip.Addr, dgram []byte) bool {
	if len(dgram) < udpHeaderLen {
		return false
	}
	if binary.BigEndian.Uint16(dgram[6:8]) == 0 {
		return true
	}
	sum := pseudoHeaderChecksum(src, dst, IPProtocolUDP, len(dgram))
	return finishChecksum(sumBytes(sum, dgram)) == 0
}

// ICMPv4 is an ICMP echo/unreachable style message header.
type ICMPv4 struct {
	Type, Code uint8
	Checksum   uint16
	ID, Seq    uint16 // meaningful for echo; raw rest-of-header otherwise
	payload    []byte
}

// ICMPv4 message types used by the simulator.
const (
	ICMPv4EchoReply       = 0
	ICMPv4DestUnreachable = 3
	ICMPv4EchoRequest     = 8
	ICMPv4TimeExceeded    = 11
)

const icmpv4HeaderLen = 8

// LayerType implements Layer.
func (*ICMPv4) LayerType() LayerType { return LayerTypeICMPv4 }

// LayerPayload implements Layer.
func (ic *ICMPv4) LayerPayload() []byte { return ic.payload }

// NextLayerType implements DecodingLayer.
func (*ICMPv4) NextLayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes implements DecodingLayer.
func (ic *ICMPv4) DecodeFromBytes(data []byte) error {
	if len(data) < icmpv4HeaderLen {
		return fmt.Errorf("%w: icmpv4 needs %d bytes, have %d", ErrTruncated, icmpv4HeaderLen, len(data))
	}
	ic.Type = data[0]
	ic.Code = data[1]
	ic.Checksum = binary.BigEndian.Uint16(data[2:4])
	ic.ID = binary.BigEndian.Uint16(data[4:6])
	ic.Seq = binary.BigEndian.Uint16(data[6:8])
	ic.payload = data[icmpv4HeaderLen:]
	return nil
}

// SerializeTo implements SerializableLayer; the checksum is computed over
// header and current buffer contents.
func (ic *ICMPv4) SerializeTo(b *SerializeBuffer) error {
	hdr, err := b.PrependBytes(icmpv4HeaderLen)
	if err != nil {
		return err
	}
	hdr[0] = ic.Type
	hdr[1] = ic.Code
	hdr[2], hdr[3] = 0, 0
	binary.BigEndian.PutUint16(hdr[4:6], ic.ID)
	binary.BigEndian.PutUint16(hdr[6:8], ic.Seq)
	binary.BigEndian.PutUint16(hdr[2:4], internetChecksum(b.Bytes()))
	return nil
}
