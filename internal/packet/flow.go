package packet

import (
	"fmt"
	"net/netip"
)

// FiveTuple is the canonical flow key used across campuslab: transport
// protocol plus source/destination address and port. It is comparable and
// therefore usable directly as a map key.
type FiveTuple struct {
	Proto   IPProtocol
	SrcIP   netip.Addr
	DstIP   netip.Addr
	SrcPort uint16
	DstPort uint16
}

// String renders "TCP 10.1.2.3:443 > 10.9.8.7:55123".
func (f FiveTuple) String() string {
	return fmt.Sprintf("%v %s:%d > %s:%d", f.Proto, f.SrcIP, f.SrcPort, f.DstIP, f.DstPort)
}

// Reverse returns the tuple of the opposite direction.
func (f FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		Proto: f.Proto,
		SrcIP: f.DstIP, DstIP: f.SrcIP,
		SrcPort: f.DstPort, DstPort: f.SrcPort,
	}
}

// Canonical returns the direction-independent form of the tuple: the
// endpoint with the lower (addr, port) ordering is placed in the source
// position. Both directions of a connection canonicalize identically.
func (f FiveTuple) Canonical() FiveTuple {
	if f.less() {
		return f
	}
	return f.Reverse()
}

// IsCanonical reports whether f is already in canonical orientation.
func (f FiveTuple) IsCanonical() bool { return f.less() }

func (f FiveTuple) less() bool {
	switch c := f.SrcIP.Compare(f.DstIP); {
	case c < 0:
		return true
	case c > 0:
		return false
	default:
		return f.SrcPort <= f.DstPort
	}
}

// Hash returns a 64-bit FNV-1a style hash of the tuple, identical for both
// directions (it hashes the canonical form). Used by sketches and sharding.
func (f FiveTuple) Hash() uint64 {
	c := f.Canonical()
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	mix(byte(c.Proto))
	for _, a := range []netip.Addr{c.SrcIP, c.DstIP} {
		b := a.As16()
		for _, x := range b {
			mix(x)
		}
	}
	mix(byte(c.SrcPort >> 8))
	mix(byte(c.SrcPort))
	mix(byte(c.DstPort >> 8))
	mix(byte(c.DstPort))
	return h
}

// TupleFromPacket extracts the five-tuple from a decoded packet, reporting
// ok=false when the packet has no IP layer. Non-TCP/UDP packets get zero
// ports.
func TupleFromPacket(p *Packet) (FiveTuple, bool) {
	var ft FiveTuple
	switch nl := p.NetworkLayer().(type) {
	case *IPv4:
		ft.SrcIP, ft.DstIP, ft.Proto = nl.SrcIP, nl.DstIP, nl.Protocol
	case *IPv6:
		ft.SrcIP, ft.DstIP, ft.Proto = nl.SrcIP, nl.DstIP, nl.NextHeader
	default:
		return ft, false
	}
	switch tl := p.TransportLayer().(type) {
	case *TCP:
		ft.SrcPort, ft.DstPort = tl.SrcPort, tl.DstPort
	case *UDP:
		ft.SrcPort, ft.DstPort = tl.SrcPort, tl.DstPort
	}
	return ft, true
}
