package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

const ipv6HeaderLen = 40

// IPv6 is an IPv6 fixed header. Extension headers other than opaque
// payloads are not modeled; campus traffic in the simulator does not emit
// them, and real captures that contain them fall back to LayerTypePayload.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	Length       uint16 // payload length
	NextHeader   IPProtocol
	HopLimit     uint8
	SrcIP        netip.Addr
	DstIP        netip.Addr
	payload      []byte
}

// LayerType implements Layer.
func (*IPv6) LayerType() LayerType { return LayerTypeIPv6 }

// LayerPayload implements Layer.
func (ip *IPv6) LayerPayload() []byte { return ip.payload }

// DecodeFromBytes implements DecodingLayer.
func (ip *IPv6) DecodeFromBytes(data []byte) error {
	if len(data) < ipv6HeaderLen {
		return fmt.Errorf("%w: ipv6 needs %d bytes, have %d", ErrTruncated, ipv6HeaderLen, len(data))
	}
	if v := data[0] >> 4; v != 6 {
		return fmt.Errorf("%w: ip version %d in ipv6 decoder", ErrMalformed, v)
	}
	ip.TrafficClass = data[0]<<4 | data[1]>>4
	ip.FlowLabel = binary.BigEndian.Uint32(data[0:4]) & 0xfffff
	ip.Length = binary.BigEndian.Uint16(data[4:6])
	ip.NextHeader = IPProtocol(data[6])
	ip.HopLimit = data[7]
	var src, dst [16]byte
	copy(src[:], data[8:24])
	copy(dst[:], data[24:40])
	ip.SrcIP = netip.AddrFrom16(src)
	ip.DstIP = netip.AddrFrom16(dst)
	end := ipv6HeaderLen + int(ip.Length)
	if end > len(data) {
		end = len(data)
	}
	ip.payload = data[ipv6HeaderLen:end]
	return nil
}

// NextLayerType implements DecodingLayer.
func (ip *IPv6) NextLayerType() LayerType {
	switch ip.NextHeader {
	case IPProtocolTCP:
		return LayerTypeTCP
	case IPProtocolUDP:
		return LayerTypeUDP
	default:
		return LayerTypePayload
	}
}

// SerializeTo implements SerializableLayer. Length is computed from the
// buffer contents.
func (ip *IPv6) SerializeTo(b *SerializeBuffer) error {
	payloadLen := len(b.Bytes())
	hdr, err := b.PrependBytes(ipv6HeaderLen)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint32(hdr[0:4], 6<<28|uint32(ip.TrafficClass)<<20|ip.FlowLabel&0xfffff)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(payloadLen))
	hdr[6] = uint8(ip.NextHeader)
	hdr[7] = ip.HopLimit
	src, dst := ip.SrcIP.As16(), ip.DstIP.As16()
	copy(hdr[8:24], src[:])
	copy(hdr[24:40], dst[:])
	return nil
}
