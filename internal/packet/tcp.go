package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

const tcpMinHeaderLen = 20

// TCPFlags is the 8-bit TCP flag field.
type TCPFlags uint8

// TCP flag bits.
const (
	TCPFin TCPFlags = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
	TCPEce
	TCPCwr
)

// Has reports whether all bits in f are set.
func (fl TCPFlags) Has(f TCPFlags) bool { return fl&f == f }

// String renders the set flags, e.g. "SYN|ACK".
func (fl TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{TCPSyn, "SYN"}, {TCPAck, "ACK"}, {TCPFin, "FIN"}, {TCPRst, "RST"},
		{TCPPsh, "PSH"}, {TCPUrg, "URG"}, {TCPEce, "ECE"}, {TCPCwr, "CWR"},
	}
	s := ""
	for _, n := range names {
		if fl.Has(n.bit) {
			if s != "" {
				s += "|"
			}
			s += n.name
		}
	}
	if s == "" {
		return "none"
	}
	return s
}

// TCPOption is a single decoded TCP option.
type TCPOption struct {
	Kind uint8
	Data []byte // option payload, excluding kind and length bytes
}

// Well-known TCP option kinds.
const (
	TCPOptEndOfList = 0
	TCPOptNop       = 1
	TCPOptMSS       = 2
	TCPOptWScale    = 3
	TCPOptSACKPerm  = 4
	TCPOptTimestamp = 8
)

// TCP is a TCP segment header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	Flags            TCPFlags
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []TCPOption
	payload          []byte
}

// LayerType implements Layer.
func (*TCP) LayerType() LayerType { return LayerTypeTCP }

// LayerPayload implements Layer.
func (t *TCP) LayerPayload() []byte { return t.payload }

// NextLayerType implements DecodingLayer. Application payloads are opaque.
func (*TCP) NextLayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes implements DecodingLayer.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < tcpMinHeaderLen {
		return fmt.Errorf("%w: tcp needs %d bytes, have %d", ErrTruncated, tcpMinHeaderLen, len(data))
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOffset = data[12] >> 4
	hlen := int(t.DataOffset) * 4
	if hlen < tcpMinHeaderLen {
		return fmt.Errorf("%w: tcp data offset %d", ErrMalformed, t.DataOffset)
	}
	if len(data) < hlen {
		return fmt.Errorf("%w: tcp header len %d, have %d", ErrTruncated, hlen, len(data))
	}
	t.Flags = TCPFlags(data[13])
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.Options = t.Options[:0]
	if err := t.decodeOptions(data[tcpMinHeaderLen:hlen]); err != nil {
		return err
	}
	t.payload = data[hlen:]
	return nil
}

func (t *TCP) decodeOptions(opts []byte) error {
	for len(opts) > 0 {
		kind := opts[0]
		switch kind {
		case TCPOptEndOfList:
			return nil
		case TCPOptNop:
			opts = opts[1:]
		default:
			if len(opts) < 2 {
				return fmt.Errorf("%w: tcp option %d missing length", ErrMalformed, kind)
			}
			olen := int(opts[1])
			if olen < 2 || olen > len(opts) {
				return fmt.Errorf("%w: tcp option %d length %d", ErrMalformed, kind, olen)
			}
			t.Options = append(t.Options, TCPOption{Kind: kind, Data: opts[2:olen]})
			opts = opts[olen:]
		}
	}
	return nil
}

// optionsWireLen returns the padded on-wire length of t.Options.
func (t *TCP) optionsWireLen() int {
	n := 0
	for _, o := range t.Options {
		n += 2 + len(o.Data)
	}
	return (n + 3) &^ 3 // pad to 32-bit boundary
}

// SerializeTo implements SerializableLayer. DataOffset and Checksum are
// computed; SetNetworkLayerForChecksum must have been called on the buffer
// (or the checksum is left zero).
func (t *TCP) SerializeTo(b *SerializeBuffer) error {
	optLen := t.optionsWireLen()
	hlen := tcpMinHeaderLen + optLen
	segLen := hlen + len(b.Bytes())
	hdr, err := b.PrependBytes(hlen)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint16(hdr[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], t.DstPort)
	binary.BigEndian.PutUint32(hdr[4:8], t.Seq)
	binary.BigEndian.PutUint32(hdr[8:12], t.Ack)
	hdr[12] = uint8(hlen/4) << 4
	hdr[13] = uint8(t.Flags)
	binary.BigEndian.PutUint16(hdr[14:16], t.Window)
	hdr[16], hdr[17] = 0, 0
	binary.BigEndian.PutUint16(hdr[18:20], t.Urgent)
	off := tcpMinHeaderLen
	for _, o := range t.Options {
		hdr[off] = o.Kind
		hdr[off+1] = uint8(2 + len(o.Data))
		copy(hdr[off+2:], o.Data)
		off += 2 + len(o.Data)
	}
	for ; off < hlen; off++ {
		hdr[off] = TCPOptEndOfList
	}
	if src, dst, ok := b.checksumAddrs(); ok {
		sum := pseudoHeaderChecksum(src, dst, IPProtocolTCP, segLen)
		sum = sumBytes(sum, b.Bytes())
		binary.BigEndian.PutUint16(hdr[16:18], finishChecksum(sum))
	}
	return nil
}

// VerifyChecksum recomputes the TCP checksum over the given segment bytes
// (header+payload) and pseudo-header addresses, reporting whether it is
// consistent.
func VerifyTCPChecksum(src, dst netip.Addr, segment []byte) bool {
	sum := pseudoHeaderChecksum(src, dst, IPProtocolTCP, len(segment))
	return finishChecksum(sumBytes(sum, segment)) == 0
}
