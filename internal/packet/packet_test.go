package packet

import (
	"bytes"
	"errors"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func ip4(s string) netip.Addr { return netip.MustParseAddr(s) }

// buildUDPDNS serializes a full Ethernet/IPv4/UDP/DNS frame for tests.
func buildUDPDNS(t testing.TB, d *DNS, src, dst netip.Addr, sport, dport uint16) []byte {
	t.Helper()
	buf := NewSerializeBuffer()
	err := Serialize(buf,
		&Ethernet{SrcMAC: MACAddr{2, 0, 0, 0, 0, 1}, DstMAC: MACAddr{2, 0, 0, 0, 0, 2}, EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtocolUDP, SrcIP: src, DstIP: dst},
		&UDP{SrcPort: sport, DstPort: dport},
		d,
	)
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return append([]byte(nil), buf.Bytes()...)
}

func TestEthernetRoundTrip(t *testing.T) {
	e := &Ethernet{
		SrcMAC:    MACAddr{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff},
		DstMAC:    MACAddr{2, 4, 6, 8, 10, 12},
		EtherType: EtherTypeIPv4,
	}
	buf := NewSerializeBuffer()
	if _, err := buf.PrependBytes(4); err != nil {
		t.Fatal(err)
	}
	copy(buf.Bytes(), "data")
	if err := e.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	var got Ethernet
	if err := got.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got.SrcMAC != e.SrcMAC || got.DstMAC != e.DstMAC || got.EtherType != e.EtherType {
		t.Errorf("round trip mismatch: %+v vs %+v", got, e)
	}
	if string(got.LayerPayload()) != "data" {
		t.Errorf("payload = %q", got.LayerPayload())
	}
}

func TestEthernetTruncated(t *testing.T) {
	var e Ethernet
	err := e.DecodeFromBytes(make([]byte, 13))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("want ErrTruncated, got %v", err)
	}
}

func TestMACAddrPredicates(t *testing.T) {
	if !(MACAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}).IsBroadcast() {
		t.Error("broadcast not detected")
	}
	if !(MACAddr{0x01, 0, 0x5e, 1, 2, 3}).IsMulticast() {
		t.Error("multicast not detected")
	}
	if (MACAddr{2, 0, 0, 0, 0, 1}).IsMulticast() {
		t.Error("unicast misdetected as multicast")
	}
	if got := (MACAddr{0xaa, 0, 1, 2, 3, 4}).String(); got != "aa:00:01:02:03:04" {
		t.Errorf("String = %q", got)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	ip := &IPv4{
		TOS: 0x10, ID: 0x1234, Flags: IPv4DontFragment, TTL: 63,
		Protocol: IPProtocolUDP,
		SrcIP:    ip4("10.1.2.3"), DstIP: ip4("192.168.9.8"),
	}
	buf := NewSerializeBuffer()
	payload, _ := buf.PrependBytes(11)
	copy(payload, "hello world")
	if err := ip.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	// Header checksum must verify to zero when recomputed over the header.
	if got := internetChecksum(wire[:20]); got != 0 {
		t.Errorf("header checksum verify = %#x, want 0", got)
	}
	var got IPv4
	if err := got.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != ip.SrcIP || got.DstIP != ip.DstIP || got.TTL != 63 ||
		got.Protocol != IPProtocolUDP || got.Flags != IPv4DontFragment || got.ID != 0x1234 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if string(got.LayerPayload()) != "hello world" {
		t.Errorf("payload = %q", got.LayerPayload())
	}
	if got.Length != 31 {
		t.Errorf("Length = %d, want 31", got.Length)
	}
}

func TestIPv4Malformed(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"short", make([]byte, 10), ErrTruncated},
		{"version6", append([]byte{0x65}, make([]byte, 19)...), ErrMalformed},
		{"badIHL", append([]byte{0x42}, make([]byte, 19)...), ErrMalformed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ip IPv4
			if err := ip.DecodeFromBytes(tc.data); !errors.Is(err, tc.want) {
				t.Errorf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	ip := &IPv6{
		TrafficClass: 3, FlowLabel: 0x54321, NextHeader: IPProtocolTCP, HopLimit: 61,
		SrcIP: netip.MustParseAddr("2001:db8::1"), DstIP: netip.MustParseAddr("2001:db8::2"),
	}
	buf := NewSerializeBuffer()
	p, _ := buf.PrependBytes(5)
	copy(p, "six!!")
	if err := ip.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	var got IPv6
	if err := got.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != ip.SrcIP || got.DstIP != ip.DstIP || got.HopLimit != 61 ||
		got.FlowLabel != 0x54321 || got.TrafficClass != 3 || got.NextHeader != IPProtocolTCP {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.Length != 5 || string(got.LayerPayload()) != "six!!" {
		t.Errorf("payload: len=%d %q", got.Length, got.LayerPayload())
	}
}

func TestTCPRoundTripWithOptions(t *testing.T) {
	tc := &TCP{
		SrcPort: 443, DstPort: 53211, Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: TCPSyn | TCPAck, Window: 65000,
		Options: []TCPOption{
			{Kind: TCPOptMSS, Data: []byte{0x05, 0xb4}},
			{Kind: TCPOptWScale, Data: []byte{7}},
		},
	}
	src, dst := ip4("10.0.0.1"), ip4("10.0.0.2")
	buf := NewSerializeBuffer()
	buf.SetNetworkLayerForChecksum(src, dst)
	p, _ := buf.PrependBytes(3)
	copy(p, "abc")
	if err := tc.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	seg := buf.Bytes()
	if !VerifyTCPChecksum(src, dst, seg) {
		t.Error("tcp checksum does not verify")
	}
	var got TCP
	if err := got.DecodeFromBytes(seg); err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 443 || got.DstPort != 53211 || got.Seq != 0xdeadbeef ||
		!got.Flags.Has(TCPSyn|TCPAck) || got.Window != 65000 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if len(got.Options) != 2 || got.Options[0].Kind != TCPOptMSS || got.Options[1].Kind != TCPOptWScale {
		t.Errorf("options = %+v", got.Options)
	}
	if string(got.LayerPayload()) != "abc" {
		t.Errorf("payload = %q", got.LayerPayload())
	}
}

func TestTCPFlagsString(t *testing.T) {
	if got := (TCPSyn | TCPAck).String(); got != "SYN|ACK" {
		t.Errorf("got %q", got)
	}
	if got := TCPFlags(0).String(); got != "none" {
		t.Errorf("got %q", got)
	}
}

func TestTCPMalformedOptions(t *testing.T) {
	// DataOffset claims 6 words (4 bytes of options) but option length runs off.
	seg := make([]byte, 24)
	seg[12] = 6 << 4
	seg[20] = TCPOptMSS
	seg[21] = 10 // longer than remaining option space
	var tc TCP
	if err := tc.DecodeFromBytes(seg); !errors.Is(err, ErrMalformed) {
		t.Errorf("got %v, want ErrMalformed", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := &UDP{SrcPort: 53, DstPort: 31337}
	src, dst := ip4("8.8.8.8"), ip4("10.0.0.9")
	buf := NewSerializeBuffer()
	buf.SetNetworkLayerForChecksum(src, dst)
	p, _ := buf.PrependBytes(4)
	copy(p, "dns!")
	if err := u.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	dgram := buf.Bytes()
	if !VerifyUDPChecksum(src, dst, dgram) {
		t.Error("udp checksum does not verify")
	}
	var got UDP
	if err := got.DecodeFromBytes(dgram); err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 53 || got.DstPort != 31337 || got.Length != 12 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.NextLayerType() != LayerTypeDNS {
		t.Errorf("NextLayerType = %v, want DNS", got.NextLayerType())
	}
}

func TestICMPRoundTrip(t *testing.T) {
	ic := &ICMPv4{Type: ICMPv4EchoRequest, ID: 7, Seq: 42}
	buf := NewSerializeBuffer()
	p, _ := buf.PrependBytes(8)
	copy(p, "pingdata")
	if err := ic.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	if internetChecksum(buf.Bytes()) != 0 {
		t.Error("icmp checksum does not verify")
	}
	var got ICMPv4
	if err := got.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got.Type != ICMPv4EchoRequest || got.ID != 7 || got.Seq != 42 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := &ARP{
		Operation: 1,
		SenderHW:  MACAddr{2, 0, 0, 0, 0, 1}, SenderIP: [4]byte{10, 0, 0, 1},
		TargetIP: [4]byte{10, 0, 0, 2},
	}
	buf := NewSerializeBuffer()
	if err := a.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	var got ARP
	if err := got.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got.Operation != 1 || got.SenderHW != a.SenderHW || got.SenderIP != a.SenderIP || got.TargetIP != a.TargetIP {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestDNSRoundTrip(t *testing.T) {
	d := &DNS{
		ID: 0xbeef, QR: true, AA: true, RD: true, RA: true,
		Questions: []DNSQuestion{{Name: "www.example.edu", Type: DNSTypeA, Class: 1}},
		Answers: []DNSResourceRecord{
			{Name: "www.example.edu", Type: DNSTypeA, Class: 1, TTL: 300, Data: []byte{93, 184, 216, 34}},
			{Name: "www.example.edu", Type: DNSTypeTXT, Class: 1, TTL: 60, Data: bytes.Repeat([]byte{'x'}, 100)},
		},
	}
	buf := NewSerializeBuffer()
	if err := d.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	var got DNS
	if err := got.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got.ID != 0xbeef || !got.QR || !got.AA || !got.RD || !got.RA {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "www.example.edu" || got.Questions[0].Type != DNSTypeA {
		t.Errorf("questions = %+v", got.Questions)
	}
	if len(got.Answers) != 2 || !bytes.Equal(got.Answers[0].Data, []byte{93, 184, 216, 34}) {
		t.Errorf("answers = %+v", got.Answers)
	}
	if got.DecodedSize() != len(buf.Bytes()) {
		t.Errorf("DecodedSize = %d, want %d", got.DecodedSize(), len(buf.Bytes()))
	}
}

func TestDNSCompressedName(t *testing.T) {
	// Hand-built response: question "ab.cd", answer name is a pointer to it.
	msg := []byte{
		0x12, 0x34, 0x81, 0x80, 0, 1, 0, 1, 0, 0, 0, 0,
		2, 'a', 'b', 2, 'c', 'd', 0, // name at offset 12
		0, 1, 0, 1, // qtype A, class IN
		0xc0, 12, // pointer to offset 12
		0, 1, 0, 1, 0, 0, 1, 0, 0, 4, 1, 2, 3, 4,
	}
	var d DNS
	if err := d.DecodeFromBytes(msg); err != nil {
		t.Fatal(err)
	}
	if d.Questions[0].Name != "ab.cd" {
		t.Errorf("question name = %q", d.Questions[0].Name)
	}
	if d.Answers[0].Name != "ab.cd" {
		t.Errorf("answer name = %q", d.Answers[0].Name)
	}
}

func TestDNSCompressionLoopRejected(t *testing.T) {
	// Pointer at offset 12 points to itself.
	msg := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		0xc0, 12,
		0, 1, 0, 1,
	}
	var d DNS
	if err := d.DecodeFromBytes(msg); !errors.Is(err, ErrMalformed) {
		t.Errorf("got %v, want ErrMalformed", err)
	}
}

func TestDNSNameTooLongRejected(t *testing.T) {
	long := strings.Repeat("aaaaaaaaaaaaaaa.", 20) + "com" // > 255 bytes
	_, err := encodeDNSName(nil, long)
	if err != nil {
		return // encoder may reject; fine
	}
	// If encoder accepted, decoder must cap it.
	d := &DNS{Questions: []DNSQuestion{{Name: long, Type: DNSTypeA, Class: 1}}}
	buf := NewSerializeBuffer()
	if err := d.SerializeTo(buf); err != nil {
		return
	}
	var got DNS
	if err := got.DecodeFromBytes(buf.Bytes()); !errors.Is(err, ErrMalformed) {
		t.Errorf("decoder accepted >255 byte name: %v", err)
	}
}

func TestFullStackDecode(t *testing.T) {
	d := &DNS{
		ID: 1, RD: true,
		Questions: []DNSQuestion{{Name: "cs.ucsb.edu", Type: DNSTypeANY, Class: 1}},
	}
	frame := buildUDPDNS(t, d, ip4("10.3.0.5"), ip4("8.8.4.4"), 51234, 53)
	p, err := Decode(frame, LayerTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	wantChain := []LayerType{LayerTypeEthernet, LayerTypeIPv4, LayerTypeUDP, LayerTypeDNS}
	if len(p.Layers()) != len(wantChain) {
		t.Fatalf("layer chain %v", p.String())
	}
	for i, l := range p.Layers() {
		if l.LayerType() != wantChain[i] {
			t.Errorf("layer %d = %v, want %v", i, l.LayerType(), wantChain[i])
		}
	}
	dns := p.Layer(LayerTypeDNS).(*DNS)
	if dns.Questions[0].Name != "cs.ucsb.edu" || dns.Questions[0].Type != DNSTypeANY {
		t.Errorf("dns question = %+v", dns.Questions[0])
	}
	ft, ok := TupleFromPacket(p)
	if !ok || ft.Proto != IPProtocolUDP || ft.SrcPort != 51234 || ft.DstPort != 53 {
		t.Errorf("tuple = %v ok=%v", ft, ok)
	}
	if got := p.String(); got != "Ethernet/IPv4/UDP/DNS (81B)" && !strings.HasPrefix(got, "Ethernet/IPv4/UDP/DNS") {
		t.Errorf("String = %q", got)
	}
}

func TestDecodeTruncatedMarksPacket(t *testing.T) {
	d := &DNS{ID: 1, Questions: []DNSQuestion{{Name: "x.edu", Type: DNSTypeA, Class: 1}}}
	frame := buildUDPDNS(t, d, ip4("10.0.0.1"), ip4("10.0.0.2"), 1000, 53)
	p, err := Decode(frame[:20], LayerTypeEthernet) // cut mid-IPv4
	if err != nil {
		t.Fatalf("truncated decode should not error: %v", err)
	}
	if !p.Truncated {
		t.Error("Truncated flag not set")
	}
	if p.Layer(LayerTypeEthernet) == nil {
		t.Error("ethernet layer should have survived")
	}
}

func TestFiveTupleCanonical(t *testing.T) {
	f := FiveTuple{Proto: IPProtocolTCP, SrcIP: ip4("10.0.0.2"), DstIP: ip4("10.0.0.1"), SrcPort: 443, DstPort: 5555}
	c := f.Canonical()
	if c.SrcIP != ip4("10.0.0.1") {
		t.Errorf("canonical src = %v", c.SrcIP)
	}
	if f.Reverse().Canonical() != c {
		t.Error("canonical not direction independent")
	}
	if f.Hash() != f.Reverse().Hash() {
		t.Error("hash not direction independent")
	}
	if !c.IsCanonical() {
		t.Error("canonical form not reported canonical")
	}
}

func TestFiveTupleCanonicalProperty(t *testing.T) {
	// Property: Canonical is idempotent and direction-independent for
	// arbitrary tuples.
	fn := func(a, b [4]byte, pa, pb uint16, proto uint8) bool {
		f := FiveTuple{
			Proto: IPProtocol(proto),
			SrcIP: netip.AddrFrom4(a), DstIP: netip.AddrFrom4(b),
			SrcPort: pa, DstPort: pb,
		}
		c := f.Canonical()
		return c == c.Canonical() && c == f.Reverse().Canonical() && f.Hash() == f.Reverse().Hash()
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestSerializeBufferGrowth(t *testing.T) {
	b := NewSerializeBuffer()
	total := 0
	for i := 0; i < 100; i++ {
		p, err := b.PrependBytes(100)
		if err != nil {
			t.Fatal(err)
		}
		for j := range p {
			p[j] = byte(i)
		}
		total += 100
	}
	if len(b.Bytes()) != total {
		t.Errorf("len = %d, want %d", len(b.Bytes()), total)
	}
	// First 100 bytes must be from the LAST prepend (i=99).
	if b.Bytes()[0] != 99 {
		t.Errorf("front byte = %d, want 99", b.Bytes()[0])
	}
	b.Clear()
	if len(b.Bytes()) != 0 {
		t.Error("Clear did not empty buffer")
	}
}

func TestFlowParserSummary(t *testing.T) {
	d := &DNS{
		ID: 9, QR: true,
		Questions: []DNSQuestion{{Name: "big.example.org", Type: DNSTypeANY, Class: 1}},
		Answers: []DNSResourceRecord{
			{Name: "big.example.org", Type: DNSTypeTXT, Class: 1, TTL: 1, Data: bytes.Repeat([]byte{'a'}, 500)},
			{Name: "big.example.org", Type: DNSTypeTXT, Class: 1, TTL: 1, Data: bytes.Repeat([]byte{'b'}, 500)},
		},
	}
	frame := buildUDPDNS(t, d, ip4("8.8.8.8"), ip4("10.2.3.4"), 53, 40000)
	fp := NewFlowParser()
	var s Summary
	if err := fp.Parse(frame, &s); err != nil {
		t.Fatal(err)
	}
	if !s.HasIP || !s.HasUDP || s.HasTCP {
		t.Errorf("layer flags wrong: %+v", s)
	}
	if !s.IsDNS || !s.DNSResponse || s.DNSAnswerCnt != 2 || s.DNSQueryType != DNSTypeANY {
		t.Errorf("dns quick-look wrong: %+v", s)
	}
	if s.Tuple.SrcPort != 53 || s.Tuple.DstPort != 40000 {
		t.Errorf("tuple = %v", s.Tuple)
	}
	if s.WireLen != len(frame) {
		t.Errorf("WireLen = %d, want %d", s.WireLen, len(frame))
	}
	if s.DNSMsgLen < 1000 {
		t.Errorf("DNSMsgLen = %d, want >= 1000", s.DNSMsgLen)
	}
}

func TestFlowParserNonIP(t *testing.T) {
	a := &ARP{Operation: 1}
	buf := NewSerializeBuffer()
	if err := Serialize(buf, &Ethernet{EtherType: EtherTypeARP}, a); err != nil {
		t.Fatal(err)
	}
	fp := NewFlowParser()
	var s Summary
	if err := fp.Parse(buf.Bytes(), &s); !errors.Is(err, ErrNotIP) {
		t.Errorf("got %v, want ErrNotIP", err)
	}
	if s.WireLen != len(buf.Bytes()) {
		t.Error("WireLen should be set even for non-IP")
	}
}

func TestFlowParserReuseDoesNotLeakState(t *testing.T) {
	fp := NewFlowParser()
	d := &DNS{ID: 1, QR: true, Questions: []DNSQuestion{{Name: "a.b", Type: DNSTypeANY, Class: 1}}, Answers: []DNSResourceRecord{{Name: "a.b", Type: DNSTypeA, Class: 1, Data: []byte{1, 2, 3, 4}}}}
	dnsFrame := buildUDPDNS(t, d, ip4("1.1.1.1"), ip4("10.0.0.1"), 53, 9999)
	var s Summary
	if err := fp.Parse(dnsFrame, &s); err != nil || !s.IsDNS {
		t.Fatalf("dns parse: %v %+v", err, s)
	}
	// Now a plain TCP frame: DNS fields must be cleared.
	buf := NewSerializeBuffer()
	err := Serialize(buf,
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtocolTCP, SrcIP: ip4("10.0.0.1"), DstIP: ip4("10.0.0.2")},
		&TCP{SrcPort: 1234, DstPort: 80, Flags: TCPSyn},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := fp.Parse(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.IsDNS || s.DNSAnswerCnt != 0 || !s.HasTCP || !s.TCPFlags.Has(TCPSyn) {
		t.Errorf("stale state: %+v", s)
	}
}

func TestDecodeFuzzNoPanic(t *testing.T) {
	// Property: arbitrary bytes never panic the eager decoder or FlowParser.
	fn := func(data []byte) bool {
		_, _ = Decode(data, LayerTypeEthernet)
		var s Summary
		_ = NewFlowParser().Parse(data, &s)
		return true
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(fn, cfg); err != nil {
		t.Error(err)
	}
}

func TestLayerTypeString(t *testing.T) {
	if LayerTypeDNS.String() != "DNS" || LayerType(200).String() != "LayerType(200)" {
		t.Error("LayerType.String wrong")
	}
}

func BenchmarkFlowParser(b *testing.B) {
	d := &DNS{ID: 9, QR: true, Questions: []DNSQuestion{{Name: "www.ucsb.edu", Type: DNSTypeA, Class: 1}}}
	frame := buildUDPDNS(b, d, ip4("8.8.8.8"), ip4("10.2.3.4"), 53, 40000)
	fp := NewFlowParser()
	var s Summary
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		if err := fp.Parse(frame, &s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEagerDecode(b *testing.B) {
	d := &DNS{ID: 9, QR: true, Questions: []DNSQuestion{{Name: "www.ucsb.edu", Type: DNSTypeA, Class: 1}}}
	frame := buildUDPDNS(b, d, ip4("8.8.8.8"), ip4("10.2.3.4"), 53, 40000)
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame, LayerTypeEthernet); err != nil {
			b.Fatal(err)
		}
	}
}
