package packet_test

import (
	"bytes"
	"testing"
	"time"

	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

// fuzzSeeds returns a mix of realistic frames (from the deterministic
// traffic generators, so the corpus exercises real Ethernet/IPv4/IPv6/
// TCP/UDP/DNS layouts) plus truncations and a few hand-built degenerate
// frames.
func fuzzSeeds() [][]byte {
	plan := traffic.DefaultPlan(20)
	var seeds [][]byte
	add := func(g traffic.Generator, n int) {
		var f traffic.Frame
		for i := 0; i < n; i++ {
			if !g.Next(&f) {
				return
			}
			seeds = append(seeds, append([]byte(nil), f.Data...))
		}
	}
	add(traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 40, Duration: time.Second, Seed: 11}), 32)
	add(traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(3),
		Duration: time.Second, Rate: 50, Seed: 12,
	}), 16)

	// Truncations of a real frame stress every length check.
	if len(seeds) > 0 {
		full := seeds[0]
		for _, n := range []int{0, 1, 13, 14, 20, 33, 34, 41, 42, 54} {
			if n <= len(full) {
				seeds = append(seeds, full[:n])
			}
		}
	}
	seeds = append(seeds,
		[]byte{},
		bytes.Repeat([]byte{0xff}, 64),
		bytes.Repeat([]byte{0x00}, 64),
	)
	return seeds
}

// FuzzParse drives the allocation-free fast-path decoder with arbitrary
// frames. The parser sits directly behind capture ingest, so it must
// never panic and must keep its documented invariants on any input.
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		fp := packet.NewFlowParser()
		var s packet.Summary
		err := fp.Parse(frame, &s)

		// WireLen records the frame length whether or not parsing succeeds.
		if s.WireLen != len(frame) {
			t.Fatalf("WireLen = %d, frame length %d", s.WireLen, len(frame))
		}
		if err != nil {
			return
		}
		// Transport flags are mutually exclusive and imply HasIP.
		set := 0
		for _, b := range []bool{s.HasTCP, s.HasUDP, s.HasICMP} {
			if b {
				set++
			}
		}
		if set > 1 {
			t.Fatalf("multiple transport flags set: %+v", s)
		}
		if set == 1 && !s.HasIP {
			t.Fatalf("transport without IP: %+v", s)
		}
		if s.HasTCP && s.Tuple.Proto != packet.IPProtocolTCP {
			t.Fatalf("HasTCP but proto %v", s.Tuple.Proto)
		}
		if s.HasUDP && s.Tuple.Proto != packet.IPProtocolUDP {
			t.Fatalf("HasUDP but proto %v", s.Tuple.Proto)
		}
		if s.IsDNS && !s.HasUDP {
			t.Fatalf("DNS quick-look without UDP: %+v", s)
		}
		if s.PayloadLen < 0 || s.IPLen < 0 || s.DNSMsgLen < 0 {
			t.Fatalf("negative length: %+v", s)
		}

		// Parsing is deterministic: a reused parser yields the same summary.
		var s2 packet.Summary
		if err2 := fp.Parse(frame, &s2); err2 != nil {
			t.Fatalf("reparse failed: %v", err2)
		}
		if s != s2 {
			t.Fatalf("reparse diverged:\n%+v\n%+v", s, s2)
		}
	})
}

// FuzzDecode drives the full layer decoder (the slow, allocating path
// used by pcap tooling) with the same corpus.
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		p, err := packet.Decode(frame, packet.LayerTypeEthernet)
		if err != nil {
			return
		}
		// A successful decode yields at least one layer unless the frame
		// was empty or ran out mid-layer (Truncated keeps what it has).
		if len(p.Layers()) == 0 && len(frame) > 0 && !p.Truncated {
			t.Fatal("decoded packet has no layers")
		}
		if !bytes.Equal(p.Data(), frame) {
			t.Fatal("Data() does not round-trip the input frame")
		}
	})
}
