package packet

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// DNSType is a DNS RR/QTYPE code.
type DNSType uint16

// Record types used by campus traffic and the amplification attack model.
const (
	DNSTypeA     DNSType = 1
	DNSTypeNS    DNSType = 2
	DNSTypeCNAME DNSType = 5
	DNSTypeSOA   DNSType = 6
	DNSTypePTR   DNSType = 12
	DNSTypeMX    DNSType = 15
	DNSTypeTXT   DNSType = 16
	DNSTypeAAAA  DNSType = 28
	DNSTypeANY   DNSType = 255
)

// String returns the RR type mnemonic.
func (t DNSType) String() string {
	switch t {
	case DNSTypeA:
		return "A"
	case DNSTypeNS:
		return "NS"
	case DNSTypeCNAME:
		return "CNAME"
	case DNSTypeSOA:
		return "SOA"
	case DNSTypePTR:
		return "PTR"
	case DNSTypeMX:
		return "MX"
	case DNSTypeTXT:
		return "TXT"
	case DNSTypeAAAA:
		return "AAAA"
	case DNSTypeANY:
		return "ANY"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// DNSQuestion is one entry of the question section.
type DNSQuestion struct {
	Name  string
	Type  DNSType
	Class uint16
}

// DNSResourceRecord is one answer/authority/additional record.
type DNSResourceRecord struct {
	Name  string
	Type  DNSType
	Class uint16
	TTL   uint32
	Data  []byte // raw RDATA
}

// DNS header flag masks.
const (
	dnsFlagQR = 1 << 15
	dnsFlagAA = 1 << 10
	dnsFlagTC = 1 << 9
	dnsFlagRD = 1 << 8
	dnsFlagRA = 1 << 7
)

// DNS is a DNS message (header + all four sections). RDATA is kept raw.
type DNS struct {
	ID             uint16
	QR             bool // true = response
	Opcode         uint8
	AA, TC, RD, RA bool
	ResponseCode   uint8
	Questions      []DNSQuestion
	Answers        []DNSResourceRecord
	Authorities    []DNSResourceRecord
	Additionals    []DNSResourceRecord
	decodedSize    int
}

const dnsHeaderLen = 12

// maxDNSNameLen bounds name decompression to defeat pointer loops.
const maxDNSNameLen = 255

// LayerType implements Layer.
func (*DNS) LayerType() LayerType { return LayerTypeDNS }

// LayerPayload implements Layer; DNS is terminal.
func (*DNS) LayerPayload() []byte { return nil }

// NextLayerType implements DecodingLayer.
func (*DNS) NextLayerType() LayerType { return LayerTypeInvalid }

// DecodedSize reports the total message size consumed by the last decode.
func (d *DNS) DecodedSize() int { return d.decodedSize }

// DecodeFromBytes implements DecodingLayer, including compressed-name
// handling with loop protection.
func (d *DNS) DecodeFromBytes(data []byte) error {
	if len(data) < dnsHeaderLen {
		return fmt.Errorf("%w: dns needs %d bytes, have %d", ErrTruncated, dnsHeaderLen, len(data))
	}
	d.ID = binary.BigEndian.Uint16(data[0:2])
	flags := binary.BigEndian.Uint16(data[2:4])
	d.QR = flags&dnsFlagQR != 0
	d.Opcode = uint8(flags >> 11 & 0xf)
	d.AA = flags&dnsFlagAA != 0
	d.TC = flags&dnsFlagTC != 0
	d.RD = flags&dnsFlagRD != 0
	d.RA = flags&dnsFlagRA != 0
	d.ResponseCode = uint8(flags & 0xf)
	qd := int(binary.BigEndian.Uint16(data[4:6]))
	an := int(binary.BigEndian.Uint16(data[6:8]))
	ns := int(binary.BigEndian.Uint16(data[8:10]))
	ar := int(binary.BigEndian.Uint16(data[10:12]))

	d.Questions = d.Questions[:0]
	d.Answers = d.Answers[:0]
	d.Authorities = d.Authorities[:0]
	d.Additionals = d.Additionals[:0]

	off := dnsHeaderLen
	var err error
	for i := 0; i < qd; i++ {
		var q DNSQuestion
		q.Name, off, err = decodeDNSName(data, off)
		if err != nil {
			return err
		}
		if off+4 > len(data) {
			return fmt.Errorf("%w: dns question fixed part", ErrTruncated)
		}
		q.Type = DNSType(binary.BigEndian.Uint16(data[off : off+2]))
		q.Class = binary.BigEndian.Uint16(data[off+2 : off+4])
		off += 4
		d.Questions = append(d.Questions, q)
	}
	sections := []struct {
		n   int
		dst *[]DNSResourceRecord
	}{{an, &d.Answers}, {ns, &d.Authorities}, {ar, &d.Additionals}}
	for _, sec := range sections {
		for i := 0; i < sec.n; i++ {
			var rr DNSResourceRecord
			rr.Name, off, err = decodeDNSName(data, off)
			if err != nil {
				return err
			}
			if off+10 > len(data) {
				return fmt.Errorf("%w: dns rr fixed part", ErrTruncated)
			}
			rr.Type = DNSType(binary.BigEndian.Uint16(data[off : off+2]))
			rr.Class = binary.BigEndian.Uint16(data[off+2 : off+4])
			rr.TTL = binary.BigEndian.Uint32(data[off+4 : off+8])
			rdlen := int(binary.BigEndian.Uint16(data[off+8 : off+10]))
			off += 10
			if off+rdlen > len(data) {
				return fmt.Errorf("%w: dns rdata %d bytes", ErrTruncated, rdlen)
			}
			rr.Data = data[off : off+rdlen]
			off += rdlen
			*sec.dst = append(*sec.dst, rr)
		}
	}
	d.decodedSize = off
	return nil
}

// decodeDNSName decodes a possibly-compressed name at data[off:], returning
// the dotted name and the offset just past the name's in-place bytes.
func decodeDNSName(data []byte, off int) (string, int, error) {
	var sb strings.Builder
	jumped := false
	end := off
	hops := 0
	for {
		if off >= len(data) {
			return "", 0, fmt.Errorf("%w: dns name", ErrTruncated)
		}
		b := data[off]
		switch {
		case b == 0:
			if !jumped {
				end = off + 1
			}
			name := sb.String()
			if name == "" {
				name = "."
			}
			return name, end, nil
		case b&0xc0 == 0xc0:
			if off+1 >= len(data) {
				return "", 0, fmt.Errorf("%w: dns compression pointer", ErrTruncated)
			}
			ptr := int(binary.BigEndian.Uint16(data[off:off+2]) & 0x3fff)
			if !jumped {
				end = off + 2
				jumped = true
			}
			if hops++; hops > 16 || ptr >= len(data) {
				return "", 0, fmt.Errorf("%w: dns compression loop", ErrMalformed)
			}
			off = ptr
		case b&0xc0 != 0:
			return "", 0, fmt.Errorf("%w: dns label flag %#x", ErrMalformed, b&0xc0)
		default:
			l := int(b)
			if off+1+l > len(data) {
				return "", 0, fmt.Errorf("%w: dns label", ErrTruncated)
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			if sb.Len()+l > maxDNSNameLen {
				return "", 0, fmt.Errorf("%w: dns name too long", ErrMalformed)
			}
			sb.Write(data[off+1 : off+1+l])
			off += 1 + l
		}
	}
}

// encodeDNSName appends the uncompressed wire form of name to dst.
func encodeDNSName(dst []byte, name string) ([]byte, error) {
	if name == "." || name == "" {
		return append(dst, 0), nil
	}
	for _, label := range strings.Split(strings.TrimSuffix(name, "."), ".") {
		if len(label) == 0 || len(label) > 63 {
			return nil, fmt.Errorf("%w: dns label %q", ErrMalformed, label)
		}
		dst = append(dst, byte(len(label)))
		dst = append(dst, label...)
	}
	return append(dst, 0), nil
}

// SerializeTo implements SerializableLayer (no name compression).
func (d *DNS) SerializeTo(b *SerializeBuffer) error {
	var msg []byte
	var hdr [dnsHeaderLen]byte
	binary.BigEndian.PutUint16(hdr[0:2], d.ID)
	var flags uint16
	if d.QR {
		flags |= dnsFlagQR
	}
	flags |= uint16(d.Opcode&0xf) << 11
	if d.AA {
		flags |= dnsFlagAA
	}
	if d.TC {
		flags |= dnsFlagTC
	}
	if d.RD {
		flags |= dnsFlagRD
	}
	if d.RA {
		flags |= dnsFlagRA
	}
	flags |= uint16(d.ResponseCode & 0xf)
	binary.BigEndian.PutUint16(hdr[2:4], flags)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(len(d.Questions)))
	binary.BigEndian.PutUint16(hdr[6:8], uint16(len(d.Answers)))
	binary.BigEndian.PutUint16(hdr[8:10], uint16(len(d.Authorities)))
	binary.BigEndian.PutUint16(hdr[10:12], uint16(len(d.Additionals)))
	msg = append(msg, hdr[:]...)
	var err error
	for _, q := range d.Questions {
		if msg, err = encodeDNSName(msg, q.Name); err != nil {
			return err
		}
		msg = binary.BigEndian.AppendUint16(msg, uint16(q.Type))
		msg = binary.BigEndian.AppendUint16(msg, q.Class)
	}
	for _, sec := range [][]DNSResourceRecord{d.Answers, d.Authorities, d.Additionals} {
		for _, rr := range sec {
			if msg, err = encodeDNSName(msg, rr.Name); err != nil {
				return err
			}
			msg = binary.BigEndian.AppendUint16(msg, uint16(rr.Type))
			msg = binary.BigEndian.AppendUint16(msg, rr.Class)
			msg = binary.BigEndian.AppendUint32(msg, rr.TTL)
			msg = binary.BigEndian.AppendUint16(msg, uint16(len(rr.Data)))
			msg = append(msg, rr.Data...)
		}
	}
	dst, err := b.PrependBytes(len(msg))
	if err != nil {
		return err
	}
	copy(dst, msg)
	return nil
}
