package packet

import (
	"encoding/binary"
	"fmt"
)

// MACAddr is a 48-bit Ethernet hardware address.
type MACAddr [6]byte

// String renders the conventional colon-hex form.
func (m MACAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is ff:ff:ff:ff:ff:ff.
func (m MACAddr) IsBroadcast() bool {
	return m == MACAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// IsMulticast reports whether the group bit is set.
func (m MACAddr) IsMulticast() bool { return m[0]&1 == 1 }

// EtherType values understood by the decoder.
type EtherType uint16

const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
	EtherTypeIPv6 EtherType = 0x86dd
)

const ethernetHeaderLen = 14

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	DstMAC, SrcMAC MACAddr
	EtherType      EtherType
	payload        []byte
}

// LayerType implements Layer.
func (*Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// LayerPayload implements Layer.
func (e *Ethernet) LayerPayload() []byte { return e.payload }

// DecodeFromBytes implements DecodingLayer.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < ethernetHeaderLen {
		return fmt.Errorf("%w: ethernet needs %d bytes, have %d", ErrTruncated, ethernetHeaderLen, len(data))
	}
	copy(e.DstMAC[:], data[0:6])
	copy(e.SrcMAC[:], data[6:12])
	e.EtherType = EtherType(binary.BigEndian.Uint16(data[12:14]))
	e.payload = data[ethernetHeaderLen:]
	return nil
}

// NextLayerType implements DecodingLayer.
func (e *Ethernet) NextLayerType() LayerType {
	switch e.EtherType {
	case EtherTypeIPv4:
		return LayerTypeIPv4
	case EtherTypeIPv6:
		return LayerTypeIPv6
	case EtherTypeARP:
		return LayerTypeARP
	default:
		return LayerTypePayload
	}
}

// SerializeTo implements SerializableLayer.
func (e *Ethernet) SerializeTo(b *SerializeBuffer) error {
	hdr, err := b.PrependBytes(ethernetHeaderLen)
	if err != nil {
		return err
	}
	copy(hdr[0:6], e.DstMAC[:])
	copy(hdr[6:12], e.SrcMAC[:])
	binary.BigEndian.PutUint16(hdr[12:14], uint16(e.EtherType))
	return nil
}

// ARP is an Address Resolution Protocol packet (IPv4-over-Ethernet only).
type ARP struct {
	Operation          uint16 // 1 request, 2 reply
	SenderHW, TargetHW MACAddr
	SenderIP, TargetIP [4]byte
}

const arpLen = 28

// LayerType implements Layer.
func (*ARP) LayerType() LayerType { return LayerTypeARP }

// LayerPayload implements Layer; ARP is terminal.
func (*ARP) LayerPayload() []byte { return nil }

// NextLayerType implements DecodingLayer.
func (*ARP) NextLayerType() LayerType { return LayerTypeInvalid }

// DecodeFromBytes implements DecodingLayer.
func (a *ARP) DecodeFromBytes(data []byte) error {
	if len(data) < arpLen {
		return fmt.Errorf("%w: arp needs %d bytes, have %d", ErrTruncated, arpLen, len(data))
	}
	htype := binary.BigEndian.Uint16(data[0:2])
	ptype := binary.BigEndian.Uint16(data[2:4])
	if htype != 1 || ptype != uint16(EtherTypeIPv4) || data[4] != 6 || data[5] != 4 {
		return fmt.Errorf("%w: arp hw/proto %d/%#x", ErrUnsupported, htype, ptype)
	}
	a.Operation = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderHW[:], data[8:14])
	copy(a.SenderIP[:], data[14:18])
	copy(a.TargetHW[:], data[18:24])
	copy(a.TargetIP[:], data[24:28])
	return nil
}

// SerializeTo implements SerializableLayer.
func (a *ARP) SerializeTo(b *SerializeBuffer) error {
	hdr, err := b.PrependBytes(arpLen)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint16(hdr[0:2], 1)
	binary.BigEndian.PutUint16(hdr[2:4], uint16(EtherTypeIPv4))
	hdr[4], hdr[5] = 6, 4
	binary.BigEndian.PutUint16(hdr[6:8], a.Operation)
	copy(hdr[8:14], a.SenderHW[:])
	copy(hdr[14:18], a.SenderIP[:])
	copy(hdr[18:24], a.TargetHW[:])
	copy(hdr[24:28], a.TargetIP[:])
	return nil
}
