package privacy

import (
	"fmt"
	"math"
	"math/rand"
)

// The data store itself never leaves the campus (§3), but §5 anticipates
// cross-campus comparisons and industry collaborations built on *released
// aggregates* ("a campus network-based study may identify precisely-defined
// problem-specific small subsets of data"). Released counts go through an
// ε-differentially-private Laplace mechanism so no single user's traffic is
// identifiable from a release.

// ReleaseBudget tracks a release campaign's cumulative privacy loss and
// refuses queries past the agreed ε (sequential composition).
type ReleaseBudget struct {
	epsilonTotal float64
	spent        float64
	rng          *rand.Rand
}

// NewReleaseBudget creates a budget of epsilonTotal; seed makes releases
// reproducible in experiments (production would use crypto randomness).
func NewReleaseBudget(epsilonTotal float64, seed int64) (*ReleaseBudget, error) {
	if epsilonTotal <= 0 {
		return nil, fmt.Errorf("privacy: epsilon must be positive, got %v", epsilonTotal)
	}
	return &ReleaseBudget{
		epsilonTotal: epsilonTotal,
		rng:          rand.New(rand.NewSource(seed)),
	}, nil
}

// Remaining returns the unspent budget.
func (b *ReleaseBudget) Remaining() float64 { return b.epsilonTotal - b.spent }

// ReleaseCount releases a count with Laplace noise calibrated to
// sensitivity/epsilon, charging epsilon to the budget. sensitivity is the
// maximum change one user can cause in the count (1 for per-user counts,
// larger for per-packet counts with a per-user cap).
func (b *ReleaseBudget) ReleaseCount(trueCount float64, sensitivity, epsilon float64) (float64, error) {
	if epsilon <= 0 || sensitivity <= 0 {
		return 0, fmt.Errorf("privacy: epsilon and sensitivity must be positive")
	}
	if b.spent+epsilon > b.epsilonTotal+1e-12 {
		return 0, fmt.Errorf("privacy: release budget exhausted (spent %.3g of %.3g, requested %.3g)",
			b.spent, b.epsilonTotal, epsilon)
	}
	b.spent += epsilon
	noised := trueCount + b.laplace(sensitivity/epsilon)
	if noised < 0 {
		noised = 0 // counts are non-negative; clamping is post-processing
	}
	return noised, nil
}

// ReleaseHistogram releases a histogram under one epsilon charge: the
// buckets partition the data, so parallel composition applies and each
// bucket gets the full epsilon.
func (b *ReleaseBudget) ReleaseHistogram(counts map[string]float64, sensitivity, epsilon float64) (map[string]float64, error) {
	if epsilon <= 0 || sensitivity <= 0 {
		return nil, fmt.Errorf("privacy: epsilon and sensitivity must be positive")
	}
	if b.spent+epsilon > b.epsilonTotal+1e-12 {
		return nil, fmt.Errorf("privacy: release budget exhausted")
	}
	b.spent += epsilon
	out := make(map[string]float64, len(counts))
	for k, v := range counts {
		n := v + b.laplace(sensitivity/epsilon)
		if n < 0 {
			n = 0
		}
		out[k] = n
	}
	return out, nil
}

// laplace draws Laplace(0, scale) noise by inverse CDF.
func (b *ReleaseBudget) laplace(scale float64) float64 {
	u := b.rng.Float64() - 0.5
	return -scale * math.Copysign(math.Log(1-2*math.Abs(u)), u)
}
