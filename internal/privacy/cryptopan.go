// Package privacy implements the "privacy-preserving data collection" stage
// of the paper's Figure 1: prefix-preserving IP anonymization (the
// Crypto-PAn construction), payload handling policies, a collection policy
// engine deciding what may be stored in what form, and a k-anonymity audit
// for datasets leaving the IT organization's custody.
package privacy

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"fmt"
	"net/netip"
	"sync"
)

// Anonymizer maps IP addresses to anonymized IP addresses such that two
// addresses sharing a k-bit prefix map to addresses sharing a k-bit prefix
// (prefix-preserving, the Crypto-PAn property). The mapping is a bijection
// determined entirely by the key, so anonymization is consistent across
// capture sessions — flows remain linkable without revealing hosts.
type Anonymizer struct {
	block cipher.Block
	pad   [16]byte

	mu    sync.RWMutex
	cache map[netip.Addr]netip.Addr
}

// NewAnonymizer derives an anonymizer from a 32-byte key: 16 bytes key the
// AES block, 16 bytes form the padding. Shorter secrets are stretched with
// SHA-256.
func NewAnonymizer(secret []byte) (*Anonymizer, error) {
	if len(secret) == 0 {
		return nil, fmt.Errorf("privacy: empty anonymization secret")
	}
	var key [32]byte
	if len(secret) == 32 {
		copy(key[:], secret)
	} else {
		key = sha256.Sum256(secret)
	}
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, fmt.Errorf("privacy: %w", err)
	}
	a := &Anonymizer{block: block, cache: make(map[netip.Addr]netip.Addr)}
	copy(a.pad[:], key[16:32])
	return a, nil
}

// Anonymize returns the prefix-preserving anonymized form of addr.
// Results are cached; the method is safe for concurrent use.
func (a *Anonymizer) Anonymize(addr netip.Addr) netip.Addr {
	a.mu.RLock()
	got, ok := a.cache[addr]
	a.mu.RUnlock()
	if ok {
		return got
	}
	var out netip.Addr
	if addr.Is4() {
		out = a.anon4(addr)
	} else {
		out = a.anon16(addr)
	}
	a.mu.Lock()
	a.cache[addr] = out
	a.mu.Unlock()
	return out
}

// anon4 runs the 32-round Crypto-PAn construction.
func (a *Anonymizer) anon4(addr netip.Addr) netip.Addr {
	orig := addr.As4()
	origBits := uint32(orig[0])<<24 | uint32(orig[1])<<16 | uint32(orig[2])<<8 | uint32(orig[3])
	var result uint32
	var input, output [16]byte
	for i := 0; i < 32; i++ {
		// input = first i bits of the original address, then pad bits.
		copy(input[:], a.pad[:])
		if i > 0 {
			mask := uint32(0xffffffff) << (32 - i)
			mixed := origBits&mask | (uint32(a.pad[0])<<24|uint32(a.pad[1])<<16|uint32(a.pad[2])<<8|uint32(a.pad[3]))&^mask
			input[0] = byte(mixed >> 24)
			input[1] = byte(mixed >> 16)
			input[2] = byte(mixed >> 8)
			input[3] = byte(mixed)
		}
		a.block.Encrypt(output[:], input[:])
		result |= uint32(output[0]>>7) << (31 - i)
	}
	anon := origBits ^ result
	return netip.AddrFrom4([4]byte{byte(anon >> 24), byte(anon >> 16), byte(anon >> 8), byte(anon)})
}

// anon16 extends the construction to 128 bits for IPv6.
func (a *Anonymizer) anon16(addr netip.Addr) netip.Addr {
	orig := addr.As16()
	var result [16]byte
	var input, output [16]byte
	for i := 0; i < 128; i++ {
		copy(input[:], a.pad[:])
		// Mix the first i bits of the original over the pad.
		for b := 0; b < 16; b++ {
			bitsInByte := i - b*8
			switch {
			case bitsInByte >= 8:
				input[b] = orig[b]
			case bitsInByte > 0:
				mask := byte(0xff) << (8 - bitsInByte)
				input[b] = orig[b]&mask | a.pad[b]&^mask
			}
		}
		a.block.Encrypt(output[:], input[:])
		if output[0]>>7 == 1 {
			result[i/8] |= 1 << (7 - i%8)
		}
	}
	var anon [16]byte
	for i := range anon {
		anon[i] = orig[i] ^ result[i]
	}
	return netip.AddrFrom16(anon)
}

// CacheSize reports how many addresses have been anonymized so far.
func (a *Anonymizer) CacheSize() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.cache)
}

// CommonPrefixLen returns the length of the longest common bit-prefix of
// two addresses of the same family (the quantity Crypto-PAn preserves).
func CommonPrefixLen(a, b netip.Addr) int {
	ab, bb := a.As16(), b.As16()
	start := 0
	if a.Is4() && b.Is4() {
		start = 96 // compare only the embedded IPv4 bits
	}
	n := 0
	for i := start / 8; i < 16; i++ {
		x := ab[i] ^ bb[i]
		if x == 0 {
			n += 8
			continue
		}
		for m := byte(0x80); m != 0; m >>= 1 {
			if x&m != 0 {
				return n
			}
			n++
		}
	}
	return n
}
