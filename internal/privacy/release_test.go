package privacy

import (
	"math"
	"testing"
)

func TestReleaseBudgetEnforced(t *testing.T) {
	b, err := NewReleaseBudget(1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReleaseCount(100, 1, 0.6); err != nil {
		t.Fatal(err)
	}
	if b.Remaining() < 0.39 || b.Remaining() > 0.41 {
		t.Errorf("remaining = %v", b.Remaining())
	}
	if _, err := b.ReleaseCount(100, 1, 0.6); err == nil {
		t.Error("budget overrun allowed")
	}
	if _, err := b.ReleaseCount(100, 1, 0.4); err != nil {
		t.Errorf("exact remaining budget refused: %v", err)
	}
}

func TestReleaseCountNoiseScales(t *testing.T) {
	// Noise magnitude ~ sensitivity/epsilon: variance of Laplace(s) is
	// 2s². Sample and compare two epsilons.
	meanAbsErr := func(eps float64, seed int64) float64 {
		b, _ := NewReleaseBudget(5000, seed)
		var sum float64
		const n = 3000
		for i := 0; i < n; i++ {
			got, err := b.ReleaseCount(1e6, 1, eps)
			if err != nil {
				t.Fatal(err)
			}
			sum += math.Abs(got - 1e6)
		}
		return sum / n
	}
	loose := meanAbsErr(0.1, 2) // scale 10
	tight := meanAbsErr(1.0, 3) // scale 1
	if loose < 5*tight {
		t.Errorf("noise did not scale with 1/epsilon: %v vs %v", loose, tight)
	}
	// Mean absolute error of Laplace(s) is s.
	if tight < 0.7 || tight > 1.4 {
		t.Errorf("eps=1 mean abs error = %v, want ~1", tight)
	}
}

func TestReleaseCountClampsNegative(t *testing.T) {
	b, _ := NewReleaseBudget(1000, 4)
	for i := 0; i < 500; i++ {
		got, err := b.ReleaseCount(0.5, 1, 0.05) // tiny count, huge noise
		if err != nil {
			t.Fatal(err)
		}
		if got < 0 {
			t.Fatalf("negative release %v", got)
		}
	}
}

func TestReleaseHistogram(t *testing.T) {
	b, _ := NewReleaseBudget(1.0, 5)
	counts := map[string]float64{"dns": 5000, "web": 80000, "ssh": 120}
	got, err := b.ReleaseHistogram(counts, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("buckets = %d", len(got))
	}
	for k, v := range got {
		if math.Abs(v-counts[k]) > 100 {
			t.Errorf("bucket %s noised too heavily: %v vs %v", k, v, counts[k])
		}
	}
	// Parallel composition: one charge for the whole histogram.
	if r := b.Remaining(); math.Abs(r-0.5) > 1e-9 {
		t.Errorf("remaining = %v, want 0.5", r)
	}
}

func TestReleaseValidation(t *testing.T) {
	if _, err := NewReleaseBudget(0, 1); err == nil {
		t.Error("zero epsilon accepted")
	}
	b, _ := NewReleaseBudget(1, 1)
	if _, err := b.ReleaseCount(1, 0, 0.1); err == nil {
		t.Error("zero sensitivity accepted")
	}
	if _, err := b.ReleaseCount(1, 1, 0); err == nil {
		t.Error("zero epsilon release accepted")
	}
	if _, err := b.ReleaseHistogram(nil, 1, 0); err == nil {
		t.Error("zero epsilon histogram accepted")
	}
}
