package privacy

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

func mustAnon(t testing.TB) *Anonymizer {
	t.Helper()
	a, err := NewAnonymizer([]byte("campus-it-secret"))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAnonymizerDeterministic(t *testing.T) {
	a1, _ := NewAnonymizer([]byte("key-A"))
	a2, _ := NewAnonymizer([]byte("key-A"))
	a3, _ := NewAnonymizer([]byte("key-B"))
	addr := netip.MustParseAddr("10.3.7.42")
	if a1.Anonymize(addr) != a2.Anonymize(addr) {
		t.Error("same key produced different mappings")
	}
	if a1.Anonymize(addr) == a3.Anonymize(addr) {
		t.Error("different keys produced identical mapping (astronomically unlikely)")
	}
	if a1.Anonymize(addr) == addr {
		t.Error("address mapped to itself (astronomically unlikely)")
	}
}

func TestAnonymizerPrefixPreserving(t *testing.T) {
	a := mustAnon(t)
	cases := []struct{ x, y string }{
		{"10.3.0.1", "10.3.0.2"},    // /30-ish neighbors
		{"10.3.0.1", "10.3.99.200"}, // same /16
		{"10.3.0.1", "10.200.0.1"},  // same /8
		{"10.3.0.1", "192.168.0.1"}, // different /8
		{"128.111.1.1", "128.111.255.254"},
	}
	for _, c := range cases {
		x, y := netip.MustParseAddr(c.x), netip.MustParseAddr(c.y)
		before := CommonPrefixLen(x, y)
		after := CommonPrefixLen(a.Anonymize(x), a.Anonymize(y))
		if before != after {
			t.Errorf("prefix not preserved for %s/%s: before=%d after=%d", c.x, c.y, before, after)
		}
	}
}

func TestAnonymizerPrefixPreservingProperty(t *testing.T) {
	a := mustAnon(t)
	fn := func(x, y [4]byte) bool {
		ax, ay := netip.AddrFrom4(x), netip.AddrFrom4(y)
		return CommonPrefixLen(ax, ay) == CommonPrefixLen(a.Anonymize(ax), a.Anonymize(ay))
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAnonymizerInjectiveProperty(t *testing.T) {
	a := mustAnon(t)
	seen := map[netip.Addr]netip.Addr{}
	fn := func(x [4]byte) bool {
		addr := netip.AddrFrom4(x)
		out := a.Anonymize(addr)
		if prev, ok := seen[out]; ok && prev != addr {
			return false // collision = not injective
		}
		seen[out] = addr
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAnonymizerIPv6(t *testing.T) {
	a := mustAnon(t)
	x := netip.MustParseAddr("2001:db8:aaaa::1")
	y := netip.MustParseAddr("2001:db8:aaaa::2")
	z := netip.MustParseAddr("2620:0:1::5")
	if CommonPrefixLen(a.Anonymize(x), a.Anonymize(y)) != CommonPrefixLen(x, y) {
		t.Error("ipv6 prefix not preserved (close pair)")
	}
	if CommonPrefixLen(a.Anonymize(x), a.Anonymize(z)) != CommonPrefixLen(x, z) {
		t.Error("ipv6 prefix not preserved (far pair)")
	}
	if a.Anonymize(x) == x {
		t.Error("ipv6 identity mapping")
	}
}

func TestAnonymizerCache(t *testing.T) {
	a := mustAnon(t)
	addr := netip.MustParseAddr("10.1.1.1")
	a.Anonymize(addr)
	a.Anonymize(addr)
	a.Anonymize(netip.MustParseAddr("10.1.1.2"))
	if a.CacheSize() != 2 {
		t.Errorf("cache size = %d, want 2", a.CacheSize())
	}
}

func TestNewAnonymizerEmptySecret(t *testing.T) {
	if _, err := NewAnonymizer(nil); err == nil {
		t.Error("accepted empty secret")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		x, y string
		want int
	}{
		{"10.0.0.0", "10.0.0.0", 32},
		{"10.0.0.0", "10.0.0.1", 31},
		{"10.0.0.0", "138.0.0.0", 0},
		{"128.111.0.1", "128.111.128.0", 16},
	}
	for _, c := range cases {
		got := CommonPrefixLen(netip.MustParseAddr(c.x), netip.MustParseAddr(c.y))
		if got != c.want {
			t.Errorf("CommonPrefixLen(%s, %s) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

// genFrame builds a test TCP frame with payload.
func genFrame(t testing.TB, src, dst string, payload int) []byte {
	t.Helper()
	buf := packet.NewSerializeBuffer()
	pl := make([]byte, payload)
	for i := range pl {
		pl[i] = byte(i)
	}
	err := packet.Serialize(buf,
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{TTL: 64, Protocol: packet.IPProtocolTCP,
			SrcIP: netip.MustParseAddr(src), DstIP: netip.MustParseAddr(dst)},
		&packet.TCP{SrcPort: 50000, DstPort: 443, Flags: packet.TCPAck | packet.TCPPsh},
		&packet.Payload{Data: pl},
	)
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), buf.Bytes()...)
}

func TestEnforcerAnonymizesInternalOnly(t *testing.T) {
	pol := Policy{
		Name: "internal-only", Scope: AnonInternal,
		CampusPrefix: netip.MustParsePrefix("10.0.0.0/8"),
	}
	e, err := NewEnforcer(pol, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	frame := genFrame(t, "10.3.0.7", "151.101.1.1", 100)
	out, err := e.Apply(frame)
	if err != nil {
		t.Fatal(err)
	}
	p, err := packet.Decode(out, packet.LayerTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	ip := p.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
	if ip.SrcIP == netip.MustParseAddr("10.3.0.7") {
		t.Error("internal source not anonymized")
	}
	if ip.DstIP != netip.MustParseAddr("151.101.1.1") {
		t.Errorf("external destination modified: %v", ip.DstIP)
	}
	// Original frame untouched.
	orig, _ := packet.Decode(frame, packet.LayerTypeEthernet)
	if orig.Layer(packet.LayerTypeIPv4).(*packet.IPv4).SrcIP != netip.MustParseAddr("10.3.0.7") {
		t.Error("Apply mutated its input")
	}
}

func TestEnforcerChecksumStillValid(t *testing.T) {
	pol := Policy{Scope: AnonAll}
	e, _ := NewEnforcer(pol, []byte("secret"))
	out, err := e.Apply(genFrame(t, "10.1.2.3", "10.4.5.6", 64))
	if err != nil {
		t.Fatal(err)
	}
	// Re-decode: IPv4 decoder does not verify checksums, so verify by hand.
	var ip packet.IPv4
	if err := ip.DecodeFromBytes(out[14:]); err != nil {
		t.Fatal(err)
	}
	// Recompute over the header; must be zero.
	hdr := out[14 : 14+ip.HeaderLen()]
	var sum uint32
	for i := 0; i < len(hdr); i += 2 {
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	for sum > 0xffff {
		sum = sum>>16 + sum&0xffff
	}
	if ^uint16(sum) != 0 {
		t.Errorf("ipv4 checksum invalid after rewrite: %#x", ^uint16(sum))
	}
}

func TestEnforcerPayloadStrip(t *testing.T) {
	pol := Policy{Payload: PayloadStrip}
	e, _ := NewEnforcer(pol, []byte("secret"))
	frame := genFrame(t, "10.1.2.3", "93.184.216.34", 500)
	out, err := e.Apply(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(frame)-500 {
		t.Errorf("stripped frame len = %d, want %d", len(out), len(frame)-500)
	}
	_, bytesIn, bytesOut := e.Stats()
	if bytesOut >= bytesIn {
		t.Error("strip policy did not reduce stored bytes")
	}
}

func TestEnforcerPayloadHash(t *testing.T) {
	pol := Policy{Payload: PayloadHash}
	e, _ := NewEnforcer(pol, []byte("secret"))
	frameA := genFrame(t, "10.1.2.3", "93.184.216.34", 500)
	outA1, _ := e.Apply(frameA)
	outA2, _ := e.Apply(frameA)
	if len(outA1) != len(frameA)-500+8 {
		t.Errorf("hashed frame len = %d", len(outA1))
	}
	if string(outA1) != string(outA2) {
		t.Error("hashing not deterministic")
	}
}

func TestEnforcerKeepsDNS(t *testing.T) {
	pol := Policy{Payload: PayloadStrip}
	e, _ := NewEnforcer(pol, []byte("secret"))
	buf := packet.NewSerializeBuffer()
	d := &packet.DNS{ID: 5, Questions: []packet.DNSQuestion{{Name: "x.edu", Type: packet.DNSTypeA, Class: 1}}}
	err := packet.Serialize(buf,
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{TTL: 64, Protocol: packet.IPProtocolUDP,
			SrcIP: netip.MustParseAddr("10.1.1.1"), DstIP: netip.MustParseAddr("8.8.8.8")},
		&packet.UDP{SrcPort: 5353, DstPort: 53},
		d,
	)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Apply(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(buf.Bytes()) {
		t.Error("DNS payload was stripped; should be kept as metadata")
	}
}

func TestEnforcerRequiresCampusPrefix(t *testing.T) {
	if _, err := NewEnforcer(Policy{Scope: AnonInternal}, []byte("s")); err == nil {
		t.Error("accepted AnonInternal without CampusPrefix")
	}
}

func TestEnforcerOnGeneratedTraffic(t *testing.T) {
	// Run a whole campus scenario through the enforcer: everything must
	// parse, internal prefixes must stay inside the anonymized campus
	// prefix structure (prefix preservation implies the campus /8 maps
	// to a single /8).
	pol := Policy{Scope: AnonAll}
	e, _ := NewEnforcer(pol, []byte("it-org-key"))
	g := traffic.NewCampus(traffic.Profile{FlowsPerSecond: 50, Duration: time.Second, Seed: 3})
	fp := packet.NewFlowParser()
	var f traffic.Frame
	var s packet.Summary
	campusAnon := map[byte]bool{}
	n := 0
	for g.Next(&f) {
		out, err := e.Apply(f.Data)
		if err != nil {
			t.Fatal(err)
		}
		if err := fp.Parse(out, &s); err != nil {
			t.Fatalf("anonymized frame does not parse: %v", err)
		}
		if s.Tuple.SrcIP.As4()[0] == 10 || s.Tuple.DstIP.As4()[0] == 10 {
			// The campus 10/8 must not survive anonymization...
			// unless the cipher mapped the first octet to itself,
			// which prefix preservation makes consistent. Track it.
			campusAnon[10] = true
		}
		n++
	}
	if n == 0 {
		t.Fatal("no frames")
	}
	// Consistency: original 10/8 hosts all map under one anonymized /8.
	a := e.anon
	first := a.Anonymize(netip.MustParseAddr("10.0.0.1")).As4()[0]
	for _, h := range []string{"10.1.2.3", "10.7.7.7", "10.200.1.1"} {
		if got := a.Anonymize(netip.MustParseAddr(h)).As4()[0]; got != first {
			t.Errorf("campus /8 fragmented: %s -> first octet %d, want %d", h, got, first)
		}
	}
}

func TestKAnonymity(t *testing.T) {
	type rec struct{ dept string }
	records := []rec{{"cs"}, {"cs"}, {"cs"}, {"ece"}, {"ece"}, {"med"}}
	minG, viol := KAnonymity(records, func(r rec) string { return r.dept }, 2)
	if minG != 1 {
		t.Errorf("minGroup = %d, want 1", minG)
	}
	if len(viol) != 1 || viol[0] != "med" {
		t.Errorf("violations = %v, want [med]", viol)
	}
	minG, viol = KAnonymity(records, func(r rec) string { return r.dept }, 1)
	if len(viol) != 0 {
		t.Errorf("k=1 should have no violations, got %v", viol)
	}
	if minG, _ := KAnonymity([]rec{}, func(r rec) string { return "" }, 5); minG != 0 {
		t.Error("empty dataset should report 0")
	}
}

func TestPolicyModeStrings(t *testing.T) {
	if PayloadHash.String() != "hash" || AnonInternal.String() != "internal" {
		t.Error("mode strings wrong")
	}
	if !strings.HasPrefix(PayloadMode(9).String(), "mode-") {
		t.Error("unknown mode string")
	}
}

func BenchmarkAnonymizeCold(b *testing.B) {
	a, _ := NewAnonymizer([]byte("bench"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
		a.Anonymize(addr)
	}
}

func BenchmarkAnonymizeWarm(b *testing.B) {
	a, _ := NewAnonymizer([]byte("bench"))
	addr := netip.MustParseAddr("10.1.2.3")
	a.Anonymize(addr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Anonymize(addr)
	}
}

func BenchmarkEnforcerApply(b *testing.B) {
	pol := Policy{Scope: AnonAll, Payload: PayloadStrip}
	e, _ := NewEnforcer(pol, []byte("bench"))
	frame := genFrame(b, "10.1.2.3", "93.184.216.34", 1000)
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		if _, err := e.Apply(frame); err != nil {
			b.Fatal(err)
		}
	}
}
