package privacy

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"

	"campuslab/internal/packet"
)

// PayloadMode selects what happens to application payload bytes at
// collection time.
type PayloadMode uint8

// Payload handling modes, from most to least revealing.
const (
	// PayloadKeep stores full payloads (the paper's full-packet-capture
	// default: collection is campus-internal, see §3).
	PayloadKeep PayloadMode = iota
	// PayloadHash replaces the payload with its 8-byte SHA-256 prefix,
	// preserving equality/dedup analysis but not content.
	PayloadHash
	// PayloadStrip truncates to transport headers.
	PayloadStrip
)

// String returns the mode name.
func (m PayloadMode) String() string {
	switch m {
	case PayloadKeep:
		return "keep"
	case PayloadHash:
		return "hash"
	case PayloadStrip:
		return "strip"
	default:
		return fmt.Sprintf("mode-%d", uint8(m))
	}
}

// AnonScope selects which addresses get anonymized.
type AnonScope uint8

// Anonymization scopes.
const (
	// AnonNone stores addresses as seen (internal-only data stores).
	AnonNone AnonScope = iota
	// AnonInternal anonymizes campus addresses only — protects users
	// while keeping external infrastructure analyzable.
	AnonInternal
	// AnonAll anonymizes every address (datasets leaving the campus).
	AnonAll
)

// String returns the scope name.
func (s AnonScope) String() string {
	switch s {
	case AnonNone:
		return "none"
	case AnonInternal:
		return "internal"
	case AnonAll:
		return "all"
	default:
		return fmt.Sprintf("scope-%d", uint8(s))
	}
}

// Policy is one collection policy: what the IT organization decided may be
// collected and in what form (§5 "Revisiting data privacy": the IT
// organization decides "what data can/should not be collected and/or
// stored (and in what form)").
type Policy struct {
	Name string
	// Payload selects payload handling.
	Payload PayloadMode
	// Scope selects address anonymization.
	Scope AnonScope
	// CampusPrefix identifies internal addresses for AnonInternal.
	CampusPrefix netip.Prefix
	// DropDNSNames redacts DNS question names to their public suffix.
	DropDNSNames bool
}

// Enforcer applies a Policy to captured frames. It rewrites a copy of each
// frame; originals are never modified.
type Enforcer struct {
	policy Policy
	anon   *Anonymizer
	parser *packet.FlowParser

	processed uint64
	bytesIn   uint64
	bytesOut  uint64
}

// NewEnforcer builds an enforcer; secret keys the anonymizer and must be
// managed by the IT organization.
func NewEnforcer(policy Policy, secret []byte) (*Enforcer, error) {
	anon, err := NewAnonymizer(secret)
	if err != nil {
		return nil, err
	}
	if policy.Scope == AnonInternal && !policy.CampusPrefix.IsValid() {
		return nil, fmt.Errorf("privacy: AnonInternal requires CampusPrefix")
	}
	return &Enforcer{policy: policy, anon: anon, parser: packet.NewFlowParser()}, nil
}

// Policy returns the enforced policy.
func (e *Enforcer) Policy() Policy { return e.policy }

// Apply transforms one Ethernet frame according to the policy, returning a
// new frame (the input is not modified). Non-IP frames pass through
// unchanged. Malformed frames are returned as-is with an error so callers
// can quarantine them.
func (e *Enforcer) Apply(frame []byte) ([]byte, error) {
	e.processed++
	e.bytesIn += uint64(len(frame))
	out := make([]byte, len(frame))
	copy(out, frame)

	var s packet.Summary
	if err := e.parser.Parse(frame, &s); err != nil {
		e.bytesOut += uint64(len(out))
		if err == packet.ErrNotIP {
			return out, nil
		}
		return out, fmt.Errorf("privacy: unparseable frame passed through: %w", err)
	}

	if e.policy.Scope != AnonNone && s.Tuple.SrcIP.Is4() {
		e.rewriteIPv4Addrs(out, s)
	}
	if e.policy.Payload != PayloadKeep {
		out = e.handlePayload(out, s)
	}
	e.bytesOut += uint64(len(out))
	return out, nil
}

// rewriteIPv4Addrs replaces addresses in the IPv4 header in place and
// fixes the header checksum. Transport checksums are recomputed lazily by
// consumers that need them; the store keeps the frame as policy output.
func (e *Enforcer) rewriteIPv4Addrs(frame []byte, s packet.Summary) {
	const ethLen = 14
	if len(frame) < ethLen+20 {
		return
	}
	iph := frame[ethLen:]
	ihl := int(iph[0]&0x0f) * 4
	if len(iph) < ihl {
		return
	}
	rewrite := func(addr netip.Addr, off int) {
		if e.policy.Scope == AnonInternal && !e.policy.CampusPrefix.Contains(addr) {
			return
		}
		anon := e.anon.Anonymize(addr).As4()
		copy(iph[off:off+4], anon[:])
	}
	rewrite(s.Tuple.SrcIP, 12)
	rewrite(s.Tuple.DstIP, 16)
	// Recompute the IPv4 header checksum.
	iph[10], iph[11] = 0, 0
	var sum uint32
	for i := 0; i < ihl; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(iph[i : i+2]))
	}
	for sum > 0xffff {
		sum = sum>>16 + sum&0xffff
	}
	binary.BigEndian.PutUint16(iph[10:12], ^uint16(sum))
}

// handlePayload strips or hashes the transport payload.
func (e *Enforcer) handlePayload(frame []byte, s packet.Summary) []byte {
	if s.PayloadLen == 0 {
		return frame
	}
	// DNS payloads are metadata, not user content: always kept (subject
	// to DropDNSNames, which is handled at feature level).
	if s.IsDNS {
		return frame
	}
	cut := len(frame) - s.PayloadLen
	if cut < 0 || cut > len(frame) {
		return frame
	}
	switch e.policy.Payload {
	case PayloadStrip:
		return frame[:cut]
	case PayloadHash:
		h := sha256.Sum256(frame[cut:])
		out := append(frame[:cut], h[:8]...)
		return out
	default:
		return frame
	}
}

// Stats reports enforcement volume: packets processed and the byte
// reduction achieved by the policy.
func (e *Enforcer) Stats() (processed, bytesIn, bytesOut uint64) {
	return e.processed, e.bytesIn, e.bytesOut
}

// KAnonymity checks the k-anonymity of a released dataset under a
// quasi-identifier function: every group must contain at least k records.
// It returns the smallest group size and the identifiers of violating
// groups (capped at 10 for reporting).
func KAnonymity[T any](records []T, quasiID func(T) string, k int) (minGroup int, violations []string) {
	if len(records) == 0 {
		return 0, nil
	}
	groups := make(map[string]int)
	for _, r := range records {
		groups[quasiID(r)]++
	}
	minGroup = len(records) + 1
	for id, n := range groups {
		if n < minGroup {
			minGroup = n
		}
		if n < k {
			violations = append(violations, id)
		}
	}
	sort.Strings(violations)
	if len(violations) > 10 {
		violations = violations[:10]
	}
	return minGroup, violations
}
