package netsim

import (
	"net/netip"
	"testing"
	"time"

	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

func smallTopo(t testing.TB) *Topology {
	t.Helper()
	return BuildCampus(Config{Plan: traffic.DefaultPlan(30), HostsPerAccess: 10})
}

func TestBuildCampusStructure(t *testing.T) {
	plan := traffic.DefaultPlan(30)
	topo := BuildCampus(Config{Plan: plan, HostsPerAccess: 10})
	if topo.HostCount() != plan.TotalHosts() {
		t.Errorf("hosts = %d, want %d", topo.HostCount(), plan.TotalHosts())
	}
	var kinds [6]int
	for _, n := range topo.Nodes {
		kinds[n.Kind]++
	}
	if kinds[KindCore] != 1 || kinds[KindBorder] != 1 || kinds[KindInternet] != 1 {
		t.Errorf("core/border/internet = %d/%d/%d", kinds[KindCore], kinds[KindBorder], kinds[KindInternet])
	}
	if kinds[KindDist] != len(plan.Departments) {
		t.Errorf("dist = %d, want %d", kinds[KindDist], len(plan.Departments))
	}
	if kinds[KindHost] != plan.TotalHosts() {
		t.Errorf("host nodes = %d", kinds[KindHost])
	}
	// Every link must be paired with its reverse.
	for _, l := range topo.Links {
		found := false
		for _, r := range topo.Links {
			if r.From == l.To && r.To == l.From {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("link %d has no reverse", l.ID)
		}
	}
	// Uplink identified.
	if topo.Links[topo.Uplink].From != topo.Border || topo.Links[topo.Uplink].To != topo.Internet {
		t.Error("uplink misidentified")
	}
}

func TestRouting(t *testing.T) {
	plan := traffic.DefaultPlan(30)
	topo := BuildCampus(Config{Plan: plan, HostsPerAccess: 10})
	h0 := topo.NodeFor(plan.Host(0))
	hLast := topo.NodeFor(plan.Host(plan.TotalHosts() - 1))
	ext := topo.NodeFor(netip.MustParseAddr("93.184.216.34"))
	if ext != topo.Internet {
		t.Fatal("external IP not mapped to internet")
	}
	// Host to internet passes the border.
	path := topo.Route(h0, ext)
	if path == nil {
		t.Fatal("no route host->internet")
	}
	viaBorder := false
	for _, l := range path {
		if topo.Links[l].To == topo.Border {
			viaBorder = true
		}
	}
	if !viaBorder {
		t.Error("host->internet route avoids border")
	}
	// Host to host in different departments passes the core, not border.
	path = topo.Route(h0, hLast)
	if path == nil {
		t.Fatal("no route host->host")
	}
	for _, l := range path {
		if topo.Links[l].To == topo.Internet {
			t.Error("internal route leaves campus")
		}
	}
	// Path endpoints are consistent.
	if topo.Links[path[0]].From != h0 || topo.Links[path[len(path)-1]].To != hLast {
		t.Error("path endpoints wrong")
	}
	if topo.Route(h0, h0) != nil {
		t.Error("self route should be empty")
	}
}

func TestReplayDeliversTraffic(t *testing.T) {
	plan := traffic.DefaultPlan(30)
	topo := BuildCampus(Config{Plan: plan, HostsPerAccess: 10})
	net := NewNetwork(topo)
	var deliveries []Delivery
	net.OnDeliver(func(d Delivery) { deliveries = append(deliveries, d) })
	gen := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 40, Duration: 2 * time.Second, Seed: 51})
	stats := net.Replay(gen)
	if stats.Injected == 0 {
		t.Fatal("nothing injected")
	}
	if stats.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if stats.Delivered+stats.QueueDrops+stats.BorderDrops != stats.Injected {
		t.Errorf("accounting: %d delivered + %d qdrop + %d bdrop != %d injected",
			stats.Delivered, stats.QueueDrops, stats.BorderDrops, stats.Injected)
	}
	if stats.MeanLatency() <= 0 {
		t.Error("zero mean latency")
	}
	// External RTT dominated by the 5ms uplink propagation.
	for _, d := range deliveries[:10] {
		if d.Latency() <= 0 {
			t.Fatalf("non-positive latency %v", d.Latency())
		}
	}
}

func TestBorderFuncDrops(t *testing.T) {
	plan := traffic.DefaultPlan(30)
	topo := BuildCampus(Config{Plan: plan, HostsPerAccess: 10})
	net := NewNetwork(topo)
	victim := plan.Host(0)
	net.SetBorderFunc(func(ts time.Duration, f *traffic.Frame, s *packet.Summary) bool {
		return s.Tuple.DstIP != victim // drop everything to the victim
	})
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: plan, Victim: victim,
		Duration: time.Second, Rate: 200, Seed: 52,
	})
	stats := net.Replay(amp)
	if stats.BorderDrops == 0 {
		t.Fatal("border dropped nothing")
	}
	if stats.Delivered != 0 {
		t.Errorf("%d attack packets leaked past the border", stats.Delivered)
	}
}

func TestTapsSeeBorderTraffic(t *testing.T) {
	plan := traffic.DefaultPlan(30)
	topo := BuildCampus(Config{Plan: plan, HostsPerAccess: 10})
	net := NewNetwork(topo)
	var tapped int
	net.AddTap(topo.DownLink, func(ts time.Duration, f *traffic.Frame) { tapped++ })
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(1),
		Duration: time.Second, Rate: 100, Seed: 53,
	})
	stats := net.Replay(amp)
	if tapped == 0 {
		t.Fatal("tap saw nothing")
	}
	if uint64(tapped) != stats.Injected-stats.Unroutable {
		t.Errorf("tap saw %d, injected %d", tapped, stats.Injected)
	}
}

func TestCongestionDropsAndLatency(t *testing.T) {
	plan := traffic.DefaultPlan(30)
	// Starve the uplink: 1 Mbps with tiny queues.
	topoSlow := BuildCampus(Config{Plan: plan, HostsPerAccess: 10, UplinkBW: 1e6, QueueLen: 8})
	topoFast := BuildCampus(Config{Plan: plan, HostsPerAccess: 10})
	fp := packet.NewFlowParser()
	mk := func(topo *Topology) (SimStats, time.Duration) {
		net := NewNetwork(topo)
		// Mean latency over *external* deliveries only: survivors of
		// internal-only paths would otherwise mask uplink queueing.
		var extLat time.Duration
		var extN int
		net.OnDeliver(func(d Delivery) {
			var s packet.Summary
			if err := fp.Parse(d.Frame.Data, &s); err != nil {
				return
			}
			if !plan.Contains(s.Tuple.SrcIP) || !plan.Contains(s.Tuple.DstIP) {
				extLat += d.Latency()
				extN++
			}
		})
		gen := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 150, Duration: 2 * time.Second, Seed: 54})
		stats := net.Replay(gen)
		if extN == 0 {
			return stats, 0
		}
		return stats, extLat / time.Duration(extN)
	}
	slow, slowExt := mk(topoSlow)
	fast, fastExt := mk(topoFast)
	if slow.QueueDrops == 0 {
		t.Error("no drops on a starved uplink")
	}
	if fast.QueueDrops > slow.QueueDrops/10 {
		t.Errorf("fast network dropped %d vs slow %d", fast.QueueDrops, slow.QueueDrops)
	}
	if slowExt <= fastExt {
		t.Errorf("congested external latency %v <= uncongested %v", slowExt, fastExt)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	plan := traffic.DefaultPlan(30)
	topo := BuildCampus(Config{Plan: plan, HostsPerAccess: 10})
	net := NewNetwork(topo)
	gen := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 100, Duration: 2 * time.Second, Seed: 55})
	stats := net.Replay(gen)
	up := topo.Links[topo.Uplink]
	u := stats.Utilization(up, 2*time.Second)
	if u <= 0 || u > 1.5 {
		t.Errorf("uplink utilization = %v", u)
	}
}

func TestNodeKindString(t *testing.T) {
	if KindBorder.String() != "border" || KindHost.String() != "host" {
		t.Error("kind names wrong")
	}
}

func BenchmarkReplay(b *testing.B) {
	plan := traffic.DefaultPlan(30)
	topo := BuildCampus(Config{Plan: plan, HostsPerAccess: 10})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net := NewNetwork(topo)
		gen := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 50, Duration: time.Second, Seed: 56})
		net.Replay(gen)
	}
}
