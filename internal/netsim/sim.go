package netsim

import (
	"container/heap"
	"time"

	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

// TapFunc observes a frame crossing a link (capture integration point).
type TapFunc func(ts time.Duration, f *traffic.Frame)

// BorderFunc inspects a frame at the border switch; returning false drops
// it (the deployed mitigation path). The summary is pre-parsed.
type BorderFunc func(ts time.Duration, f *traffic.Frame, s *packet.Summary) bool

// BorderBatchFunc inspects a batch of frames arriving at the border in
// event order, filling keep[i] with whether frame i survives. Deployed
// control loops prefer this over BorderFunc: consecutive border arrivals
// are popped together so the loop's sense stage runs once per batch.
type BorderBatchFunc func(ts []time.Duration, frames []*traffic.Frame, sums []*packet.Summary, keep []bool)

// Delivery reports one frame reaching its destination.
type Delivery struct {
	Frame   traffic.Frame
	Sent    time.Duration
	Arrived time.Duration
}

// Latency is the network transit time.
func (d Delivery) Latency() time.Duration { return d.Arrived - d.Sent }

// SimStats aggregates a run.
type SimStats struct {
	Injected     uint64
	Delivered    uint64
	QueueDrops   uint64
	BorderDrops  uint64
	Unroutable   uint64
	TotalLatency time.Duration
	MaxLatency   time.Duration
	LinkBytes    map[LinkID]uint64
}

// MeanLatency over delivered frames.
func (s *SimStats) MeanLatency() time.Duration {
	if s.Delivered == 0 {
		return 0
	}
	return s.TotalLatency / time.Duration(s.Delivered)
}

// Utilization returns a link's average utilization over the run span.
func (s *SimStats) Utilization(l Link, span time.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return float64(s.LinkBytes[l.ID]*8) / (l.Bandwidth * span.Seconds())
}

// Network is a runnable simulation instance over a topology.
type Network struct {
	topo   *Topology
	events eventHeap
	// linkFree[l] is when link l's transmitter is next idle.
	linkFree    []time.Duration
	taps        map[LinkID][]TapFunc
	border      BorderFunc
	borderBatch BorderBatchFunc
	onDeliver   func(Delivery)
	stats       SimStats
	parser      *packet.FlowParser
	now         time.Duration
	seq         uint64 // event tie-break counter

	// Reusable border-batch buffers (see stepBatch).
	evBuf   []*event
	inspBuf []int32
	tsBuf   []time.Duration
	frmBuf  []*traffic.Frame
	sumBuf  []packet.Summary
	sumPtrs []*packet.Summary
	keepBuf []bool
}

// borderBatchCap bounds one batched border inspection.
const borderBatchCap = 256

// NewNetwork wraps a topology for simulation.
func NewNetwork(t *Topology) *Network {
	return &Network{
		topo:     t,
		linkFree: make([]time.Duration, len(t.Links)),
		taps:     make(map[LinkID][]TapFunc),
		parser:   packet.NewFlowParser(),
		stats:    SimStats{LinkBytes: make(map[LinkID]uint64)},
	}
}

// Topology returns the underlying topology.
func (n *Network) Topology() *Topology { return n.topo }

// AddTap attaches a tap to a link.
func (n *Network) AddTap(l LinkID, fn TapFunc) { n.taps[l] = append(n.taps[l], fn) }

// SetBorderFunc installs the border inspection hook.
func (n *Network) SetBorderFunc(fn BorderFunc) { n.border = fn }

// SetBorderBatchFunc installs the batched border inspection hook. When
// both hooks are set the per-frame BorderFunc wins.
func (n *Network) SetBorderBatchFunc(fn BorderBatchFunc) {
	n.borderBatch = fn
	if fn != nil && n.evBuf == nil {
		n.evBuf = make([]*event, 0, borderBatchCap)
		n.inspBuf = make([]int32, 0, borderBatchCap)
		n.tsBuf = make([]time.Duration, borderBatchCap)
		n.frmBuf = make([]*traffic.Frame, borderBatchCap)
		n.sumBuf = make([]packet.Summary, borderBatchCap)
		n.sumPtrs = make([]*packet.Summary, borderBatchCap)
		n.keepBuf = make([]bool, borderBatchCap)
	}
}

// OnDeliver registers the delivery callback.
func (n *Network) OnDeliver(fn func(Delivery)) { n.onDeliver = fn }

// event is a frame arriving at a node at a time.
type event struct {
	at    time.Duration
	node  NodeID
	hop   int // index into path
	frame traffic.Frame
	sent  time.Duration
	path  []LinkID
	seq   uint64 // tie-break for determinism
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Inject schedules a frame: the source/destination nodes are resolved from
// the frame's IP addresses, and the frame enters the network at f.TS.
func (n *Network) Inject(f *traffic.Frame) {
	var s packet.Summary
	if err := n.parser.Parse(f.Data, &s); err != nil {
		n.stats.Unroutable++
		return
	}
	src := n.topo.NodeFor(s.Tuple.SrcIP)
	dst := n.topo.NodeFor(s.Tuple.DstIP)
	path := n.topo.Route(src, dst)
	if path == nil && src != dst {
		n.stats.Unroutable++
		return
	}
	n.stats.Injected++
	n.seq++
	heap.Push(&n.events, &event{
		at: f.TS, node: src, hop: 0, frame: *f, sent: f.TS, path: path, seq: n.seq,
	})
}

// Run processes all scheduled events to completion and returns statistics.
// Call after injecting the full scenario (or interleave Inject/Step).
func (n *Network) Run() SimStats {
	for n.events.Len() > 0 {
		n.stepBatch(1 << 62)
	}
	return n.stats
}

// Now returns the simulation clock (time of the last processed event).
func (n *Network) Now() time.Duration { return n.now }

// batchable reports whether batched border inspection preserves event
// semantics: it reorders a border frame's continuation (link transmit,
// taps, delivery) after later border inspections in the same batch, which
// is only invisible when no taps or delivery callbacks observe the
// interleaving. Border-outgoing link state is untouched by non-border
// events, so the continuations themselves stay in order.
func (n *Network) batchable() bool {
	return n.borderBatch != nil && n.border == nil && len(n.taps) == 0 && n.onDeliver == nil
}

// stepBatch processes the next event; when the heap's front is a run of
// border arrivals earlier than bound (and batching is semantics
// preserving), the whole run is inspected with one BorderBatchFunc call
// before the survivors continue in order.
func (n *Network) stepBatch(bound time.Duration) {
	if !n.batchable() || n.topo.Nodes[n.events[0].node].Kind != KindBorder {
		n.step()
		return
	}
	evs, insp := n.evBuf[:0], n.inspBuf[:0]
	k := 0
	for len(evs) < borderBatchCap && n.events.Len() > 0 {
		top := n.events[0]
		if top.at >= bound || n.topo.Nodes[top.node].Kind != KindBorder {
			break
		}
		ev := heap.Pop(&n.events).(*event)
		evs = append(evs, ev)
		if err := n.parser.Parse(ev.frame.Data, &n.sumBuf[k]); err == nil {
			n.tsBuf[k], n.frmBuf[k], n.sumPtrs[k] = ev.at, &ev.frame, &n.sumBuf[k]
			n.keepBuf[k] = true
			insp = append(insp, int32(k))
			k++
		} else {
			insp = append(insp, -1) // unparseable: continues uninspected
		}
	}
	if k > 0 {
		n.borderBatch(n.tsBuf[:k], n.frmBuf[:k], n.sumPtrs[:k], n.keepBuf[:k])
	}
	for i, ev := range evs {
		n.now = ev.at
		if j := insp[i]; j >= 0 && !n.keepBuf[j] {
			n.stats.BorderDrops++
			continue
		}
		n.continueFrame(ev)
	}
	n.evBuf, n.inspBuf = evs[:0], insp[:0]
}

func (n *Network) step() {
	ev := heap.Pop(&n.events).(*event)
	n.now = ev.at

	// Border inspection on arrival at the border node.
	if n.topo.Nodes[ev.node].Kind == KindBorder {
		if n.border != nil {
			var s packet.Summary
			if err := n.parser.Parse(ev.frame.Data, &s); err == nil {
				if !n.border(ev.at, &ev.frame, &s) {
					n.stats.BorderDrops++
					return
				}
			}
		} else if n.borderBatch != nil {
			// Single-frame fallback (taps or delivery hooks present).
			if err := n.parser.Parse(ev.frame.Data, &n.sumBuf[0]); err == nil {
				n.tsBuf[0], n.frmBuf[0], n.sumPtrs[0] = ev.at, &ev.frame, &n.sumBuf[0]
				n.keepBuf[0] = true
				n.borderBatch(n.tsBuf[:1], n.frmBuf[:1], n.sumPtrs[:1], n.keepBuf[:1])
				if !n.keepBuf[0] {
					n.stats.BorderDrops++
					return
				}
			}
		}
	}
	n.continueFrame(ev)
}

// continueFrame advances a frame past inspection: delivery at the final
// node, otherwise transmission onto its next link.
func (n *Network) continueFrame(ev *event) {
	if ev.hop >= len(ev.path) {
		// Arrived at destination node.
		n.stats.Delivered++
		lat := ev.at - ev.sent
		n.stats.TotalLatency += lat
		if lat > n.stats.MaxLatency {
			n.stats.MaxLatency = lat
		}
		if n.onDeliver != nil {
			n.onDeliver(Delivery{Frame: ev.frame, Sent: ev.sent, Arrived: ev.at})
		}
		return
	}

	lid := ev.path[ev.hop]
	link := &n.topo.Links[lid]
	// Queue model: the transmitter serializes one packet at a time; a
	// frame arriving while the queue already holds QueueLen serialization
	// slots is dropped.
	txTime := time.Duration(float64(len(ev.frame.Data)*8) / link.Bandwidth * float64(time.Second))
	start := ev.at
	if n.linkFree[lid] > start {
		// Waiting time implies queued packets ahead of us.
		queued := float64(n.linkFree[lid]-start) / float64(txTime+1)
		if int(queued) >= link.QueueLen {
			n.stats.QueueDrops++
			return
		}
		start = n.linkFree[lid]
	}
	n.linkFree[lid] = start + txTime
	n.stats.LinkBytes[lid] += uint64(len(ev.frame.Data))

	for _, tap := range n.taps[lid] {
		tap(start, &ev.frame)
	}

	arrive := start + txTime + time.Duration(link.PropDelay*float64(time.Second))
	ev.at = arrive
	ev.node = link.To
	ev.hop++
	n.seq++
	ev.seq = n.seq
	heap.Push(&n.events, ev)
}

// Replay injects every frame from gen and runs the simulation,
// interleaving injection with processing so memory stays bounded.
func (n *Network) Replay(gen traffic.Generator) SimStats {
	var f traffic.Frame
	for gen.Next(&f) {
		n.Inject(&f)
		// Process everything strictly earlier than the next injection to
		// keep the event heap small.
		for n.events.Len() > 0 && n.events[0].at < f.TS {
			n.stepBatch(f.TS)
		}
	}
	return n.Run()
}
