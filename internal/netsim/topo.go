// Package netsim is the campus production network substitute: a
// discrete-event simulator of a hierarchical campus topology (hosts →
// access → distribution → core → border → Internet) with link bandwidth,
// propagation delay and finite queues. It is the testbed half of Figure 1:
// deployable models run at the border switch, taps feed the capture
// pipeline, and performance problems (E.g. an overloaded uplink) have a
// place to happen.
package netsim

import (
	"fmt"
	"net/netip"

	"campuslab/internal/traffic"
)

// NodeID indexes a node in the topology.
type NodeID int

// NodeKind classifies topology nodes.
type NodeKind uint8

// Node kinds, edge to core.
const (
	KindHost NodeKind = iota
	KindAccess
	KindDist
	KindCore
	KindBorder
	KindInternet
)

// String returns the kind name.
func (k NodeKind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindAccess:
		return "access"
	case KindDist:
		return "dist"
	case KindCore:
		return "core"
	case KindBorder:
		return "border"
	case KindInternet:
		return "internet"
	default:
		return fmt.Sprintf("kind-%d", uint8(k))
	}
}

// Node is one device in the campus.
type Node struct {
	ID   NodeID
	Kind NodeKind
	Name string
}

// LinkID indexes a directed link.
type LinkID int

// Link is a directed edge with a rate/delay/queue model. Every physical
// cable is two Links, one per direction.
type Link struct {
	ID        LinkID
	From, To  NodeID
	Bandwidth float64 // bits per second
	PropDelay float64 // seconds
	QueueLen  int     // packets
}

// Config sizes the generated campus.
type Config struct {
	// Plan supplies departments and addressing (nil = DefaultPlan(200)).
	Plan *traffic.AddressPlan
	// HostsPerAccess groups hosts under access switches (default 50).
	HostsPerAccess int
	// Access/Dist/Core/Uplink bandwidths in bits/s. Defaults: 1G access,
	// 10G dist, 40G core, 10G uplink (the paper's campus scale).
	AccessBW, DistBW, CoreBW, UplinkBW float64
	// QueueLen is the per-link queue capacity in packets (default 256).
	QueueLen int
}

func (c Config) withDefaults() Config {
	if c.Plan == nil {
		c.Plan = traffic.DefaultPlan(200)
	}
	if c.HostsPerAccess <= 0 {
		c.HostsPerAccess = 50
	}
	if c.AccessBW <= 0 {
		c.AccessBW = 1e9
	}
	if c.DistBW <= 0 {
		c.DistBW = 10e9
	}
	if c.CoreBW <= 0 {
		c.CoreBW = 40e9
	}
	if c.UplinkBW <= 0 {
		c.UplinkBW = 10e9
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 256
	}
	return c
}

// Topology is the built campus graph with routing state.
type Topology struct {
	cfg      Config
	Nodes    []Node
	Links    []Link
	adj      [][]LinkID // outgoing links per node
	nextHop  [][]LinkID // [from][dst] -> link to take
	hostNode map[netip.Addr]NodeID
	Border   NodeID
	Internet NodeID
	// Uplink is the border->internet link (the paper's 10-20 Gbps pipe);
	// DownLink is its reverse.
	Uplink, DownLink LinkID
}

// BuildCampus constructs the hierarchical campus for cfg.
func BuildCampus(cfg Config) *Topology {
	cfg = cfg.withDefaults()
	t := &Topology{cfg: cfg, hostNode: make(map[netip.Addr]NodeID)}

	addNode := func(kind NodeKind, name string) NodeID {
		id := NodeID(len(t.Nodes))
		t.Nodes = append(t.Nodes, Node{ID: id, Kind: kind, Name: name})
		return id
	}
	addPipe := func(a, b NodeID, bw float64, delay float64) {
		for _, dir := range [2][2]NodeID{{a, b}, {b, a}} {
			id := LinkID(len(t.Links))
			t.Links = append(t.Links, Link{
				ID: id, From: dir[0], To: dir[1],
				Bandwidth: bw, PropDelay: delay, QueueLen: cfg.QueueLen,
			})
		}
	}

	core := addNode(KindCore, "core-1")
	t.Border = addNode(KindBorder, "border-1")
	t.Internet = addNode(KindInternet, "internet")
	addPipe(core, t.Border, cfg.CoreBW, 50e-6)
	addPipe(t.Border, t.Internet, cfg.UplinkBW, 5e-3) // 5ms to upstream

	hostIdx := 0
	for _, dept := range cfg.Plan.Departments {
		dist := addNode(KindDist, "dist-"+dept.Name)
		addPipe(dist, core, cfg.DistBW, 100e-6)
		nAccess := (dept.Hosts + cfg.HostsPerAccess - 1) / cfg.HostsPerAccess
		for a := 0; a < nAccess; a++ {
			acc := addNode(KindAccess, fmt.Sprintf("acc-%s-%d", dept.Name, a))
			addPipe(acc, dist, cfg.AccessBW, 50e-6)
			for h := 0; h < cfg.HostsPerAccess && a*cfg.HostsPerAccess+h < dept.Hosts; h++ {
				addr := cfg.Plan.Host(hostIdx)
				hn := addNode(KindHost, "host-"+addr.String())
				addPipe(hn, acc, cfg.AccessBW, 10e-6)
				t.hostNode[addr] = hn
				hostIdx++
			}
		}
	}
	t.buildRouting()
	// Identify the uplink pair.
	for _, l := range t.Links {
		if l.From == t.Border && l.To == t.Internet {
			t.Uplink = l.ID
		}
		if l.From == t.Internet && l.To == t.Border {
			t.DownLink = l.ID
		}
	}
	return t
}

// buildRouting runs BFS from every node to fill next-hop tables (the
// topology is a tree, so shortest paths are unique).
func (t *Topology) buildRouting() {
	n := len(t.Nodes)
	t.adj = make([][]LinkID, n)
	for _, l := range t.Links {
		t.adj[l.From] = append(t.adj[l.From], l.ID)
	}
	t.nextHop = make([][]LinkID, n)
	for src := 0; src < n; src++ {
		t.nextHop[src] = make([]LinkID, n)
		for i := range t.nextHop[src] {
			t.nextHop[src][i] = -1
		}
	}
	// BFS from each destination over reversed edges, recording the link
	// each predecessor should take.
	for dst := 0; dst < n; dst++ {
		visited := make([]bool, n)
		queue := []int{dst}
		visited[dst] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			// All links INTO cur: their From nodes route via that link.
			for _, l := range t.Links {
				if int(l.To) != cur || visited[l.From] {
					continue
				}
				visited[l.From] = true
				t.nextHop[l.From][dst] = l.ID
				queue = append(queue, int(l.From))
			}
		}
	}
}

// NodeFor maps an IP to its topology node: campus hosts to their access
// port, everything else to the Internet node.
func (t *Topology) NodeFor(addr netip.Addr) NodeID {
	if id, ok := t.hostNode[addr]; ok {
		return id
	}
	return t.Internet
}

// Route returns the link path from src to dst node.
func (t *Topology) Route(src, dst NodeID) []LinkID {
	if src == dst {
		return nil
	}
	var path []LinkID
	cur := src
	for cur != dst {
		l := t.nextHop[cur][dst]
		if l < 0 {
			return nil // unreachable
		}
		path = append(path, l)
		cur = t.Links[l].To
		if len(path) > len(t.Nodes) {
			return nil // safety: routing loop
		}
	}
	return path
}

// HostCount returns the number of host nodes.
func (t *Topology) HostCount() int { return len(t.hostNode) }
