package roadtest

import (
	"strings"
	"testing"
	"time"

	"campuslab/internal/control"
	"campuslab/internal/dataplane"
	"campuslab/internal/datastore"
	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/netsim"
	"campuslab/internal/traffic"
	"campuslab/internal/xai"
)

// artifacts trains the deployable model chain once per test binary.
type artifacts struct {
	plan      *traffic.AddressPlan
	tree      *ml.Tree
	dropProg  *dataplane.Program
	alertProg *dataplane.Program
}

var cached *artifacts

func train(t testing.TB) *artifacts {
	t.Helper()
	if cached != nil {
		return cached
	}
	plan := traffic.DefaultPlan(40)
	benign := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 60, Duration: 4 * time.Second, Seed: 201})
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(4),
		Start: 500 * time.Millisecond, Duration: 3 * time.Second, Rate: 800, Seed: 202,
	})
	st := datastore.New()
	g := traffic.NewMerge(benign, amp)
	var f traffic.Frame
	for g.Next(&f) {
		st.IngestFrame(&f)
	}
	ds := features.FromPackets(st, 1.0).BinaryRelabel(traffic.LabelDNSAmp)
	forest, err := ml.FitForest(ds, 2, ml.ForestConfig{Trees: 20, MaxDepth: 8, Seed: 203})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := xai.Extract(forest, ds, xai.ExtractConfig{MaxDepth: 4, Seed: 204})
	if err != nil {
		t.Fatal(err)
	}
	dropProg, err := dataplane.Compile(ex.Tree, features.PacketSchema, dataplane.CompileConfig{
		Name: "amp-drop", DropClasses: []int{1}, MinConfidence: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	alertProg, err := dataplane.Compile(ex.Tree, features.PacketSchema, dataplane.CompileConfig{Name: "amp-alert"})
	if err != nil {
		t.Fatal(err)
	}
	cached = &artifacts{plan: plan, tree: ex.Tree, dropProg: dropProg, alertProg: alertProg}
	return cached
}

func (a *artifacts) scenario(benignSeed, attackSeed int64, rate float64) traffic.Generator {
	benign := traffic.NewCampus(traffic.Profile{Plan: a.plan, FlowsPerSecond: 50, Duration: 5 * time.Second, Seed: benignSeed})
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: a.plan, Victim: a.plan.Host(8),
		Start: time.Second, Duration: 3 * time.Second, Rate: rate, Seed: attackSeed,
	})
	return traffic.NewMerge(benign, amp)
}

func TestRoadTestInlinePasses(t *testing.T) {
	a := train(t)
	rep, err := Run(Config{
		Plan:     a.plan,
		Net:      netsim.Config{HostsPerAccess: 10},
		Loop:     control.LoopConfig{Tier: control.TierDataPlane, Program: a.dropProg},
		Scenario: a.scenario(211, 212, 800),
		Spec:     Spec{MinRecall: 0.9, MaxCollateral: 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("road test failed: %s", rep.Summary())
	}
	if rep.Reaction != 0 {
		t.Errorf("inline reaction = %v, want 0", rep.Reaction)
	}
	if rep.AttackStart < time.Second {
		t.Errorf("attack start = %v", rep.AttackStart)
	}
	if !strings.Contains(rep.Summary(), "PASS") {
		t.Errorf("summary = %q", rep.Summary())
	}
}

func TestRoadTestControlPlaneReaction(t *testing.T) {
	a := train(t)
	rep, err := Run(Config{
		Plan: a.plan,
		Net:  netsim.Config{HostsPerAccess: 10},
		Loop: control.LoopConfig{
			Tier: control.TierControlPlane, Program: a.alertProg, Model: a.tree,
			Threshold: 0.9, Window: time.Second, MinEvidence: 30,
		},
		Scenario: a.scenario(213, 214, 800),
		Spec:     Spec{MinRecall: 0.5, MaxCollateral: 0.05, MaxReaction: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("road test failed: %s", rep.Summary())
	}
	if rep.Reaction <= 0 {
		t.Errorf("reaction = %v, want positive (detect-then-mitigate)", rep.Reaction)
	}
	if len(rep.Loop.Mitigations) == 0 {
		t.Error("no mitigations recorded")
	}
}

func TestRoadTestSpecViolationDetected(t *testing.T) {
	a := train(t)
	// Impossible spec: zero collateral tolerance AND sub-microsecond
	// reaction for a detect-then-mitigate tier.
	rep, err := Run(Config{
		Plan: a.plan,
		Net:  netsim.Config{HostsPerAccess: 10},
		Loop: control.LoopConfig{
			Tier: control.TierCloud, Program: a.alertProg, Model: a.tree,
			Threshold: 0.9, MinEvidence: 30,
		},
		Scenario: a.scenario(215, 216, 800),
		Spec:     Spec{MinRecall: 0.9999, MaxCollateral: 0, MaxReaction: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatalf("impossible spec passed: %s", rep.Summary())
	}
	if !strings.Contains(rep.Summary(), "FAIL") {
		t.Errorf("summary = %q", rep.Summary())
	}
}

func TestRoadTestValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("accepted missing scenario")
	}
}

// badProgram drops all UDP — a deliberately harmful "model" whose canary
// must be rolled back.
func badProgram() *dataplane.Program {
	return &dataplane.Program{
		Name: "drop-all-udp",
		Rules: []dataplane.Rule{{
			Conds:  []dataplane.RangeCond{{Field: dataplane.FieldIsUDP, Lo: 1, Hi: 1}},
			Action: dataplane.ActionDrop, Class: 1, Confidence: 0.99,
		}},
		Default: dataplane.ActionPermit,
	}
}

func TestCanaryRollsBackBadModel(t *testing.T) {
	a := train(t)
	res, err := RunCanary(
		traffic.NewCampus(traffic.Profile{Plan: a.plan, FlowsPerSecond: 80, Duration: 4 * time.Second, Seed: 221}),
		CanaryConfig{
			Loop:           control.LoopConfig{Tier: control.TierDataPlane, Program: badProgram()},
			MaxBenignDrops: 50,
			Window:         50,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RolledBack {
		t.Fatal("harmful model was not rolled back")
	}
	if res.BenignDropsAtRollback < 50 {
		t.Errorf("rollback at %d drops, budget 50", res.BenignDropsAtRollback)
	}
	// The watchdog acts within one window of the budget being crossed:
	// realized harm stays bounded.
	if res.BenignDropsAtRollback > 50+50 {
		t.Errorf("harm %d escaped the watchdog window", res.BenignDropsAtRollback)
	}
	if res.RollbackAt <= 0 || res.RollbackAt > 4*time.Second {
		t.Errorf("rollback at %v", res.RollbackAt)
	}
}

func TestCanaryKeepsGoodModel(t *testing.T) {
	a := train(t)
	res, err := RunCanary(
		a.scenario(223, 224, 800),
		CanaryConfig{
			Loop:           control.LoopConfig{Tier: control.TierDataPlane, Program: a.dropProg},
			MaxBenignDrops: 200,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.RolledBack {
		t.Fatalf("good model rolled back: %d benign drops", res.BenignDropsAtRollback)
	}
	if res.Final.DetectionRecall() < 0.9 {
		t.Errorf("recall = %v", res.Final.DetectionRecall())
	}
}

func TestCanaryValidation(t *testing.T) {
	if _, err := RunCanary(nil, CanaryConfig{}); err == nil {
		t.Error("accepted empty loop config")
	}
}
