package roadtest

import (
	"fmt"
	"time"

	"campuslab/internal/control"
	"campuslab/internal/obs"
	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

// Canary watchdog metrics: one series per tick and per rollback so an
// operator can see the harm-budget machinery working (or firing).
var (
	obsCanaryTicks     = obs.Default.Counter("campuslab_roadtest_canary_ticks_total")
	obsCanaryRollbacks = obs.Default.Counter("campuslab_roadtest_canary_rollbacks_total")
)

// CanaryConfig guards a deployment with a harm budget: the model runs
// live, but a watchdog tracks benign collateral and disables the model the
// moment the budget is exceeded. This is the incremental, trust-building
// rollout path §4 argues campus networks make possible.
type CanaryConfig struct {
	// Loop configures the candidate deployment.
	Loop control.LoopConfig
	// MaxBenignDrops is the absolute harm budget: the canary is killed
	// when this many benign packets have been dropped.
	MaxBenignDrops uint64
	// Window is the watchdog's evaluation cadence in packets (default
	// 100: check after every 100th packet).
	Window int
}

// CanaryResult reports the canary outcome.
type CanaryResult struct {
	// RolledBack reports whether the watchdog killed the deployment.
	RolledBack bool
	// RollbackAt is when (0 if never).
	RollbackAt time.Duration
	// PacketsUntilRollback counts packets processed before the kill.
	PacketsUntilRollback uint64
	// BenignDropsAtRollback is the realized harm when killed.
	BenignDropsAtRollback uint64
	// Final are the loop statistics up to the rollback point (traffic
	// after rollback bypasses the loop entirely — fail-open).
	Final control.LoopStats
}

// RunCanary replays the scenario through the candidate loop under the
// watchdog. After rollback, traffic flows unfiltered (fail-open), exactly
// what a production network would do with a misbehaving experiment.
func RunCanary(scenario traffic.Generator, cfg CanaryConfig) (*CanaryResult, error) {
	loop, err := control.NewLoop(cfg.Loop)
	if err != nil {
		return nil, fmt.Errorf("roadtest: canary: %w", err)
	}
	if cfg.Window <= 0 {
		cfg.Window = 100
	}
	res := &CanaryResult{}
	fp := packet.NewFlowParser()
	var f traffic.Frame
	var processed uint64
	// Frames are batched between watchdog ticks so the loop's sense stage
	// amortizes; the buffer always flushes before a budget check so the
	// watchdog sees exactly the per-frame drop counts.
	const batchCap = 256
	var (
		frames [batchCap]traffic.Frame
		sums   [batchCap]packet.Summary
		fptrs  [batchCap]*traffic.Frame
		sptrs  [batchCap]*packet.Summary
		keep   [batchCap]bool
	)
	n := 0
	flush := func() {
		if n == 0 {
			return
		}
		for i := 0; i < n; i++ {
			fptrs[i], sptrs[i] = &frames[i], &sums[i]
		}
		loop.FeedBatch(fptrs[:n], sptrs[:n], keep[:n])
		n = 0
	}
	for scenario.Next(&f) {
		processed++
		if res.RolledBack {
			// Fail-open: count ground truth but never drop.
			continue
		}
		if err := fp.Parse(f.Data, &sums[n]); err == nil {
			frames[n] = f
			n++
			if n == batchCap {
				flush()
			}
		}
		if processed%uint64(cfg.Window) == 0 {
			flush()
			obsCanaryTicks.Inc()
			snap := loop.BenignDroppedSoFar()
			if snap > cfg.MaxBenignDrops {
				res.RolledBack = true
				res.RollbackAt = f.TS
				res.PacketsUntilRollback = processed
				res.BenignDropsAtRollback = snap
				obsCanaryRollbacks.Inc()
			}
		}
	}
	flush()
	res.Final = loop.Finish()
	if !res.RolledBack && res.Final.BenignDropped > cfg.MaxBenignDrops {
		// Budget crossed between watchdog ticks at end of stream.
		res.RolledBack = true
		res.PacketsUntilRollback = processed
		res.BenignDropsAtRollback = res.Final.BenignDropped
		obsCanaryRollbacks.Inc()
	}
	return res, nil
}
