package roadtest

import (
	"sync"
	"testing"
	"time"

	"campuslab/internal/control"
	"campuslab/internal/traffic"
)

// benignOnly returns a deterministic benign-only scenario; with the
// drop-all-UDP program, every UDP packet it carries is a benign drop.
func benignOnly(a *artifacts, seed int64) traffic.Generator {
	return traffic.NewCampus(traffic.Profile{Plan: a.plan, FlowsPerSecond: 60, Duration: 3 * time.Second, Seed: seed})
}

// TestCanaryBudgetBoundary pins the watchdog's comparison: the budget is
// an allowance, so realized harm exactly equal to MaxBenignDrops must NOT
// trigger rollback, while a budget one below the realized harm must.
func TestCanaryBudgetBoundary(t *testing.T) {
	a := train(t)
	cfg := func(budget uint64) CanaryConfig {
		return CanaryConfig{
			Loop:           control.LoopConfig{Tier: control.TierDataPlane, Program: badProgram()},
			MaxBenignDrops: budget,
			Window:         25,
		}
	}
	// Measure the scenario's total benign harm with an effectively
	// unlimited budget.
	probe, err := RunCanary(benignOnly(a, 231), cfg(1<<40))
	if err != nil {
		t.Fatal(err)
	}
	harm := probe.Final.BenignDropped
	if harm < 2 {
		t.Fatalf("scenario produced %d benign drops; boundary test needs at least 2", harm)
	}

	// Budget exactly equal to the harm: the check is strictly-greater, so
	// the canary survives the full stream.
	atBudget, err := RunCanary(benignOnly(a, 231), cfg(harm))
	if err != nil {
		t.Fatal(err)
	}
	if atBudget.RolledBack {
		t.Errorf("rolled back with harm == budget (%d): budget must be an allowance, not a trip-wire", harm)
	}

	// One below: must roll back, and the reported harm must exceed the
	// budget (the watchdog only fires after the budget is crossed).
	overBudget, err := RunCanary(benignOnly(a, 231), cfg(harm-1))
	if err != nil {
		t.Fatal(err)
	}
	if !overBudget.RolledBack {
		t.Fatalf("did not roll back with budget %d and eventual harm %d", harm-1, harm)
	}
	if overBudget.BenignDropsAtRollback <= harm-1 {
		t.Errorf("rollback recorded harm %d not exceeding budget %d", overBudget.BenignDropsAtRollback, harm-1)
	}
	if overBudget.PacketsUntilRollback == 0 {
		t.Error("rollback recorded zero packets processed")
	}
}

// TestCanaryZeroBenignTraffic runs a canary against pure attack traffic:
// with no benign packets to harm, even a zero budget and a drop-everything
// model must never trigger rollback.
func TestCanaryZeroBenignTraffic(t *testing.T) {
	a := train(t)
	attackOnly := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: a.plan, Victim: a.plan.Host(8),
		Start: 0, Duration: 2 * time.Second, Rate: 500, Seed: 241,
	})
	res, err := RunCanary(attackOnly, CanaryConfig{
		Loop:           control.LoopConfig{Tier: control.TierDataPlane, Program: badProgram()},
		MaxBenignDrops: 0,
		Window:         10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RolledBack {
		t.Fatal("canary rolled back with zero benign traffic in the stream")
	}
	if res.Final.BenignDropped != 0 {
		t.Errorf("BenignDropped = %d on attack-only traffic", res.Final.BenignDropped)
	}
	if res.Final.AttackDropped == 0 {
		t.Error("drop-all-UDP canary dropped no attack packets")
	}
}

// TestCanaryConcurrentDeploys races two canary runs sharing the same
// compiled program — a rollback of one deploy must not perturb the other.
// The assertions matter mostly under -race: RunCanary must not smuggle
// mutable state through the shared *dataplane.Program.
func TestCanaryConcurrentDeploys(t *testing.T) {
	a := train(t)
	prog := badProgram()
	type outcome struct {
		res *CanaryResult
		err error
	}
	run := func(seed int64, budget uint64) outcome {
		res, err := RunCanary(benignOnly(a, seed), CanaryConfig{
			Loop:           control.LoopConfig{Tier: control.TierDataPlane, Program: prog},
			MaxBenignDrops: budget,
			Window:         25,
		})
		return outcome{res, err}
	}
	var wg sync.WaitGroup
	var bad, good outcome
	wg.Add(2)
	go func() { defer wg.Done(); bad = run(251, 0) }()      // rolls back almost immediately
	go func() { defer wg.Done(); good = run(252, 1<<40) }() // runs to completion
	wg.Wait()
	if bad.err != nil || good.err != nil {
		t.Fatalf("errors: %v / %v", bad.err, good.err)
	}
	if !bad.res.RolledBack {
		t.Error("zero-budget deploy was not rolled back")
	}
	if good.res.RolledBack {
		t.Error("unlimited-budget deploy was rolled back by its neighbor's watchdog")
	}
	if good.res.Final.BenignDropped == 0 {
		t.Error("surviving deploy recorded no drops — did it process traffic?")
	}
}
