// Package roadtest is the testbed half of Figure 1: it deploys a
// deployable model at the simulated campus border, replays held-out
// benign+attack traffic through the network, and measures what an operator
// would demand to know before production rollout — detection recall,
// benign collateral, reaction time — plus a canary deployment mode that
// rolls a misbehaving model back before it exceeds its harm budget (§4's
// answer to "operators are extremely averse to deploying untested tools").
package roadtest

import (
	"fmt"
	"strings"
	"time"

	"campuslab/internal/control"
	"campuslab/internal/netsim"
	"campuslab/internal/obs"
	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

// Spec is the operator's acceptance contract for a road test.
type Spec struct {
	// MinRecall is the required fraction of attack packets mitigated.
	MinRecall float64
	// MaxCollateral is the tolerated fraction of benign packets dropped.
	MaxCollateral float64
	// MaxReaction bounds attack-start-to-mitigation latency (0 = any).
	MaxReaction time.Duration
}

// Report is the outcome of one road test.
type Report struct {
	Loop    control.LoopStats
	Network netsim.SimStats
	// AttackStart is the ground-truth first attack packet time.
	AttackStart time.Duration
	// Reaction is AttackStart to first mitigation install (0 if inline
	// or no mitigation needed; -1 if mitigation never happened).
	Reaction time.Duration
	// Violations lists failed spec clauses (empty = pass).
	Violations []string
}

// Passed reports whether the deployment met the spec.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

// Summary renders a one-paragraph operator report.
func (r *Report) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "recall=%.3f collateral=%.4f reaction=%v inline=%d filter=%d escalated=%d",
		r.Loop.DetectionRecall(), r.Loop.CollateralRate(), r.Reaction,
		r.Loop.InlineDrops, r.Loop.FilterDrops, r.Loop.Escalations)
	if r.Passed() {
		sb.WriteString(" PASS")
	} else {
		fmt.Fprintf(&sb, " FAIL[%s]", strings.Join(r.Violations, "; "))
	}
	return sb.String()
}

// Config assembles a road test.
type Config struct {
	// Plan is the shared campus address plan.
	Plan *traffic.AddressPlan
	// Net sizes the simulated campus (Plan is overridden with the above).
	Net netsim.Config
	// Loop configures the deployed control loop.
	Loop control.LoopConfig
	// Scenario generates the replay traffic (benign + attack episodes).
	Scenario traffic.Generator
	// Spec is the acceptance contract.
	Spec Spec
}

// Run deploys the loop at the border of a fresh simulated campus and
// replays the scenario through it.
func Run(cfg Config) (*Report, error) {
	if cfg.Scenario == nil {
		return nil, fmt.Errorf("roadtest: Scenario is required")
	}
	if cfg.Plan == nil {
		cfg.Plan = traffic.DefaultPlan(200)
	}
	cfg.Net.Plan = cfg.Plan
	loop, err := control.NewLoop(cfg.Loop)
	if err != nil {
		return nil, fmt.Errorf("roadtest: %w", err)
	}
	topo := netsim.BuildCampus(cfg.Net)
	net := netsim.NewNetwork(topo)

	rep := &Report{AttackStart: -1}
	net.SetBorderBatchFunc(func(ts []time.Duration, frames []*traffic.Frame, sums []*packet.Summary, keep []bool) {
		if rep.AttackStart < 0 {
			for i, f := range frames {
				if f.Label != traffic.LabelBenign {
					rep.AttackStart = ts[i]
					break
				}
			}
		}
		loop.FeedBatch(frames, sums, keep)
	})
	rep.Network = net.Replay(cfg.Scenario)
	rep.Loop = loop.Finish()

	rep.Reaction = -1
	if len(rep.Loop.Mitigations) > 0 && rep.AttackStart >= 0 {
		rep.Reaction = rep.Loop.Mitigations[0].InstalledAt - rep.AttackStart
	} else if rep.Loop.InlineDrops > 0 {
		rep.Reaction = 0 // inline mitigation: immediate
	}
	rep.Violations = checkSpec(cfg.Spec, rep)
	if rep.Passed() {
		obs.Default.Counter("campuslab_roadtest_runs_total", "result", "pass").Inc()
	} else {
		obs.Default.Counter("campuslab_roadtest_runs_total", "result", "fail").Inc()
	}
	return rep, nil
}

func checkSpec(spec Spec, rep *Report) []string {
	var v []string
	if spec.MinRecall > 0 && rep.Loop.DetectionRecall() < spec.MinRecall {
		v = append(v, fmt.Sprintf("recall %.3f < %.3f", rep.Loop.DetectionRecall(), spec.MinRecall))
	}
	if rep.Loop.CollateralRate() > spec.MaxCollateral {
		v = append(v, fmt.Sprintf("collateral %.4f > %.4f", rep.Loop.CollateralRate(), spec.MaxCollateral))
	}
	if spec.MaxReaction > 0 {
		if rep.Reaction < 0 {
			v = append(v, "no mitigation occurred")
		} else if rep.Reaction > spec.MaxReaction {
			v = append(v, fmt.Sprintf("reaction %v > %v", rep.Reaction, spec.MaxReaction))
		}
	}
	return v
}
