package telemetry

import (
	"sort"
	"time"

	"campuslab/internal/obs"
)

// PipelineStats is the historical observability surface for the parallel
// offline loop. Since the obs registry subsumed it, it is a thin view:
// every recording delegates to an obs.Registry (the process-wide
// Pipeline writes obs.Default, so labd's METRICS command and the -http
// endpoint expose the same numbers), and the read accessors reconstruct
// the old shapes from registry series. Kept so existing callers and
// tests keep one stable API.
type PipelineStats struct {
	reg *obs.Registry
}

// NewPipelineStats returns a recorder backed by a private registry
// (isolated from obs.Default — used by tests).
func NewPipelineStats() *PipelineStats {
	return &PipelineStats{reg: obs.NewRegistry()}
}

// Pipeline is the process-wide recorder the offline stages report into,
// backed by the process-wide obs registry.
var Pipeline = &PipelineStats{reg: obs.Default}

// Registry exposes the backing registry.
func (p *PipelineStats) Registry() *obs.Registry { return p.reg }

// RecordStage adds one invocation of stage taking d of wall time.
func (p *PipelineStats) RecordStage(stage string, d time.Duration) {
	p.reg.RecordStage(stage, d)
}

// TimeStage runs fn and records its wall time under stage.
func (p *PipelineStats) TimeStage(stage string, fn func()) {
	done := p.reg.StartSpan(stage)
	fn()
	done()
}

// AddShardContention counts n contended shard-lock acquisitions (an
// acquisition that had to wait because another worker held the shard).
func (p *PipelineStats) AddShardContention(n uint64) {
	p.reg.Counter(obs.ShardContentionName).Add(n)
}

// ShardContention returns the cumulative contended-acquisition count.
func (p *PipelineStats) ShardContention() uint64 {
	return p.reg.Counter(obs.ShardContentionName).Value()
}

// StageSample is one stage's cumulative totals.
type StageSample struct {
	Stage string
	Total time.Duration
	Calls uint64
}

// Mean returns the mean wall time per invocation.
func (s StageSample) Mean() time.Duration {
	if s.Calls == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Calls)
}

func stageLabel(s obs.Series) string {
	for _, l := range s.Labels {
		if l.Key == "stage" {
			return l.Value
		}
	}
	return ""
}

// Stages returns a snapshot of every recorded stage, sorted by name.
func (p *PipelineStats) Stages() []StageSample {
	byStage := make(map[string]*StageSample)
	for _, s := range p.reg.SeriesByName(obs.StageNanosName) {
		byStage[stageLabel(s)] = &StageSample{Stage: stageLabel(s), Total: time.Duration(s.Value)}
	}
	for _, s := range p.reg.SeriesByName(obs.StageCallsName) {
		st := stageLabel(s)
		if sample, ok := byStage[st]; ok {
			sample.Calls = uint64(s.Value)
		} else {
			byStage[st] = &StageSample{Stage: st, Calls: uint64(s.Value)}
		}
	}
	out := make([]StageSample, 0, len(byStage))
	for _, sample := range byStage {
		// A zeroed series (post-Reset) is indistinguishable from a
		// never-recorded stage; report neither.
		if sample.Calls == 0 && sample.Total == 0 {
			continue
		}
		out = append(out, *sample)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// Reset zeroes the stage and contention counters (targeted: other
// families in the backing registry are untouched).
func (p *PipelineStats) Reset() {
	p.reg.ResetNames(obs.StageNanosName, obs.StageCallsName, obs.ShardContentionName)
}
