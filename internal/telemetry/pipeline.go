package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// PipelineStats aggregates wall-clock time per offline-pipeline stage
// (ingest, featurize, train, ...) plus lock-contention counters from the
// sharded data store. It is the observability surface for the parallel
// offline loop: cheap atomic counters, safe for concurrent recording from
// worker pools.
type PipelineStats struct {
	mu     sync.Mutex
	stages map[string]*stageCounter

	shardContention atomic.Uint64
}

type stageCounter struct {
	nanos atomic.Int64
	calls atomic.Uint64
}

// NewPipelineStats returns an empty recorder.
func NewPipelineStats() *PipelineStats {
	return &PipelineStats{stages: make(map[string]*stageCounter)}
}

// Pipeline is the process-wide recorder the offline stages report into.
var Pipeline = NewPipelineStats()

func (p *PipelineStats) stage(name string) *stageCounter {
	p.mu.Lock()
	defer p.mu.Unlock()
	sc, ok := p.stages[name]
	if !ok {
		sc = &stageCounter{}
		p.stages[name] = sc
	}
	return sc
}

// RecordStage adds one invocation of stage taking d of wall time.
func (p *PipelineStats) RecordStage(stage string, d time.Duration) {
	sc := p.stage(stage)
	sc.nanos.Add(int64(d))
	sc.calls.Add(1)
}

// TimeStage runs fn and records its wall time under stage.
func (p *PipelineStats) TimeStage(stage string, fn func()) {
	start := time.Now()
	fn()
	p.RecordStage(stage, time.Since(start))
}

// AddShardContention counts n contended shard-lock acquisitions (an
// acquisition that had to wait because another worker held the shard).
func (p *PipelineStats) AddShardContention(n uint64) {
	p.shardContention.Add(n)
}

// ShardContention returns the cumulative contended-acquisition count.
func (p *PipelineStats) ShardContention() uint64 {
	return p.shardContention.Load()
}

// StageSample is one stage's cumulative totals.
type StageSample struct {
	Stage string
	Total time.Duration
	Calls uint64
}

// Mean returns the mean wall time per invocation.
func (s StageSample) Mean() time.Duration {
	if s.Calls == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Calls)
}

// Stages returns a snapshot of every recorded stage, sorted by name.
func (p *PipelineStats) Stages() []StageSample {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]StageSample, 0, len(p.stages))
	for name, sc := range p.stages {
		out = append(out, StageSample{
			Stage: name,
			Total: time.Duration(sc.nanos.Load()),
			Calls: sc.calls.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// Reset zeroes all counters.
func (p *PipelineStats) Reset() {
	p.mu.Lock()
	p.stages = make(map[string]*stageCounter)
	p.mu.Unlock()
	p.shardContention.Store(0)
}
