// Package telemetry provides the lightweight network sensing primitives of
// §2's activity (i): counters, a count-min sketch, a space-saving
// heavy-hitter tracker, and a sampled NetFlow exporter. The sampled
// exporter is the "bottom-up" baseline data source that E10 compares
// against the full-capture data store.
package telemetry

import (
	"fmt"
	"sort"
	"time"

	"campuslab/internal/packet"
)

// CountMinSketch approximates per-key counts in sublinear space; the
// estimate only ever overshoots. Used for per-flow counters that must fit
// in dataplane-sized memory.
type CountMinSketch struct {
	rows  int
	cols  int
	table []uint32
	seeds []uint64
	total uint64
}

// NewCountMin builds a sketch with the given depth (rows) and width (cols).
func NewCountMin(rows, cols int) (*CountMinSketch, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("telemetry: sketch dims must be positive, got %dx%d", rows, cols)
	}
	s := &CountMinSketch{rows: rows, cols: cols, table: make([]uint32, rows*cols), seeds: make([]uint64, rows)}
	seed := uint64(0x9e3779b97f4a7c15)
	for i := range s.seeds {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		s.seeds[i] = seed
	}
	return s, nil
}

func (s *CountMinSketch) idx(row int, key uint64) int {
	h := key ^ s.seeds[row]
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return row*s.cols + int(h%uint64(s.cols))
}

// Add increments key's count by n.
func (s *CountMinSketch) Add(key uint64, n uint32) {
	for r := 0; r < s.rows; r++ {
		s.table[s.idx(r, key)] += n
	}
	s.total += uint64(n)
}

// Estimate returns the (over-)estimate of key's count.
func (s *CountMinSketch) Estimate(key uint64) uint32 {
	min := s.table[s.idx(0, key)]
	for r := 1; r < s.rows; r++ {
		if v := s.table[s.idx(r, key)]; v < min {
			min = v
		}
	}
	return min
}

// Total returns the sum of all added counts.
func (s *CountMinSketch) Total() uint64 { return s.total }

// Reset zeroes the sketch.
func (s *CountMinSketch) Reset() {
	clear(s.table)
	s.total = 0
}

// HeavyHitters tracks the top-k keys by count with the space-saving
// algorithm: bounded memory, guaranteed to contain any key whose true
// count exceeds total/capacity.
type HeavyHitters struct {
	capacity int
	counts   map[uint64]uint64
	errs     map[uint64]uint64
}

// NewHeavyHitters returns a tracker holding at most capacity keys.
func NewHeavyHitters(capacity int) (*HeavyHitters, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("telemetry: capacity must be positive, got %d", capacity)
	}
	return &HeavyHitters{
		capacity: capacity,
		counts:   make(map[uint64]uint64, capacity),
		errs:     make(map[uint64]uint64, capacity),
	}, nil
}

// Add credits key with n.
func (h *HeavyHitters) Add(key uint64, n uint64) {
	if _, ok := h.counts[key]; ok {
		h.counts[key] += n
		return
	}
	if len(h.counts) < h.capacity {
		h.counts[key] = n
		return
	}
	// Evict the minimum, inherit its count as error bound.
	var minKey uint64
	minVal := uint64(1<<63 - 1)
	for k, v := range h.counts {
		if v < minVal {
			minKey, minVal = k, v
		}
	}
	delete(h.counts, minKey)
	delete(h.errs, minKey)
	h.counts[key] = minVal + n
	h.errs[key] = minVal
}

// Entry is one heavy-hitter result.
type Entry struct {
	Key   uint64
	Count uint64 // upper bound
	Err   uint64 // max overcount
}

// Top returns up to n entries sorted by descending count.
func (h *HeavyHitters) Top(n int) []Entry {
	out := make([]Entry, 0, len(h.counts))
	for k, v := range h.counts {
		out = append(out, Entry{Key: k, Count: v, Err: h.errs[k]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// FlowRecord is a NetFlow-style export record: the sampled, aggregated
// view of a flow — what operators had before full-capture data stores.
type FlowRecord struct {
	Tuple    packet.FiveTuple
	Packets  uint64 // sampled packets observed (scale by rate for estimate)
	Bytes    uint64
	First    time.Duration
	Last     time.Duration
	TCPFlags packet.TCPFlags // OR of sampled flags
}

// SampledExporter implements 1-in-N deterministic packet sampling with
// flow aggregation and idle timeout — the classic router NetFlow pipeline.
type SampledExporter struct {
	rate    int // sample 1 in rate
	idle    time.Duration
	counter int
	active  map[packet.FiveTuple]*FlowRecord
	export  []FlowRecord
	now     time.Duration
}

// NewSampledExporter samples 1-in-rate packets and expires flows after
// idle (default 30s).
func NewSampledExporter(rate int, idle time.Duration) (*SampledExporter, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("telemetry: sample rate must be positive, got %d", rate)
	}
	if idle <= 0 {
		idle = 30 * time.Second
	}
	return &SampledExporter{
		rate: rate, idle: idle,
		active: make(map[packet.FiveTuple]*FlowRecord),
	}, nil
}

// Observe offers one packet summary to the sampler.
func (e *SampledExporter) Observe(ts time.Duration, s *packet.Summary) {
	e.now = ts
	e.counter++
	if e.counter%e.rate != 0 {
		return
	}
	key := s.Tuple.Canonical()
	rec, ok := e.active[key]
	if !ok {
		rec = &FlowRecord{Tuple: key, First: ts}
		e.active[key] = rec
	} else if ts-rec.Last > e.idle {
		// Idle-expire into the export list and start a fresh record.
		e.export = append(e.export, *rec)
		*rec = FlowRecord{Tuple: key, First: ts}
	}
	rec.Packets++
	rec.Bytes += uint64(s.WireLen)
	rec.Last = ts
	rec.TCPFlags |= s.TCPFlags
}

// Flush expires all active flows and returns every exported record.
func (e *SampledExporter) Flush() []FlowRecord {
	keys := make([]packet.FiveTuple, 0, len(e.active))
	for k := range e.active {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Hash() < keys[j].Hash() })
	for _, k := range keys {
		e.export = append(e.export, *e.active[k])
	}
	e.active = make(map[packet.FiveTuple]*FlowRecord)
	out := e.export
	e.export = nil
	return out
}

// SampleRate returns the configured 1-in-N rate.
func (e *SampledExporter) SampleRate() int { return e.rate }
