package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestPipelineStatsConcurrent(t *testing.T) {
	p := NewPipelineStats()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p.RecordStage("ingest", time.Millisecond)
				p.AddShardContention(1)
			}
			p.RecordStage("train", 2*time.Millisecond)
		}()
	}
	wg.Wait()
	if got := p.ShardContention(); got != 800 {
		t.Fatalf("contention = %d, want 800", got)
	}
	stages := p.Stages()
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(stages))
	}
	// Stages() is sorted by name.
	if stages[0].Stage != "ingest" || stages[1].Stage != "train" {
		t.Fatalf("stage order %q, %q", stages[0].Stage, stages[1].Stage)
	}
	if stages[0].Calls != 800 || stages[0].Total != 800*time.Millisecond {
		t.Fatalf("ingest stage = %+v", stages[0])
	}
	if stages[1].Calls != 8 || stages[1].Total != 16*time.Millisecond {
		t.Fatalf("train stage = %+v", stages[1])
	}
	if mean := stages[1].Mean(); mean != 2*time.Millisecond {
		t.Fatalf("train mean = %v", mean)
	}
	p.Reset()
	if p.ShardContention() != 0 || len(p.Stages()) != 0 {
		t.Fatal("Reset did not clear stats")
	}
}

func TestPipelineTimeStage(t *testing.T) {
	p := NewPipelineStats()
	p.TimeStage("featurize", func() {})
	st := p.Stages()
	if len(st) != 1 || st[0].Stage != "featurize" || st[0].Calls != 1 {
		t.Fatalf("stages = %+v", st)
	}
}
