package telemetry

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

func TestCountMinNeverUndercounts(t *testing.T) {
	s, err := NewCountMin(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[uint64]uint32{}
	for i := uint64(0); i < 2000; i++ {
		key := i % 300
		s.Add(key, 1)
		truth[key]++
	}
	for k, v := range truth {
		if est := s.Estimate(k); est < v {
			t.Fatalf("undercount: key %d est %d < true %d", k, est, v)
		}
	}
	if s.Total() != 2000 {
		t.Errorf("Total = %d", s.Total())
	}
	s.Reset()
	if s.Estimate(5) != 0 || s.Total() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestCountMinProperty(t *testing.T) {
	s, _ := NewCountMin(4, 1024)
	counts := map[uint64]uint32{}
	fn := func(key uint64, n uint8) bool {
		s.Add(key, uint32(n))
		counts[key] += uint32(n)
		return s.Estimate(key) >= counts[key]
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCountMinValidation(t *testing.T) {
	if _, err := NewCountMin(0, 10); err == nil {
		t.Error("accepted zero rows")
	}
	if _, err := NewCountMin(2, 0); err == nil {
		t.Error("accepted zero cols")
	}
}

func TestHeavyHittersFindsElephants(t *testing.T) {
	h, err := NewHeavyHitters(10)
	if err != nil {
		t.Fatal(err)
	}
	// Two elephants among many mice.
	for i := 0; i < 10000; i++ {
		h.Add(1, 1)
		if i%2 == 0 {
			h.Add(2, 1)
		}
		h.Add(uint64(100+i%500), 1) // mice
	}
	top := h.Top(2)
	if len(top) != 2 || top[0].Key != 1 || top[1].Key != 2 {
		t.Errorf("top = %+v", top)
	}
	// Space-saving guarantee: reported count >= true count.
	if top[0].Count < 10000 {
		t.Errorf("elephant undercounted: %d", top[0].Count)
	}
}

func TestHeavyHittersCapacityBounded(t *testing.T) {
	h, _ := NewHeavyHitters(5)
	for i := uint64(0); i < 1000; i++ {
		h.Add(i, 1)
	}
	if got := len(h.Top(100)); got > 5 {
		t.Errorf("tracker grew to %d entries", got)
	}
	if _, err := NewHeavyHitters(0); err == nil {
		t.Error("accepted zero capacity")
	}
}

func TestSampledExporterAggregation(t *testing.T) {
	e, err := NewSampledExporter(1, 0) // sample everything
	if err != nil {
		t.Fatal(err)
	}
	tuple := packet.FiveTuple{
		Proto: packet.IPProtocolTCP,
		SrcIP: ip("10.0.0.1"), DstIP: ip("10.0.0.2"),
		SrcPort: 1000, DstPort: 443,
	}
	s := packet.Summary{Tuple: tuple, WireLen: 100, TCPFlags: packet.TCPSyn}
	e.Observe(0, &s)
	s.TCPFlags = packet.TCPAck
	s.Tuple = tuple.Reverse() // opposite direction, same flow
	e.Observe(time.Millisecond, &s)
	recs := e.Flush()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1 (bidirectional aggregation)", len(recs))
	}
	r := recs[0]
	if r.Packets != 2 || r.Bytes != 200 {
		t.Errorf("packets/bytes = %d/%d", r.Packets, r.Bytes)
	}
	if !r.TCPFlags.Has(packet.TCPSyn | packet.TCPAck) {
		t.Errorf("flags = %v", r.TCPFlags)
	}
}

func TestSampledExporterSamplesOneInN(t *testing.T) {
	e, _ := NewSampledExporter(10, 0)
	s := packet.Summary{
		Tuple: packet.FiveTuple{
			Proto: packet.IPProtocolUDP,
			SrcIP: ip("10.0.0.1"), DstIP: ip("8.8.8.8"), SrcPort: 5, DstPort: 53,
		},
		WireLen: 100,
	}
	for i := 0; i < 1000; i++ {
		e.Observe(time.Duration(i)*time.Millisecond, &s)
	}
	recs := e.Flush()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Packets != 100 {
		t.Errorf("sampled packets = %d, want 100 (1-in-10 of 1000)", recs[0].Packets)
	}
}

func TestSampledExporterIdleTimeoutSplitsFlows(t *testing.T) {
	e, _ := NewSampledExporter(1, time.Second)
	s := packet.Summary{
		Tuple: packet.FiveTuple{
			Proto: packet.IPProtocolUDP,
			SrcIP: ip("10.0.0.1"), DstIP: ip("8.8.8.8"), SrcPort: 5, DstPort: 53,
		},
		WireLen: 50,
	}
	e.Observe(0, &s)
	e.Observe(100*time.Millisecond, &s)
	e.Observe(10*time.Second, &s) // > idle gap
	recs := e.Flush()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (idle split)", len(recs))
	}
}

func TestSampledExporterValidation(t *testing.T) {
	if _, err := NewSampledExporter(0, 0); err == nil {
		t.Error("accepted zero rate")
	}
}

func TestSamplingLosesSmallFlows(t *testing.T) {
	// The E10 premise: 1-in-100 sampling misses most mice flows entirely
	// while full capture sees them all.
	gen := traffic.NewCampus(traffic.Profile{FlowsPerSecond: 200, Duration: 2 * time.Second, Seed: 5})
	full, _ := NewSampledExporter(1, 0)
	sampled, _ := NewSampledExporter(100, 0)
	fp := packet.NewFlowParser()
	var f traffic.Frame
	var s packet.Summary
	for gen.Next(&f) {
		if err := fp.Parse(f.Data, &s); err != nil {
			continue
		}
		full.Observe(f.TS, &s)
		sampled.Observe(f.TS, &s)
	}
	nf, ns := len(full.Flush()), len(sampled.Flush())
	if ns*2 >= nf {
		t.Errorf("sampling saw %d flows vs %d full — expected to miss most", ns, nf)
	}
}

func ip(s string) netip.Addr { return netip.MustParseAddr(s) }
