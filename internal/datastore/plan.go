package datastore

// The query planner, following the dataplane's compile-don't-interpret
// playbook: ParseFilter walks the expression AST once, pulls out the
// conjuncts that are exactly answerable from posting lists, and compiles
// everything else into a single residual predicate. At query time each
// shard intersects the candidate posting lists (clipped to the filter's
// time bounds via the (TS, ID) co-sort) and evaluates only the residual
// on the candidates; shards where the index would not prune enough fall
// back to the linear scan. Both paths produce identical results — the
// CAMPUSLAB_SCAN_QUERY / SetScanQuery knob forces the serial scan as the
// equivalence reference, mirroring the dataplane's CAMPUSLAB_SCAN_PATH.

// queryPlan is what the planner derives from one filter expression. It is
// store-independent and immutable, so it is computed once at parse time
// and shared by every query using the filter.
type queryPlan struct {
	// indexable is true when at least one top-level AND-conjunct maps to
	// a posting list. OR/NOT at the top level, or expressions made only
	// of range/inequality leaves, plan as a full scan.
	indexable bool
	// keys are the posting lists to intersect per shard.
	keys []ixRef
	// residual is the conjunction of all non-indexed conjuncts (including
	// ts comparisons, whose bounds prune the scan window but are not
	// exact: `ts < 5s` and `ts <= 5s` share a window). nil means every
	// conjunct was index-exact and candidates need no re-check.
	residual Predicate
}

// selectivityFactor: a shard takes the index path only when its smallest
// posting list is under 1/selectivityFactor of the scan window — past
// that, sequential slab traversal beats candidate lookups.
const selectivityFactor = 4

// indexMinWindow: scan windows smaller than this are cheaper to walk than
// to plan over.
const indexMinWindow = 32

// buildPlan derives the query plan from a parsed expression tree.
func buildPlan(root *node) queryPlan {
	var conjuncts []*node
	collectConjuncts(root, &conjuncts)
	var p queryPlan
	var resid []Predicate
	for _, c := range conjuncts {
		if c.ix != ixNone {
			p.keys = append(p.keys, ixRef{c.ix, c.ixVal})
			continue // exact: posting membership ⇔ conjunct truth
		}
		resid = append(resid, c.pred)
	}
	if len(p.keys) == 0 {
		return queryPlan{}
	}
	p.indexable = true
	switch len(resid) {
	case 0:
		p.residual = nil
	case 1:
		p.residual = resid[0]
	default:
		p.residual = func(sp *StoredPacket) bool {
			for _, pr := range resid {
				if !pr(sp) {
					return false
				}
			}
			return true
		}
	}
	return p
}

// collectConjuncts flattens the top-level AND chain. Anything that is not
// an AND node (OR, NOT, a lone leaf) is one opaque conjunct.
func collectConjuncts(n *node, out *[]*node) {
	if n.kind == "and" {
		for _, k := range n.kids {
			collectConjuncts(k, out)
		}
		return
	}
	*out = append(*out, n)
}

// shardCandidates runs the index path for one shard over slab positions
// [lo, hi): it clips each posting list to the window's ID interval,
// checks selectivity, and intersects. ok=false means this shard should
// scan instead (no index advantage or plan not indexable).
func (px *postings) shardCandidates(plan *queryPlan, slab []StoredPacket, lo, hi int) (cand []PacketID, ok bool) {
	if !plan.indexable || hi-lo < indexMinWindow {
		return nil, false
	}
	loID, hiID := slab[lo].ID, slab[hi-1].ID+1
	lists := make([][]PacketID, len(plan.keys))
	shortest := 0
	for i, key := range plan.keys {
		lists[i] = clipIDs(px.lookup(key), loID, hiID)
		if len(lists[i]) < len(lists[shortest]) {
			shortest = i
		}
	}
	if len(lists[shortest]) == 0 {
		return nil, true // provably empty: exact, and maximally selective
	}
	if len(lists[shortest])*selectivityFactor > hi-lo {
		return nil, false // poor selectivity: scanning the window is cheaper
	}
	lists[0], lists[shortest] = lists[shortest], lists[0]
	return intersectPostings(lists), true
}

// segCandidates runs the index path for one cold segment over row
// positions [rlo, rhi): clip each row list to the window, intersect
// shortest-first. Unlike shardCandidates there is no selectivity fallback
// — for a compressed segment, "scan instead" would mean inflating the
// whole data column, which the candidate walk avoids; the zone map has
// already proven the segment can match, so the index path always wins.
// ok=false only when the plan is not indexable.
func (ix *segIndex) segCandidates(plan *queryPlan, rlo, rhi uint32) (cand []uint32, ok bool) {
	if !plan.indexable || rhi <= rlo {
		return nil, plan.indexable
	}
	lists := make([][]uint32, len(plan.keys))
	shortest := 0
	for i, key := range plan.keys {
		lists[i] = clipRows(ix.lookup(key), rlo, rhi)
		if len(lists[i]) < len(lists[shortest]) {
			shortest = i
		}
	}
	if len(lists[shortest]) == 0 {
		return nil, true
	}
	lists[0], lists[shortest] = lists[shortest], lists[0]
	return intersectRows(lists), true
}
