package datastore

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"campuslab/internal/eventlog"
	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

func TestCorrelateEventsLinksByAddressAndTime(t *testing.T) {
	st := fillStore(t)
	// Pick a real flow endpoint from the store and synthesize a firewall
	// event naming it while the flow is active.
	flows := st.Flows()
	var target FlowMeta
	for _, fm := range flows {
		if fm.Packets >= 2 && fm.Key.SrcIP.Is4() {
			target = fm
			break
		}
	}
	if target.Packets == 0 {
		t.Fatal("no suitable flow")
	}
	evs := []eventlog.Event{
		{
			TS: target.First, Source: eventlog.SourceFirewall, Severity: eventlog.SevWarning,
			Host: "fw-border", Message: fmt.Sprintf("deny tcp %s:23 (policy)", target.Key.SrcIP),
		},
		{
			TS: target.First, Source: eventlog.SourceSyslog, Severity: eventlog.SevInfo,
			Host: "srv-1", Message: "no address here",
		},
		{
			// Event far outside any plausible window.
			TS: target.Last + time.Hour, Source: eventlog.SourceFirewall, Severity: eventlog.SevWarning,
			Host: "fw-border", Message: fmt.Sprintf("deny udp %s:161", target.Key.SrcIP),
		},
	}
	st.AddEvents(evs)
	links := st.CorrelateEvents(2 * time.Second)
	if len(links) == 0 {
		t.Fatal("no correlations")
	}
	foundTarget := false
	for _, l := range links {
		if l.Event.TS >= target.Last+time.Hour {
			t.Error("out-of-window event correlated")
		}
		if l.Event.Message == "no address here" {
			t.Error("address-free event correlated")
		}
		if l.Flow.Key == target.Key {
			foundTarget = true
			if l.Gap != 0 {
				t.Errorf("gap = %v for an event inside the flow's span", l.Gap)
			}
		}
	}
	if !foundTarget {
		t.Error("target flow not linked to its firewall event")
	}
}

func TestCorrelateEventsGapMeasured(t *testing.T) {
	st := New()
	buf := packet.NewSerializeBuffer()
	err := packet.Serialize(buf,
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{TTL: 64, Protocol: packet.IPProtocolTCP,
			SrcIP: mustIP("10.0.0.1"), DstIP: mustIP("198.51.100.7")},
		&packet.TCP{SrcPort: 1000, DstPort: 443, Flags: packet.TCPSyn},
	)
	if err != nil {
		t.Fatal(err)
	}
	f := traffic.Frame{TS: 10 * time.Second, Data: append([]byte(nil), buf.Bytes()...)}
	st.IngestFrame(&f)
	st.AddEvents([]eventlog.Event{{
		TS: 12 * time.Second, Source: eventlog.SourceFirewall,
		Message: "rate-limit triggered for 198.51.100.7",
	}})
	links := st.CorrelateEvents(5 * time.Second)
	if len(links) != 1 {
		t.Fatalf("links = %d", len(links))
	}
	if links[0].Gap != 2*time.Second {
		t.Errorf("gap = %v, want 2s", links[0].Gap)
	}
}

func mustIP(s string) netip.Addr { return netip.MustParseAddr(s) }
