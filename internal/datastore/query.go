package datastore

import (
	"sort"
	"time"

	"campuslab/internal/traffic"
)

// mergeCursor walks several shard packet slabs in global (TS, ID) order.
// Each shard slab is already sorted by (TS, ID), so the merge is a k-way
// min-pick; shard count is small (≤256), keeping the pick linear scan
// cheaper than a heap at campus scale.
type mergeCursor struct {
	slabs [][]StoredPacket
	pos   []int
}

func newMergeCursor(slabs [][]StoredPacket) *mergeCursor {
	return &mergeCursor{slabs: slabs, pos: make([]int, len(slabs))}
}

// next returns the globally next packet, or nil when exhausted.
func (m *mergeCursor) next() *StoredPacket {
	best := -1
	var bestPkt *StoredPacket
	for si, slab := range m.slabs {
		p := m.pos[si]
		if p >= len(slab) {
			continue
		}
		sp := &slab[p]
		if best < 0 || sp.TS < bestPkt.TS || (sp.TS == bestPkt.TS && sp.ID < bestPkt.ID) {
			best, bestPkt = si, sp
		}
	}
	if best < 0 {
		return nil
	}
	m.pos[best]++
	return bestPkt
}

// scanRange visits packets with TS in [from, to) in global (TS, ID) order,
// stopping early if visit returns false. Shard read locks are held for the
// duration. A negative `to` means unbounded.
func (s *Store) scanRange(from, to time.Duration, visit func(*StoredPacket) bool) {
	unlock := s.rlockAll()
	defer unlock()
	slabs := make([][]StoredPacket, len(s.shards))
	for i, sh := range s.shards {
		slab := sh.packets
		lo := 0
		if from > 0 {
			lo = sort.Search(len(slab), func(i int) bool { return slab[i].TS >= from })
		}
		hi := len(slab)
		if to >= 0 {
			hi = sort.Search(len(slab), func(i int) bool { return slab[i].TS >= to })
		}
		slabs[i] = slab[lo:hi]
	}
	cur := newMergeCursor(slabs)
	for sp := cur.next(); sp != nil; sp = cur.next() {
		if !visit(sp) {
			return
		}
	}
}

// Select scans the store for packets matching the filter, using the time
// index to skip ranges the expression excludes. limit 0 means unlimited.
// Results are in global time order regardless of sharding.
func (s *Store) Select(f *Filter, limit int) []StoredPacket {
	from, to := time.Duration(0), time.Duration(-1)
	if min, _, hasMin, _ := f.TimeBounds(); hasMin {
		from = min
	}
	if _, max, _, hasMax := f.TimeBounds(); hasMax {
		to = max + 1 // serial path used ts > max as the exclusive bound
	}
	var out []StoredPacket
	s.scanRange(from, to, func(sp *StoredPacket) bool {
		if f.Match(sp) {
			out = append(out, *sp)
			if limit > 0 && len(out) >= limit {
				return false
			}
		}
		return true
	})
	return out
}

// Count returns the number of packets matching the filter. Order is
// irrelevant for counting, so shards are scanned independently.
func (s *Store) Count(f *Filter) int {
	unlock := s.rlockAll()
	defer unlock()
	n := 0
	for _, sh := range s.shards {
		for i := range sh.packets {
			if f.Match(&sh.packets[i]) {
				n++
			}
		}
	}
	return n
}

// SelectExpr parses expr and runs Select.
func (s *Store) SelectExpr(expr string, limit int) ([]StoredPacket, error) {
	f, err := ParseFilter(expr)
	if err != nil {
		return nil, err
	}
	return s.Select(f, limit), nil
}

// PacketsBetween returns packets in [from, to), via the time index.
func (s *Store) PacketsBetween(from, to time.Duration) []StoredPacket {
	var out []StoredPacket
	s.scanRange(from, to, func(sp *StoredPacket) bool {
		out = append(out, *sp)
		return true
	})
	return out
}

// Scan streams every stored packet through visit in time order, stopping
// early if visit returns false. It holds the shard read locks for the
// duration; visitors must be fast and must not call back into the store.
func (s *Store) Scan(visit func(*StoredPacket) bool) {
	s.scanRange(0, -1, visit)
}

// FlowsWhere returns flow metadata satisfying pred, ordered by first TS.
func (s *Store) FlowsWhere(pred func(*FlowMeta) bool) []FlowMeta {
	unlock := s.rlockAll()
	var out []FlowMeta
	for _, sh := range s.shards {
		for _, fm := range sh.flows {
			if pred(fm) {
				cp := *fm
				cp.pktIDs = append([]PacketID(nil), fm.pktIDs...)
				out = append(out, cp)
			}
		}
	}
	unlock()
	sortFlows(out)
	return out
}

// LabelCounts tallies flows per ground-truth label — the class balance a
// dataset builder needs before training.
func (s *Store) LabelCounts() map[traffic.Label]int {
	unlock := s.rlockAll()
	defer unlock()
	out := make(map[traffic.Label]int)
	for _, sh := range s.shards {
		for _, fm := range sh.flows {
			out[fm.Label]++
		}
	}
	return out
}
