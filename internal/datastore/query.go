package datastore

import (
	"sort"
	"sync/atomic"
	"time"

	"campuslab/internal/obs"
	"campuslab/internal/parallel"
	"campuslab/internal/traffic"
)

// Query-engine metrics: planner decisions, index effectiveness (rows
// touched vs rows returned), and end-to-end latency. These make the
// planner auditable from labd METRICS / the /metrics endpoint.
var (
	obsQueryPlannerIndex = obs.Default.Counter("campuslab_query_planner_total", "path", "index")
	obsQueryPlannerScan  = obs.Default.Counter("campuslab_query_planner_total", "path", "scan")
	obsQueryPlannerRef   = obs.Default.Counter("campuslab_query_planner_total", "path", "reference")
	obsQueryIndexShards  = obs.Default.Counter("campuslab_query_index_shards_total")
	obsQueryRowsScanned  = obs.Default.Counter("campuslab_query_rows_scanned_total")
	obsQueryRowsMatched  = obs.Default.Counter("campuslab_query_rows_matched_total")
	obsQuerySeconds      = obs.Default.Histogram("campuslab_query_seconds",
		[]float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1})
)

// queryStats accumulates per-query execution counters across the shard
// goroutines, then flushes into the registry once.
type queryStats struct {
	indexShards atomic.Uint64
	rowsScanned atomic.Uint64
}

func (qs *queryStats) flush(matched int, indexable bool) {
	if indexable {
		obsQueryPlannerIndex.Inc()
	} else {
		obsQueryPlannerScan.Inc()
	}
	obsQueryIndexShards.Add(qs.indexShards.Load())
	obsQueryRowsScanned.Add(qs.rowsScanned.Load())
	obsQueryRowsMatched.Add(uint64(matched))
}

// mergeCursor walks several shard packet slabs in global (TS, ID) order.
// Each shard slab is already sorted by (TS, ID), so the merge is a k-way
// min-pick; shard count is small (≤256), keeping the pick linear scan
// cheaper than a heap at campus scale.
type mergeCursor struct {
	slabs [][]StoredPacket
	pos   []int
}

func newMergeCursor(slabs [][]StoredPacket) *mergeCursor {
	return &mergeCursor{slabs: slabs, pos: make([]int, len(slabs))}
}

// next returns the globally next packet, or nil when exhausted.
func (m *mergeCursor) next() *StoredPacket {
	best := -1
	var bestPkt *StoredPacket
	for si, slab := range m.slabs {
		p := m.pos[si]
		if p >= len(slab) {
			continue
		}
		sp := &slab[p]
		if best < 0 || sp.TS < bestPkt.TS || (sp.TS == bestPkt.TS && sp.ID < bestPkt.ID) {
			best, bestPkt = si, sp
		}
	}
	if best < 0 {
		return nil
	}
	m.pos[best]++
	return bestPkt
}

// sliceWindow returns the slab position interval [lo, hi) holding TS in
// [from, to). A negative `to` means unbounded.
func sliceWindow(slab []StoredPacket, from, to time.Duration) (lo, hi int) {
	lo = 0
	if from > 0 {
		lo = sort.Search(len(slab), func(i int) bool { return slab[i].TS >= from })
	}
	hi = len(slab)
	if to >= 0 {
		hi = sort.Search(len(slab), func(i int) bool { return slab[i].TS >= to })
	}
	return lo, hi
}

// scanRange visits packets with TS in [from, to) in global (TS, ID) order,
// stopping early if visit returns false. Shard read locks are held for the
// duration. A negative `to` means unbounded. On a tiered store the cold
// segments in the window decode into extra sorted runs that join the same
// merge — the tier read lock is taken before the shard locks (the global
// lock order) and held throughout, so no seal can move rows between tiers
// mid-scan.
func (s *Store) scanRange(from, to time.Duration, visit func(*StoredPacket) bool) {
	var cold [][]StoredPacket
	if tr := s.tier.Load(); tr != nil {
		tr.mu.RLock()
		defer tr.mu.RUnlock()
		cold = s.coldWindowRuns(tr, from, to)
	}
	unlock := s.rlockAll()
	defer unlock()
	slabs := make([][]StoredPacket, len(s.shards), len(s.shards)+len(cold))
	for i, sh := range s.shards {
		lo, hi := sliceWindow(sh.packets, from, to)
		slabs[i] = sh.packets[lo:hi]
	}
	slabs = append(slabs, cold...)
	cur := newMergeCursor(slabs)
	for sp := cur.next(); sp != nil; sp = cur.next() {
		if !visit(sp) {
			return
		}
	}
}

// scanWindow converts the filter's extracted time bounds into the
// half-open scan interval the shard windows use. The bounds prune the
// window but are not exact (`ts < 5s` and `ts <= 5s` share one window) —
// ts conjuncts are always re-checked by the predicate/residual.
func (f *Filter) scanWindow() (from, to time.Duration) {
	from, to = 0, -1
	min, max, hasMin, hasMax := f.TimeBounds()
	if hasMin {
		from = min
	}
	if hasMax {
		to = max + 1 // serial path used ts > max as the exclusive bound
	}
	return from, to
}

// Select returns packets matching the filter in global (TS, ID) order,
// regardless of sharding. limit 0 means unlimited. The planner runs
// index-assisted, shard-parallel execution; results are byte-identical to
// the serial full scan (forced via SetScanQuery / CAMPUSLAB_SCAN_QUERY).
func (s *Store) Select(f *Filter, limit int) []StoredPacket {
	start := time.Now()
	defer func() { obsQuerySeconds.Observe(time.Since(start).Seconds()) }()
	from, to := f.scanWindow()
	if s.scanQuery.Load() {
		obsQueryPlannerRef.Inc()
		return s.selectScan(f, limit, from, to)
	}
	var qs queryStats
	var cold [][]StoredPacket
	if tr := s.tier.Load(); tr != nil {
		tr.mu.RLock()
		defer tr.mu.RUnlock()
		cold = s.coldSelect(tr, f, from, to, limit, &qs)
	}
	results := make([][]StoredPacket, len(s.shards), len(s.shards)+len(cold))
	unlock := s.rlockAll()
	parallel.For(len(s.shards), int(s.queryWorkers.Load()), func(si int) {
		results[si] = s.shards[si].selectLocal(f, from, to, limit, &qs)
	})
	unlock()
	results = append(results, cold...)
	out := mergeSelect(results, limit)
	qs.flush(len(out), f.plan.indexable)
	return out
}

// selectScan is the serial full-scan reference implementation of Select —
// the behaviour the engine must reproduce byte-for-byte.
func (s *Store) selectScan(f *Filter, limit int, from, to time.Duration) []StoredPacket {
	var out []StoredPacket
	s.scanRange(from, to, func(sp *StoredPacket) bool {
		if f.Match(sp) {
			out = append(out, *sp)
			if limit > 0 && len(out) >= limit {
				return false
			}
		}
		return true
	})
	return out
}

// selectLocal evaluates the filter over one shard, returning matches in
// slab (= (TS, ID)) order. A per-shard limit prune is sound: the global
// merge can never need more than `limit` packets from any one shard.
func (sh *shard) selectLocal(f *Filter, from, to time.Duration, limit int, qs *queryStats) []StoredPacket {
	slab := sh.packets
	lo, hi := sliceWindow(slab, from, to)
	if lo >= hi {
		return nil
	}
	var out []StoredPacket
	if cand, ok := sh.index.shardCandidates(&f.plan, slab, lo, hi); ok {
		qs.indexShards.Add(1)
		qs.rowsScanned.Add(uint64(len(cand)))
		pos := lo
		for _, id := range cand {
			pos += sort.Search(hi-pos, func(k int) bool { return slab[pos+k].ID >= id })
			sp := &slab[pos]
			pos++
			if f.plan.residual == nil || f.plan.residual(sp) {
				out = append(out, *sp)
				if limit > 0 && len(out) >= limit {
					break
				}
			}
		}
		return out
	}
	qs.rowsScanned.Add(uint64(hi - lo))
	for i := lo; i < hi; i++ {
		if f.Match(&slab[i]) {
			out = append(out, slab[i])
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	return out
}

// mergeSelect k-way merges per-shard result runs into global (TS, ID)
// order, honouring the limit. Returns nil (not an empty slice) when
// nothing matched, matching the serial reference.
func mergeSelect(results [][]StoredPacket, limit int) []StoredPacket {
	total := 0
	for _, r := range results {
		total += len(r)
	}
	if total == 0 {
		return nil
	}
	if limit > 0 && total > limit {
		total = limit
	}
	out := make([]StoredPacket, 0, total)
	cur := newMergeCursor(results)
	for sp := cur.next(); sp != nil; sp = cur.next() {
		out = append(out, *sp)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Count returns the number of packets matching the filter. Order is
// irrelevant for counting, so shards count independently (in parallel)
// and the partial sums add up; with no residual predicate the count is
// the posting-list intersection size and no packet is touched.
func (s *Store) Count(f *Filter) int {
	start := time.Now()
	defer func() { obsQuerySeconds.Observe(time.Since(start).Seconds()) }()
	if s.scanQuery.Load() {
		obsQueryPlannerRef.Inc()
		return s.countScan(f)
	}
	from, to := f.scanWindow()
	var qs queryStats
	n := 0
	if tr := s.tier.Load(); tr != nil {
		tr.mu.RLock()
		defer tr.mu.RUnlock()
		n = s.coldCount(tr, f, from, to, &qs)
	}
	counts := make([]int, len(s.shards))
	unlock := s.rlockAll()
	parallel.For(len(s.shards), int(s.queryWorkers.Load()), func(si int) {
		counts[si] = s.shards[si].countLocal(f, from, to, &qs)
	})
	unlock()
	for _, c := range counts {
		n += c
	}
	qs.flush(n, f.plan.indexable)
	return n
}

// countScan is the serial full-scan reference implementation of Count.
// Routed through scanRange so it spans the cold tier like every other
// reference path (order is irrelevant for counting, but the shared walk
// keeps one cold-decode implementation).
func (s *Store) countScan(f *Filter) int {
	n := 0
	s.scanRange(0, -1, func(sp *StoredPacket) bool {
		if f.Match(sp) {
			n++
		}
		return true
	})
	return n
}

// countLocal counts one shard's matches. Windowing by the filter's time
// bounds is sound for counting too: a packet outside the window fails the
// ts conjunct that produced the bound.
func (sh *shard) countLocal(f *Filter, from, to time.Duration, qs *queryStats) int {
	slab := sh.packets
	lo, hi := sliceWindow(slab, from, to)
	if lo >= hi {
		return 0
	}
	if cand, ok := sh.index.shardCandidates(&f.plan, slab, lo, hi); ok {
		qs.indexShards.Add(1)
		qs.rowsScanned.Add(uint64(len(cand)))
		if f.plan.residual == nil {
			return len(cand)
		}
		n, pos := 0, lo
		for _, id := range cand {
			pos += sort.Search(hi-pos, func(k int) bool { return slab[pos+k].ID >= id })
			if f.plan.residual(&slab[pos]) {
				n++
			}
			pos++
		}
		return n
	}
	qs.rowsScanned.Add(uint64(hi - lo))
	n := 0
	for i := lo; i < hi; i++ {
		if f.Match(&slab[i]) {
			n++
		}
	}
	return n
}

// SelectExpr parses expr (through the compiled-filter cache) and runs
// Select.
func (s *Store) SelectExpr(expr string, limit int) ([]StoredPacket, error) {
	f, err := ParseFilterCached(expr)
	if err != nil {
		return nil, err
	}
	return s.Select(f, limit), nil
}

// CountExpr parses expr (through the compiled-filter cache) and runs
// Count.
func (s *Store) CountExpr(expr string) (int, error) {
	f, err := ParseFilterCached(expr)
	if err != nil {
		return 0, err
	}
	return s.Count(f), nil
}

// PacketsBetween returns packets in [from, to), via the time index.
func (s *Store) PacketsBetween(from, to time.Duration) []StoredPacket {
	var out []StoredPacket
	s.scanRange(from, to, func(sp *StoredPacket) bool {
		out = append(out, *sp)
		return true
	})
	return out
}

// Scan streams every stored packet through visit in time order, stopping
// early if visit returns false. It holds the shard read locks for the
// duration; visitors must be fast and must not call back into the store.
func (s *Store) Scan(visit func(*StoredPacket) bool) {
	s.scanRange(0, -1, visit)
}

// FlowsWhere returns flow metadata satisfying pred, ordered by first TS.
// The returned metas carry no per-flow packet IDs (PacketIDs reports nil)
// — skipping that deep copy keeps predicate-driven listings cheap; use
// FlowsWhereIDs when the IDs are needed. pred runs concurrently across
// shards, so it must be safe for concurrent calls (any pure function is).
func (s *Store) FlowsWhere(pred func(*FlowMeta) bool) []FlowMeta {
	return s.flowsWhere(pred, false)
}

// FlowsWhereIDs is FlowsWhere with each flow's packet-ID list deep-copied
// into the result.
func (s *Store) FlowsWhereIDs(pred func(*FlowMeta) bool) []FlowMeta {
	return s.flowsWhere(pred, true)
}

func (s *Store) flowsWhere(pred func(*FlowMeta) bool, withIDs bool) []FlowMeta {
	unlock := s.rlockAll()
	partial := make([][]FlowMeta, len(s.shards))
	parallel.For(len(s.shards), int(s.queryWorkers.Load()), func(si int) {
		var out []FlowMeta
		for _, fm := range s.shards[si].flows {
			if pred(fm) {
				cp := *fm
				cp.pktIDs = nil
				if withIDs {
					cp.pktIDs = append([]PacketID(nil), fm.pktIDs...)
				}
				out = append(out, cp)
			}
		}
		partial[si] = out
	})
	unlock()
	var out []FlowMeta
	for _, p := range partial {
		out = append(out, p...)
	}
	sortFlows(out)
	return out
}

// LabelCounts tallies flows per ground-truth label — the class balance a
// dataset builder needs before training. Shards tally independently (in
// parallel); the merged map is order-independent.
func (s *Store) LabelCounts() map[traffic.Label]int {
	unlock := s.rlockAll()
	defer unlock()
	partial := make([]map[traffic.Label]int, len(s.shards))
	parallel.For(len(s.shards), int(s.queryWorkers.Load()), func(si int) {
		m := make(map[traffic.Label]int)
		for _, fm := range s.shards[si].flows {
			m[fm.Label]++
		}
		partial[si] = m
	})
	out := make(map[traffic.Label]int)
	for _, m := range partial {
		for k, v := range m {
			out[k] += v
		}
	}
	return out
}
