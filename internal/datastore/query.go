package datastore

import (
	"sort"
	"time"

	"campuslab/internal/traffic"
)

// Select scans the store for packets matching the filter, using the time
// index to skip ranges the expression excludes. limit 0 means unlimited.
func (s *Store) Select(f *Filter, limit int) []StoredPacket {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo, hi := 0, len(s.packets)
	if min, _, hasMin, _ := f.TimeBounds(); hasMin {
		lo = sort.Search(len(s.packets), func(i int) bool { return s.packets[i].TS >= min })
	}
	if _, max, _, hasMax := f.TimeBounds(); hasMax {
		hi = sort.Search(len(s.packets), func(i int) bool { return s.packets[i].TS > max })
	}
	var out []StoredPacket
	for i := lo; i < hi; i++ {
		if f.Match(&s.packets[i]) {
			out = append(out, s.packets[i])
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	return out
}

// Count returns the number of packets matching the filter.
func (s *Store) Count(f *Filter) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for i := range s.packets {
		if f.Match(&s.packets[i]) {
			n++
		}
	}
	return n
}

// SelectExpr parses expr and runs Select.
func (s *Store) SelectExpr(expr string, limit int) ([]StoredPacket, error) {
	f, err := ParseFilter(expr)
	if err != nil {
		return nil, err
	}
	return s.Select(f, limit), nil
}

// PacketsBetween returns packets in [from, to), via the time index.
func (s *Store) PacketsBetween(from, to time.Duration) []StoredPacket {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo := sort.Search(len(s.packets), func(i int) bool { return s.packets[i].TS >= from })
	hi := sort.Search(len(s.packets), func(i int) bool { return s.packets[i].TS >= to })
	out := make([]StoredPacket, hi-lo)
	copy(out, s.packets[lo:hi])
	return out
}

// Scan streams every stored packet through visit in time order, stopping
// early if visit returns false. It holds the read lock for the duration;
// visitors must be fast and must not call back into the store.
func (s *Store) Scan(visit func(*StoredPacket) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := range s.packets {
		if !visit(&s.packets[i]) {
			return
		}
	}
}

// FlowsWhere returns flow metadata satisfying pred, ordered by first TS.
func (s *Store) FlowsWhere(pred func(*FlowMeta) bool) []FlowMeta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []FlowMeta
	for _, fm := range s.flows {
		if pred(fm) {
			cp := *fm
			cp.pktIDs = nil
			out = append(out, cp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].First != out[j].First {
			return out[i].First < out[j].First
		}
		return out[i].Key.Hash() < out[j].Key.Hash()
	})
	return out
}

// LabelCounts tallies flows per ground-truth label — the class balance a
// dataset builder needs before training.
func (s *Store) LabelCounts() map[traffic.Label]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[traffic.Label]int)
	for _, fm := range s.flows {
		out[fm.Label]++
	}
	return out
}
