package datastore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// Tests for the cold-tier query fast path: v1/v2 format equivalence, the
// decoded-block cache, binary-search window pruning and block-isolated
// partial decode.

// tierFmtPolicy is aggressiveTier pinned to a segment format and cache
// budget.
func tierFmtPolicy(dir string, format int, cacheBytes int64) TierPolicy {
	pol := aggressiveTier(dir)
	pol.Format = format
	pol.CacheBytes = cacheBytes
	return pol
}

// diskSegVersions reads the version field of every segment file in dir.
func diskSegVersions(t *testing.T, dir string) map[uint16]int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	vers := map[uint16]int{}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".clsg" {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		vers[binary.LittleEndian.Uint16(b[4:6])]++
	}
	return vers
}

// TestTierFormatEquivalence is the cross-version property: both segment
// formats, with and without the decoded-block cache and the mmap read
// path, must answer every query byte-identically to an untiered store
// across shard and worker counts — through the planner, the scan
// reference, time windows, and compaction.
func TestTierFormatEquivalence(t *testing.T) {
	ref := ingestTiered(t, 4, 4, TierPolicy{})
	want := tierFingerprint(t, ref)
	if want.total == 0 {
		t.Fatal("reference store is empty")
	}
	span := want.scan[len(want.scan)-1].TS

	cases := []struct {
		name   string
		format int
		cache  int64
		noMmap bool
		// full=false runs one matrix cell only: the case is a read-path
		// toggle, not a format, so one cell buys the coverage.
		full bool
	}{
		{name: "v1", format: segVersion1, full: true},
		{name: "v2", format: segVersion2, full: true},
		// The cache budget must hold the decoded working set: a strict
		// scan cycle one block over budget evicts every block before its
		// reuse (0 hits), which the hit assertion below would misread.
		{name: "v2-cache", format: segVersion2, cache: 64 << 20},
		{name: "v2-nommap", format: segVersion2, noMmap: true},
	}
	for _, tc := range cases {
		shardCases := []int{4}
		workerCases := []int{4}
		// Under the race detector one cell per case is the budget: the
		// race gates cover concurrency separately, and the full matrix is
		// swept by the plain `go test` pass.
		if tc.full && !raceEnabled {
			shardCases = []int{1, 4}
			workerCases = []int{1, 4}
		}
		for _, shards := range shardCases {
			for _, workers := range workerCases {
				tc, shards, workers := tc, shards, workers
				t.Run(fmt.Sprintf("%s/shards=%d/workers=%d", tc.name, shards, workers), func(t *testing.T) {
					if tc.noMmap {
						t.Setenv(tierNoMmapEnv, "1")
					}
					dir := t.TempDir()
					s := ingestTiered(t, shards, workers, tierFmtPolicy(dir, tc.format, tc.cache))
					s.SetQueryWorkers(workers)
					if ts := s.TierStats(); ts.Segments == 0 {
						t.Fatalf("no seal happened: %+v", ts)
					}
					if vers := diskSegVersions(t, dir); vers[uint16(tc.format)] == 0 || len(vers) != 1 {
						t.Fatalf("on-disk segment versions %v, want only v%d", vers, tc.format)
					}
					compareTierPrints(t, tc.name, want, tierFingerprint(t, s))

					r := rand.New(rand.NewSource(int64(10*shards + workers)))
					nq := 12
					if testing.Short() || raceEnabled {
						nq = 4
					}
					for i := 0; i < nq; i++ {
						expr := genQueryExpr(r, 3)
						f, err := ParseFilter(expr)
						if err != nil {
							t.Fatalf("generated expression rejected: %q: %v", expr, err)
						}
						limit := 0
						if r.Intn(3) == 0 {
							limit = 1 + r.Intn(20)
						}
						wantSel := ref.Select(f, limit)
						wantN := ref.Count(f)
						if got := s.Select(f, limit); !reflect.DeepEqual(wantSel, got) {
							t.Fatalf("Select(%q, %d) diverged: %d vs %d rows", expr, limit, len(wantSel), len(got))
						}
						if gotN := s.Count(f); gotN != wantN {
							t.Fatalf("Count(%q) diverged: %d vs %d", expr, wantN, gotN)
						}
						s.SetScanQuery(true)
						scanSel := s.Select(f, limit)
						scanN := s.Count(f)
						s.SetScanQuery(false)
						if !reflect.DeepEqual(wantSel, scanSel) || wantN != scanN {
							t.Fatalf("scan reference diverged on %q", expr)
						}
					}

					for _, w := range [][2]time.Duration{{0, span / 4}, {span / 4, 3 * span / 4}, {span / 2, -1}} {
						a := ref.PacketsBetween(w[0], w[1])
						b := s.PacketsBetween(w[0], w[1])
						if !reflect.DeepEqual(a, b) {
							t.Fatalf("PacketsBetween(%v,%v) differs: %d vs %d rows", w[0], w[1], len(a), len(b))
						}
					}

					if tc.cache > 0 {
						if ts := s.TierStats(); ts.CacheHits == 0 {
							t.Fatalf("repeated queries never hit the cache: %+v", ts)
						}
					}

					if _, err := s.CompactTier(); err != nil {
						t.Fatal(err)
					}
					compareTierPrints(t, tc.name+" post-compact", want, tierFingerprint(t, s))
				})
			}
		}
	}
}

// TestSegsInWindowMatchesLinear checks the binary-search window pruning
// against the linear reference over random windows — in the sorted steady
// state and with a deliberately out-of-order registry, where the fallback
// must kick in.
func TestSegsInWindowMatchesLinear(t *testing.T) {
	mk := func(lo, hi time.Duration) *tierSegment {
		return &tierSegment{meta: segMeta{minTS: lo, maxTS: hi}}
	}
	linear := func(tr *tier, from, to time.Duration) []*tierSegment {
		var out []*tierSegment
		for _, sg := range tr.segs {
			if sg.meta.maxTS < from || (to >= 0 && sg.meta.minTS >= to) {
				continue
			}
			out = append(out, sg)
		}
		return out
	}
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		tr := &tier{}
		// Sorted bounds with random gaps and overlaps (maxTS can reach into
		// the next segment, as real seal chunking produces).
		cur, curHi := time.Duration(0), time.Duration(0)
		n := 1 + r.Intn(12)
		for i := 0; i < n; i++ {
			lo := cur + time.Duration(r.Intn(50))*time.Millisecond
			hi := lo + time.Duration(1+r.Intn(200))*time.Millisecond
			if hi < curHi {
				hi = curHi
			}
			tr.segs = append(tr.segs, mk(lo, hi))
			cur, curHi = lo, hi
		}
		tr.recomputeTSSortedLocked()
		if !tr.tsSorted {
			t.Fatalf("trial %d: sorted registry not detected as sorted", trial)
		}
		span := tr.segs[len(tr.segs)-1].meta.maxTS
		for q := 0; q < 40; q++ {
			from := time.Duration(r.Intn(int(span) + 1))
			to := time.Duration(r.Intn(int(span) + 1))
			if q%5 == 0 {
				to = -1
			}
			want := linear(tr, from, to)
			got := tr.segsInWindow(from, to)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(want, []*tierSegment(got)) {
				t.Fatalf("trial %d: segsInWindow(%v,%v) = %d segs, linear reference = %d",
					trial, from, to, len(got), len(want))
			}
		}

		// Shuffle: the registry is no longer TS-sorted, the flag must flip
		// and the linear path must serve (they are the same code, so just
		// assert the flag — a sorted-path answer here could drop segments).
		if len(tr.segs) > 2 {
			tr.segs[0], tr.segs[len(tr.segs)-1] = tr.segs[len(tr.segs)-1], tr.segs[0]
			tr.recomputeTSSortedLocked()
			if tr.tsSorted && tr.segs[0].meta.minTS > tr.segs[len(tr.segs)-1].meta.minTS {
				t.Fatalf("trial %d: unsorted registry still flagged sorted", trial)
			}
			from, to := span/4, 3*span/4
			if !reflect.DeepEqual(linear(tr, from, to), []*tierSegment(tr.segsInWindow(from, to))) {
				t.Fatalf("trial %d: unsorted fallback diverged", trial)
			}
		}
	}
}

// TestTierCacheLRU covers the cache container itself: LRU victim order,
// the byte budget, oversize rejection, racing fills and seq invalidation.
func TestTierCacheLRU(t *testing.T) {
	buf := func(n int) []byte { return make([]byte, n) }
	c := newTierCache(250)

	c.put(blockKey{1, 0}, buf(100))
	c.put(blockKey{1, 1}, buf(100))
	if _, ok := c.get(blockKey{1, 0}); !ok {
		t.Fatal("resident block missed")
	}
	// {1,0} is now MRU; inserting a third block must evict {1,1}.
	c.put(blockKey{2, 0}, buf(100))
	if _, ok := c.get(blockKey{1, 1}); ok {
		t.Fatal("LRU victim survived eviction")
	}
	if _, ok := c.get(blockKey{1, 0}); !ok {
		t.Fatal("MRU block evicted instead of LRU")
	}
	if bytes, entries := c.size(); bytes != 200 || entries != 2 {
		t.Fatalf("size = (%d, %d), want (200, 2)", bytes, entries)
	}
	if c.evictions.Load() != 1 {
		t.Fatalf("evictions = %d, want 1", c.evictions.Load())
	}

	// Oversize blocks are not admitted (and evict nothing).
	c.put(blockKey{3, 0}, buf(300))
	if _, ok := c.get(blockKey{3, 0}); ok {
		t.Fatal("oversize block admitted")
	}
	if bytes, entries := c.size(); bytes != 200 || entries != 2 {
		t.Fatalf("oversize put disturbed cache: (%d, %d)", bytes, entries)
	}

	// Racing fill of the same key keeps the incumbent and its accounting.
	first, _ := c.get(blockKey{1, 0})
	c.put(blockKey{1, 0}, buf(100))
	again, _ := c.get(blockKey{1, 0})
	if &first[0] != &again[0] {
		t.Fatal("racing fill replaced the incumbent buffer")
	}
	if bytes, _ := c.size(); bytes != 200 {
		t.Fatalf("racing fill double-counted: %d bytes", bytes)
	}

	// dropSegs removes exactly the named seq's blocks.
	c.dropSegs(map[uint64]bool{1: true})
	if _, ok := c.get(blockKey{1, 0}); ok {
		t.Fatal("dropped seq still resident")
	}
	if _, ok := c.get(blockKey{2, 0}); !ok {
		t.Fatal("unrelated seq dropped")
	}
	if bytes, entries := c.size(); bytes != 100 || entries != 1 {
		t.Fatalf("post-drop size = (%d, %d), want (100, 1)", bytes, entries)
	}
}

// TestTierCacheInvalidation drives the cache through the real store:
// repeated queries must hit, results must not change, and compaction must
// drop every block belonging to a replaced segment.
func TestTierCacheInvalidation(t *testing.T) {
	// The budget must hold the whole decoded working set: LRU thrashes on
	// a strict scan cycle one block over budget (0 hits), which is not
	// what this test is about.
	s := ingestTiered(t, 4, 4, tierFmtPolicy(t.TempDir(), segVersion2, 64<<20))
	f, err := ParseFilter("len > 100")
	if err != nil {
		t.Fatal(err)
	}
	first := s.Select(f, 0)
	ts0 := s.TierStats()
	if ts0.CacheMisses == 0 || ts0.CacheEntries == 0 {
		t.Fatalf("cold query did not populate the cache: %+v", ts0)
	}
	second := s.Select(f, 0)
	ts1 := s.TierStats()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached query changed the result")
	}
	if ts1.CacheHits <= ts0.CacheHits {
		t.Fatalf("warm query did not hit the cache: %+v -> %+v", ts0, ts1)
	}

	tr := s.tier.Load()
	seqs := func() map[uint64]bool {
		out := map[uint64]bool{}
		tr.mu.RLock()
		defer tr.mu.RUnlock()
		for _, sg := range tr.segs {
			out[sg.seq] = true
		}
		return out
	}
	before := seqs()
	if _, err := s.CompactTier(); err != nil {
		t.Fatal(err)
	}
	live := seqs()
	tr.cache.mu.Lock()
	var total int64
	for k, e := range tr.cache.entries {
		total += int64(len(e.Value.(*cacheEnt).buf))
		if before[k.seq] && !live[k.seq] {
			tr.cache.mu.Unlock()
			t.Fatalf("cache still holds block %v of a compacted-away segment", k)
		}
	}
	if total != tr.cache.bytes {
		tr.cache.mu.Unlock()
		t.Fatalf("cache byte accounting drifted: entries sum %d, bytes %d", total, tr.cache.bytes)
	}
	tr.cache.mu.Unlock()
	if got := s.Select(f, 0); !reflect.DeepEqual(first, got) {
		t.Fatal("post-compaction query changed the result")
	}
}

// TestSegmentPartialDecodeIsolatesCorruptBlock: with v2 block framing, a
// corrupt DEFLATE stream in one block must not poison selective decodes
// that never touch it — and must still fail the full decode loudly.
func TestSegmentPartialDecodeIsolatesCorruptBlock(t *testing.T) {
	rows := segTestRows(t, 600)
	blob, _, err := encodeSegment(rows)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := parseSegment(blob)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sb.parseData()
	if err != nil {
		t.Fatal(err)
	}
	if d.nblocks < 3 {
		t.Fatalf("fixture spans %d blocks, need >= 3", d.nblocks)
	}

	// Zero the head of the last block's stream (d.streams aliases blob),
	// then re-seal the column CRC so only block-level validation can
	// object.
	last := d.nblocks - 1
	for i := 0; i < 8 && i < d.compLen[last]; i++ {
		d.streams[d.compOff[last]+i] = 0
	}
	off := segHeaderSize
	for {
		id, n := blob[off], int(binary.LittleEndian.Uint32(blob[off+1:off+5]))
		if id == segColData {
			binary.LittleEndian.PutUint32(blob[off+5:off+9], crc32.ChecksumIEEE(blob[off+9:off+9+n]))
			break
		}
		off += 9 + n
	}

	sb2, err := parseSegment(blob)
	if err != nil {
		t.Fatal(err)
	}
	ids, tss, err := sb2.decodeTimeID()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := sb2.decodeIndex()
	if err != nil {
		t.Fatal(err)
	}
	sel := make([]uint32, 10)
	for i := range sel {
		sel[i] = uint32(i)
	}
	got, err := sb2.rowsAt(sel, ix, ids, tss, nil)
	if err != nil {
		t.Fatalf("selective decode of clean blocks failed: %v", err)
	}
	if !reflect.DeepEqual(got, rows[:10]) {
		t.Fatal("selective decode of clean blocks returned wrong rows")
	}
	if _, err := sb2.rowsAt([]uint32{uint32(len(rows) - 1)}, ix, ids, tss, nil); err == nil {
		t.Fatal("decode touching the corrupt block succeeded")
	}
	if _, err := decodeSegmentRows(blob); err == nil {
		t.Fatal("full decode of the corrupt segment succeeded")
	}
}
