package datastore

import "sort"

// Secondary indexes for the query engine: each shard maintains posting
// lists — sorted PacketID slices — over the low-cardinality fields the
// filter language can equality-match (protocol, transport ports, link,
// packet label) plus the boolean summary flags. Lists are maintained
// incrementally at ingest, trimmed by retention eviction, and rebuilt for
// free when a snapshot loads (Load re-ingests every packet).
//
// The invariant the planner relies on: a posting list holds *exactly* the
// shard's packets for which the corresponding filter leaf is true, in
// ascending ID order. Within a shard the packet slab is ascending in both
// TS and ID, so an ID interval is also a position interval and a time
// interval — which is what lets the planner clip posting lists to a
// query's time bounds with two binary searches.

// ixKind names a posting-list family.
type ixKind uint8

const (
	ixNone ixKind = iota
	ixProto
	ixSrcPort
	ixDstPort
	ixLink
	ixLabel
	ixFlag // ixVal is one of the flag ids below
)

// Flag posting-list ids (ixFlag's ixVal domain).
const (
	flagIP = iota
	flagTCP
	flagUDP
	flagICMP
	flagDNS
	flagDNSResp
	numFlags
)

// ixRef names one posting list: a family plus the value within it.
type ixRef struct {
	kind ixKind
	val  uint64
}

// postings is one shard's secondary index. All access is guarded by the
// shard lock (writes under the write lock in apply/evict, reads under the
// read lock during queries).
type postings struct {
	proto   map[uint8][]PacketID
	srcPort map[uint16][]PacketID
	dstPort map[uint16][]PacketID
	link    map[uint16][]PacketID
	label   map[uint8][]PacketID
	flags   [numFlags][]PacketID
	// evictedBelow is the highest minID a completed evictBelow has
	// processed. Every list is already free of IDs below it, so repeat
	// calls at or below the watermark skip the full-index walk — the
	// common case when eviction or sealing runs on a cadence but the
	// cutoff only sometimes advances.
	evictedBelow PacketID
}

func newPostings() *postings {
	return &postings{
		proto:   make(map[uint8][]PacketID),
		srcPort: make(map[uint16][]PacketID),
		dstPort: make(map[uint16][]PacketID),
		link:    make(map[uint16][]PacketID),
		label:   make(map[uint8][]PacketID),
	}
}

// insertID adds id to a sorted posting list. The fast path is an append
// (batched ingest applies packets in ascending ID order); concurrent
// single-packet ingest can interleave IDs, in which case the ID is
// insert-sorted exactly like the slab and per-flow lists.
func insertID(ids []PacketID, id PacketID) []PacketID {
	if n := len(ids); n == 0 || id > ids[n-1] {
		return append(ids, id)
	}
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// add indexes one stored packet, returning the number of posting entries
// written (for index-size accounting). Every packet lands in the five
// value families — non-IP packets under proto/port 0 — so that equality
// against any value, including zero, is exactly answerable from the index.
func (px *postings) add(sp *StoredPacket) int {
	px.proto[uint8(sp.Summary.Tuple.Proto)] = insertID(px.proto[uint8(sp.Summary.Tuple.Proto)], sp.ID)
	px.srcPort[sp.Summary.Tuple.SrcPort] = insertID(px.srcPort[sp.Summary.Tuple.SrcPort], sp.ID)
	px.dstPort[sp.Summary.Tuple.DstPort] = insertID(px.dstPort[sp.Summary.Tuple.DstPort], sp.ID)
	px.link[sp.Link] = insertID(px.link[sp.Link], sp.ID)
	px.label[uint8(sp.Label)] = insertID(px.label[uint8(sp.Label)], sp.ID)
	entries := 5
	for fl, on := range [numFlags]bool{
		flagIP:      sp.Summary.HasIP,
		flagTCP:     sp.Summary.HasTCP,
		flagUDP:     sp.Summary.HasUDP,
		flagICMP:    sp.Summary.HasICMP,
		flagDNS:     sp.Summary.IsDNS,
		flagDNSResp: sp.Summary.DNSResponse,
	} {
		if on {
			px.flags[fl] = insertID(px.flags[fl], sp.ID)
			entries++
		}
	}
	return entries
}

// lookup returns the posting list for ref, nil when the value has no
// packets (or lies outside the field's domain — still exact: no packet
// can match such an equality).
func (px *postings) lookup(ref ixRef) []PacketID {
	switch ref.kind {
	case ixProto:
		if ref.val > 0xff {
			return nil
		}
		return px.proto[uint8(ref.val)]
	case ixSrcPort:
		if ref.val > 0xffff {
			return nil
		}
		return px.srcPort[uint16(ref.val)]
	case ixDstPort:
		if ref.val > 0xffff {
			return nil
		}
		return px.dstPort[uint16(ref.val)]
	case ixLink:
		if ref.val > 0xffff {
			return nil
		}
		return px.link[uint16(ref.val)]
	case ixLabel:
		if ref.val > 0xff {
			return nil
		}
		return px.label[uint8(ref.val)]
	case ixFlag:
		if ref.val >= numFlags {
			return nil
		}
		return px.flags[ref.val]
	}
	return nil
}

// evictBelow drops all posting entries with ID < minID (retention eviction
// removes a prefix of the slab, which is a prefix by ID too). Returns the
// number of entries removed.
func (px *postings) evictBelow(minID PacketID) int {
	if minID <= px.evictedBelow {
		return 0
	}
	px.evictedBelow = minID
	removed := 0
	trim := func(ids []PacketID) []PacketID {
		cut := sort.Search(len(ids), func(i int) bool { return ids[i] >= minID })
		if cut == 0 {
			return ids
		}
		removed += cut
		if cut == len(ids) {
			return nil
		}
		return append(ids[:0:0], ids[cut:]...)
	}
	for k, ids := range px.proto {
		if out := trim(ids); out == nil {
			delete(px.proto, k)
		} else {
			px.proto[k] = out
		}
	}
	for k, ids := range px.srcPort {
		if out := trim(ids); out == nil {
			delete(px.srcPort, k)
		} else {
			px.srcPort[k] = out
		}
	}
	for k, ids := range px.dstPort {
		if out := trim(ids); out == nil {
			delete(px.dstPort, k)
		} else {
			px.dstPort[k] = out
		}
	}
	for k, ids := range px.link {
		if out := trim(ids); out == nil {
			delete(px.link, k)
		} else {
			px.link[k] = out
		}
	}
	for k, ids := range px.label {
		if out := trim(ids); out == nil {
			delete(px.label, k)
		} else {
			px.label[k] = out
		}
	}
	for fl := range px.flags {
		px.flags[fl] = trim(px.flags[fl])
	}
	return removed
}

// clipRows restricts a sorted segment row list to the half-open row
// interval [lo, hi) with two binary searches — the row-position analogue
// of clipIDs for cold segments, where a TS window is a row interval.
func clipRows(rows []uint32, lo, hi uint32) []uint32 {
	a := sort.Search(len(rows), func(i int) bool { return rows[i] >= lo })
	b := sort.Search(len(rows), func(i int) bool { return rows[i] >= hi })
	return rows[a:b]
}

// intersectRows intersects already-clipped sorted row lists, shortest
// first, with the same galloping cursor as intersectPostings.
func intersectRows(lists [][]uint32) []uint32 {
	out := append([]uint32(nil), lists[0]...)
	for _, other := range lists[1:] {
		if len(out) == 0 {
			return out
		}
		kept := out[:0]
		j := 0
		for _, r := range out {
			j += sort.Search(len(other)-j, func(k int) bool { return other[j+k] >= r })
			if j == len(other) {
				break
			}
			if other[j] == r {
				kept = append(kept, r)
				j++
			}
		}
		out = kept
	}
	return out
}

// clipIDs restricts a sorted posting list to the half-open ID interval
// [lo, hi) with two binary searches.
func clipIDs(ids []PacketID, lo, hi PacketID) []PacketID {
	a := sort.Search(len(ids), func(i int) bool { return ids[i] >= lo })
	b := sort.Search(len(ids), func(i int) bool { return ids[i] >= hi })
	return ids[a:b]
}

// intersectPostings intersects already-clipped sorted lists. lists must be
// non-empty; the caller passes the shortest list first so the candidate
// set only ever shrinks. The result is a fresh slice (never a view into
// the live index).
func intersectPostings(lists [][]PacketID) []PacketID {
	out := append([]PacketID(nil), lists[0]...)
	for _, other := range lists[1:] {
		if len(out) == 0 {
			return out
		}
		kept := out[:0]
		j := 0
		for _, id := range out {
			// Galloping search: posting lists are sorted, so advance a
			// monotone cursor into the larger list.
			j += sort.Search(len(other)-j, func(k int) bool { return other[j+k] >= id })
			if j == len(other) {
				break
			}
			if other[j] == id {
				kept = append(kept, id)
				j++
			}
		}
		out = kept
	}
	return out
}
