package datastore

import (
	"errors"
	"testing"
	"time"

	"campuslab/internal/traffic"
)

// labeledFrames builds n frames alternating benign / attack labels so the
// shed path has both priorities to choose between.
func labeledFrames(n int) []traffic.Frame {
	frames := make([]traffic.Frame, n)
	for i := range frames {
		label := traffic.LabelBenign
		if i%2 == 1 {
			label = traffic.LabelDNSAmp
		}
		frames[i] = traffic.Frame{
			TS:    time.Duration(i) * time.Millisecond,
			Data:  make([]byte, 100),
			Label: label,
		}
	}
	return frames
}

func TestAdmissionDisabledByDefault(t *testing.T) {
	st := New()
	if got := st.AdmissionState(); got != AdmitAccept {
		t.Fatalf("default state = %v, want accept", got)
	}
	r, err := st.AddBatchAdmit(labeledFrames(100), 1)
	if err != nil || r.Ingested != 100 || r.Shed != 0 {
		t.Fatalf("ungated ingest = %+v, %v", r, err)
	}
}

func TestAdmissionSheddingKeepsAttackEvidence(t *testing.T) {
	st := New()
	// Cap at 200 packets, shed from 50% — the first batch of 80 lands
	// whole, the second (at 40% → still accept) lands whole, the third
	// crosses the watermark and sheds benign frames.
	st.SetAdmission(AdmissionConfig{MaxPackets: 200, ShedAt: 0.5})
	r1, err := st.AddBatchAdmit(labeledFrames(80), 1)
	if err != nil || r1.State != AdmitAccept || r1.Ingested != 80 {
		t.Fatalf("batch 1 = %+v, %v", r1, err)
	}
	r2, err := st.AddBatchAdmit(labeledFrames(80), 1)
	if err != nil || r2.State != AdmitAccept {
		t.Fatalf("batch 2 = %+v, %v", r2, err)
	}
	// 160/200 = 80% ≥ 50%: shed mode. Benign half dropped, attacks kept.
	r3, err := st.AddBatchAdmit(labeledFrames(80), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r3.State != AdmitShed {
		t.Fatalf("state = %v, want shed", r3.State)
	}
	if r3.Ingested != 40 || r3.Shed != 40 {
		t.Fatalf("shed batch = %+v, want 40 stored / 40 shed", r3)
	}
	// Every shed frame was benign: attack count is intact.
	attacks := 0
	st.Scan(func(sp *StoredPacket) bool {
		if sp.Label == traffic.LabelDNSAmp {
			attacks++
		}
		return true
	})
	if attacks != 120 {
		t.Fatalf("attack packets = %d, want 120 (none shed)", attacks)
	}
}

func TestAdmissionRejectsAtCapacity(t *testing.T) {
	st := New()
	st.SetAdmission(AdmissionConfig{MaxPackets: 100, ShedAt: 0.9})
	if _, err := st.AddBatchAdmit(labeledFrames(100), 1); err != nil {
		t.Fatal(err)
	}
	r, err := st.AddBatchAdmit(labeledFrames(10), 1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if r.State != AdmitReject || r.Ingested != 0 {
		t.Fatalf("rejected batch = %+v", r)
	}
	if st.Stats().Packets != 100 {
		t.Fatalf("store grew past cap: %d", st.Stats().Packets)
	}
	if st.AdmissionState() != AdmitReject {
		t.Fatalf("state = %v, want reject", st.AdmissionState())
	}
}

func TestAdmissionByteCap(t *testing.T) {
	st := New()
	// 100-byte frames; byte cap of 5000 → 50 frames fills it.
	st.SetAdmission(AdmissionConfig{MaxBytes: 5000, ShedAt: 0.99})
	if _, err := st.AddBatchAdmit(labeledFrames(50), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddBatchAdmit(labeledFrames(1), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("byte cap not enforced: %v", err)
	}
}

func TestAdmissionReopensAfterEviction(t *testing.T) {
	st := New()
	st.SetAdmission(AdmissionConfig{MaxPackets: 100, ShedAt: 0.9})
	frames := labeledFrames(100) // TS 0..99ms
	if _, err := st.AddBatchAdmit(frames, 1); err != nil {
		t.Fatal(err)
	}
	if st.AdmissionState() != AdmitReject {
		t.Fatal("not at capacity")
	}
	// Retention reclaims the first half; the gate must reopen.
	if n := st.EvictBefore(50 * time.Millisecond); n != 50 {
		t.Fatalf("evicted %d, want 50", n)
	}
	if got := st.AdmissionState(); got != AdmitAccept {
		t.Fatalf("state after eviction = %v, want accept", got)
	}
	r, err := st.AddBatchAdmit(labeledFrames(10), 1)
	if err != nil || r.Ingested != 10 {
		t.Fatalf("post-eviction ingest = %+v, %v", r, err)
	}
}

func TestAdmissionShedIsDeterministic(t *testing.T) {
	run := func() (IngestResult, uint64) {
		st := New()
		st.SetAdmission(AdmissionConfig{MaxPackets: 100, ShedAt: 0.5})
		st.AddBatchAdmit(labeledFrames(60), 1)
		r, _ := st.AddBatchAdmit(labeledFrames(60), 1)
		return r, st.Stats().Packets
	}
	r1, p1 := run()
	r2, p2 := run()
	if r1 != r2 || p1 != p2 {
		t.Fatalf("identical workloads shed differently: %+v/%d vs %+v/%d", r1, p1, r2, p2)
	}
}

func TestAdmitStateThresholds(t *testing.T) {
	cfg := AdmissionConfig{MaxPackets: 100, ShedAt: 0.85}
	for _, tc := range []struct {
		packets uint64
		want    AdmitState
	}{
		{0, AdmitAccept}, {84, AdmitAccept}, {85, AdmitShed},
		{99, AdmitShed}, {100, AdmitReject}, {150, AdmitReject},
	} {
		if got := admitState(cfg, tc.packets, 0); got != tc.want {
			t.Errorf("admitState(%d pkts) = %v, want %v", tc.packets, got, tc.want)
		}
	}
	// Tightest cap wins: bytes can reject even when packets accept.
	both := AdmissionConfig{MaxPackets: 1000, MaxBytes: 100, ShedAt: 0.85}
	if got := admitState(both, 10, 100); got != AdmitReject {
		t.Errorf("byte-bound state = %v, want reject", got)
	}
	for _, s := range []AdmitState{AdmitAccept, AdmitShed, AdmitReject} {
		if s.String() == "" {
			t.Errorf("%d has empty String()", s)
		}
	}
}

func TestEmptyBatchAtCapacityNotRefused(t *testing.T) {
	// Streaming collectors flush a trailing batch unconditionally; when it
	// is empty it stores nothing and must never draw ErrOverloaded — that
	// would fail a Collect whose every frame was already acknowledged.
	st := NewSharded(1)
	st.SetAdmission(AdmissionConfig{MaxPackets: 2, ShedAt: 0.5})
	atk := []traffic.Frame{
		{Data: make([]byte, 64), Label: traffic.LabelDNSAmp},
		{Data: make([]byte, 64), Label: traffic.LabelDNSAmp},
	}
	if _, err := st.AddBatch(atk, 1); err != nil {
		t.Fatal(err)
	}
	// At capacity a real batch is refused...
	if _, err := st.AddBatch(labeledFrames(2), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full store accepted a batch (err=%v)", err)
	}
	rejected := obsIngestRejected.Value()
	// ...but the empty flush passes, and is not counted as a rejection.
	r, err := st.AddBatchAdmit(nil, 1)
	if err != nil {
		t.Fatalf("empty batch refused at capacity: %v", err)
	}
	if r.Ingested != 0 || r.Shed != 0 {
		t.Fatalf("empty batch result %+v", r)
	}
	if got := obsIngestRejected.Value(); got != rejected {
		t.Fatalf("empty batch counted as rejected (%d -> %d)", rejected, got)
	}
}

func TestSerialIngestHonorsGate(t *testing.T) {
	// Once a gate is armed, the serial path routes through it with the
	// batched path's exact semantics: shed drops benign silently, reject
	// refuses with ErrOverloaded, nothing grows without bound.
	st := NewSharded(1)
	st.SetAdmission(AdmissionConfig{MaxPackets: 4, ShedAt: 0.5})
	atk := traffic.Frame{Data: make([]byte, 64), Label: traffic.LabelDNSAmp}
	ben := traffic.Frame{Data: make([]byte, 64)}
	for i := 0; i < 2; i++ { // below the watermark everything lands
		if _, err := st.IngestFrame(&atk); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.IngestFrame(&ben); err != nil { // shed band: dropped, no error
		t.Fatal(err)
	}
	if got := st.Stats().Packets; got != 2 {
		t.Fatalf("shed benign frame stored (packets=%d)", got)
	}
	for i := 0; i < 2; i++ { // shed band keeps attack evidence
		if _, err := st.IngestFrame(&atk); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.IngestFrame(&atk); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("serial ingest at capacity: err=%v, want ErrOverloaded", err)
	}
	if got := st.Stats().Packets; got != 4 {
		t.Fatalf("packets = %d, want 4", got)
	}
}
