package datastore

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"campuslab/internal/traffic"
)

// segTestRows builds a small (TS, ID)-sorted run of real campus traffic —
// IP, DNS and non-IP rows — the shape encodeSegment sees from a seal.
func segTestRows(t testing.TB, n int) []StoredPacket {
	t.Helper()
	plan := traffic.DefaultPlan(12)
	benign := traffic.NewCampus(traffic.Profile{
		Plan: plan, FlowsPerSecond: 60, Duration: 2 * time.Second, Seed: 99,
	})
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(2),
		Start: 200 * time.Millisecond, Duration: time.Second, Rate: 200, Seed: 98,
	})
	s := NewSharded(4)
	for _, f := range traffic.Collect(traffic.NewMerge(benign, amp), 0) {
		f := f
		s.IngestFrame(&f)
	}
	var rows []StoredPacket
	s.Scan(func(sp *StoredPacket) bool {
		rows = append(rows, *sp)
		return len(rows) < n
	})
	if len(rows) < 64 {
		t.Fatalf("scenario too small: %d rows", len(rows))
	}
	return rows
}

func TestSegmentRoundtrip(t *testing.T) {
	rows := segTestRows(t, 1500)
	blob, meta, err := encodeSegment(rows)
	if err != nil {
		t.Fatal(err)
	}
	if meta.count != len(rows) || meta.minID != rows[0].ID || meta.maxID != rows[len(rows)-1].ID {
		t.Fatalf("meta inconsistent: %+v for %d rows", meta, len(rows))
	}
	if len(blob) >= rawRowBytes(rows) {
		t.Fatalf("segment (%d B) not smaller than raw rows (%d B)", len(blob), rawRowBytes(rows))
	}
	got, err := decodeSegmentRows(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, got) {
		for i := range rows {
			if !reflect.DeepEqual(rows[i], got[i]) {
				t.Fatalf("row %d differs:\nwant %+v\ngot  %+v", i, rows[i], got[i])
			}
		}
		t.Fatal("rows differ")
	}
	// The attach-time metadata path must agree with the full decode.
	m2, err := openSegMeta(blob)
	if err != nil {
		t.Fatal(err)
	}
	if m2.count != meta.count || m2.minID != meta.minID || m2.maxID != meta.maxID ||
		m2.minTS != meta.minTS || m2.maxTS != meta.maxTS {
		t.Fatalf("openSegMeta disagrees: %+v vs %+v", m2, meta)
	}
}

func rawRowBytes(rows []StoredPacket) int {
	n := 0
	for i := range rows {
		n += len(rows[i].Data) + 24
	}
	return n
}

func TestSegmentEncodeRejectsUnsorted(t *testing.T) {
	rows := segTestRows(t, 200)
	rows[10], rows[40] = rows[40], rows[10]
	if _, _, err := encodeSegment(rows); err == nil {
		t.Fatal("unsorted rows must not encode")
	}
	if _, _, err := encodeSegment(nil); err == nil {
		t.Fatal("empty segment must not encode")
	}
}

// TestSegmentCorruptionDetected: single-bit damage anywhere in the blob
// must surface as a typed ErrSegmentCorrupt — never a panic, never
// silently wrong rows.
func TestSegmentCorruptionDetected(t *testing.T) {
	rows := segTestRows(t, 400)
	blob, _, err := encodeSegment(rows)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(blob); off += 13 {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x40
		if _, err := decodeSegmentRows(mut); err == nil {
			t.Fatalf("flip at offset %d/%d not detected", off, len(blob))
		} else if !errors.Is(err, ErrSegmentCorrupt) {
			t.Fatalf("flip at offset %d: error does not wrap ErrSegmentCorrupt: %v", off, err)
		}
	}
}

func TestSegmentTruncationDetected(t *testing.T) {
	rows := segTestRows(t, 300)
	blob, _, err := encodeSegment(rows)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(blob); cut += 11 {
		if _, err := decodeSegmentRows(blob[:cut]); !errors.Is(err, ErrSegmentCorrupt) {
			t.Fatalf("truncation at %d/%d not detected (err %v)", cut, len(blob), err)
		}
	}
	if _, err := decodeSegmentRows(append(append([]byte(nil), blob...), 0)); !errors.Is(err, ErrSegmentCorrupt) {
		t.Fatal("trailing garbage not detected")
	}
}

// TestSegmentZonePruning: the zone map must prove absence exactly — no
// false "cannot match" on present values, true pruning on absent ones.
func TestSegmentZonePruning(t *testing.T) {
	rows := segTestRows(t, 500)
	blob, meta, err := encodeSegment(rows)
	if err != nil {
		t.Fatal(err)
	}
	mustKeys := func(expr string) []ixRef {
		f, err := ParseFilter(expr)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if !f.plan.indexable {
			t.Fatalf("%s: not indexable", expr)
		}
		return f.plan.keys
	}
	if !meta.zone.mayMatch(mustKeys("proto == udp && dst.port == 53")) {
		t.Fatal("zone pruned a value combination the segment contains")
	}
	if meta.zone.mayMatch(mustKeys("dst.port == 59999")) {
		t.Fatal("zone failed to prune an absent port")
	}
	if meta.zone.mayMatch(mustKeys("link == 9999")) {
		t.Fatal("zone failed to prune an absent link")
	}
	// Decode path must agree with the metadata zone.
	sb, err := parseSegment(blob)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := sb.decodeIndex()
	if err != nil {
		t.Fatal(err)
	}
	z := ix.zone()
	if !reflect.DeepEqual(z, meta.zone) {
		t.Fatal("decoded zone differs from encoder zone")
	}
}

// TestSegmentSelectiveDecodeSkipsData: counting by index must not inflate
// the data column — rowsAt is only reached when rows are materialized.
func TestSegmentSelectiveDecodeSkipsData(t *testing.T) {
	rows := segTestRows(t, 500)
	blob, _, err := encodeSegment(rows)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := parseSegment(blob)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := sb.decodeIndex()
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseFilter("proto == udp && dst.port == 53")
	if err != nil {
		t.Fatal(err)
	}
	cand, ok := ix.segCandidates(&f.plan, 0, uint32(len(rows)))
	if !ok {
		t.Fatal("plan should be indexable")
	}
	want := 0
	for i := range rows {
		if f.Match(&rows[i]) {
			want++
		}
	}
	if len(cand) != want {
		t.Fatalf("index candidates %d != matched rows %d", len(cand), want)
	}
	ids, tss, err := sb.decodeTimeID()
	if err != nil {
		t.Fatal(err)
	}
	got, err := sb.rowsAt(cand, ix, ids, tss, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if !f.Match(&r) {
			t.Fatalf("materialized candidate %d does not match", i)
		}
	}
}
