//go:build race

package datastore

// raceEnabled reports that this binary was built with -race; the
// format-equivalence matrix trims itself to one cell per case under the
// detector, where the full sweep would push the package past -timeout.
const raceEnabled = true
