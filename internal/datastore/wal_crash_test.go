package datastore

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// walCrashChildEnv marks the re-exec'd child of TestWALCrashKill9.
const walCrashChildEnv = "CAMPUSLAB_WAL_CRASH_DIR"

// TestWALCrashChildProcess is not a test: it is the child half of the
// kill-9 experiment, selected by environment variable. It ingests a
// deterministic batch stream into a durable store under FsyncAlways,
// reporting each acknowledged batch on stdout, until it is killed.
func TestWALCrashChildProcess(t *testing.T) {
	dir := os.Getenv(walCrashChildEnv)
	if dir == "" {
		t.Skip("child-process helper; driven by TestWALCrashKill9")
	}
	st, _, err := Recover(DurableConfig{Dir: dir, Fsync: FsyncAlways, Shards: 2})
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	out := bufio.NewWriter(os.Stdout)
	for i := 0; i < 100000; i++ {
		if _, err := st.AddBatch(walFrames(5, i), 0); err != nil {
			fmt.Println("ERR", err)
			os.Exit(1)
		}
		// The batch is fsynced (FsyncAlways) before AddBatch returns, so
		// this line only ever reports durable acknowledgements.
		fmt.Fprintf(out, "acked %d\n", i)
		out.Flush()
	}
	os.Exit(0)
}

// TestWALCrashKill9 is the no-warning crash gate: a child process ingests
// under FsyncAlways and is SIGKILLed mid-stream; recovery must hold every
// batch the child acknowledged, and the recovered store must be
// byte-identical to a serial rebuild of exactly that prefix.
func TestWALCrashKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "TestWALCrashChildProcess")
	cmd.Env = append(os.Environ(), walCrashChildEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Read acknowledgements until enough batches are durable, then kill
	// with no warning whatsoever.
	lastAcked := -1
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "ERR") {
			cmd.Process.Kill()
			t.Fatalf("child failed: %s", line)
		}
		if n, ok := strings.CutPrefix(line, "acked "); ok {
			if v, err := strconv.Atoi(n); err == nil {
				lastAcked = v
			}
		}
		if lastAcked >= 20 {
			break
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reap; the kill makes the exit status irrelevant
	if lastAcked < 20 {
		t.Fatalf("child died before acking 20 batches (last %d)", lastAcked)
	}

	st, rs, err := Recover(DurableConfig{Dir: dir, Fsync: FsyncAlways, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.CloseWAL()
	got := st.Stats().Packets
	if got < uint64(lastAcked+1)*5 {
		t.Fatalf("kill -9 lost acked batches: recovered %d packets, child acked %d batches (stats %+v)",
			got, lastAcked+1, rs)
	}
	if got%5 != 0 {
		t.Fatalf("recovered %d packets: a torn batch was partially applied", got)
	}
	// Byte-identity against a serial rebuild of the recovered prefix: the
	// survivor is exactly the acked stream, not merely the right size.
	ref := NewSharded(2)
	for i := 0; i < int(got/5); i++ {
		if _, err := ref.AddBatch(walFrames(5, i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(storeBytes(t, st), storeBytes(t, ref)) {
		t.Fatal("recovered store diverged from the acked prefix")
	}
}

// BenchmarkWALRecovery measures crash-to-ready time: snapshot load plus
// WAL replay for a directory with a checkpoint and a replay backlog.
func BenchmarkWALRecovery(b *testing.B) {
	dir := b.TempDir()
	st, _, err := Recover(DurableConfig{Dir: dir, Fsync: FsyncNone, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := st.AddBatch(walFrames(20, i), 0); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.CheckpointDir(dir); err != nil {
		b.Fatal(err)
	}
	for i := 100; i < 200; i++ { // replay backlog on top of the snapshot
		if _, err := st.AddBatch(walFrames(20, i), 0); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.FlushWAL(); err != nil {
		b.Fatal(err)
	}
	st.CloseWAL()

	base, err := listSegments(dir)
	if err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, rs, err := Recover(DurableConfig{Dir: dir, Fsync: FsyncNone, Shards: 4})
		if err != nil {
			b.Fatal(err)
		}
		if rs.WALPackets == 0 {
			b.Fatal("benchmark dir had no replay backlog")
		}
		rec.CloseWAL()
		b.StopTimer()
		// Each Recover opens a fresh (empty) live segment; sweep it so
		// later iterations replay the same directory, not an ever-growing
		// pile of header-only files.
		segs, _ := listSegments(dir)
		for _, seq := range segs[len(base):] {
			os.Remove(filepath.Join(dir, segName(seq)))
		}
		b.StartTimer()
	}
}
