package datastore

import (
	"math/rand"
	"strings"
	"testing"
)

// genExpr builds a random syntactically valid filter expression.
func genExpr(r *rand.Rand, depth int) string {
	if depth <= 0 || r.Intn(3) == 0 {
		return genComparison(r)
	}
	switch r.Intn(4) {
	case 0:
		return genExpr(r, depth-1) + " && " + genExpr(r, depth-1)
	case 1:
		return genExpr(r, depth-1) + " || " + genExpr(r, depth-1)
	case 2:
		return "!(" + genExpr(r, depth-1) + ")"
	default:
		return "(" + genExpr(r, depth-1) + ")"
	}
}

var propFields = []string{"len", "ttl", "src.port", "dst.port", "payload.len", "dns.answers", "link"}
var propOps = []string{"==", "!=", "<", "<=", ">", ">="}
var propFlags = []string{"dns", "dns.resp", "tcp", "udp", "icmp", "ip", "tcp.syn", "tcp.ack", "tcp.fin", "tcp.rst"}

func genComparison(r *rand.Rand) string {
	switch r.Intn(5) {
	case 0:
		return propFlags[r.Intn(len(propFlags))]
	case 1:
		return "src.ip in 10.0.0.0/8"
	case 2:
		return "proto == udp"
	case 3:
		f := propFields[r.Intn(len(propFields))]
		op := propOps[r.Intn(len(propOps))]
		return f + " " + op + " " + itoa(r.Intn(70000))
	default:
		return "ts >= " + itoa(r.Intn(5)) + "s"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestFilterGrammarProperty(t *testing.T) {
	// Property 1: every grammar-generated expression parses; evaluation
	// never panics; De Morgan consistency: !(a) matches exactly the
	// complement of a.
	st := fillStore(t)
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		expr := genExpr(r, 3)
		f, err := ParseFilter(expr)
		if err != nil {
			t.Fatalf("grammar expression rejected: %q: %v", expr, err)
		}
		neg, err := ParseFilter("!(" + expr + ")")
		if err != nil {
			t.Fatalf("negation rejected: %v", err)
		}
		pos, negN := 0, 0
		st.Scan(func(sp *StoredPacket) bool {
			if f.Match(sp) {
				pos++
			}
			if neg.Match(sp) {
				negN++
			}
			return true
		})
		if total := int(st.Stats().Packets); pos+negN != total {
			t.Fatalf("complement broken for %q: %d + %d != %d", expr, pos, negN, total)
		}
	}
}

func TestFilterGarbageNeverPanics(t *testing.T) {
	// Property 2: random byte soup either parses (and evaluates without
	// panicking) or errors — never panics.
	st := fillStore(t)
	r := rand.New(rand.NewSource(100))
	alphabet := "abcdefghijklmnop .!&|()<>=0123456789/sxtudnp_"
	for i := 0; i < 2000; i++ {
		n := 1 + r.Intn(40)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(alphabet[r.Intn(len(alphabet))])
		}
		f, err := ParseFilter(sb.String())
		if err != nil {
			continue
		}
		st.Scan(func(sp *StoredPacket) bool {
			f.Match(sp)
			return false // one packet is enough to exercise evaluation
		})
	}
}

func TestFilterIdempotentDoubleNegation(t *testing.T) {
	st := fillStore(t)
	for _, expr := range []string{"dns", "len > 500", "tcp.syn && !tcp.ack"} {
		a := MustFilter(expr)
		b := MustFilter("!(!(" + expr + "))")
		st.Scan(func(sp *StoredPacket) bool {
			if a.Match(sp) != b.Match(sp) {
				t.Fatalf("double negation differs for %q", expr)
			}
			return true
		})
	}
}
