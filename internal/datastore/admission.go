package datastore

import (
	"errors"

	"campuslab/internal/obs"
	"campuslab/internal/traffic"
)

// Admission control bounds what ingest may add to the store so overload
// has a defined shape instead of unbounded growth: below the shed
// watermark every frame is accepted; between shed and full, low-priority
// frames (unlabeled/benign traffic) are dropped on the floor while labeled
// attack evidence still lands; at or past full, whole batches are refused
// with ErrOverloaded and nothing is acknowledged. Decisions depend only on
// store occupancy and the batch contents, so a replayed workload sheds
// identically every run.

// ErrOverloaded reports an ingest batch refused because the store is at
// its configured capacity. Nothing from the batch was stored or logged.
var ErrOverloaded = errors.New("datastore: overloaded")

// AdmitState is the ingest gate's current posture.
type AdmitState int32

const (
	// AdmitAccept: occupancy below the shed watermark; everything lands.
	AdmitAccept AdmitState = iota
	// AdmitShed: occupancy between shed watermark and capacity;
	// low-priority (benign-labeled) frames are dropped, the rest land.
	AdmitShed
	// AdmitReject: at or beyond capacity; batches fail with ErrOverloaded.
	AdmitReject
)

// String names the state.
func (a AdmitState) String() string {
	switch a {
	case AdmitAccept:
		return "accept"
	case AdmitShed:
		return "shed"
	default:
		return "reject"
	}
}

// AdmissionConfig bounds the store. The zero value (no limits) disables
// the gate entirely — the historical unbounded behavior.
type AdmissionConfig struct {
	// MaxPackets caps stored packets (0 = unlimited).
	MaxPackets uint64
	// MaxBytes caps stored raw packet bytes (0 = unlimited).
	MaxBytes uint64
	// ShedAt is the occupancy fraction (of whichever cap is nearest)
	// where shedding starts (default 0.85).
	ShedAt float64
}

func (c AdmissionConfig) enabled() bool { return c.MaxPackets > 0 || c.MaxBytes > 0 }

// Ingest admission metrics — the campuslab_ingest_* series an operator
// watches to see the gate working before the store falls over.
var (
	obsIngestAdmitted = obs.Default.Counter("campuslab_ingest_admitted_total")
	obsIngestShed     = obs.Default.Counter("campuslab_ingest_shed_total")
	obsIngestRejected = obs.Default.Counter("campuslab_ingest_rejected_batches_total")
	obsIngestState    = obs.Default.Gauge("campuslab_ingest_state")
)

// SetAdmission installs (or, with the zero config, removes) the ingest
// gate. Every acknowledged path enforces it: the batched front doors
// (AddBatch/AddRecords and friends) directly, and the serial
// Ingest/IngestFrame path by routing through the same gate once a config
// is armed.
func (s *Store) SetAdmission(cfg AdmissionConfig) {
	if cfg.ShedAt <= 0 || cfg.ShedAt >= 1 {
		cfg.ShedAt = 0.85
	}
	s.admissionMu.Lock()
	s.admission = cfg
	s.admissionMu.Unlock()
	s.admissionOn.Store(cfg.enabled())
}

// admissionConfig snapshots the gate config.
func (s *Store) admissionConfig() AdmissionConfig {
	s.admissionMu.RLock()
	defer s.admissionMu.RUnlock()
	return s.admission
}

// AdmissionState reports the gate's posture at current occupancy.
func (s *Store) AdmissionState() AdmitState {
	return admitState(s.admissionConfig(), s.totPackets.Load(), s.totBytes.Load())
}

// admitState computes the posture from occupancy: the tightest cap wins.
func admitState(cfg AdmissionConfig, packets, bytes uint64) AdmitState {
	if !cfg.enabled() {
		return AdmitAccept
	}
	frac := 0.0
	if cfg.MaxPackets > 0 {
		frac = float64(packets) / float64(cfg.MaxPackets)
	}
	if cfg.MaxBytes > 0 {
		if f := float64(bytes) / float64(cfg.MaxBytes); f > frac {
			frac = f
		}
	}
	switch {
	case frac >= 1:
		return AdmitReject
	case frac >= cfg.ShedAt:
		return AdmitShed
	default:
		return AdmitAccept
	}
}

// lowPriority classifies a frame for shedding: ground-truth-labeled attack
// traffic is the evidence the development loop exists for and is kept;
// everything else is the first to go under pressure.
func lowPriority(f *traffic.Frame) bool { return f.Label == traffic.LabelBenign }

// IngestResult reports one admitted batch.
type IngestResult struct {
	// First is the ID of the first stored frame (meaningless when
	// Ingested == 0); stored frames take consecutive IDs.
	First PacketID
	// Ingested counts frames stored (and WAL-logged, when attached).
	Ingested int
	// Shed counts low-priority frames dropped by the gate.
	Shed int
	// State is the gate posture that applied to this batch.
	State AdmitState
}

// admitBatch applies the gate to a batch, returning the frames (and
// parallel links) to store plus the shed count. A nil return with
// ErrOverloaded means the whole batch was refused.
func (s *Store) admitBatch(frames []traffic.Frame, links []uint16) ([]traffic.Frame, []uint16, int, AdmitState, error) {
	if len(frames) == 0 {
		// A zero-frame batch stores nothing and must never be refused:
		// streaming collectors submit a trailing flush unconditionally,
		// and failing it would report ErrOverloaded for data that was
		// already acknowledged.
		return frames, links, 0, AdmitAccept, nil
	}
	cfg := s.admissionConfig()
	if !cfg.enabled() {
		return frames, links, 0, AdmitAccept, nil
	}
	state := admitState(cfg, s.totPackets.Load(), s.totBytes.Load())
	obsIngestState.Set(float64(state))
	switch state {
	case AdmitAccept:
		obsIngestAdmitted.Add(uint64(len(frames)))
		return frames, links, 0, state, nil
	case AdmitReject:
		obsIngestRejected.Inc()
		return nil, nil, 0, state, ErrOverloaded
	}
	// Shed: keep high-priority frames only, preserving order.
	kept := make([]traffic.Frame, 0, len(frames))
	var keptLinks []uint16
	if links != nil {
		keptLinks = make([]uint16, 0, len(frames))
	}
	for i := range frames {
		if lowPriority(&frames[i]) {
			continue
		}
		kept = append(kept, frames[i])
		if links != nil {
			keptLinks = append(keptLinks, links[i])
		}
	}
	shed := len(frames) - len(kept)
	obsIngestShed.Add(uint64(shed))
	obsIngestAdmitted.Add(uint64(len(kept)))
	return kept, keptLinks, shed, state, nil
}
