package datastore

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"campuslab/internal/eventlog"
	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

// fillStore ingests a small deterministic scenario: benign campus traffic
// plus a DNS amplification episode.
func fillStore(t testing.TB) *Store {
	t.Helper()
	plan := traffic.DefaultPlan(50)
	benign := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 80, Duration: 4 * time.Second, Seed: 21})
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(5),
		Start: time.Second, Duration: 2 * time.Second, Rate: 400, Seed: 22,
	})
	g := traffic.NewMerge(benign, amp)
	st := New()
	var f traffic.Frame
	for g.Next(&f) {
		st.IngestFrame(&f)
	}
	return st
}

func TestIngestAndStats(t *testing.T) {
	st := fillStore(t)
	stats := st.Stats()
	if stats.Packets == 0 || stats.Flows == 0 || stats.DataBytes == 0 {
		t.Fatalf("empty stats: %+v", stats)
	}
	if stats.Span <= 0 || stats.Span > 5*time.Second {
		t.Errorf("span = %v", stats.Span)
	}
	if stats.BytesPerSecond() <= 0 {
		t.Error("no accrual rate")
	}
	// Retention projection scales linearly.
	day := stats.ProjectRetention(24 * time.Hour)
	week := stats.ProjectRetention(7 * 24 * time.Hour)
	if week < day*6 || week > day*8 {
		t.Errorf("retention projection not linear: day=%d week=%d", day, week)
	}
}

func TestFlowAggregation(t *testing.T) {
	st := New()
	// Two packets, same flow, opposite directions.
	buf := packet.NewSerializeBuffer()
	mk := func(src, dst string, sport, dport uint16, flags packet.TCPFlags) []byte {
		err := packet.Serialize(buf,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.IPProtocolTCP,
				SrcIP: netip.MustParseAddr(src), DstIP: netip.MustParseAddr(dst)},
			&packet.TCP{SrcPort: sport, DstPort: dport, Flags: flags},
		)
		if err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), buf.Bytes()...)
	}
	st.Ingest(0, 0, mk("10.0.0.1", "93.184.216.34", 5000, 443, packet.TCPSyn))
	st.Ingest(time.Millisecond, 0, mk("93.184.216.34", "10.0.0.1", 443, 5000, packet.TCPSyn|packet.TCPAck))
	key := packet.FiveTuple{
		Proto: packet.IPProtocolTCP,
		SrcIP: netip.MustParseAddr("10.0.0.1"), DstIP: netip.MustParseAddr("93.184.216.34"),
		SrcPort: 5000, DstPort: 443,
	}
	fm, ok := st.Flow(key)
	if !ok {
		t.Fatal("flow not found")
	}
	if fm.Packets != 2 {
		t.Errorf("flow packets = %d, want 2 (bidirectional)", fm.Packets)
	}
	if !fm.TCPFlags.Has(packet.TCPSyn | packet.TCPAck) {
		t.Errorf("flags = %v", fm.TCPFlags)
	}
	if len(fm.PacketIDs()) != 2 {
		t.Errorf("packet ids = %v", fm.PacketIDs())
	}
	// Lookup by reverse tuple finds the same flow.
	if _, ok := st.Flow(key.Reverse()); !ok {
		t.Error("reverse lookup failed")
	}
}

func TestGroundTruthLabels(t *testing.T) {
	st := fillStore(t)
	counts := st.LabelCounts()
	if counts[traffic.LabelDNSAmp] == 0 {
		t.Fatal("no dns-amp flows labeled")
	}
	if counts[traffic.LabelBenign] == 0 {
		t.Fatal("no benign flows")
	}
	attacks := st.FlowsWhere(func(fm *FlowMeta) bool { return fm.Label == traffic.LabelDNSAmp })
	for _, fm := range attacks {
		if !fm.Labeled {
			t.Error("attack flow not marked labeled")
		}
		if fm.DNSResponses == 0 {
			t.Error("dns-amp flow has no DNS responses")
		}
	}
}

func TestLabelFlowErrors(t *testing.T) {
	st := New()
	err := st.LabelFlow(packet.FiveTuple{Proto: packet.IPProtocolTCP}, traffic.LabelBeacon)
	if err == nil {
		t.Error("labeled a nonexistent flow")
	}
}

func TestPacketLookup(t *testing.T) {
	st := fillStore(t)
	sp, ok := st.Packet(0)
	if !ok || sp.ID != 0 {
		t.Fatal("packet 0 not found")
	}
	if _, ok := st.Packet(PacketID(1 << 40)); ok {
		t.Error("found nonexistent packet")
	}
}

func TestEventsIntegration(t *testing.T) {
	st := New()
	evs := eventlog.NewGenerator(eventlog.GeneratorConfig{Source: eventlog.SourceFirewall, Rate: 10, Seed: 3}).Generate(10 * time.Second)
	st.AddEvents(evs)
	got := st.EventsBetween(2*time.Second, 4*time.Second)
	for _, e := range got {
		if e.TS < 2*time.Second || e.TS >= 4*time.Second {
			t.Fatalf("event at %v outside window", e.TS)
		}
	}
	if len(got) == 0 {
		t.Error("no events in window")
	}
	if st.Stats().Events != uint64(len(evs)) {
		t.Error("event count wrong")
	}
}

func TestEvictBefore(t *testing.T) {
	st := fillStore(t)
	before := st.Stats()
	evicted := st.EvictBefore(2 * time.Second)
	if evicted == 0 {
		t.Fatal("nothing evicted")
	}
	after := st.Stats()
	if after.Packets != before.Packets-uint64(evicted) {
		t.Errorf("packets = %d, want %d", after.Packets, before.Packets-uint64(evicted))
	}
	if after.DataBytes >= before.DataBytes {
		t.Error("data bytes did not shrink")
	}
	// All remaining packets at or after the cut.
	st.Scan(func(sp *StoredPacket) bool {
		if sp.TS < 2*time.Second {
			t.Errorf("packet at %v survived eviction", sp.TS)
			return false
		}
		return true
	})
	if st.EvictBefore(0) != 0 {
		t.Error("evicting before 0 removed packets")
	}
}

func TestFilterLanguage(t *testing.T) {
	st := fillStore(t)
	cases := []struct {
		expr  string
		check func(*StoredPacket) bool
	}{
		{"proto == udp", func(sp *StoredPacket) bool { return sp.Summary.Tuple.Proto == packet.IPProtocolUDP }},
		{"dns && dns.resp", func(sp *StoredPacket) bool { return sp.Summary.IsDNS && sp.Summary.DNSResponse }},
		{"dns.qtype == ANY", func(sp *StoredPacket) bool { return sp.Summary.DNSQueryType == packet.DNSTypeANY }},
		{"len > 1000", func(sp *StoredPacket) bool { return sp.Summary.WireLen > 1000 }},
		{"tcp.syn && !tcp.ack", func(sp *StoredPacket) bool {
			return sp.Summary.HasTCP && sp.Summary.TCPFlags.Has(packet.TCPSyn) && !sp.Summary.TCPFlags.Has(packet.TCPAck)
		}},
		{"src.ip in 10.0.0.0/8", func(sp *StoredPacket) bool {
			return netip.MustParsePrefix("10.0.0.0/8").Contains(sp.Summary.Tuple.SrcIP)
		}},
		{"dst.port == 53 || src.port == 53", func(sp *StoredPacket) bool {
			return sp.Summary.Tuple.DstPort == 53 || sp.Summary.Tuple.SrcPort == 53
		}},
	}
	for _, c := range cases {
		t.Run(c.expr, func(t *testing.T) {
			got, err := st.SelectExpr(c.expr, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) == 0 {
				t.Fatalf("no matches for %q in the test scenario", c.expr)
			}
			for i := range got {
				if !c.check(&got[i]) {
					t.Fatalf("false positive for %q: %+v", c.expr, got[i].Summary)
				}
			}
			// Exhaustiveness: manual count equals Count().
			want := 0
			st.Scan(func(sp *StoredPacket) bool {
				if c.check(sp) {
					want++
				}
				return true
			})
			f := MustFilter(c.expr)
			if n := st.Count(f); n != want {
				t.Errorf("Count = %d, want %d", n, want)
			}
		})
	}
}

func TestFilterTimeBoundsUsed(t *testing.T) {
	st := fillStore(t)
	f := MustFilter("ts >= 1s && ts < 2s && udp")
	min, max, hasMin, hasMax := f.TimeBounds()
	if !hasMin || !hasMax || min != time.Second || max != 2*time.Second {
		t.Fatalf("bounds = %v..%v (%v/%v)", min, max, hasMin, hasMax)
	}
	for _, sp := range st.Select(f, 0) {
		if sp.TS < time.Second || sp.TS >= 2*time.Second+time.Nanosecond {
			t.Fatalf("packet at %v outside bounds", sp.TS)
		}
	}
}

func TestFilterParseErrors(t *testing.T) {
	bad := []string{
		"", "proto ==", "len > abc", "bogusfield == 3", "proto == udp &&",
		"(proto == udp", "src.ip in notacidr", "ts > 5s trailing",
		"dns.qtype == NOPE", "proto < tcp",
	}
	for _, expr := range bad {
		if _, err := ParseFilter(expr); err == nil {
			t.Errorf("accepted %q", expr)
		}
	}
}

func TestFilterLimit(t *testing.T) {
	st := fillStore(t)
	got, err := st.SelectExpr("ip", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Errorf("limit ignored: %d", len(got))
	}
}

func TestSelectExprBadFilter(t *testing.T) {
	st := New()
	if _, err := st.SelectExpr("bogus ==", 0); err == nil {
		t.Error("bad expression accepted")
	}
}

func TestPacketsBetween(t *testing.T) {
	st := fillStore(t)
	got := st.PacketsBetween(time.Second, 2*time.Second)
	if len(got) == 0 {
		t.Fatal("no packets in window")
	}
	for i := range got {
		if got[i].TS < time.Second || got[i].TS >= 2*time.Second {
			t.Fatal("packet outside window")
		}
	}
	// Windows partition the stream.
	a := len(st.PacketsBetween(0, 2*time.Second))
	b := len(st.PacketsBetween(2*time.Second, 100*time.Second))
	if uint64(a+b) != st.Stats().Packets {
		t.Errorf("window partition %d+%d != %d", a, b, st.Stats().Packets)
	}
}

func TestIngestClampsReordering(t *testing.T) {
	st := New()
	data := make([]byte, 60)
	st.Ingest(5*time.Second, 0, data)
	st.Ingest(3*time.Second, 0, data) // out of order: clamped to 5s
	pkts := st.PacketsBetween(0, 100*time.Second)
	if len(pkts) != 2 || pkts[1].TS < pkts[0].TS {
		t.Error("time index corrupted by reordered ingest")
	}
}

func BenchmarkIngest(b *testing.B) {
	g := traffic.NewCampus(traffic.Profile{FlowsPerSecond: 1000, Duration: time.Hour, Seed: 1})
	frames := traffic.Collect(g, 10000)
	st := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &frames[i%len(frames)]
		st.Ingest(time.Duration(i), 0, f.Data)
	}
}

func BenchmarkSelectIndexed(b *testing.B) {
	st := fillStore(b)
	f := MustFilter(fmt.Sprintf("ts >= %s && ts < %s && dns", "1s", "1100ms"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Select(f, 0)
	}
}

func BenchmarkSelectFullScan(b *testing.B) {
	st := fillStore(b)
	f := MustFilter("dns && dns.qtype == ANY")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Select(f, 0)
	}
}
