package datastore

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"campuslab/internal/traffic"
)

// equivFrames builds a labeled benign+attack scenario big enough to spread
// flows across every shard configuration under test.
func equivFrames(t *testing.T) []traffic.Frame {
	t.Helper()
	plan := traffic.DefaultPlan(30)
	benign := traffic.NewCampus(traffic.Profile{
		Plan: plan, FlowsPerSecond: 80, Duration: 2 * time.Second, Seed: 4201,
	})
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(3),
		Start: 300 * time.Millisecond, Duration: time.Second, Rate: 500, Seed: 4202,
	})
	frames := traffic.Collect(traffic.NewMerge(benign, amp), 0)
	if len(frames) < 1000 {
		t.Fatalf("scenario too small: %d frames", len(frames))
	}
	return frames
}

// fingerprint captures every externally observable surface of a store.
type storePrint struct {
	scanIDs   []PacketID
	scanTS    []time.Duration
	flows     []FlowMeta
	flowPkts  [][]PacketID
	saveBytes []byte
	packets   uint64
	flowCount uint64
	dataBytes uint64
}

func fingerprintStore(t *testing.T, s *Store) storePrint {
	t.Helper()
	var p storePrint
	s.Scan(func(sp *StoredPacket) bool {
		p.scanIDs = append(p.scanIDs, sp.ID)
		p.scanTS = append(p.scanTS, sp.TS)
		return true
	})
	p.flows = s.Flows()
	for i := range p.flows {
		p.flowPkts = append(p.flowPkts, p.flows[i].PacketIDs())
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	p.saveBytes = buf.Bytes()
	st := s.Stats()
	p.packets, p.flowCount, p.dataBytes = st.Packets, st.Flows, st.DataBytes
	return p
}

func comparePrints(t *testing.T, name string, want, got storePrint) {
	t.Helper()
	if !reflect.DeepEqual(want.scanIDs, got.scanIDs) {
		t.Errorf("%s: Scan ID order differs (want %d ids, got %d)", name, len(want.scanIDs), len(got.scanIDs))
	}
	if !reflect.DeepEqual(want.scanTS, got.scanTS) {
		t.Errorf("%s: Scan timestamp order differs", name)
	}
	if len(want.flows) != len(got.flows) {
		t.Fatalf("%s: flow count differs: want %d got %d", name, len(want.flows), len(got.flows))
	}
	for i := range want.flows {
		w, g := want.flows[i], got.flows[i]
		// pktIDs is unexported; compare via the accessor lists below.
		w.pktIDs, g.pktIDs = nil, nil
		if !reflect.DeepEqual(w, g) {
			t.Errorf("%s: flow %d meta differs:\nwant %+v\ngot  %+v", name, i, w, g)
		}
	}
	if !reflect.DeepEqual(want.flowPkts, got.flowPkts) {
		t.Errorf("%s: per-flow PacketIDs differ", name)
	}
	if !bytes.Equal(want.saveBytes, got.saveBytes) {
		t.Errorf("%s: Save snapshot bytes differ (want %d bytes, got %d)", name, len(want.saveBytes), len(got.saveBytes))
	}
	if want.packets != got.packets || want.flowCount != got.flowCount || want.dataBytes != got.dataBytes {
		t.Errorf("%s: Stats differ: want (%d,%d,%d) got (%d,%d,%d)", name,
			want.packets, want.flowCount, want.dataBytes,
			got.packets, got.flowCount, got.dataBytes)
	}
}

// TestShardedStoreEquivalence: every query surface — global scan order,
// flow listing, per-flow packet IDs, snapshot bytes, stats — must be
// byte-for-byte identical at 1, 4, and 16 shards.
func TestShardedStoreEquivalence(t *testing.T) {
	frames := equivFrames(t)
	ingest := func(n int) storePrint {
		s := NewSharded(n)
		for i := range frames {
			s.IngestFrame(&frames[i])
		}
		return fingerprintStore(t, s)
	}
	base := ingest(1)
	if len(base.scanIDs) == 0 || len(base.flows) == 0 {
		t.Fatal("baseline store is empty")
	}
	for i := 1; i < len(base.scanIDs); i++ {
		if base.scanTS[i] < base.scanTS[i-1] {
			t.Fatalf("baseline scan not time-ordered at %d", i)
		}
	}
	comparePrints(t, "shards=4", base, ingest(4))
	comparePrints(t, "shards=16", base, ingest(16))
}

// TestAddBatchMatchesSerialIngest: the batched parallel ingest path must
// reproduce the one-packet-at-a-time path exactly, at any worker count.
func TestAddBatchMatchesSerialIngest(t *testing.T) {
	frames := equivFrames(t)
	serial := NewSharded(4)
	for i := range frames {
		serial.IngestFrame(&frames[i])
	}
	want := fingerprintStore(t, serial)
	for _, workers := range []int{1, 4, 16} {
		s := NewSharded(4)
		// Split into uneven chunks to exercise batch boundaries.
		for lo := 0; lo < len(frames); {
			hi := lo + 1000 + lo%777
			if hi > len(frames) {
				hi = len(frames)
			}
			s.AddBatch(frames[lo:hi], workers)
			lo = hi
		}
		comparePrints(t, fmt.Sprintf("addbatch-workers=%d", workers), want, fingerprintStore(t, s))
	}
}

// TestPacketIDsGloballyUniqueAcrossShards: flow packet IDs must be globally
// unique and strictly ascending per flow, never per-shard-local.
func TestPacketIDsGloballyUniqueAcrossShards(t *testing.T) {
	frames := equivFrames(t)
	s := NewSharded(16)
	s.AddBatch(frames, 4)
	seen := make(map[PacketID]FlowKey)
	for _, fm := range s.Flows() {
		ids := fm.PacketIDs()
		if uint64(len(ids)) != fm.Packets {
			t.Fatalf("flow %v: %d ids for %d packets", fm.Key, len(ids), fm.Packets)
		}
		for i, id := range ids {
			if owner, dup := seen[id]; dup {
				t.Fatalf("packet id %d claimed by flows %v and %v", id, owner, fm.Key)
			}
			seen[id] = fm.Key
			if i > 0 && ids[i] <= ids[i-1] {
				t.Fatalf("flow %v: ids not strictly ascending at %d", fm.Key, i)
			}
			if sp, ok := s.Packet(id); !ok || sp.ID != id {
				t.Fatalf("flow %v: id %d does not resolve to a stored packet", fm.Key, id)
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("no flow packet ids observed")
	}
}
