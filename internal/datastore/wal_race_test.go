package datastore

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentIngestCheckpointQuery hammers one durable store from
// three sides at once — ingest writers, a checkpoint/truncate loop, and
// read-only queries — then proves the serial WAL replay reproduces the
// concurrent run byte-for-byte. Run under -race this doubles as the data
// race gate for the ingestMu/atomic-pointer protocol; the byte identity
// proves no acked batch can land in a truncated log without being in the
// snapshot, no matter how ingest and checkpoints interleave.
func TestConcurrentIngestCheckpointQuery(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Recover(DurableConfig{Dir: dir, Fsync: FsyncNone, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}

	const writers, batches, perBatch = 4, 25, 5
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() { // checkpoint + truncate loop
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.CheckpointDir(dir); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
			runtime.Gosched()
		}
	}()
	aux.Add(1)
	go func() { // read-only queries
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = st.Stats()
			_ = st.LabelCounts()
			n := 0
			st.Scan(func(*StoredPacket) bool { n++; return n < 64 })
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				if _, err := st.AddBatch(walFrames(perBatch, g*1000+i), 0); err != nil {
					t.Errorf("writer %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	aux.Wait()

	if got := st.Stats().Packets; got != writers*batches*perBatch {
		t.Fatalf("stored %d packets, acked %d", got, writers*batches*perBatch)
	}
	if err := st.FlushWAL(); err != nil {
		t.Fatal(err)
	}
	live := storeBytes(t, st)
	st.CloseWAL() // crash: no final checkpoint

	st2, _, err := Recover(DurableConfig{Dir: dir, Fsync: FsyncNone, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.CloseWAL()
	if !bytes.Equal(live, storeBytes(t, st2)) {
		t.Fatal("serial snapshot+WAL replay diverged from the concurrent store")
	}
}
