package datastore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"campuslab/internal/eventlog"
	"campuslab/internal/faults"
	"campuslab/internal/traffic"
)

// The persistence format is a simple length-prefixed binary stream, with
// a CRC32 (IEEE) per section so corruption is detected instead of loaded:
//
//	header:  magic "CLDS" | version u16 |
//	         packet count u64 | event count u64 | header crc u32
//	packets: per packet: ts i64 | link u16 | label u8 | actor u8 |
//	         len u32 | bytes
//	         then: packets-section crc u32
//	events:  per event: ts i64 | source u8 | severity u8 |
//	         hostLen u16 | host | msgLen u32 | msg
//	         then: events-section crc u32
//
// Flow metadata and indexes are rebuilt on load (they are derived data),
// which keeps the format stable across index-layout changes — the same
// choice real capture stores make. File-level snapshots (SaveFile) are
// crash-safe: written to a temp file in the target directory, fsynced,
// then atomically renamed over the target, so a crash mid-save always
// leaves the previous snapshot intact.

const (
	persistMagic   = "CLDS"
	persistVersion = 2
)

// ErrBadSnapshot reports a corrupt or incompatible snapshot stream.
var ErrBadSnapshot = errors.New("datastore: bad snapshot")

// ErrChecksum reports a snapshot whose section checksum does not match —
// truncation or bit rot. It wraps ErrBadSnapshot, so errors.Is works
// against either sentinel.
var ErrChecksum = fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)

// SetFaultInjector points SaveFile's write/sync/rename steps at a fault
// injector (nil restores always-healthy) so crash-safety tests can kill a
// snapshot save midway.
func (s *Store) SetFaultInjector(inj faults.Injector) { s.persistFaults = inj }

// crcWriter accumulates a CRC32 over everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	return n, err
}

func (cw *crcWriter) WriteString(s string) (int, error) { return cw.Write([]byte(s)) }

// crcReader accumulates a CRC32 over everything read through it.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Save writes the store's packets and events to w. Packets stream out in
// global (timestamp, ID) order — the serial ingest order — so snapshots
// are byte-identical at any shard count. The store remains usable;
// concurrent ingest during Save is blocked by the shard locks.
func (s *Store) Save(w io.Writer) error {
	unlock := s.rlockAll()
	defer unlock()
	s.eventsMu.RLock()
	defer s.eventsMu.RUnlock()
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	nPackets := 0
	slabs := make([][]StoredPacket, len(s.shards))
	for i, sh := range s.shards {
		nPackets += len(sh.packets)
		slabs[i] = sh.packets
	}
	var scratch [12]byte
	binary.LittleEndian.PutUint16(scratch[:2], persistVersion)
	if _, err := bw.Write(scratch[:2]); err != nil {
		return err
	}
	cw := &crcWriter{w: bw}
	binary.LittleEndian.PutUint64(scratch[:8], uint64(nPackets))
	if _, err := cw.Write(scratch[:8]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(scratch[:8], uint64(len(s.events)))
	if _, err := cw.Write(scratch[:8]); err != nil {
		return err
	}
	if err := writeCRC(bw, cw); err != nil {
		return err
	}
	cur := newMergeCursor(slabs)
	for sp := cur.next(); sp != nil; sp = cur.next() {
		binary.LittleEndian.PutUint64(scratch[:8], uint64(sp.TS))
		binary.LittleEndian.PutUint16(scratch[8:10], sp.Link)
		scratch[10] = byte(sp.Label)
		scratch[11] = 0
		if sp.Actor {
			scratch[11] = 1
		}
		if _, err := cw.Write(scratch[:12]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(sp.Data)))
		if _, err := cw.Write(scratch[:4]); err != nil {
			return err
		}
		if _, err := cw.Write(sp.Data); err != nil {
			return err
		}
	}
	if err := writeCRC(bw, cw); err != nil {
		return err
	}
	for i := range s.events {
		ev := &s.events[i]
		binary.LittleEndian.PutUint64(scratch[:8], uint64(ev.TS))
		scratch[8] = byte(ev.Source)
		scratch[9] = byte(ev.Severity)
		binary.LittleEndian.PutUint16(scratch[10:12], uint16(len(ev.Host)))
		if _, err := cw.Write(scratch[:12]); err != nil {
			return err
		}
		if _, err := cw.WriteString(ev.Host); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(ev.Message)))
		if _, err := cw.Write(scratch[:4]); err != nil {
			return err
		}
		if _, err := cw.WriteString(ev.Message); err != nil {
			return err
		}
	}
	if err := writeCRC(bw, cw); err != nil {
		return err
	}
	return bw.Flush()
}

// writeCRC emits cw's accumulated section checksum (bypassing cw so the
// checksum doesn't checksum itself) and resets it for the next section.
func writeCRC(w io.Writer, cw *crcWriter) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], cw.crc)
	cw.crc = 0
	_, err := w.Write(b[:])
	return err
}

// checkCRC reads a stored section checksum (bypassing cr) and compares it
// against the accumulated one, resetting cr for the next section.
func checkCRC(r io.Reader, cr *crcReader, section string) error {
	sum := cr.crc
	cr.crc = 0
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return fmt.Errorf("%w: %s crc: %v", ErrBadSnapshot, section, err)
	}
	if stored := binary.LittleEndian.Uint32(b[:]); stored != sum {
		return fmt.Errorf("%w: %s section (stored %08x, computed %08x)", ErrChecksum, section, stored, sum)
	}
	return nil
}

// Load reads a snapshot into a fresh store, re-ingesting every packet so
// all indexes and flow metadata are rebuilt. Truncated or corrupt
// snapshots return an error wrapping ErrBadSnapshot (ErrChecksum for
// checksum mismatches) — never a silently wrong store.
func Load(r io.Reader) (*Store, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, 4+2)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
	}
	if string(head[:4]) != persistMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadSnapshot, head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != persistVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadSnapshot, v)
	}
	cr := &crcReader{r: br}
	var counts [16]byte
	if _, err := io.ReadFull(cr, counts[:]); err != nil {
		return nil, fmt.Errorf("%w: header counts: %v", ErrBadSnapshot, err)
	}
	nPkts := binary.LittleEndian.Uint64(counts[:8])
	nEvts := binary.LittleEndian.Uint64(counts[8:16])
	if err := checkCRC(br, cr, "header"); err != nil {
		return nil, err
	}

	st := New()
	var scratch [12]byte
	var f traffic.Frame
	for i := uint64(0); i < nPkts; i++ {
		if _, err := io.ReadFull(cr, scratch[:12]); err != nil {
			return nil, fmt.Errorf("%w: packet %d header: %v", ErrBadSnapshot, i, err)
		}
		f.TS = time.Duration(binary.LittleEndian.Uint64(scratch[:8]))
		link := binary.LittleEndian.Uint16(scratch[8:10])
		f.Label = traffic.Label(scratch[10])
		f.Actor = scratch[11] == 1
		if _, err := io.ReadFull(cr, scratch[:4]); err != nil {
			return nil, fmt.Errorf("%w: packet %d len: %v", ErrBadSnapshot, i, err)
		}
		n := binary.LittleEndian.Uint32(scratch[:4])
		if n > 1<<20 {
			return nil, fmt.Errorf("%w: packet %d claims %d bytes", ErrBadSnapshot, i, n)
		}
		f.Data = make([]byte, n)
		if _, err := io.ReadFull(cr, f.Data); err != nil {
			return nil, fmt.Errorf("%w: packet %d body: %v", ErrBadSnapshot, i, err)
		}
		// Ingest with the stored link id directly so flow metadata and the
		// secondary indexes (including the link posting lists) rebuild
		// exactly as they were at save time.
		st.ingest(f.TS, link, f.Data, f.Label, f.Actor)
	}
	if err := checkCRC(br, cr, "packets"); err != nil {
		return nil, err
	}
	evs := make([]eventlog.Event, 0, min(nEvts, 1<<16))
	for i := uint64(0); i < nEvts; i++ {
		if _, err := io.ReadFull(cr, scratch[:12]); err != nil {
			return nil, fmt.Errorf("%w: event %d header: %v", ErrBadSnapshot, i, err)
		}
		var ev eventlog.Event
		ev.TS = time.Duration(binary.LittleEndian.Uint64(scratch[:8]))
		ev.Source = eventlog.Source(scratch[8])
		ev.Severity = eventlog.Severity(scratch[9])
		hostLen := binary.LittleEndian.Uint16(scratch[10:12])
		host := make([]byte, hostLen)
		if _, err := io.ReadFull(cr, host); err != nil {
			return nil, fmt.Errorf("%w: event %d host: %v", ErrBadSnapshot, i, err)
		}
		ev.Host = string(host)
		if _, err := io.ReadFull(cr, scratch[:4]); err != nil {
			return nil, fmt.Errorf("%w: event %d msg len: %v", ErrBadSnapshot, i, err)
		}
		msgLen := binary.LittleEndian.Uint32(scratch[:4])
		if msgLen > 1<<20 {
			return nil, fmt.Errorf("%w: event %d claims %d-byte message", ErrBadSnapshot, i, msgLen)
		}
		msg := make([]byte, msgLen)
		if _, err := io.ReadFull(cr, msg); err != nil {
			return nil, fmt.Errorf("%w: event %d msg: %v", ErrBadSnapshot, i, err)
		}
		ev.Message = string(msg)
		evs = append(evs, ev)
	}
	if err := checkCRC(br, cr, "events"); err != nil {
		return nil, err
	}
	if len(evs) > 0 {
		st.AddEvents(evs)
	}
	return st, nil
}

// faultWriter consults the store's injector before every write, so a
// scripted schedule can kill a snapshot save at an exact byte boundary.
type faultWriter struct {
	w   io.Writer
	inj faults.Injector
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if err := fw.inj.Fail(faults.OpStoreWrite); err != nil {
		return 0, err
	}
	return fw.w.Write(p)
}

// SaveFile writes a crash-safe snapshot to path: the stream goes to a
// temp file in the same directory, is fsynced, and is atomically renamed
// over path. A crash (or injected fault) at any point leaves either the
// old snapshot or the new one at path — never a truncated hybrid.
func (s *Store) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("datastore: snapshot temp file: %w", err)
	}
	tmpPath := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
		}
	}()
	var w io.Writer = tmp
	if s.persistFaults != nil {
		w = &faultWriter{w: tmp, inj: s.persistFaults}
	}
	if err = s.Save(w); err != nil {
		return fmt.Errorf("datastore: snapshot write: %w", err)
	}
	if s.persistFaults != nil {
		if err = s.persistFaults.Fail(faults.OpStoreSync); err != nil {
			return fmt.Errorf("datastore: snapshot sync: %w", err)
		}
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("datastore: snapshot sync: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("datastore: snapshot close: %w", err)
	}
	if s.persistFaults != nil {
		if err = s.persistFaults.Fail(faults.OpStoreRename); err != nil {
			return fmt.Errorf("datastore: snapshot rename: %w", err)
		}
	}
	if err = os.Rename(tmpPath, path); err != nil {
		return fmt.Errorf("datastore: snapshot rename: %w", err)
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadFile reads a snapshot file written by SaveFile.
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("datastore: snapshot open: %w", err)
	}
	defer f.Close()
	return Load(f)
}
