package datastore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"campuslab/internal/eventlog"
	"campuslab/internal/traffic"
)

// The persistence format is a simple length-prefixed binary stream:
//
//	header:  magic "CLDS" | version u16 | packet count u64 | event count u64
//	packet:  ts i64 | link u16 | label u8 | actor u8 | len u32 | bytes
//	event:   ts i64 | source u8 | severity u8 | hostLen u16 | host |
//	         msgLen u32 | msg
//
// Flow metadata and indexes are rebuilt on load (they are derived data),
// which keeps the format stable across index-layout changes — the same
// choice real capture stores make.

const (
	persistMagic   = "CLDS"
	persistVersion = 1
)

// ErrBadSnapshot reports a corrupt or incompatible snapshot stream.
var ErrBadSnapshot = errors.New("datastore: bad snapshot")

// Save writes the store's packets and events to w. Packets stream out in
// global (timestamp, ID) order — the serial ingest order — so snapshots
// are byte-identical at any shard count. The store remains usable;
// concurrent ingest during Save is blocked by the shard locks.
func (s *Store) Save(w io.Writer) error {
	unlock := s.rlockAll()
	defer unlock()
	s.eventsMu.RLock()
	defer s.eventsMu.RUnlock()
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	nPackets := 0
	slabs := make([][]StoredPacket, len(s.shards))
	for i, sh := range s.shards {
		nPackets += len(sh.packets)
		slabs[i] = sh.packets
	}
	var scratch [12]byte
	binary.LittleEndian.PutUint16(scratch[:2], persistVersion)
	if _, err := bw.Write(scratch[:2]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(scratch[:8], uint64(nPackets))
	if _, err := bw.Write(scratch[:8]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(scratch[:8], uint64(len(s.events)))
	if _, err := bw.Write(scratch[:8]); err != nil {
		return err
	}
	cur := newMergeCursor(slabs)
	for sp := cur.next(); sp != nil; sp = cur.next() {
		binary.LittleEndian.PutUint64(scratch[:8], uint64(sp.TS))
		binary.LittleEndian.PutUint16(scratch[8:10], sp.Link)
		scratch[10] = byte(sp.Label)
		scratch[11] = 0
		if sp.Actor {
			scratch[11] = 1
		}
		if _, err := bw.Write(scratch[:12]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(sp.Data)))
		if _, err := bw.Write(scratch[:4]); err != nil {
			return err
		}
		if _, err := bw.Write(sp.Data); err != nil {
			return err
		}
	}
	for i := range s.events {
		ev := &s.events[i]
		binary.LittleEndian.PutUint64(scratch[:8], uint64(ev.TS))
		scratch[8] = byte(ev.Source)
		scratch[9] = byte(ev.Severity)
		binary.LittleEndian.PutUint16(scratch[10:12], uint16(len(ev.Host)))
		if _, err := bw.Write(scratch[:12]); err != nil {
			return err
		}
		if _, err := bw.WriteString(ev.Host); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(ev.Message)))
		if _, err := bw.Write(scratch[:4]); err != nil {
			return err
		}
		if _, err := bw.WriteString(ev.Message); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a snapshot into a fresh store, re-ingesting every packet so
// all indexes and flow metadata are rebuilt.
func Load(r io.Reader) (*Store, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, 4+2+8+8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
	}
	if string(head[:4]) != persistMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadSnapshot, head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != persistVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadSnapshot, v)
	}
	nPkts := binary.LittleEndian.Uint64(head[6:14])
	nEvts := binary.LittleEndian.Uint64(head[14:22])

	st := New()
	var scratch [12]byte
	var f traffic.Frame
	for i := uint64(0); i < nPkts; i++ {
		if _, err := io.ReadFull(br, scratch[:12]); err != nil {
			return nil, fmt.Errorf("%w: packet %d header: %v", ErrBadSnapshot, i, err)
		}
		f.TS = time.Duration(binary.LittleEndian.Uint64(scratch[:8]))
		link := binary.LittleEndian.Uint16(scratch[8:10])
		f.Label = traffic.Label(scratch[10])
		f.Actor = scratch[11] == 1
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return nil, fmt.Errorf("%w: packet %d len: %v", ErrBadSnapshot, i, err)
		}
		n := binary.LittleEndian.Uint32(scratch[:4])
		if n > 1<<20 {
			return nil, fmt.Errorf("%w: packet %d claims %d bytes", ErrBadSnapshot, i, n)
		}
		f.Data = make([]byte, n)
		if _, err := io.ReadFull(br, f.Data); err != nil {
			return nil, fmt.Errorf("%w: packet %d body: %v", ErrBadSnapshot, i, err)
		}
		id := st.IngestFrame(&f)
		// Restore the link id lost by IngestFrame's single-tap default.
		if link != 0 {
			st.withPacket(id, func(sp *StoredPacket) { sp.Link = link })
		}
	}
	evs := make([]eventlog.Event, 0, nEvts)
	for i := uint64(0); i < nEvts; i++ {
		if _, err := io.ReadFull(br, scratch[:12]); err != nil {
			return nil, fmt.Errorf("%w: event %d header: %v", ErrBadSnapshot, i, err)
		}
		var ev eventlog.Event
		ev.TS = time.Duration(binary.LittleEndian.Uint64(scratch[:8]))
		ev.Source = eventlog.Source(scratch[8])
		ev.Severity = eventlog.Severity(scratch[9])
		hostLen := binary.LittleEndian.Uint16(scratch[10:12])
		host := make([]byte, hostLen)
		if _, err := io.ReadFull(br, host); err != nil {
			return nil, fmt.Errorf("%w: event %d host: %v", ErrBadSnapshot, i, err)
		}
		ev.Host = string(host)
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return nil, fmt.Errorf("%w: event %d msg len: %v", ErrBadSnapshot, i, err)
		}
		msgLen := binary.LittleEndian.Uint32(scratch[:4])
		if msgLen > 1<<20 {
			return nil, fmt.Errorf("%w: event %d claims %d-byte message", ErrBadSnapshot, i, msgLen)
		}
		msg := make([]byte, msgLen)
		if _, err := io.ReadFull(br, msg); err != nil {
			return nil, fmt.Errorf("%w: event %d msg: %v", ErrBadSnapshot, i, err)
		}
		ev.Message = string(msg)
		evs = append(evs, ev)
	}
	if len(evs) > 0 {
		st.AddEvents(evs)
	}
	return st, nil
}
