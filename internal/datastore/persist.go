package datastore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"time"

	"campuslab/internal/eventlog"
	"campuslab/internal/faults"
	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

// The persistence format is a simple length-prefixed binary stream, with
// a CRC32 (IEEE) per section so corruption is detected instead of loaded:
//
//	header:  magic "CLDS" | version u16 |
//	         packet count u64 | event count u64 | header crc u32
//	packets: per packet: ts i64 | link u16 | label u8 | actor u8 |
//	         len u32 | bytes
//	         then: packets-section crc u32
//	events:  per event: ts i64 | source u8 | severity u8 |
//	         hostLen u16 | host | msgLen u32 | msg
//	         then: events-section crc u32
//
// Flow metadata and indexes are rebuilt on load (they are derived data),
// which keeps the format stable across index-layout changes — the same
// choice real capture stores make. File-level snapshots (SaveFile) are
// crash-safe: written to a temp file in the target directory, fsynced,
// then atomically renamed over the target, so a crash mid-save always
// leaves the previous snapshot intact.
//
// Version 3 is written by tiered stores: once packets live in cold
// segments, a snapshot of the hot tier alone can no longer rebuild
// everything, so the header carries the base packet ID and the timestamp
// watermark (re-ingest on load reassigns the ORIGINAL IDs — cold segments
// store IDs, so recovery must not renumber), and a flows section persists
// the full flow aggregates (hot re-ingest alone would reconstruct only
// the hot packets' share). Version 2 stays the untiered format,
// bit-identical to what earlier releases wrote.

const (
	persistMagic         = "CLDS"
	persistVersion       = 2
	persistVersionTiered = 3
)

// ErrBadSnapshot reports a corrupt or incompatible snapshot stream.
var ErrBadSnapshot = errors.New("datastore: bad snapshot")

// ErrChecksum reports a snapshot whose section checksum does not match —
// truncation or bit rot. It wraps ErrBadSnapshot, so errors.Is works
// against either sentinel.
var ErrChecksum = fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)

// SetFaultInjector points SaveFile's write/sync/rename steps at a fault
// injector (nil restores always-healthy) so crash-safety tests can kill a
// snapshot save midway.
func (s *Store) SetFaultInjector(inj faults.Injector) { s.persistFaults = inj }

// crcWriter accumulates a CRC32 over everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	return n, err
}

func (cw *crcWriter) WriteString(s string) (int, error) { return cw.Write([]byte(s)) }

// crcReader accumulates a CRC32 over everything read through it.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Save writes the store's packets and events to w. Packets stream out in
// global (timestamp, ID) order — the serial ingest order — so snapshots
// are byte-identical at any shard count. The store remains usable;
// concurrent ingest during Save is blocked by the shard locks.
func (s *Store) Save(w io.Writer) error {
	unlock := s.rlockAll()
	defer unlock()
	s.eventsMu.RLock()
	defer s.eventsMu.RUnlock()
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	tiered := s.tier.Load() != nil
	version := uint16(persistVersion)
	if tiered {
		version = persistVersionTiered
	}
	nPackets := 0
	var flows []*FlowMeta
	slabs := make([][]StoredPacket, len(s.shards))
	for i, sh := range s.shards {
		nPackets += len(sh.packets)
		slabs[i] = sh.packets
		if tiered {
			for _, fm := range sh.flows {
				flows = append(flows, fm)
			}
		}
	}
	if tiered {
		// Deterministic flow order (same comparator as every listing), so
		// snapshots stay byte-identical across shard counts.
		sort.Slice(flows, func(i, j int) bool {
			if flows[i].First != flows[j].First {
				return flows[i].First < flows[j].First
			}
			return flows[i].Key.Hash() < flows[j].Key.Hash()
		})
	}
	var scratch [17]byte
	binary.LittleEndian.PutUint16(scratch[:2], version)
	if _, err := bw.Write(scratch[:2]); err != nil {
		return err
	}
	cw := &crcWriter{w: bw}
	binary.LittleEndian.PutUint64(scratch[:8], uint64(nPackets))
	if _, err := cw.Write(scratch[:8]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(scratch[:8], uint64(len(s.events)))
	if _, err := cw.Write(scratch[:8]); err != nil {
		return err
	}
	if tiered {
		// Base ID: the smallest hot ID (all hot IDs are contiguous up to
		// nextID), or nextID itself when everything is sealed. Load seeds
		// the sequence here so re-ingest reassigns the original IDs.
		baseID := s.nextID.Load()
		for _, slab := range slabs {
			for i := range slab {
				if uint64(slab[i].ID) < baseID {
					baseID = uint64(slab[i].ID)
				}
			}
		}
		binary.LittleEndian.PutUint64(scratch[:8], uint64(len(flows)))
		if _, err := cw.Write(scratch[:8]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(scratch[:8], baseID)
		if _, err := cw.Write(scratch[:8]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(scratch[:8], uint64(s.lastTS.Load()))
		if _, err := cw.Write(scratch[:8]); err != nil {
			return err
		}
	}
	if err := writeCRC(bw, cw); err != nil {
		return err
	}
	cur := newMergeCursor(slabs)
	for sp := cur.next(); sp != nil; sp = cur.next() {
		binary.LittleEndian.PutUint64(scratch[:8], uint64(sp.TS))
		binary.LittleEndian.PutUint16(scratch[8:10], sp.Link)
		scratch[10] = byte(sp.Label)
		scratch[11] = 0
		if sp.Actor {
			scratch[11] = 1
		}
		if _, err := cw.Write(scratch[:12]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(sp.Data)))
		if _, err := cw.Write(scratch[:4]); err != nil {
			return err
		}
		if _, err := cw.Write(sp.Data); err != nil {
			return err
		}
	}
	if err := writeCRC(bw, cw); err != nil {
		return err
	}
	for i := range s.events {
		ev := &s.events[i]
		binary.LittleEndian.PutUint64(scratch[:8], uint64(ev.TS))
		scratch[8] = byte(ev.Source)
		scratch[9] = byte(ev.Severity)
		binary.LittleEndian.PutUint16(scratch[10:12], uint16(len(ev.Host)))
		if _, err := cw.Write(scratch[:12]); err != nil {
			return err
		}
		if _, err := cw.WriteString(ev.Host); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(ev.Message)))
		if _, err := cw.Write(scratch[:4]); err != nil {
			return err
		}
		if _, err := cw.WriteString(ev.Message); err != nil {
			return err
		}
	}
	if err := writeCRC(bw, cw); err != nil {
		return err
	}
	if tiered {
		for _, fm := range flows {
			if err := writeFlowMeta(cw, fm); err != nil {
				return err
			}
		}
		if err := writeCRC(bw, cw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeFlowMeta serializes one flow aggregate (v3 flows section).
func writeFlowMeta(cw *crcWriter, fm *FlowMeta) error {
	var b [16]byte
	addr := func(a netip.Addr) error {
		flag := byte(0)
		if a.Is4() {
			flag = 1
		}
		if _, err := cw.Write([]byte{flag}); err != nil {
			return err
		}
		a16 := a.As16()
		_, err := cw.Write(a16[:])
		return err
	}
	if _, err := cw.Write([]byte{byte(fm.Key.Proto)}); err != nil {
		return err
	}
	if err := addr(fm.Key.SrcIP); err != nil {
		return err
	}
	if err := addr(fm.Key.DstIP); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(b[:2], fm.Key.SrcPort)
	binary.LittleEndian.PutUint16(b[2:4], fm.Key.DstPort)
	if _, err := cw.Write(b[:4]); err != nil {
		return err
	}
	for _, v := range []uint64{
		uint64(fm.First), uint64(fm.Last), fm.Packets, fm.Bytes, fm.PayloadBytes,
	} {
		binary.LittleEndian.PutUint64(b[:8], v)
		if _, err := cw.Write(b[:8]); err != nil {
			return err
		}
	}
	labeled := byte(0)
	if fm.Labeled {
		labeled = 1
	}
	b[0] = byte(fm.TCPFlags)
	b[1] = byte(fm.Label)
	b[2] = labeled
	binary.LittleEndian.PutUint32(b[3:7], fm.DNSQueries)
	binary.LittleEndian.PutUint32(b[7:11], fm.DNSResponses)
	binary.LittleEndian.PutUint32(b[11:15], fm.DNSAnyCount)
	if _, err := cw.Write(b[:15]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(b[:4], uint32(len(fm.pktIDs)))
	if _, err := cw.Write(b[:4]); err != nil {
		return err
	}
	for _, id := range fm.pktIDs {
		binary.LittleEndian.PutUint64(b[:8], uint64(id))
		if _, err := cw.Write(b[:8]); err != nil {
			return err
		}
	}
	return nil
}

// readFlowMeta inverts writeFlowMeta.
func readFlowMeta(cr *crcReader) (*FlowMeta, error) {
	var b [16]byte
	fm := &FlowMeta{}
	addr := func() (netip.Addr, error) {
		var hdr [17]byte
		if _, err := io.ReadFull(cr, hdr[:]); err != nil {
			return netip.Addr{}, err
		}
		var a16 [16]byte
		copy(a16[:], hdr[1:])
		if hdr[0] == 1 {
			var a4 [4]byte
			copy(a4[:], hdr[13:17])
			return netip.AddrFrom4(a4), nil
		}
		return netip.AddrFrom16(a16), nil
	}
	if _, err := io.ReadFull(cr, b[:1]); err != nil {
		return nil, err
	}
	fm.Key.Proto = packet.IPProtocol(b[0])
	var err error
	if fm.Key.SrcIP, err = addr(); err != nil {
		return nil, err
	}
	if fm.Key.DstIP, err = addr(); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(cr, b[:4]); err != nil {
		return nil, err
	}
	fm.Key.SrcPort = binary.LittleEndian.Uint16(b[:2])
	fm.Key.DstPort = binary.LittleEndian.Uint16(b[2:4])
	var u64s [5]uint64
	for i := range u64s {
		if _, err := io.ReadFull(cr, b[:8]); err != nil {
			return nil, err
		}
		u64s[i] = binary.LittleEndian.Uint64(b[:8])
	}
	fm.First = time.Duration(u64s[0])
	fm.Last = time.Duration(u64s[1])
	fm.Packets, fm.Bytes, fm.PayloadBytes = u64s[2], u64s[3], u64s[4]
	if _, err := io.ReadFull(cr, b[:15]); err != nil {
		return nil, err
	}
	fm.TCPFlags = packet.TCPFlags(b[0])
	fm.Label = traffic.Label(b[1])
	fm.Labeled = b[2] == 1
	fm.DNSQueries = binary.LittleEndian.Uint32(b[3:7])
	fm.DNSResponses = binary.LittleEndian.Uint32(b[7:11])
	fm.DNSAnyCount = binary.LittleEndian.Uint32(b[11:15])
	if _, err := io.ReadFull(cr, b[:4]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(b[:4])
	if n > 1<<28 {
		return nil, fmt.Errorf("%w: flow claims %d packet IDs", ErrBadSnapshot, n)
	}
	fm.pktIDs = make([]PacketID, n)
	for i := range fm.pktIDs {
		if _, err := io.ReadFull(cr, b[:8]); err != nil {
			return nil, err
		}
		fm.pktIDs[i] = PacketID(binary.LittleEndian.Uint64(b[:8]))
	}
	return fm, nil
}

// writeCRC emits cw's accumulated section checksum (bypassing cw so the
// checksum doesn't checksum itself) and resets it for the next section.
func writeCRC(w io.Writer, cw *crcWriter) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], cw.crc)
	cw.crc = 0
	_, err := w.Write(b[:])
	return err
}

// checkCRC reads a stored section checksum (bypassing cr) and compares it
// against the accumulated one, resetting cr for the next section.
func checkCRC(r io.Reader, cr *crcReader, section string) error {
	sum := cr.crc
	cr.crc = 0
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return fmt.Errorf("%w: %s crc: %v", ErrBadSnapshot, section, err)
	}
	if stored := binary.LittleEndian.Uint32(b[:]); stored != sum {
		return fmt.Errorf("%w: %s section (stored %08x, computed %08x)", ErrChecksum, section, stored, sum)
	}
	return nil
}

// Load reads a snapshot into a fresh store, re-ingesting every packet so
// all indexes and flow metadata are rebuilt. Truncated or corrupt
// snapshots return an error wrapping ErrBadSnapshot (ErrChecksum for
// checksum mismatches) — never a silently wrong store.
func Load(r io.Reader) (*Store, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, 4+2)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
	}
	if string(head[:4]) != persistMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadSnapshot, head[:4])
	}
	v := binary.LittleEndian.Uint16(head[4:6])
	if v != persistVersion && v != persistVersionTiered {
		return nil, fmt.Errorf("%w: version %d", ErrBadSnapshot, v)
	}
	tiered := v == persistVersionTiered
	cr := &crcReader{r: br}
	var counts [16]byte
	if _, err := io.ReadFull(cr, counts[:]); err != nil {
		return nil, fmt.Errorf("%w: header counts: %v", ErrBadSnapshot, err)
	}
	nPkts := binary.LittleEndian.Uint64(counts[:8])
	nEvts := binary.LittleEndian.Uint64(counts[8:16])
	var nFlows, baseID, storedLastTS uint64
	if tiered {
		var extra [24]byte
		if _, err := io.ReadFull(cr, extra[:]); err != nil {
			return nil, fmt.Errorf("%w: tiered header: %v", ErrBadSnapshot, err)
		}
		nFlows = binary.LittleEndian.Uint64(extra[:8])
		baseID = binary.LittleEndian.Uint64(extra[8:16])
		storedLastTS = binary.LittleEndian.Uint64(extra[16:24])
	}
	if err := checkCRC(br, cr, "header"); err != nil {
		return nil, err
	}

	st := New()
	if tiered {
		// Seed the ID sequence so re-ingest reassigns the ORIGINAL hot IDs:
		// cold segments reference packets by ID, so recovery must not
		// renumber the hot tier underneath them.
		st.nextID.Store(baseID)
	}
	var scratch [12]byte
	var f traffic.Frame
	for i := uint64(0); i < nPkts; i++ {
		if _, err := io.ReadFull(cr, scratch[:12]); err != nil {
			return nil, fmt.Errorf("%w: packet %d header: %v", ErrBadSnapshot, i, err)
		}
		f.TS = time.Duration(binary.LittleEndian.Uint64(scratch[:8]))
		link := binary.LittleEndian.Uint16(scratch[8:10])
		f.Label = traffic.Label(scratch[10])
		f.Actor = scratch[11] == 1
		if _, err := io.ReadFull(cr, scratch[:4]); err != nil {
			return nil, fmt.Errorf("%w: packet %d len: %v", ErrBadSnapshot, i, err)
		}
		n := binary.LittleEndian.Uint32(scratch[:4])
		if n > 1<<20 {
			return nil, fmt.Errorf("%w: packet %d claims %d bytes", ErrBadSnapshot, i, n)
		}
		f.Data = make([]byte, n)
		if _, err := io.ReadFull(cr, f.Data); err != nil {
			return nil, fmt.Errorf("%w: packet %d body: %v", ErrBadSnapshot, i, err)
		}
		// Ingest with the stored link id directly so flow metadata and the
		// secondary indexes (including the link posting lists) rebuild
		// exactly as they were at save time.
		st.ingest(f.TS, link, f.Data, f.Label, f.Actor)
	}
	if err := checkCRC(br, cr, "packets"); err != nil {
		return nil, err
	}
	evs := make([]eventlog.Event, 0, min(nEvts, 1<<16))
	for i := uint64(0); i < nEvts; i++ {
		if _, err := io.ReadFull(cr, scratch[:12]); err != nil {
			return nil, fmt.Errorf("%w: event %d header: %v", ErrBadSnapshot, i, err)
		}
		var ev eventlog.Event
		ev.TS = time.Duration(binary.LittleEndian.Uint64(scratch[:8]))
		ev.Source = eventlog.Source(scratch[8])
		ev.Severity = eventlog.Severity(scratch[9])
		hostLen := binary.LittleEndian.Uint16(scratch[10:12])
		host := make([]byte, hostLen)
		if _, err := io.ReadFull(cr, host); err != nil {
			return nil, fmt.Errorf("%w: event %d host: %v", ErrBadSnapshot, i, err)
		}
		ev.Host = string(host)
		if _, err := io.ReadFull(cr, scratch[:4]); err != nil {
			return nil, fmt.Errorf("%w: event %d msg len: %v", ErrBadSnapshot, i, err)
		}
		msgLen := binary.LittleEndian.Uint32(scratch[:4])
		if msgLen > 1<<20 {
			return nil, fmt.Errorf("%w: event %d claims %d-byte message", ErrBadSnapshot, i, msgLen)
		}
		msg := make([]byte, msgLen)
		if _, err := io.ReadFull(cr, msg); err != nil {
			return nil, fmt.Errorf("%w: event %d msg: %v", ErrBadSnapshot, i, err)
		}
		ev.Message = string(msg)
		evs = append(evs, ev)
	}
	if err := checkCRC(br, cr, "events"); err != nil {
		return nil, err
	}
	if len(evs) > 0 {
		st.AddEvents(evs)
	}
	if tiered {
		// Overlay the persisted flow aggregates: re-ingest above rebuilt only
		// the hot packets' share, but a flow that straddles the seal boundary
		// (or lives entirely in cold segments) has byte/packet totals and ID
		// lists the hot slabs cannot reproduce.
		if nFlows > 1<<32 {
			return nil, fmt.Errorf("%w: header claims %d flows", ErrBadSnapshot, nFlows)
		}
		for i := uint64(0); i < nFlows; i++ {
			fm, err := readFlowMeta(cr)
			if err != nil {
				return nil, fmt.Errorf("%w: flow %d: %v", ErrBadSnapshot, i, err)
			}
			sh := st.shards[fm.Key.Hash()&st.mask]
			if old, ok := sh.flows[fm.Key]; ok {
				if d := len(fm.pktIDs) - len(old.pktIDs); d > 0 {
					sh.indexBytes += 8 * uint64(d)
				}
			} else {
				sh.indexBytes += 96 + 8*uint64(len(fm.pktIDs))
			}
			sh.flows[fm.Key] = fm
		}
		if err := checkCRC(br, cr, "flows"); err != nil {
			return nil, err
		}
		if int64(storedLastTS) > st.lastTS.Load() {
			st.lastTS.Store(int64(storedLastTS))
		}
	}
	return st, nil
}

// faultWriter consults the store's injector before every write, so a
// scripted schedule can kill a snapshot save at an exact byte boundary.
type faultWriter struct {
	w   io.Writer
	inj faults.Injector
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if err := fw.inj.Fail(faults.OpStoreWrite); err != nil {
		return 0, err
	}
	return fw.w.Write(p)
}

// SaveFile writes a crash-safe snapshot to path: the stream goes to a
// temp file in the same directory, is fsynced, and is atomically renamed
// over path. A crash (or injected fault) at any point leaves either the
// old snapshot or the new one at path — never a truncated hybrid.
func (s *Store) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("datastore: snapshot temp file: %w", err)
	}
	tmpPath := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
		}
	}()
	var w io.Writer = tmp
	if s.persistFaults != nil {
		w = &faultWriter{w: tmp, inj: s.persistFaults}
	}
	if err = s.Save(w); err != nil {
		return fmt.Errorf("datastore: snapshot write: %w", err)
	}
	if s.persistFaults != nil {
		if err = s.persistFaults.Fail(faults.OpStoreSync); err != nil {
			return fmt.Errorf("datastore: snapshot sync: %w", err)
		}
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("datastore: snapshot sync: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("datastore: snapshot close: %w", err)
	}
	if s.persistFaults != nil {
		if err = s.persistFaults.Fail(faults.OpStoreRename); err != nil {
			return fmt.Errorf("datastore: snapshot rename: %w", err)
		}
	}
	if err = os.Rename(tmpPath, path); err != nil {
		return fmt.Errorf("datastore: snapshot rename: %w", err)
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadFile reads a snapshot file written by SaveFile.
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("datastore: snapshot open: %w", err)
	}
	defer f.Close()
	return Load(f)
}
