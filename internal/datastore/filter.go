package datastore

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"time"
	"unicode"

	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

// The store's filter language gives analysts the "fast and flexible search
// capabilities" of §5 without shipping packets elsewhere. Examples:
//
//	proto == udp && dst.port == 53
//	src.ip in 10.0.0.0/8 && len > 1000
//	dns && dns.qtype == ANY && dns.resp
//	ts >= 5s && ts < 10s && tcp.syn && !tcp.ack
//
// Grammar (recursive descent):
//
//	expr    := or
//	or      := and ('||' and)*
//	and     := unary ('&&' unary)*
//	unary   := '!' unary | '(' expr ')' | comparison | flag
//	compare := field ('=='|'!='|'<'|'<='|'>'|'>='|'in') value

// Predicate is a compiled filter.
type Predicate func(*StoredPacket) bool

// Filter is a parsed, compiled filter expression. A Filter is immutable
// after ParseFilter returns and safe for concurrent use by any number of
// queries (which is what lets SelectExpr cache and share compiled filters
// across requests).
type Filter struct {
	expr string
	pred Predicate
	// Time bounds extracted for index-assisted scans; zero values mean
	// unbounded.
	minTS, maxTS   time.Duration
	hasMin, hasMax bool
	// plan is the query plan the index-assisted engine derived from the
	// expression's AND-conjuncts (see plan.go).
	plan queryPlan
}

// Expr returns the original expression text.
func (f *Filter) Expr() string { return f.expr }

// Match reports whether sp satisfies the filter.
func (f *Filter) Match(sp *StoredPacket) bool { return f.pred(sp) }

// TimeBounds returns the ts range implied by the expression (for scans).
func (f *Filter) TimeBounds() (min, max time.Duration, hasMin, hasMax bool) {
	return f.minTS, f.maxTS, f.hasMin, f.hasMax
}

// Indexable reports whether the planner found at least one posting-list
// conjunct in the expression — i.e. whether the index-assisted path is
// available (shards may still fall back to scanning on poor selectivity).
func (f *Filter) Indexable() bool { return f.plan.indexable }

// ParseFilter compiles a filter expression.
func ParseFilter(expr string) (*Filter, error) {
	p := &filterParser{input: expr}
	p.next()
	node, err := p.parseOr()
	if err != nil {
		return nil, fmt.Errorf("datastore: parsing %q: %w", expr, err)
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("datastore: parsing %q: trailing input at %q", expr, p.tok.text)
	}
	f := &Filter{expr: expr, pred: node.pred}
	extractTimeBounds(node, f)
	f.plan = buildPlan(node)
	return f, nil
}

// MustFilter is ParseFilter that panics; for tests and constants.
func MustFilter(expr string) *Filter {
	f, err := ParseFilter(expr)
	if err != nil {
		panic(err)
	}
	return f
}

// --- lexer ---

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokDuration
	tokIP
	tokCIDR
	tokOp     // == != < <= > >= in
	tokAnd    // &&
	tokOr     // ||
	tokNot    // !
	tokLParen // (
	tokRParen // )
)

type token struct {
	kind tokKind
	text string
}

type filterParser struct {
	input string
	pos   int
	tok   token
}

func (p *filterParser) next() {
	for p.pos < len(p.input) && unicode.IsSpace(rune(p.input[p.pos])) {
		p.pos++
	}
	if p.pos >= len(p.input) {
		p.tok = token{kind: tokEOF}
		return
	}
	rest := p.input[p.pos:]
	switch {
	case strings.HasPrefix(rest, "&&"):
		p.tok = token{tokAnd, "&&"}
		p.pos += 2
	case strings.HasPrefix(rest, "||"):
		p.tok = token{tokOr, "||"}
		p.pos += 2
	case strings.HasPrefix(rest, "=="), strings.HasPrefix(rest, "!="),
		strings.HasPrefix(rest, "<="), strings.HasPrefix(rest, ">="):
		p.tok = token{tokOp, rest[:2]}
		p.pos += 2
	case rest[0] == '<' || rest[0] == '>':
		p.tok = token{tokOp, rest[:1]}
		p.pos++
	case rest[0] == '!':
		p.tok = token{tokNot, "!"}
		p.pos++
	case rest[0] == '(':
		p.tok = token{tokLParen, "("}
		p.pos++
	case rest[0] == ')':
		p.tok = token{tokRParen, ")"}
		p.pos++
	default:
		// word: ident, number, duration, IP, CIDR
		end := p.pos
		for end < len(p.input) {
			c := p.input[end]
			if unicode.IsSpace(rune(c)) || strings.ContainsRune("()!&|<>=", rune(c)) {
				break
			}
			end++
		}
		word := p.input[p.pos:end]
		p.pos = end
		p.tok = classifyWord(word)
	}
}

func classifyWord(w string) token {
	if w == "in" {
		return token{tokOp, "in"}
	}
	if strings.Contains(w, "/") {
		if _, err := netip.ParsePrefix(w); err == nil {
			return token{tokCIDR, w}
		}
	}
	if _, err := netip.ParseAddr(w); err == nil {
		return token{tokIP, w}
	}
	if _, err := strconv.ParseUint(w, 10, 64); err == nil {
		return token{tokNumber, w}
	}
	if _, err := time.ParseDuration(w); err == nil && strings.IndexFunc(w, unicode.IsLetter) >= 0 {
		return token{tokDuration, w}
	}
	return token{tokIdent, w}
}

// --- parser / compiler ---

// node carries a compiled predicate plus structural info for time-bound
// extraction and planning.
type node struct {
	pred Predicate
	// and-children for bound extraction; comparisons on ts fill tsCmp.
	kind  string // "and", "or", "not", "cmp", "flag"
	kids  []*node
	tsOp  string
	tsVal time.Duration
	// ix/ixVal describe the posting list whose membership is exactly
	// equivalent to this leaf (ixNone when the leaf is not indexable).
	ix    ixKind
	ixVal uint64
}

func (p *filterParser) parseOr() (*node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l, r := left.pred, right.pred
		left = &node{kind: "or", kids: []*node{left, right},
			pred: func(sp *StoredPacket) bool { return l(sp) || r(sp) }}
	}
	return left, nil
}

func (p *filterParser) parseAnd() (*node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokAnd {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l, r := left.pred, right.pred
		left = &node{kind: "and", kids: []*node{left, right},
			pred: func(sp *StoredPacket) bool { return l(sp) && r(sp) }}
	}
	return left, nil
}

func (p *filterParser) parseUnary() (*node, error) {
	switch p.tok.kind {
	case tokNot:
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		in := inner.pred
		return &node{kind: "not", kids: []*node{inner},
			pred: func(sp *StoredPacket) bool { return !in(sp) }}, nil
	case tokLParen:
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("missing ')' at %q", p.tok.text)
		}
		p.next()
		return inner, nil
	case tokIdent:
		return p.parseComparison()
	default:
		return nil, fmt.Errorf("unexpected token %q", p.tok.text)
	}
}

func (p *filterParser) parseComparison() (*node, error) {
	field := p.tok.text
	p.next()
	if p.tok.kind != tokOp {
		// bare flag: dns, dns.resp, tcp.syn, ...
		return flagNode(field)
	}
	op := p.tok.text
	p.next()
	val := p.tok
	if val.kind == tokEOF {
		return nil, fmt.Errorf("missing value after %s %s", field, op)
	}
	p.next()
	return compileComparison(field, op, val)
}

// flagNode compiles a bare flag field. Positive summary flags carry an
// index descriptor: the flag posting list holds exactly the packets where
// the flag is true, so membership ⇔ predicate.
func flagNode(field string) (*node, error) {
	switch field {
	case "dns":
		return &node{kind: "flag", ix: ixFlag, ixVal: flagDNS,
			pred: func(sp *StoredPacket) bool { return sp.Summary.IsDNS }}, nil
	case "dns.resp":
		return &node{kind: "flag", ix: ixFlag, ixVal: flagDNSResp,
			pred: func(sp *StoredPacket) bool { return sp.Summary.DNSResponse }}, nil
	case "tcp":
		return &node{kind: "flag", ix: ixFlag, ixVal: flagTCP,
			pred: func(sp *StoredPacket) bool { return sp.Summary.HasTCP }}, nil
	case "udp":
		return &node{kind: "flag", ix: ixFlag, ixVal: flagUDP,
			pred: func(sp *StoredPacket) bool { return sp.Summary.HasUDP }}, nil
	case "icmp":
		return &node{kind: "flag", ix: ixFlag, ixVal: flagICMP,
			pred: func(sp *StoredPacket) bool { return sp.Summary.HasICMP }}, nil
	case "ip":
		return &node{kind: "flag", ix: ixFlag, ixVal: flagIP,
			pred: func(sp *StoredPacket) bool { return sp.Summary.HasIP }}, nil
	case "tcp.syn", "tcp.ack", "tcp.fin", "tcp.rst", "tcp.psh":
		var bit packet.TCPFlags
		switch field {
		case "tcp.syn":
			bit = packet.TCPSyn
		case "tcp.ack":
			bit = packet.TCPAck
		case "tcp.fin":
			bit = packet.TCPFin
		case "tcp.rst":
			bit = packet.TCPRst
		case "tcp.psh":
			bit = packet.TCPPsh
		}
		return &node{kind: "flag",
			pred: func(sp *StoredPacket) bool { return sp.Summary.HasTCP && sp.Summary.TCPFlags.Has(bit) }}, nil
	default:
		return nil, fmt.Errorf("unknown flag %q", field)
	}
}

func compileComparison(field, op string, val token) (*node, error) {
	switch field {
	case "ts":
		if val.kind != tokDuration && val.kind != tokNumber {
			return nil, fmt.Errorf("ts compares against a duration, got %q", val.text)
		}
		var d time.Duration
		if val.kind == tokDuration {
			d, _ = time.ParseDuration(val.text)
		} else {
			n, _ := strconv.ParseInt(val.text, 10, 64)
			d = time.Duration(n) * time.Second
		}
		pred, err := ordPredicate(op, func(sp *StoredPacket) int64 { return int64(sp.TS) }, int64(d))
		if err != nil {
			return nil, err
		}
		return &node{kind: "cmp", tsOp: op, tsVal: d, pred: pred}, nil
	case "len":
		return numericNode(op, val, func(sp *StoredPacket) int64 { return int64(sp.Summary.WireLen) })
	case "payload.len":
		return numericNode(op, val, func(sp *StoredPacket) int64 { return int64(sp.Summary.PayloadLen) })
	case "ttl":
		return numericNode(op, val, func(sp *StoredPacket) int64 { return int64(sp.Summary.TTL) })
	case "src.port":
		return indexedNumericNode(ixSrcPort, op, val, func(sp *StoredPacket) int64 { return int64(sp.Summary.Tuple.SrcPort) })
	case "dst.port":
		return indexedNumericNode(ixDstPort, op, val, func(sp *StoredPacket) int64 { return int64(sp.Summary.Tuple.DstPort) })
	case "dns.answers":
		return numericNode(op, val, func(sp *StoredPacket) int64 { return int64(sp.Summary.DNSAnswerCnt) })
	case "link":
		return indexedNumericNode(ixLink, op, val, func(sp *StoredPacket) int64 { return int64(sp.Link) })
	case "src.ip", "dst.ip":
		get := func(sp *StoredPacket) netip.Addr { return sp.Summary.Tuple.SrcIP }
		if field == "dst.ip" {
			get = func(sp *StoredPacket) netip.Addr { return sp.Summary.Tuple.DstIP }
		}
		switch {
		case op == "in" && val.kind == tokCIDR:
			pfx := netip.MustParsePrefix(val.text)
			return &node{kind: "cmp", pred: func(sp *StoredPacket) bool { return pfx.Contains(get(sp)) }}, nil
		case (op == "==" || op == "!=") && val.kind == tokIP:
			want := netip.MustParseAddr(val.text)
			eq := op == "=="
			return &node{kind: "cmp", pred: func(sp *StoredPacket) bool { return (get(sp) == want) == eq }}, nil
		default:
			return nil, fmt.Errorf("%s %s %q not supported", field, op, val.text)
		}
	case "proto":
		if val.kind != tokIdent && val.kind != tokNumber {
			return nil, fmt.Errorf("proto compares against a name or number")
		}
		var want packet.IPProtocol
		switch strings.ToLower(val.text) {
		case "tcp":
			want = packet.IPProtocolTCP
		case "udp":
			want = packet.IPProtocolUDP
		case "icmp":
			want = packet.IPProtocolICMPv4
		default:
			n, err := strconv.ParseUint(val.text, 10, 8)
			if err != nil {
				return nil, fmt.Errorf("unknown protocol %q", val.text)
			}
			want = packet.IPProtocol(n)
		}
		switch op {
		case "==":
			return &node{kind: "cmp", ix: ixProto, ixVal: uint64(want),
				pred: func(sp *StoredPacket) bool { return sp.Summary.Tuple.Proto == want }}, nil
		case "!=":
			return &node{kind: "cmp", pred: func(sp *StoredPacket) bool { return sp.Summary.Tuple.Proto != want }}, nil
		default:
			return nil, fmt.Errorf("proto supports == and != only")
		}
	case "label":
		// Packet-level ground-truth label (from labeled generators):
		// label == dns-amp, label != benign, or a numeric class id.
		var want traffic.Label
		found := false
		for l := traffic.LabelBenign; l < traffic.NumLabels; l++ {
			if l.String() == val.text {
				want, found = l, true
				break
			}
		}
		if !found {
			n, err := strconv.ParseUint(val.text, 10, 8)
			if err != nil || traffic.Label(n) >= traffic.NumLabels {
				return nil, fmt.Errorf("unknown label %q", val.text)
			}
			want = traffic.Label(n)
		}
		switch op {
		case "==":
			return &node{kind: "cmp", ix: ixLabel, ixVal: uint64(want),
				pred: func(sp *StoredPacket) bool { return sp.Label == want }}, nil
		case "!=":
			return &node{kind: "cmp", pred: func(sp *StoredPacket) bool { return sp.Label != want }}, nil
		default:
			return nil, fmt.Errorf("label supports == and != only")
		}
	case "dns.qtype":
		var want packet.DNSType
		switch strings.ToUpper(val.text) {
		case "A":
			want = packet.DNSTypeA
		case "AAAA":
			want = packet.DNSTypeAAAA
		case "ANY":
			want = packet.DNSTypeANY
		case "TXT":
			want = packet.DNSTypeTXT
		case "NS":
			want = packet.DNSTypeNS
		case "MX":
			want = packet.DNSTypeMX
		default:
			n, err := strconv.ParseUint(val.text, 10, 16)
			if err != nil {
				return nil, fmt.Errorf("unknown dns type %q", val.text)
			}
			want = packet.DNSType(n)
		}
		switch op {
		case "==":
			return &node{kind: "cmp", pred: func(sp *StoredPacket) bool { return sp.Summary.IsDNS && sp.Summary.DNSQueryType == want }}, nil
		case "!=":
			return &node{kind: "cmp", pred: func(sp *StoredPacket) bool { return sp.Summary.IsDNS && sp.Summary.DNSQueryType != want }}, nil
		default:
			return nil, fmt.Errorf("dns.qtype supports == and != only")
		}
	default:
		return nil, fmt.Errorf("unknown field %q", field)
	}
}

func numericNode(op string, val token, get func(*StoredPacket) int64) (*node, error) {
	if val.kind != tokNumber {
		return nil, fmt.Errorf("numeric field compares against a number, got %q", val.text)
	}
	n, _ := strconv.ParseInt(val.text, 10, 64)
	pred, err := ordPredicate(op, get, n)
	if err != nil {
		return nil, err
	}
	return &node{kind: "cmp", pred: pred}, nil
}

// indexedNumericNode is numericNode for fields backed by a posting list;
// equality comparisons get an index descriptor (values outside the field's
// domain simply find an empty posting list, which is still exact).
func indexedNumericNode(kind ixKind, op string, val token, get func(*StoredPacket) int64) (*node, error) {
	n, err := numericNode(op, val, get)
	if err != nil {
		return nil, err
	}
	if op == "==" {
		v, _ := strconv.ParseUint(val.text, 10, 64)
		n.ix, n.ixVal = kind, v
	}
	return n, nil
}

func ordPredicate(op string, get func(*StoredPacket) int64, want int64) (Predicate, error) {
	switch op {
	case "==":
		return func(sp *StoredPacket) bool { return get(sp) == want }, nil
	case "!=":
		return func(sp *StoredPacket) bool { return get(sp) != want }, nil
	case "<":
		return func(sp *StoredPacket) bool { return get(sp) < want }, nil
	case "<=":
		return func(sp *StoredPacket) bool { return get(sp) <= want }, nil
	case ">":
		return func(sp *StoredPacket) bool { return get(sp) > want }, nil
	case ">=":
		return func(sp *StoredPacket) bool { return get(sp) >= want }, nil
	default:
		return nil, fmt.Errorf("operator %q not valid here", op)
	}
}

// extractTimeBounds walks top-level AND chains pulling ts comparisons into
// the filter's scan bounds.
func extractTimeBounds(n *node, f *Filter) {
	switch n.kind {
	case "and":
		for _, k := range n.kids {
			extractTimeBounds(k, f)
		}
	case "cmp":
		switch n.tsOp {
		case ">", ">=":
			if !f.hasMin || n.tsVal > f.minTS {
				f.minTS, f.hasMin = n.tsVal, true
			}
		case "<", "<=":
			if !f.hasMax || n.tsVal < f.maxTS {
				f.maxTS, f.hasMax = n.tsVal, true
			}
		case "==":
			f.minTS, f.hasMin = n.tsVal, true
			f.maxTS, f.hasMax = n.tsVal, true
		}
	}
}
