//go:build linux

package datastore

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy segment read path. On Linux, segment
// files are mapped read-only instead of copied through the page cache
// twice; unlinking a mapped file (compaction, retention) is safe — the
// mapping stays valid until unmapped.
const mmapSupported = true

// mmapFile maps path read-only. The returned release func must be called
// once every decode touching the bytes has finished; decoded rows never
// alias the mapping (rowsAt copies via inflate and re-parse), so callers
// release as soon as their segment decode returns.
func mmapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, errMmapUnavailable
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return b, func() { _ = syscall.Munmap(b) }, nil
}
