package datastore

import (
	"sync"

	"campuslab/internal/obs"
)

// Compiled-filter cache: parsing + planning a filter expression costs far
// more than executing a selective query, and serving paths (labd QUERY,
// the campuslab query command, experiments) tend to repeat a small set of
// expressions. The cache is keyed by the exact expression text; entries
// are immutable *Filter values (safe to share across goroutines), so a
// hit is a map read. Bounded FIFO eviction keeps the worst case small —
// there is no value in LRU precision for a cache this cheap to refill.

const filterCacheCap = 256

var (
	obsFilterCacheHits   = obs.Default.Counter("campuslab_query_filter_cache_total", "result", "hit")
	obsFilterCacheMisses = obs.Default.Counter("campuslab_query_filter_cache_total", "result", "miss")
)

var filterCache = struct {
	mu   sync.RWMutex
	m    map[string]*Filter
	fifo []string
}{m: make(map[string]*Filter)}

// ParseFilterCached returns the compiled filter for expr, parsing and
// planning it at most once per process (until evicted). Parse errors are
// not cached: they are cheap to reproduce and keeping them would let
// garbage expressions evict useful entries.
func ParseFilterCached(expr string) (*Filter, error) {
	filterCache.mu.RLock()
	f, ok := filterCache.m[expr]
	filterCache.mu.RUnlock()
	if ok {
		obsFilterCacheHits.Inc()
		return f, nil
	}
	obsFilterCacheMisses.Inc()
	f, err := ParseFilter(expr)
	if err != nil {
		return nil, err
	}
	filterCache.mu.Lock()
	if have, ok := filterCache.m[expr]; ok {
		// Raced with another parser; keep the incumbent so callers share
		// one compiled instance.
		f = have
	} else {
		if len(filterCache.fifo) >= filterCacheCap {
			delete(filterCache.m, filterCache.fifo[0])
			filterCache.fifo = filterCache.fifo[1:]
		}
		filterCache.m[expr] = f
		filterCache.fifo = append(filterCache.fifo, expr)
	}
	filterCache.mu.Unlock()
	return f, nil
}
