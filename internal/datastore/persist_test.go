package datastore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"campuslab/internal/eventlog"
	"campuslab/internal/faults"
	"campuslab/internal/traffic"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	st := fillStore(t)
	evs := eventlog.NewGenerator(eventlog.GeneratorConfig{Source: eventlog.SourceIDS, Rate: 5, Seed: 1}).Generate(4 * time.Second)
	st.AddEvents(evs)

	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := st.Stats(), got.Stats()
	if a.Packets != b.Packets || a.Flows != b.Flows || a.Events != b.Events || a.DataBytes != b.DataBytes {
		t.Fatalf("stats mismatch: %+v vs %+v", a, b)
	}
	// Ground truth survives: label counts identical.
	ac, bc := st.LabelCounts(), got.LabelCounts()
	for l, n := range ac {
		if bc[l] != n {
			t.Errorf("label %v: %d vs %d", l, bc[l], n)
		}
	}
	// Query results identical.
	f := MustFilter("dns && dns.qtype == ANY")
	if st.Count(f) != got.Count(f) {
		t.Errorf("query counts differ: %d vs %d", st.Count(f), got.Count(f))
	}
	// Packet bytes identical in order.
	orig := st.PacketsBetween(0, 1<<62)
	loaded := got.PacketsBetween(0, 1<<62)
	if len(orig) != len(loaded) {
		t.Fatal("packet counts differ")
	}
	for i := range orig {
		if !bytes.Equal(orig[i].Data, loaded[i].Data) || orig[i].TS != loaded[i].TS {
			t.Fatalf("packet %d differs", i)
		}
		if orig[i].Label != loaded[i].Label || orig[i].Actor != loaded[i].Actor {
			t.Fatalf("packet %d ground truth lost", i)
		}
	}
	// Events identical.
	oe, le := st.EventsBetween(0, 1<<62), got.EventsBetween(0, 1<<62)
	for i := range oe {
		if oe[i].TS != le[i].TS || oe[i].Message != le[i].Message || oe[i].Host != le[i].Host {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a snapshot at all........"),
		append([]byte("CLDS"), make([]byte, 18)...), // version 0
	}
	for i, data := range cases {
		if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("case %d: want ErrBadSnapshot, got %v", i, err)
		}
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	st := fillStore(t)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{30, len(full) / 2, len(full) - 3} {
		if _, err := Load(bytes.NewReader(full[:cut])); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("cut at %d: want ErrBadSnapshot, got %v", cut, err)
		}
	}
}

func TestLoadRejectsAbsurdLengths(t *testing.T) {
	// Hand-built v2 header (with a valid header CRC) claiming one packet
	// with a 1 GiB body: the length sanity check must fire before any
	// allocation, not the section checksum at the end.
	counts := make([]byte, 16)
	counts[0] = 1 // 1 packet, 0 events
	var buf bytes.Buffer
	buf.WriteString("CLDS")
	buf.Write([]byte{2, 0}) // version
	buf.Write(counts)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(counts))
	buf.Write(crc[:])
	buf.Write(make([]byte, 12))      // packet header
	buf.Write([]byte{0, 0, 0, 0x40}) // len = 1 GiB
	if _, err := Load(&buf); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("want ErrBadSnapshot, got %v", err)
	}
}

func TestLoadRejectsOldVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("CLDS")
	buf.Write([]byte{1, 0}) // v1: pre-checksum format, no longer readable
	buf.Write(make([]byte, 20))
	if _, err := Load(&buf); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("want ErrBadSnapshot for v1 snapshot, got %v", err)
	}
}

func TestLoadDetectsBitFlips(t *testing.T) {
	st := fillStore(t)
	evs := eventlog.NewGenerator(eventlog.GeneratorConfig{Source: eventlog.SourceIDS, Rate: 5, Seed: 2}).Generate(2 * time.Second)
	st.AddEvents(evs)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip one bit at positions spread across header, packet section, and
	// event section. Every flip must surface as a typed error — either the
	// checksum catches it, or a corrupted length field trips a structural
	// check first. Silently loading wrong data is the only failure mode.
	positions := []int{6, 14, 22, 100, len(full) / 2, len(full) - 20, len(full) - 2}
	for _, pos := range positions {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0x10
		_, err := Load(bytes.NewReader(mut))
		if !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("bit flip at %d: want ErrBadSnapshot, got %v", pos, err)
		}
	}
	// A flip in the middle of packet payload bytes is only catchable by
	// the checksum: verify it reports as ErrChecksum specifically.
	mut := append([]byte(nil), full...)
	mut[len(full)/3] ^= 0x01
	if _, err := Load(bytes.NewReader(mut)); !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("payload flip: want typed corruption error, got %v", err)
	}
}

func TestSaveFileAtomicAndLoadable(t *testing.T) {
	st := fillStore(t)
	path := filepath.Join(t.TempDir(), "snap.clds")
	if err := st.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats().Packets != st.Stats().Packets {
		t.Fatalf("round trip lost packets: %d vs %d", got.Stats().Packets, st.Stats().Packets)
	}
	// No temp litter left behind.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("snapshot dir has %d entries, want 1 (temp file leaked?)", len(ents))
	}
}

// TestCrashMidSaveLeavesOldSnapshot is the regression test for the
// non-atomic snapshot write: a failure partway through writing, during
// fsync, or during rename must leave the previous snapshot intact and
// loadable, with no temp litter.
func TestCrashMidSaveLeavesOldSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.clds")
	old := fillStore(t)
	if err := old.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	wantPackets := old.Stats().Packets

	bigger := fillStore(t)
	bigger.AddEvents([]eventlog.Event{{TS: time.Second, Host: "h", Message: "extra"}})

	kills := []struct {
		name string
		inj  faults.Injector
	}{
		// Write call 40 dies mid-stream: the temp file is truncated.
		{"write", faults.NewSchedule().FailCalls(faults.OpStoreWrite, 40, 40, faults.KindPermanent)},
		{"first-write", faults.NewSchedule().FailCalls(faults.OpStoreWrite, 1, 1, faults.KindPermanent)},
		{"sync", faults.NewSchedule().FailCalls(faults.OpStoreSync, 1, 1, faults.KindPermanent)},
		{"rename", faults.NewSchedule().FailCalls(faults.OpStoreRename, 1, 1, faults.KindPermanent)},
	}
	for _, k := range kills {
		t.Run(k.name, func(t *testing.T) {
			bigger.SetFaultInjector(k.inj)
			defer bigger.SetFaultInjector(nil)
			if err := bigger.SaveFile(path); err == nil {
				t.Fatal("injected crash did not surface as an error")
			}
			got, err := LoadFile(path)
			if err != nil {
				t.Fatalf("old snapshot unreadable after crashed save: %v", err)
			}
			if got.Stats().Packets != wantPackets {
				t.Fatalf("old snapshot altered: %d packets, want %d", got.Stats().Packets, wantPackets)
			}
			ents, err := os.ReadDir(filepath.Dir(path))
			if err != nil {
				t.Fatal(err)
			}
			if len(ents) != 1 {
				t.Errorf("crashed save leaked temp files: %d entries in dir", len(ents))
			}
		})
	}

	// After the faults clear, the same store saves fine and the new
	// snapshot replaces the old one atomically.
	bigger.SetFaultInjector(nil)
	if err := bigger.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats().Events == 0 {
		t.Error("recovered save did not persist the new events")
	}
}

func TestSaveLoadEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats().Packets != 0 {
		t.Error("empty store not empty after round trip")
	}
}

func TestSaveLoadPropertySmall(t *testing.T) {
	// Property: any batch of tiny synthetic frames survives a round trip.
	fn := func(payloads [][]byte) bool {
		st := New()
		for i, p := range payloads {
			if len(p) > 512 {
				p = p[:512]
			}
			f := traffic.Frame{TS: time.Duration(i) * time.Millisecond, Data: p}
			st.IngestFrame(&f)
		}
		var buf bytes.Buffer
		if err := st.Save(&buf); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		return got.Stats().Packets == st.Stats().Packets &&
			got.Stats().DataBytes == st.Stats().DataBytes
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSave(b *testing.B) {
	st := fillStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := st.Save(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkLoad(b *testing.B) {
	st := fillStore(b)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
